(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6).

   - Table 1           : per-application #classes / #methods / #injections
   - Figures 2(a), 3(a): method classification, % of methods defined & used
   - Figures 2(b), 3(b): method classification, % of method calls
   - Figures 4(a), 4(b): class-level classification
   - §6.1 case study   : LinkedList before/after the trivial fixes
   - Figure 5          : masking overhead vs checkpointed-object size and
                         fraction of calls to wrapped methods (Bechamel)
   - Ablations         : eager vs lazy (copy-on-write) checkpointing, and
                         wrap-pure vs wrap-all masking policies

   Absolute times differ from the paper's 2003 hardware; the reproduced
   quantity is the shape: who is non-atomic, how the proportions fall,
   and how masking overhead grows with checkpoint size and call ratio.

   Beyond the paper, the campaign section measures the parallel
   detection-campaign engine: wall-clock of the full detection phase at
   1/2/4/8 worker domains on every bundled application.  The snapshot
   section compares eager vs copy-on-write detection snapshots
   (--snapshot-mode) per application and writes the machine-readable
   BENCH_detect.json; set BENCH_SHORT=1 for the quick CI subset.  The
   interp section races the two execution engines — the original
   closure-tree evaluator against the flat-bytecode interpreter with
   superinstructions — in interleaved best-of-N rounds with stddev,
   gates the bytecode geomean at >= 2.0x the committed baseline file
   with no per-app regression vs closures, and writes BENCH_interp.json
   plus a folded-stack opcode/span profile (BENCH_interp.folded).

   Beyond the paper still, the obs-overhead section proves the
   observability layer (lib/obs/) keeps detection marks bitwise
   identical with metrics enabled and costs the interpreter < 2%
   throughput, writing BENCH_obs.json.  The prune section measures the
   static exception-flow pruner (--prune coalesce) against the unpruned
   campaign per application — run census, wall clock, and a bitwise
   identity check — gating RBTree at >= 30% runs eliminated and the
   geomean speedup at >= 1.3x, writing BENCH_prune.json.  The mask
   section measures the production masking runtime (lib/prod): armed
   runs with a rate-1000 canary compare the eager checkpoint rollback
   against the copy-on-write shadow rollback per application, gate the
   outputs bitwise identical and the median rollback speedup on the
   large-graph apps at >= 2x, and write BENCH_mask.json.

   Usage: main.exe [section...] where section is one of
   table1 fig2 fig3 fig4 fig5 case-study campaign snapshot ablation
   prune mask interp obs-overhead server cluster (default: all). *)

open Bechamel
open Failatom_runtime
open Failatom_core
open Failatom_apps

(* ------------------------------------------------------------------ *)
(* Application sweep: Table 1 and Figures 2-4                          *)
(* ------------------------------------------------------------------ *)

let sweep =
  lazy
    (let t0 = Unix.gettimeofday () in
     let outcomes =
       List.map
         (fun app ->
           let o = Harness.detect_app app in
           Fmt.pr "  detected %-13s (%5d injections, %s flavor)@."
             app.Registry.name o.Harness.detection.Detect.injections
             (Detect.flavor_name o.Harness.detection.Detect.flavor);
           o)
         Registry.all
     in
     Fmt.pr "  sweep completed in %.1fs@." (Unix.gettimeofday () -. t0);
     outcomes)

let reports_of suite =
  List.filter_map
    (fun (o : Harness.outcome) ->
      if o.Harness.app.Registry.suite = suite then Some o.Harness.report else None)
    (Lazy.force sweep)

let section_table1 () =
  Fmt.pr "@.== Table 1: application statistics =====================================@.";
  Report.pp_table1 Fmt.stdout
    (List.map (fun (o : Harness.outcome) -> o.Harness.report) (Lazy.force sweep))

let section_fig2 () =
  Report.pp_figure_methods Fmt.stdout
    ~title:"Figure 2(a): C++ method classification (% of methods defined and used)"
    (reports_of Registry.Cpp);
  Report.pp_figure_calls Fmt.stdout
    ~title:"Figure 2(b): C++ method classification (% of method calls)"
    (reports_of Registry.Cpp)

let section_fig3 () =
  Report.pp_figure_methods Fmt.stdout
    ~title:"Figure 3(a): Java method classification (% of methods defined and used)"
    (reports_of Registry.Java);
  Report.pp_figure_calls Fmt.stdout
    ~title:"Figure 3(b): Java method classification (% of method calls)"
    (reports_of Registry.Java)

let section_fig4 () =
  Report.pp_figure_classes Fmt.stdout
    ~title:"Figure 4(a): C++ class classification (% of classes defined and used)"
    (reports_of Registry.Cpp);
  Report.pp_figure_classes Fmt.stdout
    ~title:"Figure 4(b): Java class classification (% of classes defined and used)"
    (reports_of Registry.Java)

(* ------------------------------------------------------------------ *)
(* 6.1 case study: LinkedList before/after trivial fixes               *)
(* ------------------------------------------------------------------ *)

let section_case_study () =
  Fmt.pr "@.== Case study (paper 6.1): repairing LinkedList ========================@.";
  let before = Harness.detect_app (Option.get (Registry.find "LinkedList")) in
  let after = Harness.detect_app Registry.linked_list_fixed in
  let describe label (o : Harness.outcome) =
    let pure = Classify.pure_methods o.Harness.classification in
    let calls = Classify.call_counts o.Harness.classification in
    let share = Report.pct calls.Classify.pure (Classify.total calls) in
    Fmt.pr "%-28s %d pure non-atomic method(s), %.1f%% of calls@." label
      (List.length pure) share;
    List.iter (fun id -> Fmt.pr "    %s@." (Method_id.to_string id)) pure
  in
  describe "original LinkedList:" before;
  describe "after trivial fixes:" after;
  Fmt.pr
    "(paper: 18 pure non-atomic methods at 7.8%% of calls reduced to 3 at <0.2%%;@.";
  Fmt.pr
    " here the workload is smaller, but the same fix pattern collapses the set)@."

(* ------------------------------------------------------------------ *)
(* Campaign scaling: parallel detection wall-clock vs worker domains   *)
(* ------------------------------------------------------------------ *)

let campaign_jobs = [ 1; 2; 4; 8 ]

let section_campaign () =
  Fmt.pr "@.== Campaign scaling: detection wall-clock vs worker domains ===========@.";
  Fmt.pr "  (speculative batch scheduling; every result verified identical to the@.";
  Fmt.pr "   sequential detector; times in seconds, speedup vs --jobs 1)@.";
  Fmt.pr "  hardware: %d core(s) available — wall-clock gains need cores > 1@."
    (Domain.recommended_domain_count ());
  Fmt.pr "%-14s %6s" "Application" "runs";
  List.iter (fun j -> Fmt.pr "%9s" (Printf.sprintf "j=%d" j)) campaign_jobs;
  Fmt.pr "%10s@." "speedup";
  let totals = Array.make (List.length campaign_jobs) 0.0 in
  let reuse_saved = ref 0.0 in
  List.iter
    (fun (app : Registry.t) ->
      let sequential = Harness.detect_app app in
      (* the campaign builds one image, shared by all worker domains;
         before the staged split every run recompiled, so each campaign
         paid the image cost [runs] times instead of once *)
      let program = Failatom_minilang.Minilang.parse app.Registry.source in
      let flavor = Harness.flavor_of_suite app.Registry.suite in
      let t0 = Unix.gettimeofday () in
      ignore (Detect.compile flavor program);
      let image_s = Unix.gettimeofday () -. t0 in
      reuse_saved :=
        !reuse_saved
        +. (float_of_int sequential.Harness.detection.Detect.injections *. image_s);
      let times =
        List.mapi
          (fun i jobs ->
            let outcome, summary = Harness.detect_app_parallel ~jobs app in
            if
              outcome.Harness.detection.Detect.runs
              <> sequential.Harness.detection.Detect.runs
            then Fmt.epr "  WARNING: %s: parallel result differs!@." app.Registry.name;
            let t = summary.Failatom_campaign.Progress.wall_clock_s in
            totals.(i) <- totals.(i) +. t;
            t)
          campaign_jobs
      in
      Fmt.pr "%-14s %6d" app.Registry.name
        (1 + sequential.Harness.detection.Detect.injections);
      List.iter (fun t -> Fmt.pr "%9.3f" t) times;
      Fmt.pr "%9.2fx@." (List.hd times /. List.nth times (List.length times - 1)))
    Registry.all;
  Fmt.pr "%-14s %6s" "total" "";
  Array.iter (fun t -> Fmt.pr "%9.3f" t) totals;
  Fmt.pr "%9.2fx@." (totals.(0) /. totals.(Array.length totals - 1));
  Fmt.pr
    "  image reuse: one shared image per campaign (all domains) saves ~%.2fs of@."
    !reuse_saved;
  Fmt.pr "  per-run weave+compile per campaign column@."

(* ------------------------------------------------------------------ *)
(* Snapshot modes: eager vs copy-on-write detection cost               *)
(* ------------------------------------------------------------------ *)

let bench_short = Sys.getenv_opt "BENCH_SHORT" <> None

(* The quick subset keeps one cheap app per suite plus the large-graph
   apps whose detection cost the cow mode is built to flatten. *)
let snapshot_apps () =
  if bench_short then
    List.filter_map Registry.find [ "stdQ"; "LinkedList"; "RBTree" ]
  else Registry.all

let bench_json_file = "BENCH_detect.json"

(* Minimal JSON string escaping — app and flavor names are plain ASCII,
   but stay correct if that ever changes. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type snapshot_row = {
  row_app : Registry.t;
  row_flavor : Detect.flavor;
  row_runs : int;
  row_calls : int;  (* dynamic calls across all runs ~ snapshots taken *)
  row_eager_s : float;
  row_cow_s : float;
  row_image_s : float; (* one-time weave+compile, now paid once per detection *)
  row_identical : bool;
}

let section_snapshot () =
  Fmt.pr "@.== Snapshot modes: eager vs copy-on-write detection cost ==============@.";
  Fmt.pr "  (full detection phase per app; cow opens a write-barrier shadow per@.";
  Fmt.pr "   wrapped call and canonicalizes only on exceptional returns whose@.";
  Fmt.pr "   dirty set reaches the snapshot; marks verified identical to eager)@.";
  let apps = snapshot_apps () in
  let reps = if bench_short then 1 else 3 in
  let time_detect mode flavor program =
    let config = { Config.default with Config.snapshot_mode = mode } in
    let best = ref infinity and result = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = Detect.run ~config ~flavor program in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  Fmt.pr "%-14s %6s %9s %10s %10s %9s %9s %10s@." "Application" "runs" "calls"
    "eager(s)" "cow(s)" "speedup" "img(ms)" "identical";
  let rows =
    List.map
      (fun (app : Registry.t) ->
        let program = Failatom_minilang.Minilang.parse app.Registry.source in
        let flavor = Harness.flavor_of_suite app.Registry.suite in
        let eager_r, eager_s = time_detect Config.Snapshot_eager flavor program in
        let cow_r, cow_s = time_detect Config.Snapshot_cow flavor program in
        let t0 = Unix.gettimeofday () in
        ignore (Detect.compile flavor program);
        let image_s = Unix.gettimeofday () -. t0 in
        let identical =
          eager_r.Detect.runs = cow_r.Detect.runs
          && eager_r.Detect.transparent = cow_r.Detect.transparent
        in
        if not identical then
          Fmt.epr "  WARNING: %s: cow marks differ from eager!@." app.Registry.name;
        let row =
          { row_app = app;
            row_flavor = flavor;
            row_runs = List.length eager_r.Detect.runs;
            row_calls =
              List.fold_left
                (fun acc (r : Marks.run_record) -> acc + r.Marks.calls)
                0 eager_r.Detect.runs;
            row_eager_s = eager_s;
            row_cow_s = cow_s;
            row_image_s = image_s;
            row_identical = identical }
        in
        Fmt.pr "%-14s %6d %9d %10.3f %10.3f %8.2fx %9.3f %10b@." app.Registry.name
          row.row_runs row.row_calls eager_s cow_s (eager_s /. cow_s)
          (image_s *. 1e3) identical;
        row)
      apps
  in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let eager_total = total (fun r -> r.row_eager_s) in
  let cow_total = total (fun r -> r.row_cow_s) in
  Fmt.pr "%-14s %6s %9s %10.3f %10.3f %8.2fx@." "total" "" "" eager_total cow_total
    (eager_total /. cow_total);
  (* Each detection now weaves+compiles once; before the staged split it
     paid the image cost once per run.  runs × image is therefore the
     wall-clock the shared image saves per detection phase. *)
  let reuse_saved =
    total (fun r -> float_of_int (r.row_runs - 1) *. r.row_image_s)
  in
  Fmt.pr "  image reuse: weave+compile once per detection saves ~%.2fs across the@."
    reuse_saved;
  Fmt.pr "  table (est. %.2fx on cow detection wall-clock)@."
    ((cow_total +. reuse_saved) /. cow_total);
  let oc = open_out bench_json_file in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"snapshot_modes\",\n";
  out "  \"short\": %b,\n" bench_short;
  out "  \"reps\": %d,\n" reps;
  out "  \"apps\": [\n";
  List.iteri
    (fun i row ->
      out
        "    {\"name\": \"%s\", \"flavor\": \"%s\", \"runs\": %d, \"calls\": %d, \
         \"eager_s\": %.6f, \"cow_s\": %.6f, \"speedup\": %.3f, \"image_s\": %.6f, \
         \"identical\": %b}%s\n"
        (json_escape row.row_app.Registry.name)
        (json_escape (Detect.flavor_name row.row_flavor))
        row.row_runs row.row_calls row.row_eager_s row.row_cow_s
        (row.row_eager_s /. row.row_cow_s)
        row.row_image_s row.row_identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n";
  out
    "  \"total\": {\"eager_s\": %.6f, \"cow_s\": %.6f, \"speedup\": %.3f, \
     \"image_reuse_saved_s\": %.6f},\n"
    eager_total cow_total
    (eager_total /. cow_total)
    reuse_saved;
  out "  \"all_identical\": %b\n" (List.for_all (fun r -> r.row_identical) rows);
  out "}\n";
  close_out oc;
  Fmt.pr "  machine-readable results written to %s@." bench_json_file

(* ------------------------------------------------------------------ *)
(* Interpreter throughput: staged images vs rebuild-per-run            *)
(* ------------------------------------------------------------------ *)

let interp_json_file = "BENCH_interp.json"

let interp_apps () =
  if bench_short then
    List.filter_map Registry.find [ "stdQ"; "LinkedList"; "RBTree" ]
  else Registry.all

type interp_row = {
  ir_app : Registry.t;
  ir_image_ms : float; (* one-time bytecode image build (best of 3) *)
  ir_cl_rps : float; (* closures engine, best round *)
  ir_bc_rps : float; (* bytecode engine, best round *)
  ir_bc_stddev_pct : float; (* relative stddev of the bytecode rounds *)
  ir_baseline_rps : float option; (* committed baseline, if present *)
}

(* Reference throughput of the pre-bytecode interpreter (app name,
   runs/sec per line; see the file header for how it was measured).
   Optional: absent on a checkout without the reference, and reference
   numbers from a different machine are only indicative. *)
let interp_baseline =
  lazy
    (let path = "bench/baseline_interp_runs_per_sec.txt" in
     match open_in path with
     | exception Sys_error _ -> None
     | ic ->
       let table = Hashtbl.create 16 in
       (try
          while true do
            let line = input_line ic in
            if String.length line > 0 && line.[0] <> '#' then
              try Scanf.sscanf line "%s %f" (fun app rps -> Hashtbl.replace table app rps)
              with Scanf.Scan_failure _ | Failure _ -> ()
          done
        with End_of_file -> ());
       close_in ic;
       Some table)

let interp_folded_file = "BENCH_interp.folded"

(* Per-app regression tolerance for the bytecode-vs-closures check.  On
   this container the same binary's runs/sec swings by ±8% between
   probes even with interleaving, so a strict >= 1.0 per-app gate would
   flake on noise; 0.90 catches a real regression (the engines differ by
   far more than 10% when one of them loses a superinstruction) while
   staying quiet across reruns. *)
let interp_regression_floor = 0.90

let section_interp () =
  Fmt.pr "@.== Interpreter: closure-tree vs flat-bytecode engine throughput =======@.";
  Fmt.pr "  (runs/sec of the plain workload, both engines from shared images;@.";
  Fmt.pr "   rounds interleave the engines so clock drift and cache state bias@.";
  Fmt.pr "   neither side; best round is reported, stddev is across rounds)@.";
  let apps = interp_apps () in
  let rounds = if bench_short then 3 else 5 in
  let budget = if bench_short then 0.05 else 0.15 in
  let now () = Unix.gettimeofday () in
  let module C = Failatom_minilang.Compile in
  (* One probe: runs/sec over a ~[budget]-second window, one shared
     image, fresh VM per run (the structure every detection run has). *)
  let probe image =
    ignore (C.run_main (C.instantiate image));
    (* warmup *)
    let t0 = now () in
    let n = ref 0 in
    while now () -. t0 < budget do
      ignore (C.run_main (C.instantiate image));
      incr n
    done;
    float_of_int !n /. (now () -. t0)
  in
  let baseline = Lazy.force interp_baseline in
  Fmt.pr "%-14s %10s %12s %12s %8s %8s %9s@." "Application" "image(ms)"
    "closures(r/s)" "bytecode(r/s)" "ratio" "stddev" "vs-base";
  let rows =
    List.map
      (fun (app : Registry.t) ->
        let program = Failatom_minilang.Minilang.parse app.Registry.source in
        let cl_image = C.image ~engine:C.Closures program in
        let bc_image = ref (C.image ~engine:C.Bytecode program) in
        let image_s = ref infinity in
        for _ = 1 to 3 do
          let t0 = now () in
          bc_image := C.image ~engine:C.Bytecode program;
          let dt = now () -. t0 in
          if dt < !image_s then image_s := dt
        done;
        let bc_image = !bc_image in
        let cl = Array.make rounds 0.0 and bc = Array.make rounds 0.0 in
        for r = 0 to rounds - 1 do
          cl.(r) <- probe cl_image;
          bc.(r) <- probe bc_image
        done;
        let best a = Array.fold_left Float.max 0.0 a in
        let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int rounds in
        let stddev_pct a =
          let m = mean a in
          let var =
            Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a
            /. float_of_int rounds
          in
          sqrt var /. m *. 100.0
        in
        let cl_rps = best cl and bc_rps = best bc in
        let baseline_rps =
          Option.bind baseline (fun tbl -> Hashtbl.find_opt tbl app.Registry.name)
        in
        let row =
          { ir_app = app;
            ir_image_ms = !image_s *. 1e3;
            ir_cl_rps = cl_rps;
            ir_bc_rps = bc_rps;
            ir_bc_stddev_pct = stddev_pct bc;
            ir_baseline_rps = baseline_rps }
        in
        Fmt.pr "%-14s %10.3f %12.1f %12.1f %7.2fx %7.1f%%" app.Registry.name
          row.ir_image_ms cl_rps bc_rps (bc_rps /. cl_rps) row.ir_bc_stddev_pct;
        (match baseline_rps with
         | Some p -> Fmt.pr " %8.2fx@." (bc_rps /. p)
         | None -> Fmt.pr " %9s@." "-");
        row)
      apps
  in
  let geomean_of f =
    match List.filter_map f rows with
    | [] -> None
    | sps ->
      Some
        (exp
           (List.fold_left (fun acc sp -> acc +. log sp) 0.0 sps
           /. float_of_int (List.length sps)))
  in
  let geomean_engines =
    Option.get (geomean_of (fun r -> Some (r.ir_bc_rps /. r.ir_cl_rps)))
  in
  let geomean_baseline =
    geomean_of (fun r -> Option.map (fun p -> r.ir_bc_rps /. p) r.ir_baseline_rps)
  in
  Fmt.pr "%-14s %10s %12s %12s %7.2fx %8s" "geomean" "" "" "" geomean_engines "";
  (match geomean_baseline with
   | Some g -> Fmt.pr " %8.2fx@." g
   | None -> Fmt.pr " %9s@." "-");
  let regressions =
    List.filter
      (fun r -> r.ir_bc_rps < interp_regression_floor *. r.ir_cl_rps)
      rows
  in
  let pass_no_regression = regressions = [] in
  List.iter
    (fun r ->
      Fmt.epr "  WARNING: %s: bytecode %.1f r/s < %.0f%% of closures %.1f r/s@."
        r.ir_app.Registry.name r.ir_bc_rps
        (interp_regression_floor *. 100.0)
        r.ir_cl_rps)
    regressions;
  let pass_speedup =
    match geomean_baseline with None -> true | Some g -> g >= 2.0
  in
  let pass = pass_no_regression && pass_speedup in
  Fmt.pr "  bytecode >= %.0f%% of closures on every app: %b; geomean vs baseline \
          >= 2.0x: %s@."
    (interp_regression_floor *. 100.0)
    pass_no_regression
    (match geomean_baseline with
     | Some g -> Printf.sprintf "%b (%.2fx)" (g >= 2.0) g
     | None -> "skipped (no baseline file)");
  (* Folded-stack profile of one run per app under the bytecode engine:
     per-opcode dispatch counts plus the obs span timings, written next
     to the JSON for flamegraph.pl / speedscope. *)
  let module Exec = Failatom_runtime.Exec in
  let module Obs = Failatom_obs.Obs in
  Exec.reset_profile ();
  Exec.profiling := true;
  Obs.with_enabled true (fun () ->
      List.iter
        (fun (app : Registry.t) ->
          let program = Failatom_minilang.Minilang.parse app.Registry.source in
          let image =
            Obs.span "compile.image" (fun () -> C.image ~engine:C.Bytecode program)
          in
          Obs.span "vm.run" (fun () -> ignore (C.run_main (C.instantiate image))))
        apps);
  Exec.profiling := false;
  let oc = open_out interp_folded_file in
  output_string oc (Exec.folded_profile (Obs.snapshot ()));
  close_out oc;
  let oc = open_out interp_json_file in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"interp_engines\",\n";
  out "  \"short\": %b,\n" bench_short;
  out "  \"rounds\": %d,\n" rounds;
  out "  \"budget_s\": %.3f,\n" budget;
  out "  \"apps\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"name\": \"%s\", \"image_ms\": %.3f, \"closures_runs_per_sec\": \
         %.1f, \"bytecode_runs_per_sec\": %.1f, \"engine_ratio\": %.3f, \
         \"bytecode_stddev_pct\": %.2f"
        (json_escape r.ir_app.Registry.name)
        r.ir_image_ms r.ir_cl_rps r.ir_bc_rps
        (r.ir_bc_rps /. r.ir_cl_rps)
        r.ir_bc_stddev_pct;
      (match r.ir_baseline_rps with
       | Some p ->
         out ", \"baseline_runs_per_sec\": %.1f, \"vs_baseline_speedup\": %.3f" p
           (r.ir_bc_rps /. p)
       | None -> ());
      out "}%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n";
  out "  \"geomean_engine_ratio\": %.3f,\n" geomean_engines;
  (match geomean_baseline with
   | Some g -> out "  \"geomean_vs_baseline_speedup\": %.3f,\n" g
   | None -> ());
  out "  \"regression_floor\": %.2f,\n" interp_regression_floor;
  out "  \"pass_no_regression\": %b,\n" pass_no_regression;
  out "  \"pass_speedup\": %b,\n" pass_speedup;
  out "  \"pass\": %b,\n" pass;
  out "  \"folded_profile\": \"%s\"\n" (json_escape interp_folded_file);
  out "}\n";
  close_out oc;
  Fmt.pr "  machine-readable results written to %s (profile: %s)@."
    interp_json_file interp_folded_file

(* ------------------------------------------------------------------ *)
(* Observability overhead: metrics on vs off                           *)
(* ------------------------------------------------------------------ *)

let obs_json_file = "BENCH_obs.json"

type obs_row = {
  or_app : Registry.t;
  or_off_rps : float; (* interp runs/sec, metrics disabled *)
  or_on_rps : float; (* interp runs/sec, metrics enabled *)
  or_marks_identical : bool; (* detection runs identical on vs off *)
}

(* The obs layer must be free when disabled and near-free when enabled:
   the interpreter's hot loops touch only plain per-VM counters that are
   harvested once per run, and every Obs record op short-circuits on one
   atomic load.  This section proves both halves: marks stay bitwise
   identical with metrics enabled, and interpreter throughput regresses
   by less than 2%.  On/off passes alternate so clock drift and cache
   state bias neither side. *)
let section_obs_overhead () =
  Fmt.pr "@.== Observability overhead: metrics enabled vs disabled ================@.";
  Fmt.pr "  (plain-workload runs/sec per app, min-time over alternating batches;@.";
  Fmt.pr "   detection marks must be identical with metrics on and off)@.";
  let module Obs = Failatom_obs.Obs in
  let module C = Failatom_minilang.Compile in
  let apps = interp_apps () in
  let batches = if bench_short then 30 else 60 in
  let now () = Unix.gettimeofday () in
  let batch_time image n =
    let t0 = now () in
    for _ = 1 to n do
      ignore (C.run_main (C.instantiate image))
    done;
    now () -. t0
  in
  (* Noise-floor throughput: the minimum over many ~10ms batches.
     Scheduler preemption and clock jitter only ever add time, so the
     per-mode minimum converges on the true cost, where a throughput
     window would average the noise in.  Batches alternate modes. *)
  let measure image =
    let per_run = batch_time image 5 /. 5.0 in
    (* warmup + calibration *)
    let n = max 1 (int_of_float (0.01 /. per_run)) in
    let best_off = ref infinity and best_on = ref infinity in
    for _ = 1 to batches do
      best_off := Float.min !best_off (batch_time image n);
      best_on :=
        Float.min !best_on (Obs.with_enabled true (fun () -> batch_time image n))
    done;
    (float_of_int n /. !best_off, float_of_int n /. !best_on)
  in
  Fmt.pr "%-14s %11s %11s %11s %10s@." "Application" "off(r/s)" "on(r/s)"
    "regression" "identical";
  let rows =
    List.map
      (fun (app : Registry.t) ->
        let program = Failatom_minilang.Minilang.parse app.Registry.source in
        let flavor = Harness.flavor_of_suite app.Registry.suite in
        let image = C.image program in
        let off, on = measure image in
        let off_rps = ref off and on_rps = ref on in
        let d_off = Detect.run ~flavor program in
        let d_on = Obs.with_enabled true (fun () -> Detect.run ~flavor program) in
        let marks_identical =
          d_off.Detect.runs = d_on.Detect.runs
          && d_off.Detect.transparent = d_on.Detect.transparent
        in
        if not marks_identical then
          Fmt.epr "  WARNING: %s: marks differ with metrics enabled!@."
            app.Registry.name;
        let regression = (!off_rps -. !on_rps) /. !off_rps *. 100.0 in
        Fmt.pr "%-14s %11.1f %11.1f %10.2f%% %10b@." app.Registry.name !off_rps
          !on_rps regression marks_identical;
        { or_app = app;
          or_off_rps = !off_rps;
          or_on_rps = !on_rps;
          or_marks_identical = marks_identical })
      apps
  in
  let geomean_ratio =
    exp
      (List.fold_left (fun acc r -> acc +. log (r.or_on_rps /. r.or_off_rps)) 0.0 rows
      /. float_of_int (List.length rows))
  in
  let geomean_regression = (1.0 -. geomean_ratio) *. 100.0 in
  let all_identical = List.for_all (fun r -> r.or_marks_identical) rows in
  let pass = geomean_regression < 2.0 && all_identical in
  Fmt.pr "%-14s %11s %11s %10.2f%%@." "geomean" "" "" geomean_regression;
  Fmt.pr "  marks identical on every app: %b; overhead < 2%%: %b@." all_identical
    (geomean_regression < 2.0);
  let oc = open_out obs_json_file in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"obs_overhead\",\n";
  out "  \"short\": %b,\n" bench_short;
  out "  \"apps\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"name\": \"%s\", \"off_runs_per_sec\": %.1f, \"on_runs_per_sec\": \
         %.1f, \"regression_pct\": %.3f, \"marks_identical\": %b}%s\n"
        (json_escape r.or_app.Registry.name)
        r.or_off_rps r.or_on_rps
        ((r.or_off_rps -. r.or_on_rps) /. r.or_off_rps *. 100.0)
        r.or_marks_identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n";
  out "  \"geomean_regression_pct\": %.3f,\n" geomean_regression;
  out "  \"all_marks_identical\": %b,\n" all_identical;
  out "  \"pass\": %b\n" pass;
  out "}\n";
  close_out oc;
  Fmt.pr "  machine-readable results written to %s@." obs_json_file

(* ------------------------------------------------------------------ *)
(* Figure 5: masking overhead (Bechamel)                               *)
(* ------------------------------------------------------------------ *)

(* A VM whose receiver holds a chain of [size] nodes; the op does a
   small amount of work (the stand-in for the paper's ~0.5 us method)
   and mutates one field of the receiver.  The masked variant is the
   same method with the atomicity filter attached, checkpointing the
   whole chain on every call. *)
let make_fig5_vm ~size ~strategy ~masked =
  let vm = Vm.create () in
  ignore (Vm.add_class vm "Node" ~fields:[ "v"; "next" ]);
  ignore (Vm.add_class vm "Holder" ~fields:[ "acc"; "data" ]);
  let chain =
    List.fold_left
      (fun next _ ->
        Value.Ref
          (Heap.alloc_object vm.Vm.heap ~cls:"Node"
             [ ("v", Value.Int 1); ("next", next) ]))
      Value.Null
      (List.init size Fun.id)
  in
  let holder =
    Heap.alloc_object vm.Vm.heap ~cls:"Holder" [ ("acc", Value.Int 0); ("data", chain) ]
  in
  let work vm this _args =
    (* ~50 integer operations, scaled from the paper's ~0.5 us body *)
    let acc = ref 0 in
    for i = 1 to 50 do
      acc := (!acc * 31) + i
    done;
    (match this with
     | Value.Ref id -> Heap.set_field vm.Vm.heap id "acc" (Value.Int !acc)
     | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null -> ());
    Value.Null
  in
  let wrapped = Vm.add_method vm "Holder" ~name:"wrappedOp" ~params:[] ~throws:[] work in
  ignore (Vm.add_method vm "Holder" ~name:"plainOp" ~params:[] ~throws:[] work);
  if masked then begin
    let config = { Config.default with Config.checkpoint_strategy = strategy } in
    Vm.attach_filter wrapped (Mask.masking_filter config)
  end;
  (vm, Value.Ref holder)

(* One measured iteration: 1000 calls, [per_mille] of them wrapped. *)
let fig5_case ~size ~strategy ~masked ~per_mille =
  let vm, holder = make_fig5_vm ~size ~strategy ~masked in
  fun () ->
    for i = 0 to 999 do
      let name = if i mod 1000 < per_mille then "wrappedOp" else "plainOp" in
      ignore (Vm.invoke vm holder name [])
    done

let sizes = [ 1; 4; 16; 64; 256; 1024 ]
let ratios = [ (1, "0.1%"); (10, "1%"); (100, "10%"); (1000, "100%") ]

let fig5_tests strategy =
  let cell ~name fn = Test.make ~name (Staged.stage fn) in
  cell ~name:"baseline" (fig5_case ~size:64 ~strategy ~masked:false ~per_mille:0)
  :: List.concat_map
       (fun size ->
         List.map
           (fun (per_mille, label) ->
             cell
               ~name:(Printf.sprintf "size=%04d/calls=%s" size label)
               (fig5_case ~size ~strategy ~masked:true ~per_mille))
           ratios)
       sizes

(* Runs a grouped Bechamel benchmark; returns test name -> ns/run. *)
let run_bechamel ~name tests =
  let grouped = Test.make_grouped ~name tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let table = Hashtbl.create 32 in
  Hashtbl.iter
    (fun test_name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] -> Hashtbl.replace table test_name ns
      | Some _ | None -> ())
    results;
  table

let print_overhead_table ~title ~group table =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=');
  match Hashtbl.find_opt table (group ^ "/baseline") with
  | None -> Fmt.pr "  (baseline measurement missing)@."
  | Some baseline ->
    Fmt.pr "baseline (no masking): %.1f ns/call@." (baseline /. 1000.);
    Fmt.pr "%-10s" "size";
    List.iter (fun (_, label) -> Fmt.pr "%12s" label) ratios;
    Fmt.pr "    (overhead factor vs baseline)@.";
    List.iter
      (fun size ->
        Fmt.pr "%-10d" size;
        List.iter
          (fun (_, label) ->
            let key = Printf.sprintf "%s/size=%04d/calls=%s" group size label in
            match Hashtbl.find_opt table key with
            | Some ns -> Fmt.pr "%11.2fx" (ns /. baseline)
            | None -> Fmt.pr "%12s" "-")
          ratios;
        Fmt.pr "@.")
      sizes

let section_fig5 () =
  Fmt.pr
    "@.== Figure 5: masking overhead vs checkpoint size and wrapped-call ratio ==@.";
  Fmt.pr "  (eager checkpointing, as in the paper; 1000 calls per sample)@.";
  let table = run_bechamel ~name:"fig5" (fig5_tests Checkpoint.Eager) in
  print_overhead_table ~title:"Figure 5: overhead factor (eager checkpointing)"
    ~group:"fig5" table

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let section_ablation () =
  Fmt.pr
    "@.== Ablation: lazy (copy-on-write) checkpointing (paper 6.2 suggestion) ==@.";
  let table = run_bechamel ~name:"lazy" (fig5_tests Checkpoint.Lazy) in
  print_overhead_table
    ~title:"Lazy checkpointing: overhead factor (one mutated object per call)"
    ~group:"lazy" table;
  Fmt.pr
    "@.== Ablation: static exception-freedom inference (paper 4.3 future work) ==@.";
  Fmt.pr "%-14s %12s %12s %10s@." "Application" "injections" "with-infer" "saved";
  List.iter
    (fun (app : Registry.t) ->
      let program = Failatom_minilang.Minilang.parse app.Registry.source in
      let base = Detect.run ~flavor:(Harness.flavor_of_suite app.Registry.suite) program in
      let config = { Config.default with Config.infer_exception_free = true } in
      let inferred =
        Detect.run ~config ~flavor:(Harness.flavor_of_suite app.Registry.suite) program
      in
      let saved =
        Report.pct
          (base.Detect.injections - inferred.Detect.injections)
          base.Detect.injections
      in
      Fmt.pr "%-14s %12d %12d %9.1f%%@." app.Registry.name base.Detect.injections
        inferred.Detect.injections saved)
    Registry.all;
  Fmt.pr "@.== Ablation: wrap-pure vs wrap-all masking policy ======================@.";
  Fmt.pr "%-14s %12s %12s@." "Application" "wrap-pure" "wrap-all";
  List.iter
    (fun (o : Harness.outcome) ->
      let count policy =
        let config = { Config.default with Config.wrap_policy = policy } in
        Method_id.Set.cardinal (Mask.targets config o.Harness.classification)
      in
      Fmt.pr "%-14s %12d %12d@." o.Harness.app.Registry.name (count Config.Wrap_pure)
        (count Config.Wrap_all_non_atomic))
    (Lazy.force sweep)

(* ------------------------------------------------------------------ *)
(* Exception-flow pruning: run census and off-vs-coalesce wall clock   *)
(* ------------------------------------------------------------------ *)

let prune_json_file = "BENCH_prune.json"

let prune_apps () =
  if bench_short then
    List.filter_map Registry.find [ "stdQ"; "LinkedList"; "RBTree" ]
  else Registry.all

type prune_row = {
  pr_app : Registry.t;
  pr_flavor : Detect.flavor;
  pr_points : int;  (* P: runs of the unpruned campaign minus the probe *)
  pr_groups : int;  (* representative runs coalesce executes *)
  pr_coalesced : int;  (* synthesized (not executed) runs *)
  pr_dropped : int;  (* generic injections --prune drop would remove *)
  pr_off_s : float;
  pr_co_s : float;
  pr_identical : bool;  (* coalesce runs == off runs, structurally *)
}

let section_prune () =
  Fmt.pr "@.== Exception-flow pruning: unpruned vs coalesced campaigns =============@.";
  Fmt.pr "  (coalesce executes one run per handler-blindness group and synthesizes@.";
  Fmt.pr "   the rest from a threshold-0 trace-run plan; its runs list is verified@.";
  Fmt.pr "   bitwise-identical to the unpruned campaign's.  dropped counts what@.";
  Fmt.pr "   --prune drop's may-raise filter would remove instead)@.";
  let apps = prune_apps () in
  let reps = if bench_short then 1 else 3 in
  let time_detect prune flavor program =
    let config = { Config.default with Config.prune } in
    let best = ref infinity and result = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = Detect.run ~config ~flavor program in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  Fmt.pr "%-14s %7s %7s %10s %8s %9s %9s %8s %10s@." "Application" "points"
    "groups" "coalesced" "dropped" "off(s)" "co(s)" "speedup" "identical";
  let rows =
    List.map
      (fun (app : Registry.t) ->
        let program = Failatom_minilang.Minilang.parse app.Registry.source in
        let flavor = Harness.flavor_of_suite app.Registry.suite in
        let flow =
          Exnflow.analyze (Failatom_minilang.Compile.image program) program
        in
        (* plan census from a trace run, exactly as Detect builds it *)
        let config = Config.default in
        let analyzer = Analyzer.analyze config program in
        let compiled = Detect.compile flavor program in
        let _, extras =
          Detect.run_once_ext ~trace:true compiled config analyzer
            ~prepare:(fun _ -> ())
            ~threshold:0
        in
        let plan = Prune.build flow ~entries:extras.Detect.entries in
        let dropped =
          let filtered = Analyzer.analyze ~flow config program in
          List.fold_left
            (fun acc id ->
              acc
              + List.length (Analyzer.injectable_for analyzer id)
              - List.length (Analyzer.injectable_for filtered id))
            0 (Analyzer.method_ids analyzer)
        in
        let off_r, off_s = time_detect Config.Prune_off flavor program in
        let co_r, co_s = time_detect Config.Prune_coalesce flavor program in
        let identical =
          off_r.Detect.runs = co_r.Detect.runs
          && off_r.Detect.transparent = co_r.Detect.transparent
        in
        if not identical then
          Fmt.epr "  WARNING: %s: coalesced runs differ from unpruned!@."
            app.Registry.name;
        let row =
          { pr_app = app;
            pr_flavor = flavor;
            pr_points = plan.Prune.total_points;
            pr_groups = Prune.group_count plan;
            pr_coalesced = Prune.coalesced_away plan;
            pr_dropped = dropped;
            pr_off_s = off_s;
            pr_co_s = co_s;
            pr_identical = identical }
        in
        Fmt.pr "%-14s %7d %7d %10d %8d %9.3f %9.3f %7.2fx %10b@."
          app.Registry.name row.pr_points row.pr_groups row.pr_coalesced
          row.pr_dropped off_s co_s (off_s /. co_s) identical;
        row)
      apps
  in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let off_total = total (fun r -> r.pr_off_s) in
  let co_total = total (fun r -> r.pr_co_s) in
  let geomean =
    exp
      (total (fun r -> log (r.pr_off_s /. r.pr_co_s))
      /. float_of_int (List.length rows))
  in
  Fmt.pr "%-14s %7s %7s %10s %8s %9.3f %9.3f %7.2fx@." "total" "" "" "" ""
    off_total co_total (off_total /. co_total);
  let eliminated_pct r =
    100.0 *. float_of_int r.pr_coalesced /. float_of_int (r.pr_points + 1)
  in
  let all_identical = List.for_all (fun r -> r.pr_identical) rows in
  (* The two committed gates: RBTree must shed >= 30% of its runs, and
     coalescing must be a real wall-clock win across the table. *)
  let pass_rbtree =
    match List.find_opt (fun r -> r.pr_app.Registry.name = "RBTree") rows with
    | None -> true (* subset without RBTree: nothing to gate *)
    | Some r -> eliminated_pct r >= 30.0
  in
  let pass_speedup = geomean >= 1.3 in
  Fmt.pr "  runs eliminated: RBTree %s; geomean speedup %.2fx (>= 1.3x: %b); \
          all identical: %b@."
    (match List.find_opt (fun r -> r.pr_app.Registry.name = "RBTree") rows with
     | Some r -> Printf.sprintf "%.1f%% (>= 30%%: %b)" (eliminated_pct r) pass_rbtree
     | None -> "not measured")
    geomean pass_speedup all_identical;
  let oc = open_out prune_json_file in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"exnflow_prune\",\n";
  out "  \"short\": %b,\n" bench_short;
  out "  \"reps\": %d,\n" reps;
  out "  \"apps\": [\n";
  List.iteri
    (fun i row ->
      out
        "    {\"name\": \"%s\", \"flavor\": \"%s\", \"points\": %d, \
         \"groups\": %d, \"coalesced\": %d, \"dropped\": %d, \
         \"eliminated_pct\": %.1f, \"off_s\": %.6f, \"coalesce_s\": %.6f, \
         \"speedup\": %.3f, \"identical\": %b}%s\n"
        (json_escape row.pr_app.Registry.name)
        (json_escape (Detect.flavor_name row.pr_flavor))
        row.pr_points row.pr_groups row.pr_coalesced row.pr_dropped
        (eliminated_pct row) row.pr_off_s row.pr_co_s
        (row.pr_off_s /. row.pr_co_s)
        row.pr_identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n";
  out
    "  \"total\": {\"off_s\": %.6f, \"coalesce_s\": %.6f, \"speedup\": %.3f, \
     \"geomean_speedup\": %.3f},\n"
    off_total co_total (off_total /. co_total) geomean;
  out "  \"all_identical\": %b,\n" all_identical;
  out "  \"pass_rbtree_elimination\": %b,\n" pass_rbtree;
  out "  \"pass_geomean_speedup\": %b,\n" pass_speedup;
  out "  \"pass\": %b\n" (all_identical && pass_rbtree && pass_speedup);
  out "}\n";
  close_out oc;
  Fmt.pr "  machine-readable results written to %s@." prune_json_file

(* ------------------------------------------------------------------ *)
(* Concurrent apps: the schedule axis and schedules-to-first-violation *)
(* ------------------------------------------------------------------ *)

let concurrent_json_file = "BENCH_concurrent.json"

(* One seeded interleaving violation per concurrent app: a read-only
   probe whose non-atomicity injection alone cannot expose. *)
let seeded_probes =
  [ ("StripedMap", "snapshotTotal");
    ("BoundedBuffer", "audit");
    ("WorkQueue", "progress") ]

(* The default sweep measured here and reported in EXPERIMENTS.md: coop
   plus three slice seeds (the --schedules 4 expansion). *)
let concurrent_sweep = [ "coop"; "slice:1"; "slice:2"; "slice:3" ]

type concurrent_row = {
  cr_app : Registry.t;
  cr_probe : Method_id.t;
  cr_coop_s : float;
  cr_coop_injections : int;
  cr_sweep_s : float;
  cr_sweep_injections : int;
  cr_first_violation : int option;
      (* smallest sweep prefix length whose detection flips the seeded
         probe non-atomic; None if even the full sweep misses it *)
  cr_transparent : bool;  (* across both the coop and the sweep run *)
}

let section_concurrent () =
  Fmt.pr "@.== Concurrent apps: schedule exploration cost and yield ================@.";
  Fmt.pr "  (each app carries one seeded violation in a read-only probe method;@.";
  Fmt.pr "   first-violation is the smallest prefix of the sweep %s@."
    (String.concat "," concurrent_sweep);
  Fmt.pr "   whose detection marks the probe non-atomic — 1 would mean the@.";
  Fmt.pr "   schedule axis was unnecessary)@.";
  let reps = if bench_short then 1 else 3 in
  let time_detect specs flavor program =
    let config = { Config.default with Config.schedules = specs } in
    let best = ref infinity and result = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = Detect.run ~config ~flavor program in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  let non_atomic d meth =
    match Classify.verdict (Classify.classify d) meth with
    | Some Classify.Pure_non_atomic | Some Classify.Conditional_non_atomic -> true
    | Some Classify.Atomic | None -> false
  in
  let prefix k = List.filteri (fun i _ -> i < k) concurrent_sweep in
  Fmt.pr "%-14s %-14s %9s %8s %9s %8s %7s %12s@." "Application" "probe"
    "coop(s)" "inj" "sweep(s)" "inj" "first" "transparent";
  let rows =
    List.map
      (fun (name, probe_name) ->
        let app = Option.get (Registry.find name) in
        let probe = Method_id.make name probe_name in
        let program = Failatom_minilang.Minilang.parse app.Registry.source in
        let flavor = Harness.flavor_of_suite app.Registry.suite in
        let coop_r, coop_s = time_detect [ "coop" ] flavor program in
        let sweep_r, sweep_s = time_detect concurrent_sweep flavor program in
        (* the sweep endpoints are already measured; probe the interior
           prefixes once each for the first-violation count *)
        let first_violation =
          if non_atomic coop_r probe then Some 1
          else if not (non_atomic sweep_r probe) then None
          else
            let rec search k =
              if k >= List.length concurrent_sweep then
                Some (List.length concurrent_sweep)
              else if
                non_atomic (fst (time_detect (prefix k) flavor program)) probe
              then Some k
              else search (k + 1)
            in
            search 2
        in
        let row =
          { cr_app = app;
            cr_probe = probe;
            cr_coop_s = coop_s;
            cr_coop_injections = coop_r.Detect.injections;
            cr_sweep_s = sweep_s;
            cr_sweep_injections = sweep_r.Detect.injections;
            cr_first_violation = first_violation;
            cr_transparent =
              coop_r.Detect.transparent && sweep_r.Detect.transparent }
        in
        Fmt.pr "%-14s %-14s %9.3f %8d %9.3f %8d %7s %12b@." name probe_name
          coop_s coop_r.Detect.injections sweep_s
          sweep_r.Detect.injections
          (match first_violation with Some k -> string_of_int k | None -> "-")
          row.cr_transparent;
        row)
      seeded_probes
  in
  (* Gates: the schedule axis must be both necessary (no probe flips
     under coop alone) and sufficient (every probe flips somewhere in
     the sweep), with transparency holding throughout. *)
  let pass_needed =
    List.for_all (fun r -> r.cr_first_violation <> Some 1) rows
  in
  let pass_detected =
    List.for_all (fun r -> r.cr_first_violation <> None) rows
  in
  let pass_transparent = List.for_all (fun r -> r.cr_transparent) rows in
  let pass = pass_needed && pass_detected && pass_transparent in
  Fmt.pr
    "  schedule axis necessary: %b; all seeded violations found: %b; \
     transparent: %b@."
    pass_needed pass_detected pass_transparent;
  let oc = open_out concurrent_json_file in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"concurrent_schedules\",\n";
  out "  \"short\": %b,\n" bench_short;
  out "  \"reps\": %d,\n" reps;
  out "  \"sweep\": [%s],\n"
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) concurrent_sweep));
  out "  \"apps\": [\n";
  List.iteri
    (fun i row ->
      out
        "    {\"name\": \"%s\", \"probe\": \"%s\", \"coop_s\": %.6f, \
         \"coop_injections\": %d, \"sweep_s\": %.6f, \"sweep_injections\": %d, \
         \"first_violation_schedules\": %s, \"transparent\": %b}%s\n"
        (json_escape row.cr_app.Registry.name)
        (json_escape (Method_id.to_string row.cr_probe))
        row.cr_coop_s row.cr_coop_injections row.cr_sweep_s
        row.cr_sweep_injections
        (match row.cr_first_violation with
         | Some k -> string_of_int k
         | None -> "null")
        row.cr_transparent
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n";
  out "  \"pass_schedule_axis_necessary\": %b,\n" pass_needed;
  out "  \"pass_all_violations_detected\": %b,\n" pass_detected;
  out "  \"pass_transparent\": %b,\n" pass_transparent;
  out "  \"pass\": %b\n" pass;
  out "}\n";
  close_out oc;
  Fmt.pr "  machine-readable results written to %s@." concurrent_json_file

(* ------------------------------------------------------------------ *)
(* Server: cold vs warm submission latency and client throughput       *)
(* ------------------------------------------------------------------ *)

module Server = Failatom_server.Server
module Client = Failatom_server.Client
module Protocol = Failatom_server.Protocol

let server_json_file = "BENCH_server.json"

(* One full client round trip: connect, greeting, submit, watch to the
   terminal event, close.  Cold and warm submissions are timed through
   the identical path, so the ratio isolates what the daemon's
   content-addressed cache saves (compilation + every detection run). *)
let submit_round_trip ~socket_path request =
  Client.with_conn ~socket_path (fun conn ->
      match Client.submit_wait conn request with
      | Client.Completed (result, cached) -> (result, cached)
      | Client.Job_failed msg -> failwith ("bench job failed: " ^ msg)
      | Client.Job_cancelled | Client.Job_timed_out ->
        failwith "bench job did not complete")

let section_server () =
  Fmt.pr "@.== Server: cold vs warm submission latency ============================@.";
  Fmt.pr "  (failatom serve daemon on a Unix socket; a warm submission hits the@.";
  Fmt.pr "   content-addressed result cache and re-runs nothing; latencies are@.";
  Fmt.pr "   full client round trips including connect)@.";
  let socket_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fa_bench_%d.sock" (Unix.getpid ()))
  in
  let server =
    Server.start { (Server.default_config ~socket_path) with Server.workers = 2 }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Server.wait server;
      if Sys.file_exists socket_path then Sys.remove socket_path)
    (fun () ->
      let request = Protocol.default_request Protocol.Detect (Protocol.App "RBTree") in
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let (cold_result, cold_cached), cold_s =
        time (fun () -> submit_round_trip ~socket_path request)
      in
      assert (not cold_cached);
      let warm_iters = if bench_short then 10 else 30 in
      let warm_s = ref infinity in
      for _ = 1 to warm_iters do
        let (result, cached), t = time (fun () -> submit_round_trip ~socket_path request) in
        if not cached then failwith "warm submission missed the cache";
        if result.Protocol.r_log <> cold_result.Protocol.r_log then
          failwith "warm result differs from cold";
        if t < !warm_s then warm_s := t
      done;
      let speedup = cold_s /. !warm_s in
      let pass = speedup >= 5.0 in
      Fmt.pr "%-28s %10.2f ms@." "cold (compile + 700 runs)" (cold_s *. 1e3);
      Fmt.pr "%-28s %10.2f ms   (best of %d)@." "warm (cache hit)" (!warm_s *. 1e3)
        warm_iters;
      Fmt.pr "%-28s %10.1fx   (target >= 5x: %s)@." "speedup" speedup
        (if pass then "pass" else "FAIL");
      (* throughput: N concurrent clients hammering the warm path *)
      Fmt.pr "@.== Server: warm throughput vs concurrent clients ======================@.";
      let jobs_per_client = if bench_short then 20 else 100 in
      let throughput =
        List.map
          (fun clients ->
            let (), wall_s =
              time (fun () ->
                  let threads =
                    List.init clients (fun _ ->
                        Thread.create
                          (fun () ->
                            for _ = 1 to jobs_per_client do
                              ignore (submit_round_trip ~socket_path request)
                            done)
                          ())
                  in
                  List.iter Thread.join threads)
            in
            let rate = float_of_int (clients * jobs_per_client) /. wall_s in
            Fmt.pr "%4d client(s): %8.0f jobs/s  (%d jobs in %.3fs)@." clients rate
              (clients * jobs_per_client) wall_s;
            (clients, rate))
          [ 1; 4; 16 ]
      in
      let oc = open_out server_json_file in
      Printf.fprintf oc
        "{\"schema\": \"failatom.bench.server/1\",\n\
        \ \"app\": \"RBTree\",\n\
        \ \"cold_ms\": %.3f,\n\
        \ \"warm_ms\": %.3f,\n\
        \ \"speedup\": %.2f,\n\
        \ \"pass\": %b,\n\
        \ \"throughput\": [%s]}\n"
        (cold_s *. 1e3)
        (!warm_s *. 1e3)
        speedup pass
        (String.concat ", "
           (List.map
              (fun (clients, rate) ->
                Printf.sprintf "{\"clients\": %d, \"jobs_per_sec\": %.1f}" clients rate)
              throughput));
      close_out oc;
      Fmt.pr "  machine-readable results written to %s@." server_json_file)

(* ------------------------------------------------------------------ *)
(* Cluster: warm throughput scaling, shards x clients                  *)
(* ------------------------------------------------------------------ *)

module Store = Failatom_cluster.Store
module Shard_map = Failatom_cluster.Shard_map
module Supervisor = Failatom_cluster.Supervisor
module Json = Failatom_core.Json

(* The workload is a mix of apps, not one program: digest affinity
   sends each program to one home shard, so a single-app load would
   exercise exactly one shard regardless of fleet size. *)
let cluster_apps =
  [ "RBTree"; "stdQ"; "HashedMap"; "LinkedList"; "Dynarray"; "adaptorChain";
    "CircularList"; "LLMap" ]

let cluster_requests =
  lazy
    (Array.of_list
       (List.map
          (fun name ->
            { (Protocol.default_request Protocol.Detect (Protocol.App name)) with
              Protocol.infer = true })
          cluster_apps))

module Net = Failatom_server.Net

(* Pre-rendered submit frames: the load generators write these bytes
   verbatim and never JSON-parse the (large) replies, so client-side
   decode cost cannot mask the fleet's serving capacity. *)
let submit_lines =
  lazy
    (Array.map
       (fun req ->
         Json.to_string (Protocol.request_to_json (Protocol.Submit req)))
       (Lazy.force cluster_requests))

let reply_head = "{\"ok\":true,\"job\":\""
let done_mark = "\",\"state\":\"done\""

(* The hidden [cluster-worker] mode, run as a separate *process* per
   slice of the client population: neither the bench runtime's thread
   lock nor the fleet under test ever serialises the load generators.
   Each of [conns] threads opens a raw socket and pumps [jobs] warm
   submissions round-robin over the app mix.  Replies are checked
   byte-wise: the head yields the job id (whose [s<i>-] prefix
   attributes the job to a shard) and the state, and a warm done
   reply's tail — everything after the id — must be byte-identical to
   the first tail seen for that app, which checks the cluster-wide
   determinism guarantee at full speed.  One summary line goes to
   stdout for the parent. *)
let run_cluster_worker ~socket_path ~conns ~jobs ~offset =
  let lines = Lazy.force submit_lines in
  let napps = Array.length lines in
  let nshards = 16 in
  let per_shard = Array.make nshards 0 in
  let errors = ref 0 in
  let tally = Mutex.create () in
  let expected = Array.make napps None in
  let head_len = String.length reply_head in
  let worker c () =
    let mine = Array.make nshards 0 in
    let mistakes = ref 0 in
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket_path);
    let r = Net.reader fd in
    ignore (Net.read_line r);
    (* greeting *)
    for j = 0 to jobs - 1 do
      let a = (offset + c + j) mod napps in
      Net.write_line fd lines.(a);
      match Net.read_line r with
      | None -> incr mistakes
      | Some reply ->
        if
          String.length reply <= head_len
          || not (String.equal (String.sub reply 0 head_len) reply_head)
        then incr mistakes
        else begin
          let id_end =
            match String.index_from_opt reply head_len '"' with
            | Some i -> i
            | None -> head_len
          in
          let id = String.sub reply head_len (id_end - head_len) in
          (match Shard_map.parse_job_id id with
           | Some (s, _) when s < nshards -> mine.(s) <- mine.(s) + 1
           | _ -> mine.(0) <- mine.(0) + 1);
          let tail = String.sub reply id_end (String.length reply - id_end) in
          let dlen = String.length done_mark in
          if
            String.length tail >= dlen
            && String.equal (String.sub tail 0 dlen) done_mark
          then begin
            Mutex.lock tally;
            (match expected.(a) with
             | None -> expected.(a) <- Some tail
             | Some t -> if not (String.equal t tail) then incr mistakes);
            Mutex.unlock tally
          end
          else begin
            (* cold job (first touch after a steal, say): drain its
               watch stream to the terminal frame *)
            Net.write_line fd
              (Json.to_string (Protocol.request_to_json (Protocol.Watch id)));
            let rec drain () =
              match Net.read_line r with
              | None -> incr mistakes
              | Some frame -> (
                match Json.str_member "event" (Json.of_string frame) with
                | Some ("done" | "error" | "cancelled" | "timeout") -> ()
                | Some _ | None -> drain ()
                | exception Json.Parse_error _ -> incr mistakes)
            in
            drain ()
          end
        end
    done;
    Net.close_noerr fd;
    Mutex.lock tally;
    Array.iteri (fun i n -> per_shard.(i) <- per_shard.(i) + n) mine;
    errors := !errors + !mistakes;
    Mutex.unlock tally
  in
  let threads = List.init conns (fun c -> Thread.create (worker c) ()) in
  List.iter Thread.join threads;
  Printf.printf "per_shard=%s errors=%d\n"
    (String.concat "," (Array.to_list (Array.map string_of_int per_shard)))
    !errors

(* Spawns [clients] connections split over up to 8 worker processes
   and returns (jobs/s, per-shard counts). *)
let measure_workers ~socket_path ~clients ~jobs_per_client ~shards =
  let self = Sys.executable_name in
  let procs = min clients 8 in
  let conns = max 1 (clients / procs) in
  let spawn p =
    let rd, wr = Unix.pipe () in
    let argv =
      [| self; "cluster-worker"; socket_path; string_of_int conns;
         string_of_int jobs_per_client; string_of_int (p * conns) |]
    in
    let pid = Unix.create_process self argv Unix.stdin wr Unix.stderr in
    Unix.close wr;
    (pid, rd)
  in
  let t0 = Unix.gettimeofday () in
  let workers = List.init procs spawn in
  let outputs =
    List.map
      (fun (pid, rd) ->
        let ic = Unix.in_channel_of_descr rd in
        let line = try input_line ic with End_of_file -> "" in
        close_in ic;
        ignore (Unix.waitpid [] pid);
        line)
      workers
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let per_shard = Array.make (max shards 1) 0 in
  let errors = ref 0 in
  List.iter
    (fun line ->
      try
        Scanf.sscanf line "per_shard=%s@ errors=%d" (fun counts e ->
            List.iteri
              (fun i c ->
                let n = int_of_string c in
                if i < Array.length per_shard then
                  per_shard.(i) <- per_shard.(i) + n
                else per_shard.(0) <- per_shard.(0) + n)
              (String.split_on_char ',' counts);
            errors := !errors + e)
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> incr errors)
    outputs;
  if !errors > 0 then
    failwith
      (Printf.sprintf "cluster bench: %d reply error(s)/byte mismatch(es)"
         !errors);
  (float_of_int (procs * conns * jobs_per_client) /. wall_s, per_shard)

(* Warm every home shard (and the store).  Two rounds: the first
   computes each app (cached=false), the second pins every warm reply
   to its stable cached=true form so the workers' byte checks hold. *)
let cluster_warm ~socket_path =
  for _round = 1 to 2 do
    Array.iter
      (fun req ->
        Client.with_conn ~retries:10 ~socket_path (fun conn ->
            match Client.submit_wait conn req with
            | Client.Completed _ -> ()
            | _ -> failwith "cluster warm-up job did not complete"))
      (Lazy.force cluster_requests)
  done

let failatom_exe () =
  match Sys.getenv_opt "FAILATOM_EXE" with
  | Some exe when Sys.file_exists exe -> Some exe
  | _ ->
    let candidate =
      Filename.concat
        (Filename.dirname Sys.executable_name)
        (Filename.concat ".." (Filename.concat "bin" "failatom.exe"))
    in
    if Sys.file_exists candidate then Some candidate else None

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun n -> rm_rf (Filename.concat p n)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p

(* Folds the cluster results into BENCH_server.json next to the
   single-server figures (which [section_server] writes first). *)
let write_cluster_json ~baseline_16 ~results ~ratio ~pass =
  let existing =
    if Sys.file_exists server_json_file then begin
      let ic = open_in_bin server_json_file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string s with
      | Json.Obj fields -> List.remove_assoc "cluster" fields
      | _ | (exception Json.Parse_error _) -> []
    end
    else []
  in
  let grid =
    Json.List
      (List.map
         (fun (shards, clients, rate, per_shard) ->
           Json.Obj
             [ ("shards", Json.Int shards);
               ("clients", Json.Int clients);
               ("jobs_per_sec", Json.Float (Float.round (rate *. 10.) /. 10.));
               ( "per_shard_jobs",
                 Json.List
                   (Array.to_list (Array.map (fun n -> Json.Int n) per_shard)) ) ])
         results)
  in
  let cluster =
    Json.Obj
      [ ("apps", Json.List (List.map (fun a -> Json.Str a) cluster_apps));
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ("single_16_jobs_per_sec", Json.Float (Float.round (baseline_16 *. 10.) /. 10.));
        ("grid", grid);
        ("ratio_4x64_vs_single16", Json.Float (Float.round (ratio *. 100.) /. 100.));
        ("pass_3x", Json.Bool pass) ]
  in
  let oc = open_out server_json_file in
  output_string oc (Json.to_string (Json.Obj (existing @ [ ("cluster", cluster) ])));
  output_char oc '\n';
  close_out oc

(* The fleet under test runs as real child processes — [failatom
   serve] for the single-server baseline, [failatom cluster] for the
   grid — so the bench process itself contributes nothing to either
   side of the comparison. *)
let with_child_fleet ~argv ~socket_path f =
  let exe = argv.(0) in
  let pid = Unix.create_process exe argv Unix.stdin Unix.stdout Unix.stderr in
  Fun.protect
    ~finally:(fun () ->
      (try Client.with_conn ~retries:3 ~socket_path Client.shutdown
       with _ -> (
         try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()));
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      if Sys.file_exists socket_path then Sys.remove socket_path)
    (fun () ->
      (* wait until the fleet greets on the public socket *)
      Client.with_conn ~retries:30 ~socket_path (fun _ -> ());
      f ())

let section_cluster () =
  Fmt.pr "@.== Cluster: warm throughput, shards x clients ========================@.";
  Fmt.pr "  (real child processes throughout: [failatom serve] as the single-@.";
  Fmt.pr "   server baseline, [failatom cluster] fleets for the grid, raw-socket@.";
  Fmt.pr "   load generators split over worker processes; every warm reply is@.";
  Fmt.pr "   byte-checked against the first one seen for its app)@.";
  match failatom_exe () with
  | None ->
    Fmt.pr "  SKIPPED: failatom binary not found (set FAILATOM_EXE)@."
  | Some exe ->
    let jobs_per_client = if bench_short then 10 else 40 in
    let shard_counts = if bench_short then [ 2 ] else [ 1; 2; 4 ] in
    let client_counts = if bench_short then [ 1; 8 ] else [ 1; 4; 16; 64 ] in
    let tmp name =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fa_bench_%s_%d" name (Unix.getpid ()))
    in
    (* baseline: one [failatom serve] daemon, 16 clients, same workload *)
    let baseline_16 =
      let socket_path = tmp "base.sock" in
      with_child_fleet
        ~argv:[| exe; "serve"; "--socket"; socket_path; "--workers"; "2" |]
        ~socket_path
        (fun () ->
          cluster_warm ~socket_path;
          fst
            (measure_workers ~socket_path ~clients:16 ~jobs_per_client
               ~shards:1))
    in
    Fmt.pr "%-24s %8.0f jobs/s@." "single server, 16 clients" baseline_16;
    let results = ref [] in
    List.iter
      (fun shards ->
        let base = tmp (Printf.sprintf "c%d.sock" shards) in
        let store_dir = base ^ ".store" in
        with_child_fleet
          ~argv:
            [| exe; "cluster"; "--socket"; base;
               "--shards"; string_of_int shards; "--workers"; "2";
               "--store"; store_dir |]
          ~socket_path:base
          (fun () ->
            cluster_warm ~socket_path:base;
            List.iter
              (fun clients ->
                let rate, per_shard =
                  measure_workers ~socket_path:base ~clients ~jobs_per_client
                    ~shards
                in
                Fmt.pr
                  "%d shard(s), %2d client(s): %8.0f jobs/s  (per shard: %s)@."
                  shards clients rate
                  (String.concat " "
                     (Array.to_list (Array.map string_of_int per_shard)));
                results := (shards, clients, rate, per_shard) :: !results)
              client_counts);
        rm_rf store_dir)
      shard_counts;
    let results = List.rev !results in
    let rate_of shards clients =
      List.find_map
        (fun (s, c, r, _) -> if s = shards && c = clients then Some r else None)
        results
    in
    let top =
      match rate_of 4 64 with
      | Some r -> r
      | None -> (
        (* BENCH_SHORT: fall back to the largest measured cell *)
        match List.rev results with
        | (_, _, r, _) :: _ -> r
        | [] -> 0.)
    in
    let ratio = if baseline_16 > 0. then top /. baseline_16 else 0. in
    let pass = ratio >= 3.0 in
    Fmt.pr "%-24s %10.2fx   (target >= 3x vs single-16: %s)@." "cluster scaling"
      ratio
      (if pass then "pass" else "FAIL");
    write_cluster_json ~baseline_16 ~results ~ratio ~pass;
    Fmt.pr "  machine-readable results merged into %s@." server_json_file

(* ------------------------------------------------------------------ *)
(* Production masking: checkpoint vs copy-on-write rollback            *)
(* ------------------------------------------------------------------ *)

let mask_json_file = "BENCH_mask.json"

let mask_apps () =
  if bench_short then
    List.filter_map Registry.find [ "stdQ"; "LinkedList"; "RBTree" ]
  else Registry.all

(* Apps whose wrapped methods touch big receiver graphs: the eager
   checkpoint copies the whole reachable graph per call while the cow
   shadow saves only what the call actually dirties, so these are the
   rows the >= 2x rollback gate runs over. *)
let mask_large_graph = [ "CircularList"; "Dynarray"; "LinkedList"; "RBMap"; "RBTree" ]

type mask_row = {
  mr_app : Registry.t;
  mr_targets : int; (* wrapped methods in the plan *)
  mr_calls : int; (* wrapped calls entered (cow run) *)
  mr_hits : int; (* rollbacks exercised (cow run) *)
  mr_cp_wrap_ns : float; (* per wrapped call, checkpoint rollback *)
  mr_cow_wrap_ns : float;
  mr_cp_rb_ns : float; (* per rollback, checkpoint *)
  mr_cow_rb_ns : float;
  mr_speedup : float; (* cp rollback / cow rollback *)
  mr_identical : bool; (* outputs byte-equal across engines *)
}

let median = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let section_mask () =
  let module Plan = Failatom_prod.Plan in
  let module Armed = Failatom_prod.Armed in
  let module Perturb = Failatom_prod.Perturb in
  let module Scorecard = Failatom_prod.Scorecard in
  let module Produce = Failatom_prod.Produce in
  Fmt.pr "@.== Production masking: checkpoint vs cow rollback ======================@.";
  Fmt.pr "  (armed production runs with a rate-1000 at-exit canary: every wrapped@.";
  Fmt.pr "   call is perturbed, rolled back and retried; per-rollback cost comes@.";
  Fmt.pr "   from the scorecard timings, best of interleaved rounds)@.";
  let rounds = if bench_short then 2 else 3 in
  let times = if bench_short then 1 else 2 in
  let perturb =
    { Produce.seed = 7;
      rate_per_mille = 1000;
      max_fires = None;
      point = Perturb.At_exit;
      fallback_exceptions = [] }
  in
  let outcome_of (app : Registry.t) =
    match
      List.find_opt
        (fun (o : Harness.outcome) -> o.Harness.app.Registry.name = app.Registry.name)
        (Lazy.force sweep)
    with
    | Some o -> o
    | None -> Harness.detect_app app
  in
  Fmt.pr "%-14s %8s %7s %6s %11s %11s %11s %11s %8s@." "Application" "targets"
    "calls" "hits" "cp-wrap" "cow-wrap" "cp-rb" "cow-rb" "speedup";
  let rows =
    List.filter_map
      (fun (app : Registry.t) ->
        let o = outcome_of app in
        let program = Failatom_minilang.Minilang.parse app.Registry.source in
        let flavor = Harness.flavor_of_suite app.Registry.suite in
        let plan =
          Plan.build ~config:Config.default ~flavor ~program
            ~detection:o.Harness.detection ~classification:o.Harness.classification
        in
        let targets = Method_id.Set.cardinal (Plan.target_set plan) in
        if targets = 0 then begin
          Fmt.pr "%-14s %8d   (no wrapped methods; skipped)@." app.Registry.name
            targets;
          None
        end
        else begin
          let produce rollback =
            match Produce.run ~rollback ~perturb ~times ~plan program with
            | Ok r -> r
            | Error msg ->
              Fmt.failwith "mask bench: %s (%s): %s" app.Registry.name
                (Armed.rollback_name rollback) msg
          in
          (* per-call wrap and per-rollback cost of one produce set *)
          let costs (r : Produce.result) =
            let sc = r.Produce.scorecard in
            let wrap, rb =
              List.fold_left
                (fun (w, b) (tr : Scorecard.timing_row) ->
                  (w + tr.Scorecard.t_wrap_ns, b + tr.Scorecard.t_rollback_ns))
                (0, 0) sc.Scorecard.timings
            in
            let per total count =
              if count = 0 then 0.0 else float_of_int total /. float_of_int count
            in
            (per wrap (Scorecard.calls sc), per rb (Scorecard.hits sc))
          in
          let outputs (r : Produce.result) =
            List.map (fun (rr : Produce.run_report) -> rr.Produce.output) r.Produce.runs
          in
          (* interleaved rounds; best (lowest) per-event cost on each side *)
          let cp_wrap = ref infinity and cp_rb = ref infinity in
          let cow_wrap = ref infinity and cow_rb = ref infinity in
          let last_cp = ref None and last_cow = ref None in
          for _ = 1 to rounds do
            let cp = produce Armed.Rb_checkpoint in
            let cow = produce Armed.Rb_cow in
            let w, b = costs cp in
            if b < !cp_rb then begin cp_wrap := w; cp_rb := b end;
            let w, b = costs cow in
            if b < !cow_rb then begin cow_wrap := w; cow_rb := b end;
            last_cp := Some cp;
            last_cow := Some cow
          done;
          let cp = Option.get !last_cp and cow = Option.get !last_cow in
          let identical = outputs cp = outputs cow in
          let sc = cow.Produce.scorecard in
          let speedup = if !cow_rb > 0.0 then !cp_rb /. !cow_rb else 0.0 in
          let row =
            { mr_app = app;
              mr_targets = targets;
              mr_calls = Scorecard.calls sc;
              mr_hits = Scorecard.hits sc;
              mr_cp_wrap_ns = !cp_wrap;
              mr_cow_wrap_ns = !cow_wrap;
              mr_cp_rb_ns = !cp_rb;
              mr_cow_rb_ns = !cow_rb;
              mr_speedup = speedup;
              mr_identical = identical }
          in
          Fmt.pr "%-14s %8d %7d %6d %10.0fn %10.0fn %10.0fn %10.0fn %7.2fx%s@."
            app.Registry.name targets row.mr_calls row.mr_hits row.mr_cp_wrap_ns
            row.mr_cow_wrap_ns row.mr_cp_rb_ns row.mr_cow_rb_ns speedup
            (if identical then "" else "  OUTPUT MISMATCH");
          Some row
        end)
      (mask_apps ())
  in
  let pass_identity = List.for_all (fun r -> r.mr_identical) rows in
  let large =
    List.filter
      (fun r -> List.mem r.mr_app.Registry.name mask_large_graph && r.mr_hits > 0)
      rows
  in
  let median_speedup = median (List.map (fun r -> r.mr_speedup) large) in
  let pass_speedup = large = [] || median_speedup >= 2.0 in
  let pass = pass_identity && pass_speedup in
  Fmt.pr "  outputs identical across rollback engines on every app: %b@."
    pass_identity;
  Fmt.pr "  median cow rollback speedup on large-graph apps (%s): %.2fx \
          (target >= 2.0x): %b@."
    (String.concat ", " (List.map (fun r -> r.mr_app.Registry.name) large))
    median_speedup pass_speedup;
  let oc = open_out mask_json_file in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"mask_rollback\",\n";
  out "  \"short\": %b,\n" bench_short;
  out "  \"rounds\": %d,\n" rounds;
  out "  \"times\": %d,\n" times;
  out "  \"perturb_seed\": %d,\n" perturb.Produce.seed;
  out "  \"apps\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"name\": \"%s\", \"targets\": %d, \"calls\": %d, \"hits\": %d, \
         \"checkpoint_wrap_ns_per_call\": %.1f, \"cow_wrap_ns_per_call\": %.1f, \
         \"checkpoint_rollback_ns\": %.1f, \"cow_rollback_ns\": %.1f, \
         \"rollback_speedup\": %.3f, \"outputs_identical\": %b}%s\n"
        (json_escape r.mr_app.Registry.name)
        r.mr_targets r.mr_calls r.mr_hits r.mr_cp_wrap_ns r.mr_cow_wrap_ns
        r.mr_cp_rb_ns r.mr_cow_rb_ns r.mr_speedup r.mr_identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n";
  out "  \"large_graph_apps\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun r -> Printf.sprintf "\"%s\"" (json_escape r.mr_app.Registry.name))
          large));
  out "  \"median_large_graph_speedup\": %.3f,\n" median_speedup;
  out "  \"pass_identity\": %b,\n" pass_identity;
  out "  \"pass_speedup\": %b,\n" pass_speedup;
  out "  \"pass\": %b\n" pass;
  out "}\n";
  close_out oc;
  Fmt.pr "  machine-readable results written to %s@." mask_json_file

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let sections =
  [ ("table1", section_table1);
    ("fig2", section_fig2);
    ("fig3", section_fig3);
    ("fig4", section_fig4);
    ("case-study", section_case_study);
    ("campaign", section_campaign);
    ("snapshot", section_snapshot);
    ("interp", section_interp);
    ("obs-overhead", section_obs_overhead);
    ("fig5", section_fig5);
    ("ablation", section_ablation);
    ("prune", section_prune);
    ("mask", section_mask);
    ("concurrent", section_concurrent);
    ("server", section_server);
    ("cluster", section_cluster) ]

let () =
  (* hidden re-invocation as a cluster load-generator process *)
  match Array.to_list Sys.argv with
  | [ _; "cluster-worker"; socket; conns; jobs; offset ] ->
    run_cluster_worker ~socket_path:socket ~conns:(int_of_string conns)
      ~jobs:(int_of_string jobs) ~offset:(int_of_string offset)
  | _ ->
  let requested =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> List.map fst sections
    | args -> args
  in
  Fmt.pr "failatom benchmark harness — reproducing the DSN'03 evaluation@.";
  Fmt.pr "running detection sweep over %d applications...@." (List.length Registry.all);
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Fmt.epr "unknown section %S (known: %s)@." name
          (String.concat ", " (List.map fst sections));
        exit 1)
    requested
