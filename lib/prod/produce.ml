(* Production mode: arm from a plan, run, score.

   Filter attach order per VM matters — attach_filter prepends, so the
   igniter goes on first (innermost: it raises from inside the armed
   wrapper's protection), the armed wrapper second, the canary last
   (outermost: it sees the masked outcome and owns validation and
   retry). *)

open Failatom_core
open Failatom_runtime
open Failatom_minilang

type perturb_spec = {
  seed : int;
  rate_per_mille : int;
  max_fires : int option;
  point : Perturb.point;
  fallback_exceptions : string list;
}

type run_report = { output : string; escaped : string option }
type result = { scorecard : Scorecard.t; runs : run_report list }

let run ?(config = Config.default) ?(rollback = Armed.Rb_checkpoint) ?perturb
    ?policy ?(times = 1) ~plan program =
  let digest = Minilang.program_digest program in
  match Plan.validate plan ~program_digest:digest with
  | Error msg -> Error msg
  | Ok () ->
    let targets = Plan.target_set plan in
    let image = Compile.image program in
    let armed = Armed.create ~rollback ~config ~targets () in
    let perturb =
      Option.map
        (fun spec ->
          Perturb.create ~rate_per_mille:spec.rate_per_mille
            ?max_fires:spec.max_fires ~point:spec.point
            ~fallback_exceptions:spec.fallback_exceptions ~config ~targets
            ~seed:spec.seed ())
        perturb
    in
    let one_run () =
      let vm = Compile.instantiate image in
      Option.iter (fun p -> Perturb.arm_igniter p vm) perturb;
      Armed.arm armed vm;
      Option.iter (fun p -> Perturb.arm_canary p vm) perturb;
      let escaped =
        match Compile.run_main ?policy vm with
        | _ -> None
        | exception Vm.Mini_raise e -> Some e.Vm.exn_class
      in
      { output = Vm.output vm; escaped }
    in
    let runs = List.init times (fun _ -> one_run ()) in
    let scorecard =
      Scorecard.build ~program_digest:digest ~armed ?perturb ~runs:times ()
    in
    Ok { scorecard; runs }
