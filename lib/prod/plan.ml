(* The failatom.plan/1 artifact: detection's output contract for the
   production runtime.

   Rendering is deterministic — targets and per-method verdicts are
   sorted, field order is fixed — so the same detection always produces
   the same bytes and plans can be diffed or content-addressed.  Parsing
   is strict on required fields (a plan missing its digest must never
   arm) and lenient on unknown ones (additive extensions from newer
   producers are ignored). *)

open Failatom_core
module ML = Failatom_minilang

let schema_id = "failatom.plan/1"

type meth = { pm_id : Method_id.t; pm_verdict : Classify.verdict; pm_calls : int }

type t = {
  program_digest : string;
  config_fingerprint : string;
  flavor : string;
  wrap_policy : Config.wrap_policy;
  injections : int;
  targets : Method_id.t list;
  methods : meth list;
}

let flavor_wire_name = function
  | Detect.Source_weaving -> "source"
  | Detect.Load_time_filters -> "binary"

let build ~config ~flavor ~program ~detection:(d : Detect.result)
    ~classification =
  let targets =
    Method_id.Set.elements (Mask.targets config classification)
  in
  let methods =
    List.map
      (fun (r : Classify.method_report) ->
        { pm_id = r.Classify.id;
          pm_verdict = r.Classify.verdict;
          pm_calls = r.Classify.calls })
      (Classify.reports classification)
  in
  let methods =
    List.sort (fun a b -> Method_id.compare a.pm_id b.pm_id) methods
  in
  { program_digest = ML.Minilang.program_digest program;
    config_fingerprint = Config.fingerprint config;
    flavor = flavor_wire_name flavor;
    wrap_policy = config.Config.wrap_policy;
    injections = d.Detect.injections;
    targets;
    methods }

let target_set t = Method_id.Set.of_list t.targets

let validate ?config t ~program_digest =
  if not (String.equal t.program_digest program_digest) then
    Error
      (Printf.sprintf
         "stale plan: computed for program digest %s, current program is %s"
         t.program_digest program_digest)
  else
    match config with
    | Some c when not (String.equal t.config_fingerprint (Config.fingerprint c))
      ->
      Error
        (Printf.sprintf
           "stale plan: computed under config %s, current config is %s"
           t.config_fingerprint (Config.fingerprint c))
    | _ -> Ok ()

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let method_id_json (id : Method_id.t) = Json.Str (Method_id.to_string id)

let meth_json m =
  Json.Obj
    [ ("method", method_id_json m.pm_id);
      ("verdict", Json.Str (Classify.verdict_wire_name m.pm_verdict));
      ("calls", Json.Int m.pm_calls) ]

let json_of t =
  Json.Obj
    [ ("schema", Json.Str schema_id);
      ("program_digest", Json.Str t.program_digest);
      ("config_fingerprint", Json.Str t.config_fingerprint);
      ("flavor", Json.Str t.flavor);
      ("wrap_policy", Json.Str (Config.wrap_policy_name t.wrap_policy));
      ("injections", Json.Int t.injections);
      ("targets", Json.List (List.map method_id_json t.targets));
      ("methods", Json.List (List.map meth_json t.methods)) ]

let to_json t = Json.to_string (json_of t)

let ( let* ) = Result.bind

let require name = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "plan: missing or ill-typed field %S" name)

let method_id_of_string s =
  match String.index_opt s '.' with
  | Some i when i > 0 && i < String.length s - 1 ->
    Ok
      (Method_id.make
         (String.sub s 0 i)
         (String.sub s (i + 1) (String.length s - i - 1)))
  | _ -> Error (Printf.sprintf "plan: malformed method id %S" s)

let method_id_list name j =
  let* items = require name (Json.list_member name j) in
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* s = require name (Json.to_str item) in
      let* id = method_id_of_string s in
      Ok (id :: acc))
    (Ok []) items
  |> Result.map List.rev

let meth_of_json j =
  let* s = require "methods.method" (Json.str_member "method" j) in
  let* pm_id = method_id_of_string s in
  let* v = require "methods.verdict" (Json.str_member "verdict" j) in
  let* pm_verdict =
    match Classify.verdict_of_wire_name v with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "plan: unknown verdict %S" v)
  in
  let* pm_calls = require "methods.calls" (Json.int_member "calls" j) in
  Ok { pm_id; pm_verdict; pm_calls }

let of_json j =
  let* schema = require "schema" (Json.str_member "schema" j) in
  if not (String.equal schema schema_id) then
    Error (Printf.sprintf "plan: unsupported schema %S (want %S)" schema schema_id)
  else
    let* program_digest =
      require "program_digest" (Json.str_member "program_digest" j)
    in
    let* config_fingerprint =
      require "config_fingerprint" (Json.str_member "config_fingerprint" j)
    in
    let* flavor = require "flavor" (Json.str_member "flavor" j) in
    let* policy = require "wrap_policy" (Json.str_member "wrap_policy" j) in
    let* wrap_policy =
      match Config.wrap_policy_of_name policy with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "plan: unknown wrap policy %S" policy)
    in
    let* injections = require "injections" (Json.int_member "injections" j) in
    let* targets = method_id_list "targets" j in
    let* methods_json = require "methods" (Json.list_member "methods" j) in
    let* methods =
      List.fold_left
        (fun acc m ->
          let* acc = acc in
          let* m = meth_of_json m in
          Ok (m :: acc))
        (Ok []) methods_json
      |> Result.map List.rev
    in
    Ok
      { program_digest; config_fingerprint; flavor; wrap_policy; injections;
        targets; methods }

let of_string s =
  match Json.of_string s with
  | exception Json.Parse_error msg -> Error ("plan: " ^ msg)
  | j -> of_json j

let save_file t path =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "failatom-plan" ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n');
  Sys.rename tmp path

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> of_string (String.trim contents)
