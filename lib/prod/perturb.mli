(** Canary perturbation: live validation of failure-obliviousness.

    A masked method is supposed to be failure-atomic by construction:
    if it ends exceptionally, the armed wrapper restores the receiver
    graph and the caller can retry.  The canary channel tests that
    promise in production instead of assuming it: on a seeded,
    rate-limited fraction of calls to wrapped methods it injects one of
    the method's declared exceptions, lets the armed wrapper roll the
    call back, re-canonicalizes the receiver graph against its pre-call
    form, and then transparently retries the call.  A perturbation
    whose rollback does not reproduce the pre-call graph is a
    {e validation failure} — the masking is not protecting that method
    — and is reported per method in the resilience scorecard.

    The channel is two filters around the armed wrapper:

    - the {e canary} (outermost; {!arm_canary}) draws the RNG, snapshots
      the pre-call canonical form when a call is selected, validates and
      retries afterwards;
    - the {e igniter} (innermost; {!arm_igniter}) raises the injected
      exception from inside the armed wrapper's protection — at entry,
      or after the body has run and mutated state ({!At_exit}, the
      default, which exercises a real rollback).

    Attach order on each VM must therefore be: igniter first, armed
    wrapper second, canary last (filters attach innermost-first).

    Injection draws are deterministic in the seed and the call sequence;
    under the cooperative schedule a perturbed run is reproducible. *)

open Failatom_core
open Failatom_runtime

type point =
  | At_entry  (** raise before the body runs: rollback is trivial *)
  | At_exit
      (** raise after the body ran and mutated state: the rollback and
          the retry both do real work.  The retry re-executes the body,
          so side effects outside the heap (output) occur twice. *)

val point_name : point -> string
(** ["entry"] / ["exit"]. *)

val point_of_name : string -> point option

type method_stats = private {
  mutable pv_fired : int;
  mutable pv_validated : int;
  mutable pv_interfered : int;
      (** perturbations whose post-rollback graph differed from the
          pre-call snapshot while another thread had written in between:
          a per-thread rollback rightly preserves the other thread's
          work, so the comparison is inconclusive rather than failed *)
  mutable pv_failed : int;
  mutable pv_diff : string option;
      (** a field path witnessing the first failed validation *)
}

type t

val create :
  ?rate_per_mille:int -> ?max_fires:int -> ?point:point ->
  ?fallback_exceptions:string list -> config:Config.t ->
  targets:Method_id.Set.t -> seed:int -> unit -> t
(** A perturbation channel for the given wrapped methods.
    [rate_per_mille] (default 10, i.e. 1% of calls) is the selection
    rate; [max_fires] (default unlimited) caps total injections;
    [fallback_exceptions] are the candidate classes for methods with an
    empty [throws] clause (default none: such methods are never
    perturbed).  [config] supplies the root policy so the validated
    graph is exactly the graph the armed wrapper protects. *)

val point_of : t -> point
val seed_of : t -> int
val rate_of : t -> int

val arm_igniter : t -> Vm.t -> unit
(** Attach the igniter to the target methods — {e before} the armed
    wrapper, so it ends up innermost. *)

val arm_canary : t -> Vm.t -> unit
(** Attach the canary to the target methods — {e after} the armed
    wrapper, so it ends up outermost.  Observability: counts
    [prod.perturb_fired] / [prod.perturb_validated] /
    [prod.perturb_interfered] / [prod.perturb_failed] / [prod.retry];
    validation time feeds [prod.validate_ns]. *)

val fired : t -> int
val validated : t -> int
val interfered : t -> int
val failed : t -> int
val retries : t -> int

val per_method : t -> (Method_id.t * method_stats) list
(** Per-method verdicts of every method that was perturbed at least
    once, sorted by method id. *)
