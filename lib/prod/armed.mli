(** Production atomicity wrappers (the always-on masking runtime).

    Where detection's {!Failatom_core.Mask.masking_filter} exists to
    find non-atomic methods, the armed wrapper exists to run forever in
    front of already-classified ones: it must make the common path — a
    call that returns normally — as close to free as possible, and keep
    per-method evidence that the masking is earning its keep.

    Two rollback engines are available behind one interface:

    - {!Rb_checkpoint} delegates to {!Failatom_runtime.Checkpoint} under
      the configured strategy — the detection-phase machinery, used as
      the reference semantics.
    - {!Rb_cow} opens a copy-on-write {!Failatom_runtime.Shadow} at
      entry (O(1), nothing copied) and, only on an exceptional exit,
      restores the saved payloads of the dirty objects that lie inside
      the entry-time reachable graph of the protected roots.  The
      restored graph is bitwise-identical to what a checkpoint rollback
      of the same call would produce; the entry cost no longer scales
      with graph size.

    One {!t} accumulates statistics across every VM it arms, so a
    multi-run production campaign reports totals, not per-run
    fragments. *)

open Failatom_core
open Failatom_runtime

type rollback = Rb_checkpoint | Rb_cow

val rollback_name : rollback -> string
(** ["checkpoint"] / ["cow"]. *)

val rollback_of_name : string -> rollback option

type method_stats = private {
  mutable ms_calls : int;  (** wrapped calls entered *)
  mutable ms_hits : int;  (** exceptional exits rolled back *)
  mutable ms_wrap_ns : int;
      (** total entry + normal-exit bookkeeping time *)
  mutable ms_rollback_ns : int;  (** total rollback time *)
}

type t

val create :
  ?rollback:rollback -> config:Config.t -> targets:Method_id.Set.t ->
  unit -> t
(** A stats-accumulating wrapper set for the given target methods.
    [config] supplies the checkpoint strategy and the root policy
    (receiver only vs receiver plus reference arguments), exactly as in
    detection-phase masking.  Default rollback: {!Rb_checkpoint}. *)

val rollback_mode : t -> rollback
val targets : t -> Method_id.Set.t

val arm : t -> Vm.t -> unit
(** Attaches an armed wrapper to every target method defined by the VM.
    May be called on any number of VMs; they all feed the same
    statistics.  Observability: increments [mask.calls] / [mask.hits]
    and feeds the [mask.wrap_ns] / [mask.rollback_ns] histograms. *)

val per_method : t -> (Method_id.t * method_stats) list
(** Statistics of every method that was actually armed, sorted by
    method id. *)

val calls : t -> int
val hits : t -> int
