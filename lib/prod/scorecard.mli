(** The resilience scorecard ([failatom.resilience/1]): evidence that
    production masking is working.

    One scorecard summarizes a production run (or a batch of runs):
    how often the armed wrappers fired and rolled back, what the
    rollbacks cost, and how the canary perturbations fared per method.
    Everything except the ["timings"] member is deterministic for a
    fixed program, plan, seed and schedule — CI diffs a scorecard
    against a golden copy with the timings stripped
    ([jq 'del(.timings)']). *)

open Failatom_core

val schema_id : string
(** ["failatom.resilience/1"]. *)

type meth_row = {
  r_id : Method_id.t;
  r_calls : int;  (** wrapped calls entered *)
  r_hits : int;  (** exceptional exits rolled back *)
  r_fired : int;  (** canary perturbations injected *)
  r_validated : int;  (** perturbations whose rollback reproduced the pre-call graph *)
  r_interfered : int;
      (** perturbations left inconclusive because another thread wrote
          during the call — a per-thread rollback rightly preserves
          foreign writes, so the pre-call snapshot is not the reference *)
  r_failed : int;  (** perturbations that did not restore the graph *)
  r_diff : string option;  (** witness path of the first failed validation *)
}

type timing_row = { t_id : Method_id.t; t_wrap_ns : int; t_rollback_ns : int }

type t = {
  program_digest : string;
  rollback : string;  (** "checkpoint" / "cow" *)
  seed : int;
  rate : int;  (** per-mille *)
  point : string;  (** "entry" / "exit" *)
  runs : int;
  retries : int;
  rows : meth_row list;  (** sorted by method id *)
  timings : timing_row list;  (** sorted by method id; nondeterministic *)
}

val build :
  program_digest:string -> armed:Armed.t -> ?perturb:Perturb.t ->
  runs:int -> unit -> t
(** Assembles the scorecard of a finished production run set.  Without
    [perturb] the canary columns are zero and the header records seed 0,
    rate 0. *)

val calls : t -> int
val hits : t -> int
val fired : t -> int
val validated : t -> int
val interfered : t -> int
val failed : t -> int

val hit_rate : t -> float
(** [hits / calls]; 0 when no calls. *)

val to_json : t -> string
(** Deterministic except for the ["timings"] member. *)

val of_string : string -> (t, string) result

val save_file : t -> string -> unit
(** Atomic write (temp file + rename): a crash — or a [kill -9] —
    mid-write never leaves a torn or truncated scorecard behind. *)

val load_file : string -> (t, string) result

val pp : Format.formatter -> t -> unit
(** The table rendered by [failatom stats --resilience]. *)
