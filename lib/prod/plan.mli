(** The detection plan: a versioned, self-describing artifact
    ([failatom.plan/1]) carrying everything a production runtime needs
    to arm atomicity wrappers without re-running detection.

    Detection is the expensive produce-once phase; the plan is its
    output contract.  It records the digest of the program it was
    computed for and the fingerprint of the detection configuration, so
    a runtime can refuse to arm against a program (or config) the plan
    does not describe — serving stale wrappers would silently protect
    the wrong methods. *)

open Failatom_core

val schema_id : string
(** ["failatom.plan/1"]. *)

type meth = {
  pm_id : Method_id.t;
  pm_verdict : Classify.verdict;
  pm_calls : int;  (** dynamic calls in the detection baseline run *)
}

type t = {
  program_digest : string;  (** {!Failatom_minilang.Minilang.program_digest} *)
  config_fingerprint : string;  (** {!Config.fingerprint} of the detection config *)
  flavor : string;  (** wire flavor name of the detection run ("source"/"binary") *)
  wrap_policy : Config.wrap_policy;
  injections : int;  (** provenance: injection runs behind the classification *)
  targets : Method_id.t list;  (** methods to wrap, sorted *)
  methods : meth list;  (** per-method verdicts, sorted by id *)
}

val build :
  config:Config.t -> flavor:Detect.flavor ->
  program:Failatom_minilang.Ast.program ->
  detection:Detect.result -> classification:Classify.t -> t
(** Assembles the plan of a finished detection: targets are
    {!Mask.targets}[ config classification], the digest and fingerprint
    are computed from [program] and [config]. *)

val target_set : t -> Method_id.Set.t

val validate : ?config:Config.t -> t -> program_digest:string -> (unit, string) result
(** Refuses a stale plan: [Error] when the plan was computed for a
    different program digest, or (when [config] is given) under a
    detection configuration with a different fingerprint. *)

val to_json : t -> string
(** Deterministic [failatom.plan/1] rendering: same plan, same bytes. *)

val of_string : string -> (t, string) result
(** Strict inverse of {!to_json}: rejects a wrong or missing schema id
    and any absent required field (a plan from a future producer that
    dropped a field must not arm silently); unknown extra fields are
    ignored, so [failatom.plan/1] readers accept additive extensions. *)

val save_file : t -> string -> unit
(** Atomic write (temp file + rename): a crash mid-write never leaves a
    torn plan behind. *)

val load_file : string -> (t, string) result
