(* The failatom.resilience/1 artifact.

   The deterministic core (counts, verdicts, provenance) and the
   nondeterministic timings live under separate keys so consumers can
   strip the latter and get byte-stable documents. *)

open Failatom_core

let schema_id = "failatom.resilience/1"

type meth_row = {
  r_id : Method_id.t;
  r_calls : int;
  r_hits : int;
  r_fired : int;
  r_validated : int;
  r_interfered : int;
  r_failed : int;
  r_diff : string option;
}

type timing_row = { t_id : Method_id.t; t_wrap_ns : int; t_rollback_ns : int }

type t = {
  program_digest : string;
  rollback : string;
  seed : int;
  rate : int;
  point : string;
  runs : int;
  retries : int;
  rows : meth_row list;
  timings : timing_row list;
}

let build ~program_digest ~armed ?perturb ~runs () =
  let pstats =
    match perturb with
    | None -> Method_id.Map.empty
    | Some p ->
      List.fold_left
        (fun m (id, s) -> Method_id.Map.add id s m)
        Method_id.Map.empty (Perturb.per_method p)
  in
  let rows =
    List.map
      (fun (id, (a : Armed.method_stats)) ->
        let fired, validated, interfered, failed, diff =
          match Method_id.Map.find_opt id pstats with
          | None -> (0, 0, 0, 0, None)
          | Some (s : Perturb.method_stats) ->
            (s.Perturb.pv_fired, s.Perturb.pv_validated,
             s.Perturb.pv_interfered, s.Perturb.pv_failed, s.Perturb.pv_diff)
        in
        { r_id = id;
          r_calls = a.Armed.ms_calls;
          r_hits = a.Armed.ms_hits;
          r_fired = fired;
          r_validated = validated;
          r_interfered = interfered;
          r_failed = failed;
          r_diff = diff })
      (Armed.per_method armed)
  in
  let timings =
    List.map
      (fun (id, (a : Armed.method_stats)) ->
        { t_id = id;
          t_wrap_ns = a.Armed.ms_wrap_ns;
          t_rollback_ns = a.Armed.ms_rollback_ns })
      (Armed.per_method armed)
  in
  { program_digest;
    rollback = Armed.rollback_name (Armed.rollback_mode armed);
    seed = (match perturb with None -> 0 | Some p -> Perturb.seed_of p);
    rate = (match perturb with None -> 0 | Some p -> Perturb.rate_of p);
    point =
      (match perturb with
      | None -> Perturb.point_name Perturb.At_exit
      | Some p -> Perturb.point_name (Perturb.point_of p));
    runs;
    retries = (match perturb with None -> 0 | Some p -> Perturb.retries p);
    rows;
    timings }

let sum f t = List.fold_left (fun n r -> n + f r) 0 t.rows
let calls t = sum (fun r -> r.r_calls) t
let hits t = sum (fun r -> r.r_hits) t
let fired t = sum (fun r -> r.r_fired) t
let validated t = sum (fun r -> r.r_validated) t
let interfered t = sum (fun r -> r.r_interfered) t
let failed t = sum (fun r -> r.r_failed) t

let hit_rate t =
  let c = calls t in
  if c = 0 then 0.0 else float_of_int (hits t) /. float_of_int c

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let row_json r =
  Json.Obj
    ([ ("method", Json.Str (Method_id.to_string r.r_id));
       ("calls", Json.Int r.r_calls);
       ("hits", Json.Int r.r_hits);
       ("fired", Json.Int r.r_fired);
       ("validated", Json.Int r.r_validated);
       ("interfered", Json.Int r.r_interfered);
       ("failed", Json.Int r.r_failed) ]
    @ match r.r_diff with None -> [] | Some d -> [ ("diff", Json.Str d) ])

let timing_json tr =
  Json.Obj
    [ ("method", Json.Str (Method_id.to_string tr.t_id));
      ("wrap_ns", Json.Int tr.t_wrap_ns);
      ("rollback_ns", Json.Int tr.t_rollback_ns) ]

let json_of t =
  Json.Obj
    [ ("schema", Json.Str schema_id);
      ("program_digest", Json.Str t.program_digest);
      ("rollback", Json.Str t.rollback);
      ("seed", Json.Int t.seed);
      ("rate", Json.Int t.rate);
      ("point", Json.Str t.point);
      ("runs", Json.Int t.runs);
      ("retries", Json.Int t.retries);
      ("totals",
       Json.Obj
         [ ("calls", Json.Int (calls t));
           ("hits", Json.Int (hits t));
           ("fired", Json.Int (fired t));
           ("validated", Json.Int (validated t));
           ("interfered", Json.Int (interfered t));
           ("failed", Json.Int (failed t)) ]);
      ("methods", Json.List (List.map row_json t.rows));
      ("timings", Json.List (List.map timing_json t.timings)) ]

let to_json t = Json.to_string (json_of t)

let ( let* ) = Result.bind

let require name = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "resilience: missing or ill-typed field %S" name)

let method_id_of_string s =
  match String.index_opt s '.' with
  | Some i when i > 0 && i < String.length s - 1 ->
    Ok
      (Method_id.make
         (String.sub s 0 i)
         (String.sub s (i + 1) (String.length s - i - 1)))
  | _ -> Error (Printf.sprintf "resilience: malformed method id %S" s)

let row_of_json j =
  let* s = require "methods.method" (Json.str_member "method" j) in
  let* r_id = method_id_of_string s in
  let* r_calls = require "methods.calls" (Json.int_member "calls" j) in
  let* r_hits = require "methods.hits" (Json.int_member "hits" j) in
  let* r_fired = require "methods.fired" (Json.int_member "fired" j) in
  let* r_validated = require "methods.validated" (Json.int_member "validated" j) in
  let* r_interfered =
    require "methods.interfered" (Json.int_member "interfered" j)
  in
  let* r_failed = require "methods.failed" (Json.int_member "failed" j) in
  Ok { r_id; r_calls; r_hits; r_fired; r_validated; r_interfered; r_failed;
       r_diff = Json.str_member "diff" j }

let timing_of_json j =
  let* s = require "timings.method" (Json.str_member "method" j) in
  let* t_id = method_id_of_string s in
  let* t_wrap_ns = require "timings.wrap_ns" (Json.int_member "wrap_ns" j) in
  let* t_rollback_ns =
    require "timings.rollback_ns" (Json.int_member "rollback_ns" j)
  in
  Ok { t_id; t_wrap_ns; t_rollback_ns }

let list_of name parse j =
  let* items = require name (Json.list_member name j) in
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* v = parse item in
      Ok (v :: acc))
    (Ok []) items
  |> Result.map List.rev

let of_json j =
  let* schema = require "schema" (Json.str_member "schema" j) in
  if not (String.equal schema schema_id) then
    Error
      (Printf.sprintf "resilience: unsupported schema %S (want %S)" schema
         schema_id)
  else
    let* program_digest =
      require "program_digest" (Json.str_member "program_digest" j)
    in
    let* rollback = require "rollback" (Json.str_member "rollback" j) in
    let* seed = require "seed" (Json.int_member "seed" j) in
    let* rate = require "rate" (Json.int_member "rate" j) in
    let* point = require "point" (Json.str_member "point" j) in
    let* runs = require "runs" (Json.int_member "runs" j) in
    let* retries = require "retries" (Json.int_member "retries" j) in
    let* rows = list_of "methods" row_of_json j in
    let* timings = list_of "timings" timing_of_json j in
    Ok { program_digest; rollback; seed; rate; point; runs; retries; rows; timings }

let of_string s =
  match Json.of_string s with
  | exception Json.Parse_error msg -> Error ("resilience: " ^ msg)
  | j -> of_json j

let save_file t path =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "failatom-resilience" ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n');
  Sys.rename tmp path

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> of_string (String.trim contents)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_ns ppf ns =
  if ns >= 1_000_000_000 then
    Format.fprintf ppf "%.2fs" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then
    Format.fprintf ppf "%.1fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Format.fprintf ppf "%.1fus" (float_of_int ns /. 1e3)
  else Format.fprintf ppf "%dns" ns

let pp ppf t =
  let timing_of id =
    List.find_opt (fun tr -> Method_id.equal tr.t_id id) t.timings
  in
  Format.fprintf ppf "resilience scorecard (%s rollback, %d run%s)@." t.rollback
    t.runs
    (if t.runs = 1 then "" else "s");
  Format.fprintf ppf "  program %s@." t.program_digest;
  if t.rate > 0 then
    Format.fprintf ppf "  canary: seed %d, %d/1000 calls, at %s@." t.seed t.rate
      t.point;
  Format.fprintf ppf "  mask hit rate: %d/%d (%.2f%%)@." (hits t) (calls t)
    (100.0 *. hit_rate t);
  Format.fprintf ppf
    "  perturbations: %d fired, %d validated, %d interfered, %d failed, %d retries@."
    (fired t) (validated t) (interfered t) (failed t) t.retries;
  Format.fprintf ppf "  %-28s %8s %6s %6s %6s %6s %6s %10s %12s@." "method"
    "calls" "hits" "fired" "valid" "intf" "fail" "wrap" "rollback";
  List.iter
    (fun r ->
      let wrap_ns, rollback_ns =
        match timing_of r.r_id with
        | Some tr -> (tr.t_wrap_ns, tr.t_rollback_ns)
        | None -> (0, 0)
      in
      let ns_str ns = Format.asprintf "%a" pp_ns ns in
      Format.fprintf ppf "  %-28s %8d %6d %6d %6d %6d %6d %10s %12s@."
        (Method_id.to_string r.r_id)
        r.r_calls r.r_hits r.r_fired r.r_validated r.r_interfered r.r_failed
        (ns_str wrap_ns) (ns_str rollback_ns);
      match r.r_diff with
      | Some d -> Format.fprintf ppf "    first failed validation at %s@." d
      | None -> ())
    t.rows
