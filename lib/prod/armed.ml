(* Armed production wrappers: masking without the detection machinery.

   The hot path is a normal call through a wrapped method: entry takes
   the protection (a checkpoint, or an O(1) shadow open), exit releases
   it.  Rollback only happens on exceptional exits, which production
   masking exists to absorb — so the COW engine moves all graph-sized
   work onto that rare path. *)

open Failatom_core
open Failatom_runtime
module Obs = Failatom_obs.Obs

type rollback = Rb_checkpoint | Rb_cow

let rollback_name = function Rb_checkpoint -> "checkpoint" | Rb_cow -> "cow"

let rollback_of_name = function
  | "checkpoint" -> Some Rb_checkpoint
  | "cow" -> Some Rb_cow
  | _ -> None

type method_stats = {
  mutable ms_calls : int;
  mutable ms_hits : int;
  mutable ms_wrap_ns : int;
  mutable ms_rollback_ns : int;
}

type t = {
  rollback : rollback;
  config : Config.t;
  targets : Method_id.Set.t;
  stats : (Method_id.t, method_stats) Hashtbl.t;
}

let create ?(rollback = Rb_checkpoint) ~config ~targets () =
  { rollback; config; targets; stats = Hashtbl.create 16 }

let rollback_mode t = t.rollback
let targets t = t.targets

let stats_of t id =
  match Hashtbl.find_opt t.stats id with
  | Some ms -> ms
  | None ->
    let ms = { ms_calls = 0; ms_hits = 0; ms_wrap_ns = 0; ms_rollback_ns = 0 } in
    Hashtbl.replace t.stats id ms;
    ms

let per_method t =
  Hashtbl.fold (fun id ms acc -> (id, ms) :: acc) t.stats []
  |> List.sort (fun (a, _) (b, _) -> Method_id.compare a b)

let calls t = Hashtbl.fold (fun _ ms n -> n + ms.ms_calls) t.stats 0
let hits t = Hashtbl.fold (fun _ ms n -> n + ms.ms_hits) t.stats 0

(* Canonical metric names; see doc/architecture.md. *)
let c_calls = Obs.counter "mask.calls"
let c_hits = Obs.counter "mask.hits"
let h_wrap = Obs.histogram ~unit_:Obs.Ns "mask.wrap_ns"
let h_rollback = Obs.histogram ~unit_:Obs.Ns "mask.rollback_ns"

(* The call's protection, taken at entry.  The COW entry keeps its
   roots plus the heap write generation and the calling thread's own
   write count at entry: the rollback must restore only the graph those
   roots reached at entry time, to stay bitwise-identical to a
   checkpoint of the same roots. *)
type entry =
  | Cp of Checkpoint.t
  | Sh of {
      sh : Shadow.t;
      roots : Value.t list;
      tid : int;
      gen : int;
      own : int;
      mark : Value.obj_id;  (* allocation watermark at entry *)
    }

let take t vm recv args =
  match t.rollback with
  | Rb_checkpoint ->
    Cp
      (Checkpoint.take ~strategy:t.config.Config.checkpoint_strategy vm.Vm.heap
         (Mask.checkpoint_roots t.config recv args))
  | Rb_cow ->
    let heap = vm.Vm.heap in
    let tid = vm.Vm.cur_tid in
    Sh
      { sh = Shadow.open_ heap;
        roots = Mask.checkpoint_roots t.config recv args;
        tid;
        gen = Heap.write_gen heap;
        own = Heap.writes_by_tid heap tid;
        mark = heap.Heap.next_id }

(* With no foreign write during the call, every dirty object that
   already existed at entry was reachable from the entry roots (the
   body has no other source of references), so restoring every saved
   object below the entry allocation watermark equals the checkpoint
   restore — in O(dirty), without traversing clean objects.  Objects
   allocated during the call (including the in-flight exception) stay
   as they are, exactly as a checkpoint of the entry graph leaves them.
   When another thread did write during the call, its saves share our
   shadow, so fall back to filtering by entry-time reachability to
   leave the foreign thread's unrelated work in place. *)
let cow_rollback (sh : Shadow.t) roots ~tid ~gen ~own ~mark =
  if Shadow.dirty_count sh > 0 then begin
    let heap = Shadow.heap sh in
    let foreign =
      Heap.write_gen heap - gen > Heap.writes_by_tid heap tid - own
    in
    if not foreign then
      Shadow.iter_saved sh (fun id payload ->
          if id < mark then Heap.restore_payload heap id payload)
    else begin
      let read = Shadow.read_before sh in
      let reachable = Object_graph.reachable_via read roots in
      Shadow.iter_saved sh (fun id payload ->
          if Hashtbl.mem reachable id then Heap.restore_payload heap id payload)
    end
  end

let release entry ~rollback =
  match entry with
  | Cp cp ->
    if rollback then Checkpoint.rollback cp;
    Checkpoint.dispose cp
  | Sh { sh; roots; tid; gen; own; mark } ->
    if rollback then cow_rollback sh roots ~tid ~gen ~own ~mark;
    Shadow.close sh

(* One filter per armed method: the stats record is resolved once, at
   arm time, keeping the per-call path free of method-id lookups.  The
   entry stacks are per-thread (recursion nests; preemptive schedules
   interleave threads) — mirroring Mask.masking_filter. *)
let filter_for t ms =
  let stacks : (int, entry list) Hashtbl.t = Hashtbl.create 4 in
  let stack_of vm =
    Option.value ~default:[] (Hashtbl.find_opt stacks vm.Vm.cur_tid)
  in
  let pop vm ~rollback =
    match stack_of vm with
    | [] -> ()
    | entry :: rest ->
      Hashtbl.replace stacks vm.Vm.cur_tid rest;
      release entry ~rollback
  in
  { Vm.filt_name = "armed";
    pre =
      (fun vm _meth recv args ->
        let t0 = Obs.now_ns () in
        Hashtbl.replace stacks vm.Vm.cur_tid (take t vm recv args :: stack_of vm);
        let dt = Obs.now_ns () - t0 in
        ms.ms_calls <- ms.ms_calls + 1;
        ms.ms_wrap_ns <- ms.ms_wrap_ns + dt;
        Obs.incr c_calls;
        Obs.observe h_wrap dt;
        Vm.Proceed);
    post =
      (fun vm _meth _recv _args result ->
        let t0 = Obs.now_ns () in
        let rollback = Result.is_error result in
        pop vm ~rollback;
        let dt = Obs.now_ns () - t0 in
        if rollback then begin
          ms.ms_hits <- ms.ms_hits + 1;
          ms.ms_rollback_ns <- ms.ms_rollback_ns + dt;
          Obs.incr c_hits;
          Obs.observe h_rollback dt
        end
        else ms.ms_wrap_ns <- ms.ms_wrap_ns + dt;
        Vm.Pass);
    unwind =
      (fun vm _meth ->
        (* Deadline or scheduler unwind: exceptional exit without a
           [post]; roll back so the abort cannot publish a half-mutated
           graph, and release the entry so nothing leaks. *)
        pop vm ~rollback:true) }

let arm t vm =
  Vm.iter_methods vm (fun _cls meth ->
      let id = Method_id.make meth.Vm.meth_class meth.Vm.meth_name in
      if Method_id.Set.mem id t.targets then
        Vm.attach_filter meth (filter_for t (stats_of t id)))
