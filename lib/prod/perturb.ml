(* The canary perturbation channel.

   Per selected call, in filter order (canary outermost, igniter
   innermost, the armed wrapper between them):

     canary.pre    draw RNG; snapshot the pre-call canonical form
     armed.pre     take the rollback protection
     igniter.pre   At_entry: raise the injected exception now
     (body)        At_exit only
     igniter.post  At_exit: body returned normally -> raise now
     armed.post    exceptional exit -> roll the receiver graph back
     canary.post   our exception?  validate graph == pre-call form,
                   then retry the call with draws suppressed

   The per-thread cells (pending injection, injected-raise-in-flight,
   retry suppression) make the channel safe under preemptive schedules:
   every hand-off between the three filters happens within one call on
   one thread. *)

open Failatom_core
open Failatom_runtime
module Obs = Failatom_obs.Obs

type point = At_entry | At_exit

let point_name = function At_entry -> "entry" | At_exit -> "exit"

let point_of_name = function
  | "entry" -> Some At_entry
  | "exit" -> Some At_exit
  | _ -> None

type method_stats = {
  mutable pv_fired : int;
  mutable pv_validated : int;
  mutable pv_interfered : int;
  mutable pv_failed : int;
  mutable pv_diff : string option;
}

(* A canary frame, pushed at pre and popped at post/unwind.  A selected
   frame keeps the pre-call canonical form plus the heap's write
   generation and this thread's own write count at selection time: a
   post-rollback mismatch is only a mask failure when the generation
   delta is fully accounted for by this thread's own writes — i.e. no
   *other* thread wrote during the call. *)
type frame =
  | Unselected
  | Selected of Object_graph.node * int * int

type t = {
  mutable rng : int64;
  seed : int;
  rate : int;  (* per-mille of calls selected *)
  max_fires : int;  (* max_int = unlimited *)
  point : point;
  fallback : string list;
  config : Config.t;
  targets : Method_id.Set.t;
  stats : (Method_id.t, method_stats) Hashtbl.t;
  mutable fired_total : int;
  mutable retries_total : int;
  pending : (int, string) Hashtbl.t;  (* tid -> exception class to inject *)
  in_flight : (int, unit) Hashtbl.t;  (* tid -> the Error in flight is ours *)
  suppress : (int, int) Hashtbl.t;  (* tid -> retry nesting depth *)
}

let create ?(rate_per_mille = 10) ?(max_fires = max_int) ?(point = At_exit)
    ?(fallback_exceptions = []) ~config ~targets ~seed () =
  { rng = Int64.of_int seed;
    seed;
    rate = rate_per_mille;
    max_fires;
    point;
    fallback = fallback_exceptions;
    config;
    targets;
    stats = Hashtbl.create 16;
    fired_total = 0;
    retries_total = 0;
    pending = Hashtbl.create 4;
    in_flight = Hashtbl.create 4;
    suppress = Hashtbl.create 4 }

let point_of t = t.point
let seed_of t = t.seed
let rate_of t = t.rate

let stats_of t id =
  match Hashtbl.find_opt t.stats id with
  | Some s -> s
  | None ->
    let s =
      { pv_fired = 0;
        pv_validated = 0;
        pv_interfered = 0;
        pv_failed = 0;
        pv_diff = None }
    in
    Hashtbl.replace t.stats id s;
    s

let fired t = t.fired_total
let validated t = Hashtbl.fold (fun _ s n -> n + s.pv_validated) t.stats 0
let interfered t = Hashtbl.fold (fun _ s n -> n + s.pv_interfered) t.stats 0
let failed t = Hashtbl.fold (fun _ s n -> n + s.pv_failed) t.stats 0
let retries t = t.retries_total

let per_method t =
  Hashtbl.fold (fun id s acc -> (id, s) :: acc) t.stats []
  |> List.sort (fun (a, _) (b, _) -> Method_id.compare a b)

(* Canonical metric names; see doc/architecture.md. *)
let c_fired = Obs.counter "prod.perturb_fired"
let c_validated = Obs.counter "prod.perturb_validated"
let c_interfered = Obs.counter "prod.perturb_interfered"
let c_failed = Obs.counter "prod.perturb_failed"
let c_retry = Obs.counter "prod.retry"
let h_validate = Obs.histogram ~unit_:Obs.Ns "prod.validate_ns"

(* splitmix64: a tiny, seedable, deterministic generator — the draw
   sequence must replay exactly from the scorecard's recorded seed. *)
let next_u64 t =
  t.rng <- Int64.add t.rng 0x9E3779B97F4A7C15L;
  let z = t.rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw_mod t n =
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 t) 1) (Int64.of_int n))

let suppressed t tid = Option.value ~default:0 (Hashtbl.find_opt t.suppress tid) > 0

let candidates t (meth : Vm.meth) =
  match meth.Vm.throws with [] -> t.fallback | declared -> declared

(* ------------------------------------------------------------------ *)
(* Igniter: raises the pending injection from inside the wrapper        *)
(* ------------------------------------------------------------------ *)

let ignite t vm cls =
  t.fired_total <- t.fired_total + 1;
  Obs.incr c_fired;
  Hashtbl.replace t.in_flight vm.Vm.cur_tid ();
  Vm.make_exn vm cls "canary perturbation"

let igniter_filter t =
  (* At_exit frames: [true] when this call must raise on normal return.
     Per-thread, LIFO with the call stack. *)
  let marks : (int, bool list) Hashtbl.t = Hashtbl.create 4 in
  let marks_of vm = Option.value ~default:[] (Hashtbl.find_opt marks vm.Vm.cur_tid) in
  let pop_mark vm =
    match marks_of vm with
    | [] -> false
    | m :: rest ->
      Hashtbl.replace marks vm.Vm.cur_tid rest;
      m
  in
  { Vm.filt_name = "perturb-igniter";
    pre =
      (fun vm _meth _recv _args ->
        match Hashtbl.find_opt t.pending vm.Vm.cur_tid with
        | None ->
          if t.point = At_exit then
            Hashtbl.replace marks vm.Vm.cur_tid (false :: marks_of vm);
          Vm.Proceed
        | Some cls -> (
          Hashtbl.remove t.pending vm.Vm.cur_tid;
          match t.point with
          | At_entry ->
            (* Pre_raise skips this filter's own post: no mark to pop. *)
            Vm.Pre_raise (ignite t vm cls)
          | At_exit ->
            Hashtbl.replace marks vm.Vm.cur_tid (true :: marks_of vm);
            Hashtbl.replace t.pending vm.Vm.cur_tid cls;
            (* keep the class for the post *)
            Vm.Proceed));
    post =
      (fun vm _meth _recv _args result ->
        let armed = pop_mark vm in
        if armed then begin
          let cls = Hashtbl.find_opt t.pending vm.Vm.cur_tid in
          Hashtbl.remove t.pending vm.Vm.cur_tid;
          match (result, cls) with
          | Ok _, Some cls ->
            (* The body completed and mutated whatever it mutates:
               now is when the rollback has real work to do. *)
            Vm.Post_raise (ignite t vm cls)
          | _ -> Vm.Pass  (* a natural exception won the race: stand down *)
        end
        else Vm.Pass);
    unwind =
      (fun vm _meth ->
        if t.point = At_exit then ignore (pop_mark vm : bool);
        Hashtbl.remove t.pending vm.Vm.cur_tid) }

(* ------------------------------------------------------------------ *)
(* Canary: selection, validation, retry                                 *)
(* ------------------------------------------------------------------ *)

let canary_filter t ms =
  let frames : (int, frame list) Hashtbl.t = Hashtbl.create 4 in
  let frames_of vm = Option.value ~default:[] (Hashtbl.find_opt frames vm.Vm.cur_tid) in
  let push vm f = Hashtbl.replace frames vm.Vm.cur_tid (f :: frames_of vm) in
  let pop vm =
    match frames_of vm with
    | [] -> Unselected
    | f :: rest ->
      Hashtbl.replace frames vm.Vm.cur_tid rest;
      f
  in
  { Vm.filt_name = "perturb-canary";
    pre =
      (fun vm meth recv args ->
        let tid = vm.Vm.cur_tid in
        if suppressed t tid || t.fired_total >= t.max_fires then
          push vm Unselected
        else begin
          let selected = t.rate > 0 && draw_mod t 1000 < t.rate in
          if not selected then push vm Unselected
          else
            match candidates t meth with
            | [] -> push vm Unselected
            | exns ->
              let cls = List.nth exns (draw_mod t (List.length exns)) in
              let gen = Heap.write_gen vm.Vm.heap in
              let own = Heap.writes_by_tid vm.Vm.heap tid in
              let before =
                Object_graph.canonical_many vm.Vm.heap
                  (Mask.checkpoint_roots t.config recv args)
              in
              Hashtbl.replace t.pending tid cls;
              push vm (Selected (before, gen, own))
        end;
        Vm.Proceed);
    post =
      (fun vm meth recv args result ->
        let tid = vm.Vm.cur_tid in
        match pop vm with
        | Unselected -> Vm.Pass
        | Selected (before, gen, own) -> (
          let ours = Hashtbl.mem t.in_flight tid in
          Hashtbl.remove t.in_flight tid;
          match result with
          | Error _ when ours ->
            (* Our injection came back: the armed wrapper has already
               rolled the graph back (its post ran before ours).
               Validate, then hide the whole episode from the caller. *)
            ms.pv_fired <- ms.pv_fired + 1;
            let t0 = Obs.now_ns () in
            let after =
              Object_graph.canonical_many vm.Vm.heap
                (Mask.checkpoint_roots t.config recv args)
            in
            let ok = Object_graph.equal before after in
            Obs.observe h_validate (Obs.now_ns () - t0);
            if ok then begin
              ms.pv_validated <- ms.pv_validated + 1;
              Obs.incr c_validated
            end
            else if
              Heap.write_gen vm.Vm.heap - gen
              > Heap.writes_by_tid vm.Vm.heap tid - own
            then begin
              (* Another thread wrote while the perturbed call ran.  A
                 per-thread rollback rightly keeps that thread's work,
                 so the pre-call snapshot is no longer the reference:
                 inconclusive, not a mask failure. *)
              ms.pv_interfered <- ms.pv_interfered + 1;
              Obs.incr c_interfered
            end
            else begin
              ms.pv_failed <- ms.pv_failed + 1;
              if ms.pv_diff = None then ms.pv_diff <- Object_graph.diff before after;
              Obs.incr c_failed
            end;
            t.retries_total <- t.retries_total + 1;
            Obs.incr c_retry;
            Hashtbl.replace t.suppress tid
              (1 + Option.value ~default:0 (Hashtbl.find_opt t.suppress tid));
            let retry () =
              Fun.protect
                ~finally:(fun () ->
                  Hashtbl.replace t.suppress tid
                    (Option.value ~default:1 (Hashtbl.find_opt t.suppress tid) - 1))
                (fun () -> Vm.call_filtered vm meth recv args)
            in
            (match retry () with
            | v -> Vm.Post_return v
            | exception Vm.Mini_raise e -> Vm.Post_raise e)
          | _ ->
            (* Either the call succeeded before the igniter could fire
               (At_entry never reaches here) or a natural exception beat
               ours: no perturbation happened, pass the outcome on. *)
            Vm.Pass));
    unwind =
      (fun vm _meth ->
        ignore (pop vm : frame);
        Hashtbl.remove t.pending vm.Vm.cur_tid;
        Hashtbl.remove t.in_flight vm.Vm.cur_tid) }

let arm_on t vm make_filter =
  Vm.iter_methods vm (fun _cls meth ->
      let id = Method_id.make meth.Vm.meth_class meth.Vm.meth_name in
      if Method_id.Set.mem id t.targets then Vm.attach_filter meth (make_filter id))

let arm_igniter t vm =
  let filter = igniter_filter t in
  arm_on t vm (fun _id -> filter)

let arm_canary t vm = arm_on t vm (fun id -> canary_filter t (stats_of t id))
