(** The production-mode driver: plan in, scorecard out.

    Arms a program's wrappers from a persisted detection plan — no
    re-detection — runs the workload one or more times, and reports the
    resilience scorecard.  The plan is validated against the program's
    digest first: a stale plan (program changed since detection) is
    refused rather than armed.

    Arming always uses load-time filters, whatever flavor the detection
    that produced the plan ran under: the plan carries {e which} methods
    to protect, and in production the protection is interposed on the
    compiled program directly. *)

open Failatom_core
open Failatom_runtime
open Failatom_minilang

type perturb_spec = {
  seed : int;
  rate_per_mille : int;
  max_fires : int option;  (** [None] = unlimited *)
  point : Perturb.point;
  fallback_exceptions : string list;
}

type run_report = {
  output : string;  (** the run's program output *)
  escaped : string option;  (** exception class that escaped [main], if any *)
}

type result = {
  scorecard : Scorecard.t;
  runs : run_report list;  (** in execution order *)
}

val run :
  ?config:Config.t -> ?rollback:Armed.rollback -> ?perturb:perturb_spec ->
  ?policy:Sched.policy -> ?times:int -> plan:Plan.t -> Ast.program ->
  (result, string) Stdlib.result
(** Runs [times] (default 1) production executions of the program with
    the plan's targets armed.  [config] (default {!Config.default})
    supplies the checkpoint strategy and root policy; [rollback]
    (default {!Armed.Rb_checkpoint}) selects the rollback engine;
    [perturb] enables the canary channel.  Statistics accumulate across
    all runs into one scorecard.  [Error] when the plan does not match
    the program's digest. *)
