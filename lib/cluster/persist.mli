(** Glue between the blob {!Store} and the server's {!Cache}: persist
    hooks (results spill as their exact rendered bytes, images as
    [failatom.image-meta/1] metadata) and best-effort prewarming of a
    fresh cache from stored image metadata. *)

val hooks : Store.t -> Failatom_server.Cache.persist

val cache :
  ?image_capacity:int ->
  ?result_capacity:int ->
  Store.t ->
  Failatom_server.Cache.t
(** A cache wired to the store. *)

val prewarm : ?limit:int -> Store.t -> Failatom_server.Cache.t -> int
(** Recompiles up to [limit] (default 64) stored images, most recently
    used first; returns how many were warmed.  Best-effort: corrupt
    metadata is skipped. *)
