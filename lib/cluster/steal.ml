(* Work-stealing placement: pure policy, no I/O, so it is trivially
   unit-testable and the router stays the only owner of live state.

   Digest affinity is worth real money (a shard's warm cache answers a
   resubmission without running anything), so the policy only overrides
   the home shard when the imbalance clearly pays for the lost
   affinity: the home shard must be at least [threshold] jobs deeper
   than the idlest sibling — or dead.  A steal is reported as such so
   the router can count it ([router.jobs_stolen]).

   Loads are the router's in-flight counters; a dead shard is one whose
   socket the router could not reach on its last attempt. *)

type decision = {
  target : int;
  stolen : bool;  (* true when the job left its home shard *)
}

let least_loaded ~load ~alive =
  let best = ref (-1) in
  Array.iteri
    (fun i a ->
      if a && (!best < 0 || load.(i) < load.(!best)) then best := i)
    alive;
  !best

let place ~home ~load ~alive ~threshold =
  let n = Array.length load in
  if n = 0 then { target = 0; stolen = false }
  else
    let home = if home >= 0 && home < n then home else 0 in
    if not alive.(home) then begin
      match least_loaded ~load ~alive with
      | -1 -> { target = home; stolen = false } (* nobody alive: try home anyway *)
      | i -> { target = i; stolen = i <> home }
    end
    else
      match least_loaded ~load ~alive with
      | -1 -> { target = home; stolen = false }
      | idlest ->
        if idlest <> home && load.(home) - load.(idlest) >= threshold then
          { target = idlest; stolen = true }
        else { target = home; stolen = false }
