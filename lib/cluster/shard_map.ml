(* The cluster's placement geometry: which shard owns a program digest,
   how shard sockets and job ids are named, and the on-disk map file
   that makes the topology discoverable by clients.

   Placement is pure and stable — [shard_of_digest] hashes the digest's
   leading hex into [0, shards) — so every submission of a program
   lands on the same shard and cache affinity costs nothing.  The
   router namespaces shard-local job ids as ["s<shard>-<local>"], which
   doubles as the fallback routing hint: a client that finds the router
   gone can parse the prefix and talk to the shard directly.

   The map file [<base>.map] (schema [failatom.cluster.map/1]) is
   written by the supervisor and rewritten on every respawn: it lists
   the router socket and each shard's socket + pid, which is what the
   CI smoke test uses to find a victim to [kill -9]. *)

open Failatom_apps
module Json = Failatom_core.Json
module Protocol = Failatom_server.Protocol
module Minilang = Failatom_minilang.Minilang

let schema = "failatom.cluster.map/1"
let shard_socket ~base i = Printf.sprintf "%s.shard%d" base i
let map_path ~base = base ^ ".map"

(* Rendezvous (highest-random-weight) hashing: every (digest, shard)
   pair gets an independent md5-derived score and the digest lives on
   the highest-scoring shard.  Taking [leading-hex mod shards] instead
   left real shard sets badly skewed — the bundled apps are a small key
   population and the low bits of their digests are not independent
   enough, which showed up as one shard owning nothing in the cluster
   bench — while per-pair scores mix every digest against every shard
   index.  Still pure and stable, so cache affinity survives router and
   supervisor restarts. *)
let shard_of_digest ~shards digest =
  if shards <= 1 then 0
  else begin
    let score i =
      let h = Digest.string (Printf.sprintf "%s/%d" digest i) in
      (* leading 7 bytes: a 56-bit non-negative score fits any int *)
      let v = ref 0 in
      for k = 0 to 6 do
        v := (!v lsl 8) lor Char.code h.[k]
      done;
      !v
    in
    let best = ref 0 in
    let best_score = ref (score 0) in
    for i = 1 to shards - 1 do
      let s = score i in
      if s > !best_score then begin
        best_score := s;
        best := i
      end
    done;
    !best
  end

(* The program digest a request would be cached under, when it can be
   computed without the shard's help: a registry app parses locally, as
   does inline source.  [None] for unknown apps or unparsable source —
   the caller routes those anywhere and lets the shard produce the
   canonical error. *)
let digest_of_spec = function
  | Protocol.App name -> (
    match Registry.find name with
    | None -> None
    | Some app -> (
      try
        Some
          (Minilang.program_digest
             (Minilang.parse ~allow_reserved:true app.Registry.source))
      with _ -> None))
  | Protocol.Inline src -> (
    try Some (Minilang.program_digest (Minilang.parse ~allow_reserved:true src))
    with _ -> None)

(* ------------------------------------------------------------------ *)
(* Job-id namespacing                                                  *)
(* ------------------------------------------------------------------ *)

let global_job_id ~shard local = Printf.sprintf "s%d-%s" shard local

let parse_job_id id =
  if String.length id < 4 || id.[0] <> 's' then None
  else
    match String.index_opt id '-' with
    | None -> None
    | Some i -> (
      match int_of_string_opt (String.sub id 1 (i - 1)) with
      | Some shard when shard >= 0 && i + 1 < String.length id ->
        Some (shard, String.sub id (i + 1) (String.length id - i - 1))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* The map file                                                        *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_socket : string;
  e_pid : int;
}

type map = {
  m_router : string;
  m_shards : entry list;
}

let map_to_json m =
  Json.Obj
    [ ("schema", Json.Str schema);
      ("router", Json.Str m.m_router);
      ( "shards",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [ ("socket", Json.Str e.e_socket); ("pid", Json.Int e.e_pid) ])
             m.m_shards) ) ]

let write_map ~base m =
  let path = map_path ~base in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Json.to_string (map_to_json m));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let read_map ~base =
  let path = map_path ~base in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let line = try input_line ic with End_of_file -> "" in
    close_in_noerr ic;
    (match try Some (Json.of_string line) with Json.Parse_error _ -> None with
     | None -> None
     | Some j ->
       (match (Json.str_member "schema" j, Json.str_member "router" j) with
        | Some s, Some router when String.equal s schema ->
          let shards =
            match Json.list_member "shards" j with
            | None -> []
            | Some entries ->
              List.filter_map
                (fun e ->
                  match (Json.str_member "socket" e, Json.int_member "pid" e) with
                  | Some socket, Some pid -> Some { e_socket = socket; e_pid = pid }
                  | _ -> None)
                entries
          in
          Some { m_router = router; m_shards = shards }
        | _ -> None))

let remove_map ~base =
  try Sys.remove (map_path ~base) with Sys_error _ -> ()
