(** Work-stealing placement policy: pure, stateless, unit-testable.
    Digest affinity wins unless the home shard is dead or at least
    [threshold] jobs deeper than the idlest live sibling. *)

type decision = {
  target : int;  (** the shard to dispatch to *)
  stolen : bool;  (** the job left its home shard *)
}

val place :
  home:int -> load:int array -> alive:bool array -> threshold:int -> decision
(** [load] is in-flight jobs per shard, [alive] the router's last-known
    reachability.  Total ([load] and [alive] must have equal length);
    a dead home diverts to the least-loaded live shard. *)
