(** The cluster supervisor behind [failatom cluster]: spawns N
    [failatom serve] shard processes on private sockets (sharing one
    persistent store), runs the {!Router} in-process on the public
    socket, respawns dead or wedged shards (greeting health checks,
    backoff for crash loops), maintains the [<base>.map] topology file,
    and drains in order — router first, then SIGTERM to the shards with
    a SIGKILL escalation. *)

type event =
  | Shard_started of int * int  (** shard index, pid *)
  | Shard_exited of int * int
  | Shard_respawned of int * int
  | Router_started
  | Draining
  | Router_drained
  | Shard_terminated of int

val event_name : event -> string

type config = {
  base_socket : string;  (** public socket; shard [i] uses [<base>.shard<i>] *)
  shards : int;
  workers : int;  (** executor threads per shard *)
  max_queue : int;
  job_timeout_s : float option;
  run_timeout_s : float option;
  store_dir : string option;  (** shared persistent cache tier *)
  store_max_bytes : int;
  steal_threshold : int;
  exe : string;  (** the failatom binary to spawn shards from *)
  on_event : event -> unit;  (** lifecycle notifications (monitor thread) *)
}

val default_config : base_socket:string -> exe:string -> config
(** 2 shards × 2 workers, queue 64, no timeouts, no store (pass
    [store_dir] to enable the persistent tier, bounded at 256MB),
    steal threshold 4, silent events. *)

type t

val start : config -> t
(** Spawns the shards, waits for each to greet, writes the map file,
    starts the router, and begins monitoring. *)

val stop : t -> unit
(** Requests the ordered drain (signal-handler safe). *)

val wait : t -> unit
(** Blocks until the fleet is drained and every child is reaped. *)

val run : config -> unit
(** [start] + SIGTERM/SIGINT handlers + [wait]: the body of
    [failatom cluster]. *)

val shard_pids : t -> int array
val router : t -> Router.t
