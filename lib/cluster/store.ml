(* The cluster's persistent content-addressed blob store: the durable
   tier behind every shard's in-memory {!Cache}.

   Layout: one directory per namespace under the store root —
   [results/] holds rendered job results, [images/] compiled-image
   metadata — and one file per blob, named by its content-addressed
   key (a hex digest, possibly suffixed with a flavor name).  The
   store never interprets payloads; byte-identity is the contract.

   Multi-process by construction: shards of a cluster all open the same
   directory, and the filesystem is the only shared state — there is no
   in-memory index to go stale.  The invariants that make that safe:

   - {b Writes are atomic.}  A blob is written to a [*.tmp.<pid>.<n>]
     sibling, fsynced, and renamed into place.  Readers either see the
     whole blob or none of it; a crash can only leave tmp droppings,
     which [open_] sweeps.

   - {b Reads keep working through eviction.}  A reader that opened a
     file keeps a valid descriptor even if a sibling evicts (unlinks)
     it concurrently.

   - {b LRU is mtime.}  A hit touches the file's mtime; eviction scans
     the namespaces and unlinks oldest-first until total bytes fit
     under the bound.  Scanning the directory on each over-budget store
     keeps the accounting correct no matter how many processes write.

   Store failures are never fatal to the caller — the durable tier is
   an accelerator, and a cache that cannot spill still serves. *)

module Obs = Failatom_obs.Obs

let m_hits = Obs.counter "cluster.store_hits"
let m_misses = Obs.counter "cluster.store_misses"
let m_spills = Obs.counter "cluster.store_spills"
let m_evictions = Obs.counter "cluster.store_evictions"
let g_bytes = Obs.gauge "cluster.store_bytes"

type t = {
  dir : string;
  max_bytes : int;
  mutex : Mutex.t;  (* serializes eviction scans within this process *)
  seq : int Atomic.t;  (* uniquifies tmp names within this process *)
}

let namespaces = [ "results"; "images" ]

let mkdir_p dir =
  let rec make d =
    if not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make dir

(* A key names a file; reject anything that could escape the namespace
   directory.  Legitimate keys are hex digests plus '.', '-', '_'. *)
let key_ok key =
  String.length key > 0
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> true
         | _ -> false)
       key
  && (not (String.equal key "."))
  && not (String.equal key "..")

let path t ~ns ~key = Filename.concat (Filename.concat t.dir ns) key

let is_tmp name =
  (* "<key>.tmp.<pid>.<n>" *)
  let rec find i =
    if i + 5 > String.length name then false
    else if String.sub name i 5 = ".tmp." then true
    else find (i + 1)
  in
  find 0

(* Every (path, size, mtime) in the store, across namespaces. *)
let entries t =
  List.concat_map
    (fun ns ->
      let d = Filename.concat t.dir ns in
      Array.to_list (try Sys.readdir d with Sys_error _ -> [||])
      |> List.filter_map (fun name ->
             let p = Filename.concat d name in
             match Unix.stat p with
             | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
               Some (p, st_size, st_mtime)
             | _ -> None
             | exception Unix.Unix_error _ -> None))
    namespaces

let total_bytes entries = List.fold_left (fun acc (_, s, _) -> acc + s) 0 entries

let open_ ~dir ~max_bytes =
  mkdir_p dir;
  List.iter (fun ns -> mkdir_p (Filename.concat dir ns)) namespaces;
  (* sweep tmp droppings from a previous crash *)
  List.iter
    (fun ns ->
      let d = Filename.concat dir ns in
      Array.iter
        (fun name ->
          if is_tmp name then
            try Unix.unlink (Filename.concat d name)
            with Unix.Unix_error _ -> ())
        (try Sys.readdir d with Sys_error _ -> [||]))
    namespaces;
  let t = { dir; max_bytes; mutex = Mutex.create (); seq = Atomic.make 0 } in
  Obs.set_gauge g_bytes (total_bytes (entries t));
  t

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try Some (really_input_string ic (in_channel_length ic))
        with End_of_file | Sys_error _ -> None)

let find t ~ns ~key =
  if not (key_ok key) then None
  else
    let p = path t ~ns ~key in
    match read_file p with
    | None ->
      Obs.incr m_misses;
      None
    | Some payload ->
      (* LRU touch: a hit is a use *)
      (try Unix.utimes p 0.0 0.0 with Unix.Unix_error _ -> ());
      Obs.incr m_hits;
      Some payload

(* Oldest-mtime-first until under budget.  Rescans rather than trusting
   any in-memory count, so eviction stays correct when several shard
   processes write the same store. *)
let evict_if_needed t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let es = entries t in
      let total = ref (total_bytes es) in
      Obs.set_gauge g_bytes !total;
      if !total > t.max_bytes then begin
        let oldest_first =
          List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) es
        in
        List.iter
          (fun (p, size, _) ->
            if !total > t.max_bytes then begin
              (try
                 Unix.unlink p;
                 total := !total - size;
                 Obs.incr m_evictions
               with Unix.Unix_error _ -> () (* a sibling got there first *))
            end)
          oldest_first;
        Obs.set_gauge g_bytes !total
      end)

let store t ~ns ~key payload =
  if key_ok key then begin
    try
      let final = path t ~ns ~key in
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" final (Unix.getpid ())
          (Atomic.fetch_and_add t.seq 1)
      in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let data = Bytes.of_string payload in
          let len = Bytes.length data in
          let rec write off =
            if off < len then
              match Unix.write fd data off (len - off) with
              | n -> write (off + n)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
          in
          write 0;
          Unix.fsync fd);
      Unix.rename tmp final;
      Obs.incr m_spills;
      evict_if_needed t
    with Unix.Unix_error _ | Sys_error _ -> ()
  end

let list t ~ns =
  let d = Filename.concat t.dir ns in
  Array.to_list (try Sys.readdir d with Sys_error _ -> [||])
  |> List.filter (fun name -> not (is_tmp name))
  |> List.filter_map (fun name ->
         match Unix.stat (Filename.concat d name) with
         | { Unix.st_mtime; _ } -> Some (name, st_mtime)
         | exception Unix.Unix_error _ -> None)
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  |> List.map fst

let stats t =
  let es = entries t in
  (List.length es, total_bytes es)
