(** Cluster placement geometry: stable digest → shard mapping, shard
    socket and job-id naming, and the [<base>.map] topology file
    (schema [failatom.cluster.map/1]) that the supervisor maintains and
    fallback clients read. *)

val schema : string

val shard_socket : base:string -> int -> string
(** ["<base>.shard<i>"] — the private socket of shard [i]. *)

val map_path : base:string -> string
(** ["<base>.map"]. *)

val shard_of_digest : shards:int -> string -> int
(** The home shard of a program digest, by rendezvous (highest-random-
    weight) hashing: pure, stable across restarts, and uniform over
    [0, shards) even for small key populations. *)

val digest_of_spec : Failatom_server.Protocol.program_spec -> string option
(** The program digest a request would be cached under, computed
    client-side; [None] when the app is unknown or the source does not
    parse (route anywhere, let the shard report the error). *)

val global_job_id : shard:int -> string -> string
(** ["s<shard>-<local>"] — the client-visible id of a shard-local job. *)

val parse_job_id : string -> (int * string) option
(** Inverse of {!global_job_id}. *)

type entry = {
  e_socket : string;
  e_pid : int;
}

type map = {
  m_router : string;
  m_shards : entry list;
}

val write_map : base:string -> map -> unit
val read_map : base:string -> map option
val remove_map : base:string -> unit
