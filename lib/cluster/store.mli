(** The cluster's persistent content-addressed blob store: one file per
    blob under [<dir>/<ns>/<key>], written atomically (tmp + fsync +
    rename), shared by every shard process of a cluster, LRU-bounded by
    total bytes (mtime is the recency clock; a hit touches it).

    The store never interprets payloads — byte-identity in and out is
    the contract — and its failures are silent: the durable tier is an
    accelerator, never a correctness dependency. *)

type t

val namespaces : string list
(** The directories managed under the root: ["results"; "images"]. *)

val open_ : dir:string -> max_bytes:int -> t
(** Creates [dir] and its namespaces as needed and sweeps temp files
    left by a crash.  Several processes may open the same directory. *)

val find : t -> ns:string -> key:string -> string option
(** The blob's exact stored bytes, touching its recency; [None] when
    absent (or the key is malformed). *)

val store : t -> ns:string -> key:string -> string -> unit
(** Atomically writes the blob, then evicts oldest-first while the
    store exceeds its byte bound.  Errors are swallowed. *)

val list : t -> ns:string -> string list
(** Keys in the namespace, most recently used first. *)

val stats : t -> int * int
(** (blob count, total bytes) across all namespaces. *)
