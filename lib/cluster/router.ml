(* The cluster router: the process that owns the public socket and
   spreads jobs over N shard daemons, each a full {!Failatom_server}
   loop on a private socket.

   Forwarding discipline, in order of what matters:

   - {b Affinity first.}  A submission routes to the home shard of its
     program digest ({!Shard_map.shard_of_digest}), so every
     resubmission of a program finds that shard's warm cache.  The
     digest is computed router-side (memoized per source, so the parse
     happens once per program, not per submission); requests whose
     digest cannot be computed (unknown app, unparsable source) go to
     shard 0, which produces the canonical error.

   - {b Steal when lopsided.}  {!Steal.place} diverts a job to the
     idlest shard when the home shard is at least the steal threshold
     deeper in in-flight jobs — or unreachable.  With the persistent
     store underneath, a stolen job can still be answered from the
     shared cache tier.

   - {b Relay bytes, not trees.}  The router parses only client request
     lines (small) and shard submit/cancel replies (small).  Watch
     event frames — including the ~100KB done frame — are relayed as
     raw bytes with a constant-time prefix check for terminality, so
     the router adds no serialization cost to the hot path.  Event
     frames carry no job ids, which is what makes raw relay sound;
     replies that do carry ids are rewritten through the JSON layer,
     whose string round-trip is byte-identical.

   - {b Survive a dying shard.}  Shard-local job ids are namespaced as
     ["s<shard>-<local>"] so the router (and fallback clients) can map
     any id back to its shard.  If a shard dies mid-watch, the router
     emits a warning event, re-submits the remembered raw request line
     to a live shard (the respawned home first — connects retry with
     backoff), and keeps streaming under the same client-visible job
     id.  A job whose result was already spilled to the store is
     re-answered from it without re-running detection.

   Each client connection gets its own lazily-connected pool of shard
   links, so connections never share a shard socket and the protocol's
   strict request/response interleaving is preserved without locks. *)

module Json = Failatom_core.Json
module Protocol = Failatom_server.Protocol
module Net = Failatom_server.Net
module Obs = Failatom_obs.Obs

let m_connections = Obs.counter "router.connections"
let m_routed = Obs.counter "router.jobs_routed"
let m_stolen = Obs.counter "router.jobs_stolen"
let m_redispatched = Obs.counter "router.jobs_redispatched"
let m_shard_failures = Obs.counter "router.shard_failures"

type config = {
  socket_path : string;
  shard_sockets : string array;
  steal_threshold : int;  (* min in-flight imbalance before stealing *)
  connect_retries : int;  (* per shard-connect attempt, with backoff *)
}

let default_config ~socket_path ~shard_sockets =
  { socket_path; shard_sockets; steal_threshold = 4; connect_retries = 4 }

type job_entry = {
  je_id : string;  (* client-visible id *)
  je_submit_line : string;  (* raw request line, for re-dispatch *)
  mutable je_shard : int;
  mutable je_local : string;  (* shard-local job id *)
  mutable je_inflight : bool;  (* counted in load.(je_shard) *)
}

type t = {
  config : config;
  mutex : Mutex.t;
  jobs : (string, job_entry) Hashtbl.t;
  load : int array;  (* in-flight jobs per shard *)
  alive : bool array;  (* last-known reachability *)
  digests : (string, string option) Hashtbl.t;  (* source key -> digest *)
  stop : bool Atomic.t;
  stop_signal : bool Atomic.t;
  mutable threads : Thread.t list;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let shards t = Array.length t.config.shard_sockets

(* ------------------------------------------------------------------ *)
(* Frame classification (raw, constant-time)                           *)
(* ------------------------------------------------------------------ *)

let terminal_prefixes =
  [ "{\"ok\":true,\"event\":\"done\"";
    "{\"ok\":true,\"event\":\"error\"";
    "{\"ok\":true,\"event\":\"cancelled\"";
    "{\"ok\":true,\"event\":\"timeout\"" ]

let is_terminal_frame line =
  List.exists (fun p -> String.starts_with ~prefix:p line) terminal_prefixes

let is_error_reply line = String.starts_with ~prefix:"{\"ok\":false" line

(* ------------------------------------------------------------------ *)
(* Shard links                                                         *)
(* ------------------------------------------------------------------ *)

(* One connection's lazily-opened links to the shards.  Never shared
   between client connections. *)
type link = {
  l_fd : Unix.file_descr;
  l_reader : Net.reader;
}

type pool = link option array

let set_alive t i v = locked t (fun () -> t.alive.(i) <- v)

let drop_link (pool : pool) i =
  (match pool.(i) with Some l -> Net.close_noerr l.l_fd | None -> ());
  pool.(i) <- None

let shard_failed t pool i =
  drop_link pool i;
  set_alive t i false;
  Obs.incr m_shard_failures

let connect_shard t (pool : pool) i =
  match pool.(i) with
  | Some l -> Some l
  | None ->
    let socket_path = t.config.shard_sockets.(i) in
    let rec attempt n delay =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let retry_or_give_up () =
        Net.close_noerr fd;
        if n < t.config.connect_retries then begin
          Thread.delay delay;
          attempt (n + 1) (Float.min 1.0 (delay *. 2.))
        end
        else None
      in
      match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
      | () -> (
        let reader = Net.reader fd in
        match Net.read_line reader with
        | Some _greeting -> Some { l_fd = fd; l_reader = reader }
        | None -> retry_or_give_up ()
        | exception (Unix.Unix_error _ | Sys_error _) -> retry_or_give_up ())
      | exception
          Unix.Unix_error
            ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET), _, _) ->
        retry_or_give_up ()
      | exception Unix.Unix_error _ ->
        Net.close_noerr fd;
        None
    in
    (match attempt 0 0.05 with
     | Some l ->
       pool.(i) <- Some l;
       set_alive t i true;
       Some l
     | None ->
       set_alive t i false;
       Obs.incr m_shard_failures;
       None)

(* One request/response round trip on a link; [None] means the link
   died (caller drops it and fails over). *)
let shard_request (l : link) line =
  try
    Net.write_line l.l_fd line;
    Net.read_line l.l_reader
  with Unix.Unix_error _ | Sys_error _ -> None

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)
(* ------------------------------------------------------------------ *)

let digest_of_spec_memo t spec =
  let key =
    match spec with
    | Protocol.App name -> "app:" ^ name
    | Protocol.Inline src -> "src:" ^ Digest.to_hex (Digest.string src)
  in
  match locked t (fun () -> Hashtbl.find_opt t.digests key) with
  | Some d -> d
  | None ->
    let d = Shard_map.digest_of_spec spec in
    locked t (fun () ->
        (* crude bound: a flood of distinct inline sources must not pin
           unbounded memory in the router *)
        if Hashtbl.length t.digests >= 1024 then Hashtbl.reset t.digests;
        Hashtbl.replace t.digests key d);
    d

(* Candidate shards for a dispatch: the policy's pick, then the home
   shard, then everyone else — so total shard failure degrades to
   "try them all" rather than an instant error. *)
let candidates t ~home =
  let n = shards t in
  let decision =
    locked t (fun () ->
        Steal.place ~home ~load:(Array.copy t.load) ~alive:(Array.copy t.alive)
          ~threshold:t.config.steal_threshold)
  in
  let rest =
    List.init n Fun.id
    |> List.filter (fun i -> i <> decision.Steal.target && i <> home)
  in
  let order =
    if decision.Steal.target = home then home :: rest
    else decision.Steal.target :: home :: rest
  in
  (decision, order)

let incr_load t i = locked t (fun () -> t.load.(i) <- t.load.(i) + 1)

let finished_entry t (e : job_entry) =
  locked t (fun () ->
      if e.je_inflight then begin
        e.je_inflight <- false;
        t.load.(e.je_shard) <- max 0 (t.load.(e.je_shard) - 1)
      end)

(* ------------------------------------------------------------------ *)
(* Reply rewriting                                                     *)
(* ------------------------------------------------------------------ *)

(* Our own server renders every job-carrying reply with a fixed head —
   {"ok":true,"job":"<id>","state":"<state>",...} — and ids/states never
   contain escapes.  Splitting on that head lets the router read the id
   and state and splice in the global id without parsing the reply,
   which for a cached submit embeds a result of ~100KB. *)
let reply_head = "{\"ok\":true,\"job\":\""
let state_head = "\",\"state\":\""

(* (local id, state if readable, tail starting at the id's closing
   quote) — [None] falls back to the JSON layer. *)
let split_reply_head line =
  if not (String.starts_with ~prefix:reply_head line) then None
  else
    let start = String.length reply_head in
    match String.index_from_opt line start '"' with
    | None -> None
    | Some close ->
      let local = String.sub line start (close - start) in
      let tail = String.sub line close (String.length line - close) in
      let state =
        if String.starts_with ~prefix:state_head tail then
          let s0 = String.length state_head in
          Option.map
            (fun s1 -> String.sub tail s0 (s1 - s0))
            (String.index_from_opt tail s0 '"')
        else None
      in
      Some (local, state, tail)

(* Rewrites the "job" member of a shard reply to the client-visible id:
   by splicing when the head matches, through the JSON layer otherwise
   (round trips are byte-identical, so embedded results survive). *)
let rewrite_job_id line ~id =
  match split_reply_head line with
  | Some (_, _, tail) -> reply_head ^ id ^ tail
  | None -> (
    match Json.of_string line with
    | exception Json.Parse_error _ -> line
    | Json.Obj fields ->
      Json.to_string
        (Json.Obj
           (List.map
              (fun (k, v) ->
                if String.equal k "job" then (k, Json.Str id) else (k, v))
              fields))
    | _ -> line)

(* ------------------------------------------------------------------ *)
(* Submit                                                              *)
(* ------------------------------------------------------------------ *)

(* Sends the raw submit line to the first shard that answers; returns
   the entry (registered under the global id) and the reply to relay.
   [existing] re-dispatches an already-known job in place. *)
let dispatch t pool ~line ~spec ?existing () =
  let home =
    match digest_of_spec_memo t spec with
    | Some d -> Shard_map.shard_of_digest ~shards:(shards t) d
    | None -> 0
  in
  let decision, order = candidates t ~home in
  let rec try_shards = function
    | [] -> Error "no shard available"
    | i :: rest -> (
      match connect_shard t pool i with
      | None -> try_shards rest
      | Some link -> (
        match shard_request link line with
        | None ->
          shard_failed t pool i;
          try_shards rest
        | Some reply when is_error_reply reply ->
          (* the shard spoke: relay its verdict (bad request, queue
             full, draining) rather than shopping around *)
          Ok (None, reply)
        | Some reply -> (
          let head =
            match split_reply_head reply with
            | Some (local, state, tail) -> Some (local, state, Some tail)
            | None -> (
              (* unexpected reply shape: the JSON layer decides *)
              match Json.of_string reply with
              | exception Json.Parse_error _ -> None
              | j ->
                Option.map
                  (fun local -> (local, Json.str_member "state" j, None))
                  (Json.str_member "job" j))
          in
          match head with
          | None -> Ok (None, reply)
          | Some (local, state, tail) ->
              let queued = state <> Some "done" in
              let entry =
                match existing with
                | Some e ->
                  locked t (fun () ->
                      e.je_shard <- i;
                      e.je_local <- local;
                      e.je_inflight <- false);
                  e
                | None ->
                  let id = Shard_map.global_job_id ~shard:i local in
                  let e =
                    { je_id = id;
                      je_submit_line = line;
                      je_shard = i;
                      je_local = local;
                      je_inflight = false }
                  in
                  locked t (fun () -> Hashtbl.replace t.jobs id e);
                  e
              in
              if queued then begin
                entry.je_inflight <- true;
                incr_load t i
              end;
              Obs.incr m_routed;
              if i <> home || decision.Steal.stolen then Obs.incr m_stolen;
              let rewritten =
                match tail with
                | Some tail -> reply_head ^ entry.je_id ^ tail
                | None -> rewrite_job_id reply ~id:entry.je_id
              in
              Ok (Some entry, rewritten))))
  in
  try_shards order

let handle_submit t pool client_fd ~line ~spec =
  match dispatch t pool ~line ~spec () with
  | Error msg -> Net.write_line client_fd (Json.to_string (Protocol.error msg))
  | Ok (_, reply) -> Net.write_line client_fd reply

(* ------------------------------------------------------------------ *)
(* Job resolution for status/watch/cancel                              *)
(* ------------------------------------------------------------------ *)

(* An id the router routed is in the table; an id it has never seen
   (router restarted, or the client got it straight from a shard) still
   resolves through its ["s<i>-"] prefix. *)
let resolve t id =
  match locked t (fun () -> Hashtbl.find_opt t.jobs id) with
  | Some e -> Some (`Entry e)
  | None -> (
    match Shard_map.parse_job_id id with
    | Some (shard, local) when shard < shards t -> Some (`Direct (shard, local))
    | _ -> None)

let forward_simple t pool client_fd ~id ~make_request =
  match resolve t id with
  | None ->
    Net.write_line client_fd
      (Json.to_string (Protocol.error ("unknown job " ^ id)))
  | Some target -> (
    let shard, local =
      match target with
      | `Entry e -> (e.je_shard, e.je_local)
      | `Direct (shard, local) -> (shard, local)
    in
    let reply =
      match connect_shard t pool shard with
      | None -> None
      | Some link -> (
        match shard_request link (make_request local) with
        | None ->
          shard_failed t pool shard;
          None
        | Some r -> Some r)
    in
    match reply with
    | None ->
      Net.write_line client_fd
        (Json.to_string
           (Protocol.error (Printf.sprintf "shard %d unavailable" shard)))
    | Some reply ->
      (* observe terminality so the load accounting converges even for
         jobs nobody watches *)
      (match target with
       | `Direct _ -> ()
       | `Entry e -> (
         let state =
           match split_reply_head reply with
           | Some (_, state, _) -> state
           | None -> (
             match Json.of_string reply with
             | exception Json.Parse_error _ -> None
             | j -> Json.str_member "state" j)
         in
         match state with
         | Some ("done" | "failed" | "cancelled" | "timed_out") ->
           finished_entry t e
         | _ -> ()));
      Net.write_line client_fd (rewrite_job_id reply ~id))

let status_line local = Json.to_string (Protocol.request_to_json (Protocol.Status local))
let cancel_line local = Json.to_string (Protocol.request_to_json (Protocol.Cancel local))
let watch_line local = Json.to_string (Protocol.request_to_json (Protocol.Watch local))

(* ------------------------------------------------------------------ *)
(* Watch (streaming relay + re-dispatch)                               *)
(* ------------------------------------------------------------------ *)

let warning_frame msg =
  Json.to_string
    (Json.Obj
       [ ("ok", Json.Bool true);
         ("event", Json.Str "warning");
         ("message", Json.Str msg) ])

let error_frame msg =
  Json.to_string
    (Json.Obj
       [ ("ok", Json.Bool true);
         ("event", Json.Str "error");
         ("message", Json.Str msg) ])

(* Streams one shard's watch; [Ok ()] when a terminal frame was
   relayed, [Error ()] when the link died mid-stream. *)
let stream_watch t pool client_fd (e : job_entry) =
  match connect_shard t pool e.je_shard with
  | None -> Error ()
  | Some link -> (
    try
      Net.write_line link.l_fd (watch_line e.je_local);
      let rec relay () =
        match Net.read_line link.l_reader with
        | None ->
          shard_failed t pool e.je_shard;
          Error ()
        | Some line ->
          if is_error_reply line then begin
            (* the shard no longer knows the job: it respawned and lost
               its state — treat as a dead-shard redispatch *)
            drop_link pool e.je_shard;
            Error ()
          end
          else begin
            Net.write_line client_fd line;
            if is_terminal_frame line then begin
              finished_entry t e;
              Ok ()
            end
            else relay ()
          end
      in
      relay ()
    with Unix.Unix_error _ | Sys_error _ ->
      shard_failed t pool e.je_shard;
      Error ())

let max_redispatch = 3

let handle_watch t pool client_fd ~id =
  match resolve t id with
  | None ->
    Net.write_line client_fd
      (Json.to_string (Protocol.error ("unknown job " ^ id)))
  | Some (`Direct (shard, local)) -> (
    (* not our job: relay verbatim, no re-dispatch possible *)
    match connect_shard t pool shard with
    | None ->
      Net.write_line client_fd
        (Json.to_string
           (Protocol.error (Printf.sprintf "shard %d unavailable" shard)))
    | Some link ->
      (try
         Net.write_line link.l_fd (watch_line local);
         let rec relay () =
           match Net.read_line link.l_reader with
           | None -> drop_link pool shard
           | Some line ->
             Net.write_line client_fd line;
             if is_error_reply line || is_terminal_frame line then ()
             else relay ()
         in
         relay ()
       with Unix.Unix_error _ | Sys_error _ -> shard_failed t pool shard))
  | Some (`Entry e) ->
    let rec attempt n =
      match stream_watch t pool client_fd e with
      | Ok () -> ()
      | Error () ->
        finished_entry t e;
        if n >= max_redispatch then
          Net.write_line client_fd
            (error_frame
               (Printf.sprintf "job %s lost after %d dispatch attempts" id n))
        else begin
          Obs.incr m_redispatched;
          Net.write_line client_fd
            (warning_frame
               (Printf.sprintf "shard %d unavailable; re-dispatching job %s"
                  e.je_shard id));
          (* re-submit the remembered request under the same client id;
             a result already spilled to the store answers instantly *)
          match Json.of_string e.je_submit_line with
          | exception Json.Parse_error _ ->
            Net.write_line client_fd (error_frame ("cannot re-dispatch job " ^ id))
          | j -> (
            match Protocol.request_of_json j with
            | Ok (Protocol.Submit req) -> (
              match
                dispatch t pool ~line:e.je_submit_line ~spec:req.Protocol.program
                  ~existing:e ()
              with
              | Error msg -> Net.write_line client_fd (error_frame msg)
              | Ok _ -> attempt (n + 1))
            | Ok _ | Error _ ->
              Net.write_line client_fd (error_frame ("cannot re-dispatch job " ^ id)))
        end
    in
    attempt 0

(* ------------------------------------------------------------------ *)
(* Stats / shutdown                                                    *)
(* ------------------------------------------------------------------ *)

let stats_line = Json.to_string (Protocol.request_to_json Protocol.Stats)
let shutdown_line = Json.to_string (Protocol.request_to_json Protocol.Shutdown)

let handle_stats t pool client_fd =
  let per_shard =
    List.init (shards t) (fun i ->
        match connect_shard t pool i with
        | None -> None
        | Some link -> (
          match shard_request link stats_line with
          | None ->
            shard_failed t pool i;
            None
          | Some reply -> (
            match Json.of_string reply with
            | exception Json.Parse_error _ -> None
            | j ->
              let snap =
                match Json.str_member "metrics" j with
                | None -> None
                | Some text -> (
                  try Some (Obs.parse_json text) with Obs.Parse_error _ -> None)
              in
              Some
                ( snap,
                  Option.value ~default:0 (Json.int_member "cached_images" j),
                  Option.value ~default:0 (Json.int_member "cached_results" j) ))))
  in
  let reachable = List.filter_map Fun.id per_shard in
  let snaps = List.filter_map (fun (s, _, _) -> s) reachable in
  let merged = Obs.merge (Obs.snapshot () :: snaps) in
  let sum f = List.fold_left (fun acc x -> acc + f x) 0 reachable in
  Net.write_line client_fd
    (Json.to_string
       (Protocol.ok
          [ ("metrics", Json.Str (Obs.to_json merged));
            ("cached_images", Json.Int (sum (fun (_, i, _) -> i)));
            ("cached_results", Json.Int (sum (fun (_, _, r) -> r)));
            ("shards", Json.Int (shards t));
            ("shards_reachable", Json.Int (List.length reachable)) ]))

let broadcast_shutdown t pool =
  for i = 0 to shards t - 1 do
    match connect_shard t pool i with
    | None -> ()
    | Some link -> ignore (shard_request link shutdown_line)
  done

(* ------------------------------------------------------------------ *)
(* Connection loop / lifecycle                                         *)
(* ------------------------------------------------------------------ *)

let handle_connection t fd =
  Obs.incr m_connections;
  let pool : pool = Array.make (shards t) None in
  let send j = Net.write_line fd (Json.to_string j) in
  (try
     send Protocol.greeting;
     let reader = Net.reader fd in
     let rec loop () =
       match Net.read_line reader with
       | None -> ()
       | Some line ->
         (match
            try Ok (Json.of_string line)
            with Json.Parse_error msg -> Error ("bad JSON: " ^ msg)
          with
          | Error msg -> send (Protocol.error msg)
          | Ok j -> (
            match Protocol.request_of_json j with
            | Error msg -> send (Protocol.error msg)
            | Ok (Protocol.Submit req) ->
              handle_submit t pool fd ~line ~spec:req.Protocol.program
            | Ok (Protocol.Status id) ->
              forward_simple t pool fd ~id ~make_request:status_line
            | Ok (Protocol.Cancel id) ->
              forward_simple t pool fd ~id ~make_request:cancel_line
            | Ok (Protocol.Watch id) -> handle_watch t pool fd ~id
            | Ok Protocol.Stats -> handle_stats t pool fd
            | Ok Protocol.Shutdown ->
              send (Protocol.ok []);
              broadcast_shutdown t pool;
              Atomic.set t.stop true));
         loop ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  Array.iteri (fun i _ -> drop_link pool i) pool;
  Net.close_noerr fd

let start config =
  Obs.set_enabled true;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let n = Array.length config.shard_sockets in
  let fd = Net.listen ~socket_path:config.socket_path in
  let t =
    { config;
      mutex = Mutex.create ();
      jobs = Hashtbl.create 256;
      load = Array.make n 0;
      alive = Array.make n true;
      digests = Hashtbl.create 64;
      stop = Atomic.make false;
      stop_signal = Atomic.make false;
      threads = [] }
  in
  let accept_thread =
    Thread.create
      (fun () ->
        Net.accept_loop
          ~stop:(fun () -> Atomic.get t.stop)
          ~tick:(fun () ->
            if Atomic.get t.stop_signal then Atomic.set t.stop true)
          fd (handle_connection t))
      ()
  in
  t.threads <- [ accept_thread ];
  t

let shutdown t = Atomic.set t.stop true
let stopped t = Atomic.get t.stop
let request_stop t = Atomic.set t.stop_signal true

let wait t =
  List.iter Thread.join t.threads;
  (try Unix.unlink t.config.socket_path with Unix.Unix_error _ | Sys_error _ -> ())

let loads t = locked t (fun () -> Array.copy t.load)
