(* The cluster supervisor: the process behind [failatom cluster].

   It spawns N shard daemons ([failatom serve] child processes, each on
   its private socket, all sharing one persistent store directory),
   runs the {!Router} in-process on the public socket, and then
   babysits the fleet:

   - {b Respawn.}  A shard that exits — crash, OOM kill, [kill -9] — is
     respawned on the same socket; a shard that dies within a second of
     starting respawns with doubling backoff (capped at 5s) so a
     persistently-crashing configuration cannot fork-bomb the host.
     The map file is rewritten after every respawn, so its pids are
     always current.

   - {b Health checks.}  Every ~2s each shard gets a greeting ping on
     its socket; three consecutive failures mean the process is wedged
     (alive but not serving) and it is killed, which routes into the
     same respawn path.

   - {b Ordered drain.}  SIGTERM/SIGINT (or a client [shutdown] through
     the router) drains the router {e first} — stop accepting, let
     in-flight streams finish — and only then SIGTERMs the shards and
     waits for them, escalating to SIGKILL after a grace period.
     Router before shards means no client ever sees a connection
     accepted by a router whose shards are already gone.

   The supervisor's observable lifecycle is reported through
   [on_event], which is how the drain-ordering test pins the sequence
   without scraping logs. *)

module Client = Failatom_server.Client
module Obs = Failatom_obs.Obs

let m_respawns = Obs.counter "cluster.shard_respawns"
let m_health_kills = Obs.counter "cluster.shard_health_kills"

type event =
  | Shard_started of int * int  (* shard index, pid *)
  | Shard_exited of int * int
  | Shard_respawned of int * int
  | Router_started
  | Draining
  | Router_drained
  | Shard_terminated of int

let event_name = function
  | Shard_started (i, pid) -> Printf.sprintf "shard %d started (pid %d)" i pid
  | Shard_exited (i, pid) -> Printf.sprintf "shard %d exited (pid %d)" i pid
  | Shard_respawned (i, pid) -> Printf.sprintf "shard %d respawned (pid %d)" i pid
  | Router_started -> "router started"
  | Draining -> "draining"
  | Router_drained -> "router drained"
  | Shard_terminated i -> Printf.sprintf "shard %d terminated" i

type config = {
  base_socket : string;  (* public socket; shards use <base>.shard<i> *)
  shards : int;
  workers : int;  (* executor threads per shard *)
  max_queue : int;
  job_timeout_s : float option;
  run_timeout_s : float option;
  store_dir : string option;  (* shared persistent cache tier *)
  store_max_bytes : int;
  steal_threshold : int;
  exe : string;  (* the failatom binary to spawn shards from *)
  on_event : event -> unit;
}

let default_config ~base_socket ~exe =
  { base_socket;
    shards = 2;
    workers = 2;
    max_queue = 64;
    job_timeout_s = None;
    run_timeout_s = None;
    store_dir = None;
    store_max_bytes = 256 * 1024 * 1024;
    steal_threshold = 4;
    exe;
    on_event = ignore }

type t = {
  config : config;
  router : Router.t;
  pids : int array;
  spawned_at : float array;
  backoff : float array;  (* respawn backoff per shard *)
  ping_fails : int array;  (* consecutive health-check failures *)
  mutex : Mutex.t;
  mutable draining : bool;
  stop_signal : bool Atomic.t;
  mutable monitor : Thread.t option;
}

let shard_socket t i = Shard_map.shard_socket ~base:t.config.base_socket i

(* ------------------------------------------------------------------ *)
(* Spawning                                                            *)
(* ------------------------------------------------------------------ *)

let shard_argv config i =
  let socket = Shard_map.shard_socket ~base:config.base_socket i in
  let opt name = function
    | None -> []
    | Some v -> [ name; Printf.sprintf "%g" v ]
  in
  let store =
    match config.store_dir with
    | None -> []
    | Some dir ->
      [ "--store"; dir; "--store-max-bytes"; string_of_int config.store_max_bytes ]
  in
  [ config.exe; "serve"; "--socket"; socket;
    "--workers"; string_of_int config.workers;
    "--max-queue"; string_of_int config.max_queue ]
  @ opt "--job-timeout" config.job_timeout_s
  @ opt "--run-timeout" config.run_timeout_s
  @ store

let spawn_shard config i =
  let argv = Array.of_list (shard_argv config i) in
  Unix.create_process config.exe argv Unix.stdin Unix.stdout Unix.stderr

(* Greeting ping: connects, verifies the protocol greeting, hangs up. *)
let ping socket_path =
  match Client.with_conn ~socket_path (fun _ -> ()) with
  | () -> true
  | exception _ -> false

let wait_serving ~timeout_s socket_path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if ping socket_path then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let write_map t =
  Shard_map.write_map ~base:t.config.base_socket
    { Shard_map.m_router = t.config.base_socket;
      m_shards =
        List.init t.config.shards (fun i ->
            { Shard_map.e_socket = shard_socket t i; e_pid = t.pids.(i) }) }

(* ------------------------------------------------------------------ *)
(* Monitoring                                                          *)
(* ------------------------------------------------------------------ *)

let reap_nohang pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> `Running
  | _, _ -> `Exited
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> `Exited
  | exception Unix.Unix_error _ -> `Running

let respawn t i =
  let old = t.pids.(i) in
  t.config.on_event (Shard_exited (i, old));
  let now = Unix.gettimeofday () in
  (* a shard that died young gets a growing pause before its respawn *)
  if now -. t.spawned_at.(i) < 1.0 then begin
    t.backoff.(i) <- Float.min 5.0 (Float.max 0.1 (t.backoff.(i) *. 2.));
    Thread.delay t.backoff.(i)
  end
  else t.backoff.(i) <- 0.05;
  let pid = spawn_shard t.config i in
  t.pids.(i) <- pid;
  t.spawned_at.(i) <- Unix.gettimeofday ();
  t.ping_fails.(i) <- 0;
  ignore (wait_serving ~timeout_s:10.0 (shard_socket t i));
  write_map t;
  Obs.incr m_respawns;
  t.config.on_event (Shard_respawned (i, pid))

let term_then_kill t i ~grace_s =
  let pid = t.pids.(i) in
  if pid > 0 then begin
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    let deadline = Unix.gettimeofday () +. grace_s in
    let rec wait_exit () =
      match reap_nohang pid with
      | `Exited -> ()
      | `Running ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid)
           with Unix.Unix_error _ -> ())
        end
        else begin
          Thread.delay 0.05;
          wait_exit ()
        end
    in
    wait_exit ();
    t.pids.(i) <- 0;
    (try Unix.unlink (shard_socket t i) with Unix.Unix_error _ | Sys_error _ -> ());
    t.config.on_event (Shard_terminated i)
  end

let drain t =
  let proceed =
    Mutex.lock t.mutex;
    let p = not t.draining in
    if p then t.draining <- true;
    Mutex.unlock t.mutex;
    p
  in
  if proceed then begin
    t.config.on_event Draining;
    (* router first: no new clients, in-flight streams finish *)
    Router.shutdown t.router;
    Router.wait t.router;
    t.config.on_event Router_drained;
    (* then the shards, gracefully *)
    for i = 0 to t.config.shards - 1 do
      term_then_kill t i ~grace_s:10.0
    done;
    Shard_map.remove_map ~base:t.config.base_socket
  end

let monitor t () =
  let tick = ref 0 in
  let rec loop () =
    if Atomic.get t.stop_signal || Router.stopped t.router then drain t
    else begin
      for i = 0 to t.config.shards - 1 do
        if t.pids.(i) > 0 && reap_nohang t.pids.(i) = `Exited then respawn t i
      done;
      incr tick;
      if !tick mod 20 = 0 then
        (* ~2s cadence: a wedged shard (alive, not serving) is killed
           into the respawn path after three consecutive failed pings *)
        for i = 0 to t.config.shards - 1 do
          if t.pids.(i) > 0 then
            if ping (shard_socket t i) then t.ping_fails.(i) <- 0
            else begin
              t.ping_fails.(i) <- t.ping_fails.(i) + 1;
              if t.ping_fails.(i) >= 3 then begin
                Obs.incr m_health_kills;
                (try Unix.kill t.pids.(i) Sys.sigkill
                 with Unix.Unix_error _ -> ())
                (* the reap loop respawns it *)
              end
            end
        done;
      Thread.delay 0.1;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start config =
  let config = { config with shards = max 1 config.shards } in
  let t_pids = Array.make config.shards 0 in
  let now = Unix.gettimeofday () in
  for i = 0 to config.shards - 1 do
    t_pids.(i) <- spawn_shard config i;
    config.on_event (Shard_started (i, t_pids.(i)))
  done;
  (* every shard must greet before the router opens for business *)
  for i = 0 to config.shards - 1 do
    ignore
      (wait_serving ~timeout_s:15.0
         (Shard_map.shard_socket ~base:config.base_socket i))
  done;
  let router =
    Router.start
      { Router.socket_path = config.base_socket;
        shard_sockets =
          Array.init config.shards
            (Shard_map.shard_socket ~base:config.base_socket);
        steal_threshold = config.steal_threshold;
        connect_retries = 4 }
  in
  config.on_event Router_started;
  let t =
    { config;
      router;
      pids = t_pids;
      spawned_at = Array.make config.shards now;
      backoff = Array.make config.shards 0.05;
      ping_fails = Array.make config.shards 0;
      mutex = Mutex.create ();
      draining = false;
      stop_signal = Atomic.make false;
      monitor = None }
  in
  write_map t;
  t.monitor <- Some (Thread.create (monitor t) ());
  t

let stop t = Atomic.set t.stop_signal true

let wait t =
  (match t.monitor with Some th -> Thread.join th | None -> ());
  (* safety net: if the monitor died without draining *)
  drain t

let shard_pids t = Array.copy t.pids
let router t = t.router

let run config =
  let t = start config in
  let request_stop _ = Atomic.set t.stop_signal true in
  let install signal =
    try ignore (Sys.signal signal (Sys.Signal_handle request_stop))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  install Sys.sigterm;
  install Sys.sigint;
  wait t
