(** The cluster router: owns the public socket, forwards each job to a
    shard daemon selected by program digest (cache affinity), steals to
    the idlest shard when the home shard is overloaded or dead,
    re-dispatches watched jobs when a shard dies mid-stream, and
    aggregates per-shard metrics for [failatom stats].

    Speaks plain [failatom.rpc/1] on both sides, so any client works
    unchanged; watch event frames are relayed as raw bytes. *)

type config = {
  socket_path : string;  (** the public socket *)
  shard_sockets : string array;
  steal_threshold : int;
      (** min in-flight imbalance (home minus idlest) before a job
          leaves its home shard; default 4 *)
  connect_retries : int;
      (** backoff retries per shard connect, so a respawning shard is
          waited for rather than failed over; default 4 *)
}

val default_config :
  socket_path:string -> shard_sockets:string array -> config

type t

val start : config -> t
(** Binds the public socket and spawns the accept thread.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val shutdown : t -> unit
(** Stops accepting new connections.  In-flight connection threads
    finish their current streams. *)

val request_stop : t -> unit
(** Signal-handler-safe shutdown request (flips an atomic polled by the
    accept loop). *)

val stopped : t -> bool
(** True once a shutdown (request, signal, or client [shutdown]
    command, which also broadcasts to the shards) has been observed —
    the supervisor polls this to begin its drain. *)

val wait : t -> unit
(** Joins the accept thread and removes the public socket file. *)

val loads : t -> int array
(** In-flight jobs per shard, as the router currently believes. *)
