(* Glue between the generic blob {!Store} and the server's in-memory
   {!Cache}: builds the cache's persist hooks from a store, and
   prewarms a fresh cache from the store's image metadata so a
   restarted shard recompiles its hot programs before serving.

   The hook payloads:

   - [results/<fingerprint>]: the exact rendered NDJSON text of the
     finished {!Protocol.job_result}.  Byte-identity end to end — what
     the original job rendered is what a revived cache serves.

   - [images/<digest>.<flavor>]: [failatom.image-meta/1] metadata
     ({digest, flavor, source}), where [source] is the canonical
     pretty-printing whose md5 {e is} the digest.  Enough to recompile
     the image after a restart; the compiled form itself is
     process-local and cheap relative to detection runs. *)

open Failatom_minilang
module Cache = Failatom_server.Cache
module Json = Failatom_core.Json
module Protocol = Failatom_server.Protocol
module Obs = Failatom_obs.Obs

let m_prewarmed = Obs.counter "cluster.images_prewarmed"

let hooks store =
  { Cache.find_blob = (fun ~ns ~key -> Store.find store ~ns ~key);
    Cache.store_blob = (fun ~ns ~key payload -> Store.store store ~ns ~key payload) }

let cache ?image_capacity ?result_capacity store =
  Cache.create ?image_capacity ?result_capacity ~persist:(hooks store) ()

(* Recompiles up to [limit] images recorded in the store, most recently
   used first.  Corrupt or stale metadata is skipped silently — prewarm
   is best-effort by definition. *)
let prewarm ?(limit = 64) store cache =
  let keys = Store.list store ~ns:Cache.ns_images in
  let rec go n = function
    | [] -> n
    | _ when n >= limit -> n
    | key :: rest ->
      let warmed =
        match Store.find store ~ns:Cache.ns_images ~key with
        | None -> false
        | Some payload -> (
          match
            try Some (Json.of_string payload) with Json.Parse_error _ -> None
          with
          | None -> false
          | Some j -> (
            match
              ( Json.str_member "digest" j,
                Json.str_member "flavor" j,
                Json.str_member "source" j )
            with
            | Some digest, Some flavor_name, Some source -> (
              match Protocol.flavor_of_name flavor_name with
              | None -> false
              | Some flavor -> (
                try
                  let program = Minilang.parse ~allow_reserved:true source in
                  ignore (Cache.images cache ~program_digest:digest ~flavor program);
                  Obs.incr m_prewarmed;
                  true
                with _ -> false))
            | _ -> false))
      in
      go (if warmed then n + 1 else n) rest
  in
  go 0 keys
