(** Checkpoint / rollback of object graphs (paper Listing 2).

    A checkpoint captures, for every relevant object, a copy of its
    payload keyed by the object's identity; {!rollback} restores the
    captured payloads {e in place}, so every alias observes the restored
    state — the paper's [replace(this, objgraph)].  Objects allocated
    after the checkpoint become garbage after rollback and are reclaimed
    by {!Gc_heap.collect}. *)

type strategy =
  | Eager
      (** traverse the graph at checkpoint time and copy every reachable
          payload up front (the paper's implementation) *)
  | Lazy
      (** copy-on-write, the optimization suggested in paper §6.2,
          implemented as a {!Shadow}: nothing is copied up front; the
          heap's write barrier saves an object's payload on its first
          mutation while the checkpoint is active *)

type t

val take : ?strategy:strategy -> Heap.t -> Value.t list -> t
(** [take heap roots] checkpoints everything reachable from [roots]
    (default strategy: [Eager]).  Lazy checkpoints install themselves on
    the heap's write barrier and nest correctly (each active checkpoint
    records independently). *)

val size : t -> int
(** Number of payloads captured so far; grows on demand for lazy
    checkpoints. *)

val rollback : t -> unit
(** Restores every captured object to its checkpointed payload. *)

val dispose : t -> unit
(** Detaches the checkpoint (and, for lazy ones, the write barrier).
    Must be called exactly once, whether or not it was rolled back. *)

val with_checkpoint : ?strategy:strategy -> Heap.t -> Value.t list -> (t -> 'a) -> 'a
(** Scoped form: disposes the checkpoint on exit, even on exceptions. *)
