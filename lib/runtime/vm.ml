(* The virtual machine: class table, method dispatch and interposition.

   This module plays the role of the JVM / C++ runtime in the paper.
   Method entries are mutable so that "load-time" tools — our analog of
   the paper's Java Wrapper Generator (JWG/BCEL filters) — can attach
   pre/post filters to any method *after* the program has been compiled,
   without touching its source.  Source-level weaving, the analog of the
   paper's AspectC++ path, instead rewrites the AST before compilation
   and needs no filter. *)

type exn_value = {
  exn_class : string;
  message : string;
  exn_obj : Value.t; (* the heap object carried by the exception, or Null *)
}

(* The MiniLang-level exception, propagated as an OCaml exception while
   a program runs. *)
exception Mini_raise of exn_value

type t = {
  heap : Heap.t;
  classes : (string, cls) Hashtbl.t;
  functions : (string, func) Hashtbl.t;
  out : Buffer.t; (* program output, captured per run *)
  hooks : (string, t -> Value.t list -> Value.t) Hashtbl.t;
      (* reflective builtins (__inject, __mark, ...) registered by the
         detection/masking engine; looked up by woven code at runtime *)
  mutable frame_roots : ((Value.t -> unit) -> unit) list;
      (* live interpreter frames, for GC root enumeration; each entry
         applies the marker to every value the frame holds, so slot
         frames scan in place instead of materialising a list *)
  mutable call_depth : int;
  mutable max_call_depth : int;
  mutable steps : int;
  mutable step_limit : int; (* guards against runaway injected programs *)
  mutable deadline_ns : int;
      (* absolute monotonic deadline for this run, 0 = none; checked
         every few thousand steps so a divergent injected run aborts
         with Deadline_exceeded instead of wedging its worker *)
  mutable calls : int; (* dynamic count of method + constructor calls *)
  mutable ic_hits : int;
      (* compiled call sites whose monomorphic inline cache hit; plain
         per-VM count (like [calls]), harvested at run boundaries *)
  mutable ic_misses : int; (* call sites that fell back to table lookup *)
  globals : (string, Value.t ref) Hashtbl.t; (* program globals, by name *)
  mutable global_roots : Value.t ref list;
      (* the same refs in (reverse) creation order: GC-root enumeration
         stays deterministic while reads go through the table *)
  mutable meth_table : meth array;
      (* this run's method entries indexed by compile-time slot; filled
         by Compile.instantiate so compiled call sites dispatch without
         a class-table walk.  Empty for hand-built VMs. *)
  mutable preempt_flag : bool;
      (* set by the scheduler for preemptive policies only; when false
         (the whole sequential path) call_filtered performs no effect *)
  mutable cur_tid : int; (* MiniLang thread running right now; 0 = main *)
  mutable sched_switches : int; (* context switches this run *)
  mutable sched_preemptions : int; (* switches forced at a Preempt point *)
  mutable sched_contention : int; (* monitor acquisitions that blocked *)
  mutable sched_digest : string;
      (* hex FNV-1a digest of the scheduler's decision stream, written
         by Sched.run at the end of the run; "" for coop runs *)
  exn_fields_cache : (string, string list) Hashtbl.t;
      (* memoized [all_fields] per exception class — exceptions are
         allocated on every throw, including the hot injection paths;
         invalidated whenever a class is (re)defined *)
}

and cls = {
  cls_name : string;
  super : string option;
  decl_fields : string list;
  cls_methods : (string, meth) Hashtbl.t;
}

and meth = {
  meth_class : string; (* defining class *)
  meth_name : string;
  params : string list;
  throws : string list; (* declared exception classes *)
  mutable impl : impl;
  mutable filters : filter list; (* outermost first *)
}

and impl = t -> Value.t -> Value.t list -> Value.t

and func = {
  fn_name : string;
  fn_params : string list;
  mutable fn_impl : t -> Value.t list -> Value.t;
}

and filter = {
  filt_name : string;
  pre : t -> meth -> Value.t -> Value.t list -> pre_action;
  post :
    t -> meth -> Value.t -> Value.t list -> (Value.t, exn_value) result ->
    post_action;
  unwind : t -> meth -> unit;
      (* called when a non-MiniLang (OCaml-level) exception — deadline,
         step limit, scheduler abort — unwinds through the call after
         [pre] ran: [post] will never run, so per-call state acquired in
         [pre] (checkpoints, shadows, snapshot stacks) must be released
         here.  [no_unwind] for filters that keep no such state. *)
}

and pre_action = Proceed | Pre_return of Value.t | Pre_raise of exn_value
and post_action = Pass | Post_return of Value.t | Post_raise of exn_value

let no_unwind (_ : t) (_ : meth) = ()

exception Unknown_class of string
exception Unknown_method of string * string (* class, method *)
exception Step_limit_exceeded
exception Deadline_exceeded

(* ------------------------------------------------------------------ *)
(* Scheduling effects                                                  *)
(* ------------------------------------------------------------------ *)

(* The cooperative scheduler (Sched) handles these; they are declared
   here so the concurrency builtins (__spawn, __join, monitor enter and
   exit) can perform them without depending on the scheduler module.
   [Preempt] is performed by {!call_filtered} when [preempt_flag] is
   set — method-call boundaries are the only preemption opportunities,
   which keeps both execution engines (closures and bytecode, which
   batches its ticks) bit-for-bit identical under any schedule. *)
type _ Effect.t +=
  | Preempt : unit Effect.t
  | Sched_spawn : (unit -> Value.t) -> int Effect.t
  | Sched_join : int -> Value.t Effect.t
  | Monitor_enter : int -> unit Effect.t
  | Monitor_exit : int -> unit Effect.t

(* ------------------------------------------------------------------ *)
(* Built-in exception class hierarchy                                  *)
(* ------------------------------------------------------------------ *)

let throwable = "Throwable"
let exception_class = "Exception"
let runtime_exception = "RuntimeException"
let error_class = "Error"

(* Runtime exceptions: may be raised implicitly by any operation, hence
   are injection candidates for every method (paper §4.1 step 1). *)
let builtin_runtime_exceptions =
  [ "NullPointerException";
    "IndexOutOfBoundsException";
    "ArithmeticException";
    "NegativeArraySizeException";
    "ClassCastException";
    "IllegalArgumentException";
    "IllegalStateException";
    "NoSuchElementException";
    "UnsupportedOperationException";
    "ConcurrentModificationException" ]

let builtin_errors = [ "OutOfMemoryError"; "StackOverflowError" ]

let builtin_exception_classes =
  (throwable, None)
  :: (exception_class, Some throwable)
  :: (runtime_exception, Some throwable)
  :: (error_class, Some throwable)
  :: List.map (fun c -> (c, Some runtime_exception)) builtin_runtime_exceptions
  @ List.map (fun c -> (c, Some error_class)) builtin_errors

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let add_class vm ?super ?(fields = []) name =
  let cls = { cls_name = name; super; decl_fields = fields; cls_methods = Hashtbl.create 8 } in
  Hashtbl.replace vm.classes name cls;
  Hashtbl.reset vm.exn_fields_cache;
  cls

let create () =
  let vm =
    { heap = Heap.create ();
      classes = Hashtbl.create 64;
      functions = Hashtbl.create 16;
      out = Buffer.create 256;
      hooks = Hashtbl.create 8;
      frame_roots = [];
      call_depth = 0;
      max_call_depth = 2_000;
      steps = 0;
      step_limit = 50_000_000;
      deadline_ns = 0;
      calls = 0;
      ic_hits = 0;
      ic_misses = 0;
      globals = Hashtbl.create 16;
      global_roots = [];
      meth_table = [||];
      preempt_flag = false;
      cur_tid = 0;
      sched_switches = 0;
      sched_preemptions = 0;
      sched_contention = 0;
      sched_digest = "";
      exn_fields_cache = Hashtbl.create 16 }
  in
  List.iter
    (fun (name, super) -> ignore (add_class vm ?super ~fields:[ "message" ] name))
    builtin_exception_classes;
  vm

let find_class vm name =
  match Hashtbl.find_opt vm.classes name with
  | Some c -> c
  | None -> raise (Unknown_class name)

let class_exists vm name = Hashtbl.mem vm.classes name

(* [is_subclass vm c1 c2] holds iff [c1] equals [c2] or transitively
   extends it. *)
let rec is_subclass vm c1 c2 =
  String.equal c1 c2
  || match Hashtbl.find_opt vm.classes c1 with
     | Some { super = Some s; _ } -> is_subclass vm s c2
     | Some { super = None; _ } | None -> false

let is_exception_class vm name =
  class_exists vm name && is_subclass vm name throwable

(* All fields of a class, including inherited ones. *)
let rec all_fields vm name =
  match Hashtbl.find_opt vm.classes name with
  | None -> []
  | Some { super; decl_fields; _ } ->
    (match super with None -> [] | Some s -> all_fields vm s) @ decl_fields

let add_method vm cls_name ~name ~params ~throws impl =
  let cls = find_class vm cls_name in
  let meth =
    { meth_class = cls_name; meth_name = name; params; throws; impl; filters = [] }
  in
  Hashtbl.replace cls.cls_methods name meth;
  meth

(* Method resolution walks the superclass chain (single inheritance). *)
let rec lookup_method vm cls_name mname =
  match Hashtbl.find_opt vm.classes cls_name with
  | None -> None
  | Some cls -> (
    match Hashtbl.find_opt cls.cls_methods mname with
    | Some m -> Some m
    | None -> (
      match cls.super with
      | Some s -> lookup_method vm s mname
      | None -> None))

let find_method vm cls_name mname =
  match lookup_method vm cls_name mname with
  | Some m -> m
  | None -> raise (Unknown_method (cls_name, mname))

(* Every method of [vm], user classes only (builtin exception classes
   define none). *)
let iter_methods vm f =
  Hashtbl.iter (fun _ cls -> Hashtbl.iter (fun _ m -> f cls m) cls.cls_methods) vm.classes

(* ------------------------------------------------------------------ *)
(* Exceptions                                                          *)
(* ------------------------------------------------------------------ *)

(* Allocates the exception object on the simulated heap (exceptions are
   objects, as in Java) and raises it as a MiniLang exception. *)
let make_exn vm cls_name message =
  let field_names =
    match Hashtbl.find_opt vm.exn_fields_cache cls_name with
    | Some fs -> fs
    | None ->
      let fs = all_fields vm cls_name in
      Hashtbl.replace vm.exn_fields_cache cls_name fs;
      fs
  in
  let fields =
    List.map
      (fun f -> (f, if String.equal f "message" then Value.Str message else Value.Null))
      field_names
  in
  let id = Heap.alloc_object vm.heap ~cls:cls_name fields in
  { exn_class = cls_name; message; exn_obj = Value.Ref id }

let throw vm cls_name message = raise (Mini_raise (make_exn vm cls_name message))

let exn_matches vm exn_v handler_class = is_subclass vm exn_v.exn_class handler_class

(* ------------------------------------------------------------------ *)
(* Dispatch with filter interposition                                  *)
(* ------------------------------------------------------------------ *)

(* How many steps pass between deadline-clock reads.  The mask keeps the
   per-tick cost of an armed deadline to one load and one branch; the
   clock itself is only read every [deadline_check_mask + 1] steps. *)
let deadline_check_mask = 0xfff

let tick vm =
  vm.steps <- vm.steps + 1;
  if vm.steps > vm.step_limit then raise Step_limit_exceeded;
  if
    vm.deadline_ns > 0
    && vm.steps land deadline_check_mask = 0
    && Failatom_obs.Obs.now_ns () > vm.deadline_ns
  then raise Deadline_exceeded

let arm_deadline vm ~timeout_s =
  vm.deadline_ns <-
    Failatom_obs.Obs.now_ns () + int_of_float (timeout_s *. 1e9)

(* Runs [meth] on [recv] with [args], threading the call through the
   method's filter chain (outermost first).  Filters see the MiniLang
   exception as a [result] and may pass it on, swallow it, or replace
   it — exactly the JWG pre/post filter contract described in §5.2. *)
let rec run_filters vm meth recv args filters =
  match filters with
  | [] -> meth.impl vm recv args
  | f :: rest -> (
    match f.pre vm meth recv args with
    | Pre_return v -> v
    | Pre_raise e -> raise (Mini_raise e)
    | Proceed -> (
      let result =
        try Ok (run_filters vm meth recv args rest) with
        | Mini_raise e -> Error e
        | e ->
          (* OCaml-level aborts bypass [post]; let the filter release
             whatever its [pre] acquired for this call. *)
          f.unwind vm meth;
          raise e
      in
      match f.post vm meth recv args result with
      | Pass -> (match result with Ok v -> v | Error e -> raise (Mini_raise e))
      | Post_return v -> v
      | Post_raise e -> raise (Mini_raise e)))

let call_filtered vm meth recv args =
  if vm.preempt_flag then Effect.perform Preempt;
  vm.calls <- vm.calls + 1;
  vm.call_depth <- vm.call_depth + 1;
  if vm.call_depth > vm.max_call_depth then begin
    vm.call_depth <- vm.call_depth - 1;
    throw vm "StackOverflowError" "call depth exceeded"
  end;
  match
    (* unfiltered calls (every call of an uninstrumented run) go
       straight to the implementation *)
    match meth.filters with
    | [] -> meth.impl vm recv args
    | filters -> run_filters vm meth recv args filters
  with
  | v ->
    vm.call_depth <- vm.call_depth - 1;
    v
  | exception e ->
    vm.call_depth <- vm.call_depth - 1;
    raise e

(* Dynamic dispatch on a receiver value. *)
let invoke vm recv mname args =
  match recv with
  | Value.Ref id -> (
    match Heap.get vm.heap id with
    | Heap.Obj { cls; _ } -> call_filtered vm (find_method vm cls mname) recv args
    | Heap.Arr _ -> throw vm "UnsupportedOperationException" ("method call on array: " ^ mname))
  | Value.Null -> throw vm "NullPointerException" ("call of " ^ mname ^ " on null")
  | Value.Int _ | Value.Bool _ | Value.Str _ ->
    throw vm "UnsupportedOperationException"
      (Printf.sprintf "call of %s on %s" mname (Value.type_name recv))

(* Filter (de-)installation: the load-time weaving API. *)
let attach_filter meth filter = meth.filters <- filter :: meth.filters
let detach_filter meth name =
  meth.filters <- List.filter (fun f -> not (String.equal f.filt_name name)) meth.filters
let detach_all_filters meth = meth.filters <- []

let attach_filter_everywhere vm filter = iter_methods vm (fun _ m -> attach_filter m filter)
let detach_filter_everywhere vm name = iter_methods vm (fun _ m -> detach_filter m name)

(* ------------------------------------------------------------------ *)
(* Hooks, output, globals                                              *)
(* ------------------------------------------------------------------ *)

let register_hook vm name f = Hashtbl.replace vm.hooks name f
let find_hook vm name = Hashtbl.find_opt vm.hooks name

let output vm = Buffer.contents vm.out
let print_out vm s = Buffer.add_string vm.out s

let set_global vm name v =
  match Hashtbl.find_opt vm.globals name with
  | Some r -> r := v
  | None ->
    let r = ref v in
    Hashtbl.replace vm.globals name r;
    vm.global_roots <- r :: vm.global_roots

let get_global vm name = Option.map ( ! ) (Hashtbl.find_opt vm.globals name)

let iter_global_roots vm f = List.iter (fun r -> f !r) vm.global_roots

(* Keeps the heap's thread tag in step with the VM's, so write-barrier
   shadow saves land in the bucket of the thread that performed them. *)
let set_cur_tid vm tid =
  vm.cur_tid <- tid;
  Heap.set_cur_tid vm.heap tid
