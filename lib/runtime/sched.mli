(** Deterministic cooperative scheduler for MiniLang threads.

    Threads are OCaml effect fibers multiplexed on one domain; every
    preemption choice is drawn from a seeded splitmix64 stream, so a
    run is a pure function of (program, policy spec) and replays
    bit-for-bit by re-running with the same spec.  Preemption
    opportunities are method-call boundaries only, making opportunity
    counting — and hence every decision — identical across both
    execution engines.  See doc/concurrency.md for the memory model,
    the decision grammar and the replay guarantees. *)

type policy =
  | Coop  (** never preempts; FIFO switch on block/finish; no decisions *)
  | Slice of int
      (** [Slice seed]: random slices of 1..8 call opportunities, next
          thread uniform over the runnable set *)
  | Pct of int * int
      (** [Pct (depth, seed)]: PCT-style randomized priorities with
          [depth] priority-change points over a 10,000-opportunity
          horizon *)

val policy_to_string : policy -> string
(** ["coop" | "slice:<seed>" | "pct:<depth>:<seed>"] — the spec
    recorded in run logs and accepted by [--schedules]. *)

val policy_of_string : string -> policy option

val run : Vm.t -> policy:policy -> (unit -> Value.t) -> Value.t
(** Runs a thunk as MiniLang thread 0 (main) under the policy, handling
    the scheduling effects ({!Vm.Preempt}, spawn/join/monitors).  After
    main returns normally, remaining runnable threads are drained and
    the crash of the lowest-tid unjoined crashed thread (if any) is
    re-raised; a crash of main or a fatal OCaml-level exception aborts
    immediately.  On return (normal or exceptional) the VM's [sched_*]
    counters and decision digest are filled in and [cur_tid] is back
    to 0. *)
