(* Object graphs (paper Definition 1) and their comparison.

   The object graph of a value [v] is the rooted graph of all objects,
   arrays and primitive values reachable from [v] through instance
   variables and array slots.  Sharing matters: two pointers to the same
   object must remain pointers to one shared node.

   We represent an object graph by a *canonical form*: a finite tree in
   which each heap object is expanded at its first visit (in a
   deterministic traversal order: fields sorted by name, array slots in
   index order) and every later occurrence becomes a back-reference
   [Back idx] to the first-visit index.  Two rooted graphs are identical
   in the sense of Definition 1 iff their canonical forms are equal, so
   graph comparison reduces to structural equality of trees — including
   for cyclic graphs, whose cycles always close through a [Back].

   Performance of the canonical form matters: the detection phase builds
   one per wrapped-call comparison, over graphs of thousands of nodes.
   Three measures keep comparisons cheap:
   - every interior node carries a structural [hash], computed bottom-up
     at construction; the field sits before the children in the record,
     so the polymorphic [=] underlying {!equal} rejects differing
     subtrees after two int compares instead of walking them;
   - fields and elements are arrays, not lists (half the allocations,
     contiguous scans);
   - multi-root forms ({!canonical_many}) traverse the root list with a
     shared visit table instead of wrapping the roots in a synthetic
     heap array — the old trick bumped [Heap.allocations]/[next_id] on
     the *program* heap at every snapshot, distorting the heap metrics
     the reports quote.

   Canonicalization is additionally parameterized by the payload lookup
   ([read]), so a copy-on-write {!Shadow} can rebuild the *entry-time*
   canonical form from the current heap plus its saved payloads
   ({!canonical_many_via}, {!reaches_dirty}) — the differential
   snapshot path of the detection engine. *)

type node =
  | Int of int
  | Bool of bool
  | Str of string
  | Null
  | Obj of { idx : int; hash : int; cls : string; fields : (string * node) array }
  | Arr of { idx : int; hash : int; elems : node array }
  | Back of int

let rec pp_node ppf = function
  | Int n -> Fmt.int ppf n
  | Bool b -> Fmt.bool ppf b
  | Str s -> Fmt.pf ppf "%S" s
  | Null -> Fmt.string ppf "null"
  | Back i -> Fmt.pf ppf "^%d" i
  | Obj { idx; cls; fields; _ } ->
    let pp_field ppf (name, n) = Fmt.pf ppf "%s=%a" name pp_node n in
    Fmt.pf ppf "@[<hv 2>%s@%d{%a}@]" cls idx
      (Fmt.array ~sep:Fmt.comma pp_field) fields
  | Arr { idx; elems; _ } ->
    Fmt.pf ppf "@[<hv 2>arr@%d[%a]@]" idx (Fmt.array ~sep:Fmt.semi pp_node) elems

(* Structural hash of a node; precomputed for interior nodes, so reading
   it is O(1) everywhere. *)
let hash = function
  | Obj { hash; _ } | Arr { hash; _ } -> hash
  | (Int _ | Bool _ | Str _ | Null | Back _) as leaf -> Hashtbl.hash leaf

(* Deterministic mixing (no seeds, no Random): equal structures always
   get equal hashes, on any domain, in any process. *)
let mix h x = (h * 0x01000193) lxor (x land max_int)

let obj_hash ~idx ~cls fields =
  let h = ref (mix (mix 0x811c9dc5 idx) (Hashtbl.hash cls)) in
  Array.iter
    (fun (name, n) -> h := mix (mix !h (Hashtbl.hash name)) (hash n))
    fields;
  !h

let arr_hash ~idx elems =
  let h = ref (mix 0x7ee3623b idx) in
  Array.iter (fun n -> h := mix !h (hash n)) elems;
  !h

(* Canonicalization core, parameterized by the payload lookup so the
   same traversal serves the live heap ([Heap.get]) and a shadow's
   before-state ([Shadow.read_before]). *)
let canonicalize ~(read : Value.obj_id -> Heap.payload) ~visited ~counter v =
  let rec node v =
    match (v : Value.t) with
    | Value.Int n -> Int n
    | Value.Bool b -> Bool b
    | Value.Str s -> Str s
    | Value.Null -> Null
    | Value.Ref id -> (
      match Hashtbl.find_opt visited id with
      | Some idx -> Back idx
      | None ->
        let idx = !counter in
        incr counter;
        Hashtbl.replace visited id idx;
        (match read id with
         | Heap.Obj { cls; fields } ->
           let names =
             List.sort String.compare
               (Hashtbl.fold (fun k _ acc -> k :: acc) fields [])
           in
           let entries = Array.make (List.length names) ("", Null) in
           List.iteri
             (fun i name -> entries.(i) <- (name, node (Hashtbl.find fields name)))
             names;
           Obj { idx; hash = obj_hash ~idx ~cls entries; cls; fields = entries }
         | Heap.Arr a ->
           let elems = Array.make (Array.length a) Null in
           Array.iteri (fun i v -> elems.(i) <- node v) a;
           Arr { idx; hash = arr_hash ~idx elems; elems }))
  in
  node v

(* Canonical form of the object graph rooted at [v]. *)
let canonical heap v =
  canonicalize ~read:(Heap.get heap) ~visited:(Hashtbl.create 64) ~counter:(ref 0) v

(* Canonical form covering several roots at once (the receiver plus the
   by-reference arguments of a call), with the given payload lookup.
   The roots are joined under a synthetic array node at index 0 — the
   shape snapshots have always had, so diff paths still read
   [this[k].…] — but the node exists only in the result: nothing is
   allocated on the heap, and sharing *across* roots is captured because
   the visit table is common to all of them. *)
let canonical_many_via read vs =
  let visited = Hashtbl.create 64 in
  let counter = ref 1 (* 0 is the synthetic root *) in
  let elems = Array.make (List.length vs) Null in
  List.iteri (fun i v -> elems.(i) <- canonicalize ~read ~visited ~counter v) vs;
  Arr { idx = 0; hash = arr_hash ~idx:0 elems; elems }

let canonical_many heap vs = canonical_many_via (Heap.get heap) vs

(* ------------------------------------------------------------------ *)
(* Incremental canonicalization                                        *)
(* ------------------------------------------------------------------ *)

(* The detection phase canonicalizes the same receiver graph at every
   wrapped call of a campaign run, and most calls never mutate it.  The
   memo caches the canonical form per receiver identity together with
   the set of object ids it covers and the heap generation it was last
   known valid at; revalidation is then
   - one integer compare when nothing on the heap was written since
     ([Heap.write_gen] unchanged), or
   - one [Heap.write_stamp] read per covered id — no payload traversal,
     no sorting, no hashing, no allocation — otherwise.
   Any mutation of a covered object (including through [Shadow]'s
   copy-on-write barrier and rollback's [restore_payload]) bumps that
   object's stamp past the entry's generation and forces a rebuild, so
   a cached form is never stale.  Objects the graph did not reach at
   build time cannot join it without a covered object being mutated
   first, which invalidates the entry; fresh allocations reuse no ids,
   so an entry's root list can never alias a later object. *)
module Memo = struct
  type entry = {
    e_roots : Value.t list;
    e_node : node;
    e_ids : Value.obj_id list; (* every id the form covers *)
    mutable e_gen : int; (* heap generation the entry is valid at *)
  }

  type t = {
    tbl : (Value.obj_id, entry) Hashtbl.t;
        (* keyed by the first root's identity: detection snapshots are
           receiver-rooted, so this gives one live entry per wrapped
           receiver *)
    mutable hits : int;
    mutable misses : int;
  }

  let create () = { tbl = Hashtbl.create 64; hits = 0; misses = 0 }
  let hits m = m.hits
  let misses m = m.misses

  let key_of = function Value.Ref id :: _ -> id | _ -> 0

  let still_valid heap e =
    let gen = Heap.write_gen heap in
    e.e_gen = gen
    || (List.for_all (fun id -> Heap.write_stamp heap id <= e.e_gen) e.e_ids
        &&
        (e.e_gen <- gen;
         true))

  let canonical_many m heap vs =
    let key = key_of vs in
    match Hashtbl.find_opt m.tbl key with
    | Some e when e.e_roots = vs && still_valid heap e ->
      m.hits <- m.hits + 1;
      e.e_node
    | _ ->
      m.misses <- m.misses + 1;
      let gen = Heap.write_gen heap in
      let visited = Hashtbl.create 64 in
      let counter = ref 1 in
      let read = Heap.get heap in
      let elems = Array.make (List.length vs) Null in
      List.iteri
        (fun i v -> elems.(i) <- canonicalize ~read ~visited ~counter v)
        vs;
      let node = Arr { idx = 0; hash = arr_hash ~idx:0 elems; elems } in
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) visited [] in
      Hashtbl.replace m.tbl key
        { e_roots = vs; e_node = node; e_ids = ids; e_gen = gen };
      node
end

(* Does the graph reachable from [roots] — as read through [read] —
   contain an id satisfying [dirty]?  This is the dirty-set/reachability
   intersection of the differential snapshot check: reading through a
   shadow's before-state, it answers "was anything the snapshot covers
   actually touched?" without building a canonical form. *)
let reaches_dirty read ~dirty roots =
  let visited = Hashtbl.create 64 in
  let exception Found in
  let rec visit v =
    match (v : Value.t) with
    | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null -> ()
    | Value.Ref id ->
      if not (Hashtbl.mem visited id) then begin
        Hashtbl.replace visited id ();
        if dirty id then raise Found;
        match read id with
        | Heap.Obj { fields; _ } -> Hashtbl.iter (fun _ v -> visit v) fields
        | Heap.Arr a -> Array.iter visit a
      end
  in
  try
    List.iter visit roots;
    false
  with Found -> true

(* The ids reachable from [roots] through [read].  With a shadow's
   [read_before] this is the entry-time reachable set of a wrapped
   call — the objects a checkpoint of the same roots would have covered.
   The COW fast-rollback wrapper intersects it with the shadow's dirty
   set so it restores exactly what an eager checkpoint would restore,
   and nothing outside the protected graph. *)
let reachable_via read roots =
  let visited = Hashtbl.create 64 in
  let rec visit v =
    match (v : Value.t) with
    | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null -> ()
    | Value.Ref id ->
      if not (Hashtbl.mem visited id) then begin
        Hashtbl.replace visited id ();
        match read id with
        | Heap.Obj { fields; _ } -> Hashtbl.iter (fun _ v -> visit v) fields
        | Heap.Arr a -> Array.iter visit a
      end
  in
  List.iter visit roots;
  visited

let equal (a : node) (b : node) = a == b || a = b
let to_string n = Fmt.str "%a" pp_node n

(* First path (root-to-leaf field trail) at which two canonical forms
   differ, if any.  Used in detection reports so the user can see *where*
   a method left the receiver inconsistent. *)
let diff a b =
  let exception Found of string in
  let rec walk path a b =
    if a != b then
      match a, b with
      | Int x, Int y -> if x <> y then raise (Found path)
      | Bool x, Bool y -> if x <> y then raise (Found path)
      | Str x, Str y -> if not (String.equal x y) then raise (Found path)
      | Null, Null -> ()
      | Back x, Back y -> if x <> y then raise (Found path)
      | Obj oa, Obj ob ->
        if not (String.equal oa.cls ob.cls) then raise (Found path)
        else begin
          let na = Array.length oa.fields and nb = Array.length ob.fields in
          for i = 0 to min na nb - 1 do
            let fa, va = oa.fields.(i) and fb, vb = ob.fields.(i) in
            if not (String.equal fa fb) then raise (Found path)
            else walk (path ^ "." ^ fa) va vb
          done;
          if na <> nb then raise (Found path)
        end
      | Arr aa, Arr ab ->
        let na = Array.length aa.elems and nb = Array.length ab.elems in
        if na <> nb then raise (Found (path ^ ".length"))
        else
          for i = 0 to na - 1 do
            walk (Printf.sprintf "%s[%d]" path i) aa.elems.(i) ab.elems.(i)
          done
      | (Int _ | Bool _ | Str _ | Null | Obj _ | Arr _ | Back _), _ ->
        raise (Found path)
  in
  try
    walk "this" a b;
    None
  with Found p -> Some p

(* Deep copy of the graph rooted at [v], preserving sharing and cycles:
   the result references freshly allocated objects only.  This is the
   paper's [deep_copy]. *)
let clone heap v =
  let mapping : (Value.obj_id, Value.obj_id) Hashtbl.t = Hashtbl.create 64 in
  let rec copy v =
    match (v : Value.t) with
    | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null -> v
    | Value.Ref id -> (
      match Hashtbl.find_opt mapping id with
      | Some fresh -> Value.Ref fresh
      | None ->
        (* Allocate the copy first so cycles map back to it. *)
        let fresh =
          match Heap.get heap id with
          | Heap.Obj { cls; _ } ->
            Heap.alloc heap (Heap.Obj { cls; fields = Hashtbl.create 8 })
          | Heap.Arr a ->
            Heap.alloc heap (Heap.Arr (Array.make (Array.length a) Value.Null))
        in
        Hashtbl.replace mapping id fresh;
        (match Heap.get heap id, Heap.get heap fresh with
         | Heap.Obj { fields; _ }, Heap.Obj { fields = fresh_fields; _ } ->
           Hashtbl.iter (fun k v -> Hashtbl.replace fresh_fields k (copy v)) fields
         | Heap.Arr a, Heap.Arr fresh_a ->
           Array.iteri (fun i v -> fresh_a.(i) <- copy v) a
         | (Heap.Obj _ | Heap.Arr _), _ -> assert false);
        Value.Ref fresh)
  in
  copy v

(* Number of heap objects in the graph rooted at [v] (checkpoint size
   metric used by the Figure 5 benchmarks). *)
let size heap v =
  let visited = Hashtbl.create 64 in
  let rec visit v =
    match (v : Value.t) with
    | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null -> ()
    | Value.Ref id ->
      if not (Hashtbl.mem visited id) then begin
        Hashtbl.replace visited id ();
        List.iter (fun r -> visit (Value.Ref r)) (Heap.successors heap id)
      end
  in
  visit v;
  Hashtbl.length visited
