(* Flat-bytecode dispatch loop: the execution engine behind
   [Compile.image ~engine:Bytecode].

   A method body is an [int array] of variable-width instructions.  Every
   instruction is laid out as [op; ticks; operands...]: [ticks] is the
   number of AST nodes that semantically *start* at this instruction, so
   {!Vm.tick}-equivalent accounting is batched ([tick_n]) while keeping
   [Vm.steps] totals — observed by the metrics harvest and the goldens —
   exactly equal to the closure engine's, at every instruction boundary.

   Control flow uses two channels, mirroring the closure engine's cost
   model:

   - [return] is a status code (0 = fell off the end, 1 = returned with
     the value in [frame.ret]) threaded through nested block executions —
     the common case pays no OCaml exception;
   - [break]/[continue] are OCaml exceptions ({!Break_loop},
     {!Continue_loop}) because in the closure engine they can unwind
     *across* MiniLang call frames into a caller's loop, and that
     (degenerate but observable) behavior must be preserved;
   - MiniLang exceptions remain {!Vm.Mini_raise}; program defects raise
     {!Error} with the source position, converted to
     [Compile.Runtime_error] at the method boundary (this module cannot
     see the AST).

   Loops and try/catch/finally execute nested sub-blocks (separate
   instruction arrays referenced through site records) rather than
   intra-array jumps, so handler scopes map directly onto OCaml handler
   scopes.  Straight-line control flow (if/and/or) uses jumps within one
   array.

   The operand stack shares one [Value.t array] with the local-variable
   slots: registers [0, n_slots) are the slots, [n_slots, stack_size)
   the expression stack.  GC root enumeration marks [this] and the slot
   prefix only — stack temporaries are deliberately *not* roots, because
   the closure engine keeps its temporaries in OCaml locals that its
   root enumeration cannot see either, and collection behavior must stay
   identical between engines. *)

(* A genuine defect in the interpreted program, with its source position
   (line, column).  [Compile] re-raises it as [Runtime_error]. *)
exception Error of string * int * int

(* Loop control, raised by BREAK/CONT and caught by WHILE/FOR (and
   TRY, which treats them as pending outcomes run after [finally]). *)
exception Break_loop
exception Continue_loop

let err line col fmt =
  Printf.ksprintf (fun s -> raise (Error (s, line, col))) fmt

(* ------------------------------------------------------------------ *)
(* Interned primitives (same pools as the closure engine's)            *)
(* ------------------------------------------------------------------ *)

let vtrue = Value.Bool true
let vfalse = Value.Bool false
let vbool b = if b then vtrue else vfalse
let small_int_lo = -128
let small_int_hi = 1023

let small_ints =
  Array.init (small_int_hi - small_int_lo + 1) (fun i -> Value.Int (small_int_lo + i))

let vint n =
  if n >= small_int_lo && n <= small_int_hi then
    Array.unsafe_get small_ints (n - small_int_lo)
  else Value.Int n

(* Compared with (==): no program value is ever physically this one. *)
let unbound : Value.t = Value.Str "\000<unbound>"

(* ------------------------------------------------------------------ *)
(* Opcodes                                                             *)
(* ------------------------------------------------------------------ *)

(* Instruction layout: [op; ticks; operands...].  Operand legend:
   k = constant-pool index, s = string-pool index, t2 = tick count of a
   fused second component, l/c = source line/column, n = argument count.
   The last six opcodes are superinstructions produced by the emitter's
   peephole pass (see doc/bytecode.md); each fused component keeps its
   own tick operand so step accounting and error ordering are unchanged. *)
let op_end = 0 (* - ; end of block, status 0 *)
let op_const = 1 (* k ; push constant *)
let op_null = 2 (* - ; push null *)
let op_this = 3 (* - ; push receiver *)
let op_load = 4 (* slot s l c ; push local, unbound check *)
let op_fail = 5 (* s l c ; raise precomputed runtime error *)
let op_neg = 6 (* l c ; arithmetic negate *)
let op_not = 7 (* - ; logical not *)
let op_binop = 8 (* b l c ; binary operator (b = 0..10) *)
let op_truthy = 9 (* - ; replace top with vbool(truthy top) *)
let op_jmp = 10 (* target *)
let op_jf = 11 (* target ; pop, jump if not truthy *)
let op_getfield = 12 (* s l c *)
let op_getidx = 13 (* l c *)
let op_call = 14 (* site n ; method call through inline cache *)
let op_super = 15 (* midx n ; statically resolved super call *)
let op_superck = 16 (* s_sup s_m s_def l c ; pre-args dynamic lookup *)
let op_superdyn = 17 (* s_sup s_m s_def l c n ; dynamic super call *)
let op_fncall = 18 (* site n ; free function / builtin / hook *)
let op_new = 19 (* site n *)
let op_array = 20 (* n ; array literal *)
let op_store = 21 (* slot ; pop into local (var declaration) *)
let op_storechk = 22 (* slot s l c ; pop into local, unbound check *)
let op_setfield = 23 (* s l c *)
let op_setidx = 24 (* l c *)
let op_pop = 25 (* - *)
let op_ret = 26 (* - ; frame.ret <- pop, status 1 *)
let op_retnull = 27 (* - ; frame.ret <- null, status 1 *)
let op_throw = 28 (* l c *)
let op_break = 29 (* - *)
let op_cont = 30 (* - *)
let op_while = 31 (* site *)
let op_for = 32 (* site *)
let op_try = 33 (* site *)
let op_tickn = 34 (* - ; ticks only (flush point) *)
let op_load2 = 35 (* s1 n1 l1 c1 t2 s2 n2 l2 c2 ; load;load *)
let op_loadc = 36 (* slot s l c t2 k ; load;const *)
let op_loadf = 37 (* slot s l c t2 f fl fc ; load;getfield *)
let op_thisf = 38 (* t2 f l c ; this;getfield *)
let op_constb = 39 (* k t2 b l c ; const;binop *)
let op_loadb = 40 (* slot s l c t2 b bl bc ; load;binop *)
let op_lcb = 41 (* slot s l c t2 k t3 b bl bc ; load;const;binop *)
let op_bjf = 42 (* b l c t2 target ; binop;jump-if-false *)
let op_bsc = 43 (* b l c t2 slot s sl sc ; binop;storechk *)
let op_callt = 44 (* site n ; method call on [this] (no receiver push) *)
let op_setft = 45 (* s l c ; setfield on [this] *)
let op_callp = 46 (* site n t2 ; call;pop (result discarded) *)
let op_fncallp = 47 (* site n t2 ; fncall;pop *)
let op_calltp = 48 (* site n t2 ; callt;pop *)
let op_lcbs = 49 (* slot s l c t2 k t3 b bl bc t4 dslot ds dl dc ; lcb;storechk *)
let op_lcbjf = 50 (* slot s l c t2 k t3 b bl bc t4 target ; lcb;jump-if-false *)
let op_bret = 51 (* b l c t2 ; binop;ret *)
let op_lret = 52 (* slot s l c t2 ; load;ret *)
let op_nret = 53 (* t2 ; null;ret *)
let op_tfret = 54 (* t2 f l c t3 ; thisf;ret *)
let op_lcbr = 55 (* slot s l c t2 k t3 b bl bc t4 ; lcb;ret *)
let op_llb = 56 (* s1 n1 l1 c1 t2 s2 n2 l2 c2 t3 b bl bc ; load;load;binop *)
let op_llbs = 57 (* llb operands, t4 dslot ds dl dc ; llb;storechk *)
let op_llbjf = 58 (* llb operands, t4 target ; llb;jump-if-false *)
let op_llbr = 59 (* llb operands, t4 ; llb;ret *)
let op_cret = 60 (* k t2 ; const;ret *)
let op_tfcb = 61 (* t2 f fl fc t3 k t4 b bl bc ; thisf;const;binop *)
let op_fncalltf = 62 (* t2 f fl fc site n t3 ; fncall, last arg this.f *)
let op_lsetft = 63 (* slot s l c t2 f fl fc ; load;setfield-on-this *)
let op_cbsetft = 64 (* k t2 b bl bc t3 f fl fc ; constb;setfield-on-this *)
let op_tret = 65 (* t2 ; this;ret *)
let op_csetft = 66 (* k t2 f fl fc ; const;setfield-on-this *)
let op_tfcbjf = 67 (* tfcb operands, t5 target ; tfcb;jump-if-false *)
let op_fncalltf2 = 68 (* t2 f1 l1 c1 t3 t4 f2 l2 c2 site n t5 ; two this.f args *)

let n_ops = 69

let op_names =
  [| "END"; "CONST"; "NULL"; "THIS"; "LOAD"; "FAIL"; "NEG"; "NOT"; "BINOP";
     "TRUTHY"; "JMP"; "JF"; "GETFIELD"; "GETIDX"; "CALL"; "SUPER"; "SUPERCK";
     "SUPERDYN"; "FNCALL"; "NEW"; "ARRAY"; "STORE"; "STORECHK"; "SETFIELD";
     "SETIDX"; "POP"; "RET"; "RETNULL"; "THROW"; "BREAK"; "CONT"; "WHILE";
     "FOR"; "TRY"; "TICKN"; "LOAD2"; "LOADC"; "LOADF"; "THISF"; "CONSTB";
     "LOADB"; "LCB"; "BJF"; "BSC"; "CALLT"; "SETFT"; "CALLP"; "FNCALLP";
     "CALLTP"; "LCBS"; "LCBJF"; "BRET"; "LRET"; "NRET"; "TFRET"; "LCBR";
     "LLB"; "LLBS"; "LLBJF"; "LLBR"; "CRET"; "TFCB"; "FNCALLTF"; "LSETFT";
     "CBSETFT"; "TRET"; "CSETFT"; "TFCBJF"; "FNCALLTF2" |]

let op_width =
  [| 2; 3; 2; 2; 6; 5; 4; 2; 5; 2; 3; 3; 5; 4; 4; 4; 7; 8; 4; 4; 3; 3; 6; 5;
     4; 2; 2; 2; 4; 2; 2; 3; 3; 3; 2; 11; 8; 10; 6; 7; 10; 12; 7; 10; 4; 5;
     5; 5; 5; 17; 14; 6; 7; 3; 7; 13; 15; 20; 17; 16; 4; 12; 9; 10; 11; 3; 7;
     14; 14 |]

(* ------------------------------------------------------------------ *)
(* Code objects                                                        *)
(* ------------------------------------------------------------------ *)

(* Per-site monomorphic inline cache, shared by every VM instantiated
   from the image (exactly like the closure engine's per-site ref): the
   cached pair is replaced with a single write, so cross-domain sharing
   is race-free — a stale read just falls back to [cs_resolve]. *)
type call_site = {
  cs_name : string;
  cs_cache : (string * int) ref;
  cs_resolve : string -> int; (* image method index, or -1 *)
}

type fn_site = {
  fs_name : string; (* for the per-VM hook override check *)
  fs_target : Vm.t -> Value.t list -> Value.t;
}

type new_site = {
  ns_cls : string;
  ns_known : bool; (* class present in the image *)
  ns_template : (string * Value.t) list;
  ns_init : int; (* image method index of [init], or -1 *)
  ns_is_exc : bool;
  ns_line : int;
  ns_col : int;
}

type loop_site = {
  ls_cond : int array; (* [||] = always true (condition-less for) *)
  ls_update : int array; (* [||] = none *)
  ls_body : int array;
}

type try_site = {
  ts_body : int array;
  ts_catches : (string * int * int array) array; (* class, slot, body *)
  ts_fin : int array; (* [||] = none *)
}

(* Class-hierarchy queries, provided by the compiler so [throw] and
   [catch] match classes exactly as the closure engine does (image
   tables first, dynamic VM walk for classes added by hand). *)
type env = {
  env_is_exc : Vm.t -> string -> bool;
  env_exn_matches : Vm.t -> Vm.exn_value -> string -> bool;
}

type code = {
  c_env : env;
  c_main : int array;
  c_consts : Value.t array;
  c_strs : string array;
  c_calls : call_site array;
  c_fns : fn_site array;
  c_news : new_site array;
  c_loops : loop_site array;
  c_trys : try_site array;
  c_nslots : int;
  c_stack : int; (* register-file length: slots + max operand depth *)
}

type frame = {
  regs : Value.t array;
  n_slots : int;
  mutable this : Value.t;
  mutable ret : Value.t;
}

(* ------------------------------------------------------------------ *)
(* Profiling (the flame/superinstruction-selection harness)            *)
(* ------------------------------------------------------------------ *)

(* One branch per dispatched instruction when disabled.  Counts are
   process-global: the profile harness runs single-VM workloads. *)
let profiling = ref false
let op_counts = Array.make n_ops 0
let pair_counts = Array.make (n_ops * n_ops) 0
let prev_op = ref (-1)

let reset_profile () =
  Array.fill op_counts 0 n_ops 0;
  Array.fill pair_counts 0 (n_ops * n_ops) 0;
  prev_op := -1

let record_op op =
  Array.unsafe_set op_counts op (Array.unsafe_get op_counts op + 1);
  let p = !prev_op in
  if p >= 0 then begin
    let i = (p * n_ops) + op in
    Array.unsafe_set pair_counts i (Array.unsafe_get pair_counts i + 1)
  end;
  prev_op := op

(* Folded-stack rendering (flamegraph.pl / speedscope "folded" input:
   one "frame;frame value" line per stack).  Opcode lines are dispatch
   counts under the synthetic "interp" root; span lines are the total
   nanoseconds of each Ns-histogram in the snapshot, with metric-name
   dots mapped to stack separators, so phase weights nest the way the
   span names do (detect.canonicalize under detect, etc.). *)
let folded_profile (snap : Failatom_obs.Obs.snap) =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i c ->
      if c > 0 then Printf.bprintf buf "interp;%s %d\n" op_names.(i) c)
    op_counts;
  List.iter
    (fun (name, h) ->
      if h.Failatom_obs.Obs.hs_count > 0 && h.Failatom_obs.Obs.hs_unit = "ns"
      then begin
        let stack = String.map (fun c -> if c = '.' then ';' else c) name in
        Printf.bprintf buf "%s %d\n" stack h.Failatom_obs.Obs.hs_sum
      end)
    snap.Failatom_obs.Obs.s_histograms;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Batched stepping                                                    *)
(* ------------------------------------------------------------------ *)

(* [n] ticks at once.  The step limit reproduces the closure engine
   bit-for-bit: on overrun, [steps] is left at [limit + 1], the value a
   per-node [Vm.tick] sequence would have stopped at.  The deadline
   clock is read when the batch crosses a [deadline_check_mask + 1]
   boundary — the same cadence as the closure engine's
   [steps land mask = 0] test, applied to a range. *)
(* Cold continuation of [tick_n]: entered when the batch overran the
   step limit or crossed a deadline-poll boundary. *)
let tick_slow vm s0 s1 =
  if s1 > vm.Vm.step_limit then begin
    vm.Vm.steps <- vm.Vm.step_limit + 1;
    raise Vm.Step_limit_exceeded
  end;
  if
    vm.Vm.deadline_ns > 0
    && s1 lsr 12 <> s0 lsr 12
    && Failatom_obs.Obs.now_ns () > vm.Vm.deadline_ns
  then raise Vm.Deadline_exceeded

let[@inline] tick_n vm n =
  let s0 = vm.Vm.steps in
  let s1 = s0 + n in
  vm.Vm.steps <- s1;
  if s1 > vm.Vm.step_limit || (vm.Vm.deadline_ns > 0 && s1 lsr 12 <> s0 lsr 12)
  then tick_slow vm s0 s1

(* ------------------------------------------------------------------ *)
(* Value helpers (message-for-message copies of the closure engine's)   *)
(* ------------------------------------------------------------------ *)

let binop_names =
  [| "+"; "-"; "*"; "/"; "%"; "=="; "!="; "<"; "<="; ">"; ">=" |]

let binop_fail op (a : Value.t) (b : Value.t) line col =
  err line col "operator %s not defined on %s and %s" binop_names.(op)
    (Value.type_name a) (Value.type_name b)

(* Operator codes 0..10 in [Ast.binop] declaration order. *)
let eval_binop vm op (a : Value.t) (b : Value.t) line col : Value.t =
  match op with
  | 0 -> (
    match a, b with
    | Value.Int x, Value.Int y -> vint (x + y)
    | Value.Str x, y -> Value.Str (x ^ Value.to_display_string y)
    | x, Value.Str y -> Value.Str (Value.to_display_string x ^ y)
    | _ -> binop_fail op a b line col)
  | 1 -> (
    match a, b with
    | Value.Int x, Value.Int y -> vint (x - y)
    | _ -> binop_fail op a b line col)
  | 2 -> (
    match a, b with
    | Value.Int x, Value.Int y -> vint (x * y)
    | _ -> binop_fail op a b line col)
  | 3 -> (
    match a, b with
    | Value.Int x, Value.Int y ->
      if y = 0 then Vm.throw vm "ArithmeticException" "division by zero"
      else vint (x / y)
    | _ -> binop_fail op a b line col)
  | 4 -> (
    match a, b with
    | Value.Int x, Value.Int y ->
      if y = 0 then Vm.throw vm "ArithmeticException" "modulo by zero"
      else vint (x mod y)
    | _ -> binop_fail op a b line col)
  | 5 -> vbool (Value.equal a b)
  | 6 -> vbool (not (Value.equal a b))
  | 7 -> (
    match a, b with
    | Value.Int x, Value.Int y -> vbool (x < y)
    | Value.Str x, Value.Str y -> vbool (String.compare x y < 0)
    | _ -> binop_fail op a b line col)
  | 8 -> (
    match a, b with
    | Value.Int x, Value.Int y -> vbool (x <= y)
    | Value.Str x, Value.Str y -> vbool (String.compare x y <= 0)
    | _ -> binop_fail op a b line col)
  | 9 -> (
    match a, b with
    | Value.Int x, Value.Int y -> vbool (x > y)
    | Value.Str x, Value.Str y -> vbool (String.compare x y > 0)
    | _ -> binop_fail op a b line col)
  | _ -> (
    match a, b with
    | Value.Int x, Value.Int y -> vbool (x >= y)
    | Value.Str x, Value.Str y -> vbool (String.compare x y >= 0)
    | _ -> binop_fail op a b line col)

let get_obj_field vm line col (recv : Value.t) field =
  match recv with
  | Value.Null ->
    Vm.throw vm "NullPointerException" ("read of field " ^ field ^ " on null")
  | Value.Ref id -> (
    match Heap.get vm.Vm.heap id with
    | Heap.Obj { cls; fields } -> (
      match Hashtbl.find fields field with
      | v -> v
      | exception Not_found -> err line col "class %s has no field %s" cls field)
    | Heap.Arr _ -> err line col "arrays have no fields (reading %s)" field)
  | v -> err line col "field read %s on %s" field (Value.type_name v)

let set_obj_field vm line col (recv : Value.t) field v =
  match recv with
  | Value.Null ->
    Vm.throw vm "NullPointerException" ("write of field " ^ field ^ " on null")
  | Value.Ref id -> (
    match Heap.get vm.Vm.heap id with
    | Heap.Obj { cls; fields } ->
      if Option.is_none (Hashtbl.find_opt fields field) then
        err line col "class %s has no field %s" cls field
      else Heap.set_field vm.Vm.heap id field v
    | Heap.Arr _ -> err line col "arrays have no fields (writing %s)" field)
  | v -> err line col "field write %s on %s" field (Value.type_name v)

let get_index vm line col (recv : Value.t) (idx : Value.t) =
  match recv, idx with
  | Value.Null, _ -> Vm.throw vm "NullPointerException" "index read on null"
  | Value.Ref id, Value.Int i -> (
    match Heap.get vm.Vm.heap id with
    | Heap.Arr a ->
      if i >= 0 && i < Array.length a then Array.unsafe_get a i
      else
        Vm.throw vm "IndexOutOfBoundsException"
          (Printf.sprintf "index %d of %d" i (Array.length a))
    | Heap.Obj _ -> err line col "indexing a non-array object")
  | Value.Ref _, v -> err line col "array index must be int, got %s" (Value.type_name v)
  | v, _ -> err line col "indexing %s" (Value.type_name v)

let set_index vm line col (recv : Value.t) (idx : Value.t) v =
  match recv, idx with
  | Value.Null, _ -> Vm.throw vm "NullPointerException" "index write on null"
  | Value.Ref id, Value.Int i -> (
    match Heap.get vm.Vm.heap id with
    | Heap.Arr a ->
      if not (Heap.set_elem vm.Vm.heap id i v) then
        Vm.throw vm "IndexOutOfBoundsException"
          (Printf.sprintf "index %d of %d" i (Array.length a))
    | Heap.Obj _ -> err line col "indexing a non-array object")
  | Value.Ref _, w -> err line col "array index must be int, got %s" (Value.type_name w)
  | v, _ -> err line col "indexing %s" (Value.type_name v)

(* Dynamic instantiation for classes outside the image (added to a VM by
   hand), identical to the closure engine's fallback. *)
let instantiate_dyn vm line col cls args =
  if not (Vm.class_exists vm cls) then err line col "unknown class %s" cls;
  let fields = List.map (fun f -> (f, Value.Null)) (Vm.all_fields vm cls) in
  let id = Heap.alloc_object vm.Vm.heap ~cls fields in
  let recv = Value.Ref id in
  (match Vm.lookup_method vm cls "init" with
   | Some _ -> ignore (Vm.invoke vm recv "init" args)
   | None -> (
     match args with
     | [] -> ()
     | [ Value.Str m ] when Vm.is_exception_class vm cls ->
       Heap.set_field vm.Vm.heap id "message" (Value.Str m)
     | _ -> err line col "class %s has no init method" cls));
  recv

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

type try_outcome =
  | ODone
  | ORet of Value.t (* captured eagerly: [finally] may clobber [frame.ret] *)
  | ORaise of Vm.exn_value
  | OFlow of exn

(* Arguments [base .. base+n) as a list, head first. *)
let rec arg_list regs base i acc =
  if i < 0 then acc
  else arg_list regs base (i - 1) (Array.unsafe_get regs (base + i) :: acc)

(* Method dispatch through a site's inline cache — shared by CALL and
   its fused variants (CALLT / CALLP / CALLTP). *)
let do_call vm (site : call_site) recv vargs : Value.t =
  match recv with
  | Value.Ref id -> (
    match Heap.get vm.Vm.heap id with
    | Heap.Obj { cls; _ } ->
      let ccls, cidx = !(site.cs_cache) in
      if cls == ccls then begin
        vm.Vm.ic_hits <- vm.Vm.ic_hits + 1;
        Vm.call_filtered vm (Array.unsafe_get vm.Vm.meth_table cidx) recv vargs
      end
      else begin
        vm.Vm.ic_misses <- vm.Vm.ic_misses + 1;
        let idx = site.cs_resolve cls in
        if idx >= 0 then begin
          site.cs_cache := (cls, idx);
          Vm.call_filtered vm (Array.unsafe_get vm.Vm.meth_table idx) recv vargs
        end
        else
          (* receiver class or method outside the image *)
          Vm.call_filtered vm (Vm.find_method vm cls site.cs_name) recv vargs
      end
    | Heap.Arr _ ->
      Vm.throw vm "UnsupportedOperationException"
        ("method call on array: " ^ site.cs_name))
  | Value.Null ->
    Vm.throw vm "NullPointerException" ("call of " ^ site.cs_name ^ " on null")
  | Value.Int _ | Value.Bool _ | Value.Str _ ->
    Vm.throw vm "UnsupportedOperationException"
      (Printf.sprintf "call of %s on %s" site.cs_name (Value.type_name recv))

let do_fncall vm (site : fn_site) vargs : Value.t =
  if Hashtbl.length vm.Vm.hooks = 0 then site.fs_target vm vargs
  else
    match Vm.find_hook vm site.fs_name with
    | Some hook -> hook vm vargs
    | None -> site.fs_target vm vargs

let rec exec c vm fr regs ops pc sp : int =
  let op = Array.unsafe_get ops pc in
  if !profiling then record_op op;
  (* tick fast path, inlined by hand (no flambda): one add, one store,
     one fused branch per instruction when no deadline is armed *)
  (let t = Array.unsafe_get ops (pc + 1) in
   if t <> 0 then begin
     let s0 = vm.Vm.steps in
     let s1 = s0 + t in
     vm.Vm.steps <- s1;
     if s1 > vm.Vm.step_limit || (vm.Vm.deadline_ns > 0 && s1 lsr 12 <> s0 lsr 12)
     then tick_slow vm s0 s1
   end);
  (* one dense match = one jump table; arms ordered by opcode number *)
  match op with
  | 0 (* END *) -> 0
  | 1 (* CONST *) ->
    Array.unsafe_set regs sp
      (Array.unsafe_get c.c_consts (Array.unsafe_get ops (pc + 2)));
    exec c vm fr regs ops (pc + 3) (sp + 1)
  | 2 (* NULL *) ->
    Array.unsafe_set regs sp Value.Null;
    exec c vm fr regs ops (pc + 2) (sp + 1)
  | 3 (* THIS *) ->
    Array.unsafe_set regs sp fr.this;
    exec c vm fr regs ops (pc + 2) (sp + 1)
  | 4 (* LOAD *) ->
    let v = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
    if v == unbound then
      err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
    Array.unsafe_set regs sp v;
    exec c vm fr regs ops (pc + 6) (sp + 1)
  | 5 (* FAIL *) ->
    raise (Error (c.c_strs.(ops.(pc + 2)), ops.(pc + 3), ops.(pc + 4)))
  | 6 (* NEG *) ->
    (match Array.unsafe_get regs (sp - 1) with
     | Value.Int n -> Array.unsafe_set regs (sp - 1) (vint (-n))
     | v -> err ops.(pc + 2) ops.(pc + 3) "negation of %s" (Value.type_name v));
    exec c vm fr regs ops (pc + 4) sp
  | 7 (* NOT *) ->
    Array.unsafe_set regs (sp - 1)
      (vbool (not (Value.truthy (Array.unsafe_get regs (sp - 1)))));
    exec c vm fr regs ops (pc + 2) sp
  | 8 (* BINOP *) ->
    let b = Array.unsafe_get regs (sp - 1) in
    let a = Array.unsafe_get regs (sp - 2) in
    Array.unsafe_set regs (sp - 2)
      (eval_binop vm (Array.unsafe_get ops (pc + 2)) a b
         (Array.unsafe_get ops (pc + 3))
         (Array.unsafe_get ops (pc + 4)));
    exec c vm fr regs ops (pc + 5) (sp - 1)
  | 9 (* TRUTHY *) ->
    Array.unsafe_set regs (sp - 1)
      (vbool (Value.truthy (Array.unsafe_get regs (sp - 1))));
    exec c vm fr regs ops (pc + 2) sp
  | 10 (* JMP *) -> exec c vm fr regs ops (Array.unsafe_get ops (pc + 2)) sp
  | 11 (* JF *) ->
    if Value.truthy (Array.unsafe_get regs (sp - 1)) then
      exec c vm fr regs ops (pc + 3) (sp - 1)
    else exec c vm fr regs ops (Array.unsafe_get ops (pc + 2)) (sp - 1)
  | 12 (* GETFIELD *) ->
    Array.unsafe_set regs (sp - 1)
      (get_obj_field vm
         (Array.unsafe_get ops (pc + 3))
         (Array.unsafe_get ops (pc + 4))
         (Array.unsafe_get regs (sp - 1))
         (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 2))));
    exec c vm fr regs ops (pc + 5) sp
  | 13 (* GETIDX *) ->
    let r =
      get_index vm
        (Array.unsafe_get ops (pc + 2))
        (Array.unsafe_get ops (pc + 3))
        (Array.unsafe_get regs (sp - 2))
        (Array.unsafe_get regs (sp - 1))
    in
    Array.unsafe_set regs (sp - 2) r;
    exec c vm fr regs ops (pc + 4) (sp - 1)
  | 14 (* CALL *) ->
      let site = Array.unsafe_get c.c_calls (Array.unsafe_get ops (pc + 2)) in
      let n = Array.unsafe_get ops (pc + 3) in
      let base = sp - n in
      let recv = Array.unsafe_get regs (base - 1) in
      let vargs = arg_list regs base (n - 1) [] in
      Array.unsafe_set regs (base - 1) (do_call vm site recv vargs);
      exec c vm fr regs ops (pc + 4) base
    | 18 (* FNCALL *) ->
      let site = Array.unsafe_get c.c_fns (Array.unsafe_get ops (pc + 2)) in
      let n = Array.unsafe_get ops (pc + 3) in
      let base = sp - n in
      let vargs = arg_list regs base (n - 1) [] in
      Array.unsafe_set regs base (do_fncall vm site vargs);
      exec c vm fr regs ops (pc + 4) (base + 1)
    | 19 (* NEW *) ->
      let site = Array.unsafe_get c.c_news (Array.unsafe_get ops (pc + 2)) in
      let n = Array.unsafe_get ops (pc + 3) in
      let base = sp - n in
      let vargs = arg_list regs base (n - 1) [] in
      let result =
        if not site.ns_known then
          instantiate_dyn vm site.ns_line site.ns_col site.ns_cls vargs
        else begin
          let id = Heap.alloc_object vm.Vm.heap ~cls:site.ns_cls site.ns_template in
          let recv = Value.Ref id in
          (if site.ns_init >= 0 then
             ignore
               (Vm.call_filtered vm
                  (Array.unsafe_get vm.Vm.meth_table site.ns_init)
                  recv vargs)
           else
             match Vm.lookup_method vm site.ns_cls "init" with
             | Some meth ->
               (* an init added to this VM after instantiation *)
               ignore (Vm.call_filtered vm meth recv vargs)
             | None -> (
               match vargs with
               | [] -> ()
               | [ Value.Str m ] when site.ns_is_exc ->
                 Heap.set_field vm.Vm.heap id "message" (Value.Str m)
               | _ ->
                 err site.ns_line site.ns_col "class %s has no init method"
                   site.ns_cls));
          recv
        end
      in
      Array.unsafe_set regs base result;
      exec c vm fr regs ops (pc + 4) (base + 1)
    | 21 (* STORE *) ->
      Array.unsafe_set regs (Array.unsafe_get ops (pc + 2))
        (Array.unsafe_get regs (sp - 1));
      exec c vm fr regs ops (pc + 3) (sp - 1)
    | 22 (* STORECHK *) ->
      let slot = Array.unsafe_get ops (pc + 2) in
      if Array.unsafe_get regs slot == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      Array.unsafe_set regs slot (Array.unsafe_get regs (sp - 1));
      exec c vm fr regs ops (pc + 6) (sp - 1)
    | 23 (* SETFIELD *) ->
      set_obj_field vm ops.(pc + 3) ops.(pc + 4)
        (Array.unsafe_get regs (sp - 2))
        (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 2)))
        (Array.unsafe_get regs (sp - 1));
      exec c vm fr regs ops (pc + 5) (sp - 2)
    | 24 (* SETIDX *) ->
      set_index vm ops.(pc + 2) ops.(pc + 3)
        (Array.unsafe_get regs (sp - 3))
        (Array.unsafe_get regs (sp - 2))
        (Array.unsafe_get regs (sp - 1));
      exec c vm fr regs ops (pc + 4) (sp - 3)
    | 25 (* POP *) -> exec c vm fr regs ops (pc + 2) (sp - 1)
    | 26 (* RET *) ->
      fr.ret <- Array.unsafe_get regs (sp - 1);
      1
    | 27 (* RETNULL *) ->
      fr.ret <- Value.Null;
      1
    | 28 (* THROW *) -> (
      match Array.unsafe_get regs (sp - 1) with
      | Value.Ref id as obj -> (
        match Heap.class_of vm.Vm.heap id with
        | Some cls when c.c_env.env_is_exc vm cls ->
          let message =
            match Heap.get_field vm.Vm.heap id "message" with
            | Some (Value.Str m) -> m
            | Some _ | None -> ""
          in
          raise (Vm.Mini_raise { Vm.exn_class = cls; message; exn_obj = obj })
        | Some cls -> err ops.(pc + 2) ops.(pc + 3) "throw of non-exception class %s" cls
        | None -> err ops.(pc + 2) ops.(pc + 3) "throw of an array")
      | v -> err ops.(pc + 2) ops.(pc + 3) "throw of %s" (Value.type_name v))
    | 29 (* BREAK *) -> raise Break_loop
    | 30 (* CONT *) -> raise Continue_loop
    | 31 (* WHILE *) ->
      let ls = Array.unsafe_get c.c_loops (Array.unsafe_get ops (pc + 2)) in
      let st =
        try
          let rec wloop () =
            ignore (exec c vm fr regs ls.ls_cond 0 sp : int);
            if Value.truthy (Array.unsafe_get regs sp) then begin
              let st =
                try exec c vm fr regs ls.ls_body 0 sp with Continue_loop -> 0
              in
              if st = 0 then wloop () else st
            end
            else 0
          in
          wloop ()
        with Break_loop -> 0
      in
      if st <> 0 then st else exec c vm fr regs ops (pc + 3) sp
    | 32 (* FOR *) ->
      let ls = Array.unsafe_get c.c_loops (Array.unsafe_get ops (pc + 2)) in
      let cond_ok () =
        Array.length ls.ls_cond = 0
        || begin
          ignore (exec c vm fr regs ls.ls_cond 0 sp : int);
          Value.truthy (Array.unsafe_get regs sp)
        end
      in
      let st =
        try
          let rec floop () =
            if cond_ok () then begin
              let st =
                try exec c vm fr regs ls.ls_body 0 sp with Continue_loop -> 0
              in
              if st <> 0 then st
              else begin
                (* a [continue] in the update propagates out, a [break]
                   is caught below — the closure engine's exact scoping *)
                let stu =
                  if Array.length ls.ls_update = 0 then 0
                  else exec c vm fr regs ls.ls_update 0 sp
                in
                if stu <> 0 then stu else floop ()
              end
            end
            else 0
          in
          floop ()
        with Break_loop -> 0
      in
      if st <> 0 then st else exec c vm fr regs ops (pc + 3) sp
    | 33 (* TRY *) ->
      let ts = Array.unsafe_get c.c_trys (Array.unsafe_get ops (pc + 2)) in
      let outcome =
        match exec c vm fr regs ts.ts_body 0 sp with
        | 0 -> ODone
        | _ -> ORet fr.ret
        | exception Vm.Mini_raise e -> ORaise e
        | exception ((Break_loop | Continue_loop) as flow) -> OFlow flow
      in
      let handled =
        match outcome with
        | ORaise e ->
          let n = Array.length ts.ts_catches in
          let rec find i =
            if i >= n then outcome
            else begin
              let hc, slot, cbody = Array.unsafe_get ts.ts_catches i in
              if c.c_env.env_exn_matches vm e hc then begin
                Array.unsafe_set regs slot e.Vm.exn_obj;
                match exec c vm fr regs cbody 0 sp with
                | 0 -> ODone
                | _ -> ORet fr.ret
                | exception Vm.Mini_raise e2 -> ORaise e2
                | exception ((Break_loop | Continue_loop) as flow) -> OFlow flow
              end
              else find (i + 1)
            end
          in
          find 0
        | ODone | ORet _ | OFlow _ -> outcome
      in
      (* As in Java: the finally block runs last and, if it completes
         abruptly (returns, raises), its outcome supersedes the pending
         one. *)
      let fin_st =
        if Array.length ts.ts_fin = 0 then 0 else exec c vm fr regs ts.ts_fin 0 sp
      in
      if fin_st <> 0 then fin_st
      else (
        match handled with
        | ODone -> exec c vm fr regs ops (pc + 3) sp
        | ORet v ->
          fr.ret <- v;
          1
        | ORaise e -> raise (Vm.Mini_raise e)
        | OFlow f -> raise f)
    | 34 (* TICKN *) -> exec c vm fr regs ops (pc + 2) sp
    | 15 (* SUPER *) ->
      let midx = Array.unsafe_get ops (pc + 2) in
      let n = Array.unsafe_get ops (pc + 3) in
      let base = sp - n in
      let vargs = arg_list regs base (n - 1) [] in
      let result =
        Vm.call_filtered vm (Array.unsafe_get vm.Vm.meth_table midx) fr.this vargs
      in
      Array.unsafe_set regs base result;
      exec c vm fr regs ops (pc + 4) (base + 1)
    | 16 (* SUPERCK *) ->
      let sup = c.c_strs.(ops.(pc + 2)) in
      let m = c.c_strs.(ops.(pc + 3)) in
      (match Vm.lookup_method vm sup m with
       | Some _ -> ()
       | None ->
         err ops.(pc + 5) ops.(pc + 6) "no method %s in superclasses of %s" m
           c.c_strs.(ops.(pc + 4)));
      exec c vm fr regs ops (pc + 7) sp
    | 17 (* SUPERDYN *) ->
      let sup = c.c_strs.(ops.(pc + 2)) in
      let m = c.c_strs.(ops.(pc + 3)) in
      let n = Array.unsafe_get ops (pc + 7) in
      let base = sp - n in
      let vargs = arg_list regs base (n - 1) [] in
      (match Vm.lookup_method vm sup m with
       | Some meth ->
         Array.unsafe_set regs base (Vm.call_filtered vm meth fr.this vargs);
         exec c vm fr regs ops (pc + 8) (base + 1)
       | None ->
         err ops.(pc + 5) ops.(pc + 6) "no method %s in superclasses of %s" m
           c.c_strs.(ops.(pc + 4)))
    | 20 (* ARRAY *) ->
      let n = Array.unsafe_get ops (pc + 2) in
      let base = sp - n in
      let a = Array.init n (fun i -> Array.unsafe_get regs (base + i)) in
      Array.unsafe_set regs base (Value.Ref (Heap.alloc vm.Vm.heap (Heap.Arr a)));
      exec c vm fr regs ops (pc + 3) (base + 1)
    | 35 (* LOAD2 *) ->
      let v1 = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v1 == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      Array.unsafe_set regs sp v1;
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      let v2 = Array.unsafe_get regs (Array.unsafe_get ops (pc + 7)) in
      if v2 == unbound then
        err ops.(pc + 9) ops.(pc + 10) "unknown variable %s" c.c_strs.(ops.(pc + 8));
      Array.unsafe_set regs (sp + 1) v2;
      exec c vm fr regs ops (pc + 11) (sp + 2)
    | 36 (* LOADC *) ->
      let v = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      Array.unsafe_set regs sp v;
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      Array.unsafe_set regs (sp + 1)
        (Array.unsafe_get c.c_consts (Array.unsafe_get ops (pc + 7)));
      exec c vm fr regs ops (pc + 8) (sp + 2)
    | 37 (* LOADF *) ->
      let v = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      Array.unsafe_set regs sp
        (get_obj_field vm ops.(pc + 8) ops.(pc + 9) v
           (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 7))));
      exec c vm fr regs ops (pc + 10) (sp + 1)
    | 38 (* THISF *) ->
      let v = fr.this in
      let t2 = Array.unsafe_get ops (pc + 2) in
      if t2 <> 0 then tick_n vm t2;
      Array.unsafe_set regs sp
        (get_obj_field vm ops.(pc + 4) ops.(pc + 5) v
           (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 3))));
      exec c vm fr regs ops (pc + 6) (sp + 1)
    | 39 (* CONSTB *) ->
      let b = Array.unsafe_get c.c_consts (Array.unsafe_get ops (pc + 2)) in
      let t2 = Array.unsafe_get ops (pc + 3) in
      if t2 <> 0 then tick_n vm t2;
      Array.unsafe_set regs (sp - 1)
        (eval_binop vm (Array.unsafe_get ops (pc + 4))
           (Array.unsafe_get regs (sp - 1))
           b ops.(pc + 5) ops.(pc + 6));
      exec c vm fr regs ops (pc + 7) sp
    | 40 (* LOADB *) ->
      let v = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      Array.unsafe_set regs (sp - 1)
        (eval_binop vm (Array.unsafe_get ops (pc + 7))
           (Array.unsafe_get regs (sp - 1))
           v ops.(pc + 8) ops.(pc + 9));
      exec c vm fr regs ops (pc + 10) sp
    | 41 (* LCB: load; const; binop — both operands stay in locals *) ->
      let v = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      let k = Array.unsafe_get c.c_consts (Array.unsafe_get ops (pc + 7)) in
      let t3 = Array.unsafe_get ops (pc + 8) in
      if t3 <> 0 then tick_n vm t3;
      Array.unsafe_set regs sp
        (eval_binop vm (Array.unsafe_get ops (pc + 9)) v k ops.(pc + 10)
           ops.(pc + 11));
      exec c vm fr regs ops (pc + 12) (sp + 1)
    | 42 (* BJF: binop; jump-if-false — result branched, never pushed *) ->
      let b = Array.unsafe_get regs (sp - 1) in
      let a = Array.unsafe_get regs (sp - 2) in
      let r =
        eval_binop vm (Array.unsafe_get ops (pc + 2)) a b ops.(pc + 3)
          ops.(pc + 4)
      in
      let t2 = Array.unsafe_get ops (pc + 5) in
      if t2 <> 0 then tick_n vm t2;
      if Value.truthy r then exec c vm fr regs ops (pc + 7) (sp - 2)
      else exec c vm fr regs ops (Array.unsafe_get ops (pc + 6)) (sp - 2)
    | 43 (* BSC: binop; storechk — result stored, never pushed *) ->
      let b = Array.unsafe_get regs (sp - 1) in
      let a = Array.unsafe_get regs (sp - 2) in
      let r =
        eval_binop vm (Array.unsafe_get ops (pc + 2)) a b ops.(pc + 3)
          ops.(pc + 4)
      in
      let t2 = Array.unsafe_get ops (pc + 5) in
      if t2 <> 0 then tick_n vm t2;
      let slot = Array.unsafe_get ops (pc + 6) in
      if Array.unsafe_get regs slot == unbound then
        err ops.(pc + 8) ops.(pc + 9) "unknown variable %s" c.c_strs.(ops.(pc + 7));
      Array.unsafe_set regs slot r;
      exec c vm fr regs ops (pc + 10) (sp - 2)
    | 44 (* CALLT: method call with [this] receiver (no receiver push) *) ->
      let site = Array.unsafe_get c.c_calls (Array.unsafe_get ops (pc + 2)) in
      let n = Array.unsafe_get ops (pc + 3) in
      let base = sp - n in
      let vargs = arg_list regs base (n - 1) [] in
      Array.unsafe_set regs base (do_call vm site fr.this vargs);
      exec c vm fr regs ops (pc + 4) (base + 1)
    | 45 (* SETFT: setfield on [this] *) ->
      set_obj_field vm ops.(pc + 3) ops.(pc + 4) fr.this
        (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 2)))
        (Array.unsafe_get regs (sp - 1));
      exec c vm fr regs ops (pc + 5) (sp - 1)
    | 46 (* CALLP: call; pop — result discarded *) ->
      let site = Array.unsafe_get c.c_calls (Array.unsafe_get ops (pc + 2)) in
      let n = Array.unsafe_get ops (pc + 3) in
      let base = sp - n in
      let recv = Array.unsafe_get regs (base - 1) in
      let vargs = arg_list regs base (n - 1) [] in
      ignore (do_call vm site recv vargs : Value.t);
      let t2 = Array.unsafe_get ops (pc + 4) in
      if t2 <> 0 then tick_n vm t2;
      exec c vm fr regs ops (pc + 5) (base - 1)
    | 47 (* FNCALLP: fncall; pop *) ->
      let site = Array.unsafe_get c.c_fns (Array.unsafe_get ops (pc + 2)) in
      let n = Array.unsafe_get ops (pc + 3) in
      let base = sp - n in
      let vargs = arg_list regs base (n - 1) [] in
      ignore (do_fncall vm site vargs : Value.t);
      let t2 = Array.unsafe_get ops (pc + 4) in
      if t2 <> 0 then tick_n vm t2;
      exec c vm fr regs ops (pc + 5) base
    | 48 (* CALLTP: callt; pop *) ->
      let site = Array.unsafe_get c.c_calls (Array.unsafe_get ops (pc + 2)) in
      let n = Array.unsafe_get ops (pc + 3) in
      let base = sp - n in
      let vargs = arg_list regs base (n - 1) [] in
      ignore (do_call vm site fr.this vargs : Value.t);
      let t2 = Array.unsafe_get ops (pc + 4) in
      if t2 <> 0 then tick_n vm t2;
      exec c vm fr regs ops (pc + 5) base
    | 49 (* LCBS: load; const; binop; storechk — zero stack traffic *) ->
      let v = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      let k = Array.unsafe_get c.c_consts (Array.unsafe_get ops (pc + 7)) in
      let t3 = Array.unsafe_get ops (pc + 8) in
      if t3 <> 0 then tick_n vm t3;
      let r =
        eval_binop vm (Array.unsafe_get ops (pc + 9)) v k ops.(pc + 10)
          ops.(pc + 11)
      in
      let t4 = Array.unsafe_get ops (pc + 12) in
      if t4 <> 0 then tick_n vm t4;
      let dslot = Array.unsafe_get ops (pc + 13) in
      if Array.unsafe_get regs dslot == unbound then
        err ops.(pc + 15) ops.(pc + 16) "unknown variable %s"
          c.c_strs.(ops.(pc + 14));
      Array.unsafe_set regs dslot r;
      exec c vm fr regs ops (pc + 17) sp
    | 50 (* LCBJF: load; const; binop; jump-if-false *) ->
      let v = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      let k = Array.unsafe_get c.c_consts (Array.unsafe_get ops (pc + 7)) in
      let t3 = Array.unsafe_get ops (pc + 8) in
      if t3 <> 0 then tick_n vm t3;
      let r =
        eval_binop vm (Array.unsafe_get ops (pc + 9)) v k ops.(pc + 10)
          ops.(pc + 11)
      in
      let t4 = Array.unsafe_get ops (pc + 12) in
      if t4 <> 0 then tick_n vm t4;
      if Value.truthy r then exec c vm fr regs ops (pc + 14) sp
      else exec c vm fr regs ops (Array.unsafe_get ops (pc + 13)) sp
    | 51 (* BRET: binop; ret *) ->
      let b = Array.unsafe_get regs (sp - 1) in
      let a = Array.unsafe_get regs (sp - 2) in
      let r =
        eval_binop vm (Array.unsafe_get ops (pc + 2)) a b ops.(pc + 3)
          ops.(pc + 4)
      in
      let t2 = Array.unsafe_get ops (pc + 5) in
      if t2 <> 0 then tick_n vm t2;
      fr.ret <- r;
      1
    | 52 (* LRET: load; ret *) ->
      let v = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      fr.ret <- v;
      1
    | 53 (* NRET: null; ret *) ->
      let t2 = Array.unsafe_get ops (pc + 2) in
      if t2 <> 0 then tick_n vm t2;
      fr.ret <- Value.Null;
      1
    | 54 (* TFRET: thisf; ret *) ->
      let t2 = Array.unsafe_get ops (pc + 2) in
      if t2 <> 0 then tick_n vm t2;
      let v =
        get_obj_field vm ops.(pc + 4) ops.(pc + 5) fr.this
          (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 3)))
      in
      let t3 = Array.unsafe_get ops (pc + 6) in
      if t3 <> 0 then tick_n vm t3;
      fr.ret <- v;
      1
    | 55 (* LCBR: load; const; binop; ret *) ->
      let v = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      let k = Array.unsafe_get c.c_consts (Array.unsafe_get ops (pc + 7)) in
      let t3 = Array.unsafe_get ops (pc + 8) in
      if t3 <> 0 then tick_n vm t3;
      let r =
        eval_binop vm (Array.unsafe_get ops (pc + 9)) v k ops.(pc + 10)
          ops.(pc + 11)
      in
      let t4 = Array.unsafe_get ops (pc + 12) in
      if t4 <> 0 then tick_n vm t4;
      fr.ret <- r;
      1
    | 56 (* LLB: load; load; binop *) ->
      let v1 = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v1 == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      let v2 = Array.unsafe_get regs (Array.unsafe_get ops (pc + 7)) in
      if v2 == unbound then
        err ops.(pc + 9) ops.(pc + 10) "unknown variable %s"
          c.c_strs.(ops.(pc + 8));
      let t3 = Array.unsafe_get ops (pc + 11) in
      if t3 <> 0 then tick_n vm t3;
      Array.unsafe_set regs sp
        (eval_binop vm (Array.unsafe_get ops (pc + 12)) v1 v2 ops.(pc + 13)
           ops.(pc + 14));
      exec c vm fr regs ops (pc + 15) (sp + 1)
    | 57 (* LLBS: load; load; binop; storechk *) ->
      let v1 = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v1 == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      let v2 = Array.unsafe_get regs (Array.unsafe_get ops (pc + 7)) in
      if v2 == unbound then
        err ops.(pc + 9) ops.(pc + 10) "unknown variable %s"
          c.c_strs.(ops.(pc + 8));
      let t3 = Array.unsafe_get ops (pc + 11) in
      if t3 <> 0 then tick_n vm t3;
      let r =
        eval_binop vm (Array.unsafe_get ops (pc + 12)) v1 v2 ops.(pc + 13)
          ops.(pc + 14)
      in
      let t4 = Array.unsafe_get ops (pc + 15) in
      if t4 <> 0 then tick_n vm t4;
      let dslot = Array.unsafe_get ops (pc + 16) in
      if Array.unsafe_get regs dslot == unbound then
        err ops.(pc + 18) ops.(pc + 19) "unknown variable %s"
          c.c_strs.(ops.(pc + 17));
      Array.unsafe_set regs dslot r;
      exec c vm fr regs ops (pc + 20) sp
    | 58 (* LLBJF: load; load; binop; jump-if-false *) ->
      let v1 = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v1 == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      let v2 = Array.unsafe_get regs (Array.unsafe_get ops (pc + 7)) in
      if v2 == unbound then
        err ops.(pc + 9) ops.(pc + 10) "unknown variable %s"
          c.c_strs.(ops.(pc + 8));
      let t3 = Array.unsafe_get ops (pc + 11) in
      if t3 <> 0 then tick_n vm t3;
      let r =
        eval_binop vm (Array.unsafe_get ops (pc + 12)) v1 v2 ops.(pc + 13)
          ops.(pc + 14)
      in
      let t4 = Array.unsafe_get ops (pc + 15) in
      if t4 <> 0 then tick_n vm t4;
      if Value.truthy r then exec c vm fr regs ops (pc + 17) sp
      else exec c vm fr regs ops (Array.unsafe_get ops (pc + 16)) sp
    | 59 (* LLBR: load; load; binop; ret *) ->
      let v1 = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v1 == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      let v2 = Array.unsafe_get regs (Array.unsafe_get ops (pc + 7)) in
      if v2 == unbound then
        err ops.(pc + 9) ops.(pc + 10) "unknown variable %s"
          c.c_strs.(ops.(pc + 8));
      let t3 = Array.unsafe_get ops (pc + 11) in
      if t3 <> 0 then tick_n vm t3;
      let r =
        eval_binop vm (Array.unsafe_get ops (pc + 12)) v1 v2 ops.(pc + 13)
          ops.(pc + 14)
      in
      let t4 = Array.unsafe_get ops (pc + 15) in
      if t4 <> 0 then tick_n vm t4;
      fr.ret <- r;
      1
    | 60 (* CRET: const; ret *) ->
      let v = Array.unsafe_get c.c_consts (Array.unsafe_get ops (pc + 2)) in
      let t2 = Array.unsafe_get ops (pc + 3) in
      if t2 <> 0 then tick_n vm t2;
      fr.ret <- v;
      1
    | 61 (* TFCB: thisf; const; binop *) ->
      let t2 = Array.unsafe_get ops (pc + 2) in
      if t2 <> 0 then tick_n vm t2;
      let v =
        get_obj_field vm ops.(pc + 4) ops.(pc + 5) fr.this
          (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 3)))
      in
      let t3 = Array.unsafe_get ops (pc + 6) in
      if t3 <> 0 then tick_n vm t3;
      let k = Array.unsafe_get c.c_consts (Array.unsafe_get ops (pc + 7)) in
      let t4 = Array.unsafe_get ops (pc + 8) in
      if t4 <> 0 then tick_n vm t4;
      Array.unsafe_set regs sp
        (eval_binop vm (Array.unsafe_get ops (pc + 9)) v k ops.(pc + 10)
           ops.(pc + 11));
      exec c vm fr regs ops (pc + 12) (sp + 1)
    | 62 (* FNCALLTF: fncall whose last argument is this.f *) ->
      let t2 = Array.unsafe_get ops (pc + 2) in
      if t2 <> 0 then tick_n vm t2;
      let v =
        get_obj_field vm ops.(pc + 4) ops.(pc + 5) fr.this
          (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 3)))
      in
      let t3 = Array.unsafe_get ops (pc + 8) in
      if t3 <> 0 then tick_n vm t3;
      let site = Array.unsafe_get c.c_fns (Array.unsafe_get ops (pc + 6)) in
      let n = Array.unsafe_get ops (pc + 7) in
      let base = sp - (n - 1) in
      let vargs = arg_list regs base (n - 2) [ v ] in
      Array.unsafe_set regs base (do_fncall vm site vargs);
      exec c vm fr regs ops (pc + 9) (base + 1)
    | 63 (* LSETFT: load; setfield-on-this *) ->
      let v = Array.unsafe_get regs (Array.unsafe_get ops (pc + 2)) in
      if v == unbound then
        err ops.(pc + 4) ops.(pc + 5) "unknown variable %s" c.c_strs.(ops.(pc + 3));
      let t2 = Array.unsafe_get ops (pc + 6) in
      if t2 <> 0 then tick_n vm t2;
      set_obj_field vm ops.(pc + 8) ops.(pc + 9) fr.this
        (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 7)))
        v;
      exec c vm fr regs ops (pc + 10) sp
    | 64 (* CBSETFT: constb; setfield-on-this *) ->
      let a = Array.unsafe_get regs (sp - 1) in
      let k = Array.unsafe_get c.c_consts (Array.unsafe_get ops (pc + 2)) in
      let t2 = Array.unsafe_get ops (pc + 3) in
      if t2 <> 0 then tick_n vm t2;
      let r =
        eval_binop vm (Array.unsafe_get ops (pc + 4)) a k ops.(pc + 5)
          ops.(pc + 6)
      in
      let t3 = Array.unsafe_get ops (pc + 7) in
      if t3 <> 0 then tick_n vm t3;
      set_obj_field vm ops.(pc + 9) ops.(pc + 10) fr.this
        (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 8)))
        r;
      exec c vm fr regs ops (pc + 11) (sp - 1)
    | 65 (* TRET: this; ret *) ->
      let t2 = Array.unsafe_get ops (pc + 2) in
      if t2 <> 0 then tick_n vm t2;
      fr.ret <- fr.this;
      1
    | 66 (* CSETFT: const; setfield-on-this *) ->
      let v = Array.unsafe_get c.c_consts (Array.unsafe_get ops (pc + 2)) in
      let t2 = Array.unsafe_get ops (pc + 3) in
      if t2 <> 0 then tick_n vm t2;
      set_obj_field vm ops.(pc + 5) ops.(pc + 6) fr.this
        (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 4)))
        v;
      exec c vm fr regs ops (pc + 7) sp
    | 67 (* TFCBJF: thisf; const; binop; jump-if-false *) ->
      let t2 = Array.unsafe_get ops (pc + 2) in
      if t2 <> 0 then tick_n vm t2;
      let v =
        get_obj_field vm ops.(pc + 4) ops.(pc + 5) fr.this
          (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 3)))
      in
      let t3 = Array.unsafe_get ops (pc + 6) in
      if t3 <> 0 then tick_n vm t3;
      let k = Array.unsafe_get c.c_consts (Array.unsafe_get ops (pc + 7)) in
      let t4 = Array.unsafe_get ops (pc + 8) in
      if t4 <> 0 then tick_n vm t4;
      let r =
        eval_binop vm (Array.unsafe_get ops (pc + 9)) v k ops.(pc + 10)
          ops.(pc + 11)
      in
      let t5 = Array.unsafe_get ops (pc + 12) in
      if t5 <> 0 then tick_n vm t5;
      if Value.truthy r then exec c vm fr regs ops (pc + 14) sp
      else exec c vm fr regs ops (Array.unsafe_get ops (pc + 13)) sp
    | _ (* 68 FNCALLTF2: fncall, last two arguments this.f1 / this.f2 *) ->
      let t2 = Array.unsafe_get ops (pc + 2) in
      if t2 <> 0 then tick_n vm t2;
      let v1 =
        get_obj_field vm ops.(pc + 4) ops.(pc + 5) fr.this
          (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 3)))
      in
      let t3 = Array.unsafe_get ops (pc + 6) in
      if t3 <> 0 then tick_n vm t3;
      let t4 = Array.unsafe_get ops (pc + 7) in
      if t4 <> 0 then tick_n vm t4;
      let v2 =
        get_obj_field vm ops.(pc + 9) ops.(pc + 10) fr.this
          (Array.unsafe_get c.c_strs (Array.unsafe_get ops (pc + 8)))
      in
      let t5 = Array.unsafe_get ops (pc + 13) in
      if t5 <> 0 then tick_n vm t5;
      let site = Array.unsafe_get c.c_fns (Array.unsafe_get ops (pc + 11)) in
      let n = Array.unsafe_get ops (pc + 12) in
      let base = sp - (n - 2) in
      let vargs = arg_list regs base (n - 3) [ v1; v2 ] in
      Array.unsafe_set regs base (do_fncall vm site vargs);
      exec c vm fr regs ops (pc + 14) (base + 1)

(* ------------------------------------------------------------------ *)
(* Frame entry                                                         *)
(* ------------------------------------------------------------------ *)

(* Root enumeration scans [this] and the slot prefix in place.  Stack
   temporaries are not roots — see the module comment. *)
let frame_mark fr (mark : Value.t -> unit) =
  mark fr.this;
  let regs = fr.regs in
  for i = 0 to fr.n_slots - 1 do
    mark (Array.unsafe_get regs i)
  done

(* Removal is by physical identity, not a blind head pop: under the
   thread scheduler the root list interleaves frames of several MiniLang
   threads, so this frame's entry need not be the head when it exits. *)
let pop_frame_roots vm roots =
  match vm.Vm.frame_roots with
  | r :: rest when r == roots -> vm.Vm.frame_roots <- rest
  | l -> vm.Vm.frame_roots <- List.filter (fun r -> r != roots) l

(* Runs a body in a fresh frame.  [param_slots.(i)] is the register of
   the i-th parameter; a length mismatch with [args] fails like the
   [List.iter2] the closure engine's function entry mimics (method entry
   wrappers check arity with their own message first). *)
let run_root code vm this param_slots args =
  let fr =
    { regs = Array.make code.c_stack unbound;
      n_slots = code.c_nslots;
      this;
      ret = Value.Null }
  in
  let n_params = Array.length param_slots in
  let rec fill i = function
    | [] -> if i <> n_params then invalid_arg "List.iter2"
    | v :: rest ->
      if i >= n_params then invalid_arg "List.iter2";
      fr.regs.(Array.unsafe_get param_slots i) <- v;
      fill (i + 1) rest
  in
  fill 0 args;
  let roots = frame_mark fr in
  vm.Vm.frame_roots <- roots :: vm.Vm.frame_roots;
  match exec code vm fr fr.regs code.c_main 0 code.c_nslots with
  | st ->
    pop_frame_roots vm roots;
    if st = 0 then Value.Null else fr.ret
  | exception e ->
    pop_frame_roots vm roots;
    raise e
