(** Flat-bytecode dispatch loop (the [--engine bytecode] execution
    engine).

    A method body is an [int array] of variable-width instructions, each
    laid out as [op; ticks; operands...]; [ticks] batches the
    {!Vm.tick}s of the AST nodes that start at the instruction, keeping
    [Vm.steps] totals exactly equal to the closure engine's at every
    instruction boundary.  Loops and try/catch/finally run nested
    sub-blocks through site records; straight-line control flow uses
    jumps within one array.  Emission lives in
    [Failatom_minilang.Bytecode]; this module only executes.

    Semantics are bit-for-bit those of the closure engine: evaluation
    order, error messages, heap allocation order, step/call/inline-cache
    counters and GC root visibility are all preserved — the differential
    test matrix in [test/test_bytecode.ml] holds the two engines to
    identical run logs, marks and canonical forms. *)

exception Error of string * int * int
(** A genuine defect in the interpreted program with its source (line,
    column); re-raised by [Compile] as [Runtime_error].  MiniLang-level
    exceptions use {!Vm.Mini_raise} as everywhere else. *)

exception Break_loop
exception Continue_loop
(** Loop control must be OCaml exceptions (not statuses): in the closure
    engine a [break] can unwind across MiniLang call frames into a
    caller's loop, and that observable behavior is preserved. *)

(** {1 Opcodes} *)

val n_ops : int

val op_names : string array
(** Mnemonic per opcode, indexed by opcode number ([n_ops] entries). *)

val op_width : int array
(** Total instruction width (opcode + ticks + operands) per opcode. *)

val op_end : int
val op_const : int
val op_null : int
val op_this : int
val op_load : int
val op_fail : int
val op_neg : int
val op_not : int
val op_binop : int
val op_truthy : int
val op_jmp : int
val op_jf : int
val op_getfield : int
val op_getidx : int
val op_call : int
val op_super : int
val op_superck : int
val op_superdyn : int
val op_fncall : int
val op_new : int
val op_array : int
val op_store : int
val op_storechk : int
val op_setfield : int
val op_setidx : int
val op_pop : int
val op_ret : int
val op_retnull : int
val op_throw : int
val op_break : int
val op_cont : int
val op_while : int
val op_for : int
val op_try : int
val op_tickn : int
val op_load2 : int
val op_loadc : int
val op_loadf : int
val op_thisf : int
val op_constb : int
val op_loadb : int
val op_lcb : int
val op_bjf : int
val op_bsc : int
val op_callt : int
val op_setft : int
val op_callp : int
val op_fncallp : int
val op_calltp : int
val op_lcbs : int
val op_lcbjf : int
val op_bret : int
val op_lret : int
val op_nret : int
val op_tfret : int
val op_lcbr : int
val op_llb : int
val op_llbs : int
val op_llbjf : int
val op_llbr : int
val op_cret : int
val op_tfcb : int
val op_fncalltf : int
val op_lsetft : int
val op_cbsetft : int
val op_tret : int
val op_csetft : int
val op_tfcbjf : int
val op_fncalltf2 : int

(** {1 Code objects}

    Built by the emitter ([Failatom_minilang.Bytecode]); executed here.
    All records are transparent so the emitter can construct them. *)

type call_site = {
  cs_name : string;
  cs_cache : (string * int) ref;
      (** monomorphic inline cache (class name, method index), shared by
          every VM instantiated from the image; replaced with a single
          write so cross-domain sharing is race-free *)
  cs_resolve : string -> int;  (** image method index, or -1 *)
}

type fn_site = {
  fs_name : string;
  fs_target : Vm.t -> Value.t list -> Value.t;
}

type new_site = {
  ns_cls : string;
  ns_known : bool;
  ns_template : (string * Value.t) list;
  ns_init : int;  (** image method index of [init], or -1 *)
  ns_is_exc : bool;
  ns_line : int;
  ns_col : int;
}

type loop_site = {
  ls_cond : int array;  (** [[||]] = always true (condition-less for) *)
  ls_update : int array;  (** [[||]] = none *)
  ls_body : int array;
}

type try_site = {
  ts_body : int array;
  ts_catches : (string * int * int array) array;
      (** handler class, catch-variable slot, handler body *)
  ts_fin : int array;  (** [[||]] = none *)
}

type env = {
  env_is_exc : Vm.t -> string -> bool;
  env_exn_matches : Vm.t -> Vm.exn_value -> string -> bool;
}

type code = {
  c_env : env;
  c_main : int array;
  c_consts : Value.t array;
  c_strs : string array;
  c_calls : call_site array;
  c_fns : fn_site array;
  c_news : new_site array;
  c_loops : loop_site array;
  c_trys : try_site array;
  c_nslots : int;
  c_stack : int;  (** register-file length: slots + max operand depth *)
}

type frame = {
  regs : Value.t array;
  n_slots : int;
  mutable this : Value.t;
  mutable ret : Value.t;
}

val unbound : Value.t
(** Slot sentinel, compared with [(==)]; reading it is the "unknown
    variable" error.  Distinct from the closure engine's sentinel —
    frames never cross engines. *)

(** {1 Execution} *)

val tick_n : Vm.t -> int -> unit
(** [n] {!Vm.tick}s at once: same step-limit stop value and same
    deadline-poll cadence as [n] individual ticks. *)

val exec : code -> Vm.t -> frame -> Value.t array -> int array -> int -> int -> int
(** [exec code vm frame regs ops pc sp] dispatches until the block ends;
    returns 0 (fell off the end) or 1 (returned; value in [frame.ret]).
    Exposed for the engine's unit tests. *)

val run_root : code -> Vm.t -> Value.t -> int array -> Value.t list -> Value.t
(** [run_root code vm this param_slots args] runs a body in a fresh
    frame: registers the frame for GC root enumeration, fills parameter
    slots from [args] (a length mismatch fails like the [List.iter2]
    the closure engine's function entry mimics), executes, and returns
    the result ([Null] when the body falls off the end). *)

(** {1 Profiling}

    Per-opcode execution counts and adjacent-pair counts, recorded when
    {!profiling} is set (one branch per dispatched instruction when
    off).  This is the data source for [failatom profile --flame] and
    for superinstruction selection (doc/bytecode.md). *)

val profiling : bool ref

val op_counts : int array
(** Executions per opcode, indexed by opcode number. *)

val pair_counts : int array
(** Adjacent dynamic pairs: index [prev * n_ops + cur]. *)

val reset_profile : unit -> unit

val folded_profile : Failatom_obs.Obs.snap -> string
(** Folded-stack rendering of the recorded opcode counts plus the
    [Ns]-histograms of the given metrics snapshot (flamegraph.pl /
    speedscope "folded" input).  Opcode lines are dispatch counts under
    an "interp" root; span lines are total nanoseconds, with span-name
    dots as stack separators.  Written by [failatom profile --flame]
    and next to the benchmark's BENCH_interp.json. *)
