(** Copy-on-write shadows: the differential snapshot engine.

    A shadow opened on a heap records, through the heap's write barrier,
    the pre-write payload of every object mutated (or freed) while it is
    active.  Opening is O(1); the shadow's cost is proportional to the
    number of objects actually touched, not to any graph size.  This is
    the shared dirty-set/saved-payload layer behind both the [Lazy]
    strategy of {!Checkpoint} and the differential detection snapshots
    of {!Failatom_core.Injection} (paper §6.2).

    Shadows nest freely (one per wrapped call); the heap keeps the
    active ones and its barrier feeds them all.  A shadow is confined to
    its heap's domain — no shared global state. *)

type t

val open_ : Heap.t -> t
(** Starts recording on the heap's write barrier.  O(1): nothing is
    traversed or copied up front. *)

val close : t -> unit
(** Stops recording and detaches the shadow from the heap.  Must be
    called exactly once; the saved payloads remain readable after. *)

val heap : t -> Heap.t

val dirty_count : t -> int
(** Number of objects mutated or freed so far while the shadow was
    active. *)

val is_dirty : t -> Value.obj_id -> bool

val saved_payload : t -> Value.obj_id -> Heap.payload option
(** The pre-write payload of a dirty object; [None] if clean. *)

val read_before : t -> Value.obj_id -> Heap.payload
(** The payload [id] had when the shadow was opened: the saved copy if
    dirty, the current payload otherwise.  Total over every object that
    existed at open time (freed objects were saved by the barrier).
    @raise Heap.Dangling_reference for ids that never existed. *)

val iter_saved : t -> (Value.obj_id -> Heap.payload -> unit) -> unit
(** Iterates over the dirty set with its saved payloads (rollback is
    [iter_saved t (Heap.restore_payload (heap t))]). *)

val dirty_by_thread : t -> (int * Value.obj_id list) list
(** The per-thread COW dirty sets, sorted by thread id (each id list
    sorted too).  The sets partition the merged dirty set: every dirty
    object belongs to exactly one thread — the one whose write first
    saved it — so the union over threads equals the single-shadow dirty
    set. *)

val with_shadow : Heap.t -> (t -> 'a) -> 'a
(** Scoped form: closes the shadow on exit, even on exceptions. *)
