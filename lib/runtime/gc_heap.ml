(* Mark–sweep collection of the simulated heap.

   The paper cleans up objects discarded by a rollback with reference
   counting, falling back to "an off-the-shelf C++ garbage collector"
   for cyclic structures; a tracing collector subsumes both.  Roots are
   the program's globals, the values of every live interpreter frame
   (registered in [vm.frame_roots] by the interpreter) and any extra
   roots supplied by the caller (e.g. a checkpoint being held). *)

let collect ?(extra_roots = []) (vm : Vm.t) =
  let heap = vm.Vm.heap in
  let marked : (Value.obj_id, unit) Hashtbl.t = Hashtbl.create 256 in
  let rec mark v =
    match (v : Value.t) with
    | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null -> ()
    | Value.Ref id ->
      if (not (Hashtbl.mem marked id)) && Heap.mem heap id then begin
        Hashtbl.replace marked id ();
        List.iter (fun r -> mark (Value.Ref r)) (Heap.successors heap id)
      end
  in
  Vm.iter_global_roots vm mark;
  List.iter (fun iter -> iter mark) vm.Vm.frame_roots;
  List.iter mark extra_roots;
  let garbage = ref [] in
  Heap.iter_ids heap (fun id -> if not (Hashtbl.mem marked id) then garbage := id :: !garbage);
  List.iter (fun id -> Heap.free heap id) !garbage;
  List.length !garbage
