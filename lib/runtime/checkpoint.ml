(* Checkpoint / rollback of object graphs (paper Listing 2).

   A checkpoint captures, for every object reachable from its roots, a
   copy of that object's payload keyed by the object's identity.
   Rollback restores the captured payloads *in place*, so every alias of
   a checkpointed object observes the rolled-back state — exactly the
   paper's [replace(this, objgraph)].  Objects allocated after the
   checkpoint become garbage after rollback and are reclaimed by
   {!Gc_heap.collect} (the paper used reference counting plus an
   off-the-shelf collector for cycles).

   Two strategies are provided:
   - [Eager]: traverse the graph at checkpoint time and copy every
     reachable payload up front (the paper's implementation);
   - [Lazy]: copy-on-write — the optimization suggested in §6.2 of the
     paper for large objects.  Nothing is copied up front; the heap's
     write barrier saves an object's payload the first time it is
     mutated while the checkpoint is active. *)

type strategy = Eager | Lazy

type t = {
  saved : (Value.obj_id, Heap.payload) Hashtbl.t;
  heap : Heap.t;
  strategy : strategy;
  mutable active : bool; (* lazy checkpoints stop recording once disposed *)
}

(* The stack of active lazy checkpoints of a heap, innermost first.  The
   single installed barrier dispatches to all of them, so nested wrapped
   calls each get a correct snapshot.

   The table is keyed by heap uid and shared by every domain; the mutex
   guards its structure (lookup/insert/remove) so campaigns may run VMs
   in parallel domains.  A given stack ref is only ever pushed/popped by
   the single domain running that heap's VM, so the contents need no
   lock. *)
let lazy_stacks : (int, t list ref) Hashtbl.t = Hashtbl.create 8
let lazy_stacks_mutex = Mutex.create ()

let stack_of heap =
  Mutex.protect lazy_stacks_mutex (fun () ->
      match Hashtbl.find_opt lazy_stacks heap.Heap.uid with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace lazy_stacks heap.Heap.uid r;
        r)

let record cp id =
  if cp.active && not (Hashtbl.mem cp.saved id) && Heap.mem cp.heap id then
    Hashtbl.replace cp.saved id (Heap.copy_payload (Heap.get cp.heap id))

let install_barrier heap =
  let stack = stack_of heap in
  heap.Heap.on_write <- Some (fun id -> List.iter (fun cp -> record cp id) !stack)

let reachable_ids heap roots =
  let visited = Hashtbl.create 64 in
  let rec visit v =
    match (v : Value.t) with
    | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null -> ()
    | Value.Ref id ->
      if not (Hashtbl.mem visited id) then begin
        Hashtbl.replace visited id ();
        List.iter (fun r -> visit (Value.Ref r)) (Heap.successors heap id)
      end
  in
  List.iter visit roots;
  visited

(* Takes a checkpoint covering everything reachable from [roots]. *)
let take ?(strategy = Eager) heap roots =
  let cp = { saved = Hashtbl.create 64; heap; strategy; active = true } in
  (match strategy with
   | Eager ->
     let ids = reachable_ids heap roots in
     Hashtbl.iter
       (fun id () -> Hashtbl.replace cp.saved id (Heap.copy_payload (Heap.get heap id)))
       ids
   | Lazy ->
     install_barrier heap;
     let stack = stack_of heap in
     stack := cp :: !stack);
  cp

(* Number of payloads captured so far (for lazy checkpoints this grows
   as the wrapped call mutates state). *)
let size cp = Hashtbl.length cp.saved

(* Detaches a lazy checkpoint from the write barrier.  Must be called
   exactly once, whether or not the checkpoint was rolled back. *)
let dispose cp =
  cp.active <- false;
  match cp.strategy with
  | Eager -> ()
  | Lazy ->
    let stack = stack_of cp.heap in
    stack := List.filter (fun c -> c != cp) !stack;
    if !stack = [] then begin
      cp.heap.Heap.on_write <- None;
      Mutex.protect lazy_stacks_mutex (fun () ->
          Hashtbl.remove lazy_stacks cp.heap.Heap.uid)
    end

(* Rolls every captured object back to its checkpointed payload. *)
let rollback cp =
  Hashtbl.iter (fun id payload -> Heap.restore_payload cp.heap id payload) cp.saved

let with_checkpoint ?strategy heap roots f =
  let cp = take ?strategy heap roots in
  Fun.protect ~finally:(fun () -> dispose cp) (fun () -> f cp)
