(* Checkpoint / rollback of object graphs (paper Listing 2).

   A checkpoint captures, for every object reachable from its roots, a
   copy of that object's payload keyed by the object's identity.
   Rollback restores the captured payloads *in place*, so every alias of
   a checkpointed object observes the rolled-back state — exactly the
   paper's [replace(this, objgraph)].  Objects allocated after the
   checkpoint become garbage after rollback and are reclaimed by
   {!Gc_heap.collect} (the paper used reference counting plus an
   off-the-shelf collector for cycles).

   Two strategies are provided:
   - [Eager]: traverse the graph at checkpoint time and copy every
     reachable payload up front (the paper's implementation);
   - [Lazy]: copy-on-write — the optimization suggested in §6.2 of the
     paper for large objects, implemented as a {!Shadow}: nothing is
     copied up front; the heap's write barrier saves an object's payload
     the first time it is mutated while the checkpoint is active.
     Shadows nest, so nested wrapped calls each get a correct
     snapshot. *)

type strategy = Eager | Lazy

type t =
  | Eager_cp of { heap : Heap.t; saved : (Value.obj_id, Heap.payload) Hashtbl.t }
  | Lazy_cp of Shadow.t

let reachable_ids heap roots =
  let visited = Hashtbl.create 64 in
  let rec visit v =
    match (v : Value.t) with
    | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null -> ()
    | Value.Ref id ->
      if not (Hashtbl.mem visited id) then begin
        Hashtbl.replace visited id ();
        List.iter (fun r -> visit (Value.Ref r)) (Heap.successors heap id)
      end
  in
  List.iter visit roots;
  visited

(* Takes a checkpoint covering everything reachable from [roots]. *)
let take ?(strategy = Eager) heap roots =
  match strategy with
  | Eager ->
    let saved = Hashtbl.create 64 in
    let ids = reachable_ids heap roots in
    Hashtbl.iter
      (fun id () -> Hashtbl.replace saved id (Heap.copy_payload (Heap.get heap id)))
      ids;
    Eager_cp { heap; saved }
  | Lazy -> Lazy_cp (Shadow.open_ heap)

(* Number of payloads captured so far (for lazy checkpoints this grows
   as the wrapped call mutates state). *)
let size = function
  | Eager_cp { saved; _ } -> Hashtbl.length saved
  | Lazy_cp shadow -> Shadow.dirty_count shadow

(* Detaches a lazy checkpoint from the write barrier.  Must be called
   exactly once, whether or not the checkpoint was rolled back. *)
let dispose = function
  | Eager_cp _ -> ()
  | Lazy_cp shadow -> Shadow.close shadow

(* Rolls every captured object back to its checkpointed payload. *)
let rollback = function
  | Eager_cp { heap; saved } ->
    Hashtbl.iter (fun id payload -> Heap.restore_payload heap id payload) saved
  | Lazy_cp shadow ->
    Shadow.iter_saved shadow (Heap.restore_payload (Shadow.heap shadow))

let with_checkpoint ?strategy heap roots f =
  let cp = take ?strategy heap roots in
  Fun.protect ~finally:(fun () -> dispose cp) (fun () -> f cp)
