(** The virtual machine: class table, method dispatch, interposition.

    Plays the role of the JVM / C++ runtime in the paper.  Method
    entries are mutable so that "load-time" tools — the analog of the
    paper's Java Wrapper Generator (JWG/BCEL filters, §5.2) — can attach
    pre/post filters to any method after compilation, without source
    access. *)

type exn_value = {
  exn_class : string;
  message : string;
  exn_obj : Value.t;  (** the heap object carried by the exception *)
}

exception Mini_raise of exn_value
(** A MiniLang-level exception in flight.  Catchable in-language;
    distinct from OCaml-level errors such as {!Unknown_method}. *)

type t = {
  heap : Heap.t;
  classes : (string, cls) Hashtbl.t;
  functions : (string, func) Hashtbl.t;
  out : Buffer.t;  (** program output, captured per run *)
  hooks : (string, t -> Value.t list -> Value.t) Hashtbl.t;
      (** reflective builtins ([__inject], [__mark], ...) registered by
          the detection/masking engine; called by woven code *)
  mutable frame_roots : ((Value.t -> unit) -> unit) list;
      (** live interpreter frames, for GC root enumeration; each entry
          applies the marker to every value the frame holds *)
  mutable call_depth : int;
  mutable max_call_depth : int;
  mutable steps : int;
  mutable step_limit : int;  (** guards against runaway injected programs *)
  mutable deadline_ns : int;
      (** absolute monotonic deadline for this run (0 = none); see
          {!arm_deadline} *)
  mutable calls : int;  (** dynamic count of method + constructor calls *)
  mutable ic_hits : int;
      (** compiled call sites whose monomorphic inline cache hit; a
          plain per-VM count, harvested at run boundaries *)
  mutable ic_misses : int;  (** call sites that fell back to table lookup *)
  globals : (string, Value.t ref) Hashtbl.t;
  mutable global_roots : Value.t ref list;
      (** the global refs in (reverse) creation order, for deterministic
          GC-root enumeration *)
  mutable meth_table : meth array;
      (** this run's method entries indexed by compile-time slot; filled
          by [Compile.instantiate], empty for hand-built VMs *)
  mutable preempt_flag : bool;
      (** set by the scheduler for preemptive policies; when false,
          {!call_filtered} performs no effect (the sequential path) *)
  mutable cur_tid : int;  (** MiniLang thread running right now; 0 = main *)
  mutable sched_switches : int;  (** context switches this run *)
  mutable sched_preemptions : int;  (** switches forced at a Preempt point *)
  mutable sched_contention : int;  (** monitor acquisitions that blocked *)
  mutable sched_digest : string;
      (** hex FNV-1a digest of the scheduler decision stream, written by
          [Sched.run]; [""] for coop runs *)
  exn_fields_cache : (string, string list) Hashtbl.t;
      (** memoized per-class field lists for exception allocation;
          invalidated by [add_class] *)
}

and cls = {
  cls_name : string;
  super : string option;
  decl_fields : string list;
  cls_methods : (string, meth) Hashtbl.t;
}

and meth = {
  meth_class : string;  (** defining class *)
  meth_name : string;
  params : string list;
  throws : string list;  (** declared exception classes *)
  mutable impl : impl;
  mutable filters : filter list;  (** outermost first *)
}

and impl = t -> Value.t -> Value.t list -> Value.t
(** [impl vm this args] *)

and func = {
  fn_name : string;
  fn_params : string list;
  mutable fn_impl : t -> Value.t list -> Value.t;
}

and filter = {
  filt_name : string;
  pre : t -> meth -> Value.t -> Value.t list -> pre_action;
  post :
    t -> meth -> Value.t -> Value.t list -> (Value.t, exn_value) result ->
    post_action;
  unwind : t -> meth -> unit;
      (** called when a non-MiniLang (OCaml-level) exception —
          {!Deadline_exceeded}, {!Step_limit_exceeded}, a scheduler
          abort — unwinds through the call after [pre] ran.  [post]
          will never run for that call, so per-call state acquired in
          [pre] (checkpoints, shadows, snapshot stacks) must be
          released here.  Use {!no_unwind} when [pre] keeps none. *)
}
(** A JWG-style pre/post filter: [pre] may short-circuit the call or
    inject an exception; [post] observes the outcome (normal or
    exceptional) and may pass it on, replace it, or raise. *)

and pre_action = Proceed | Pre_return of Value.t | Pre_raise of exn_value
and post_action = Pass | Post_return of Value.t | Post_raise of exn_value

val no_unwind : t -> meth -> unit
(** The no-op [unwind] for filters without per-call state. *)

exception Unknown_class of string
exception Unknown_method of string * string
exception Step_limit_exceeded

exception Deadline_exceeded
(** The run exceeded its armed wall-clock deadline ({!arm_deadline}).
    An OCaml-level exception, like {!Step_limit_exceeded}: it is not
    catchable in-language, so it unwinds through MiniLang handlers and
    detection wrappers without being recorded as an exceptional
    return. *)

(** {1 Scheduling effects}

    Handled by [Sched.run]; performed by the concurrency builtins and,
    for [Preempt], by {!call_filtered} when [preempt_flag] is set.
    Method-call boundaries are the only preemption opportunities, which
    keeps both execution engines identical under any schedule. *)

type _ Effect.t +=
  | Preempt : unit Effect.t
  | Sched_spawn : (unit -> Value.t) -> int Effect.t
  | Sched_join : int -> Value.t Effect.t
  | Monitor_enter : int -> unit Effect.t
  | Monitor_exit : int -> unit Effect.t

(** {1 Built-in exception hierarchy} *)

val throwable : string
(** Root of the exception hierarchy ("Throwable"). *)

val exception_class : string
val runtime_exception : string
val error_class : string

val builtin_runtime_exceptions : string list
(** Runtime exceptions any operation may raise implicitly — injection
    candidates for every method (paper §4.1, step 1). *)

val builtin_errors : string list

val builtin_exception_classes : (string * string option) list
(** All built-in exception classes with their superclass. *)

(** {1 Construction} *)

val create : unit -> t
(** A fresh VM with the built-in exception classes registered. *)

val add_class : t -> ?super:string -> ?fields:string list -> string -> cls
val find_class : t -> string -> cls
val class_exists : t -> string -> bool

val is_subclass : t -> string -> string -> bool
(** [is_subclass vm c1 c2] holds iff [c1] = [c2] or transitively
    extends it. *)

val is_exception_class : t -> string -> bool

val all_fields : t -> string -> string list
(** All fields of a class, inherited ones first. *)

val add_method :
  t -> string -> name:string -> params:string list -> throws:string list ->
  impl -> meth

val lookup_method : t -> string -> string -> meth option
(** Resolution along the superclass chain. *)

val find_method : t -> string -> string -> meth
(** @raise Unknown_method when resolution fails. *)

val iter_methods : t -> (cls -> meth -> unit) -> unit

(** {1 Exceptions} *)

val make_exn : t -> string -> string -> exn_value
(** Allocates the exception object on the simulated heap (exceptions are
    objects, as in Java) with its [message] field set. *)

val throw : t -> string -> string -> 'a
(** [throw vm cls msg] raises {!Mini_raise} with a fresh exception. *)

val exn_matches : t -> exn_value -> string -> bool
(** Does a handler for the given class catch this exception? *)

(** {1 Dispatch} *)

val tick : t -> unit
(** Accounts one interpreter step.
    @raise Step_limit_exceeded past the budget.
    @raise Deadline_exceeded past an armed wall-clock deadline (checked
    every few thousand steps). *)

val arm_deadline : t -> timeout_s:float -> unit
(** Arms the run's wall-clock deadline [timeout_s] seconds from now.
    A divergent or hung run then aborts with {!Deadline_exceeded}
    instead of running to the step limit. *)

val call_filtered : t -> meth -> Value.t -> Value.t list -> Value.t
(** Runs a resolved method, threading the call through its filter chain
    (outermost first) and the depth/call accounting. *)

val invoke : t -> Value.t -> string -> Value.t list -> Value.t
(** Dynamic dispatch on a receiver value.  Raises
    [NullPointerException] (as {!Mini_raise}) on [Null] receivers. *)

(** {1 Filter (de-)installation: the load-time weaving API} *)

val attach_filter : meth -> filter -> unit
(** Prepends, so the latest attached filter is outermost. *)

val detach_filter : meth -> string -> unit
val detach_all_filters : meth -> unit
val attach_filter_everywhere : t -> filter -> unit
val detach_filter_everywhere : t -> string -> unit

(** {1 Hooks, output, globals} *)

val register_hook : t -> string -> (t -> Value.t list -> Value.t) -> unit
val find_hook : t -> string -> (t -> Value.t list -> Value.t) option
val output : t -> string
val print_out : t -> string -> unit
val set_global : t -> string -> Value.t -> unit
val get_global : t -> string -> Value.t option

val iter_global_roots : t -> (Value.t -> unit) -> unit
(** Applies [f] to every global's current value, in deterministic
    (reverse-creation) order — the GC root set. *)

val set_cur_tid : t -> int -> unit
(** Sets the running MiniLang thread id on the VM and its heap, so
    write-barrier shadow saves are attributed to the right thread. *)
