(** Object graphs (paper Definition 1) and their comparison.

    The object graph of a value [v] is the rooted graph of all objects,
    arrays and primitive values reachable from [v] through instance
    variables and array slots, with sharing preserved: two pointers to
    the same object remain pointers to one shared node.

    Graphs are represented by a {e canonical form}: a finite tree in
    which each heap object is expanded at its first visit (fields sorted
    by name, array slots in index order) and later occurrences become
    back-references to the first-visit index.  Two rooted graphs are
    identical in the sense of Definition 1 iff their canonical forms are
    structurally equal — including cyclic graphs, whose cycles close
    through a [Back] node.

    Interior nodes carry a structural hash computed bottom-up at
    construction time, placed before the children in the record so that
    the polymorphic equality under {!equal} rejects differing subtrees
    after two int compares.  Canonicalization never touches the heap it
    reads (no allocation, no write barrier), and can be pointed at an
    alternative payload lookup — e.g. {!Shadow.read_before} — to rebuild
    the canonical form a graph {e had} when a shadow was opened. *)

type node =
  | Int of int
  | Bool of bool
  | Str of string
  | Null
  | Obj of { idx : int; hash : int; cls : string; fields : (string * node) array }
  | Arr of { idx : int; hash : int; elems : node array }
  | Back of int  (** reference to an already-visited object *)

val pp_node : node Fmt.t

val canonical : Heap.t -> Value.t -> node
(** Canonical form of the object graph rooted at the given value. *)

val canonical_many : Heap.t -> Value.t list -> node
(** Canonical form covering several roots at once (e.g. the receiver
    plus the by-reference arguments of a call); sharing across roots is
    captured because the visit table is common to all of them.  The
    roots are joined under a synthetic array node that exists only in
    the result — nothing is allocated on the heap. *)

val canonical_many_via : (Value.obj_id -> Heap.payload) -> Value.t list -> node
(** [canonical_many] with an explicit payload lookup.  Passing
    {!Shadow.read_before} rebuilds the canonical form the graph had when
    the shadow was opened — the differential snapshot path of the
    detection engine. *)

(** Incremental canonicalization: a per-run cache of canonical forms,
    keyed by the first root's object identity and revalidated against
    the heap's write stamps ({!Heap.write_stamp}) instead of being
    rebuilt.  The detection phase snapshots the same receiver graph at
    every wrapped call; when nothing covered by a cached form was
    mutated since — the common case — the memo answers with one integer
    compare (heap generation unchanged) or one stamp read per covered
    object, never traversing payloads.  Any mutation of a covered
    object, including through the copy-on-write barrier or rollback's
    [restore_payload], forces a rebuild, so a cached form is never
    stale; memoized results are structurally identical to freshly built
    ones (canonicalization is deterministic). *)
module Memo : sig
  type t

  val create : unit -> t

  val canonical_many : t -> Heap.t -> Value.t list -> node
  (** Like {!val-canonical_many}, through the cache.  Physically equal
      results for repeat calls over an unmutated graph, so a subsequent
      {!equal} is O(1). *)

  val hits : t -> int
  val misses : t -> int
end

val reaches_dirty :
  (Value.obj_id -> Heap.payload) -> dirty:(Value.obj_id -> bool) ->
  Value.t list -> bool
(** Whether the graph reachable from the roots — as seen through the
    given payload lookup — contains an id satisfying [dirty].  Used to
    intersect a shadow's dirty set with the snapshot's reachable ids
    without building a canonical form; early-exits on the first hit. *)

val reachable_via :
  (Value.obj_id -> Heap.payload) -> Value.t list ->
  (Value.obj_id, unit) Hashtbl.t
(** The set of ids reachable from the roots through the given payload
    lookup.  With {!Shadow.read_before} this is the entry-time reachable
    set of a wrapped call: exactly the ids an eager checkpoint of the
    same roots would have covered.  Used by the production COW rollback
    to restore dirty payloads inside the protected graph and no
    others. *)

val equal : node -> node -> bool
(** Object-graph identity per Definition 1.  The precomputed structural
    hashes make mismatches cheap: differing subtrees are rejected
    without being walked. *)

val hash : node -> int
(** Structural hash; O(1) for interior nodes (precomputed). *)

val to_string : node -> string

val diff : node -> node -> string option
(** First root-to-leaf field path at which two canonical forms differ,
    e.g. ["this.head.next.value"]; [None] when equal.  Arrays are
    compared with a single indexed walk; a length mismatch is reported
    as [path ^ ".length"].  Shown in detection reports so users can see
    {e where} a method left the receiver inconsistent. *)

val clone : Heap.t -> Value.t -> Value.t
(** Deep copy of the graph, preserving sharing and cycles; the result
    references freshly allocated objects only.  This is the paper's
    [deep_copy]. *)

val size : Heap.t -> Value.t -> int
(** Number of heap objects in the graph (the checkpoint-size metric of
    the Figure 5 benchmarks). *)
