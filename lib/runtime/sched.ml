(* The deterministic cooperative scheduler.

   MiniLang threads are OCaml effect fibers multiplexed onto the single
   domain that runs the VM — there is no OS-level parallelism, so every
   interleaving is a deterministic function of the scheduling policy
   alone.  The policy's every choice is drawn from a seeded splitmix64
   stream and folded into a decision digest, so a run is replayed
   bit-for-bit by re-running with the same policy spec (the spec is
   recorded per run in the journal; see Run_log).

   Preemption opportunities are method-call boundaries only
   ({!Vm.call_filtered} performs {!Vm.Preempt} when [preempt_flag] is
   set).  Both execution engines funnel every method and constructor
   call through that one function, so opportunity counting — and hence
   every decision a policy makes — is identical across engines.

   Policies:
   - [Coop]: never preempts; switches only when a thread blocks or
     finishes, next thread in FIFO order.  Zero decisions, empty
     digest.  A sequential program under [Coop] runs exactly as it did
     without the scheduler (one fiber, no preemption checks beyond a
     single dead branch per call).
   - [Slice seed]: random time slices of 1..8 call opportunities; on
     expiry the next thread is drawn uniformly from the runnable set.
   - [Pct (depth, seed)]: PCT-style randomized priorities (Burckhardt
     et al.): each thread gets a random priority at spawn, the highest
     runnable priority always runs, and [depth] priority-change points
     are sampled over a 10,000-opportunity horizon, at which the
     running thread is demoted below every other.

   Monitors are per-object, reentrant, with FIFO handoff: the longest
   waiting thread acquires the lock the moment it is released, which
   makes lock-transfer order independent of the pick order of the
   policy (fairness is testable).  [join] returns the target's result
   value, or re-raises its crash into the joiner; joining self, main or
   an unknown tid raises IllegalArgumentException.  When every live
   thread is blocked the run dies with IllegalStateException
   ("deadlock"), catchable in-language like any other runtime
   exception.

   After main returns normally the scheduler drains the remaining
   runnable threads (so the set of calls executed does not depend on
   the policy), then re-raises the crash of the lowest-tid unjoined
   crashed thread, if any — an injected exception that kills a spawned
   thread still escapes the run and is seen by the detector.  A crash
   of main itself, or a fatal OCaml-level exception in any thread
   (step limit, deadline, genuine defects), aborts the whole run
   immediately. *)

open Effect.Deep

type policy = Coop | Slice of int | Pct of int * int

let policy_to_string = function
  | Coop -> "coop"
  | Slice seed -> Printf.sprintf "slice:%d" seed
  | Pct (depth, seed) -> Printf.sprintf "pct:%d:%d" depth seed

let policy_of_string s =
  match String.split_on_char ':' s with
  | [ "coop" ] -> Some Coop
  | [ "slice"; seed ] ->
    Option.map (fun n -> Slice n) (int_of_string_opt seed)
  | [ "pct"; depth; seed ] -> (
    match int_of_string_opt depth, int_of_string_opt seed with
    | Some d, Some n when d >= 0 -> Some (Pct (d, n))
    | _ -> None)
  | _ -> None

(* PCT priority-change points are sampled over this many preemption
   opportunities; runs longer than the horizon see no further change
   points (as in the original PCT formulation with a length bound). *)
let pct_horizon = 10_000

(* splitmix64: the seeded decision stream. *)
let sm64 st =
  st := Int64.add !st 0x9E3779B97F4A7C15L;
  let z = !st in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_below st n =
  if n <= 1 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (sm64 st) 1) (Int64.of_int n))

(* FNV-1a 64 over the decision stream: (opportunity index, chosen tid)
   at every scheduling choice.  Rendered as 16 hex digits. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_fold acc n =
  let rec bytes acc v i =
    if i = 8 then acc
    else
      bytes
        (Int64.mul (Int64.logxor acc (Int64.of_int (v land 0xff))) fnv_prime)
        (v lsr 8) (i + 1)
  in
  bytes acc n 0

let hex64 v = Printf.sprintf "%016Lx" v

type tstate =
  | Runnable of (unit -> unit) (* thunk resumes (or starts) the fiber *)
  | Running
  | Blocked_join of int * (Value.t, unit) continuation
  | Blocked_lock of int * (unit, unit) continuation
  | Finished of Value.t
  | Crashed of Vm.exn_value

type thread = {
  tid : int;
  mutable st : tstate;
  mutable joined : bool; (* crash consumed by a joiner (or drain) *)
  mutable prio : int; (* PCT base priority; negative once demoted *)
}

type monitor = {
  mutable owner : int; (* thread id, -1 = free *)
  mutable depth : int; (* reentrant acquisition count *)
  waiting : int Queue.t; (* FIFO handoff order *)
}

let run vm ~policy (main_thunk : unit -> Value.t) : Value.t =
  let threads : (int, thread) Hashtbl.t = Hashtbl.create 8 in
  let monitors : (int, monitor) Hashtbl.t = Hashtbl.create 8 in
  let next_tid = ref 1 in
  let rng = ref (Int64.of_int (match policy with Coop -> 0 | Slice s | Pct (_, s) -> s)) in
  let digest = ref fnv_offset in
  let opportunities = ref 0 in
  let switches = ref 0 in
  let preemptions = ref 0 in
  let contention = ref 0 in
  let cur = ref 0 in
  let abort : exn option ref = ref None in
  let main_value : Value.t option ref = ref None in
  (* coop run queue: holds exactly the runnable-but-not-running tids *)
  let rq : int Queue.t = Queue.create () in
  let pct_changes =
    match policy with
    | Pct (d, _) -> List.init d (fun _ -> 1 + rand_below rng pct_horizon)
    | Coop | Slice _ -> []
  in
  let pct_low = ref 0 in
  let quantum = ref 1 in
  let new_prio () =
    match policy with Pct _ -> 1 + rand_below rng 1_000_000 | Coop | Slice _ -> 0
  in
  let set_runnable t thunk =
    t.st <- Runnable thunk;
    Queue.push t.tid rq
  in
  let runnable_list () =
    Hashtbl.fold
      (fun _ t acc -> match t.st with Runnable _ -> t :: acc | _ -> acc)
      threads []
    |> List.sort (fun a b -> compare a.tid b.tid)
  in
  let exists_other_runnable () =
    Hashtbl.fold
      (fun _ t acc -> acc || (match t.st with Runnable _ -> true | _ -> false))
      threads false
  in
  (* Wakes every thread blocked on [join target]; a crash is delivered
     into the joiner as the original MiniLang exception. *)
  let wake_joiners target =
    Hashtbl.iter
      (fun _ th ->
        match th.st with
        | Blocked_join (tid, k) when tid = target.tid -> (
          target.joined <- true;
          match target.st with
          | Finished v -> set_runnable th (fun () -> continue k v)
          | Crashed ev -> set_runnable th (fun () -> discontinue k (Vm.Mini_raise ev))
          | Runnable _ | Running | Blocked_join _ | Blocked_lock _ -> assert false)
        | _ -> ())
      threads
  in
  let rec start_fiber t thunk =
    match_with
      (fun () ->
        let v = thunk () in
        t.st <- Finished v;
        if t.tid = 0 then main_value := Some v;
        wake_joiners t)
      ()
      (handler t)
  and handler : thread -> (unit, unit) Effect.Deep.handler =
   fun t ->
    { retc = Fun.id;
      exnc =
        (fun e ->
          match e with
          | Vm.Mini_raise ev when t.tid <> 0 ->
            t.st <- Crashed ev;
            wake_joiners t
          | e ->
            (* main crashed, or a fatal OCaml-level exception anywhere:
               the whole run aborts with it *)
            abort := Some e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Vm.Preempt ->
            Some
              (fun (k : (b, unit) continuation) ->
                incr opportunities;
                let yield () =
                  incr preemptions;
                  set_runnable t (fun () -> continue k ())
                in
                match policy with
                | Coop -> continue k ()
                | Slice _ ->
                  decr quantum;
                  if !quantum <= 0 && exists_other_runnable () then yield ()
                  else continue k ()
                | Pct _ ->
                  if List.mem !opportunities pct_changes then begin
                    decr pct_low;
                    t.prio <- !pct_low;
                    yield ()
                  end
                  else if
                    List.exists (fun o -> o.prio > t.prio) (runnable_list ())
                  then yield ()
                  else continue k ())
          | Vm.Sched_spawn thunk ->
            Some
              (fun (k : (b, unit) continuation) ->
                let tid = !next_tid in
                incr next_tid;
                let nt =
                  { tid; st = Running; joined = false; prio = new_prio () }
                in
                Hashtbl.add threads tid nt;
                set_runnable nt (fun () -> start_fiber nt thunk);
                continue k tid)
          | Vm.Sched_join tid ->
            Some
              (fun (k : (b, unit) continuation) ->
                let bad msg =
                  discontinue k
                    (Vm.Mini_raise (Vm.make_exn vm "IllegalArgumentException" msg))
                in
                if tid = 0 then bad "join: cannot join the main thread"
                else if tid = t.tid then bad "join: cannot join self"
                else
                  match Hashtbl.find_opt threads tid with
                  | None -> bad (Printf.sprintf "join: unknown thread %d" tid)
                  | Some target -> (
                    match target.st with
                    | Finished v ->
                      target.joined <- true;
                      continue k v
                    | Crashed ev ->
                      target.joined <- true;
                      discontinue k (Vm.Mini_raise ev)
                    | Runnable _ | Running | Blocked_join _ | Blocked_lock _ ->
                      t.st <- Blocked_join (tid, k)))
          | Vm.Monitor_enter id ->
            Some
              (fun (k : (b, unit) continuation) ->
                let mon =
                  match Hashtbl.find_opt monitors id with
                  | Some m -> m
                  | None ->
                    let m = { owner = -1; depth = 0; waiting = Queue.create () } in
                    Hashtbl.add monitors id m;
                    m
                in
                if mon.owner = -1 || mon.owner = t.tid then begin
                  mon.owner <- t.tid;
                  mon.depth <- mon.depth + 1;
                  continue k ()
                end
                else begin
                  incr contention;
                  Queue.push t.tid mon.waiting;
                  t.st <- Blocked_lock (id, k)
                end)
          | Vm.Monitor_exit id ->
            Some
              (fun (k : (b, unit) continuation) ->
                match Hashtbl.find_opt monitors id with
                | Some mon when mon.owner = t.tid ->
                  mon.depth <- mon.depth - 1;
                  if mon.depth = 0 then begin
                    if Queue.is_empty mon.waiting then mon.owner <- -1
                    else begin
                      (* FIFO handoff: the longest waiter owns the lock
                         from this instant, whatever the policy later
                         decides to run *)
                      let nxt = Queue.pop mon.waiting in
                      let th = Hashtbl.find threads nxt in
                      mon.owner <- nxt;
                      mon.depth <- 1;
                      match th.st with
                      | Blocked_lock (_, k') ->
                        set_runnable th (fun () -> continue k' ())
                      | _ -> assert false
                    end
                  end;
                  continue k ()
                | Some _ | None ->
                  discontinue k
                    (Vm.Mini_raise
                       (Vm.make_exn vm "IllegalStateException" "monitor not owned")))
          | _ -> None) }
  in
  let pick () =
    match policy with
    | Coop ->
      let rec pop () =
        match Queue.take_opt rq with
        | None -> None
        | Some tid -> (
          match Hashtbl.find_opt threads tid with
          | Some ({ st = Runnable _; _ } as t) -> Some t
          | _ -> pop ())
      in
      pop ()
    | Slice _ -> (
      Queue.clear rq;
      match runnable_list () with
      | [] -> None
      | l -> Some (List.nth l (rand_below rng (List.length l))))
    | Pct _ -> (
      Queue.clear rq;
      match runnable_list () with
      | [] -> None
      | l ->
        Some
          (List.fold_left (fun best t -> if t.prio > best.prio then t else best)
             (List.hd l) (List.tl l)))
  in
  let main = { tid = 0; st = Running; joined = true; prio = new_prio () } in
  Hashtbl.add threads 0 main;
  set_runnable main (fun () -> start_fiber main main_thunk);
  let saved_flag = vm.Vm.preempt_flag in
  vm.Vm.preempt_flag <- (match policy with Coop -> false | Slice _ | Pct _ -> true);
  let finish_stats () =
    vm.Vm.preempt_flag <- saved_flag;
    Vm.set_cur_tid vm 0;
    vm.Vm.sched_switches <- !switches;
    vm.Vm.sched_preemptions <- !preemptions;
    vm.Vm.sched_contention <- !contention;
    vm.Vm.sched_digest <-
      (match policy with Coop -> "" | Slice _ | Pct _ -> hex64 !digest)
  in
  Fun.protect ~finally:finish_stats (fun () ->
      let prev = ref (-1) in
      let rec loop () =
        match !abort with
        | Some e -> raise e
        | None -> (
          match pick () with
          | Some t ->
            (match policy with
             | Coop -> ()
             | Slice _ | Pct _ ->
               digest := fnv_fold (fnv_fold !digest !opportunities) t.tid);
            if !prev >= 0 && t.tid <> !prev then incr switches;
            prev := t.tid;
            cur := t.tid;
            Vm.set_cur_tid vm t.tid;
            (match policy with
             | Slice _ -> quantum := 1 + rand_below rng 8
             | Coop | Pct _ -> ());
            let resume =
              match t.st with Runnable r -> r | _ -> assert false
            in
            t.st <- Running;
            resume ();
            loop ()
          | None ->
            let blocked =
              Hashtbl.fold
                (fun _ t acc ->
                  acc
                  || (match t.st with
                      | Blocked_join _ | Blocked_lock _ -> true
                      | _ -> false))
                threads false
            in
            if blocked then
              raise (Vm.Mini_raise (Vm.make_exn vm "IllegalStateException" "deadlock")))
      in
      loop ();
      (* main finished normally and everything runnable was drained:
         surface the first unjoined crash, if any *)
      let crashed =
        Hashtbl.fold
          (fun _ t acc ->
            match t.st with
            | Crashed ev when not t.joined -> (
              match acc with
              | Some (tid, _) when tid < t.tid -> acc
              | _ -> Some (t.tid, ev))
            | _ -> acc)
          threads None
      in
      match crashed with
      | Some (_, ev) -> raise (Vm.Mini_raise ev)
      | None -> (
        match !main_value with
        | Some v -> v
        | None -> assert false))
