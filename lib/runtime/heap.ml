(* The simulated heap.

   Every object and array of the instrumented program lives here, keyed
   by an integer identity.  The heap exposes a write barrier hook
   ([on_write]) that fires *before* any mutation of an object's payload;
   the lazy (copy-on-write) checkpointing strategy of {!Checkpoint}
   relies on it to snapshot an object's payload the first time it is
   written inside a wrapped call. *)

type payload =
  | Obj of { cls : string; fields : (string, Value.t) Hashtbl.t }
  | Arr of Value.t array

type t = {
  uid : int; (* distinguishes heaps; usable as a hash key *)
  store : (Value.obj_id, payload) Hashtbl.t;
  mutable next_id : Value.obj_id;
  mutable allocations : int; (* total number of allocations ever made *)
  mutable on_write : (Value.obj_id -> unit) option;
}

exception Dangling_reference of Value.obj_id

(* Atomic so that heaps may be created concurrently from several
   domains (the campaign engine runs one detection VM per domain). *)
let uid_counter = Atomic.make 0

let create () =
  { uid = 1 + Atomic.fetch_and_add uid_counter 1;
    store = Hashtbl.create 256;
    next_id = 1;
    allocations = 0;
    on_write = None }

let live_count h = Hashtbl.length h.store
let allocations h = h.allocations

let get h id =
  match Hashtbl.find_opt h.store id with
  | Some p -> p
  | None -> raise (Dangling_reference id)

let mem h id = Hashtbl.mem h.store id

let alloc h payload =
  let id = h.next_id in
  h.next_id <- id + 1;
  h.allocations <- h.allocations + 1;
  Hashtbl.replace h.store id payload;
  id

let alloc_object h ~cls fields =
  let table = Hashtbl.create (max 4 (List.length fields)) in
  List.iter (fun (name, v) -> Hashtbl.replace table name v) fields;
  alloc h (Obj { cls; fields = table })

let alloc_array h values = alloc h (Arr (Array.copy values))

let free h id = Hashtbl.remove h.store id

let barrier h id = match h.on_write with None -> () | Some f -> f id

let class_of h id =
  match get h id with Obj { cls; _ } -> Some cls | Arr _ -> None

let field_names h id =
  match get h id with
  | Obj { fields; _ } ->
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) fields [])
  | Arr _ -> []

let get_field h id name =
  match get h id with
  | Obj { fields; _ } -> Hashtbl.find_opt fields name
  | Arr _ -> None

let set_field h id name v =
  match get h id with
  | Obj { fields; _ } ->
    barrier h id;
    Hashtbl.replace fields name v
  | Arr _ -> invalid_arg "Heap.set_field: array"

let array_length h id =
  match get h id with Arr a -> Some (Array.length a) | Obj _ -> None

let get_elem h id i =
  match get h id with
  | Arr a -> if i >= 0 && i < Array.length a then Some a.(i) else None
  | Obj _ -> None

(* Returns [false] when the index is out of bounds; the VM turns that
   into an [IndexOutOfBoundsException]. *)
let set_elem h id i v =
  match get h id with
  | Arr a ->
    if i >= 0 && i < Array.length a then begin
      barrier h id;
      a.(i) <- v;
      true
    end
    else false
  | Obj _ -> invalid_arg "Heap.set_elem: object"

(* A detached copy of a payload: the field table / element array is
   duplicated but the values (including references) are kept as-is.
   Used by checkpoints, which capture one payload per reachable object. *)
let copy_payload = function
  | Obj { cls; fields } -> Obj { cls; fields = Hashtbl.copy fields }
  | Arr a -> Arr (Array.copy a)

(* Restores a previously copied payload in place, bypassing the write
   barrier (rollback must not re-trigger checkpointing). *)
let restore_payload h id payload =
  if Hashtbl.mem h.store id then Hashtbl.replace h.store id (copy_payload payload)

(* Direct successors of an object: every reference stored in it. *)
let successors h id =
  match get h id with
  | Obj { fields; _ } ->
    Hashtbl.fold
      (fun _ v acc -> match v with Value.Ref r -> r :: acc | _ -> acc)
      fields []
  | Arr a ->
    Array.fold_left
      (fun acc v -> match v with Value.Ref r -> r :: acc | _ -> acc)
      [] a

let iter_ids h f = Hashtbl.iter (fun id _ -> f id) h.store
