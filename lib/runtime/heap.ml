(* The simulated heap.

   Every object and array of the instrumented program lives here, keyed
   by an integer identity.  The heap exposes a write barrier that fires
   *before* any mutation (or removal) of an object's payload.  The
   barrier feeds two consumers:

   - the heap's own stack of active {e shadows} — copy-on-write
     dirty-set/saved-payload records underlying both the lazy
     checkpoint strategy of {!Checkpoint} and the differential
     detection snapshots of the injector (see {!Shadow});
   - an optional external hook ([on_write]), kept for tests and tools.

   The shadow stack is per-heap state, so campaigns running one VM per
   domain need no shared table or lock here. *)

type payload =
  | Obj of { cls : string; fields : (string, Value.t) Hashtbl.t }
  | Arr of Value.t array

(* One copy-on-write shadow: the first time an object is mutated (or
   freed) while the shadow is active, its pre-write payload is saved
   under its identity.  The key set is the shadow's dirty set.  The
   table is allocated on the first write — a shadow is opened per
   wrapped call and most calls never mutate, so opening must not
   allocate.  Lifecycle and queries live in {!Shadow}. *)
type shadow = {
  mutable shadow_saved : (Value.obj_id, payload) Hashtbl.t option;
  mutable shadow_tid : (Value.obj_id, int) Hashtbl.t option;
      (* which MiniLang thread first dirtied each saved object: the
         per-thread COW dirty sets.  Payloads are shared with
         [shadow_saved] (the merged view canonicalization reads), so a
         thread's dirty set is the slice of the merged table it owns;
         the union over threads is exactly the single-shadow dirty set. *)
  mutable shadow_active : bool; (* stops recording once closed *)
}

(* Identities are dense — [next_id] counts up from 1 and is never
   reused — so the store is a flat array indexed by identity, not a
   hash table: every [get] on the interpreter's hot path is one bounds
   check and one array read, and live payloads read back the [Some]
   allocated at [alloc] time (no per-access option allocation). *)
type t = {
  uid : int; (* distinguishes heaps; usable as a hash key *)
  mutable store : payload option array; (* indexed by obj_id; None = freed *)
  mutable next_id : Value.obj_id;
  mutable live : int; (* number of Some entries *)
  mutable allocations : int; (* total number of allocations ever made *)
  mutable barrier_hits : int; (* total write-barrier firings ever made *)
  mutable shadows : shadow list; (* active shadows, innermost first *)
  mutable cur_tid : int;
      (* MiniLang thread currently mutating this heap; kept in step with
         the VM by the scheduler (0, the main thread, when sequential) *)
  mutable on_write : (Value.obj_id -> unit) option;
  mutable write_gen : int; (* bumped once per payload mutation *)
  mutable wstamp : int array;
      (* [write_gen] value of each object's latest mutation, indexed by
         identity like [store]; the incremental-canonicalization memo
         ([Object_graph.Memo]) compares these stamps against the
         generation a cached form was validated at *)
  mutable wcount : int array;
      (* payload mutations per MiniLang thread, indexed by thread id.
         [write_gen] minus a thread's own count dates writes by *other*
         threads, which lets the production rollback and the canary
         validator detect scheduler interference in O(1) *)
}

exception Dangling_reference of Value.obj_id

(* Atomic so that heaps may be created concurrently from several
   domains (the campaign engine runs one detection VM per domain).
   This is the only heap state shared across domains: everything else
   here is per-heap, and MiniLang threads are effect fibers multiplexed
   on their VM's single domain (see Sched), so plain mutable fields
   like [next_id] need no synchronisation. *)
let uid_counter = Atomic.make 0

let create () =
  { uid = 1 + Atomic.fetch_and_add uid_counter 1;
    store = Array.make 256 None;
    next_id = 1;
    live = 0;
    allocations = 0;
    barrier_hits = 0;
    shadows = [];
    cur_tid = 0;
    on_write = None;
    write_gen = 0;
    wstamp = Array.make 256 0;
    wcount = Array.make 8 0 }

let set_cur_tid h tid = h.cur_tid <- tid

let live_count h = h.live
let allocations h = h.allocations
let barrier_hits h = h.barrier_hits
let write_gen h = h.write_gen

let write_stamp h id =
  if id > 0 && id < Array.length h.wstamp then Array.unsafe_get h.wstamp id
  else 0

(* Stamps [id] as mutated at a fresh generation.  Not in [barrier]
   directly so [restore_payload] (which bypasses the barrier) can stamp
   too: rollback must not re-trigger checkpointing, but it *does*
   change payloads, and a stale memoized canonical form would be a
   correctness bug, not a missed optimization. *)
let stamp h id =
  let g = h.write_gen + 1 in
  h.write_gen <- g;
  if id > 0 && id < Array.length h.wstamp then Array.unsafe_set h.wstamp id g;
  let tid = h.cur_tid in
  if tid >= Array.length h.wcount then begin
    let wider = Array.make (2 * (tid + 1)) 0 in
    Array.blit h.wcount 0 wider 0 (Array.length h.wcount);
    h.wcount <- wider
  end;
  if tid >= 0 then h.wcount.(tid) <- h.wcount.(tid) + 1

let writes_by_tid h tid =
  if tid >= 0 && tid < Array.length h.wcount then h.wcount.(tid) else 0

(* The current payload slot of [id], or None when never allocated or
   already freed.  [id < next_id] implies [id] is within the array. *)
let payload_opt h id =
  if id > 0 && id < h.next_id then Array.unsafe_get h.store id else None

let get h id =
  match payload_opt h id with
  | Some p -> p
  | None -> raise (Dangling_reference id)

let mem h id = match payload_opt h id with Some _ -> true | None -> false

let alloc h payload =
  let id = h.next_id in
  if id >= Array.length h.store then begin
    let bigger = Array.make (2 * Array.length h.store) None in
    Array.blit h.store 0 bigger 0 (Array.length h.store);
    h.store <- bigger;
    let wider = Array.make (Array.length bigger) 0 in
    Array.blit h.wstamp 0 wider 0 (Array.length h.wstamp);
    h.wstamp <- wider
  end;
  h.next_id <- id + 1;
  h.allocations <- h.allocations + 1;
  h.live <- h.live + 1;
  h.store.(id) <- Some payload;
  id

let alloc_object h ~cls fields =
  let table = Hashtbl.create (max 4 (List.length fields)) in
  List.iter (fun (name, v) -> Hashtbl.replace table name v) fields;
  alloc h (Obj { cls; fields = table })

let alloc_array h values = alloc h (Arr (Array.copy values))

(* A detached copy of a payload: the field table / element array is
   duplicated but the values (including references) are kept as-is.
   Used by checkpoints and shadows, which capture one payload per
   object. *)
let copy_payload = function
  | Obj { cls; fields } -> Obj { cls; fields = Hashtbl.copy fields }
  | Arr a -> Arr (Array.copy a)

(* Saved payloads are read-only for their whole life — rollback
   re-copies before installing ({!restore_payload}) and every query
   path only traverses them — so when several shadows record the same
   write, one detached copy is made and shared by all of them (the
   stack can be deep: one shadow per wrapped call on the stack). *)
(* Attributes a fresh save to the thread performing the write.  Only
   called when [id] was just added to [sh]'s saved table, so one
   replace, no membership probe. *)
let note_tid h sh id =
  let tbl =
    match sh.shadow_tid with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 16 in
      sh.shadow_tid <- Some tbl;
      tbl
  in
  Hashtbl.replace tbl id h.cur_tid

let shadow_record h sh id copy =
  if sh.shadow_active then begin
    let saved =
      match sh.shadow_saved with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 16 in
        sh.shadow_saved <- Some tbl;
        tbl
    in
    if not (Hashtbl.mem saved id) then begin
      (match !copy with
       | None -> copy := Option.map copy_payload (payload_opt h id)
       | Some _ -> ());
      match !copy with
      | Some p ->
        Hashtbl.replace saved id p;
        note_tid h sh id
      | None -> ()
    end
  end

(* Does this shadow already hold a pre-write copy of [id]?  Saves are
   recorded into every active shadow at once and shadows only leave the
   list when closed, so an object saved in a {e newer} (more recently
   opened) shadow is necessarily saved in every older active one: the
   barrier below walks innermost-first and stops at the first hit,
   which drops the redundant per-shadow membership probes the old
   List.iter paid on the sequential path. *)
let shadow_has sh id =
  match sh.shadow_saved with Some tbl -> Hashtbl.mem tbl id | None -> false

let barrier h id =
  h.barrier_hits <- h.barrier_hits + 1;
  stamp h id;
  (match h.shadows with
   | [] -> ()
   | [ sh ] when sh.shadow_active ->
     (* single active shadow — the common case at shallow call depth *)
     let saved =
       match sh.shadow_saved with
       | Some tbl -> tbl
       | None ->
         let tbl = Hashtbl.create 16 in
         sh.shadow_saved <- Some tbl;
         tbl
     in
     if not (Hashtbl.mem saved id) then (
       match payload_opt h id with
       | Some p ->
         Hashtbl.replace saved id (copy_payload p);
         note_tid h sh id
       | None -> ())
   | shadows ->
     let copy = ref None in
     let rec save = function
       | [] -> ()
       | sh :: older ->
         if sh.shadow_active && shadow_has sh id then ()
         else begin
           shadow_record h sh id copy;
           save older
         end
     in
     save shadows);
  match h.on_write with None -> () | Some f -> f id

(* A free is the terminal mutation: firing the barrier first lets every
   active shadow keep the payload, so a pre-existing object reclaimed
   mid-call can still be reconstructed in the shadow's before-state. *)
let free h id =
  barrier h id;
  match payload_opt h id with
  | Some _ ->
    h.store.(id) <- None;
    h.live <- h.live - 1
  | None -> ()

let class_of h id =
  match get h id with Obj { cls; _ } -> Some cls | Arr _ -> None

let field_names h id =
  match get h id with
  | Obj { fields; _ } ->
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) fields [])
  | Arr _ -> []

let get_field h id name =
  match get h id with
  | Obj { fields; _ } -> Hashtbl.find_opt fields name
  | Arr _ -> None

let set_field h id name v =
  match get h id with
  | Obj { fields; _ } ->
    barrier h id;
    Hashtbl.replace fields name v
  | Arr _ -> invalid_arg "Heap.set_field: array"

let array_length h id =
  match get h id with Arr a -> Some (Array.length a) | Obj _ -> None

let get_elem h id i =
  match get h id with
  | Arr a -> if i >= 0 && i < Array.length a then Some a.(i) else None
  | Obj _ -> None

(* Returns [false] when the index is out of bounds; the VM turns that
   into an [IndexOutOfBoundsException]. *)
let set_elem h id i v =
  match get h id with
  | Arr a ->
    if i >= 0 && i < Array.length a then begin
      barrier h id;
      a.(i) <- v;
      true
    end
    else false
  | Obj _ -> invalid_arg "Heap.set_elem: object"

(* Restores a previously copied payload in place, bypassing the write
   barrier (rollback must not re-trigger checkpointing). *)
let restore_payload h id payload =
  if mem h id then begin
    h.store.(id) <- Some (copy_payload payload);
    stamp h id
  end

(* Direct successors of an object: every reference stored in it. *)
let successors h id =
  match get h id with
  | Obj { fields; _ } ->
    Hashtbl.fold
      (fun _ v acc -> match v with Value.Ref r -> r :: acc | _ -> acc)
      fields []
  | Arr a ->
    Array.fold_left
      (fun acc v -> match v with Value.Ref r -> r :: acc | _ -> acc)
      [] a

let iter_ids h f =
  for id = 1 to h.next_id - 1 do
    match Array.unsafe_get h.store id with Some _ -> f id | None -> ()
  done
