(* Copy-on-write shadows: the differential snapshot engine.

   A shadow opened on a heap records, through the heap's write barrier,
   the pre-write payload of every object mutated (or freed) while the
   shadow is active.  Nothing is traversed or copied up front, so
   opening is O(1) and the cost of a shadow is proportional to the
   number of objects actually touched — not to the size of any object
   graph.  This is the paper's §6.2 copy-on-write suggestion promoted to
   a shared layer:

   - {!Checkpoint} implements its [Lazy] strategy as a shadow whose
     saved payloads are restored on rollback;
   - the detection engine ({!Failatom_core.Injection}) opens one shadow
     per wrapped call instead of canonicalizing the receiver's object
     graph, and reconstructs the entry-time canonical form on the rare
     exceptional return only.

   Shadows nest: each wrapped call gets its own record, the heap keeps
   the active ones innermost-first, and the barrier feeds them all, so a
   detection shadow and a masking checkpoint taken inside the same call
   stack each see a correct before-state.  The stack lives on the heap
   itself ({!Heap.t.shadows}), so there is no cross-domain shared state:
   campaigns running one VM per domain need no lock here. *)

type t = {
  heap : Heap.t;
  s : Heap.shadow;
}

(* Distribution of dirty-set sizes over closed shadows: how much the
   calls covered by cow snapshots / lazy checkpoints actually mutate.
   Recorded at close time only, so the write barrier stays untouched. *)
let h_dirty = Failatom_obs.Obs.histogram ~unit_:Failatom_obs.Obs.Items "heap.shadow.dirty_size"

let open_ heap =
  (* the saved table is created by the barrier on the first write, so
     opening a shadow on a call that never mutates costs two words *)
  let s = { Heap.shadow_saved = None; shadow_tid = None; shadow_active = true } in
  heap.Heap.shadows <- s :: heap.Heap.shadows;
  { heap; s }

let dirty_count t =
  match t.s.Heap.shadow_saved with None -> 0 | Some tbl -> Hashtbl.length tbl

let close t =
  Failatom_obs.Obs.observe h_dirty (dirty_count t);
  t.s.Heap.shadow_active <- false;
  (* wrapped calls close in LIFO order, so the common case is popping
     the innermost shadow; the filter handles out-of-order closes
     (e.g. an eager-mode checkpoint disposed under a cow detector) *)
  t.heap.Heap.shadows <-
    (match t.heap.Heap.shadows with
     | s :: rest when s == t.s -> rest
     | shadows -> List.filter (fun s -> s != t.s) shadows)

let heap t = t.heap

let is_dirty t id =
  match t.s.Heap.shadow_saved with None -> false | Some tbl -> Hashtbl.mem tbl id

let saved_payload t id =
  match t.s.Heap.shadow_saved with
  | None -> None
  | Some tbl -> Hashtbl.find_opt tbl id

(* The payload [id] had when the shadow was opened: the saved copy if
   the object has since been written (or freed), its current payload
   otherwise.  Because [Heap.free] fires the barrier, every object that
   existed at open time is readable here for as long as the shadow
   lives. *)
let read_before t id =
  match saved_payload t id with Some p -> p | None -> Heap.get t.heap id

let iter_saved t f =
  match t.s.Heap.shadow_saved with None -> () | Some tbl -> Hashtbl.iter f tbl

(* The per-thread COW dirty sets, sorted by thread id.  Their disjoint
   union is the merged dirty set ([dirty_count]); the QCheck property in
   the test-suite enforces exactly that. *)
let dirty_by_thread t =
  match t.s.Heap.shadow_tid with
  | None -> []
  | Some tbl ->
    let per_tid = Hashtbl.create 4 in
    Hashtbl.iter
      (fun id tid ->
        let ids = try Hashtbl.find per_tid tid with Not_found -> [] in
        Hashtbl.replace per_tid tid (id :: ids))
      tbl;
    Hashtbl.fold (fun tid ids acc -> (tid, List.sort compare ids) :: acc) per_tid []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let with_shadow heap f =
  let t = open_ heap in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
