(** The simulated heap.

    Every object and array of the instrumented program lives here, keyed
    by an integer identity.  The heap exposes a write barrier that fires
    before any mutation (or {!free}) of an object's payload.  The
    barrier feeds the heap's own stack of active copy-on-write
    {!type-shadow}s — the dirty-set/saved-payload layer shared by lazy
    checkpoints ({!Checkpoint}) and differential detection snapshots
    ({!Shadow}) — and then an optional external hook
    ({!field-on_write}). *)

type payload =
  | Obj of { cls : string; fields : (string, Value.t) Hashtbl.t }
  | Arr of Value.t array

type shadow = {
  mutable shadow_saved : (Value.obj_id, payload) Hashtbl.t option;
      (** pre-write payload of every object mutated or freed while the
          shadow was active; the key set is the shadow's dirty set.
          [None] until the first write — opening a shadow must not
          allocate *)
  mutable shadow_tid : (Value.obj_id, int) Hashtbl.t option;
      (** which MiniLang thread first dirtied each saved object: the
          per-thread COW dirty sets.  Payloads are shared with
          [shadow_saved] (the merged view read at canonicalization), so
          the union of the per-thread sets is exactly the single-shadow
          dirty set *)
  mutable shadow_active : bool;  (** stops recording once closed *)
}
(** One copy-on-write shadow record.  Lifecycle and queries live in
    {!Shadow}; the representation is here only because the heap owns the
    stack of active shadows. *)

type t = {
  uid : int;  (** distinguishes heaps; usable as a hash key *)
  mutable store : payload option array;
      (** indexed by identity — identities are dense and never reused,
          so a flat array replaces the hash table on the interpreter's
          hot path; [None] marks a freed slot *)
  mutable next_id : Value.obj_id;
  mutable live : int;  (** number of live (Some) entries *)
  mutable allocations : int;  (** total allocations ever made *)
  mutable barrier_hits : int;  (** total write-barrier firings ever made *)
  mutable shadows : shadow list;
      (** active shadows, innermost first; maintained by {!Shadow} *)
  mutable cur_tid : int;
      (** MiniLang thread currently mutating this heap; kept in step
          with the VM by the scheduler via {!set_cur_tid} *)
  mutable on_write : (Value.obj_id -> unit) option;
      (** external write-barrier hook, called with the object's id
          before each mutation (or free) of its payload, after the
          active shadows have recorded it *)
  mutable write_gen : int;  (** bumped once per payload mutation *)
  mutable wstamp : int array;
      (** per-identity stamp: the {!field-write_gen} value of the
          object's latest mutation (or rollback restore).  Read through
          {!write_stamp} by the incremental-canonicalization memo
          ({!Object_graph.Memo}) to revalidate cached canonical forms
          without traversing payloads *)
  mutable wcount : int array;
      (** payload mutations per MiniLang thread, indexed by thread id.
          Read through {!writes_by_tid}: comparing the deltas of
          [write_gen] and one thread's own count over a window counts
          writes made by {e other} threads during that window in O(1) *)
}

exception Dangling_reference of Value.obj_id
(** Raised when dereferencing an identity that was {!free}d. *)

val create : unit -> t

val set_cur_tid : t -> int -> unit
(** Tags subsequent write-barrier saves with this MiniLang thread id.
    Shadows never alias across threads: a saved object belongs to
    exactly one thread's dirty set — the thread whose write first
    triggered the save ({!type-shadow}[.shadow_tid]). *)

val live_count : t -> int
(** Number of objects currently on the heap. *)

val allocations : t -> int

val barrier_hits : t -> int
(** Total number of write-barrier firings (mutations and frees) over
    the heap's lifetime.  A cheap per-heap count, harvested into the
    observability registry at run boundaries. *)

val write_gen : t -> int
(** Monotonic mutation generation: bumped once per payload mutation,
    free, or rollback restore.  Equal generations imply an unchanged
    heap, so a memoized canonical form is revalidated with one integer
    compare when nothing was written since it was built. *)

val write_stamp : t -> Value.obj_id -> int
(** Generation of [id]'s latest mutation; [0] if never mutated since
    allocation.  [write_stamp h id <= g] for every object in a graph
    means the graph is unchanged since generation [g]. *)

val writes_by_tid : t -> int -> int
(** Total payload mutations (including rollback restores) made so far
    by the given MiniLang thread.  With [g0 = write_gen h] and
    [o0 = writes_by_tid h tid] captured at the start of a window,
    [(write_gen h - g0) - (writes_by_tid h tid - o0) > 0] detects — in
    O(1) and exactly — that some {e other} thread wrote during the
    window.  The production rollback and the canary validator use this
    to tell scheduler interference from a failed restoration. *)

val get : t -> Value.obj_id -> payload
(** @raise Dangling_reference if the object does not exist. *)

val mem : t -> Value.obj_id -> bool

val alloc : t -> payload -> Value.obj_id
(** Allocates a payload as-is (no defensive copy). *)

val alloc_object : t -> cls:string -> (string * Value.t) list -> Value.obj_id
(** Allocates an object of class [cls] with the given fields. *)

val alloc_array : t -> Value.t array -> Value.obj_id
(** Allocates an array initialized with a copy of the given values. *)

val free : t -> Value.obj_id -> unit
(** Removes an object; used by the collector and by rollback cleanup.
    Fires the write barrier first, so active shadows retain the freed
    object's last payload. *)

val barrier : t -> Value.obj_id -> unit
(** Fires the write barrier for [id]: every active shadow saves the
    object's current payload on its first write, then the external
    {!field-on_write} hook (if any) runs. *)

val class_of : t -> Value.obj_id -> string option
(** Class name of an object; [None] for arrays. *)

val field_names : t -> Value.obj_id -> string list
(** Sorted field names of an object; [[]] for arrays. *)

val get_field : t -> Value.obj_id -> string -> Value.t option
val set_field : t -> Value.obj_id -> string -> Value.t -> unit

val array_length : t -> Value.obj_id -> int option
(** Length of an array; [None] for objects. *)

val get_elem : t -> Value.obj_id -> int -> Value.t option
(** [None] when out of bounds or not an array. *)

val set_elem : t -> Value.obj_id -> int -> Value.t -> bool
(** [false] when the index is out of bounds (the VM turns that into an
    [IndexOutOfBoundsException]). *)

val copy_payload : payload -> payload
(** A detached copy of a payload: the field table / element array is
    duplicated, the values (including references) kept as-is.  This is
    the unit of checkpointing. *)

val restore_payload : t -> Value.obj_id -> payload -> unit
(** Restores a previously copied payload in place, bypassing the write
    barrier (rollback must not re-trigger checkpointing).  No-op if the
    object no longer exists. *)

val successors : t -> Value.obj_id -> Value.obj_id list
(** Direct successors: every reference stored in the object. *)

val iter_ids : t -> (Value.obj_id -> unit) -> unit
