(** The append-only campaign journal: each completed run is persisted
    the moment it is recorded (in the {!Run_log} line grammar plus a
    campaign header and per-run [output] records), so a killed campaign
    resumes instead of restarting.  See the implementation header for
    the exact grammar. *)

open Failatom_core

type header = {
  flavor : string;
  program_digest : string;  (** md5 hex of the pretty-printed program *)
}

type writer

val load :
  ?warn:(string -> unit) -> path:string -> unit ->
  (header * Marks.run_record list) option
(** [None] when the file does not exist.  Run blocks are returned in
    file order (completion order, not threshold order); a torn final
    line and a truncated trailing block — the writer was killed
    mid-append — are dropped, each reported through [warn].
    @raise Run_log.Bad_log on a corrupt journal. *)

val create : path:string -> header -> writer
(** Truncates [path] and writes a fresh header.  A resuming campaign
    re-creates the journal and re-appends the adopted runs, which
    scrubs any truncated trailing block left by a kill mid-append. *)

val append : writer -> Marks.run_record -> unit
(** Appends one run block, flushes, and fsyncs — each record is durable
    against a machine crash, not merely handed to the kernel. *)

val close : writer -> unit
