(** Campaign observability: progress events and a throttled line
    reporter. *)

type summary = {
  total_runs : int;  (** runs in the final result, probe included *)
  injections : int;
  executed : int;  (** runs executed by workers in this invocation *)
  reused : int;  (** journaled runs adopted without re-execution *)
  discarded : int;  (** speculative runs discarded past the frontier *)
  synthesized : int;
      (** coalesced records adopted without execution (`--prune
          coalesce`); [executed + reused + synthesized - discarded]
          covers [total_runs] *)
  workers : int;
  wall_clock_s : float;
  busy_s : float;  (** CPU seconds consumed over the campaign *)
}

val est_speedup : summary -> float
(** Effective parallelism: CPU time over wall-clock time — the speedup
    over one worker executing the same runs back to back.  Bounded by
    the machine's core count regardless of [workers]. *)

type event =
  | Started of { workers : int; reused : int }
  | Tick of {
      completed : int;  (** runs recorded so far, reused included *)
      needed : int option;  (** total runs, once the frontier is known *)
      injections : int;
      elapsed_s : float;
      rate : float;  (** executed runs per second of wall-clock *)
      eta_s : float option;
    }
  | Warning of string
      (** a recoverable anomaly worth surfacing (e.g. a torn journal
          tail truncated on resume) *)
  | Finished of summary

val null : event -> unit
(** Discards every event (the default consumer). *)

val pp_summary : Format.formatter -> summary -> unit

val reporter : ?interval_s:float -> Format.formatter -> event -> unit
(** A stateful consumer printing one line per event, throttling [Tick]s
    to at most one per [interval_s] seconds of campaign time. *)
