(* Campaign observability: progress events and a throttled line
   reporter.

   The engine emits one {!event} per state change (start, every
   recorded run, finish); consumers decide what to do with them.  The
   bundled {!reporter} prints periodic throughput/ETA lines and a final
   summary, throttling [Tick]s to one per [interval_s] of campaign
   time so a fast campaign does not flood the terminal. *)

type summary = {
  total_runs : int;  (* runs in the final result, probe included *)
  injections : int;
  executed : int;  (* runs executed by workers in this invocation *)
  reused : int;  (* journaled runs adopted without re-execution *)
  discarded : int;  (* speculative runs discarded past the frontier *)
  synthesized : int;  (* coalesced records adopted without execution *)
  workers : int;
  wall_clock_s : float;
  busy_s : float;  (* CPU seconds consumed over the campaign *)
}

(* Effective parallelism: CPU time over wall-clock time.  This is the
   campaign's speedup over a single worker executing the same runs back
   to back, and stays honest when the machine has fewer cores than
   workers. *)
let est_speedup s = if s.wall_clock_s > 0. then s.busy_s /. s.wall_clock_s else 1.

type event =
  | Started of { workers : int; reused : int }
  | Tick of {
      completed : int;  (* runs recorded so far, reused included *)
      needed : int option;  (* total runs needed, once the frontier is known *)
      injections : int;
      elapsed_s : float;
      rate : float;  (* executed runs per second of wall-clock *)
      eta_s : float option;
    }
  | Warning of string
    (* a recoverable anomaly worth surfacing (e.g. a torn journal tail
       truncated on resume) *)
  | Finished of summary

let null (_ : event) = ()

let pp_summary ppf s =
  Fmt.pf ppf "campaign: %d runs (%d injections) in %.2fs on %d worker(s)@."
    s.total_runs s.injections s.wall_clock_s s.workers;
  Fmt.pf ppf "campaign: %d executed, %d reused from journal, %d speculative discarded@."
    s.executed s.reused s.discarded;
  if s.synthesized > 0 then
    Fmt.pf ppf "campaign: %d synthesized from blindness-group representatives@."
      s.synthesized;
  Fmt.pf ppf "campaign: estimated speedup vs 1 worker: %.2fx@." (est_speedup s)

let reporter ?(interval_s = 1.0) ppf =
  let last_tick = ref neg_infinity in
  fun event ->
    match event with
    | Started { workers; reused } ->
      if reused > 0 then
        Fmt.pf ppf "campaign: %d worker(s), resuming %d journaled run(s)@." workers
          reused
      else Fmt.pf ppf "campaign: %d worker(s)@." workers
    | Tick t ->
      if t.elapsed_s -. !last_tick >= interval_s then begin
        last_tick := t.elapsed_s;
        let total =
          match t.needed with Some n -> string_of_int n | None -> "?"
        in
        let eta =
          match t.eta_s with
          | Some e -> Fmt.str "%.1fs" (Float.max e 0.)
          | None -> "?"
        in
        Fmt.pf ppf "campaign: %d/%s runs, %d injections, %.0f runs/s, ETA %s@."
          t.completed total t.injections t.rate eta
      end
    | Warning msg -> Fmt.pf ppf "campaign: warning: %s@." msg
    | Finished s -> pp_summary ppf s
