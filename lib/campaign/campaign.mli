(** The parallel, resumable detection-campaign engine.

    Drop-in replacement for {!Detect.run} that executes the
    injection-threshold runs across OCaml 5 domains with speculative
    batch scheduling ({!Scheduler}), journals every completed run for
    resumption ({!Journal}), and reports progress ({!Progress}).  The
    returned {!Detect.result} is identical to what the sequential loop
    produces on the same program and flavor. *)

open Failatom_core
open Failatom_runtime
open Failatom_minilang

exception Campaign_error of string
(** User-level misuse: resuming without a journal, or against a journal
    recorded for a different program or flavor, or a corrupt journal. *)

exception Cancelled
(** The [cancel] callback returned [true]: workers stopped claiming new
    thresholds and the campaign aborted once in-flight runs drained
    (each bounded by [run_timeout_s] when set).  The journal, if any,
    retains every run completed before the abort, so a cancelled
    campaign can later be resumed. *)

val default_jobs : unit -> int
(** One worker per available core minus one, clamped to [1..8]. *)

val program_digest : Ast.program -> string
(** md5 hex of the pretty-printed program; identifies the program inside
    a journal header. *)

val run :
  ?config:Config.t ->
  ?flavor:Detect.flavor ->
  ?prepare:(Vm.t -> unit) ->
  ?plain:Compile.image ->
  ?compiled:Detect.compiled ->
  ?run_timeout_s:float ->
  ?cancel:(unit -> bool) ->
  ?jobs:int ->
  ?journal:string ->
  ?resume:bool ->
  ?report:(Progress.event -> unit) ->
  Ast.program ->
  Detect.result * Progress.summary
(** Runs the complete detection phase in parallel.

    [jobs] worker domains execute the runs (default {!default_jobs}).
    [journal] appends every completed run to the given path;
    [resume] additionally adopts the runs already journaled there, so
    only missing thresholds are executed.  [prepare] is applied to every
    fresh VM (as in {!Detect.run}) and must be safe to call from
    multiple domains.  [report] receives progress events.

    [plain] and [compiled] reuse already-built images of this very
    [program] (the server's content-addressed image cache), skipping
    the per-campaign weaving and compilation.  [run_timeout_s] bounds
    each run's wall-clock time; a timed-out run is recorded with
    [Marks.timed_out] and never establishes the frontier.  [cancel] is
    polled by every worker before claiming a threshold; once it returns
    [true] the campaign aborts with {!Cancelled}.

    Concurrent programs ({!Minilang.uses_concurrency}) run one complete
    campaign phase per spec in [config.schedules], exactly as in
    {!Detect.run} (per-schedule baselines, pruning forced off); the
    journal holds all phases' runs and a resume partitions them by each
    record's schedule spec, so every phase adopts only its own prior
    work.  Sequential programs keep the single coop phase and a journal
    format byte-identical to before.

    @raise Detect.Detection_error as {!Detect.run} would (a genuine
    failure inside a run, or [max_runs] exceeded).
    @raise Campaign_error on journal misuse.
    @raise Cancelled when [cancel] fired. *)
