(* Speculative batch scheduling of injection thresholds.

   The detection loop (paper §4.1) arms InjectionPoint = 1, 2, 3, … and
   stops at the first run that completes with no injection.  That
   stopping threshold — the *frontier* — is unknown until it is reached,
   so a parallel campaign must speculate: it dispatches thresholds past
   the highest completed one and discards whatever lands beyond the
   frontier once it is found.  Because every run is deterministic and
   independent (fresh VM and heap per run), discarding the over-run is
   enough to make the merged result identical to the sequential loop's.

   Speculation is bounded by a *horizon* that starts at one batch per
   worker and doubles every time the whole window below it completes
   without finding the frontier — so a campaign near its (unknown)
   frontier wastes at most one window of runs, while a campaign far from
   it quickly reaches full parallelism.

   The scheduler itself is plain single-threaded state; {!Campaign}
   serialises access with a mutex.  [claim] hands out thresholds,
   [record] files completed runs (from workers or from a resumed
   journal), and [runs] extracts the merged, frontier-truncated run
   list. *)

open Failatom_core

type claim =
  | Claimed of int  (* execute this threshold *)
  | Claimed_group of Prune.group
      (* coalesce: execute the representative, synthesize the members *)
  | Wait  (* nothing useful below the horizon; block until a record *)
  | Done  (* every needed threshold is claimed or complete *)
  | Exhausted  (* max_runs runs completed and none was injection-free *)

type stats = {
  executed : int;  (* runs completed by workers in this invocation *)
  reused : int;  (* journaled runs adopted without re-execution *)
  discarded : int;  (* speculative runs recorded past the frontier *)
  synthesized : int;  (* adopted runs no worker executed (coalesce) *)
}

type t = {
  max_runs : int;
  mutable horizon : int;  (* speculation bound while the frontier is unknown *)
  mutable next : int;  (* smallest never-claimed threshold *)
  mutable contiguous : int;  (* largest c with runs 1..c all recorded *)
  claimed : (int, unit) Hashtbl.t;  (* claimed, not yet recorded *)
  completed : (int, Marks.run_record) Hashtbl.t;
  from_journal : (int, unit) Hashtbl.t;
  mutable frontier : int option;  (* least threshold that did not inject *)
  mutable executed : int;
  mutable adopted : int;  (* newly filed by adopt, not executed/reused *)
  mutable injected_runs : int;  (* recorded runs in which an exception fired *)
  plan : Prune.plan option;  (* coalesce plan; frontier known upfront *)
  mutable plan_queue : Prune.group list;  (* groups not yet handed out *)
}

let frontier t = t.frontier

let note_frontier t point =
  match t.frontier with
  | Some f when f <= point -> ()
  | Some _ | None -> t.frontier <- Some point

let advance_contiguous t =
  while Hashtbl.mem t.completed (t.contiguous + 1) do
    t.contiguous <- t.contiguous + 1
  done

(* Doubles the horizon whenever the whole current window has completed
   without revealing the frontier. *)
let grow_horizon t =
  while t.frontier = None && t.contiguous >= t.horizon && t.horizon < t.max_runs do
    t.horizon <- min (2 * t.horizon) t.max_runs
  done

let file t (r : Marks.run_record) ~journal =
  let point = r.Marks.injection_point in
  Hashtbl.remove t.claimed point;
  if not (Hashtbl.mem t.completed point) then begin
    Hashtbl.replace t.completed point r;
    if journal then Hashtbl.replace t.from_journal point ();
    (match r.Marks.injected with
     | None when not r.Marks.timed_out -> note_frontier t point
     | None ->
       (* Timed out before any injection fired: the run proves nothing
          about the frontier — the injection point may simply not have
          been reached yet.  Keep probing; an all-timeout campaign ends
          at max_runs with [Exhausted]. *)
       ()
     | Some _ -> t.injected_runs <- t.injected_runs + 1);
    advance_contiguous t;
    grow_horizon t
  end

let create ?(journaled = []) ?plan ~max_runs ~jobs () =
  let t =
    { max_runs;
      horizon = max (2 * jobs) 4;
      next = 1;
      contiguous = 0;
      claimed = Hashtbl.create 64;
      completed = Hashtbl.create 256;
      from_journal = Hashtbl.create 64;
      frontier = None;
      executed = 0;
      adopted = 0;
      injected_runs = 0;
      plan;
      plan_queue = (match plan with Some p -> p.Prune.order | None -> []) }
  in
  (* With a coalesce plan the trace run already proved the frontier:
     no speculation, no horizon. *)
  (match plan with Some p -> t.frontier <- Some p.Prune.frontier | None -> ());
  List.iter (fun r -> file t r ~journal:true) journaled;
  grow_horizon t;
  t

let adopt t (r : Marks.run_record) =
  let fresh = not (Hashtbl.mem t.completed r.Marks.injection_point) in
  file t r ~journal:false;
  if fresh then t.adopted <- t.adopted + 1

let record t (r : Marks.run_record) =
  t.executed <- t.executed + 1;
  let speculative =
    match t.frontier with Some f -> r.Marks.injection_point > f | None -> false
  in
  file t r ~journal:false;
  if speculative then `Speculative else `Kept

let taken t point = Hashtbl.mem t.claimed point || Hashtbl.mem t.completed point

let group_complete t (g : Prune.group) =
  List.for_all (fun (th, _) -> Hashtbl.mem t.completed th) g.Prune.members

(* Plan-driven claiming: hand out whole blindness groups in the plan's
   seeded order, skipping groups every member of which is already on
   file (a resumed journal).  A group with *any* missing member is
   re-claimed wholesale — the representative must be (re-)executed to
   synthesize members, and runs are deterministic, so a re-executed
   representative files an identical record. *)
let claim_from_plan t =
  let rec pop () =
    match t.plan_queue with
    | g :: rest ->
      t.plan_queue <- rest;
      if group_complete t g then pop ()
      else begin
        Hashtbl.replace t.claimed (fst (Prune.rep g)) ();
        Claimed_group g
      end
    | [] ->
      let done_ =
        match t.frontier with Some f -> t.contiguous >= f | None -> false
      in
      if done_ || Hashtbl.length t.claimed = 0 then Done else Wait
  in
  pop ()

let claim t =
  if Option.is_some t.plan then claim_from_plan t
  else begin
  while taken t t.next do
    t.next <- t.next + 1
  done;
  match t.frontier with
  | Some f ->
    if t.next <= f then begin
      Hashtbl.replace t.claimed t.next ();
      Claimed t.next
    end
    else Done
  | None ->
    if t.next > t.max_runs then
      if t.contiguous >= t.max_runs then Exhausted else Wait
    else if t.next <= t.horizon then begin
      Hashtbl.replace t.claimed t.next ();
      Claimed t.next
    end
    else Wait
  end

let finished t =
  match t.frontier with Some f -> t.contiguous >= f | None -> false

(* The merged campaign result: thresholds 1 .. frontier in order, every
   speculative record past the frontier dropped.  Only meaningful once
   [finished]. *)
let runs t =
  match t.frontier with
  | None -> invalid_arg "Scheduler.runs: campaign not finished"
  | Some f ->
    List.init f (fun i ->
        match Hashtbl.find_opt t.completed (i + 1) with
        | Some r -> r
        | None -> invalid_arg "Scheduler.runs: campaign not finished")

let stats t =
  let frontier = match t.frontier with Some f -> f | None -> max_int in
  let reused =
    Hashtbl.fold
      (fun point () acc -> if point <= frontier then acc + 1 else acc)
      t.from_journal 0
  in
  let discarded =
    Hashtbl.fold
      (fun point _ acc ->
        if point > frontier && not (Hashtbl.mem t.from_journal point) then acc + 1
        else acc)
      t.completed 0
  in
  { executed = t.executed; reused; discarded; synthesized = t.adopted }

(* Progress snapshot: (recorded runs, runs that injected, needed total
   once the frontier is known). *)
let progress t =
  (Hashtbl.length t.completed, t.injected_runs, t.frontier)
