(* The parallel, resumable detection-campaign engine.

   Semantically this is exactly {!Detect.run}: execute the injector with
   InjectionPoint = 1, 2, 3, … until a run completes with no injection,
   then assemble the runs into a {!Detect.result}.  The difference is
   how the runs are executed:

   - {b Parallel}: every run gets a fresh VM and heap, so runs are
     independent by construction and are executed across [jobs] OCaml 5
     domains.  {!Scheduler} hands out thresholds speculatively (the
     stopping threshold is unknown upfront) and discards whatever was
     executed past the frontier, so the merged result — run records,
     order, injection count, transparency verdict — is identical to the
     sequential loop's.

   - {b Resumable}: with [~journal], every completed run is appended to
     an on-disk journal the moment it is recorded.  A killed campaign
     re-invoked with [~resume:true] adopts the journaled runs and only
     executes the missing thresholds.  The journal stores each run's
     output, so even the transparency check of a resumed campaign uses
     the genuine probe output.

   - {b Observable}: a [report] callback receives one event per state
     change; {!Progress.reporter} turns them into throughput/ETA lines
     and a final summary.

   Concurrent programs add a schedule axis, exactly as in {!Detect.run}:
   every spec in [config.schedules] gets its own complete campaign phase
   (own scheduler, own frontier, own per-schedule uninjected baseline),
   run one after the other — the parallelism lives inside a phase,
   across thresholds.  The journal holds all phases' runs mixed; on
   resume they are partitioned by each record's schedule spec
   ([Marks.sched], [None] meaning coop), so every phase adopts exactly
   its own prior work.

   Shared state during the parallel phase is the scheduler, the journal
   writer, and the busy-time accumulator, all guarded by one mutex;
   workers only hold it to claim and record, never while executing a
   run.  The analyzer, the profile and the compiled program image
   (weaving and closure compilation happen once per campaign, not once
   per run) are built on the spawning domain and shared read-only;
   every claimed threshold instantiates its own VM from the image. *)

open Failatom_core
open Failatom_runtime
open Failatom_minilang
module Obs = Failatom_obs.Obs

exception Campaign_error of string

exception Cancelled
(* The [cancel] callback returned [true]: workers stopped claiming and
   the campaign aborted after draining in-flight runs. *)

(* Campaign-level observability.  Counters mirror the scheduler stats
   (added once per campaign, so they aggregate across campaigns in one
   process); the queue-depth distribution samples how many claimed
   thresholds are in flight each time a worker claims, and worker_runs
   records how evenly the speculative scheduler spread work. *)
let m_executed = Obs.counter "campaign.runs_executed"
let m_reused = Obs.counter "campaign.runs_reused"
let m_discarded = Obs.counter "campaign.runs_discarded"

(* How often the plan's yield seeding paid off: first-visit
   representatives whose run produced at least one non-atomic mark.
   Those are exactly the runs the seeded order moves to the front, so a
   high hit count means a time-bounded campaign reaches its verdicts
   sooner. *)
let m_seed_order_hits = Obs.counter "campaign.seed_order_hits"

(* The campaign-side view of the same pruning census {!Detect.run}
   publishes; [Obs.counter] dedups by name, so both paths feed one
   counter.  Likewise [sched.schedules_explored], shared with the
   sequential driver's schedule axis. *)
let m_points_total = Obs.counter "detect.points_total"
let m_points_coalesced = Obs.counter "detect.points_coalesced"
let m_points_dropped = Obs.counter "detect.points_dropped"
let m_schedules = Obs.counter "sched.schedules_explored"
let g_workers = Obs.gauge "campaign.workers"
let h_queue_depth = Obs.histogram ~unit_:Obs.Items "campaign.queue_depth"
let h_worker_runs = Obs.histogram ~unit_:Obs.Items "campaign.worker_runs"

let default_jobs () = min 8 (max 1 (Domain.recommended_domain_count () - 1))

(* Identifies the program inside a journal so that a resume against a
   different program or flavor is rejected instead of silently merging
   unrelated runs.  Also the key of the server's content-addressed
   caches, hence the delegation to the single definition. *)
let program_digest = Minilang.program_digest

(* Which campaign phase a journaled run belongs to: records of non-coop
   schedules carry their spec; coop records carry none (so sequential
   journals stay byte-identical to the pre-scheduler format). *)
let spec_of_run (r : Marks.run_record) =
  match r.Marks.sched with None -> "coop" | Some s -> s.Marks.sched_spec

let load_journal ~warn ~path ~header:(expected : Journal.header) =
  match Journal.load ~warn ~path () with
  | None -> ([], Some (Journal.create ~path expected))
  | Some (found, runs) ->
    if not (String.equal found.Journal.flavor expected.Journal.flavor) then
      raise
        (Campaign_error
           (Printf.sprintf "journal %s was recorded with flavor %s, not %s" path
              found.Journal.flavor expected.Journal.flavor));
    if not (String.equal found.Journal.program_digest expected.Journal.program_digest)
    then
      raise
        (Campaign_error
           (Printf.sprintf "journal %s was recorded for a different program" path));
    (* Rewrite rather than append: this scrubs a truncated trailing
       block left by a kill mid-append, which would otherwise corrupt
       the grammar for the next resume. *)
    let w = Journal.create ~path expected in
    List.iter (Journal.append w) runs;
    (runs, Some w)
  | exception Run_log.Bad_log (msg, line) ->
    raise (Campaign_error (Printf.sprintf "corrupt journal %s: line %d: %s" path line msg))

let run ?(config = Config.default) ?(flavor = Detect.Source_weaving)
    ?(prepare = fun (_ : Vm.t) -> ()) ?plain ?compiled ?run_timeout_s
    ?(cancel = fun () -> false) ?jobs ?journal ?(resume = false)
    ?(report = Progress.null) (program : Ast.program) :
    Detect.result * Progress.summary =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  Obs.span "campaign.run" ~attrs:[ ("flavor", Detect.flavor_name flavor) ] @@ fun () ->
  Obs.set_gauge g_workers jobs;
  let t_start = Unix.gettimeofday () in
  (* One-time work, done on the spawning domain and shared read-only by
     every worker: the plain image backs the profile run (and the
     load-time-filter detection runs), the compiled image is what each
     claimed threshold instantiates — weaving and compilation happen
     once per campaign, not once per run.  Callers that already hold the
     images (the server's content-addressed cache) pass them in and skip
     even that. *)
  let plain = match plain with Some p -> p | None -> Compile.image program in
  (* The schedule axis mirrors {!Detect.run}: concurrent programs cross
     every configured schedule with the injection-point axis (pruning
     forced off — exception-flow pruning reasons about sequential
     control flow); sequential programs always run the single coop
     schedule, keeping their campaigns byte-identical to before. *)
  let concurrent = Minilang.uses_concurrency program in
  let config =
    if concurrent then { config with Config.prune = Config.Prune_off } else config
  in
  let schedules =
    if not concurrent then [ "coop" ]
    else match config.Config.schedules with [] -> [ "coop" ] | l -> l
  in
  let policies =
    List.map
      (fun spec ->
        match Sched.policy_of_string spec with
        | Some p -> (spec, p)
        | None ->
          raise (Detect.Detection_error ("unknown schedule spec: " ^ spec)))
      schedules
  in
  (* Pruning setup mirrors {!Detect.run}: the exception-flow analysis
     runs over the plain program; only drop filters the injectable
     sets (coalesce must keep the unpruned numbering). *)
  let flow =
    match config.Config.prune with
    | Config.Prune_off -> None
    | Config.Prune_drop | Config.Prune_coalesce ->
      Some (Exnflow.analyze plain program)
  in
  let analyzer =
    match config.Config.prune with
    | Config.Prune_drop -> Analyzer.analyze ?flow config program
    | Config.Prune_off | Config.Prune_coalesce -> Analyzer.analyze config program
  in
  (match config.Config.prune with
   | Config.Prune_drop ->
     let unfiltered = Analyzer.analyze config program in
     let dropped =
       List.fold_left
         (fun acc id ->
           acc
           + List.length (Analyzer.injectable_for unfiltered id)
           - List.length (Analyzer.injectable_for analyzer id))
         0 (Analyzer.method_ids unfiltered)
     in
     Obs.add m_points_dropped dropped
   | Config.Prune_off | Config.Prune_coalesce -> ());
  let profile = Profile.of_image ~prepare plain in
  let compiled =
    match compiled with Some c -> c | None -> Detect.compile ~plain flavor program
  in
  (* The coalesce trace run (threshold 0, never fires) takes the point
     census on the spawning domain; it doubles as the probe record.  A
     timed-out trace falls back to the exact speculative schedule.
     Coalesce implies sequential (concurrent programs force prune off),
     so the plan only ever feeds the single coop phase. *)
  let plan_and_probe =
    match (config.Config.prune, flow) with
    | Config.Prune_coalesce, Some flow -> (
      let trace_rec, extras =
        Detect.run_once_ext ?run_timeout_s ~trace:true compiled config analyzer
          ~prepare ~threshold:0
      in
      if trace_rec.Marks.timed_out then None
      else
        let plan = Prune.build flow ~entries:extras.Detect.entries in
        if plan.Prune.frontier > config.Config.max_runs then
          raise
            (Detect.Detection_error
               (Printf.sprintf "exceeded max_runs = %d injection runs"
                  config.Config.max_runs));
        Obs.add m_points_total plan.Prune.total_points;
        Obs.add m_points_coalesced (Prune.coalesced_away plan);
        Some
          (plan, { trace_rec with Marks.injection_point = plan.Prune.frontier }))
    | _ -> None
  in
  let header =
    { Journal.flavor = Detect.flavor_name flavor; program_digest = program_digest program }
  in
  let journaled, writer =
    match journal with
    | None ->
      if resume then raise (Campaign_error "cannot resume without a journal path");
      ([], None)
    | Some path ->
      if resume then
        load_journal ~warn:(fun msg -> report (Progress.Warning msg)) ~path ~header
      else ([], Some (Journal.create ~path header))
  in
  report (Progress.Started { workers = jobs; reused = List.length journaled });
  (* CPU seconds consumed by the whole process; the delta over the
     campaign is the work a single worker would have had to do
     back-to-back, so cpu/wall is the honest effective parallelism even
     when the machine has fewer cores than workers. *)
  let cpu_now () =
    let t = Unix.times () in
    t.Unix.tms_utime +. t.Unix.tms_stime
  in
  let cpu_start = cpu_now () in
  let total_executed = ref 0 in
  let total_reused = ref 0 in
  let total_discarded = ref 0 in
  let total_synthesized = ref 0 in
  (* One complete campaign — own scheduler, own frontier, own worker
     domains — for one schedule.  Returns the merged frontier-truncated
     run list and the phase's transparency verdict against its own
     uninjected baseline. *)
  let run_phase ((spec, policy) as schedule) =
    Obs.span "detect.schedule" ~attrs:[ ("schedule", spec) ] @@ fun () ->
    Obs.incr m_schedules;
    let journaled_here =
      List.filter (fun r -> String.equal (spec_of_run r) spec) journaled
    in
    let sched =
      Scheduler.create ~journaled:journaled_here
        ?plan:(Option.map fst plan_and_probe)
        ~max_runs:config.Config.max_runs ~jobs ()
    in
    (match plan_and_probe with
     | Some (_, probe) ->
       (* The trace run is the probe run (neither fires, and a
          never-firing run's behaviour does not depend on the armed
          threshold), so no worker ever claims the frontier. *)
       Scheduler.adopt sched probe;
       let already =
         List.exists
           (fun r -> r.Marks.injection_point = probe.Marks.injection_point)
           journaled_here
       in
       (match writer with
        | Some w when not already -> Journal.append w probe
        | Some _ | None -> ())
     | None -> ());
    let mutex = Mutex.create () in
    let cond = Condition.create () in
    let failure : exn option ref = ref None in
    (* Called with the mutex held, after each recorded run. *)
    let tick () =
      let completed, injections, needed = Scheduler.progress sched in
      let elapsed = Unix.gettimeofday () -. t_start in
      let executed = (Scheduler.stats sched).Scheduler.executed in
      let rate = if elapsed > 0. then float_of_int executed /. elapsed else 0. in
      let eta_s =
        match needed with
        | Some n when rate > 0. -> Some (float_of_int (n - completed) /. rate)
        | Some _ | None -> None
      in
      report (Progress.Tick { completed; needed; injections; elapsed_s = elapsed; rate; eta_s })
    in
    (* Claimed-but-unrecorded thresholds, i.e. runs in flight.  Guarded by
       [mutex], like everything the workers share. *)
    let in_flight = ref 0 in
    let worker () =
      Mutex.lock mutex;
      let executed_here = ref 0 in
      let rec loop () =
        if Option.is_some !failure then ()
        else if cancel () then begin
          (* Stop claiming; runs already in flight on other workers drain
             first (each bounded by [run_timeout_s] if set), so
             cancellation latency is at most one run. *)
          failure := Some Cancelled;
          Condition.broadcast cond
        end
        else
          match Scheduler.claim sched with
          | Scheduler.Done -> ()
          | Scheduler.Exhausted ->
            failure :=
              Some
                (Detect.Detection_error
                   (Printf.sprintf "exceeded max_runs = %d injection runs"
                      config.Config.max_runs));
            Condition.broadcast cond
          | Scheduler.Wait ->
            Condition.wait cond mutex;
            loop ()
          | Scheduler.Claimed threshold -> (
            incr in_flight;
            Obs.observe h_queue_depth !in_flight;
            Mutex.unlock mutex;
            let outcome =
              try
                Ok
                  (Detect.run_once ?run_timeout_s ~schedule compiled config
                     analyzer ~prepare ~threshold)
              with e -> Error e
            in
            Mutex.lock mutex;
            decr in_flight;
            incr executed_here;
            match outcome with
            | Ok record ->
              ignore (Scheduler.record sched record);
              (match writer with Some w -> Journal.append w record | None -> ());
              tick ();
              Condition.broadcast cond;
              loop ()
            | Error e ->
              if Option.is_none !failure then failure := Some e;
              Condition.broadcast cond)
          | Scheduler.Claimed_group g -> (
            incr in_flight;
            Obs.observe h_queue_depth !in_flight;
            Mutex.unlock mutex;
            let outcome =
              try
                let rep_t, _ = Prune.rep g in
                let rep_record, ex =
                  Detect.run_once_ext ?run_timeout_s compiled config analyzer
                    ~prepare ~threshold:rep_t
                in
                let members =
                  if rep_record.Marks.timed_out then
                    (* Wall-clock aborts are not bisimilar across class
                       tags: execute the members for real. *)
                    List.map
                      (fun (t, _) ->
                        `Executed
                          (Detect.run_once ?run_timeout_s compiled config
                             analyzer ~prepare ~threshold:t))
                      (List.tl g.Prune.members)
                  else
                    List.map
                      (fun r -> `Synthesized r)
                      (Prune.synthesize g ~rep_record
                         ~injected_escaped:ex.Detect.injected_escaped)
                in
                Ok (rep_record, members)
              with e -> Error e
            in
            Mutex.lock mutex;
            decr in_flight;
            incr executed_here;
            match outcome with
            | Ok (rep_record, members) ->
              ignore (Scheduler.record sched rep_record);
              (match writer with Some w -> Journal.append w rep_record | None -> ());
              if
                g.Prune.first_visit
                && List.exists
                     (fun (m : Marks.mark) -> not m.Marks.atomic)
                     rep_record.Marks.marks
              then Obs.incr m_seed_order_hits;
              List.iter
                (fun m ->
                  let r =
                    match m with
                    | `Executed r ->
                      ignore (Scheduler.record sched r);
                      r
                    | `Synthesized r ->
                      Scheduler.adopt sched r;
                      r
                  in
                  match writer with Some w -> Journal.append w r | None -> ())
                members;
              tick ();
              Condition.broadcast cond;
              loop ()
            | Error e ->
              if Option.is_none !failure then failure := Some e;
              Condition.broadcast cond)
      in
      loop ();
      Obs.observe h_worker_runs !executed_here;
      Mutex.unlock mutex
    in
    if not (Scheduler.finished sched) then begin
      let domains = List.init jobs (fun _ -> Domain.spawn worker) in
      List.iter Domain.join domains
    end;
    (match !failure with Some e -> raise e | None -> ());
    let runs = Scheduler.runs sched in
    let stats = Scheduler.stats sched in
    total_executed := !total_executed + stats.Scheduler.executed;
    total_reused := !total_reused + stats.Scheduler.reused;
    total_discarded := !total_discarded + stats.Scheduler.discarded;
    total_synthesized := !total_synthesized + stats.Scheduler.synthesized;
    (* The frontier run is the no-injection probe; its output against
       this schedule's own uninjected baseline is the paper's
       transparency check, exactly as in [Detect.run]. *)
    let baseline_output =
      match policy with
      | Sched.Coop -> profile.Profile.output
      | Sched.Slice _ | Sched.Pct _ -> Detect.baseline_under plain ~prepare policy
    in
    let probe = List.nth runs (List.length runs - 1) in
    (runs, String.equal probe.Marks.output baseline_output)
  in
  let phases =
    Fun.protect
      ~finally:(fun () -> match writer with Some w -> Journal.close w | None -> ())
      (fun () -> List.map run_phase policies)
  in
  let runs = List.concat_map fst phases in
  let transparent = List.for_all snd phases in
  Obs.add m_executed !total_executed;
  Obs.add m_reused !total_reused;
  Obs.add m_discarded !total_discarded;
  (* Without a plan (off, drop, or the timed-out-trace fallback) every
     reached point got its own run; the coalesce path published the
     plan's census upfront.  One never-injecting probe per phase. *)
  let probes = List.length policies in
  if Option.is_none plan_and_probe then
    Obs.add m_points_total (List.length runs - probes);
  let result =
    { Detect.flavor;
      config;
      analyzer;
      profile;
      runs;
      injections = List.length runs - probes;
      transparent }
  in
  let summary =
    { Progress.total_runs = List.length runs;
      injections = result.Detect.injections;
      executed = !total_executed;
      reused = !total_reused;
      discarded = !total_discarded;
      synthesized = !total_synthesized;
      workers = jobs;
      wall_clock_s = Unix.gettimeofday () -. t_start;
      busy_s = cpu_now () -. cpu_start }
  in
  report (Progress.Finished summary);
  (result, summary)
