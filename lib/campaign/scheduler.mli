(** Speculative batch scheduling of injection thresholds.

    The sequential detection loop stops at the first run that completes
    with no injection — the {e frontier}.  A parallel campaign cannot
    know the frontier upfront, so this scheduler speculates: it hands
    out thresholds up to a doubling {e horizon} and discards completed
    runs that land past the frontier once it is found.  Runs are
    deterministic and independent, so the merged, frontier-truncated run
    list is identical to what the sequential loop produces.

    The scheduler is plain single-threaded state; {!Campaign} serialises
    access to it with a mutex. *)

open Failatom_core

type claim =
  | Claimed of int  (** execute this threshold *)
  | Claimed_group of Prune.group
      (** coalesce plan: execute the group's representative threshold,
          then synthesize (or, on a timeout, execute) the members *)
  | Wait  (** nothing useful below the horizon; block until a record *)
  | Done  (** every needed threshold is claimed or complete *)
  | Exhausted  (** [max_runs] runs completed and none was injection-free *)

type stats = {
  executed : int;  (** runs completed by workers in this invocation *)
  reused : int;  (** journaled runs adopted without re-execution *)
  discarded : int;  (** speculative runs recorded past the frontier *)
  synthesized : int;
      (** records filed by {!adopt} that no worker executed: coalesced
          group members and the trace run's probe *)
}

type t

val create :
  ?journaled:Marks.run_record list -> ?plan:Prune.plan -> max_runs:int ->
  jobs:int -> unit -> t
(** [journaled] pre-files runs loaded from a resume journal: their
    thresholds are never handed out again.  With [plan] (the coalesce
    pruning plan) the frontier is known upfront and {!claim} hands out
    whole blindness groups in the plan's seeded order instead of
    speculating on individual thresholds; a group is skipped only when
    {e every} member is already on file, so a resumed campaign with a
    partially-synthesized group re-executes its representative. *)

val claim : t -> claim
val record : t -> Marks.run_record -> [ `Kept | `Speculative ]

val adopt : t -> Marks.run_record -> unit
(** Files a record that no worker executed — a synthesized coalesce
    member or the retagged probe of the trace run.  No
    executed/reused/discarded accounting, no effect if the threshold is
    already on file. *)

val frontier : t -> int option
(** The least recorded threshold whose run did not inject, if any. *)

val finished : t -> bool
(** Every threshold up to the frontier has been recorded. *)

val runs : t -> Marks.run_record list
(** The merged result: thresholds [1 .. frontier] in order, speculative
    over-run discarded.  @raise Invalid_argument unless {!finished}. *)

val stats : t -> stats

val progress : t -> int * int * int option
(** [(recorded, injected, needed)]: runs recorded so far, how many of
    them fired an injection, and the total needed once the frontier is
    known. *)
