(* The append-only campaign journal.

   A campaign writes each completed run to disk the moment it is
   recorded, so a killed campaign resumes from where it left off instead
   of restarting at threshold 1.  The file is the {!Run_log} line
   grammar with a campaign header and, per run, an [output] record (the
   probe run's output feeds the transparency check, and persisting every
   run's output keeps a resumed result bitwise-identical to an
   uninterrupted one):

     failjournal 1
     flavor <name>
     program <md5-hex of the pretty-printed program>
     run <injection_point> ... output <escaped> ... endrun   (repeated)

   Run blocks appear in completion order, which under parallel workers
   is not threshold order; the loader returns them as parsed and the
   scheduler re-files them by threshold.  A writer killed mid-append
   leaves a truncated trailing block, which the loader silently drops —
   that run is simply re-executed on resume. *)

open Failatom_core

type header = {
  flavor : string;
  program_digest : string;  (* md5 hex of the pretty-printed program *)
}

type writer = { oc : out_channel }

let load ?(warn = fun (_ : string) -> ()) ~path () :
    (header * Marks.run_record list) option =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (* A writer killed mid-[output_string] (before the flush+fsync
       completed) leaves a torn final line — not even a whole record.
       Truncate back to the last complete line so the parser sees only
       whole records; [tolerate_partial_tail] below then drops any
       whole-but-unterminated trailing run block. *)
    let text =
      let n = String.length text in
      if n = 0 || text.[n - 1] = '\n' then text
      else begin
        warn
          (Printf.sprintf "journal %s: torn final line truncated on resume" path);
        match String.rindex_opt text '\n' with
        | Some i -> String.sub text 0 (i + 1)
        | None -> ""
      end
    in
    let flavor = ref "unknown" in
    let digest = ref "" in
    let on_extra lineno = function
      | [ "failjournal"; "1" ] -> ()
      | [ "failjournal"; v ] ->
        raise (Run_log.Bad_log ("unsupported journal version " ^ v, lineno))
      | [ "flavor"; name ] -> flavor := name
      | [ "program"; d ] -> digest := d
      | parts ->
        raise (Run_log.Bad_log ("unrecognized record: " ^ String.concat " " parts, lineno))
    in
    let runs = Run_log.parse_runs ~tolerate_partial_tail:true ~on_extra text in
    Some ({ flavor = !flavor; program_digest = !digest }, runs)
  end

let create ~path header =
  let oc = open_out_bin path in
  output_string oc "failjournal 1\n";
  output_string oc (Printf.sprintf "flavor %s\n" header.flavor);
  output_string oc (Printf.sprintf "program %s\n" header.program_digest);
  flush oc;
  { oc }

(* One run block, flushed and fsynced immediately: the journal must
   reflect every completed run even if the campaign process — or the
   machine — dies right after.  The fsync makes each record durable, not
   merely handed to the kernel. *)
let append w (r : Marks.run_record) =
  let buf = Buffer.create 256 in
  Run_log.save_run ~with_output:true buf r;
  output_string w.oc (Buffer.contents buf);
  flush w.oc;
  Unix.fsync (Unix.descr_of_out_channel w.oc)

let close w = close_out w.oc
