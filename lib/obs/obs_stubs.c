/* Monotonic clock for span timings.
 *
 * Returned as a tagged OCaml int: 2^62 nanoseconds is ~146 years of
 * monotonic uptime, so the value always fits and the primitive stays
 * allocation-free ([@@noalloc], no int64 boxing on the span path). */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value obs_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
