(** Low-overhead metrics and span tracing.

    One global registry of named counters, gauges and histograms, all
    backed by [Atomic.t] cells so campaign workers on separate OCaml 5
    domains aggregate without locks on the record path.  Every
    recording operation is a no-op until {!set_enabled}[ true]; the
    canonical metric names are documented in doc/architecture.md.

    Span timings ({!span}, {!timed}) read a monotonic clock (C stub,
    nanoseconds as a tagged int — no allocation) and feed a log2-bucket
    histogram per span name, from which {!snapshot} derives p50/p99.

    The snapshot side is pure data: {!snap} values render to the stable
    [failatom.metrics/1] JSON schema ({!to_json}), parse back
    ({!parse_json}), and print as the per-phase table behind
    [failatom stats] ({!pp_table}). *)

external now_ns : unit -> int = "obs_now_ns" [@@noalloc]
(** Monotonic clock, nanoseconds.  Fits a tagged int for ~146 years of
    uptime. *)

(** {1 Enablement} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Runs [f] with the flag set, restoring the previous state after. *)

(** {1 Metrics} *)

type counter
type gauge
type histogram

type unit_kind =
  | Ns  (** durations in nanoseconds; rendered as human time *)
  | Items  (** plain magnitudes: sizes, depths, counts-per-run *)

val counter : string -> counter
(** The counter registered under [name], created on first use.
    Creation is memoized and domain-safe. *)

val gauge : string -> gauge
val histogram : ?unit_:unit_kind -> string -> histogram

val add : counter -> int -> unit
val incr : counter -> unit
val set_gauge : gauge -> int -> unit

val gauge_to_max : gauge -> int -> unit
(** Raises the gauge to [v] if larger (high-water mark). *)

val observe : histogram -> int -> unit

val timed : histogram -> (unit -> 'a) -> 'a
(** Runs [f], recording its wall-clock duration (ns) into the
    histogram — even when [f] raises. *)

val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span "detect.run_once" ~attrs f]: {!timed} against the
    [Ns]-histogram registered under the span name; [attrs] are
    informational labels stored with the metric (last span wins). *)

val counter_value : counter -> int
val gauge_value : gauge -> int
val histogram_count : histogram -> int

val reset : unit -> unit
(** Zeroes every registered metric (registrations are kept, so metric
    handles created at module initialization stay valid). *)

(** {1 Snapshots and interchange} *)

type hist_snap = {
  hs_unit : string;  (** "ns" or "items" *)
  hs_count : int;
  hs_sum : int;
  hs_min : int;  (** 0 when empty *)
  hs_max : int;
  hs_p50 : int;  (** bucket-midpoint estimate, clamped to [min, max] *)
  hs_p99 : int;
  hs_attrs : (string * string) list;
}

type snap = {
  s_counters : (string * int) list;  (** sorted by name *)
  s_gauges : (string * int) list;
  s_histograms : (string * hist_snap) list;
}

val snapshot : unit -> snap
(** Captures every registered metric.  Values are read without stopping
    writers, so a snapshot taken mid-campaign is approximate; taken
    after a campaign completes it is exact. *)

val merge : snap list -> snap
(** Combines snapshots from several processes (the cluster router
    aggregating its shards): counters and gauges sum; histogram
    count/sum/min/max combine exactly, quantiles are estimated as the
    count-weighted mean of the inputs' quantiles. *)

val schema_id : string
(** ["failatom.metrics/1"] *)

exception Parse_error of string

val to_json : snap -> string
(** Renders the stable interchange schema: [{"schema":
    "failatom.metrics/1", "counters": {..}, "gauges": {..},
    "histograms": {name: {unit, count, sum, min, max, mean, p50, p99,
    attrs}}}].  Deterministic: entries are sorted by name. *)

val parse_json : string -> snap
(** Inverse of {!to_json} (the derived "mean" field is recomputed, not
    stored).  @raise Parse_error on malformed input or schema
    mismatch. *)

val pp_table : Format.formatter -> snap -> unit
(** The per-phase table rendered by [failatom stats]: metrics grouped
    by name prefix (compile, vm, heap, detect, campaign, then others),
    with count/total/mean/p50/p99/max per histogram. *)
