(* Low-overhead metrics and span tracing for the failatom stack.

   Design constraints, in order:

   1. {b Zero cost when disabled.}  Every recording operation first
      reads one atomic flag; the interpreter's true hot path (per-step
      [Vm.tick]) never calls into this module at all — subsystems keep
      counting in their existing per-VM mutable fields and {e harvest}
      them into the registry at run boundaries ([Compile.run_main]).

   2. {b Domain-safe without locks on the record path.}  Counters,
      gauges and histogram cells are [Atomic.t]; campaign workers on
      separate domains aggregate with lock-free fetch-and-add.  The
      registry mutex guards only metric {e creation} and snapshotting,
      never a hot increment.

   3. {b One registry, stable names.}  Metrics are created (and
      memoized) by name; the full name set is documented in
      doc/architecture.md.  [snapshot] captures everything at once and
      [to_json]/[parse_json] pin a stable interchange schema
      ([failatom.metrics/1]) consumed by [failatom stats] and CI.

   Span timings use a monotonic clock (CLOCK_MONOTONIC via a C stub
   returning tagged-int nanoseconds, so reading the clock does not
   allocate). *)

external now_ns : unit -> int = "obs_now_ns" [@@noalloc]

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let with_enabled b f =
  let prev = enabled () in
  set_enabled b;
  Fun.protect ~finally:(fun () -> set_enabled prev) f

(* ------------------------------------------------------------------ *)
(* Metric cells                                                        *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : int Atomic.t }

type unit_kind = Ns | Items

let unit_name = function Ns -> "ns" | Items -> "items"

(* Log2-bucketed histogram: bucket [b] holds values whose bit width is
   [b] (0 for the value 0), i.e. the range [2^(b-1), 2^b).  Power-of-two
   resolution is coarse but lock-free and enough for p50/p99 of span
   durations and dirty-set sizes. *)
let n_buckets = 64

type histogram = {
  h_name : string;
  h_unit : unit_kind;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_min : int Atomic.t; (* max_int while empty *)
  h_max : int Atomic.t; (* min_int while empty *)
  h_buckets : int Atomic.t array;
  mutable h_attrs : (string * string) list;
      (* informational labels from the last span carrying ~attrs; a
         racy replace is benign (whole-list writes, last wins) *)
}

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 8
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_value = Atomic.make 0 } in
        Hashtbl.replace counters name c;
        c)

let gauge name =
  with_registry (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
        let g = { g_name = name; g_value = Atomic.make 0 } in
        Hashtbl.replace gauges name g;
        g)

let histogram ?(unit_ = Items) name =
  with_registry (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h =
          { h_name = name;
            h_unit = unit_;
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0;
            h_min = Atomic.make max_int;
            h_max = Atomic.make min_int;
            h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
            h_attrs = [] }
        in
        Hashtbl.replace histograms name h;
        h)

let span_histogram name = histogram ~unit_:Ns name

(* ------------------------------------------------------------------ *)
(* Recording (every operation is a no-op while disabled)               *)
(* ------------------------------------------------------------------ *)

let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_value n)
let incr c = add c 1

let set_gauge g v = if Atomic.get enabled_flag then Atomic.set g.g_value v

(* Monotone max: used for high-water marks. *)
let rec cas_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then cas_max cell v

let rec cas_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then cas_min cell v

let gauge_to_max g v = if Atomic.get enabled_flag then cas_max g.g_value v

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v <> 0 do
      Stdlib.incr b;
      v := !v lsr 1
    done;
    !b
  end

let observe h v =
  if Atomic.get enabled_flag then begin
    ignore (Atomic.fetch_and_add h.h_count 1);
    ignore (Atomic.fetch_and_add h.h_sum v);
    cas_min h.h_min v;
    cas_max h.h_max v;
    ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1)
  end

let timed h f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> observe h (now_ns () - t0)) f
  end

let span ?attrs name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let h = span_histogram name in
    (match attrs with Some a -> h.h_attrs <- a | None -> ());
    timed h f
  end

(* ------------------------------------------------------------------ *)
(* Values and reset                                                    *)
(* ------------------------------------------------------------------ *)

let counter_value c = Atomic.get c.c_value
let gauge_value g = Atomic.get g.g_value
let histogram_count h = Atomic.get h.h_count

let reset () =
  with_registry (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_value 0) gauges;
      Hashtbl.iter
        (fun _ h ->
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0;
          Atomic.set h.h_min max_int;
          Atomic.set h.h_max min_int;
          Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
          h.h_attrs <- [])
        histograms)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snap = {
  hs_unit : string;
  hs_count : int;
  hs_sum : int;
  hs_min : int; (* 0 when empty *)
  hs_max : int;
  hs_p50 : int;
  hs_p99 : int;
  hs_attrs : (string * string) list;
}

type snap = {
  s_counters : (string * int) list; (* sorted by name *)
  s_gauges : (string * int) list;
  s_histograms : (string * hist_snap) list;
}

(* Representative value of bucket [b]: the midpoint of [2^(b-1), 2^b),
   clamped into the observed [min, max] so estimates never exceed the
   recorded extremes. *)
let bucket_rep ~min_v ~max_v b =
  let rep = if b = 0 then 0 else (1 lsl (b - 1)) + ((1 lsl (b - 1)) lsr 1) in
  Stdlib.min max_v (Stdlib.max min_v rep)

let quantile ~min_v ~max_v buckets total q =
  if total = 0 then 0
  else begin
    let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let acc = ref 0 and result = ref max_v in
    (try
       Array.iteri
         (fun b n ->
           acc := !acc + n;
           if !acc >= rank then begin
             result := bucket_rep ~min_v ~max_v b;
             raise Exit
           end)
         buckets
     with Exit -> ());
    !result
  end

let hist_snap_of h =
  let count = Atomic.get h.h_count in
  let buckets = Array.map Atomic.get h.h_buckets in
  let min_v = if count = 0 then 0 else Atomic.get h.h_min in
  let max_v = if count = 0 then 0 else Atomic.get h.h_max in
  { hs_unit = unit_name h.h_unit;
    hs_count = count;
    hs_sum = Atomic.get h.h_sum;
    hs_min = min_v;
    hs_max = max_v;
    hs_p50 = quantile ~min_v ~max_v buckets count 0.50;
    hs_p99 = quantile ~min_v ~max_v buckets count 0.99;
    hs_attrs = h.h_attrs }

let sorted_bindings tbl value =
  with_registry (fun () -> Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  { s_counters = sorted_bindings counters (fun c -> Atomic.get c.c_value);
    s_gauges = sorted_bindings gauges (fun g -> Atomic.get g.g_value);
    s_histograms = sorted_bindings histograms hist_snap_of }

(* Merging snapshots from several processes (the cluster router
   aggregating its shards): counters and gauges sum; histograms combine
   exactly for count/sum/min/max, while the quantiles — which cannot be
   recovered from per-process summaries — are estimated as the
   count-weighted mean of the per-process quantiles. *)
let merge snaps =
  let merged_assoc combine lists =
    let tbl = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (List.iter (fun (k, v) ->
           match Hashtbl.find_opt tbl k with
           | None ->
             Hashtbl.replace tbl k v;
             order := k :: !order
           | Some prev -> Hashtbl.replace tbl k (combine prev v)))
      lists;
    List.sort String.compare !order
    |> List.map (fun k -> (k, Hashtbl.find tbl k))
  in
  let combine_hist a b =
    if a.hs_count = 0 then b
    else if b.hs_count = 0 then a
    else
      let count = a.hs_count + b.hs_count in
      let weighted qa qb =
        (qa * a.hs_count + qb * b.hs_count) / count
      in
      { hs_unit = a.hs_unit;
        hs_count = count;
        hs_sum = a.hs_sum + b.hs_sum;
        hs_min = Stdlib.min a.hs_min b.hs_min;
        hs_max = Stdlib.max a.hs_max b.hs_max;
        hs_p50 = weighted a.hs_p50 b.hs_p50;
        hs_p99 = weighted a.hs_p99 b.hs_p99;
        hs_attrs = (if a.hs_attrs = [] then b.hs_attrs else a.hs_attrs) }
  in
  { s_counters = merged_assoc ( + ) (List.map (fun s -> s.s_counters) snaps);
    s_gauges = merged_assoc ( + ) (List.map (fun s -> s.s_gauges) snaps);
    s_histograms =
      merged_assoc combine_hist (List.map (fun s -> s.s_histograms) snaps) }

(* ------------------------------------------------------------------ *)
(* JSON interchange (schema failatom.metrics/1)                        *)
(* ------------------------------------------------------------------ *)

let schema_id = "failatom.metrics/1"

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json snap =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let int_section name entries =
    out "  \"%s\": {" name;
    List.iteri
      (fun i (k, v) ->
        out "%s\n    \"%s\": %d" (if i = 0 then "" else ",") (json_escape k) v)
      entries;
    out "%s}" (if entries = [] then "" else "\n  ")
  in
  out "{\n";
  out "  \"schema\": \"%s\",\n" schema_id;
  int_section "counters" snap.s_counters;
  out ",\n";
  int_section "gauges" snap.s_gauges;
  out ",\n";
  out "  \"histograms\": {";
  List.iteri
    (fun i (k, h) ->
      out "%s\n    \"%s\": {\"unit\": \"%s\", \"count\": %d, \"sum\": %d, \
           \"min\": %d, \"max\": %d, \"mean\": %.3f, \"p50\": %d, \"p99\": %d, \
           \"attrs\": {"
        (if i = 0 then "" else ",")
        (json_escape k) (json_escape h.hs_unit) h.hs_count h.hs_sum h.hs_min
        h.hs_max
        (if h.hs_count = 0 then 0.0
         else float_of_int h.hs_sum /. float_of_int h.hs_count)
        h.hs_p50 h.hs_p99;
      List.iteri
        (fun j (ak, av) ->
          out "%s\"%s\": \"%s\"" (if j = 0 then "" else ", ") (json_escape ak)
            (json_escape av))
        h.hs_attrs;
      out "}}")
    snap.s_histograms;
  out "%s}\n" (if snap.s_histograms = [] then "" else "\n  ");
  out "}\n";
  Buffer.contents buf

(* --- minimal JSON reader, just enough for the schema above --------- *)

exception Parse_error of string

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

let parse_json_value (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some ('"' | '\\' | '/') ->
          Buffer.add_char buf s.[!pos];
          advance ();
          go ()
        | Some 'u' ->
          if !pos + 4 >= n then fail "bad \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          (match int_of_string_opt ("0x" ^ hex) with
           | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
           | Some _ -> Buffer.add_char buf '?' (* non-ASCII: not produced by us *)
           | None -> fail "bad \\u escape");
          pos := !pos + 5;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Jobj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jarr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Jarr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field name = function
  | Jobj fields -> List.assoc_opt name fields
  | _ -> None

let as_int name = function
  | Some (Jnum f) -> int_of_float f
  | _ -> raise (Parse_error (Printf.sprintf "missing integer field %S" name))

let as_str name = function
  | Some (Jstr s) -> s
  | _ -> raise (Parse_error (Printf.sprintf "missing string field %S" name))

let int_bindings section = function
  | Some (Jobj fields) ->
    List.map
      (fun (k, v) ->
        match v with
        | Jnum f -> (k, int_of_float f)
        | _ -> raise (Parse_error (Printf.sprintf "non-integer entry in %S" section)))
      fields
  | _ -> raise (Parse_error (Printf.sprintf "missing section %S" section))

let parse_json (text : string) : snap =
  let root = parse_json_value text in
  (match obj_field "schema" root with
   | Some (Jstr s) when s = schema_id -> ()
   | Some (Jstr s) ->
     raise (Parse_error (Printf.sprintf "unsupported schema %S (want %S)" s schema_id))
   | _ -> raise (Parse_error "missing \"schema\" field"));
  let hist_of j =
    { hs_unit = as_str "unit" (obj_field "unit" j);
      hs_count = as_int "count" (obj_field "count" j);
      hs_sum = as_int "sum" (obj_field "sum" j);
      hs_min = as_int "min" (obj_field "min" j);
      hs_max = as_int "max" (obj_field "max" j);
      hs_p50 = as_int "p50" (obj_field "p50" j);
      hs_p99 = as_int "p99" (obj_field "p99" j);
      hs_attrs =
        (match obj_field "attrs" j with
         | Some (Jobj fields) ->
           List.map
             (fun (k, v) ->
               match v with
               | Jstr s -> (k, s)
               | _ -> raise (Parse_error "non-string attr"))
             fields
         | _ -> []) }
  in
  { s_counters = int_bindings "counters" (obj_field "counters" root);
    s_gauges = int_bindings "gauges" (obj_field "gauges" root);
    s_histograms =
      (match obj_field "histograms" root with
       | Some (Jobj fields) -> List.map (fun (k, v) -> (k, hist_of v)) fields
       | _ -> raise (Parse_error "missing section \"histograms\"")) }

(* ------------------------------------------------------------------ *)
(* Per-phase table rendering (the failatom stats view)                 *)
(* ------------------------------------------------------------------ *)

let phase_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

(* Pipeline order, so the table reads top-to-bottom the way a campaign
   runs; unknown phases sort after these, alphabetically. *)
let phase_rank = [ "compile"; "vm"; "heap"; "detect"; "campaign"; "server" ]

let compare_phase a b =
  let rank p =
    let rec idx i = function
      | [] -> List.length phase_rank
      | p' :: rest -> if String.equal p p' then i else idx (i + 1) rest
    in
    idx 0 phase_rank
  in
  match compare (rank a) (rank b) with 0 -> String.compare a b | c -> c

let fmt_ns ns =
  let f = float_of_int ns in
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (f /. 1e3)
  else if ns < 1_000_000_000 then Printf.sprintf "%.1fms" (f /. 1e6)
  else Printf.sprintf "%.2fs" (f /. 1e9)

let fmt_value ~unit_ v = if String.equal unit_ "ns" then fmt_ns v else string_of_int v

let pp_table ppf snap =
  let phases = Hashtbl.create 8 in
  let push name line =
    let phase = phase_of name in
    let existing = try Hashtbl.find phases phase with Not_found -> [] in
    Hashtbl.replace phases phase ((name, line) :: existing)
  in
  List.iter
    (fun (name, v) -> push name (Printf.sprintf "%-34s counter %14d" name v))
    snap.s_counters;
  List.iter
    (fun (name, v) -> push name (Printf.sprintf "%-34s gauge   %14d" name v))
    snap.s_gauges;
  List.iter
    (fun (name, h) ->
      let kind = if String.equal h.hs_unit "ns" then "span" else "dist" in
      let attrs =
        match h.hs_attrs with
        | [] -> ""
        | attrs ->
          Printf.sprintf "  {%s}"
            (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs))
      in
      let v = fmt_value ~unit_:h.hs_unit in
      let line =
        if h.hs_count = 0 then
          Printf.sprintf "%-34s %-7s count %8d%s" name kind 0 attrs
        else
          Printf.sprintf
            "%-34s %-7s count %8d  total %10s  mean %10s  p50 %10s  p99 %10s  \
             max %10s%s"
            name kind h.hs_count
            (if String.equal h.hs_unit "ns" then fmt_ns h.hs_sum
             else string_of_int h.hs_sum)
            (v (h.hs_sum / h.hs_count))
            (v h.hs_p50) (v h.hs_p99) (v h.hs_max) attrs
      in
      push name line)
    snap.s_histograms;
  let ordered =
    Hashtbl.fold (fun phase lines acc -> (phase, lines) :: acc) phases []
    |> List.sort (fun (a, _) (b, _) -> compare_phase a b)
  in
  if ordered = [] then Fmt.pf ppf "(no metrics recorded)@."
  else
    List.iter
      (fun (phase, lines) ->
        Fmt.pf ppf "== %s %s@." phase (String.make (max 1 (68 - String.length phase)) '=');
        List.iter
          (fun (_, line) -> Fmt.pf ppf "  %s@." line)
          (List.sort (fun (a, _) (b, _) -> String.compare a b) lines))
      ordered
