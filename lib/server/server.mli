(** The failatom daemon: detection as a long-running service over a
    Unix-domain socket, speaking {!Protocol} (NDJSON,
    [failatom.rpc/1]).

    One accept thread feeds per-connection protocol threads; [workers]
    executor threads pop submitted jobs off a bounded FIFO queue and
    run them through {!Failatom_campaign.Campaign.run} (a detect job is
    a one-worker campaign, so its result is bitwise-identical to
    {!Detect.run}).  Compiled images and finished results are memoized
    in the content-addressed {!Cache}: resubmitting a known job is
    answered at submit time, without recompiling or re-running
    anything.

    Admission control: a full queue rejects submissions;
    [job_timeout_s] bounds a job's wall-clock time on an executor;
    shutdown (request or SIGTERM/SIGINT) drains gracefully — queued
    jobs are cancelled, running jobs finish, journals are already
    fsynced per record. *)

type config = {
  socket_path : string;
  workers : int;  (** executor threads (default 2) *)
  max_queue : int;  (** admission bound on queued jobs (default 64) *)
  job_timeout_s : float option;  (** per-job wall-clock deadline *)
  run_timeout_s : float option;
      (** default per-run timeout for jobs that do not set one *)
  jobs_per_job : int;  (** clamp on a campaign request's worker domains *)
}

val default_config : socket_path:string -> config

type t

val start : ?cache:Cache.t -> config -> t
(** Binds the socket (replacing a stale file), spawns the accept and
    executor threads, enables metrics, and returns immediately.
    [?cache] lets the caller supply a pre-built (e.g. store-backed or
    prewarmed) cache; by default a fresh in-memory one is created.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val cache : t -> Cache.t

val shutdown : t -> unit
(** Initiates the graceful drain: stop accepting, cancel queued jobs,
    let running jobs finish.  Returns immediately; {!wait} blocks until
    the drain completes. *)

val wait : t -> unit
(** Joins the server threads, removes the socket file, and restores the
    metrics enablement state. *)

val run : ?cache:Cache.t -> config -> unit
(** [start] + SIGTERM/SIGINT handlers (which trigger {!shutdown}) +
    {!wait}: the body of [failatom serve]. *)
