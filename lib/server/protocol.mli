(** The versioned wire protocol of the failatom daemon:
    newline-delimited JSON over a Unix-domain socket.

    On connect the server sends {!greeting}; the client then sends one
    request object per line and reads one response per line — except
    [watch], which streams {!event} objects until a terminal event
    ([done], [error], [cancelled], [timeout]).  This module is purely
    the wire encoding; {!Server} and {!Client} both build on it. *)

open Failatom_core

val version : string
(** ["failatom.rpc/1"]. *)

val greeting : Json.t
(** The line the server sends on every fresh connection. *)

type mode = Detect | Campaign | Mask | Produce

val mode_name : mode -> string
val mode_of_name : string -> mode option

val flavor_of_name : string -> Detect.flavor option
(** ["source"] / ["binary"], the CLI convention. *)

val flavor_wire_name : Detect.flavor -> string

type program_spec =
  | App of string  (** a bundled registry application *)
  | Inline of string  (** full MiniLang source shipped in the request *)

type job_request = {
  mode : mode;
  program : program_spec;
  flavor : Detect.flavor option;
      (** [None]: the app's suite default, or source weaving for inline *)
  snapshot : Config.snapshot_mode;
  prune : Config.prune;
      (** campaign pruning mode; absent on the wire decodes as
          {!Config.Prune_off}, so older clients keep exact campaigns *)
  schedules : string list;
      (** schedule specs ({!Failatom_runtime.Sched.policy_of_string})
          crossed with the injection axis for concurrent programs;
          absent on the wire decodes as [[]], meaning the config default
          (coop only) — older clients keep sequential behaviour *)
  infer : bool;  (** infer_exception_free *)
  wrap_all : bool;  (** Wrap_all_non_atomic instead of Wrap_pure *)
  exception_free : string list;  (** ["Class.method"] *)
  do_not_wrap : string list;
  jobs : int option;  (** campaign worker domains; the server clamps *)
  run_timeout_s : float option;
  plan : string option;
      (** produce mode: [failatom.plan/1] JSON text; required there,
          absent on the wire for every other mode *)
  rollback : string option;  (** ["checkpoint"] / ["cow"]; [None] = checkpoint *)
  perturb_rate : int option;  (** canary rate per mille; [None]/[0] = off *)
  perturb_seed : int option;
  perturb_max : int option;  (** cap on total canary fires *)
  perturb_point : string option;  (** ["entry"] / ["exit"] *)
  times : int option;  (** production runs per job (default 1) *)
}

val default_request : mode -> program_spec -> job_request
(** All options at their defaults. *)

type request =
  | Submit of job_request
  | Status of string  (** job id *)
  | Watch of string
  | Cancel of string
  | Stats
  | Shutdown

type counts = { atomic : int; conditional : int; pure : int }

type summary = {
  workers : int;
  executed : int;
  reused : int;
  discarded : int;
  synthesized : int;
      (** coalesced records adopted without execution; absent on the
          wire from an older server decodes as [0] *)
  wall_s : float;
}

type job_result = {
  r_mode : mode;
  r_flavor : string;  (** wire flavor name *)
  r_injections : int;
  r_transparent : bool;
  r_non_atomic : (string * string) list;  (** method id, verdict name *)
  r_counts : counts;
  r_log : string;  (** full {!Run_log} text; [""] in mask mode *)
  r_wrapped : string list;  (** mask mode: wrapped method ids *)
  r_corrected : string option;  (** mask mode: corrected program source *)
  r_summary : summary option;  (** campaign execution statistics *)
  r_resilience : string option;
      (** produce mode: [failatom.resilience/1] scorecard JSON; absent
          on the wire from an older server decodes as [None] *)
}

type event =
  | Ev_state of string  (** "queued" | "running" *)
  | Ev_tick of { completed : int; needed : int option; injections : int }
  | Ev_warning of string
  | Ev_done of { result : job_result; cached : bool }
  | Ev_error of string
  | Ev_cancelled
  | Ev_timeout

(** {1 Encoding} *)

val request_to_json : request -> Json.t
val result_to_json : job_result -> Json.t
val event_to_json : event -> Json.t

val ok : (string * Json.t) list -> Json.t
(** [{"ok":true, ...fields}]. *)

val error : string -> Json.t
(** [{"ok":false,"error":msg}]. *)

(** {1 Decoding} — total; [Error] carries a human-readable reason *)

val request_of_json : Json.t -> (request, string) result
val result_of_json : Json.t -> (job_result, string) result
val event_of_json : Json.t -> (event, string) result
