(* The versioned wire protocol of the failatom daemon: newline-delimited
   JSON over a Unix-domain socket.

   On connect the server sends one greeting line identifying itself and
   the protocol revision; the client then sends one request object per
   line and reads one response object per line — except [watch], which
   streams event objects until a terminal event ([done], [error],
   [cancelled], [timeout]) closes the job's story.  Every response
   carries ["ok"]; failures are [{"ok":false,"error":...}].

   This module is purely the wire encoding: typed request/event/result
   values and their (total, error-returning) JSON conversions.  The
   server and client both build on it, so a field added here is
   understood by both ends or by neither. *)

open Failatom_core

let version = "failatom.rpc/1"

let greeting = Json.Obj [ ("server", Json.Str "failatom"); ("rpc", Json.Str version) ]

type mode = Detect | Campaign | Mask | Produce

let mode_name = function
  | Detect -> "detect"
  | Campaign -> "campaign"
  | Mask -> "mask"
  | Produce -> "produce"

let mode_of_name = function
  | "detect" -> Some Detect
  | "campaign" -> Some Campaign
  | "mask" -> Some Mask
  | "produce" -> Some Produce
  | _ -> None

(* CLI convention: "source" is the paper's C++ source-weaving flavor,
   "binary" its Java load-time-filter flavor. *)
let flavor_of_name = function
  | "source" -> Some Failatom_core.Detect.Source_weaving
  | "binary" -> Some Failatom_core.Detect.Load_time_filters
  | _ -> None

let flavor_wire_name = function
  | Detect.Source_weaving -> "source"
  | Detect.Load_time_filters -> "binary"

type program_spec =
  | App of string  (* a bundled registry application *)
  | Inline of string  (* full MiniLang source shipped in the request *)

type job_request = {
  mode : mode;
  program : program_spec;
  flavor : Detect.flavor option;
      (* None: the app's suite default, or source weaving for inline *)
  snapshot : Config.snapshot_mode;
  prune : Config.prune;  (* campaign pruning; absent on the wire = off *)
  schedules : string list;
      (* schedule specs crossed with the injection axis for concurrent
         programs; absent on the wire = [] = the config default (coop
         only), so older clients keep their sequential behaviour *)
  infer : bool;  (* infer_exception_free *)
  wrap_all : bool;  (* Wrap_all_non_atomic instead of Wrap_pure *)
  exception_free : string list;  (* "Class.method" *)
  do_not_wrap : string list;
  jobs : int option;  (* campaign worker domains; server clamps *)
  run_timeout_s : float option;
  (* production (produce-mode) parameters; all absent on the wire for
     the other modes, so older peers interoperate unchanged *)
  plan : string option;  (* failatom.plan/1 JSON text *)
  rollback : string option;  (* "checkpoint" | "cow"; None = checkpoint *)
  perturb_rate : int option;  (* canary rate per mille; None/0 = off *)
  perturb_seed : int option;
  perturb_max : int option;
  perturb_point : string option;  (* "entry" | "exit" *)
  times : int option;  (* production runs per job *)
}

let default_request mode program =
  { mode;
    program;
    flavor = None;
    snapshot = Config.Snapshot_eager;
    prune = Config.Prune_off;
    schedules = [];
    infer = false;
    wrap_all = false;
    exception_free = [];
    do_not_wrap = [];
    jobs = None;
    run_timeout_s = None;
    plan = None;
    rollback = None;
    perturb_rate = None;
    perturb_seed = None;
    perturb_max = None;
    perturb_point = None;
    times = None }

type request =
  | Submit of job_request
  | Status of string  (* job id *)
  | Watch of string
  | Cancel of string
  | Stats
  | Shutdown

type counts = { atomic : int; conditional : int; pure : int }

type summary = {
  workers : int;
  executed : int;
  reused : int;
  discarded : int;
  synthesized : int;
  wall_s : float;
}

type job_result = {
  r_mode : mode;
  r_flavor : string;  (* wire flavor name *)
  r_injections : int;
  r_transparent : bool;
  r_non_atomic : (string * string) list;  (* method id, verdict name *)
  r_counts : counts;
  r_log : string;  (* full Run_log text; "" in mask mode *)
  r_wrapped : string list;  (* mask mode: wrapped method ids *)
  r_corrected : string option;  (* mask mode: corrected program source *)
  r_summary : summary option;  (* campaign execution statistics *)
  r_resilience : string option;
      (* produce mode: failatom.resilience/1 scorecard JSON *)
}

type event =
  | Ev_state of string  (* "queued" | "running" *)
  | Ev_tick of { completed : int; needed : int option; injections : int }
  | Ev_warning of string
  | Ev_done of { result : job_result; cached : bool }
  | Ev_error of string
  | Ev_cancelled
  | Ev_timeout

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let opt f = function Some v -> f v | None -> Json.Null

let request_to_json = function
  | Submit r ->
    let program =
      match r.program with
      | App name -> Json.Obj [ ("app", Json.Str name) ]
      | Inline src -> Json.Obj [ ("inline", Json.Str src) ]
    in
    Json.Obj
      [ ("cmd", Json.Str "submit");
        ("rpc", Json.Str version);
        ("mode", Json.Str (mode_name r.mode));
        ("program", program);
        ("flavor", opt (fun f -> Json.Str (flavor_wire_name f)) r.flavor);
        ("snapshot", Json.Str (Config.snapshot_mode_name r.snapshot));
        ("prune", Json.Str (Config.prune_name r.prune));
        ("schedules", Json.List (List.map (fun s -> Json.Str s) r.schedules));
        ("infer", Json.Bool r.infer);
        ("wrap_all", Json.Bool r.wrap_all);
        ("exception_free", Json.List (List.map (fun m -> Json.Str m) r.exception_free));
        ("do_not_wrap", Json.List (List.map (fun m -> Json.Str m) r.do_not_wrap));
        ("jobs", opt (fun n -> Json.Int n) r.jobs);
        ("run_timeout_s", opt (fun s -> Json.Float s) r.run_timeout_s);
        ("plan", opt (fun s -> Json.Str s) r.plan);
        ("rollback", opt (fun s -> Json.Str s) r.rollback);
        ("perturb_rate", opt (fun n -> Json.Int n) r.perturb_rate);
        ("perturb_seed", opt (fun n -> Json.Int n) r.perturb_seed);
        ("perturb_max", opt (fun n -> Json.Int n) r.perturb_max);
        ("perturb_point", opt (fun s -> Json.Str s) r.perturb_point);
        ("times", opt (fun n -> Json.Int n) r.times) ]
  | Status job -> Json.Obj [ ("cmd", Json.Str "status"); ("job", Json.Str job) ]
  | Watch job -> Json.Obj [ ("cmd", Json.Str "watch"); ("job", Json.Str job) ]
  | Cancel job -> Json.Obj [ ("cmd", Json.Str "cancel"); ("job", Json.Str job) ]
  | Stats -> Json.Obj [ ("cmd", Json.Str "stats") ]
  | Shutdown -> Json.Obj [ ("cmd", Json.Str "shutdown") ]

let counts_to_json c =
  Json.Obj
    [ ("atomic", Json.Int c.atomic);
      ("conditional", Json.Int c.conditional);
      ("pure", Json.Int c.pure) ]

let summary_to_json s =
  Json.Obj
    [ ("workers", Json.Int s.workers);
      ("executed", Json.Int s.executed);
      ("reused", Json.Int s.reused);
      ("discarded", Json.Int s.discarded);
      ("synthesized", Json.Int s.synthesized);
      ("wall_s", Json.Float s.wall_s) ]

let result_to_json r =
  Json.Obj
    [ ("mode", Json.Str (mode_name r.r_mode));
      ("flavor", Json.Str r.r_flavor);
      ("injections", Json.Int r.r_injections);
      ("transparent", Json.Bool r.r_transparent);
      ( "non_atomic",
        Json.List
          (List.map
             (fun (m, v) -> Json.List [ Json.Str m; Json.Str v ])
             r.r_non_atomic) );
      ("counts", counts_to_json r.r_counts);
      ("log", Json.Str r.r_log);
      ("wrapped", Json.List (List.map (fun m -> Json.Str m) r.r_wrapped));
      ("corrected", opt (fun s -> Json.Str s) r.r_corrected);
      ("summary", opt summary_to_json r.r_summary);
      ("resilience", opt (fun s -> Json.Str s) r.r_resilience) ]

let event_to_json = function
  | Ev_state s -> Json.Obj [ ("event", Json.Str "state"); ("state", Json.Str s) ]
  | Ev_tick { completed; needed; injections } ->
    Json.Obj
      [ ("event", Json.Str "tick");
        ("completed", Json.Int completed);
        ("needed", opt (fun n -> Json.Int n) needed);
        ("injections", Json.Int injections) ]
  | Ev_warning msg -> Json.Obj [ ("event", Json.Str "warning"); ("message", Json.Str msg) ]
  | Ev_done { result; cached } ->
    Json.Obj
      [ ("event", Json.Str "done");
        ("cached", Json.Bool cached);
        ("result", result_to_json result) ]
  | Ev_error msg -> Json.Obj [ ("event", Json.Str "error"); ("message", Json.Str msg) ]
  | Ev_cancelled -> Json.Obj [ ("event", Json.Str "cancelled") ]
  | Ev_timeout -> Json.Obj [ ("event", Json.Str "timeout") ]

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)
let error msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let require what = function Some v -> Ok v | None -> Error ("missing or bad " ^ what)

let str_list what j key =
  match Json.member key j with
  | None | Some Json.Null -> Ok []
  | Some (Json.List items) ->
    let rec all acc = function
      | [] -> Ok (List.rev acc)
      | Json.Str s :: rest -> all (s :: acc) rest
      | _ -> Error (what ^ " must be a list of strings")
    in
    all [] items
  | Some _ -> Error (what ^ " must be a list of strings")

let submit_of_json j =
  let* () =
    match Json.str_member "rpc" j with
    | Some v when String.equal v version -> Ok ()
    | Some v -> Error (Printf.sprintf "unsupported rpc version %s (want %s)" v version)
    | None -> Error "missing rpc version"
  in
  let* mode =
    let* name = require "mode" (Json.str_member "mode" j) in
    require ("mode " ^ name) (mode_of_name name)
  in
  let* program =
    match Json.member "program" j with
    | Some p -> (
      match (Json.str_member "app" p, Json.str_member "inline" p) with
      | Some name, None -> Ok (App name)
      | None, Some src -> Ok (Inline src)
      | _ -> Error "program must carry exactly one of app/inline")
    | None -> Error "missing program"
  in
  let* flavor =
    match Json.member "flavor" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.Str name) -> (
      match flavor_of_name name with
      | Some f -> Ok (Some f)
      | None -> Error ("unknown flavor " ^ name))
    | Some _ -> Error "flavor must be a string"
  in
  let* snapshot =
    match Json.str_member "snapshot" j with
    | None | Some "eager" -> Ok Config.Snapshot_eager
    | Some "cow" -> Ok Config.Snapshot_cow
    | Some s -> Error ("unknown snapshot mode " ^ s)
  in
  let* prune =
    (* Absent on the wire means off: an older client never prunes. *)
    match Json.str_member "prune" j with
    | None -> Ok Config.Prune_off
    | Some s -> (
      match Config.prune_of_string s with
      | Some p -> Ok p
      | None -> Error ("unknown prune mode " ^ s))
  in
  let* schedules = str_list "schedules" j "schedules" in
  let* exception_free = str_list "exception_free" j "exception_free" in
  let* do_not_wrap = str_list "do_not_wrap" j "do_not_wrap" in
  let* jobs =
    match Json.member "jobs" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.Int n) when n >= 1 -> Ok (Some n)
    | Some _ -> Error "jobs must be a positive integer"
  in
  let* run_timeout_s =
    match Json.member "run_timeout_s" j with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match Json.to_float v with
      | Some s when s > 0. -> Ok (Some s)
      | _ -> Error "run_timeout_s must be a positive number")
  in
  (* All produce-mode fields are additive: absent (an older client)
     decodes as None, and the server only consults them for produce
     jobs, so older peers interoperate unchanged. *)
  let opt_int what key =
    match Json.member key j with
    | None | Some Json.Null -> Ok None
    | Some (Json.Int n) -> Ok (Some n)
    | Some _ -> Error (what ^ " must be an integer")
  in
  let* perturb_rate = opt_int "perturb_rate" "perturb_rate" in
  let* perturb_seed = opt_int "perturb_seed" "perturb_seed" in
  let* perturb_max = opt_int "perturb_max" "perturb_max" in
  let* times = opt_int "times" "times" in
  Ok
    (Submit
       { mode;
         program;
         flavor;
         snapshot;
         prune;
         schedules;
         infer = Option.value ~default:false (Json.bool_member "infer" j);
         wrap_all = Option.value ~default:false (Json.bool_member "wrap_all" j);
         exception_free;
         do_not_wrap;
         jobs;
         run_timeout_s;
         plan = Json.str_member "plan" j;
         rollback = Json.str_member "rollback" j;
         perturb_rate;
         perturb_seed;
         perturb_max;
         perturb_point = Json.str_member "perturb_point" j;
         times })

let request_of_json j =
  let* cmd = require "cmd" (Json.str_member "cmd" j) in
  let with_job k =
    let* job = require "job" (Json.str_member "job" j) in
    Ok (k job)
  in
  match cmd with
  | "submit" -> submit_of_json j
  | "status" -> with_job (fun job -> Status job)
  | "watch" -> with_job (fun job -> Watch job)
  | "cancel" -> with_job (fun job -> Cancel job)
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | cmd -> Error ("unknown command " ^ cmd)

let counts_of_json j =
  let* atomic = require "counts.atomic" (Json.int_member "atomic" j) in
  let* conditional = require "counts.conditional" (Json.int_member "conditional" j) in
  let* pure = require "counts.pure" (Json.int_member "pure" j) in
  Ok { atomic; conditional; pure }

let summary_of_json j =
  let* workers = require "summary.workers" (Json.int_member "workers" j) in
  let* executed = require "summary.executed" (Json.int_member "executed" j) in
  let* reused = require "summary.reused" (Json.int_member "reused" j) in
  let* discarded = require "summary.discarded" (Json.int_member "discarded" j) in
  (* absent on the wire from an older server: nothing was synthesized *)
  let synthesized = Option.value ~default:0 (Json.int_member "synthesized" j) in
  let* wall_s = require "summary.wall_s" (Json.float_member "wall_s" j) in
  Ok { workers; executed; reused; discarded; synthesized; wall_s }

let result_of_json j =
  let* mode =
    let* name = require "result.mode" (Json.str_member "mode" j) in
    require ("mode " ^ name) (mode_of_name name)
  in
  let* flavor = require "result.flavor" (Json.str_member "flavor" j) in
  let* injections = require "result.injections" (Json.int_member "injections" j) in
  let* transparent = require "result.transparent" (Json.bool_member "transparent" j) in
  let* non_atomic =
    match Json.list_member "non_atomic" j with
    | None -> Error "missing non_atomic"
    | Some items ->
      let rec all acc = function
        | [] -> Ok (List.rev acc)
        | Json.List [ Json.Str m; Json.Str v ] :: rest -> all ((m, v) :: acc) rest
        | _ -> Error "bad non_atomic entry"
      in
      all [] items
  in
  let* counts =
    match Json.member "counts" j with
    | Some c -> counts_of_json c
    | None -> Error "missing counts"
  in
  let* log = require "result.log" (Json.str_member "log" j) in
  let* wrapped = str_list "wrapped" j "wrapped" in
  let corrected = Json.str_member "corrected" j in
  let* summary =
    match Json.member "summary" j with
    | None | Some Json.Null -> Ok None
    | Some s ->
      let* s = summary_of_json s in
      Ok (Some s)
  in
  Ok
    { r_mode = mode;
      r_flavor = flavor;
      r_injections = injections;
      r_transparent = transparent;
      r_non_atomic = non_atomic;
      r_counts = counts;
      r_log = log;
      r_wrapped = wrapped;
      r_corrected = corrected;
      r_summary = summary;
      (* absent from an older server: not a produce job *)
      r_resilience = Json.str_member "resilience" j }

let event_of_json j =
  let* name = require "event" (Json.str_member "event" j) in
  match name with
  | "state" ->
    let* s = require "state" (Json.str_member "state" j) in
    Ok (Ev_state s)
  | "tick" ->
    let* completed = require "tick.completed" (Json.int_member "completed" j) in
    let* injections = require "tick.injections" (Json.int_member "injections" j) in
    Ok (Ev_tick { completed; needed = Json.int_member "needed" j; injections })
  | "warning" ->
    let* msg = require "warning.message" (Json.str_member "message" j) in
    Ok (Ev_warning msg)
  | "done" ->
    let* cached = require "done.cached" (Json.bool_member "cached" j) in
    let* result =
      match Json.member "result" j with
      | Some r -> result_of_json r
      | None -> Error "missing result"
    in
    Ok (Ev_done { result; cached })
  | "error" ->
    let* msg = require "error.message" (Json.str_member "message" j) in
    Ok (Ev_error msg)
  | "cancelled" -> Ok Ev_cancelled
  | "timeout" -> Ok Ev_timeout
  | name -> Error ("unknown event " ^ name)
