(** Thin client for the failatom daemon: one connection, synchronous
    request/response, streaming watch.  Every call raises {!Error} on
    connection failure, protocol garbage, or a server-side error
    reply. *)

exception Error of string

type conn

val connect : ?retries:int -> socket_path:string -> unit -> conn
(** Connects and verifies the server's greeting (protocol revision).
    [retries] (default 0) retries transient connect failures —
    [ECONNREFUSED], [ENOENT], [ECONNRESET], or a connection cut
    mid-greeting — with capped exponential backoff (50ms doubling,
    capped at 1s), so clients tolerate a daemon or shard respawning
    underneath them.  Protocol mismatches are never retried. *)

val close : conn -> unit

val with_conn : ?retries:int -> socket_path:string -> (conn -> 'a) -> 'a
(** [connect], run, [close] (also on exceptions). *)

val submit : conn -> Protocol.job_request -> string * bool
(** Submits a job; returns (job id, served-from-cache).  A cached job
    is already finished when [submit] returns. *)

type job_status = {
  state : string;  (** queued | running | done | failed | cancelled | timed_out *)
  cached : bool;
  result : Protocol.job_result option;  (** present when done *)
  error : string option;  (** present when failed *)
}

val status : conn -> string -> job_status

type outcome =
  | Completed of Protocol.job_result * bool  (** result, served from cache *)
  | Job_failed of string
  | Job_cancelled
  | Job_timed_out

val watch : ?on_event:(Protocol.event -> unit) -> conn -> string -> outcome
(** Streams the job's events ([on_event] sees every one, terminal
    included) and returns its terminal outcome. *)

val cancel : conn -> string -> unit
(** Requests cancellation; idempotent.  A queued job is cancelled
    immediately, a running one at its next scheduling point. *)

val stats : conn -> string
(** The server's [failatom.metrics/1] snapshot, as JSON text. *)

val shutdown : conn -> unit
(** Asks the server to drain and exit. *)

val submit_wait :
  ?on_event:(Protocol.event -> unit) -> conn -> Protocol.job_request -> outcome
(** [submit] followed by [watch] — except that a cache hit, whose
    submit reply already embeds the finished result, returns without
    the watch round trip ([on_event] still sees its [Ev_done]). *)
