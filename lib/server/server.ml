(* The failatom daemon: a long-running detection service over a
   Unix-domain socket.

   Layout:

   - One {b accept thread} owns the listening socket; the loop itself
     lives in {!Net} (shared with the cluster router) and polls with a
     short [select] timeout so a stop request is honoured promptly.

   - {b Connection threads} speak the NDJSON protocol ({!Protocol}):
     read a request line, write a response line.  [watch] turns the
     connection into an event stream until the watched job reaches a
     terminal state.  Connection threads never execute detection work;
     they only enqueue jobs and observe them.

   - {b Executor threads} ([workers] of them) pop jobs off a FIFO queue
     and run them.  Detection and campaign jobs go through
     {!Campaign.run} (a detect job is a campaign with one worker, which
     produces a result bitwise-identical to {!Detect.run}); mask jobs
     additionally compute the wrap targets and the corrected program
     from the same detection result.  Compiled images come from the
     content-addressed {!Cache}, so resubmitting a known program skips
     compilation and weaving; a finished job's result is stored back
     under its full fingerprint, so resubmitting a whole known job is
     answered at submit time without touching the queue at all.

   - {b The warm path is allocation-light}: the submit handler resolves
     the program digest through the cache's source-key memo (no parse
     for a known source), and finished results carry their rendered
     NDJSON text, so a cache hit splices pre-rendered bytes into the
     reply and the done event instead of re-serializing a ~100KB result
     per hit.  Event frames are rendered once when appended, not once
     per watcher.

   - {b Admission control}: a full queue rejects new submissions
     instead of accepting unbounded work; a per-job wall-clock deadline
     ([job_timeout_s]) and per-run timeout ([run_timeout_s]) bound how
     long any single job can hold an executor.  [shutdown] (the request
     or SIGTERM/SIGINT) drains gracefully: new work is rejected, queued
     jobs are cancelled, running jobs finish — and every completed run
     they journalled is already fsynced by {!Journal.append}.

   All shared state — the job table, the queue, each job's event
   buffer — is guarded by one mutex; one condition variable wakes both
   executors (queue non-empty, drain) and watchers (new events).  The
   cache has its own finer-grained locking and is never touched while
   the server mutex is held.  The executors call {!Campaign.run}, which
   spawns its own worker domains; the server threads themselves are
   systhreads, interleaved on the main domain, which is fine because
   they only block on I/O and the condition variable. *)

open Failatom_core
open Failatom_minilang
open Failatom_apps
module Campaign = Failatom_campaign.Campaign
module Progress = Failatom_campaign.Progress
module Obs = Failatom_obs.Obs
module Prod = Failatom_prod

let m_accepted = Obs.counter "server.jobs_accepted"
let m_rejected = Obs.counter "server.jobs_rejected"
let m_completed = Obs.counter "server.jobs_completed"
let m_failed = Obs.counter "server.jobs_failed"
let m_cancelled = Obs.counter "server.jobs_cancelled"
let m_timed_out = Obs.counter "server.jobs_timed_out"
let g_queue_depth = Obs.gauge "server.queue_depth"
let h_job_wall = Obs.histogram "server.job_wall_ns"

type config = {
  socket_path : string;
  workers : int;  (* executor threads *)
  max_queue : int;  (* admission bound on queued jobs *)
  job_timeout_s : float option;  (* per-job wall-clock deadline *)
  run_timeout_s : float option;  (* default per-run timeout *)
  jobs_per_job : int;  (* clamp on a campaign request's worker domains *)
}

let default_config ~socket_path =
  { socket_path;
    workers = 2;
    max_queue = 64;
    job_timeout_s = None;
    run_timeout_s = None;
    jobs_per_job = Campaign.default_jobs () }

(* A validated submission: everything except the parse resolved at
   submit time.  [p_program] is a memoized thunk — when the digest came
   from the cache's source memo the parse is deferred to the executor,
   so a warm cache hit never parses at all. *)
(* Validated produce-mode parameters: the plan parsed and matched
   against the program digest at submit time, so a stale plan is a
   clean protocol error rather than a job failure. *)
type produce = {
  pr_plan : Prod.Plan.t;
  pr_rollback : Prod.Armed.rollback;
  pr_perturb : Prod.Produce.perturb_spec option;
  pr_times : int;
}

type prepared = {
  p_mode : Protocol.mode;
  p_program : unit -> Ast.program;
  p_digest : string;
  p_flavor : Detect.flavor;
  p_config : Config.t;
  p_jobs : int;
  p_run_timeout_s : float option;
  p_produce : produce option;  (* Some iff p_mode = Produce *)
  p_key : string;  (* result-cache fingerprint *)
}

type job_state =
  | Queued
  | Running
  | Done of Cache.entry * bool  (* result, served from cache *)
  | Failed of string
  | Cancelled
  | Timed_out

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"
  | Timed_out -> "timed_out"

type job = {
  id : string;
  prepared : prepared;
  mutable state : job_state;
  mutable frames_rev : string list;
      (* pre-rendered event frames, newest first: rendered once at
         append time, written verbatim by every watcher *)
  mutable n_frames : int;
  mutable terminal : bool;  (* a terminal frame has been appended *)
  mutable cancel_requested : bool;
      (* read by campaign workers without the server mutex: a benign
         single-word race, the poll just sees it one run later *)
  mutable deadline_ns : int;  (* 0 = none; armed when the job starts *)
  mutable last_tick_ns : int;  (* tick-event throttle *)
}

type t = {
  config : config;
  cache : Cache.t;
  mutex : Mutex.t;
  cond : Condition.t;
      (* one condition for everything: executors wait for queue/drain,
         watchers wait for job events; every state change broadcasts *)
  jobs : (string, job) Hashtbl.t;
  queue : job Queue.t;
  mutable next_id : int;
  mutable draining : bool;
  stop : bool Atomic.t;  (* polled by the accept loop *)
  stop_signal : bool Atomic.t;  (* set from signal handlers only *)
  mutable threads : Thread.t list;  (* accept + executors *)
  obs_was_enabled : bool;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let event_frame ev =
  match Protocol.event_to_json ev with
  | Json.Obj fields -> Json.Obj (("ok", Json.Bool true) :: fields)
  | _ -> assert false

let is_terminal_event = function
  | Protocol.Ev_done _ | Protocol.Ev_error _ | Protocol.Ev_cancelled
  | Protocol.Ev_timeout ->
    true
  | Protocol.Ev_state _ | Protocol.Ev_tick _ | Protocol.Ev_warning _ -> false

(* Mutex held. *)
let append_frame_locked t job ~terminal frame =
  job.frames_rev <- frame :: job.frames_rev;
  job.n_frames <- job.n_frames + 1;
  if terminal then job.terminal <- true;
  Condition.broadcast t.cond

(* Mutex held. *)
let append_event_locked t job ev =
  append_frame_locked t job ~terminal:(is_terminal_event ev)
    (Json.to_string (event_frame ev))

(* The done frame splices the pre-rendered result text.  Field order
   matches [event_frame (Ev_done _)] exactly, and {!Json.to_string} is
   compositional (no whitespace), so the spliced frame is byte-for-byte
   what full rendering would produce. *)
let done_frame ~cached (entry : Cache.entry) =
  Printf.sprintf "{\"ok\":true,\"event\":\"done\",\"cached\":%b,\"result\":%s}"
    cached entry.Cache.e_rendered

(* ------------------------------------------------------------------ *)
(* Request validation                                                  *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let method_ids what names =
  let rec all acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
      match String.index_opt name '.' with
      | Some i when i > 0 && i < String.length name - 1 ->
        all
          (Method_id.make (String.sub name 0 i)
             (String.sub name (i + 1) (String.length name - i - 1))
           :: acc)
          rest
      | _ -> Error (Printf.sprintf "%s: %S is not a Class.method id" what name))
  in
  all [] names

let prepare_request t (r : Protocol.job_request) : (prepared, string) result =
  let* source, source_key, default_flavor, what =
    match r.Protocol.program with
    | Protocol.App name -> (
      match Registry.find name with
      | None ->
        Error (Printf.sprintf "unknown application %S (see `failatom apps`)" name)
      | Some app ->
        Ok
          ( app.Registry.source,
            "app:" ^ name,
            Harness.flavor_of_suite app.Registry.suite,
            "app " ^ name ))
    | Protocol.Inline src ->
      Ok
        ( src,
          "src:" ^ Digest.to_hex (Digest.string src),
          Detect.Source_weaving,
          "inline program" )
  in
  (* Memoized parse: at most one parse per request, none for a source
     the cache has already digested. *)
  let parsed = ref None in
  let parse_now () =
    match !parsed with
    | Some program -> program
    | None ->
      (* liberal: accept already-woven/corrected programs too *)
      let program = Minilang.parse ~allow_reserved:true source in
      parsed := Some program;
      program
  in
  let* digest =
    match Cache.digest_find t.cache ~source_key with
    | Some d -> Ok d
    | None -> (
      match parse_now () with
      | program ->
        let d = Minilang.program_digest program in
        Cache.digest_learn t.cache ~source_key d;
        Ok d
      | exception e ->
        Error (Printf.sprintf "%s: %s" what (Printexc.to_string e)))
  in
  let* exception_free = method_ids "exception_free" r.Protocol.exception_free in
  let* do_not_wrap = method_ids "do_not_wrap" r.Protocol.do_not_wrap in
  (* Reject unknown schedule specs at submit time (clean protocol error)
     rather than as a job failure inside an executor. *)
  let* schedules =
    let rec check = function
      | [] -> Ok ()
      | s :: rest -> (
        match Failatom_runtime.Sched.policy_of_string s with
        | Some _ -> check rest
        | None -> Error ("unknown schedule spec " ^ s))
    in
    let* () = check r.Protocol.schedules in
    Ok
      (match r.Protocol.schedules with
       | [] -> Config.default.Config.schedules
       | l -> l)
  in
  let flavor = Option.value ~default:default_flavor r.Protocol.flavor in
  let config =
    { Config.default with
      Config.snapshot_mode = r.Protocol.snapshot;
      prune = r.Protocol.prune;
      schedules;
      infer_exception_free = r.Protocol.infer;
      wrap_policy =
        (if r.Protocol.wrap_all then Config.Wrap_all_non_atomic else Config.Wrap_pure);
      exception_free;
      do_not_wrap }
  in
  let jobs =
    match r.Protocol.mode with
    | Protocol.Detect | Protocol.Mask | Protocol.Produce -> 1
    | Protocol.Campaign ->
      let requested = Option.value ~default:t.config.jobs_per_job r.Protocol.jobs in
      max 1 (min requested t.config.jobs_per_job)
  in
  let run_timeout_s =
    match r.Protocol.run_timeout_s with
    | Some _ as s -> s
    | None -> t.config.run_timeout_s
  in
  let* p_produce =
    match r.Protocol.mode with
    | Protocol.Detect | Protocol.Campaign | Protocol.Mask -> Ok None
    | Protocol.Produce ->
      let* plan_text =
        match r.Protocol.plan with
        | Some text -> Ok text
        | None -> Error "produce mode requires a plan"
      in
      let* pr_plan = Prod.Plan.of_string plan_text in
      (* Stale plans are refused at submit time: a plan computed for a
         different program must not arm wrappers. *)
      let* () = Prod.Plan.validate pr_plan ~program_digest:digest in
      let* pr_rollback =
        match r.Protocol.rollback with
        | None -> Ok Prod.Armed.Rb_checkpoint
        | Some name -> (
          match Prod.Armed.rollback_of_name name with
          | Some rb -> Ok rb
          | None -> Error (Printf.sprintf "unknown rollback engine %S" name))
      in
      let* pr_perturb =
        match Option.value ~default:0 r.Protocol.perturb_rate with
        | 0 -> Ok None
        | rate when rate < 0 || rate > 1000 ->
          Error "perturb_rate must be in 0..1000"
        | rate ->
          let* point =
            match r.Protocol.perturb_point with
            | None -> Ok Prod.Perturb.At_exit
            | Some name -> (
              match Prod.Perturb.point_of_name name with
              | Some p -> Ok p
              | None -> Error (Printf.sprintf "unknown perturbation point %S" name))
          in
          Ok
            (Some
               { Prod.Produce.seed = Option.value ~default:1 r.Protocol.perturb_seed;
                 rate_per_mille = rate;
                 max_fires = r.Protocol.perturb_max;
                 point;
                 fallback_exceptions = [] })
      in
      Ok
        (Some
           { pr_plan;
             pr_rollback;
             pr_perturb;
             pr_times = max 1 (Option.value ~default:1 r.Protocol.times) })
  in
  Ok
    { p_mode = r.Protocol.mode;
      p_program = parse_now;
      p_digest = digest;
      p_flavor = flavor;
      p_config = config;
      p_jobs = jobs;
      p_run_timeout_s = run_timeout_s;
      p_produce;
      p_key =
        Cache.result_key ~program_digest:digest ~mode:r.Protocol.mode ~flavor
          ~config ~run_timeout_s }

(* ------------------------------------------------------------------ *)
(* Job execution                                                       *)
(* ------------------------------------------------------------------ *)

let build_result ~mode ~flavor ~cfg (res : Detect.result)
    (summary : Progress.summary) : Protocol.job_result =
  let cls = Classify.classify ~exception_free:cfg.Config.exception_free res in
  let counts = Classify.method_counts cls in
  let non_atomic =
    List.filter_map
      (fun (rep : Classify.method_report) ->
        match rep.Classify.verdict with
        | Classify.Atomic -> None
        | v -> Some (Method_id.to_string rep.Classify.id, Classify.verdict_name v))
      (Classify.reports cls)
  in
  { Protocol.r_mode = mode;
    r_flavor = Protocol.flavor_wire_name flavor;
    r_injections = res.Detect.injections;
    r_transparent = res.Detect.transparent;
    r_non_atomic = non_atomic;
    r_counts =
      { Protocol.atomic = counts.Classify.atomic;
        conditional = counts.Classify.conditional;
        pure = counts.Classify.pure };
    r_log = Run_log.save res;
    r_wrapped = [];
    r_corrected = None;
    r_summary =
      Some
        { Protocol.workers = summary.Progress.workers;
          executed = summary.Progress.executed;
          reused = summary.Progress.reused;
          discarded = summary.Progress.discarded;
          synthesized = summary.Progress.synthesized;
          wall_s = summary.Progress.wall_clock_s };
    r_resilience = None }

(* A produce job's result is built from the plan (the verdicts are the
   detection's, carried over) plus the fresh scorecard.  [transparent]
   reports whether every canary validation passed. *)
let build_produce_result (pr : produce) (scorecard : Prod.Scorecard.t) :
    Protocol.job_result =
  let plan = pr.pr_plan in
  let counts =
    List.fold_left
      (fun (c : Protocol.counts) (m : Prod.Plan.meth) ->
        match m.Prod.Plan.pm_verdict with
        | Classify.Atomic -> { c with Protocol.atomic = c.Protocol.atomic + 1 }
        | Classify.Conditional_non_atomic ->
          { c with Protocol.conditional = c.Protocol.conditional + 1 }
        | Classify.Pure_non_atomic -> { c with Protocol.pure = c.Protocol.pure + 1 })
      { Protocol.atomic = 0; conditional = 0; pure = 0 }
      plan.Prod.Plan.methods
  in
  let non_atomic =
    List.filter_map
      (fun (m : Prod.Plan.meth) ->
        match m.Prod.Plan.pm_verdict with
        | Classify.Atomic -> None
        | v ->
          Some (Method_id.to_string m.Prod.Plan.pm_id, Classify.verdict_name v))
      plan.Prod.Plan.methods
  in
  { Protocol.r_mode = Protocol.Produce;
    r_flavor = plan.Prod.Plan.flavor;
    r_injections = plan.Prod.Plan.injections;
    r_transparent = Prod.Scorecard.failed scorecard = 0;
    r_non_atomic = non_atomic;
    r_counts = counts;
    r_log = "";
    r_wrapped = List.map Method_id.to_string plan.Prod.Plan.targets;
    r_corrected = None;
    r_summary = None;
    r_resilience = Some (Prod.Scorecard.to_json scorecard) }

let execute t (job : job) =
  let p = job.prepared in
  let report = function
    | Progress.Tick { completed; needed; injections; _ } ->
      let now = Obs.now_ns () in
      locked t (fun () ->
          if now - job.last_tick_ns >= 50_000_000 then begin
            job.last_tick_ns <- now;
            append_event_locked t job
              (Protocol.Ev_tick { completed; needed; injections })
          end)
    | Progress.Warning msg ->
      locked t (fun () -> append_event_locked t job (Protocol.Ev_warning msg))
    | Progress.Started _ | Progress.Finished _ -> ()
  in
  let cancel () =
    job.cancel_requested
    || (job.deadline_ns > 0 && Obs.now_ns () > job.deadline_ns)
  in
  let t0 = Obs.now_ns () in
  let outcome =
    try
      if cancel () then raise Campaign.Cancelled;
      let program = p.p_program () in
      match (p.p_mode, p.p_produce) with
      | Protocol.Produce, Some pr -> (
        (* No detection: arm straight from the (already-validated)
           plan and run the workload under the armed wrappers. *)
        match
          Prod.Produce.run ~rollback:pr.pr_rollback ?perturb:pr.pr_perturb
            ~times:pr.pr_times ~plan:pr.pr_plan program
        with
        | Error msg -> Error (`Failed msg)
        | Ok { Prod.Produce.scorecard; runs } ->
          List.iteri
            (fun i (r : Prod.Produce.run_report) ->
              match r.Prod.Produce.escaped with
              | None -> ()
              | Some cls ->
                locked t (fun () ->
                    append_event_locked t job
                      (Protocol.Ev_warning
                         (Printf.sprintf "run %d: %s escaped main" (i + 1) cls))))
            runs;
          Ok (build_produce_result pr scorecard))
      | Protocol.Produce, None ->
        (* prepare_request always pairs Produce with parameters *)
        Error (`Failed "produce job without production parameters")
      | (Protocol.Detect | Protocol.Campaign | Protocol.Mask), _ ->
        let images =
          Cache.images t.cache ~program_digest:p.p_digest ~flavor:p.p_flavor
            program
        in
        let res, summary =
          Campaign.run ~config:p.p_config ~flavor:p.p_flavor
            ~plain:images.Cache.plain ~compiled:images.Cache.compiled
            ?run_timeout_s:p.p_run_timeout_s ~cancel ~jobs:p.p_jobs ~report
            program
        in
        let base = build_result ~mode:p.p_mode ~flavor:p.p_flavor ~cfg:p.p_config res summary in
        let result =
          match p.p_mode with
          | Protocol.Mask ->
            (* Same detection result, extended with the masking step:
               wrap targets by the configured policy, and the corrected
               program P_C. *)
            let cls =
              Classify.classify ~exception_free:p.p_config.Config.exception_free res
            in
            let targets = Mask.targets p.p_config cls in
            let corrected = Mask.corrected_program ~targets program in
            { base with
              Protocol.r_wrapped =
                List.map Method_id.to_string (Method_id.Set.elements targets);
              r_corrected = Some (Pretty.program_to_string corrected) }
          | Protocol.Detect | Protocol.Campaign | Protocol.Produce -> base
        in
        Ok result
    with
    | Campaign.Cancelled ->
      if job.deadline_ns > 0 && Obs.now_ns () > job.deadline_ns then Error `Timeout
      else Error `Cancelled
    | Detect.Detection_error msg -> Error (`Failed msg)
    | Campaign.Campaign_error msg -> Error (`Failed msg)
    | e -> Error (`Failed (Printexc.to_string e))
  in
  Obs.observe h_job_wall (Obs.now_ns () - t0);
  match outcome with
  | Ok result ->
    (* Render + spill outside the server mutex; only the table insert
       and the event append happen under it. *)
    let entry =
      match p.p_mode with
      | Protocol.Produce ->
        (* Produce results carry wall-clock timing histograms — never
           cached, so every resubmission re-runs the workload fresh. *)
        { Cache.e_result = result;
          e_rendered = Json.to_string (Protocol.result_to_json result) }
      | Protocol.Detect | Protocol.Campaign | Protocol.Mask ->
        Cache.store_result t.cache p.p_key result
    in
    locked t (fun () ->
        job.state <- Done (entry, false);
        Obs.incr m_completed;
        append_frame_locked t job ~terminal:true (done_frame ~cached:false entry))
  | Error `Cancelled ->
    locked t (fun () ->
        job.state <- Cancelled;
        Obs.incr m_cancelled;
        append_event_locked t job Protocol.Ev_cancelled)
  | Error `Timeout ->
    locked t (fun () ->
        job.state <- Timed_out;
        Obs.incr m_timed_out;
        append_event_locked t job Protocol.Ev_timeout)
  | Error (`Failed msg) ->
    locked t (fun () ->
        job.state <- Failed msg;
        Obs.incr m_failed;
        append_event_locked t job (Protocol.Ev_error msg))

let executor t () =
  let rec loop () =
    let job =
      locked t (fun () ->
          let rec take () =
            match Queue.take_opt t.queue with
            | Some job -> (
              Obs.set_gauge g_queue_depth (Queue.length t.queue);
              match job.state with
              | Queued ->
                job.state <- Running;
                (match t.config.job_timeout_s with
                 | Some s ->
                   job.deadline_ns <- Obs.now_ns () + int_of_float (s *. 1e9)
                 | None -> ());
                append_event_locked t job (Protocol.Ev_state "running");
                Some job
              | _ -> take () (* cancelled while queued *))
            | None ->
              if t.draining then None
              else begin
                Condition.wait t.cond t.mutex;
                take ()
              end
          in
          take ())
    in
    match job with
    | Some job ->
      execute t job;
      loop ()
    | None -> ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let new_job t prepared =
  t.next_id <- t.next_id + 1;
  let job =
    { id = Printf.sprintf "j%d" t.next_id;
      prepared;
      state = Queued;
      frames_rev = [];
      n_frames = 0;
      terminal = false;
      cancel_requested = false;
      deadline_ns = 0;
      last_tick_ns = 0 }
  in
  Hashtbl.replace t.jobs job.id job;
  job

let render = Json.to_string

(* Replies that embed a finished result are spliced from the cached
   rendering (same field order as the [Json] path, byte-identical). *)
let done_reply ~job_id ~cached (entry : Cache.entry) =
  Printf.sprintf
    "{\"ok\":true,\"job\":%s,\"state\":\"done\",\"cached\":%b,\"result\":%s}"
    (Json.to_string (Json.Str job_id))
    cached entry.Cache.e_rendered

let handle_submit t req =
  match prepare_request t req with
  | Error msg ->
    Obs.incr m_rejected;
    render (Protocol.error msg)
  | Ok p -> (
    (* The result lookup may deserialize from the durable tier — never
       under the server mutex.  Produce jobs never consult it: their
       results embed fresh timing data, so a warm hit would replay a
       stale scorecard. *)
    match
      (match p.p_mode with
       | Protocol.Produce -> None
       | Protocol.Detect | Protocol.Campaign | Protocol.Mask ->
         Cache.find_result t.cache p.p_key)
    with
    | Some entry ->
      locked t (fun () ->
          if t.draining then begin
            Obs.incr m_rejected;
            render (Protocol.error "server is shutting down")
          end
          else begin
            (* Warm hit: the job is born finished — no queue, no
               compile, no runs.  The result bytes are the original
               job's, so the [log] text is bitwise-identical. *)
            let job = new_job t p in
            job.state <- Done (entry, true);
            append_frame_locked t job ~terminal:true (done_frame ~cached:true entry);
            Obs.incr m_accepted;
            render
              (Protocol.ok
                 [ ("job", Json.Str job.id);
                   ("state", Json.Str "done");
                   ("cached", Json.Bool true) ])
          end)
    | None ->
      locked t (fun () ->
          if t.draining then begin
            Obs.incr m_rejected;
            render (Protocol.error "server is shutting down")
          end
          else if Queue.length t.queue >= t.config.max_queue then begin
            Obs.incr m_rejected;
            render
              (Protocol.error
                 (Printf.sprintf "queue full (%d jobs queued)" t.config.max_queue))
          end
          else begin
            let job = new_job t p in
            append_event_locked t job (Protocol.Ev_state "queued");
            Queue.push job t.queue;
            Obs.set_gauge g_queue_depth (Queue.length t.queue);
            Obs.incr m_accepted;
            Condition.broadcast t.cond;
            render
              (Protocol.ok
                 [ ("job", Json.Str job.id);
                   ("state", Json.Str "queued");
                   ("cached", Json.Bool false) ])
          end))

let handle_status t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> render (Protocol.error ("unknown job " ^ id))
      | Some job -> (
        let base =
          [ ("job", Json.Str job.id); ("state", Json.Str (state_name job.state)) ]
        in
        match job.state with
        | Done (entry, cached) -> done_reply ~job_id:job.id ~cached entry
        | Failed msg -> render (Protocol.ok (base @ [ ("error", Json.Str msg) ]))
        | Queued | Running | Cancelled | Timed_out -> render (Protocol.ok base)))

let handle_cancel t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> Protocol.error ("unknown job " ^ id)
      | Some job ->
        (match job.state with
         | Queued ->
           (* The executor skips non-Queued entries when it pops. *)
           job.cancel_requested <- true;
           job.state <- Cancelled;
           Obs.incr m_cancelled;
           append_event_locked t job Protocol.Ev_cancelled
         | Running -> job.cancel_requested <- true
         | Done _ | Failed _ | Cancelled | Timed_out -> () (* idempotent *));
        Protocol.ok [ ("job", Json.Str id) ])

let handle_stats t =
  let images, results = Cache.stats t.cache in
  Protocol.ok
    [ ("metrics", Json.Str (Obs.to_json (Obs.snapshot ())));
      ("cached_images", Json.Int images);
      ("cached_results", Json.Int results) ]

let initiate_drain t =
  Atomic.set t.stop true;
  locked t (fun () ->
      if not t.draining then begin
        t.draining <- true;
        Queue.iter
          (fun job ->
            match job.state with
            | Queued ->
              job.state <- Cancelled;
              Obs.incr m_cancelled;
              append_event_locked t job Protocol.Ev_cancelled
            | _ -> ())
          t.queue;
        Queue.clear t.queue;
        Obs.set_gauge g_queue_depth 0;
        Condition.broadcast t.cond
      end)

(* ------------------------------------------------------------------ *)
(* The protocol loop of one connection                                 *)
(* ------------------------------------------------------------------ *)

let handle_watch t fd id =
  let job = locked t (fun () -> Hashtbl.find_opt t.jobs id) in
  match job with
  | None -> Net.write_line fd (render (Protocol.error ("unknown job " ^ id)))
  | Some job ->
    let cursor = ref 0 in
    let finished = ref false in
    while not !finished do
      let batch =
        locked t (fun () ->
            while job.n_frames <= !cursor do
              Condition.wait t.cond t.mutex
            done;
            let fresh = job.n_frames - !cursor in
            cursor := job.n_frames;
            if job.terminal && !cursor = job.n_frames then finished := true;
            List.rev (List.filteri (fun i _ -> i < fresh) job.frames_rev))
      in
      List.iter (Net.write_line fd) batch
    done

let handle_connection t fd =
  let send_raw line = Net.write_line fd line in
  let send j = send_raw (render j) in
  (try
     send Protocol.greeting;
     let reader = Net.reader fd in
     let rec loop () =
       match Net.read_line reader with
       | None -> ()
       | Some line ->
         (match
            try Ok (Json.of_string line)
            with Json.Parse_error msg -> Error ("bad JSON: " ^ msg)
          with
          | Error msg -> send (Protocol.error msg)
          | Ok j -> (
            match Protocol.request_of_json j with
            | Error msg -> send (Protocol.error msg)
            | Ok (Protocol.Submit req) -> send_raw (handle_submit t req)
            | Ok (Protocol.Status id) -> send_raw (handle_status t id)
            | Ok (Protocol.Watch id) -> handle_watch t fd id
            | Ok (Protocol.Cancel id) -> send (handle_cancel t id)
            | Ok Protocol.Stats -> send (handle_stats t)
            | Ok Protocol.Shutdown ->
              send (Protocol.ok []);
              initiate_drain t));
         loop ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  Net.close_noerr fd

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start ?cache config =
  let obs_was_enabled = Obs.enabled () in
  Obs.set_enabled true;
  (* A client that disconnects mid-write must surface as EPIPE, not
     kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Net.listen ~socket_path:config.socket_path in
  let t =
    { config;
      cache = (match cache with Some c -> c | None -> Cache.create ());
      mutex = Mutex.create ();
      cond = Condition.create ();
      jobs = Hashtbl.create 64;
      queue = Queue.create ();
      next_id = 0;
      draining = false;
      stop = Atomic.make false;
      stop_signal = Atomic.make false;
      threads = [];
      obs_was_enabled }
  in
  let accept_thread =
    Thread.create
      (fun () ->
        Net.accept_loop
          ~stop:(fun () -> Atomic.get t.stop)
          ~tick:(fun () -> if Atomic.get t.stop_signal then initiate_drain t)
          fd (handle_connection t))
      ()
  in
  let executors =
    List.init (max 1 config.workers) (fun _ -> Thread.create (executor t) ())
  in
  t.threads <- accept_thread :: executors;
  t

let cache t = t.cache
let shutdown t = initiate_drain t

let wait t =
  List.iter Thread.join t.threads;
  (try Unix.unlink t.config.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  Obs.set_enabled t.obs_was_enabled

(* CLI entry: serve until a shutdown request or a termination signal.
   Signal handlers only flip an atomic — the accept loop (which polls
   it every 200ms) performs the actual drain, so no lock is ever taken
   from a signal-handler context. *)
let run ?cache config =
  let t = start ?cache config in
  let request_stop _ = Atomic.set t.stop_signal true in
  let install signal =
    try ignore (Sys.signal signal (Sys.Signal_handle request_stop))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  install Sys.sigterm;
  install Sys.sigint;
  wait t
