(* Shared Unix-domain-socket plumbing for everything that speaks the
   NDJSON protocol: the daemon ({!Server}), the cluster router, and the
   tests.  Extracted from the PR 5 server so the connection loop is
   written once.

   Two properties the callers rely on:

   - {b EINTR is invisible.}  A signal delivered during [select],
     [accept], [read] or [write] used to surface as a protocol error
     that killed the connection; here every primitive restarts the
     interrupted call.  Signals still interrupt promptly where it
     matters — the accept loop re-checks its stop predicate on every
     iteration, interrupted or not.

   - {b Writes are complete or raised.}  [write_line] loops until the
     whole frame (payload + newline) is on the socket, so a short write
     under load never tears an NDJSON frame in half.

   The line reader works on the raw descriptor (no [in_channel]), so a
   connection owns exactly one fd and closes it exactly once — the
   dup'd-descriptor dance the channel-based loop needed to avoid
   double-closes is gone. *)

(* ------------------------------------------------------------------ *)
(* Listening                                                           *)
(* ------------------------------------------------------------------ *)

let listen ~socket_path =
  if Sys.file_exists socket_path then Unix.unlink socket_path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX socket_path);
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

(* Polls with a short select timeout so [stop] is honoured promptly
   (closing a socket does not reliably wake a blocked [accept]); [tick]
   runs once per iteration — the server uses it to notice a pending
   signal-requested drain.  Each accepted connection is handed to
   [handler] on a fresh thread.  The listening fd is closed on exit. *)
let accept_loop ~stop ?(tick = fun () -> ()) fd handler =
  let rec loop () =
    tick ();
    if not (stop ()) then begin
      (match Unix.select [ fd ] [] [] 0.2 with
       | [ _ ], _, _ -> (
         match Unix.accept fd with
         | conn, _ -> ignore (Thread.create (fun () -> handler conn) ())
         | exception Unix.Unix_error _ ->
           (* EINTR, ECONNABORTED, EMFILE under load: drop this accept,
              keep serving *)
           ())
       | _ -> ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Frame I/O                                                           *)
(* ------------------------------------------------------------------ *)

type reader = {
  r_fd : Unix.file_descr;
  r_chunk : Bytes.t;
  mutable r_pending : string;  (* received bytes not yet consumed *)
  mutable r_pos : int;  (* cursor into r_pending *)
}

let reader fd =
  { r_fd = fd; r_chunk = Bytes.create 65536; r_pending = ""; r_pos = 0 }

let rec read_retrying fd chunk =
  match Unix.read fd chunk 0 (Bytes.length chunk) with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_retrying fd chunk

let read_line r =
  let rec next () =
    match String.index_from_opt r.r_pending r.r_pos '\n' with
    | Some i ->
      let line = String.sub r.r_pending r.r_pos (i - r.r_pos) in
      r.r_pos <- i + 1;
      Some line
    | None ->
      let n = read_retrying r.r_fd r.r_chunk in
      if n = 0 then
        if r.r_pos < String.length r.r_pending then begin
          (* peer closed mid-line: surface the unterminated tail *)
          let line =
            String.sub r.r_pending r.r_pos (String.length r.r_pending - r.r_pos)
          in
          r.r_pending <- "";
          r.r_pos <- 0;
          Some line
        end
        else None
      else begin
        let tail =
          String.sub r.r_pending r.r_pos (String.length r.r_pending - r.r_pos)
        in
        r.r_pending <- tail ^ Bytes.sub_string r.r_chunk 0 n;
        r.r_pos <- 0;
        next ()
      end
  in
  next ()

let write_line fd line =
  let len = String.length line in
  let data = Bytes.create (len + 1) in
  Bytes.blit_string line 0 data 0 len;
  Bytes.set data len '\n';
  let total = len + 1 in
  let rec go off =
    if off < total then
      match Unix.write fd data off (total - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()
