(* Thin client for the failatom daemon: one connection, synchronous
   request/response, streaming watch.  The CLI subcommands
   ([failatom submit|status|watch|cancel|shutdown]) and the tests and
   benches are all built on this. *)

module Json = Failatom_core.Json

exception Error of string
(* Any failure talking to the daemon: connection refused, protocol
   garbage, or a server-side {"ok":false} reply. *)

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

let read_json conn =
  match input_line conn.ic with
  | exception End_of_file -> fail "server closed the connection"
  | line -> (
    try Json.of_string line
    with Json.Parse_error msg -> fail "bad server reply (%s): %s" msg line)

(* Internal marker for connect failures that a retry can cure: a
   daemon (or cluster shard) that is restarting briefly leaves no
   socket file (ENOENT) or a socket nobody accepts on (ECONNREFUSED),
   and a process dying mid-greeting shows as ECONNRESET or a truncated
   stream.  Protocol-revision mismatches are never retried. *)
exception Transient of string

let close conn =
  close_out_noerr conn.oc;
  close_in_noerr conn.ic

let connect_once ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with Unix.Unix_error (err, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     let msg =
       Printf.sprintf "cannot connect to %s: %s" socket_path
         (Unix.error_message err)
     in
     (match err with
      | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET ->
        raise (Transient msg)
      | _ -> raise (Error msg)));
  (* Each channel owns its own descriptor (see the matching note in
     Server.handle_connection): closing both channels of a shared fd
     double-closes it, racing with fd-number reuse in other threads. *)
  let conn =
    { fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr (Unix.dup fd) }
  in
  match read_json conn with
  | exception e ->
    close conn;
    (match e with
     | Error _ | Sys_error _ ->
       raise (Transient "server closed the connection mid-greeting")
     | e -> raise e)
  | greeting ->
    (match Json.str_member "rpc" greeting with
     | Some v when String.equal v Protocol.version -> conn
     | Some v ->
       close conn;
       fail "server speaks %s, this client %s" v Protocol.version
     | None ->
       close conn;
       fail "not a failatom server (no greeting)")

let connect ?(retries = 0) ~socket_path () =
  let rec attempt n delay =
    match connect_once ~socket_path with
    | conn -> conn
    | exception Transient msg ->
      if n >= retries then raise (Error msg)
      else begin
        (* capped exponential backoff: 50ms, 100ms, ... capped at 1s *)
        Thread.delay delay;
        attempt (n + 1) (Float.min 1.0 (delay *. 2.))
      end
  in
  attempt 0 0.05

let with_conn ?retries ~socket_path f =
  let conn = connect ?retries ~socket_path () in
  Fun.protect ~finally:(fun () -> close conn) (fun () -> f conn)

let send conn req =
  output_string conn.oc (Json.to_string (Protocol.request_to_json req));
  output_char conn.oc '\n';
  flush conn.oc

(* One reply, with the ok/error envelope unwrapped. *)
let reply conn =
  let j = read_json conn in
  match Json.bool_member "ok" j with
  | Some true -> j
  | Some false | None -> (
    match Json.str_member "error" j with
    | Some msg -> fail "server: %s" msg
    | None -> fail "malformed server reply: %s" (Json.to_string j))

let request conn req =
  send conn req;
  reply conn

let submit conn job_request =
  let j = request conn (Protocol.Submit job_request) in
  match (Json.str_member "job" j, Json.bool_member "cached" j) with
  | Some id, Some cached -> (id, cached)
  | _ -> fail "malformed submit reply: %s" (Json.to_string j)

type job_status = {
  state : string;
  cached : bool;
  result : Protocol.job_result option;
  error : string option;
}

let status conn id =
  let j = request conn (Protocol.Status id) in
  match Json.str_member "state" j with
  | None -> fail "malformed status reply: %s" (Json.to_string j)
  | Some state ->
    let result =
      match Json.member "result" j with
      | None -> None
      | Some r -> (
        match Protocol.result_of_json r with
        | Ok r -> Some r
        | Error msg -> fail "malformed result in status reply: %s" msg)
    in
    { state;
      cached = Option.value ~default:false (Json.bool_member "cached" j);
      result;
      error = Json.str_member "error" j }

type outcome =
  | Completed of Protocol.job_result * bool  (* result, served from cache *)
  | Job_failed of string
  | Job_cancelled
  | Job_timed_out

let watch ?(on_event = fun (_ : Protocol.event) -> ()) conn id =
  send conn (Protocol.Watch id);
  let rec loop () =
    let j = reply conn in
    match Protocol.event_of_json j with
    | Error msg -> fail "malformed event: %s" msg
    | Ok ev -> (
      on_event ev;
      match ev with
      | Protocol.Ev_done { result; cached } -> Completed (result, cached)
      | Protocol.Ev_error msg -> Job_failed msg
      | Protocol.Ev_cancelled -> Job_cancelled
      | Protocol.Ev_timeout -> Job_timed_out
      | Protocol.Ev_state _ | Protocol.Ev_tick _ | Protocol.Ev_warning _ -> loop ())
  in
  loop ()

let cancel conn id = ignore (request conn (Protocol.Cancel id))

let stats conn =
  let j = request conn Protocol.Stats in
  match Json.str_member "metrics" j with
  | Some metrics -> metrics
  | None -> fail "malformed stats reply: %s" (Json.to_string j)

let shutdown conn = ignore (request conn Protocol.Shutdown)

let submit_wait ?on_event conn job_request =
  let j = request conn (Protocol.Submit job_request) in
  match (Json.str_member "job" j, Json.str_member "state" j) with
  | None, _ -> fail "malformed submit reply: %s" (Json.to_string j)
  | Some _, Some "done" when Json.member "result" j <> None -> (
    (* a cache hit is born finished: the submit reply already carries
       the result, so skip the watch round trip *)
    match Protocol.result_of_json (Option.get (Json.member "result" j)) with
    | Error msg -> fail "malformed result in submit reply: %s" msg
    | Ok result ->
      let cached = Option.value ~default:false (Json.bool_member "cached" j) in
      (match on_event with
       | Some f -> f (Protocol.Ev_done { result; cached })
       | None -> ());
      Completed (result, cached))
  | Some id, _ -> watch ?on_event conn id
