(** Shared Unix-domain-socket plumbing for the daemon and the cluster
    router: listening, the select-polled accept loop, and raw-fd NDJSON
    frame I/O.  Every primitive restarts on [EINTR], so a signal during
    accept or read never surfaces as a protocol error; [write_line]
    loops until the whole frame is written, so short writes never tear
    a frame. *)

val listen : socket_path:string -> Unix.file_descr
(** Binds a listening socket at [socket_path] (replacing a stale file).
    @raise Unix.Unix_error when the socket cannot be bound. *)

val accept_loop :
  stop:(unit -> bool) ->
  ?tick:(unit -> unit) ->
  Unix.file_descr ->
  (Unix.file_descr -> unit) ->
  unit
(** Accepts connections until [stop ()] is true, running [handler] on a
    fresh thread per connection; [tick] runs once per poll iteration
    (~5/s).  Closes the listening fd before returning. *)

type reader
(** A buffered line reader over a raw descriptor. *)

val reader : Unix.file_descr -> reader

val read_line : reader -> string option
(** The next newline-terminated line (newline stripped), an
    unterminated final line, or [None] at EOF.  Retries [EINTR].
    @raise Unix.Unix_error on genuine read errors. *)

val write_line : Unix.file_descr -> string -> unit
(** Writes [line] plus a newline, looping over short writes and
    retrying [EINTR].  @raise Unix.Unix_error on genuine errors. *)

val close_noerr : Unix.file_descr -> unit
