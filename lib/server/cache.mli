(** The daemon's content-addressed caches: compiled program images
    keyed by (program digest, flavor), and finished job results keyed
    by the full job fingerprint (program digest, mode, flavor,
    {!Config.fingerprint}, run timeout, protocol revision).  A warm
    result hit answers a resubmission in O(1) with a byte-identical
    {!Protocol.job_result} plus its pre-rendered NDJSON text.

    Thread-safe; bounded by FIFO eviction.  The internal mutex guards
    table mutation only — compilation, rendering, and durable-tier
    deserialization run outside it (concurrent compiles of the same
    digest are still deduplicated via a per-key promise). *)

open Failatom_core
open Failatom_minilang

type images = {
  plain : Compile.image;  (** the unmodified program's image *)
  compiled : Detect.compiled;  (** the flavor-specific detection image *)
}

type entry = {
  e_result : Protocol.job_result;
  e_rendered : string;
      (** [Json.to_string (Protocol.result_to_json e_result)] — exact
          bytes, safe to splice into reply frames *)
}

type persist = {
  find_blob : ns:string -> key:string -> string option;
  store_blob : ns:string -> key:string -> string -> unit;
}
(** Hooks into a durable tier (the cluster's on-disk store).  Finished
    results are spilled as their rendered text under {!ns_results};
    compiled-image metadata under {!ns_images}.  Memory misses consult
    [find_blob].  Hook exceptions are swallowed — the durable tier is
    an accelerator, never a correctness dependency. *)

val ns_results : string
val ns_images : string

type t

val create :
  ?image_capacity:int -> ?result_capacity:int -> ?persist:persist -> unit -> t
(** Defaults: 128 image entries, 1024 result entries, no durable tier. *)

val result_key :
  program_digest:string -> mode:Protocol.mode -> flavor:Detect.flavor ->
  config:Config.t -> run_timeout_s:float option -> string
(** The full job fingerprint.  Equal keys guarantee byte-identical
    results (detection is deterministic given program + config). *)

val image_blob_key : program_digest:string -> flavor:string -> string
(** The durable-tier key for an image metadata blob. *)

val images :
  t -> program_digest:string -> flavor:Detect.flavor -> Ast.program -> images
(** The cached images for the program, compiled (and woven) on a miss.
    Compilation happens outside the cache mutex; concurrent submitters
    of the same digest wait on a per-key promise instead. *)

val find_result : t -> string -> entry option
val store_result : t -> string -> Protocol.job_result -> entry

val digest_find : t -> source_key:string -> string option
(** Memoized program digest for a source key (["app:<name>"] or
    ["src:<md5 of source>"]); lets a warm resubmission skip the parse. *)

val digest_learn : t -> source_key:string -> string -> unit

val stats : t -> int * int
(** (cached images, cached results). *)
