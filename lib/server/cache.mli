(** The daemon's content-addressed caches: compiled program images
    keyed by (program digest, flavor), and finished job results keyed
    by the full job fingerprint (program digest, mode, flavor,
    {!Config.fingerprint}, run timeout, protocol revision).  A warm
    result hit answers a resubmission in O(1) with a byte-identical
    {!Protocol.job_result}.  Thread-safe; bounded by FIFO eviction. *)

open Failatom_core
open Failatom_minilang

type images = {
  plain : Compile.image;  (** the unmodified program's image *)
  compiled : Detect.compiled;  (** the flavor-specific detection image *)
}

type t

val create : ?image_capacity:int -> ?result_capacity:int -> unit -> t
(** Defaults: 128 image entries, 1024 result entries. *)

val result_key :
  program_digest:string -> mode:Protocol.mode -> flavor:Detect.flavor ->
  config:Config.t -> run_timeout_s:float option -> string
(** The full job fingerprint.  Equal keys guarantee byte-identical
    results (detection is deterministic given program + config). *)

val images :
  t -> program_digest:string -> flavor:Detect.flavor -> Ast.program -> images
(** The cached images for the program, compiled (and woven) on a miss.
    Compilation happens under the cache lock, deduplicating concurrent
    submissions of the same program. *)

val find_result : t -> string -> Protocol.job_result option
val store_result : t -> string -> Protocol.job_result -> unit

val stats : t -> int * int
(** (cached images, cached results). *)
