(* The daemon's content-addressed caches.

   Two layers, both keyed by content, never by name:

   - The {b image cache} maps (program digest, flavor) to the compiled
     program images — the plain {!Compile.image} plus the
     flavor-specific {!Detect.compiled} (woven for source weaving).
     Compilation and weaving are the per-submission fixed cost; a warm
     hit makes resubmission skip them entirely.

   - The {b result cache} maps a full job fingerprint — program digest
     plus everything that influences the outcome (mode, flavor,
     config fingerprint, run timeout, protocol revision) — to the
     finished {!Protocol.job_result} together with its rendered NDJSON
     text.  A warm hit answers a resubmission in O(1) with a
     byte-identical result: the cached value carries the very
     {!Run_log} text the original job produced, and the pre-rendered
     text lets the server splice a ~100KB done-frame into the reply
     without re-serializing it per hit.

   Keying by [Config.fingerprint] rather than by the request object
   means two requests that spell the same configuration differently
   (field order, defaulted fields) still share an entry, and that a
   future config field automatically splits the key space.

   Locking discipline: the global mutex guards {e table mutation only}.
   Compilation, result rendering, and persistent-tier deserialization
   all happen outside it.  Concurrent compiles of the same program are
   still deduplicated — an image miss installs a per-key slot under the
   lock, then compiles while holding only that slot's own mutex, so a
   second submitter of the same digest waits on the slot while
   submitters of other digests sail past.

   An optional {!persist} hook pair spills finished results and
   compiled-image metadata to a durable tier (the cluster's on-disk
   store) and consults it on memory misses, so a warm cache survives
   daemon restarts and is shared between shard processes.  Persisted
   result payloads are the exact rendered NDJSON text, so a result
   served from the durable tier is byte-identical to the original.

   Both maps are bounded by FIFO eviction — insertion order
   approximates recency well enough for a daemon whose working set is
   "the programs this user keeps poking at", and it keeps eviction O(1)
   with no per-hit bookkeeping. *)

open Failatom_core
open Failatom_minilang
module Obs = Failatom_obs.Obs

let m_image_hits = Obs.counter "server.cache_image_hits"
let m_image_misses = Obs.counter "server.cache_image_misses"
let m_image_evictions = Obs.counter "server.cache_image_evictions"
let m_result_hits = Obs.counter "server.cache_result_hits"
let m_result_misses = Obs.counter "server.cache_result_misses"
let m_result_evictions = Obs.counter "server.cache_result_evictions"
let m_store_hits = Obs.counter "server.cache_store_hits"
let m_store_spills = Obs.counter "server.cache_store_spills"

type images = {
  plain : Compile.image;
  compiled : Detect.compiled;
}

type entry = {
  e_result : Protocol.job_result;
  e_rendered : string;  (* Json.to_string (Protocol.result_to_json e_result) *)
}

type persist = {
  find_blob : ns:string -> key:string -> string option;
  store_blob : ns:string -> key:string -> string -> unit;
}

let ns_results = "results"
let ns_images = "images"

(* A per-key compilation promise: installed in the image table under
   the global lock, filled outside it.  Waiters block on the slot, not
   on the cache. *)
type slot = {
  s_mutex : Mutex.t;
  s_cond : Condition.t;
  mutable s_state : slot_state;
}

and slot_state =
  | Pending
  | Ready of images
  | Failed of exn

type 'a bounded = {
  capacity : int;
  table : (string, 'a) Hashtbl.t;
  order : string Queue.t;  (* insertion order, oldest first *)
}

let bounded capacity =
  { capacity; table = Hashtbl.create 64; order = Queue.create () }

(* Adds under the caller-held lock; reports whether an older entry was
   evicted so the caller can count it outside. *)
let bounded_add b key value =
  if Hashtbl.mem b.table key then false
  else begin
    let evicted =
      if Hashtbl.length b.table >= b.capacity then begin
        let oldest = Queue.pop b.order in
        Hashtbl.remove b.table oldest;
        true
      end
      else false
    in
    Hashtbl.replace b.table key value;
    Queue.push key b.order;
    evicted
  end

let bounded_remove b key =
  if Hashtbl.mem b.table key then begin
    Hashtbl.remove b.table key;
    (* drop the key from the order queue lazily: rebuild without it *)
    let keep = Queue.create () in
    Queue.iter (fun k -> if not (String.equal k key) then Queue.push k keep) b.order;
    Queue.clear b.order;
    Queue.transfer keep b.order
  end

type t = {
  mutex : Mutex.t;  (* guards the three tables below, nothing else *)
  images : slot bounded;
  results : entry bounded;
  digests : (string, string) Hashtbl.t;  (* source key -> program digest *)
  digest_order : string Queue.t;
  digest_capacity : int;
  persist : persist option;
}

let create ?(image_capacity = 128) ?(result_capacity = 1024) ?persist () =
  { mutex = Mutex.create ();
    images = bounded image_capacity;
    results = bounded result_capacity;
    digests = Hashtbl.create 64;
    digest_order = Queue.create ();
    digest_capacity = 256;
    persist }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let image_key ~program_digest ~flavor =
  program_digest ^ "/" ^ Protocol.flavor_wire_name flavor

(* '/' would nest directories in the durable tier; use a flat spelling
   there ([flavor] is the wire name). *)
let image_blob_key ~program_digest ~flavor = program_digest ^ "." ^ flavor

(* The full job fingerprint.  The protocol revision is part of it so an
   upgraded daemon never serves results serialized under an older
   result shape. *)
let result_key ~program_digest ~mode ~flavor ~config ~run_timeout_s =
  let canonical =
    String.concat "|"
      [ Protocol.version;
        program_digest;
        Protocol.mode_name mode;
        Protocol.flavor_wire_name flavor;
        Config.fingerprint config;
        (match run_timeout_s with None -> "none" | Some s -> Printf.sprintf "%.6f" s) ]
  in
  Digest.to_hex (Digest.string canonical)

(* ------------------------------------------------------------------ *)
(* Program-digest memo                                                 *)
(* ------------------------------------------------------------------ *)

(* Computing a program digest requires parsing (it is the md5 of the
   pretty-printed AST), so the warm submit path memoizes
   source-key -> digest: a resubmission of a known program skips the
   parse entirely.  Only successful computes are stored, so a malformed
   source is re-validated (and re-rejected) every time. *)
let digest_find t ~source_key =
  locked t (fun () -> Hashtbl.find_opt t.digests source_key)

let digest_learn t ~source_key d =
  locked t (fun () ->
      if not (Hashtbl.mem t.digests source_key) then begin
        if Hashtbl.length t.digests >= t.digest_capacity then begin
          let oldest = Queue.pop t.digest_order in
          Hashtbl.remove t.digests oldest
        end;
        Hashtbl.replace t.digests source_key d;
        Queue.push source_key t.digest_order
      end)

(* ------------------------------------------------------------------ *)
(* Images                                                              *)
(* ------------------------------------------------------------------ *)

(* Persisted image metadata: enough to recompile the image after a
   restart (the source is the canonical pretty-printing, whose md5 is
   the digest). *)
let image_meta_to_json ~program_digest ~flavor (program : Ast.program) =
  Json.Obj
    [ ("schema", Json.Str "failatom.image-meta/1");
      ("digest", Json.Str program_digest);
      ("flavor", Json.Str (Protocol.flavor_wire_name flavor));
      ("source", Json.Str (Pretty.program_to_string program)) ]

let images t ~program_digest ~flavor (program : Ast.program) =
  let key = image_key ~program_digest ~flavor in
  let slot, fresh =
    locked t (fun () ->
        match Hashtbl.find_opt t.images.table key with
        | Some slot -> (slot, false)
        | None ->
          let slot =
            { s_mutex = Mutex.create ();
              s_cond = Condition.create ();
              s_state = Pending }
          in
          if bounded_add t.images key slot then Obs.incr m_image_evictions;
          (slot, true))
  in
  if fresh then begin
    Obs.incr m_image_misses;
    (* Compile outside the cache mutex: only submitters of this same
       digest wait; everyone else proceeds. *)
    let outcome =
      try
        let plain = Compile.image program in
        let compiled = Detect.compile ~plain flavor program in
        Ready { plain; compiled }
      with e -> Failed e
    in
    Mutex.lock slot.s_mutex;
    slot.s_state <- outcome;
    Condition.broadcast slot.s_cond;
    Mutex.unlock slot.s_mutex;
    match outcome with
    | Ready images ->
      (match t.persist with
       | Some p ->
         let meta = image_meta_to_json ~program_digest ~flavor program in
         (try
            p.store_blob ~ns:ns_images
              ~key:
                (image_blob_key ~program_digest
                   ~flavor:(Protocol.flavor_wire_name flavor))
              (Json.to_string meta)
          with _ -> ())
       | None -> ());
      images
    | Failed e ->
      (* Do not leave a poisoned slot behind: the next submitter
         retries the compile. *)
      locked t (fun () -> bounded_remove t.images key);
      raise e
    | Pending -> assert false
  end
  else begin
    Mutex.lock slot.s_mutex;
    while slot.s_state = Pending do
      Condition.wait slot.s_cond slot.s_mutex
    done;
    let state = slot.s_state in
    Mutex.unlock slot.s_mutex;
    match state with
    | Ready images ->
      Obs.incr m_image_hits;
      images
    | Failed e -> raise e
    | Pending -> assert false
  end

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

let render result = Json.to_string (Protocol.result_to_json result)

let find_result t key =
  match
    locked t (fun () -> Hashtbl.find_opt t.results.table key)
  with
  | Some e ->
    Obs.incr m_result_hits;
    Some e
  | None -> (
    (* Memory miss: consult the durable tier, deserializing outside the
       lock.  The stored payload is the exact rendered text, so the
       revived entry keeps the byte-identity guarantee. *)
    match t.persist with
    | None ->
      Obs.incr m_result_misses;
      None
    | Some p -> (
      match (try p.find_blob ~ns:ns_results ~key with _ -> None) with
      | None ->
        Obs.incr m_result_misses;
        None
      | Some payload -> (
        match
          try Ok (Json.of_string payload) with Json.Parse_error m -> Error m
        with
        | Error _ ->
          Obs.incr m_result_misses;
          None
        | Ok json -> (
          match Protocol.result_of_json json with
          | Error _ ->
            Obs.incr m_result_misses;
            None
          | Ok result ->
            let e = { e_result = result; e_rendered = payload } in
            let evicted =
              locked t (fun () -> bounded_add t.results key e)
            in
            if evicted then Obs.incr m_result_evictions;
            Obs.incr m_result_hits;
            Obs.incr m_store_hits;
            Some e))))

let store_result t key result =
  let e = { e_result = result; e_rendered = render result } in
  let evicted = locked t (fun () -> bounded_add t.results key e) in
  if evicted then Obs.incr m_result_evictions;
  (match t.persist with
   | Some p ->
     (try
        p.store_blob ~ns:ns_results ~key e.e_rendered;
        Obs.incr m_store_spills
      with _ -> ())
   | None -> ());
  e

let stats t =
  locked t (fun () ->
      (Hashtbl.length t.images.table, Hashtbl.length t.results.table))
