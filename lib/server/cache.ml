(* The daemon's content-addressed caches.

   Two layers, both keyed by content, never by name:

   - The {b image cache} maps (program digest, flavor) to the compiled
     program images — the plain {!Compile.image} plus the
     flavor-specific {!Detect.compiled} (woven for source weaving).
     Compilation and weaving are the per-submission fixed cost; a warm
     hit makes resubmission skip them entirely.

   - The {b result cache} maps a full job fingerprint — program digest
     plus everything that influences the outcome (mode, flavor,
     config fingerprint, run timeout, protocol revision) — to the
     finished {!Protocol.job_result}.  A warm hit answers a
     resubmission in O(1) with a byte-identical result: the cached
     value carries the very {!Run_log} text the original job produced.

   Keying by [Config.fingerprint] rather than by the request object
   means two requests that spell the same configuration differently
   (field order, defaulted fields) still share an entry, and that a
   future config field automatically splits the key space.

   Both maps are guarded by one mutex and bounded by FIFO eviction —
   insertion order approximates recency well enough for a daemon whose
   working set is "the programs this user keeps poking at", and it
   keeps eviction O(1) with no per-hit bookkeeping. *)

open Failatom_core
open Failatom_minilang
module Obs = Failatom_obs.Obs

let m_image_hits = Obs.counter "server.cache_image_hits"
let m_image_misses = Obs.counter "server.cache_image_misses"
let m_result_hits = Obs.counter "server.cache_result_hits"
let m_result_misses = Obs.counter "server.cache_result_misses"

type images = {
  plain : Compile.image;
  compiled : Detect.compiled;
}

type 'a bounded = {
  capacity : int;
  table : (string, 'a) Hashtbl.t;
  order : string Queue.t;  (* insertion order, oldest first *)
}

let bounded capacity =
  { capacity; table = Hashtbl.create 64; order = Queue.create () }

let bounded_add b key value =
  if not (Hashtbl.mem b.table key) then begin
    if Hashtbl.length b.table >= b.capacity then begin
      let oldest = Queue.pop b.order in
      Hashtbl.remove b.table oldest
    end;
    Hashtbl.replace b.table key value;
    Queue.push key b.order
  end

type t = {
  mutex : Mutex.t;
  images : images bounded;
  results : Protocol.job_result bounded;
}

let create ?(image_capacity = 128) ?(result_capacity = 1024) () =
  { mutex = Mutex.create ();
    images = bounded image_capacity;
    results = bounded result_capacity }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let image_key ~program_digest ~flavor =
  program_digest ^ "/" ^ Protocol.flavor_wire_name flavor

(* The full job fingerprint.  The protocol revision is part of it so an
   upgraded daemon never serves results serialized under an older
   result shape. *)
let result_key ~program_digest ~mode ~flavor ~config ~run_timeout_s =
  let canonical =
    String.concat "|"
      [ Protocol.version;
        program_digest;
        Protocol.mode_name mode;
        Protocol.flavor_wire_name flavor;
        Config.fingerprint config;
        (match run_timeout_s with None -> "none" | Some s -> Printf.sprintf "%.6f" s) ]
  in
  Digest.to_hex (Digest.string canonical)

(* Returns the cached images for the program, compiling (and weaving,
   for source weaving) them on a miss.  The compile runs inside the
   lock: blocking a concurrent submission of the same program until the
   image exists is precisely the deduplication we want, and compilation
   is milliseconds. *)
let images t ~program_digest ~flavor (program : Ast.program) =
  let key = image_key ~program_digest ~flavor in
  locked t (fun () ->
      match Hashtbl.find_opt t.images.table key with
      | Some images ->
        Obs.incr m_image_hits;
        images
      | None ->
        Obs.incr m_image_misses;
        let plain = Compile.image program in
        let compiled = Detect.compile ~plain flavor program in
        let images = { plain; compiled } in
        bounded_add t.images key images;
        images)

let find_result t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.results.table key with
      | Some r ->
        Obs.incr m_result_hits;
        Some r
      | None ->
        Obs.incr m_result_misses;
        None)

let store_result t key result = locked t (fun () -> bounded_add t.results key result)

let stats t =
  locked t (fun () ->
      (Hashtbl.length t.images.table, Hashtbl.length t.results.table))
