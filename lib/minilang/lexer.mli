(** Hand-written lexer for MiniLang. *)

type token =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW_CLASS | KW_EXTENDS | KW_FIELD | KW_METHOD | KW_FUNCTION
  | KW_VAR | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN
  | KW_THROW | KW_THROWS | KW_TRY | KW_CATCH | KW_FINALLY
  | KW_BREAK | KW_CONTINUE | KW_NEW | KW_THIS | KW_SUPER
  | KW_TRUE | KW_FALSE | KW_NULL
  | KW_SPAWN | KW_SYNCHRONIZED
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | EQEQ | NEQ | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | EOF

exception Lex_error of string * Ast.pos

val token_name : token -> string
(** Human-readable token description, for error messages. *)

val tokenize : string -> (token * Ast.pos) list
(** Tokenizes a whole compilation unit; the list ends with [EOF].
    @raise Lex_error on malformed input. *)
