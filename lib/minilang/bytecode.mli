(** AST → flat bytecode emission for the [Failatom_runtime.Exec]
    dispatch loop.

    One [Exec.code] is emitted per method or function body at image
    build time.  The emitter mirrors the closure compiler exactly —
    slot resolution, static call/new/super resolution, error messages
    and {!Vm.tick} accounting — so the two engines are observably
    identical.  The tick of every AST node is folded into the tick
    field of the next emitted instruction; loops and try/catch/finally
    become nested sub-blocks referenced through site records; a
    peephole pass fuses the dominant dynamic instruction pairs
    (measured on the Table-1 app suite, see doc/bytecode.md) into
    superinstructions during emission. *)

open Failatom_runtime

type cls_info = {
  ci_template : (string * Value.t) list;
  ci_init : int;  (** image method index of [init], or -1 *)
  ci_is_exc : bool;
}

(** What the emitter needs to know about the image under construction,
    passed as closures by [Compile] so the module dependency stays
    one-way (Compile → Bytecode → Exec). *)
type linkage = {
  lk_resolve : string -> string -> int;
      (** class name → method name → image method index, or -1 *)
  lk_fn : string -> (int * (Vm.t -> Value.t list -> Value.t)) option;
      (** user function: arity and (late-bound) implementation *)
  lk_class : string -> cls_info option;
  lk_is_exc : Vm.t -> string -> bool;
  lk_exn_matches : Vm.t -> Vm.exn_value -> string -> bool;
}

val binop_code : Ast.binop -> int
(** Operand encoding of a binary operator ([Ast.binop] declaration
    order, matching [Exec]'s evaluator). *)

val compile_body :
  linkage ->
  defining:(string * string option) option ->
  string list ->
  Ast.stmt list ->
  Exec.code * int array
(** [compile_body lk ~defining params body] emits a body and returns
    the code object plus the register index of each parameter.
    [defining] is the enclosing class and its superclass (for [super]
    resolution), or [None] in a free function.  Exposed for the fusion
    unit tests. *)

val compile_method_code :
  linkage ->
  cls_name:string ->
  defining_super:string option ->
  Ast.meth_decl ->
  Exec.code * int array

val compile_method :
  linkage -> cls_name:string -> defining_super:string option -> Ast.meth_decl -> Vm.impl
(** Arity-checks (same message and position as the closure engine's
    method entry) and runs the emitted code via [Exec.run_root].
    Defects are raised as [Exec.Error]; [Compile] re-raises them as
    [Runtime_error] at the boundary. *)

val compile_function : linkage -> Ast.func_decl -> Vm.t -> Value.t list -> Value.t
