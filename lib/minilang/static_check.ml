(* Static well-formedness checks for MiniLang programs.

   MiniLang is dynamically typed, but a number of structural defects can
   and should be rejected before a program reaches the injection
   pipeline — a malformed workload would otherwise surface as a bogus
   non-atomicity report. *)

open Failatom_runtime

type error = { message : string; pos : Ast.pos }

exception Check_error of error list

let pp_error ppf { message; pos } = Fmt.pf ppf "%a: %s" Ast.pp_pos pos message

(* Names beginning with "__" are reserved for the weaving engine
   (wrapper methods and reflective hooks).  [allow_reserved] is set when
   checking programs that the weaver itself produced. *)
let reserved name = String.length name >= 2 && String.sub name 0 2 = "__"

(* The parser itself desugars [spawn] and [synchronized] into these
   reserved forms, so they must pass the check even for user programs
   (allow_reserved = false): the user never typed the '__' names. *)
let concurrency_hook name =
  List.mem name [ "__spawn"; "__monitor_enter"; "__monitor_exit" ]

let sync_temp name =
  String.length name >= 6 && String.sub name 0 6 = "__sync"

let check ?(allow_reserved = false) (prog : Ast.program) =
  let errors = ref [] in
  let err pos fmt = Fmt.kstr (fun message -> errors := { message; pos } :: !errors) fmt in

  let classes = Hashtbl.create 16 in
  let functions = Hashtbl.create 16 in
  let builtin_class name =
    List.mem_assoc name Vm.builtin_exception_classes
  in

  (* Pass 1: collect declarations, reject duplicates. *)
  List.iter
    (fun decl ->
      match decl with
      | Ast.Class_decl c ->
        if Hashtbl.mem classes c.Ast.c_name then
          err c.Ast.c_pos "duplicate class %s" c.Ast.c_name
        else if builtin_class c.Ast.c_name then
          err c.Ast.c_pos "class %s shadows a built-in exception class" c.Ast.c_name
        else Hashtbl.replace classes c.Ast.c_name c
      | Ast.Func_decl f ->
        if Hashtbl.mem functions f.Ast.f_name then
          err f.Ast.f_pos "duplicate function %s" f.Ast.f_name
        else if Builtins.exists f.Ast.f_name then
          err f.Ast.f_pos "function %s shadows a builtin" f.Ast.f_name
        else Hashtbl.replace functions f.Ast.f_name f)
    prog;

  let class_known name = Hashtbl.mem classes name || builtin_class name in

  (* Superclass chains: known and acyclic. *)
  let rec super_chain_ok seen (c : Ast.class_decl) =
    match c.Ast.c_super with
    | None -> true
    | Some s ->
      if List.mem s seen then begin
        err c.Ast.c_pos "inheritance cycle through %s" s;
        false
      end
      else if builtin_class s then true
      else (
        match Hashtbl.find_opt classes s with
        | None ->
          err c.Ast.c_pos "unknown superclass %s" s;
          false
        | Some parent -> super_chain_ok (c.Ast.c_name :: seen) parent)
  in
  Hashtbl.iter (fun _ c -> ignore (super_chain_ok [] c)) classes;

  (* Field sets including inherited fields, for shadowing checks.  The
     [seen] set keeps this terminating on (already reported) cyclic
     inheritance chains. *)
  let rec inherited_fields seen name =
    if builtin_class name then [ "message" ]
    else if List.mem name seen then []
    else
      match Hashtbl.find_opt classes name with
      | None -> []
      | Some c ->
        (match c.Ast.c_super with
         | Some s -> inherited_fields (name :: seen) s
         | None -> [])
        @ c.Ast.c_fields
  in
  let inherited_fields name = inherited_fields [] name in

  let check_name pos name =
    if reserved name && not (allow_reserved || sync_temp name) then
      err pos "identifier %s uses the reserved '__' prefix" name
  in

  (* Statement / expression traversal. *)
  let rec check_expr ~in_method ~cls (e : Ast.expr) =
    let pos = e.Ast.epos in
    match e.Ast.e with
    | Ast.Int_lit _ | Ast.Str_lit _ | Ast.Bool_lit _ | Ast.Null_lit -> ()
    | Ast.This -> if not in_method then err pos "'this' outside of a method"
    | Ast.Var name -> check_name pos name
    | Ast.Unary (_, a) -> check_expr ~in_method ~cls a
    | Ast.Binary (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
      check_expr ~in_method ~cls a;
      check_expr ~in_method ~cls b
    | Ast.Field (r, _) -> check_expr ~in_method ~cls r
    | Ast.Index (r, i) ->
      check_expr ~in_method ~cls r;
      check_expr ~in_method ~cls i
    | Ast.Call (r, m, args) ->
      if not allow_reserved then check_name pos m;
      check_expr ~in_method ~cls r;
      List.iter (check_expr ~in_method ~cls) args
    | Ast.Super_call (m, args) ->
      if not in_method then err pos "'super' outside of a method";
      (match cls with
       | Some c when c.Ast.c_super = None ->
         err pos "'super.%s' in class %s, which has no superclass" m c.Ast.c_name
       | Some _ | None -> ());
      List.iter (check_expr ~in_method ~cls) args
    | Ast.Fn_call (name, args) ->
      (* Hook calls (__-prefixed) are resolved at runtime; everything
         else must be a declared function or a builtin. *)
      if reserved name then begin
        if not (allow_reserved || concurrency_hook name) then check_name pos name
      end
      else if not (Hashtbl.mem functions name || Builtins.exists name) then
        err pos "unknown function %s" name
      else begin
        let expected =
          match Hashtbl.find_opt functions name with
          | Some f -> Some (List.length f.Ast.f_params)
          | None -> Option.map fst (Builtins.find name)
        in
        match expected with
        | Some n when n <> List.length args ->
          err pos "%s expects %d argument(s), got %d" name n (List.length args)
        | Some _ | None -> ()
      end;
      List.iter (check_expr ~in_method ~cls) args
    | Ast.New (c, args) ->
      if not (class_known c) then err pos "unknown class %s" c;
      List.iter (check_expr ~in_method ~cls) args
    | Ast.Array_lit elems -> List.iter (check_expr ~in_method ~cls) elems
  in

  let rec check_stmt ~in_method ~cls ~in_loop (st : Ast.stmt) =
    let pos = st.Ast.spos in
    let expr = check_expr ~in_method ~cls in
    match st.Ast.s with
    | Ast.Var_decl (x, e) ->
      check_name pos x;
      expr e
    | Ast.Assign (l, e) ->
      (match l with
       | Ast.Lvar x -> check_name pos x
       | Ast.Lfield (r, _) -> expr r
       | Ast.Lindex (r, i) ->
         expr r;
         expr i);
      expr e
    | Ast.Expr_stmt e -> expr e
    | Ast.If (c, t, f) ->
      expr c;
      check_block ~in_method ~cls ~in_loop t;
      check_block ~in_method ~cls ~in_loop f
    | Ast.While (c, b) ->
      expr c;
      check_block ~in_method ~cls ~in_loop:true b
    | Ast.For (init, cond, update, b) ->
      Option.iter (check_stmt ~in_method ~cls ~in_loop) init;
      Option.iter expr cond;
      Option.iter (check_stmt ~in_method ~cls ~in_loop:true) update;
      check_block ~in_method ~cls ~in_loop:true b
    | Ast.Return e -> Option.iter expr e
    | Ast.Throw e -> expr e
    | Ast.Try (b, catches, fin) ->
      check_block ~in_method ~cls ~in_loop b;
      List.iter
        (fun clause ->
          if not (class_known clause.Ast.cc_class) then
            err pos "catch of unknown exception class %s" clause.Ast.cc_class;
          check_name pos clause.Ast.cc_var;
          check_block ~in_method ~cls ~in_loop clause.Ast.cc_body)
        catches;
      Option.iter (check_block ~in_method ~cls ~in_loop) fin
    | Ast.Break -> if not in_loop then err pos "'break' outside of a loop"
    | Ast.Continue -> if not in_loop then err pos "'continue' outside of a loop"
    | Ast.Block b -> check_block ~in_method ~cls ~in_loop b
  and check_block ~in_method ~cls ~in_loop b =
    List.iter (check_stmt ~in_method ~cls ~in_loop) b
  in

  List.iter
    (fun decl ->
      match decl with
      | Ast.Class_decl c ->
        if not allow_reserved then check_name c.Ast.c_pos c.Ast.c_name;
        (* duplicate / shadowed fields *)
        let inherited =
          match c.Ast.c_super with Some s -> inherited_fields s | None -> []
        in
        List.fold_left
          (fun seen f ->
            check_name c.Ast.c_pos f;
            if List.mem f seen then err c.Ast.c_pos "duplicate field %s in %s" f c.Ast.c_name;
            if List.mem f inherited then
              err c.Ast.c_pos "field %s of %s shadows an inherited field" f c.Ast.c_name;
            f :: seen)
          [] c.Ast.c_fields
        |> ignore;
        (* methods *)
        List.fold_left
          (fun seen (m : Ast.meth_decl) ->
            if not allow_reserved then check_name m.Ast.m_pos m.Ast.m_name;
            if List.mem m.Ast.m_name seen then
              err m.Ast.m_pos "duplicate method %s in %s" m.Ast.m_name c.Ast.c_name;
            List.iter
              (fun t ->
                if not (class_known t) then
                  err m.Ast.m_pos "throws clause names unknown class %s" t)
              m.Ast.m_throws;
            check_block ~in_method:true ~cls:(Some c) ~in_loop:false m.Ast.m_body;
            m.Ast.m_name :: seen)
          [] c.Ast.c_methods
        |> ignore
      | Ast.Func_decl f ->
        if not allow_reserved then check_name f.Ast.f_pos f.Ast.f_name;
        check_block ~in_method:false ~cls:None ~in_loop:false f.Ast.f_body)
    prog;

  match List.rev !errors with [] -> () | errs -> raise (Check_error errs)
