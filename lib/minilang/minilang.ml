(* Façade for the MiniLang front end: parse, check, compile, run.

   Typical use:
   {[
     let program = Minilang.parse source in
     let vm = Minilang.load program in
     let _exit_value = Minilang.run vm in
     print_string (Minilang.output vm)
   ]} *)

open Failatom_runtime

(* Parses and statically checks a MiniLang compilation unit. *)
let parse ?allow_reserved src =
  let prog = Parser.program_of_string src in
  Static_check.check ?allow_reserved prog;
  prog

(* Compiles a (checked) program into a fresh VM. *)
let load = Compile.program

(* Parses, checks and compiles in one go. *)
let load_string ?allow_reserved src = load (parse ?allow_reserved src)

(* Runs [main]; the program's output is in [output vm] afterwards. *)
let run ?policy vm = Compile.run_main ?policy vm

(* Does the program create threads?  Syntactically decidable because
   [spawn] desugars to the reserved [__spawn] hook, which user code
   cannot name.  Drives schedule-axis expansion and disables static
   injection-point pruning (pruning reasons about sequential flow). *)
let uses_concurrency (prog : Ast.program) =
  let found = ref false in
  let rec expr (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Fn_call ("__spawn", args) ->
      found := true;
      List.iter expr args
    | Ast.Int_lit _ | Ast.Str_lit _ | Ast.Bool_lit _ | Ast.Null_lit
    | Ast.This | Ast.Var _ -> ()
    | Ast.Unary (_, a) -> expr a
    | Ast.Binary (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
      expr a;
      expr b
    | Ast.Field (r, _) -> expr r
    | Ast.Index (r, i) ->
      expr r;
      expr i
    | Ast.Call (r, _, args) ->
      expr r;
      List.iter expr args
    | Ast.Super_call (_, args) | Ast.Fn_call (_, args) | Ast.New (_, args)
    | Ast.Array_lit args -> List.iter expr args
  and stmt (s : Ast.stmt) =
    match s.Ast.s with
    | Ast.Var_decl (_, e) | Ast.Expr_stmt e | Ast.Throw e -> expr e
    | Ast.Assign (l, e) ->
      (match l with
       | Ast.Lvar _ -> ()
       | Ast.Lfield (r, _) -> expr r
       | Ast.Lindex (r, i) ->
         expr r;
         expr i);
      expr e
    | Ast.If (c, t, f) ->
      expr c;
      List.iter stmt t;
      List.iter stmt f
    | Ast.While (c, b) ->
      expr c;
      List.iter stmt b
    | Ast.For (i, c, u, b) ->
      Option.iter stmt i;
      Option.iter expr c;
      Option.iter stmt u;
      List.iter stmt b
    | Ast.Return e -> Option.iter expr e
    | Ast.Try (b, catches, fin) ->
      List.iter stmt b;
      List.iter (fun c -> List.iter stmt c.Ast.cc_body) catches;
      Option.iter (List.iter stmt) fin
    | Ast.Break | Ast.Continue -> ()
    | Ast.Block b -> List.iter stmt b
  in
  List.iter
    (function
      | Ast.Class_decl c -> List.iter (fun m -> List.iter stmt m.Ast.m_body) c.Ast.c_methods
      | Ast.Func_decl f -> List.iter stmt f.Ast.f_body)
    prog;
  !found

let output = Vm.output

(* Runs a source text and returns its printed output. *)
let run_string ?allow_reserved src =
  let vm = load_string ?allow_reserved src in
  ignore (run vm);
  output vm

(* Content address of a program: md5 hex of its pretty-printed text.
   Pretty-printing canonicalises whitespace and comments, so two sources
   that parse to the same AST share a digest. *)
let program_digest (program : Ast.program) =
  Digest.to_hex (Digest.string (Pretty.program_to_string program))
