(* Façade for the MiniLang front end: parse, check, compile, run.

   Typical use:
   {[
     let program = Minilang.parse source in
     let vm = Minilang.load program in
     let _exit_value = Minilang.run vm in
     print_string (Minilang.output vm)
   ]} *)

open Failatom_runtime

(* Parses and statically checks a MiniLang compilation unit. *)
let parse ?allow_reserved src =
  let prog = Parser.program_of_string src in
  Static_check.check ?allow_reserved prog;
  prog

(* Compiles a (checked) program into a fresh VM. *)
let load = Compile.program

(* Parses, checks and compiles in one go. *)
let load_string ?allow_reserved src = load (parse ?allow_reserved src)

(* Runs [main]; the program's output is in [output vm] afterwards. *)
let run vm = Compile.run_main vm

let output = Vm.output

(* Runs a source text and returns its printed output. *)
let run_string ?allow_reserved src =
  let vm = load_string ?allow_reserved src in
  ignore (run vm);
  output vm

(* Content address of a program: md5 hex of its pretty-printed text.
   Pretty-printing canonicalises whitespace and comments, so two sources
   that parse to the same AST share a digest. *)
let program_digest (program : Ast.program) =
  Digest.to_hex (Digest.string (Pretty.program_to_string program))
