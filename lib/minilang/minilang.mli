(** Façade for the MiniLang front end: parse, check, compile, run.

    {[
      let program = Minilang.parse source in
      let vm = Minilang.load program in
      let _exit_value = Minilang.run vm in
      print_string (Minilang.output vm)
    ]} *)

open Failatom_runtime

val parse : ?allow_reserved:bool -> string -> Ast.program
(** Parses and statically checks a compilation unit.
    @raise Lexer.Lex_error, Parser.Parse_error, Static_check.Check_error *)

val load : Ast.program -> Vm.t
(** Compiles a (checked) program into a fresh VM. *)

val load_string : ?allow_reserved:bool -> string -> Vm.t

val run : ?policy:Sched.policy -> Vm.t -> Value.t
(** Runs [main] under the scheduler (default {!Sched.Coop}, which keeps
    sequential programs exactly as before); the program's output is in
    [output vm] afterwards. *)

val uses_concurrency : Ast.program -> bool
(** Does the program create threads ([spawn] anywhere in its text)?
    Syntactically decidable because [spawn] desugars to the reserved
    [__spawn] hook, which user code cannot name. *)

val output : Vm.t -> string

val run_string : ?allow_reserved:bool -> string -> string
(** Runs a source text and returns its printed output. *)

val program_digest : Ast.program -> string
(** Content address of a program: md5 hex of its pretty-printed text.
    Two sources that parse to the same AST share a digest (whitespace
    and comments are canonicalised away). *)
