(* Built-in functions callable from MiniLang with free-function syntax.

   The set deliberately mirrors what the paper's workloads need from
   their standard libraries (java.util / STL): array allocation and
   copying, string primitives, hashing, printing, and a deep
   object-graph equality used by test drivers to validate state. *)

open Failatom_runtime

let arity_error vm name expected got =
  ignore vm;
  invalid_arg
    (Printf.sprintf "builtin %s: expected %d argument(s), got %d" name expected got)

let as_int vm name v =
  match (v : Value.t) with
  | Value.Int n -> n
  | v ->
    ignore vm;
    invalid_arg (Printf.sprintf "builtin %s: expected int, got %s" name (Value.type_name v))

let as_str vm name v =
  match (v : Value.t) with
  | Value.Str s -> s
  | v ->
    ignore vm;
    invalid_arg
      (Printf.sprintf "builtin %s: expected string, got %s" name (Value.type_name v))

(* Same polynomial string hash as java.lang.String, used by the hash
   container workloads. *)
let string_hash s =
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land 0x3FFFFFFF) s;
  !h

let table : (string, int * (Vm.t -> Value.t list -> Value.t)) Hashtbl.t =
  Hashtbl.create 64

let define name arity f = Hashtbl.replace table name (arity, f)

let () =
  define "print" 1 (fun vm args ->
      match args with
      | [ v ] ->
        Vm.print_out vm (Value.to_display_string v);
        Value.Null
      | _ -> assert false);
  define "println" 1 (fun vm args ->
      match args with
      | [ v ] ->
        Vm.print_out vm (Value.to_display_string v);
        Vm.print_out vm "\n";
        Value.Null
      | _ -> assert false);
  define "len" 1 (fun vm args ->
      match args with
      | [ Value.Str s ] -> Value.Int (String.length s)
      | [ Value.Ref id ] -> (
        match Heap.array_length vm.Vm.heap id with
        | Some n -> Value.Int n
        | None -> Vm.throw vm "IllegalArgumentException" "len: not an array")
      | [ Value.Null ] -> Vm.throw vm "NullPointerException" "len(null)"
      | [ v ] ->
        Vm.throw vm "IllegalArgumentException" ("len: unsupported " ^ Value.type_name v)
      | _ -> assert false);
  define "str" 1 (fun _vm args ->
      match args with
      | [ v ] -> Value.Str (Value.to_display_string v)
      | _ -> assert false);
  define "newArray" 1 (fun vm args ->
      match args with
      | [ v ] ->
        let n = as_int vm "newArray" v in
        if n < 0 then
          Vm.throw vm "NegativeArraySizeException" (string_of_int n)
        else Value.Ref (Heap.alloc_array vm.Vm.heap (Array.make n Value.Null))
      | _ -> assert false);
  define "arraycopy" 5 (fun vm args ->
      match args with
      | [ src; src_pos; dst; dst_pos; count ] -> (
        let sp = as_int vm "arraycopy" src_pos
        and dp = as_int vm "arraycopy" dst_pos
        and n = as_int vm "arraycopy" count in
        match src, dst with
        | Value.Ref s, Value.Ref d -> (
          match Heap.get vm.Vm.heap s, Heap.get vm.Vm.heap d with
          | Heap.Arr sa, Heap.Arr da ->
            if n < 0 || sp < 0 || dp < 0
               || sp + n > Array.length sa
               || dp + n > Array.length da
            then Vm.throw vm "IndexOutOfBoundsException" "arraycopy"
            else begin
              Heap.barrier vm.Vm.heap d;
              Array.blit sa sp da dp n;
              Value.Null
            end
          | _ -> Vm.throw vm "IllegalArgumentException" "arraycopy: not arrays")
        | Value.Null, _ | _, Value.Null ->
          Vm.throw vm "NullPointerException" "arraycopy(null)"
        | _ -> Vm.throw vm "IllegalArgumentException" "arraycopy: not arrays")
      | _ -> assert false);
  define "charAt" 2 (fun vm args ->
      match args with
      | [ s; i ] ->
        let s = as_str vm "charAt" s and i = as_int vm "charAt" i in
        if i < 0 || i >= String.length s then
          Vm.throw vm "IndexOutOfBoundsException" (Printf.sprintf "charAt(%d)" i)
        else Value.Str (String.make 1 s.[i])
      | _ -> assert false);
  define "ord" 1 (fun vm args ->
      match args with
      | [ s ] ->
        let s = as_str vm "ord" s in
        if String.length s = 0 then
          Vm.throw vm "IndexOutOfBoundsException" "ord of empty string"
        else Value.Int (Char.code s.[0])
      | _ -> assert false);
  define "chr" 1 (fun vm args ->
      match args with
      | [ n ] ->
        let n = as_int vm "chr" n in
        if n < 0 || n > 255 then
          Vm.throw vm "IllegalArgumentException" (Printf.sprintf "chr(%d)" n)
        else Value.Str (String.make 1 (Char.chr n))
      | _ -> assert false);
  define "substr" 3 (fun vm args ->
      match args with
      | [ s; start; count ] ->
        let s = as_str vm "substr" s
        and start = as_int vm "substr" start
        and count = as_int vm "substr" count in
        if start < 0 || count < 0 || start + count > String.length s then
          Vm.throw vm "IndexOutOfBoundsException"
            (Printf.sprintf "substr(%d,%d) of %d" start count (String.length s))
        else Value.Str (String.sub s start count)
      | _ -> assert false);
  define "strcmp" 2 (fun vm args ->
      match args with
      | [ a; b ] -> Value.Int (compare (as_str vm "strcmp" a) (as_str vm "strcmp" b))
      | _ -> assert false);
  define "parseInt" 1 (fun vm args ->
      match args with
      | [ s ] -> (
        let s = as_str vm "parseInt" s in
        match int_of_string_opt s with
        | Some n -> Value.Int n
        | None -> Vm.throw vm "IllegalArgumentException" ("parseInt: " ^ s))
      | _ -> assert false);
  define "hashCode" 1 (fun vm args ->
      match args with
      | [ Value.Int n ] -> Value.Int (abs n)
      | [ Value.Bool b ] -> Value.Int (if b then 1 else 0)
      | [ Value.Str s ] -> Value.Int (string_hash s)
      | [ Value.Null ] -> Value.Int 0
      | [ Value.Ref id ] -> Value.Int (id land 0x3FFFFFFF)
      | _ ->
        ignore vm;
        assert false);
  define "abs" 1 (fun vm args ->
      match args with
      | [ v ] -> Value.Int (abs (as_int vm "abs" v))
      | _ -> assert false);
  define "min" 2 (fun vm args ->
      match args with
      | [ a; b ] -> Value.Int (min (as_int vm "min" a) (as_int vm "min" b))
      | _ -> assert false);
  define "max" 2 (fun vm args ->
      match args with
      | [ a; b ] -> Value.Int (max (as_int vm "max" a) (as_int vm "max" b))
      | _ -> assert false);
  define "instanceOf" 2 (fun vm args ->
      match args with
      | [ v; cls ] -> (
        let cls = as_str vm "instanceOf" cls in
        match v with
        | Value.Ref id -> (
          match Heap.class_of vm.Vm.heap id with
          | Some c -> Value.Bool (Vm.is_subclass vm c cls)
          | None -> Value.Bool false)
        | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null -> Value.Bool false)
      | _ -> assert false);
  define "classOf" 1 (fun vm args ->
      match args with
      | [ Value.Ref id ] -> (
        match Heap.class_of vm.Vm.heap id with
        | Some c -> Value.Str c
        | None -> Value.Str "array")
      | [ v ] -> Value.Str (Value.type_name v)
      | _ ->
        ignore vm;
        assert false);
  (* Deep object-graph equality (Definition 1), exposed to drivers so
     they can assert state consistency from within the program. *)
  define "graphEq" 2 (fun vm args ->
      match args with
      | [ a; b ] ->
        Value.Bool
          (Object_graph.equal
             (Object_graph.canonical vm.Vm.heap a)
             (Object_graph.canonical vm.Vm.heap b))
      | _ -> assert false);
  define "deepCopy" 1 (fun vm args ->
      match args with
      | [ v ] -> Object_graph.clone vm.Vm.heap v
      | _ -> assert false);
  (* [check] is the drivers' assertion: a failed check is a genuine
     (uninjected) application bug and surfaces as IllegalStateException. *)
  define "check" 2 (fun vm args ->
      match args with
      | [ cond; msg ] ->
        if Value.truthy cond then Value.Null
        else Vm.throw vm "IllegalStateException" ("check failed: " ^ Value.to_display_string msg)
      | _ -> assert false);
  (* Concurrency surface.  [spawn recv.m(args)] and [synchronized]
     blocks desugar (in the parser) to the reserved hooks below; [join]
     is an ordinary builtin so programs can keep using "join" as a
     method name.  All four perform scheduler effects handled by
     {!Failatom_runtime.Sched.run}. *)
  define "join" 1 (fun vm args ->
      match args with
      | [ Value.Int tid ] -> Effect.perform (Vm.Sched_join tid)
      | [ v ] ->
        Vm.throw vm "IllegalArgumentException"
          ("join: expected a thread id, got " ^ Value.type_name v)
      | _ -> assert false);
  define "__spawn" 3 (fun vm args ->
      match args with
      | [ recv; m; arr ] -> (
        let m = as_str vm "__spawn" m in
        let call_args =
          match arr with
          | Value.Ref id -> (
            match Heap.get vm.Vm.heap id with
            | Heap.Arr a -> Array.to_list a
            | _ -> assert false)
          | _ -> assert false
        in
        match recv with
        | Value.Null -> Vm.throw vm "NullPointerException" ("spawn null." ^ m)
        | Value.Ref _ ->
          Value.Int
            (Effect.perform (Vm.Sched_spawn (fun () -> Vm.invoke vm recv m call_args)))
        | v ->
          Vm.throw vm "UnsupportedOperationException"
            (Printf.sprintf "spawn on %s receiver" (Value.type_name v)))
      | _ -> assert false);
  define "__monitor_enter" 1 (fun vm args ->
      match args with
      | [ Value.Ref id ] ->
        Effect.perform (Vm.Monitor_enter id);
        Value.Null
      | [ Value.Null ] -> Vm.throw vm "NullPointerException" "synchronized(null)"
      | [ v ] ->
        Vm.throw vm "IllegalArgumentException"
          ("synchronized: lock must be an object, got " ^ Value.type_name v)
      | _ -> assert false);
  define "__monitor_exit" 1 (fun vm args ->
      match args with
      | [ Value.Ref id ] ->
        Effect.perform (Vm.Monitor_exit id);
        Value.Null
      | [ Value.Null ] -> Vm.throw vm "NullPointerException" "synchronized(null)"
      | [ v ] ->
        Vm.throw vm "IllegalArgumentException"
          ("synchronized: lock must be an object, got " ^ Value.type_name v)
      | _ -> assert false)

let find name = Hashtbl.find_opt table name
let exists name = Hashtbl.mem table name
let names () = Hashtbl.fold (fun k _ acc -> k :: acc) table []

let call vm name args =
  match find name with
  | None -> invalid_arg ("unknown builtin " ^ name)
  | Some (arity, f) ->
    if List.length args <> arity then arity_error vm name arity (List.length args)
    else f vm args
