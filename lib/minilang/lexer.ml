(* Hand-written lexer for MiniLang. *)

type token =
  | INT of int
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_CLASS | KW_EXTENDS | KW_FIELD | KW_METHOD | KW_FUNCTION
  | KW_VAR | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN
  | KW_THROW | KW_THROWS | KW_TRY | KW_CATCH | KW_FINALLY
  | KW_BREAK | KW_CONTINUE | KW_NEW | KW_THIS | KW_SUPER
  | KW_TRUE | KW_FALSE | KW_NULL
  | KW_SPAWN | KW_SYNCHRONIZED
  (* punctuation / operators *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | EQEQ | NEQ | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | EOF

exception Lex_error of string * Ast.pos

let keyword_table =
  [ ("class", KW_CLASS); ("extends", KW_EXTENDS); ("field", KW_FIELD);
    ("method", KW_METHOD); ("function", KW_FUNCTION); ("var", KW_VAR);
    ("if", KW_IF); ("else", KW_ELSE); ("while", KW_WHILE); ("for", KW_FOR);
    ("return", KW_RETURN); ("throw", KW_THROW); ("throws", KW_THROWS);
    ("try", KW_TRY); ("catch", KW_CATCH); ("finally", KW_FINALLY);
    ("break", KW_BREAK); ("continue", KW_CONTINUE); ("new", KW_NEW);
    ("this", KW_THIS); ("super", KW_SUPER); ("true", KW_TRUE);
    ("false", KW_FALSE); ("null", KW_NULL); ("spawn", KW_SPAWN);
    ("synchronized", KW_SYNCHRONIZED) ]

let token_name = function
  | INT _ -> "integer literal"
  | STRING _ -> "string literal"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_CLASS -> "'class'" | KW_EXTENDS -> "'extends'" | KW_FIELD -> "'field'"
  | KW_METHOD -> "'method'" | KW_FUNCTION -> "'function'" | KW_VAR -> "'var'"
  | KW_IF -> "'if'" | KW_ELSE -> "'else'" | KW_WHILE -> "'while'"
  | KW_FOR -> "'for'" | KW_RETURN -> "'return'" | KW_THROW -> "'throw'"
  | KW_THROWS -> "'throws'" | KW_TRY -> "'try'" | KW_CATCH -> "'catch'"
  | KW_FINALLY -> "'finally'" | KW_BREAK -> "'break'"
  | KW_CONTINUE -> "'continue'" | KW_NEW -> "'new'" | KW_THIS -> "'this'"
  | KW_SUPER -> "'super'" | KW_TRUE -> "'true'" | KW_FALSE -> "'false'"
  | KW_NULL -> "'null'"
  | KW_SPAWN -> "'spawn'" | KW_SYNCHRONIZED -> "'synchronized'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'" | SEMI -> "';'" | COMMA -> "','"
  | DOT -> "'.'" | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'"
  | SLASH -> "'/'" | PERCENT -> "'%'" | EQ -> "'='" | EQEQ -> "'=='"
  | NEQ -> "'!='" | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='"
  | ANDAND -> "'&&'" | OROR -> "'||'" | BANG -> "'!'" | EOF -> "end of input"

type state = {
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable col : int;
}

let make src = { src; offset = 0; line = 1; col = 1 }
let pos st : Ast.pos = { line = st.line; col = st.col }
let at_end st = st.offset >= String.length st.src
let peek st = if at_end st then '\000' else st.src.[st.offset]
let peek2 st =
  if st.offset + 1 >= String.length st.src then '\000' else st.src.[st.offset + 1]

let advance st =
  (if peek st = '\n' then begin
     st.line <- st.line + 1;
     st.col <- 1
   end
   else st.col <- st.col + 1);
  st.offset <- st.offset + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
    advance st;
    skip_trivia st
  | '/' when peek2 st = '/' ->
    while (not (at_end st)) && peek st <> '\n' do
      advance st
    done;
    skip_trivia st
  | '/' when peek2 st = '*' ->
    let start = pos st in
    advance st;
    advance st;
    let rec close () =
      if at_end st then raise (Lex_error ("unterminated comment", start))
      else if peek st = '*' && peek2 st = '/' then begin
        advance st;
        advance st
      end
      else begin
        advance st;
        close ()
      end
    in
    close ();
    skip_trivia st
  | _ -> ()

let lex_string st =
  let start = pos st in
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end st then raise (Lex_error ("unterminated string literal", start))
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
        advance st;
        let c = peek st in
        advance st;
        (match c with
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | '\\' -> Buffer.add_char buf '\\'
         | '"' -> Buffer.add_char buf '"'
         | '0' -> Buffer.add_char buf '\000'
         | c -> raise (Lex_error (Printf.sprintf "invalid escape '\\%c'" c, start)));
        go ()
      | c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  STRING (Buffer.contents buf)

let next_token st =
  skip_trivia st;
  let p = pos st in
  if at_end st then (EOF, p)
  else
    let c = peek st in
    let simple tok = advance st; (tok, p) in
    (* operator possibly followed by '=' *)
    let with_eq single double =
      advance st;
      if peek st = '=' then begin advance st; (double, p) end else (single, p)
    in
    match c with
    | '(' -> simple LPAREN
    | ')' -> simple RPAREN
    | '{' -> simple LBRACE
    | '}' -> simple RBRACE
    | '[' -> simple LBRACKET
    | ']' -> simple RBRACKET
    | ';' -> simple SEMI
    | ',' -> simple COMMA
    | '.' -> simple DOT
    | '+' -> simple PLUS
    | '-' -> simple MINUS
    | '*' -> simple STAR
    | '/' -> simple SLASH
    | '%' -> simple PERCENT
    | '=' -> with_eq EQ EQEQ
    | '<' -> with_eq LT LE
    | '>' -> with_eq GT GE
    | '!' -> with_eq BANG NEQ
    | '&' ->
      advance st;
      if peek st = '&' then begin advance st; (ANDAND, p) end
      else raise (Lex_error ("expected '&&'", p))
    | '|' ->
      advance st;
      if peek st = '|' then begin advance st; (OROR, p) end
      else raise (Lex_error ("expected '||'", p))
    | '"' -> (lex_string st, p)
    | c when is_digit c ->
      let start = st.offset in
      while is_digit (peek st) do
        advance st
      done;
      (INT (int_of_string (String.sub st.src start (st.offset - start))), p)
    | c when is_ident_start c ->
      let start = st.offset in
      while is_ident_char (peek st) do
        advance st
      done;
      let word = String.sub st.src start (st.offset - start) in
      ((match List.assoc_opt word keyword_table with
        | Some kw -> kw
        | None -> IDENT word),
       p)
    | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, p))

(* Tokenizes the whole input eagerly; MiniLang sources are small. *)
let tokenize src =
  let st = make src in
  let rec go acc =
    let (tok, p) = next_token st in
    if tok = EOF then List.rev ((tok, p) :: acc) else go ((tok, p) :: acc)
  in
  go []
