(* Recursive-descent parser for MiniLang. *)

exception Parse_error of string * Ast.pos

type state = {
  tokens : (Lexer.token * Ast.pos) array;
  mutable cursor : int;
  mutable sync_count : int;
      (* fresh names for the lock temporaries of desugared
         [synchronized] blocks, unique per compilation unit *)
}

let make tokens = { tokens = Array.of_list tokens; cursor = 0; sync_count = 0 }
let current st = st.tokens.(st.cursor)
let peek_tok st = fst (current st)
let peek_pos st = snd (current st)

let advance st = if st.cursor < Array.length st.tokens - 1 then st.cursor <- st.cursor + 1

let error st msg = raise (Parse_error (msg, peek_pos st))

let expect st tok =
  if peek_tok st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Lexer.token_name tok)
         (Lexer.token_name (peek_tok st)))

let expect_ident st =
  match peek_tok st with
  | Lexer.IDENT name ->
    advance st;
    name
  | tok -> error st (Printf.sprintf "expected identifier, found %s" (Lexer.token_name tok))

let accept st tok =
  if peek_tok st = tok then begin
    advance st;
    true
  end
  else false

(* ---------------- expressions ---------------- *)

let binop_of_token = function
  | Lexer.PLUS -> Some Ast.Add
  | Lexer.MINUS -> Some Ast.Sub
  | Lexer.STAR -> Some Ast.Mul
  | Lexer.SLASH -> Some Ast.Div
  | Lexer.PERCENT -> Some Ast.Mod
  | Lexer.EQEQ -> Some Ast.Eq
  | Lexer.NEQ -> Some Ast.Neq
  | Lexer.LT -> Some Ast.Lt
  | Lexer.LE -> Some Ast.Le
  | Lexer.GT -> Some Ast.Gt
  | Lexer.GE -> Some Ast.Ge
  | _ -> None

(* Binding powers; higher binds tighter. *)
let precedence = function
  | Ast.Mul | Ast.Div | Ast.Mod -> 60
  | Ast.Add | Ast.Sub -> 50
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 40
  | Ast.Eq | Ast.Neq -> 30

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept st Lexer.OROR then
    let rhs = parse_or st in
    { Ast.e = Ast.Or (lhs, rhs); epos = lhs.Ast.epos }
  else lhs

and parse_and st =
  let lhs = parse_binary st 0 in
  if accept st Lexer.ANDAND then
    let rhs = parse_and st in
    { Ast.e = Ast.And (lhs, rhs); epos = lhs.Ast.epos }
  else lhs

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (peek_tok st) with
    | Some op when precedence op >= min_prec ->
      advance st;
      let rhs = parse_binary st (precedence op + 1) in
      loop { Ast.e = Ast.Binary (op, lhs, rhs); epos = lhs.Ast.epos }
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary st =
  let p = peek_pos st in
  match peek_tok st with
  | Lexer.MINUS ->
    advance st;
    { Ast.e = Ast.Unary (Ast.Neg, parse_unary st); epos = p }
  | Lexer.BANG ->
    advance st;
    { Ast.e = Ast.Unary (Ast.Not, parse_unary st); epos = p }
  | _ -> parse_postfix st

and parse_postfix st =
  let base = parse_primary st in
  let rec loop e =
    match peek_tok st with
    | Lexer.DOT ->
      advance st;
      let name = expect_ident st in
      if peek_tok st = Lexer.LPAREN then begin
        let args = parse_args st in
        loop { Ast.e = Ast.Call (e, name, args); epos = e.Ast.epos }
      end
      else loop { Ast.e = Ast.Field (e, name); epos = e.Ast.epos }
    | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Lexer.RBRACKET;
      loop { Ast.e = Ast.Index (e, idx); epos = e.Ast.epos }
    | _ -> e
  in
  loop base

and parse_args st =
  expect st Lexer.LPAREN;
  if accept st Lexer.RPAREN then []
  else
    let rec go acc =
      let e = parse_expr st in
      if accept st Lexer.COMMA then go (e :: acc)
      else begin
        expect st Lexer.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []

and parse_primary st =
  let p = peek_pos st in
  match peek_tok st with
  | Lexer.INT n ->
    advance st;
    { Ast.e = Ast.Int_lit n; epos = p }
  | Lexer.STRING s ->
    advance st;
    { Ast.e = Ast.Str_lit s; epos = p }
  | Lexer.KW_TRUE ->
    advance st;
    { Ast.e = Ast.Bool_lit true; epos = p }
  | Lexer.KW_FALSE ->
    advance st;
    { Ast.e = Ast.Bool_lit false; epos = p }
  | Lexer.KW_NULL ->
    advance st;
    { Ast.e = Ast.Null_lit; epos = p }
  | Lexer.KW_THIS ->
    advance st;
    { Ast.e = Ast.This; epos = p }
  | Lexer.KW_SUPER ->
    advance st;
    expect st Lexer.DOT;
    let name = expect_ident st in
    let args = parse_args st in
    { Ast.e = Ast.Super_call (name, args); epos = p }
  | Lexer.KW_NEW ->
    advance st;
    let cls = expect_ident st in
    let args = parse_args st in
    { Ast.e = Ast.New (cls, args); epos = p }
  | Lexer.LBRACKET ->
    advance st;
    if accept st Lexer.RBRACKET then { Ast.e = Ast.Array_lit []; epos = p }
    else
      let rec go acc =
        let e = parse_expr st in
        if accept st Lexer.COMMA then go (e :: acc)
        else begin
          expect st Lexer.RBRACKET;
          List.rev (e :: acc)
        end
      in
      { Ast.e = Ast.Array_lit (go []); epos = p }
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name ->
    advance st;
    if peek_tok st = Lexer.LPAREN then
      let args = parse_args st in
      { Ast.e = Ast.Fn_call (name, args); epos = p }
    else { Ast.e = Ast.Var name; epos = p }
  | Lexer.KW_SPAWN -> (
    (* [spawn recv.m(args)] evaluates to the new thread's id.  Threads
       are desugared right here into the reflective __spawn hook, so
       nothing downstream of the parser (engines, analyses, weavers)
       knows about concurrency syntax. *)
    advance st;
    let call = parse_postfix st in
    match call.Ast.e with
    | Ast.Call (recv, m, args) ->
      { Ast.e =
          Ast.Fn_call
            ("__spawn",
             [ recv;
               { Ast.e = Ast.Str_lit m; epos = p };
               { Ast.e = Ast.Array_lit args; epos = p } ]);
        epos = p }
    | _ -> raise (Parse_error ("spawn requires a method call: spawn recv.m(...)", p)))
  | tok -> error st (Printf.sprintf "expected expression, found %s" (Lexer.token_name tok))

(* ---------------- statements ---------------- *)

let lvalue_of_expr st (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Var x -> Ast.Lvar x
  | Ast.Field (r, f) -> Ast.Lfield (r, f)
  | Ast.Index (r, i) -> Ast.Lindex (r, i)
  | _ -> error st "invalid assignment target"

let rec parse_stmt st =
  let p = peek_pos st in
  match peek_tok st with
  | Lexer.KW_VAR ->
    advance st;
    let name = expect_ident st in
    expect st Lexer.EQ;
    let e = parse_expr st in
    expect st Lexer.SEMI;
    { Ast.s = Ast.Var_decl (name, e); spos = p }
  | Lexer.KW_IF -> parse_if st
  | Lexer.KW_WHILE ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    let body = parse_block st in
    { Ast.s = Ast.While (cond, body); spos = p }
  | Lexer.KW_FOR ->
    advance st;
    expect st Lexer.LPAREN;
    let init =
      if peek_tok st = Lexer.SEMI then begin
        advance st;
        None
      end
      else Some (parse_simple_stmt st ~semi:true)
    in
    let cond =
      if peek_tok st = Lexer.SEMI then None else Some (parse_expr st)
    in
    expect st Lexer.SEMI;
    let update =
      if peek_tok st = Lexer.RPAREN then None
      else Some (parse_simple_stmt st ~semi:false)
    in
    expect st Lexer.RPAREN;
    let body = parse_block st in
    { Ast.s = Ast.For (init, cond, update, body); spos = p }
  | Lexer.KW_RETURN ->
    advance st;
    if accept st Lexer.SEMI then { Ast.s = Ast.Return None; spos = p }
    else
      let e = parse_expr st in
      expect st Lexer.SEMI;
      { Ast.s = Ast.Return (Some e); spos = p }
  | Lexer.KW_THROW ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.SEMI;
    { Ast.s = Ast.Throw e; spos = p }
  | Lexer.KW_TRY ->
    advance st;
    let body = parse_block st in
    let rec catches acc =
      if peek_tok st = Lexer.KW_CATCH then begin
        advance st;
        expect st Lexer.LPAREN;
        let cls = expect_ident st in
        let var = expect_ident st in
        expect st Lexer.RPAREN;
        let handler = parse_block st in
        catches ({ Ast.cc_class = cls; cc_var = var; cc_body = handler } :: acc)
      end
      else List.rev acc
    in
    let handlers = catches [] in
    let fin = if accept st Lexer.KW_FINALLY then Some (parse_block st) else None in
    if handlers = [] && fin = None then
      error st "try statement requires at least one catch or finally clause"
    else { Ast.s = Ast.Try (body, handlers, fin); spos = p }
  | Lexer.KW_SYNCHRONIZED ->
    (* [synchronized (e) { body }] desugars to
         { var __syncN = e;
           __monitor_enter(__syncN);
           try { body } finally { __monitor_exit(__syncN); } }
       so the lock expression is evaluated once and release is
       exception-safe.  The temp is unique per compilation unit because
       MiniLang slots are per-name per body: nested synchronized blocks
       sharing one name would clobber the outer lock temp. *)
    advance st;
    expect st Lexer.LPAREN;
    let lock = parse_expr st in
    expect st Lexer.RPAREN;
    let body = parse_block st in
    let tmp = "__sync" ^ string_of_int st.sync_count in
    st.sync_count <- st.sync_count + 1;
    let tmp_var = { Ast.e = Ast.Var tmp; epos = p } in
    let hook name =
      { Ast.s = Ast.Expr_stmt { Ast.e = Ast.Fn_call (name, [ tmp_var ]); epos = p };
        spos = p }
    in
    { Ast.s =
        Ast.Block
          [ { Ast.s = Ast.Var_decl (tmp, lock); spos = p };
            hook "__monitor_enter";
            { Ast.s = Ast.Try (body, [], Some [ hook "__monitor_exit" ]); spos = p } ];
      spos = p }
  | Lexer.KW_BREAK ->
    advance st;
    expect st Lexer.SEMI;
    { Ast.s = Ast.Break; spos = p }
  | Lexer.KW_CONTINUE ->
    advance st;
    expect st Lexer.SEMI;
    { Ast.s = Ast.Continue; spos = p }
  | Lexer.LBRACE -> { Ast.s = Ast.Block (parse_block st); spos = p }
  | _ -> parse_simple_stmt st ~semi:true

(* An assignment or expression statement; [semi] controls whether the
   trailing ';' is consumed (omitted in 'for' headers). *)
and parse_simple_stmt st ~semi =
  let p = peek_pos st in
  match peek_tok st with
  | Lexer.KW_VAR ->
    (* for-loop initializer: var i = 0 *)
    advance st;
    let name = expect_ident st in
    expect st Lexer.EQ;
    let e = parse_expr st in
    if semi then expect st Lexer.SEMI;
    { Ast.s = Ast.Var_decl (name, e); spos = p }
  | _ ->
    let e = parse_expr st in
    let stmt =
      if peek_tok st = Lexer.EQ then begin
        advance st;
        let rhs = parse_expr st in
        { Ast.s = Ast.Assign (lvalue_of_expr st e, rhs); spos = p }
      end
      else { Ast.s = Ast.Expr_stmt e; spos = p }
    in
    if semi then expect st Lexer.SEMI;
    stmt

and parse_if st =
  let p = peek_pos st in
  expect st Lexer.KW_IF;
  expect st Lexer.LPAREN;
  let cond = parse_expr st in
  expect st Lexer.RPAREN;
  let then_b = parse_block st in
  let else_b =
    if accept st Lexer.KW_ELSE then
      if peek_tok st = Lexer.KW_IF then [ parse_if st ] else parse_block st
    else []
  in
  { Ast.s = Ast.If (cond, then_b, else_b); spos = p }

and parse_block st =
  expect st Lexer.LBRACE;
  let rec go acc =
    if accept st Lexer.RBRACE then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

(* ---------------- declarations ---------------- *)

let parse_params st =
  expect st Lexer.LPAREN;
  if accept st Lexer.RPAREN then []
  else
    let rec go acc =
      let name = expect_ident st in
      if accept st Lexer.COMMA then go (name :: acc)
      else begin
        expect st Lexer.RPAREN;
        List.rev (name :: acc)
      end
    in
    go []

let parse_throws st =
  if accept st Lexer.KW_THROWS then
    let rec go acc =
      let name = expect_ident st in
      if accept st Lexer.COMMA then go (name :: acc) else List.rev (name :: acc)
    in
    go []
  else []

let parse_method st =
  let p = peek_pos st in
  expect st Lexer.KW_METHOD;
  let name = expect_ident st in
  let params = parse_params st in
  let throws = parse_throws st in
  let body = parse_block st in
  { Ast.m_name = name; m_params = params; m_throws = throws; m_body = body; m_pos = p }

let parse_class st =
  let p = peek_pos st in
  expect st Lexer.KW_CLASS;
  let name = expect_ident st in
  let super = if accept st Lexer.KW_EXTENDS then Some (expect_ident st) else None in
  expect st Lexer.LBRACE;
  let rec members fields methods =
    match peek_tok st with
    | Lexer.KW_FIELD ->
      advance st;
      let fname = expect_ident st in
      expect st Lexer.SEMI;
      members (fname :: fields) methods
    | Lexer.KW_METHOD -> members fields (parse_method st :: methods)
    | Lexer.RBRACE ->
      advance st;
      (List.rev fields, List.rev methods)
    | tok ->
      error st
        (Printf.sprintf "expected 'field', 'method' or '}', found %s"
           (Lexer.token_name tok))
  in
  let fields, methods = members [] [] in
  { Ast.c_name = name;
    c_super = super;
    c_fields = fields;
    c_methods = methods;
    c_pos = p }

let parse_function st =
  let p = peek_pos st in
  expect st Lexer.KW_FUNCTION;
  let name = expect_ident st in
  let params = parse_params st in
  let body = parse_block st in
  { Ast.f_name = name; f_params = params; f_body = body; f_pos = p }

let parse_program st =
  let rec go acc =
    match peek_tok st with
    | Lexer.EOF -> List.rev acc
    | Lexer.KW_CLASS -> go (Ast.Class_decl (parse_class st) :: acc)
    | Lexer.KW_FUNCTION -> go (Ast.Func_decl (parse_function st) :: acc)
    | tok ->
      error st
        (Printf.sprintf "expected 'class' or 'function' at top level, found %s"
           (Lexer.token_name tok))
  in
  go []

(* Parses a full MiniLang compilation unit. *)
let program_of_string src = parse_program (make (Lexer.tokenize src))

(* Parses a single expression (used by tests and the REPL-ish demos). *)
let expr_of_string src =
  let st = make (Lexer.tokenize src) in
  let e = parse_expr st in
  expect st Lexer.EOF;
  e
