(** Staged compilation of MiniLang programs.

    {!image} performs the one-time work for a program — static scope
    resolution (locals become array slots), flattened per-class
    dispatch tables and field templates, closure-compiled bodies — and
    {!instantiate} turns the immutable image into a fresh {!Vm.t}
    cheaply, with per-run copies of the mutable method entries so that
    load-time interposition (attaching filters to method entries — the
    analog of the paper's bytecode-level JWG instrumentation) works on
    compiled programs without source access. *)

open Failatom_runtime

exception Runtime_error of string * Ast.pos
(** A genuine defect in the interpreted program (unknown variable, bad
    arity, type confusion, ...), as opposed to a MiniLang-level
    exception, which is raised as {!Vm.Mini_raise} and is catchable
    in-language. *)

type engine = Closures | Bytecode
(** Which execution representation bodies are compiled to: OCaml closure
    trees, or flat bytecode run by [Failatom_runtime.Exec].  The two are
    observably identical — run logs, detection marks, canonical forms
    and counter totals are bitwise-equal — which the differential matrix
    in [test/test_bytecode.ml] enforces. *)

val default_engine : engine ref
(** Engine used when {!image} is not given one explicitly. *)

val engine_name : engine -> string
val engine_of_string : string -> engine option

type image
(** A compiled program: compiled bodies plus the static class layout.
    Immutable — one image may be instantiated any number of times,
    concurrently from several domains. *)

val image : ?engine:engine -> Ast.program -> image
(** Compiles the program once.  Class declarations are resolved in two
    passes so that bodies can reference classes declared later.
    [engine] defaults to [!default_engine]. *)

val instantiate : image -> Vm.t
(** A fresh VM for one run of the image: new heap, output, globals and
    counters, and fresh method entries (so filters attached for this
    run do not leak into other instantiations). *)

val program : Ast.program -> Vm.t
(** [instantiate (image prog)].  Each detection run compiles its own
    VM, guaranteeing independent heaps across runs. *)

(** {1 Introspection}

    Read-only views of the finished layout for static analyses
    (exception flow, injection-point pruning): the flattened dispatch
    tables and class templates already encode inheritance, redeclared
    classes and the builtin exception hierarchy exactly as execution
    resolves them. *)

type class_summary = {
  cs_name : string;
  cs_super : string option;
  cs_fields : string list;  (** full template layout, inherited first *)
  cs_is_exception : bool;  (** transitively extends [Throwable] *)
  cs_user : bool;  (** declared by the program, not builtin *)
}

val image_classes : image -> class_summary list
(** Every class of the image: user classes in program order, then the
    builtin (exception) classes sorted by name. *)

val image_is_subclass : image -> string -> string -> bool
(** Subclass test over the image's class table — the relation [catch]
    matching uses at run time. *)

val dispatch_targets : image -> string -> string list
(** The defining classes of every implementation that dynamic dispatch
    of the given method name can reach, over all classes of the image
    (sorted; empty for unknown names). *)

val resolve_dispatch : image -> string -> string -> string option
(** [resolve_dispatch img cls mname] is the defining class of the
    implementation a call of [mname] on an instance of [cls] dispatches
    to — i.e. what [new cls(...)] invokes for [mname = "init"] — or
    [None] if the class or method is unknown. *)

val run_main : ?policy:Sched.policy -> Vm.t -> Value.t
(** Runs the program's [main] function — always as MiniLang thread 0
    under {!Sched.run} — and returns its value.  [policy] defaults to
    {!Sched.Coop}, under which sequential programs behave exactly as
    before (no preemption, no decisions, empty schedule digest).
    @raise Invalid_argument if there is no [main]
    @raise Vm.Mini_raise if an exception escapes [main]. *)
