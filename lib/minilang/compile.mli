(** Staged compilation of MiniLang programs.

    {!image} performs the one-time work for a program — static scope
    resolution (locals become array slots), flattened per-class
    dispatch tables and field templates, closure-compiled bodies — and
    {!instantiate} turns the immutable image into a fresh {!Vm.t}
    cheaply, with per-run copies of the mutable method entries so that
    load-time interposition (attaching filters to method entries — the
    analog of the paper's bytecode-level JWG instrumentation) works on
    compiled programs without source access. *)

open Failatom_runtime

exception Runtime_error of string * Ast.pos
(** A genuine defect in the interpreted program (unknown variable, bad
    arity, type confusion, ...), as opposed to a MiniLang-level
    exception, which is raised as {!Vm.Mini_raise} and is catchable
    in-language. *)

type engine = Closures | Bytecode
(** Which execution representation bodies are compiled to: OCaml closure
    trees, or flat bytecode run by [Failatom_runtime.Exec].  The two are
    observably identical — run logs, detection marks, canonical forms
    and counter totals are bitwise-equal — which the differential matrix
    in [test/test_bytecode.ml] enforces. *)

val default_engine : engine ref
(** Engine used when {!image} is not given one explicitly. *)

val engine_name : engine -> string
val engine_of_string : string -> engine option

type image
(** A compiled program: compiled bodies plus the static class layout.
    Immutable — one image may be instantiated any number of times,
    concurrently from several domains. *)

val image : ?engine:engine -> Ast.program -> image
(** Compiles the program once.  Class declarations are resolved in two
    passes so that bodies can reference classes declared later.
    [engine] defaults to [!default_engine]. *)

val instantiate : image -> Vm.t
(** A fresh VM for one run of the image: new heap, output, globals and
    counters, and fresh method entries (so filters attached for this
    run do not leak into other instantiations). *)

val program : Ast.program -> Vm.t
(** [instantiate (image prog)].  Each detection run compiles its own
    VM, guaranteeing independent heaps across runs. *)

val run_main : Vm.t -> Value.t
(** Runs the program's [main] function and returns its value.
    @raise Invalid_argument if there is no [main]
    @raise Vm.Mini_raise if an exception escapes [main]. *)
