(* Staged compilation of MiniLang programs.

   Compilation is split in two:

   - {!image} does the one-time work for a program: static scope
     resolution (locals and parameters become array slot indices),
     flattened per-class dispatch tables and inherited-field templates
     (no [lookup_method]/[all_fields] chain walks at runtime), static
     resolution of [super], [new] and free-function call sites, and a
     single translation of every expression and statement into an OCaml
     closure ([Vm.t -> frame -> Value.t]).  The resulting image is
     immutable and safe to share — including across campaign domains.

   - {!instantiate} turns an image into a fresh {!Vm.t} cheaply: a new
     heap/output/globals/counters plus per-run copies of the mutable
     method entries, so load-time interposition (attaching filters to
     method entries — the analog of the paper's bytecode-level JWG
     instrumentation) still works per run without source access.

   [program] remains [instantiate ∘ image].  Each detection run
   instantiates its own VM, guaranteeing independent heaps across runs,
   but the image is built once per program×flavor instead of once per
   injection run.

   Semantics are bit-for-bit those of the previous direct AST
   interpreter: every compiled closure ticks {!Vm.tick} exactly where
   [eval]/[exec] did, evaluation order is preserved, and every dynamic
   error keeps its message.  Call sites resolved statically fall back
   to the dynamic [Vm] lookup when the receiver's class or method is
   not in the image (e.g. added to a VM by hand after compilation). *)

open Failatom_runtime
module Obs = Failatom_obs.Obs

(* A genuine defect in the interpreted program (unknown variable, bad
   arity, ...) as opposed to a MiniLang-level exception, which is raised
   as {!Vm.Mini_raise} and is catchable in-language. *)
exception Runtime_error of string * Ast.pos

let runtime_error pos fmt = Fmt.kstr (fun s -> raise (Runtime_error (s, pos))) fmt

(* Which execution representation bodies are compiled to.  Both engines
   are observably identical (run logs, marks, canonical forms, counter
   totals); [Closures] is kept alive for differential testing. *)
type engine = Closures | Bytecode

let default_engine = ref Bytecode
let engine_name = function Closures -> "closures" | Bytecode -> "bytecode"

let engine_of_string = function
  | "closures" -> Some Closures
  | "bytecode" -> Some Bytecode
  | _ -> None

(* Non-local control flow within a method body. *)
exception Return_value of Value.t
exception Break_loop
exception Continue_loop

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

(* One activation record: a flat slot array indexed by the compile-time
   scope resolution (one slot per distinct variable name in the body —
   MiniLang scoping is function-level, redeclaration overwrites).  Slots
   start out holding the private [unbound] sentinel; reading one is the
   "unknown variable" error of the old name-keyed frames. *)
type frame = { slots : Value.t array; mutable this : Value.t }

(* Compared with (==): no program value is ever physically this one. *)
let unbound : Value.t = Value.Str "\000<unbound>"

type ecode = Vm.t -> frame -> Value.t
type scode = Vm.t -> frame -> unit

(* Root enumeration scans the slot array in place — no list is rebuilt
   per collection.  Marking the sentinel is harmless (it is a string). *)
let frame_roots frame (mark : Value.t -> unit) =
  mark frame.this;
  let slots = frame.slots in
  for i = 0 to Array.length slots - 1 do
    mark (Array.unsafe_get slots i)
  done

(* ------------------------------------------------------------------ *)
(* Program images                                                      *)
(* ------------------------------------------------------------------ *)

type imeth = {
  im_class : string; (* defining class *)
  im_name : string;
  im_params : string list;
  im_throws : string list;
  mutable im_impl : Vm.impl; (* set once the whole image is laid out *)
}

type iclass = {
  ic_name : string;
  ic_super : string option; (* declared superclass name, resolved or not *)
  ic_decl_fields : string list;
  ic_template : (string * Value.t) list;
      (* all fields (inherited first) bound to Null; [Heap.alloc_object]
         copies it, so one immutable template serves every [new] *)
  ic_dispatch : (string, int) Hashtbl.t;
      (* method name -> method index, own and inherited flattened *)
  ic_is_exception : bool; (* transitively extends Throwable *)
  ic_user : bool; (* declared by the program (installed per run) *)
}

type ifunc = {
  if_name : string;
  if_params : string list;
  mutable if_impl : Vm.t -> Value.t list -> Value.t;
}

type image = {
  img_classes : (string, iclass) Hashtbl.t; (* user and builtin *)
  img_class_order : iclass array; (* user classes, program order *)
  img_methods : imeth array;
  img_functions : ifunc array; (* program order; duplicates last-wins *)
  img_fn_index : (string, int) Hashtbl.t;
}

(* Compilation context for one method or function body. *)
type cx = {
  cx_image : image;
  cx_slots : (string, int) Hashtbl.t; (* variable name -> frame slot *)
  cx_defining : (string * string option) option;
      (* enclosing class and its superclass, for [super] resolution *)
}

(* Subclass test over the image's class table (same chain walk as
   [Vm.is_subclass], on static data). *)
let rec img_is_subclass img c1 c2 =
  String.equal c1 c2
  || match Hashtbl.find_opt img.img_classes c1 with
     | Some { ic_super = Some s; _ } -> img_is_subclass img s c2
     | Some { ic_super = None; _ } | None -> false

(* Classes outside the image (added to a VM by hand) fall back to the
   dynamic walk, preserving the old interpreter's behavior exactly. *)
let is_exception_class img vm cls =
  match Hashtbl.find_opt img.img_classes cls with
  | Some ic -> ic.ic_is_exception
  | None -> Vm.is_exception_class vm cls

let exn_matches img vm (exn_v : Vm.exn_value) handler =
  if Hashtbl.mem img.img_classes exn_v.Vm.exn_class then
    img_is_subclass img exn_v.Vm.exn_class handler
  else Vm.is_subclass vm exn_v.Vm.exn_class handler

(* [lookup_method] over the flattened dispatch tables. *)
let resolve_method img cls mname =
  match Hashtbl.find_opt img.img_classes cls with
  | Some ic -> Hashtbl.find_opt ic.ic_dispatch mname
  | None -> None

(* ------------------------------------------------------------------ *)
(* Bytecode engine glue                                                 *)
(* ------------------------------------------------------------------ *)

(* What the bytecode emitter needs to know about the image, as closures
   (the dependency stays one-way: Compile → Bytecode → Exec).  [lk_fn]
   reads [if_impl] through the mutable record at call time, so functions
   can reference functions compiled later in pass 2. *)
let linkage_of_image (img : image) : Bytecode.linkage =
  { Bytecode.lk_resolve =
      (fun cls m ->
        match resolve_method img cls m with Some i -> i | None -> -1);
    lk_fn =
      (fun name ->
        match Hashtbl.find_opt img.img_fn_index name with
        | None -> None
        | Some idx ->
          let fn = img.img_functions.(idx) in
          Some (List.length fn.if_params, fun vm args -> fn.if_impl vm args));
    lk_class =
      (fun cls ->
        match Hashtbl.find_opt img.img_classes cls with
        | None -> None
        | Some ic ->
          Some
            { Bytecode.ci_template = ic.ic_template;
              ci_init =
                (match Hashtbl.find_opt ic.ic_dispatch "init" with
                 | Some i -> i
                 | None -> -1);
              ci_is_exc = ic.ic_is_exception });
    lk_is_exc = (fun vm cls -> is_exception_class img vm cls);
    lk_exn_matches = (fun vm ev handler -> exn_matches img vm ev handler) }

(* Program defects surface as [Exec.Error] inside the dispatch loop and
   become [Runtime_error] at the method/function boundary — outer frames
   of either engine then see exactly what the closure engine raises. *)
let wrap_bc_method (impl : Vm.impl) : Vm.impl =
 fun vm this args ->
  try impl vm this args
  with Exec.Error (msg, line, col) -> raise (Runtime_error (msg, { Ast.line; col }))

let wrap_bc_fn (impl : Vm.t -> Value.t list -> Value.t) : Vm.t -> Value.t list -> Value.t =
 fun vm args ->
  try impl vm args
  with Exec.Error (msg, line, col) -> raise (Runtime_error (msg, { Ast.line; col }))

(* ------------------------------------------------------------------ *)
(* Runtime helpers shared by the compiled closures                     *)
(* ------------------------------------------------------------------ *)

(* Interned results for the arithmetic and comparison paths: [Value.Int]
   and [Value.Bool] are heap blocks, and most intermediate results are
   small (loop counters, sizes, flags).  Interning changes physical
   identity only — MiniLang has no identity test on primitives, and the
   pool is immutable after module init, so sharing it across campaign
   domains is safe. *)
let vtrue = Value.Bool true
let vfalse = Value.Bool false
let vbool b = if b then vtrue else vfalse
let small_int_lo = -128
let small_int_hi = 1023

let small_ints =
  Array.init (small_int_hi - small_int_lo + 1) (fun i -> Value.Int (small_int_lo + i))

let vint n =
  if n >= small_int_lo && n <= small_int_hi then
    Array.unsafe_get small_ints (n - small_int_lo)
  else Value.Int n

let eval_binop vm pos op (a : Value.t) (b : Value.t) : Value.t =
  match op, a, b with
  | Ast.Add, Value.Int x, Value.Int y -> vint (x + y)
  | Ast.Add, Value.Str x, y -> Value.Str (x ^ Value.to_display_string y)
  | Ast.Add, x, Value.Str y -> Value.Str (Value.to_display_string x ^ y)
  | Ast.Sub, Value.Int x, Value.Int y -> vint (x - y)
  | Ast.Mul, Value.Int x, Value.Int y -> vint (x * y)
  | Ast.Div, Value.Int x, Value.Int y ->
    if y = 0 then Vm.throw vm "ArithmeticException" "division by zero"
    else vint (x / y)
  | Ast.Mod, Value.Int x, Value.Int y ->
    if y = 0 then Vm.throw vm "ArithmeticException" "modulo by zero"
    else vint (x mod y)
  | Ast.Eq, x, y -> vbool (Value.equal x y)
  | Ast.Neq, x, y -> vbool (not (Value.equal x y))
  | Ast.Lt, Value.Int x, Value.Int y -> vbool (x < y)
  | Ast.Le, Value.Int x, Value.Int y -> vbool (x <= y)
  | Ast.Gt, Value.Int x, Value.Int y -> vbool (x > y)
  | Ast.Ge, Value.Int x, Value.Int y -> vbool (x >= y)
  | Ast.Lt, Value.Str x, Value.Str y -> vbool (String.compare x y < 0)
  | Ast.Le, Value.Str x, Value.Str y -> vbool (String.compare x y <= 0)
  | Ast.Gt, Value.Str x, Value.Str y -> vbool (String.compare x y > 0)
  | Ast.Ge, Value.Str x, Value.Str y -> vbool (String.compare x y >= 0)
  | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), x, y ->
    runtime_error pos "operator %s not defined on %s and %s"
      (Pretty.binop_str op) (Value.type_name x) (Value.type_name y)

(* Field and element access match the payload directly: one store read
   and one field-table probe, no intermediate options. *)

let get_obj_field vm pos recv field =
  match (recv : Value.t) with
  | Value.Null -> Vm.throw vm "NullPointerException" ("read of field " ^ field ^ " on null")
  | Value.Ref id -> (
    match Heap.get vm.Vm.heap id with
    | Heap.Obj { cls; fields } -> (
      match Hashtbl.find fields field with
      | v -> v
      | exception Not_found -> runtime_error pos "class %s has no field %s" cls field)
    | Heap.Arr _ -> runtime_error pos "arrays have no fields (reading %s)" field)
  | v -> runtime_error pos "field read %s on %s" field (Value.type_name v)

let set_obj_field vm pos recv field v =
  match (recv : Value.t) with
  | Value.Null -> Vm.throw vm "NullPointerException" ("write of field " ^ field ^ " on null")
  | Value.Ref id -> (
    match Heap.get vm.Vm.heap id with
    | Heap.Obj { cls; fields } ->
      if Option.is_none (Hashtbl.find_opt fields field) then
        runtime_error pos "class %s has no field %s" cls field
      else Heap.set_field vm.Vm.heap id field v
    | Heap.Arr _ -> runtime_error pos "arrays have no fields (writing %s)" field)
  | v -> runtime_error pos "field write %s on %s" field (Value.type_name v)

let get_index vm pos recv idx =
  match (recv : Value.t), (idx : Value.t) with
  | Value.Null, _ -> Vm.throw vm "NullPointerException" "index read on null"
  | Value.Ref id, Value.Int i -> (
    match Heap.get vm.Vm.heap id with
    | Heap.Arr a ->
      if i >= 0 && i < Array.length a then Array.unsafe_get a i
      else
        Vm.throw vm "IndexOutOfBoundsException"
          (Printf.sprintf "index %d of %d" i (Array.length a))
    | Heap.Obj _ -> runtime_error pos "indexing a non-array object")
  | Value.Ref _, v -> runtime_error pos "array index must be int, got %s" (Value.type_name v)
  | v, _ -> runtime_error pos "indexing %s" (Value.type_name v)

let set_index vm pos recv idx v =
  match (recv : Value.t), (idx : Value.t) with
  | Value.Null, _ -> Vm.throw vm "NullPointerException" "index write on null"
  | Value.Ref id, Value.Int i -> (
    match Heap.get vm.Vm.heap id with
    | Heap.Arr a ->
      (* Heap.set_elem, not a direct store: the write barrier feeds the
         active snapshot shadows *)
      if not (Heap.set_elem vm.Vm.heap id i v) then
        Vm.throw vm "IndexOutOfBoundsException"
          (Printf.sprintf "index %d of %d" i (Array.length a))
    | Heap.Obj _ -> runtime_error pos "indexing a non-array object")
  | Value.Ref _, w -> runtime_error pos "array index must be int, got %s" (Value.type_name w)
  | v, _ -> runtime_error pos "indexing %s" (Value.type_name v)

(* Dynamic instantiation, for classes the image does not know (only
   reachable when classes were added to the VM by hand): allocates the
   object with all (inherited) fields null, then runs [init] if the
   class defines or inherits one.  [init] is an ordinary method: it is
   counted, filtered and woven like any other (the paper injects into
   constructor calls too). *)
let instantiate_dyn vm pos cls args =
  if not (Vm.class_exists vm cls) then runtime_error pos "unknown class %s" cls;
  let fields = List.map (fun f -> (f, Value.Null)) (Vm.all_fields vm cls) in
  let id = Heap.alloc_object vm.Vm.heap ~cls fields in
  let recv = Value.Ref id in
  (match Vm.lookup_method vm cls "init" with
   | Some _ -> ignore (Vm.invoke vm recv "init" args)
   | None -> (
     (* Built-in exception classes have no init; a single string
        argument sets the message field, as in Java's Throwable. *)
     match args with
     | [] -> ()
     | [ Value.Str m ] when Vm.is_exception_class vm cls ->
       Heap.set_field vm.Vm.heap id "message" (Value.Str m)
     | _ -> runtime_error pos "class %s has no init method" cls));
  recv

(* Argument evaluation, head first — the order [List.map (eval vm
   frame)] used. *)
let rec eval_args vm frame = function
  | [] -> []
  | (c : ecode) :: rest ->
    let v = c vm frame in
    v :: eval_args vm frame rest

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let rec compile_expr cx (e : Ast.expr) : ecode =
  let pos = e.Ast.epos in
  match e.Ast.e with
  | Ast.Int_lit n ->
    let v = Value.Int n in
    fun vm _ -> Vm.tick vm; v
  | Ast.Str_lit s ->
    let v = Value.Str s in
    fun vm _ -> Vm.tick vm; v
  | Ast.Bool_lit b ->
    let v = Value.Bool b in
    fun vm _ -> Vm.tick vm; v
  | Ast.Null_lit -> fun vm _ -> Vm.tick vm; Value.Null
  | Ast.This -> fun vm frame -> Vm.tick vm; frame.this
  | Ast.Var x -> (
    match Hashtbl.find_opt cx.cx_slots x with
    | Some i ->
      fun vm frame ->
        Vm.tick vm;
        let v = Array.unsafe_get frame.slots i in
        if v == unbound then runtime_error pos "unknown variable %s" x else v
    | None ->
      (* never declared anywhere in this body *)
      fun vm _ -> Vm.tick vm; runtime_error pos "unknown variable %s" x)
  | Ast.Unary (Ast.Neg, a) ->
    let ca = compile_expr cx a in
    fun vm frame ->
      Vm.tick vm;
      (match ca vm frame with
       | Value.Int n -> vint (-n)
       | v -> runtime_error pos "negation of %s" (Value.type_name v))
  | Ast.Unary (Ast.Not, a) ->
    let ca = compile_expr cx a in
    fun vm frame ->
      Vm.tick vm;
      vbool (not (Value.truthy (ca vm frame)))
  | Ast.Binary (op, a, b) ->
    let ca = compile_expr cx a in
    let cb = compile_expr cx b in
    fun vm frame ->
      Vm.tick vm;
      let va = ca vm frame in
      let vb = cb vm frame in
      eval_binop vm pos op va vb
  | Ast.And (a, b) ->
    let ca = compile_expr cx a in
    let cb = compile_expr cx b in
    fun vm frame ->
      Vm.tick vm;
      if Value.truthy (ca vm frame) then vbool (Value.truthy (cb vm frame))
      else vfalse
  | Ast.Or (a, b) ->
    let ca = compile_expr cx a in
    let cb = compile_expr cx b in
    fun vm frame ->
      Vm.tick vm;
      if Value.truthy (ca vm frame) then vtrue
      else vbool (Value.truthy (cb vm frame))
  | Ast.Field (r, f) ->
    let cr = compile_expr cx r in
    fun vm frame ->
      Vm.tick vm;
      get_obj_field vm pos (cr vm frame) f
  | Ast.Index (r, i) ->
    let cr = compile_expr cx r in
    let ci = compile_expr cx i in
    fun vm frame ->
      Vm.tick vm;
      let recv = cr vm frame in
      let idx = ci vm frame in
      get_index vm pos recv idx
  | Ast.Call (r, m, args) ->
    let cr = compile_expr cx r in
    let cargs = List.map (compile_expr cx) args in
    let img = cx.cx_image in
    (* Per-site monomorphic inline cache: most call sites only ever see
       one receiver class, and its name is usually the physically same
       string (it comes from the site's [new] template).  The cached
       pair is replaced with a single write, so sharing the image
       across campaign domains stays race-free (a stale read just falls
       back to the table lookup). *)
    let cache = ref ("", -1) in
    fun vm frame ->
      Vm.tick vm;
      let recv = cr vm frame in
      let vargs = eval_args vm frame cargs in
      (match recv with
       | Value.Ref id -> (
         match Heap.get vm.Vm.heap id with
         | Heap.Obj { cls; _ } ->
           let ccls, cidx = !cache in
           if cls == ccls then begin
             vm.Vm.ic_hits <- vm.Vm.ic_hits + 1;
             Vm.call_filtered vm (Array.unsafe_get vm.Vm.meth_table cidx) recv vargs
           end
           else begin
             vm.Vm.ic_misses <- vm.Vm.ic_misses + 1;
             match resolve_method img cls m with
             | Some idx ->
               cache := (cls, idx);
               Vm.call_filtered vm (Array.unsafe_get vm.Vm.meth_table idx) recv vargs
             | None ->
               (* receiver class or method outside the image *)
               Vm.call_filtered vm (Vm.find_method vm cls m) recv vargs
           end
         | Heap.Arr _ ->
           Vm.throw vm "UnsupportedOperationException" ("method call on array: " ^ m))
       | Value.Null ->
         Vm.throw vm "NullPointerException" ("call of " ^ m ^ " on null")
       | Value.Int _ | Value.Bool _ | Value.Str _ ->
         Vm.throw vm "UnsupportedOperationException"
           (Printf.sprintf "call of %s on %s" m (Value.type_name recv)))
  | Ast.Super_call (m, args) -> (
    (* Static dispatch starting above the defining class of the
       enclosing method, both known at compile time. *)
    let cargs = List.map (compile_expr cx) args in
    match cx.cx_defining with
    | None -> fun vm _ -> Vm.tick vm; runtime_error pos "super call outside of a method"
    | Some (defining, None) ->
      fun vm _ -> Vm.tick vm; runtime_error pos "class %s has no superclass" defining
    | Some (defining, Some super) -> (
      match resolve_method cx.cx_image super m with
      | Some idx ->
        fun vm frame ->
          Vm.tick vm;
          let vargs = eval_args vm frame cargs in
          Vm.call_filtered vm (Array.unsafe_get vm.Vm.meth_table idx) frame.this vargs
      | None ->
        fun vm frame ->
          Vm.tick vm;
          (match Vm.lookup_method vm super m with
           | Some meth ->
             let vargs = eval_args vm frame cargs in
             Vm.call_filtered vm meth frame.this vargs
           | None -> runtime_error pos "no method %s in superclasses of %s" m defining)))
  | Ast.Fn_call (name, args) ->
    let cargs = List.map (compile_expr cx) args in
    let nargs = List.length args in
    (* Static resolution, in the dynamic lookup order: user functions
       shadow builtins.  Hooks are per-VM and still take precedence at
       runtime (checked only when any hook is registered). *)
    let target : Vm.t -> Value.t list -> Value.t =
      match Hashtbl.find_opt cx.cx_image.img_fn_index name with
      | Some idx ->
        let fn = cx.cx_image.img_functions.(idx) in
        let arity = List.length fn.if_params in
        if nargs <> arity then
          fun _ _ ->
            runtime_error pos "function %s expects %d argument(s), got %d" name arity nargs
        else fun vm vargs -> fn.if_impl vm vargs
      | None -> (
        match Builtins.find name with
        | Some (arity, f) ->
          if nargs <> arity then
            fun _ _ ->
              runtime_error pos "builtin %s: expected %d argument(s), got %d" name arity
                nargs
          else
            fun vm vargs ->
              (try f vm vargs
               with Invalid_argument msg -> runtime_error pos "%s" msg)
        | None -> fun _ _ -> runtime_error pos "unknown function %s" name)
    in
    fun vm frame ->
      Vm.tick vm;
      let vargs = eval_args vm frame cargs in
      if Hashtbl.length vm.Vm.hooks = 0 then target vm vargs
      else (
        match Vm.find_hook vm name with
        | Some hook -> hook vm vargs
        | None -> target vm vargs)
  | Ast.New (cls, args) -> (
    let cargs = List.map (compile_expr cx) args in
    match Hashtbl.find_opt cx.cx_image.img_classes cls with
    | None ->
      fun vm frame ->
        Vm.tick vm;
        let vargs = eval_args vm frame cargs in
        instantiate_dyn vm pos cls vargs
    | Some ic -> (
      match Hashtbl.find_opt ic.ic_dispatch "init" with
      | Some idx ->
        fun vm frame ->
          Vm.tick vm;
          let vargs = eval_args vm frame cargs in
          let id = Heap.alloc_object vm.Vm.heap ~cls ic.ic_template in
          let recv = Value.Ref id in
          ignore (Vm.call_filtered vm (Array.unsafe_get vm.Vm.meth_table idx) recv vargs);
          recv
      | None ->
        fun vm frame ->
          Vm.tick vm;
          let vargs = eval_args vm frame cargs in
          let id = Heap.alloc_object vm.Vm.heap ~cls ic.ic_template in
          let recv = Value.Ref id in
          (match Vm.lookup_method vm cls "init" with
           | Some meth ->
             (* an init added to this VM after instantiation *)
             ignore (Vm.call_filtered vm meth recv vargs)
           | None -> (
             match vargs with
             | [] -> ()
             | [ Value.Str m ] when ic.ic_is_exception ->
               Heap.set_field vm.Vm.heap id "message" (Value.Str m)
             | _ -> runtime_error pos "class %s has no init method" cls));
          recv))
  | Ast.Array_lit elems ->
    let cs = List.map (compile_expr cx) elems in
    fun vm frame ->
      Vm.tick vm;
      let values = eval_args vm frame cs in
      Value.Ref (Heap.alloc_array vm.Vm.heap (Array.of_list values))

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

and compile_stmt cx (st : Ast.stmt) : scode =
  let pos = st.Ast.spos in
  match st.Ast.s with
  | Ast.Var_decl (x, e) ->
    let ce = compile_expr cx e in
    let i = Hashtbl.find cx.cx_slots x in
    fun vm frame ->
      Vm.tick vm;
      let v = ce vm frame in
      Array.unsafe_set frame.slots i v
  | Ast.Assign (Ast.Lvar x, e) -> (
    let ce = compile_expr cx e in
    match Hashtbl.find_opt cx.cx_slots x with
    | Some i ->
      fun vm frame ->
        Vm.tick vm;
        (* the value is computed before the variable is resolved, as in
           the old interpreter (OCaml right-to-left application) *)
        let v = ce vm frame in
        if Array.unsafe_get frame.slots i == unbound then
          runtime_error pos "unknown variable %s" x
        else Array.unsafe_set frame.slots i v
    | None ->
      fun vm frame ->
        Vm.tick vm;
        let _ = ce vm frame in
        runtime_error pos "unknown variable %s" x)
  | Ast.Assign (Ast.Lfield (r, f), e) ->
    let cr = compile_expr cx r in
    let ce = compile_expr cx e in
    fun vm frame ->
      Vm.tick vm;
      let recv = cr vm frame in
      let v = ce vm frame in
      set_obj_field vm pos recv f v
  | Ast.Assign (Ast.Lindex (r, i), e) ->
    let cr = compile_expr cx r in
    let ci = compile_expr cx i in
    let ce = compile_expr cx e in
    fun vm frame ->
      Vm.tick vm;
      let recv = cr vm frame in
      let idx = ci vm frame in
      let v = ce vm frame in
      set_index vm pos recv idx v
  | Ast.Expr_stmt e ->
    let ce = compile_expr cx e in
    fun vm frame ->
      Vm.tick vm;
      ignore (ce vm frame)
  | Ast.If (c, t, f) ->
    let cc = compile_expr cx c in
    let ct = compile_block cx t in
    let cf = compile_block cx f in
    fun vm frame ->
      Vm.tick vm;
      if Value.truthy (cc vm frame) then ct vm frame else cf vm frame
  | Ast.While (c, body) ->
    let cc = compile_expr cx c in
    let cb = compile_block cx body in
    fun vm frame ->
      Vm.tick vm;
      (try
         while Value.truthy (cc vm frame) do
           try cb vm frame with Continue_loop -> ()
         done
       with Break_loop -> ())
  | Ast.For (init, cond, update, body) ->
    let ci = Option.map (compile_stmt cx) init in
    let cc = Option.map (compile_expr cx) cond in
    let cu = Option.map (compile_stmt cx) update in
    let cb = compile_block cx body in
    fun vm frame ->
      Vm.tick vm;
      (match ci with Some s -> s vm frame | None -> ());
      let continue_cond () =
        match cc with None -> true | Some c -> Value.truthy (c vm frame)
      in
      (try
         while continue_cond () do
           (try cb vm frame with Continue_loop -> ());
           match cu with Some s -> s vm frame | None -> ()
         done
       with Break_loop -> ())
  | Ast.Return None ->
    fun vm _ ->
      Vm.tick vm;
      raise (Return_value Value.Null)
  | Ast.Return (Some e) ->
    let ce = compile_expr cx e in
    fun vm frame ->
      Vm.tick vm;
      raise (Return_value (ce vm frame))
  | Ast.Throw e ->
    let ce = compile_expr cx e in
    let img = cx.cx_image in
    fun vm frame ->
      Vm.tick vm;
      (match ce vm frame with
       | Value.Ref id as obj -> (
         match Heap.class_of vm.Vm.heap id with
         | Some cls when is_exception_class img vm cls ->
           let message =
             match Heap.get_field vm.Vm.heap id "message" with
             | Some (Value.Str m) -> m
             | Some _ | None -> ""
           in
           raise (Vm.Mini_raise { Vm.exn_class = cls; message; exn_obj = obj })
         | Some cls -> runtime_error pos "throw of non-exception class %s" cls
         | None -> runtime_error pos "throw of an array")
       | v -> runtime_error pos "throw of %s" (Value.type_name v))
  | Ast.Try (body, catches, fin) ->
    let cb = compile_block cx body in
    let ccs =
      List.map
        (fun c ->
          (c.Ast.cc_class, Hashtbl.find cx.cx_slots c.Ast.cc_var,
           compile_block cx c.Ast.cc_body))
        catches
    in
    let cf = Option.map (compile_block cx) fin in
    let img = cx.cx_image in
    fun vm frame ->
      Vm.tick vm;
      let outcome =
        try
          cb vm frame;
          `Done
        with
        | Vm.Mini_raise exn_v -> `Raised exn_v
        | Return_value v -> `Returned v
        | (Break_loop | Continue_loop) as flow -> `Flow flow
      in
      let handled =
        match outcome with
        | `Raised exn_v -> (
          match
            List.find_opt (fun (hc, _, _) -> exn_matches img vm exn_v hc) ccs
          with
          | Some (_, slot, cbody) -> (
            frame.slots.(slot) <- exn_v.Vm.exn_obj;
            try
              cbody vm frame;
              `Done
            with
            | Vm.Mini_raise e -> `Raised e
            | Return_value v -> `Returned v
            | (Break_loop | Continue_loop) as flow -> `Flow flow)
          | None -> outcome)
        | `Done | `Returned _ | `Flow _ -> outcome
      in
      (* As in Java: the finally block runs last and, if it completes
         abruptly, its outcome supersedes the pending one. *)
      (match cf with Some b -> b vm frame | None -> ());
      (match handled with
       | `Done -> ()
       | `Raised e -> raise (Vm.Mini_raise e)
       | `Returned v -> raise (Return_value v)
       | `Flow f -> raise f)
  | Ast.Break ->
    fun vm _ ->
      Vm.tick vm;
      raise Break_loop
  | Ast.Continue ->
    fun vm _ ->
      Vm.tick vm;
      raise Continue_loop
  | Ast.Block b ->
    let cb = compile_block cx b in
    fun vm frame ->
      Vm.tick vm;
      cb vm frame

and compile_block cx (b : Ast.block) : scode =
  match b with
  | [] -> fun _ _ -> ()
  | [ s ] -> compile_stmt cx s
  | _ ->
    let arr = Array.of_list (List.map (compile_stmt cx) b) in
    let n = Array.length arr in
    fun vm frame ->
      for i = 0 to n - 1 do
        (Array.unsafe_get arr i) vm frame
      done

(* Tail compilation: a statement in tail position of a body produces
   the frame's result directly instead of raising [Return_value] — most
   method bodies end in a [return], and an OCaml raise/catch per call is
   far more expensive than returning a value.  Only positions where no
   code can run afterwards in the same frame qualify: the last statement
   of the body, and recursively the branches of a trailing [if] or
   [Block].  A [return] inside a loop or [try] (where [finally] may
   supersede it) still raises and is caught by [run_frame].  Tick
   placement is identical to the non-tail compilation. *)
let rec compile_tail_stmt cx (st : Ast.stmt) : ecode =
  match st.Ast.s with
  | Ast.Return None ->
    fun vm _ ->
      Vm.tick vm;
      Value.Null
  | Ast.Return (Some e) ->
    let ce = compile_expr cx e in
    fun vm frame ->
      Vm.tick vm;
      ce vm frame
  | Ast.If (c, t, f) ->
    let cc = compile_expr cx c in
    let ct = compile_tail_block cx t in
    let cf = compile_tail_block cx f in
    fun vm frame ->
      Vm.tick vm;
      if Value.truthy (cc vm frame) then ct vm frame else cf vm frame
  | Ast.Block b ->
    let cb = compile_tail_block cx b in
    fun vm frame ->
      Vm.tick vm;
      cb vm frame
  | _ ->
    let cs = compile_stmt cx st in
    fun vm frame ->
      cs vm frame;
      Value.Null

and compile_tail_block cx (b : Ast.block) : ecode =
  match b with
  | [] -> fun _ _ -> Value.Null
  | [ s ] -> compile_tail_stmt cx s
  | _ -> (
    match List.rev b with
    | last :: prefix_rev ->
      let prefix = compile_block cx (List.rev prefix_rev) in
      let tail = compile_tail_stmt cx last in
      fun vm frame ->
        prefix vm frame;
        tail vm frame
    | [] -> assert false)

(* ------------------------------------------------------------------ *)
(* Scope resolution                                                    *)
(* ------------------------------------------------------------------ *)

(* One slot per distinct variable name in a body: parameters first,
   then every [var] declaration and every catch variable, in source
   order.  MiniLang scoping is function-level ([declare] overwrote by
   name), so name identity is exactly slot identity. *)
let build_slots params body =
  let slots = Hashtbl.create 16 in
  let n = ref 0 in
  let add x =
    if not (Hashtbl.mem slots x) then begin
      Hashtbl.add slots x !n;
      incr n
    end
  in
  let rec walk_stmt (st : Ast.stmt) =
    match st.Ast.s with
    | Ast.Var_decl (x, _) -> add x
    | Ast.If (_, t, f) ->
      walk_block t;
      walk_block f
    | Ast.While (_, b) -> walk_block b
    | Ast.For (i, _, u, b) ->
      Option.iter walk_stmt i;
      Option.iter walk_stmt u;
      walk_block b
    | Ast.Try (b, catches, fin) ->
      walk_block b;
      List.iter
        (fun c ->
          add c.Ast.cc_var;
          walk_block c.Ast.cc_body)
        catches;
      Option.iter walk_block fin
    | Ast.Block b -> walk_block b
    | Ast.Assign _ | Ast.Expr_stmt _ | Ast.Return _ | Ast.Throw _ | Ast.Break
    | Ast.Continue -> ()
  and walk_block b = List.iter walk_stmt b in
  List.iter add params;
  walk_block body;
  (slots, !n)

(* ------------------------------------------------------------------ *)
(* Body entry points                                                   *)
(* ------------------------------------------------------------------ *)

(* Removal is by physical identity, not a blind head pop: under the
   thread scheduler the root list interleaves frames of several MiniLang
   threads, so this frame's entry need not be the head when it exits. *)
let pop_frame_roots vm roots =
  match vm.Vm.frame_roots with
  | r :: rest when r == roots -> vm.Vm.frame_roots <- rest
  | l -> vm.Vm.frame_roots <- List.filter (fun r -> r != roots) l

let run_frame vm frame (body : ecode) =
  let roots = frame_roots frame in
  vm.Vm.frame_roots <- roots :: vm.Vm.frame_roots;
  match body vm frame with
  | v ->
    pop_frame_roots vm roots;
    v
  | exception Return_value v ->
    pop_frame_roots vm roots;
    v
  | exception e ->
    pop_frame_roots vm roots;
    raise e

let compile_method_impl img defining_super cls_name (m : Ast.meth_decl) : Vm.impl =
  let slots, n_slots = build_slots m.Ast.m_params m.Ast.m_body in
  let cx = { cx_image = img; cx_slots = slots; cx_defining = Some (cls_name, defining_super) } in
  let body = compile_tail_block cx m.Ast.m_body in
  let n_params = List.length m.Ast.m_params in
  let param_slots = Array.of_list (List.map (Hashtbl.find slots) m.Ast.m_params) in
  let pos = m.Ast.m_pos in
  let name = m.Ast.m_name in
  fun vm this args ->
    let got = List.length args in
    if got <> n_params then
      runtime_error pos "method %s.%s expects %d argument(s), got %d" cls_name name
        n_params got;
    let frame = { slots = Array.make n_slots unbound; this } in
    List.iteri (fun i v -> frame.slots.(Array.unsafe_get param_slots i) <- v) args;
    run_frame vm frame body

let compile_function_impl img (f : Ast.func_decl) : Vm.t -> Value.t list -> Value.t =
  let slots, n_slots = build_slots f.Ast.f_params f.Ast.f_body in
  let cx = { cx_image = img; cx_slots = slots; cx_defining = None } in
  let body = compile_tail_block cx f.Ast.f_body in
  let n_params = List.length f.Ast.f_params in
  let param_slots = Array.of_list (List.map (Hashtbl.find slots) f.Ast.f_params) in
  fun vm args ->
    let frame = { slots = Array.make n_slots unbound; this = Value.Null } in
    (* call sites check arity; a direct mismatched application (e.g. a
       parameterised main) fails like the List.iter2 it replaces *)
    let rec fill i = function
      | [] -> if i <> n_params then invalid_arg "List.iter2"
      | v :: rest ->
        if i >= n_params then invalid_arg "List.iter2";
        frame.slots.(Array.unsafe_get param_slots i) <- v;
        fill (i + 1) rest
    in
    fill 0 args;
    run_frame vm frame body

(* ------------------------------------------------------------------ *)
(* Image construction                                                  *)
(* ------------------------------------------------------------------ *)

(* Class skeleton used while laying the image out. *)
type skel = {
  sk_super : string option;
  sk_fields : string list;
  sk_own : (string * int) list; (* own methods, declaration order *)
  sk_user : bool;
}

let build_image ~engine (prog : Ast.program) : image =
  (* Pass 1: class skeletons and global method/function indices, so
     that bodies can reference classes and functions declared later. *)
  let skels : (string, skel) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (name, super) ->
      Hashtbl.replace skels name
        { sk_super = super; sk_fields = [ "message" ]; sk_own = []; sk_user = false })
    Vm.builtin_exception_classes;
  let order = ref [] (* user class names, first-declaration order *) in
  let meths = ref [] (* (class, decl) in index order, reversed *) in
  let n_meths = ref 0 in
  let funcs = ref [] (* func decls in index order, reversed *) in
  let n_funcs = ref 0 in
  let fn_index = Hashtbl.create 16 in
  List.iter
    (fun decl ->
      match decl with
      | Ast.Class_decl c ->
        let own =
          List.map
            (fun m ->
              let idx = !n_meths in
              incr n_meths;
              meths := (c.Ast.c_name, m) :: !meths;
              (m.Ast.m_name, idx))
            c.Ast.c_methods
        in
        let prev_own =
          (* a redeclared class replaces fields and superclass but, as
             before, keeps accumulating methods into one class record *)
          match Hashtbl.find_opt skels c.Ast.c_name with
          | Some { sk_user = true; sk_own; _ } -> sk_own
          | _ ->
            order := c.Ast.c_name :: !order;
            []
        in
        Hashtbl.replace skels c.Ast.c_name
          { sk_super = c.Ast.c_super;
            sk_fields = c.Ast.c_fields;
            sk_own = prev_own @ own;
            sk_user = true }
      | Ast.Func_decl f ->
        let idx = !n_funcs in
        incr n_funcs;
        funcs := f :: !funcs;
        Hashtbl.replace fn_index f.Ast.f_name idx)
    prog;
  (* Resolution helpers over the skeletons.  The [seen] guards keep
     image construction terminating on (degenerate) inheritance cycles,
     which the old compiler only hit at run time. *)
  let rec all_fields seen name =
    if List.mem name seen then []
    else
      match Hashtbl.find_opt skels name with
      | None -> []
      | Some sk ->
        (match sk.sk_super with
         | None -> []
         | Some s -> all_fields (name :: seen) s)
        @ sk.sk_fields
  in
  let disp_cache : (string, (string, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let rec dispatch seen name =
    match Hashtbl.find_opt disp_cache name with
    | Some t -> t
    | None ->
      let t =
        if List.mem name seen then Hashtbl.create 4
        else
          match Hashtbl.find_opt skels name with
          | None -> Hashtbl.create 4
          | Some sk ->
            let base =
              match sk.sk_super with
              | Some s -> Hashtbl.copy (dispatch (name :: seen) s)
              | None -> Hashtbl.create 8
            in
            List.iter (fun (mname, idx) -> Hashtbl.replace base mname idx) sk.sk_own;
            base
      in
      Hashtbl.replace disp_cache name t;
      t
  in
  let rec is_exc seen name =
    String.equal name Vm.throwable
    || (not (List.mem name seen))
       && (match Hashtbl.find_opt skels name with
           | Some { sk_super = Some s; _ } -> is_exc (name :: seen) s
           | Some { sk_super = None; _ } | None -> false)
  in
  let classes = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name sk ->
      Hashtbl.replace classes name
        { ic_name = name;
          ic_super = sk.sk_super;
          ic_decl_fields = sk.sk_fields;
          ic_template = List.map (fun f -> (f, Value.Null)) (all_fields [] name);
          ic_dispatch = dispatch [] name;
          ic_is_exception = is_exc [] name;
          ic_user = sk.sk_user })
    skels;
  let meths_fwd = List.rev !meths in
  let img =
    { img_classes = classes;
      img_class_order =
        Array.of_list (List.rev_map (fun name -> Hashtbl.find classes name) !order);
      img_methods =
        Array.of_list
          (List.map
             (fun (cls, (m : Ast.meth_decl)) ->
               { im_class = cls;
                 im_name = m.Ast.m_name;
                 im_params = m.Ast.m_params;
                 im_throws = m.Ast.m_throws;
                 im_impl = (fun _ _ _ -> assert false) })
             meths_fwd);
      img_functions =
        Array.of_list
          (List.rev_map
             (fun (f : Ast.func_decl) ->
               { if_name = f.Ast.f_name;
                 if_params = f.Ast.f_params;
                 if_impl = (fun _ _ -> assert false) })
             !funcs);
      img_fn_index = fn_index }
  in
  (* Pass 2: compile every body against the finished layout. *)
  (match engine with
   | Closures ->
     List.iteri
       (fun idx (cls, m) ->
         let super = (Hashtbl.find classes cls).ic_super in
         img.img_methods.(idx).im_impl <- compile_method_impl img super cls m)
       meths_fwd;
     List.iteri
       (fun idx f -> img.img_functions.(idx).if_impl <- compile_function_impl img f)
       (List.rev !funcs)
   | Bytecode ->
     let lk = linkage_of_image img in
     List.iteri
       (fun idx (cls, m) ->
         let super = (Hashtbl.find classes cls).ic_super in
         img.img_methods.(idx).im_impl <-
           wrap_bc_method
             (Bytecode.compile_method lk ~cls_name:cls ~defining_super:super m))
       meths_fwd;
     List.iteri
       (fun idx f ->
         img.img_functions.(idx).if_impl <- wrap_bc_fn (Bytecode.compile_function lk f))
       (List.rev !funcs));
  img

let image ?engine (prog : Ast.program) : image =
  let engine = match engine with Some e -> e | None -> !default_engine in
  Obs.span "compile.image" (fun () -> build_image ~engine prog)

(* ------------------------------------------------------------------ *)
(* Instantiation                                                       *)
(* ------------------------------------------------------------------ *)

let instantiate_vm (img : image) : Vm.t =
  let vm = Vm.create () in
  Array.iter
    (fun ic ->
      ignore (Vm.add_class vm ?super:ic.ic_super ~fields:ic.ic_decl_fields ic.ic_name))
    img.img_class_order;
  let table =
    Array.map
      (fun im ->
        Vm.add_method vm im.im_class ~name:im.im_name ~params:im.im_params
          ~throws:im.im_throws im.im_impl)
      img.img_methods
  in
  vm.Vm.meth_table <- table;
  Array.iter
    (fun ifn ->
      Hashtbl.replace vm.Vm.functions ifn.if_name
        { Vm.fn_name = ifn.if_name; fn_params = ifn.if_params; fn_impl = ifn.if_impl })
    img.img_functions;
  vm

let instantiate (img : image) : Vm.t =
  Obs.span "compile.instantiate" (fun () -> instantiate_vm img)

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

(* Static analyses (exception flow, pruning) read the image's finished
   layout instead of re-deriving hierarchy and dispatch from the AST:
   the flattened dispatch tables already encode inheritance, redeclared
   classes and the builtin exception hierarchy exactly as execution
   resolves them. *)

type class_summary = {
  cs_name : string;
  cs_super : string option;
  cs_fields : string list; (* full template layout, inherited first *)
  cs_is_exception : bool;
  cs_user : bool; (* declared by the program, not builtin *)
}

let summarize_class ic =
  { cs_name = ic.ic_name;
    cs_super = ic.ic_super;
    cs_fields = List.map fst ic.ic_template;
    cs_is_exception = ic.ic_is_exception;
    cs_user = ic.ic_user }

let image_classes img =
  let user = Array.to_list (Array.map summarize_class img.img_class_order) in
  let builtin =
    Hashtbl.fold
      (fun _ ic acc -> if ic.ic_user then acc else summarize_class ic :: acc)
      img.img_classes []
    |> List.sort (fun a b -> compare a.cs_name b.cs_name)
  in
  user @ builtin

let image_is_subclass = img_is_subclass

let dispatch_targets img mname =
  Hashtbl.fold
    (fun _ ic acc ->
      match Hashtbl.find_opt ic.ic_dispatch mname with
      | Some idx ->
        let cls = img.img_methods.(idx).im_class in
        if List.mem cls acc then acc else cls :: acc
      | None -> acc)
    img.img_classes []
  |> List.sort compare

let resolve_dispatch img cls mname =
  match resolve_method img cls mname with
  | Some idx -> Some img.img_methods.(idx).im_class
  | None -> None

let program (prog : Ast.program) : Vm.t = instantiate (image prog)

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

(* Run-boundary harvest: the interpreter's hot path counts in plain
   per-VM mutable fields ([steps], [calls], the inline-cache pair) and
   the heap's own totals; one run's worth is folded into the global
   registry here, so enabling metrics adds nothing to the per-step or
   per-call cost. *)
let m_runs = Obs.counter "vm.runs"
let m_steps = Obs.counter "vm.steps"
let m_calls = Obs.counter "vm.calls"
let m_ic_hits = Obs.counter "vm.inline_cache.hits"
let m_ic_misses = Obs.counter "vm.inline_cache.misses"
let m_allocations = Obs.counter "heap.allocations"
let m_barrier_hits = Obs.counter "heap.barrier_hits"
let h_live = Obs.histogram ~unit_:Obs.Items "heap.live_at_exit"
let m_preemptions = Obs.counter "sched.preemptions"
let m_switches = Obs.counter "sched.switches"
let m_contention = Obs.counter "sched.lock_contention"

let harvest vm =
  Obs.incr m_runs;
  Obs.add m_steps vm.Vm.steps;
  Obs.add m_calls vm.Vm.calls;
  Obs.add m_ic_hits vm.Vm.ic_hits;
  Obs.add m_ic_misses vm.Vm.ic_misses;
  Obs.add m_allocations (Heap.allocations vm.Vm.heap);
  Obs.add m_barrier_hits (Heap.barrier_hits vm.Vm.heap);
  Obs.add m_preemptions vm.Vm.sched_preemptions;
  Obs.add m_switches vm.Vm.sched_switches;
  Obs.add m_contention vm.Vm.sched_contention;
  Obs.observe h_live (Heap.live_count vm.Vm.heap)

(* Runs the program's [main] function; returns its value.  [main] is
   always MiniLang thread 0 under the scheduler, so the concurrency
   effects are handled even in sequential programs (which never perform
   them under [Coop], keeping the sequential path unchanged). *)
let run_main ?(policy = Sched.Coop) vm =
  match Hashtbl.find_opt vm.Vm.functions "main" with
  | None -> invalid_arg "program has no main function"
  | Some fn ->
    if not (Obs.enabled ()) then
      Sched.run vm ~policy (fun () -> fn.Vm.fn_impl vm [])
    else
      (* harvest even when a MiniLang exception escapes main — that is
         how most injection runs end *)
      Fun.protect
        ~finally:(fun () -> harvest vm)
        (fun () ->
          Obs.span "vm.run_main" (fun () ->
              Sched.run vm ~policy (fun () -> fn.Vm.fn_impl vm [])))
