(* AST → flat bytecode emission for the [Exec] engine.

   One [Exec.code] object is emitted per method or function body at
   image-build time.  The emitter mirrors the closure compiler
   ([Compile]) exactly: same slot resolution, same static call-site
   resolution (user functions shadow builtins, [super]/[new] resolved
   against the image), same error messages, and — crucially — the same
   [Vm.tick] accounting.  Every AST node contributes one tick at its
   semantic start; the emitter accumulates those in a [pending] counter
   that is folded into the tick field of the next emitted instruction
   (which is exactly the first thing that executes after those nodes
   start), flushed explicitly (TICKN) only where control flow could
   otherwise skip or re-run it (labels, block ends).

   Loops and try/catch/finally become nested sub-blocks referenced
   through site records, so their OCaml-exception scoping in [Exec]
   matches the closure engine's handler scoping; if/and/or lower to
   conditional jumps within one instruction array.

   The peephole pass runs during emission: when the instruction just
   emitted and the one being emitted form one of the dominant dynamic
   pairs measured on the Table-1 app suite (doc/bytecode.md), the pair
   is rewritten in place into a superinstruction.  Fusion is blocked
   across labels (a jump target must stay addressable) and each fused
   component keeps its own tick operand, so step accounting and error
   ordering are unchanged. *)

open Failatom_runtime

(* What the emitter needs to know about the image under construction.
   Passed as closures by [Compile] to keep the module dependency
   one-way (Compile → Bytecode → Exec). *)
type cls_info = {
  ci_template : (string * Value.t) list;
  ci_init : int; (* image method index of [init], or -1 *)
  ci_is_exc : bool;
}

type linkage = {
  lk_resolve : string -> string -> int;
      (* class name -> method name -> image method index, or -1 *)
  lk_fn : string -> (int * (Vm.t -> Value.t list -> Value.t)) option;
      (* user function: arity and (late-bound) implementation *)
  lk_class : string -> cls_info option;
  lk_is_exc : Vm.t -> string -> bool;
  lk_exn_matches : Vm.t -> Vm.exn_value -> string -> bool;
}

(* [Ast.binop] in declaration order; must match [Exec.eval_binop]. *)
let binop_code : Ast.binop -> int = function
  | Ast.Add -> 0
  | Ast.Sub -> 1
  | Ast.Mul -> 2
  | Ast.Div -> 3
  | Ast.Mod -> 4
  | Ast.Eq -> 5
  | Ast.Neq -> 6
  | Ast.Lt -> 7
  | Ast.Le -> 8
  | Ast.Gt -> 9
  | Ast.Ge -> 10

(* ------------------------------------------------------------------ *)
(* Emission state                                                      *)
(* ------------------------------------------------------------------ *)

(* Pools shared by a body and all its sub-blocks. *)
type cx = {
  lk : linkage;
  slots : (string, int) Hashtbl.t;
  defining : (string * string option) option; (* class, superclass *)
  mutable consts_rev : Value.t list;
  mutable n_consts : int;
  const_ix : (Value.t, int) Hashtbl.t;
  mutable strs_rev : string list;
  mutable n_strs : int;
  str_ix : (string, int) Hashtbl.t;
  mutable calls_rev : Exec.call_site list;
  mutable n_calls : int;
  mutable fns_rev : Exec.fn_site list;
  mutable n_fns : int;
  mutable news_rev : Exec.new_site list;
  mutable n_news : int;
  mutable loops_rev : Exec.loop_site list;
  mutable n_loops : int;
  mutable trys_rev : Exec.try_site list;
  mutable n_trys : int;
  mutable max_stack : int;
      (* conservative (may over-estimate across joins, never under) *)
}

(* One instruction buffer: a body or a loop/try sub-block.  Every block
   executes at the frame's base stack pointer, so [depth] always starts
   at 0 and [cx.max_stack] is the max over all blocks. *)
type blk = {
  mutable bc : int array;
  mutable blen : int;
  mutable pending : int; (* ticks owed to the next emitted instruction *)
  mutable last : int; (* start of the last instruction; -1 at labels *)
  mutable last2 : int; (* start of the instruction before [last]; -1 unknown *)
  mutable depth : int;
}

let new_blk () =
  { bc = Array.make 64 0; blen = 0; pending = 0; last = -1; last2 = -1; depth = 0 }

let make_cx lk slots defining =
  { lk; slots; defining;
    consts_rev = []; n_consts = 0; const_ix = Hashtbl.create 16;
    strs_rev = []; n_strs = 0; str_ix = Hashtbl.create 16;
    calls_rev = []; n_calls = 0;
    fns_rev = []; n_fns = 0;
    news_rev = []; n_news = 0;
    loops_rev = []; n_loops = 0;
    trys_rev = []; n_trys = 0;
    max_stack = 0 }

let add_const cx v =
  match Hashtbl.find_opt cx.const_ix v with
  | Some k -> k
  | None ->
    let k = cx.n_consts in
    cx.n_consts <- k + 1;
    cx.consts_rev <- v :: cx.consts_rev;
    Hashtbl.replace cx.const_ix v k;
    k

let add_str cx s =
  match Hashtbl.find_opt cx.str_ix s with
  | Some k -> k
  | None ->
    let k = cx.n_strs in
    cx.n_strs <- k + 1;
    cx.strs_rev <- s :: cx.strs_rev;
    Hashtbl.replace cx.str_ix s k;
    k

let add_call cx site =
  let k = cx.n_calls in
  cx.n_calls <- k + 1;
  cx.calls_rev <- site :: cx.calls_rev;
  k

let add_fn cx site =
  let k = cx.n_fns in
  cx.n_fns <- k + 1;
  cx.fns_rev <- site :: cx.fns_rev;
  k

let add_new cx site =
  let k = cx.n_news in
  cx.n_news <- k + 1;
  cx.news_rev <- site :: cx.news_rev;
  k

let add_loop cx site =
  let k = cx.n_loops in
  cx.n_loops <- k + 1;
  cx.loops_rev <- site :: cx.loops_rev;
  k

let add_try cx site =
  let k = cx.n_trys in
  cx.n_trys <- k + 1;
  cx.trys_rev <- site :: cx.trys_rev;
  k

let bump cx b d =
  b.depth <- b.depth + d;
  if b.depth > cx.max_stack then cx.max_stack <- b.depth

let ensure b n =
  if b.blen + n > Array.length b.bc then begin
    let bigger = Array.make (max (2 * Array.length b.bc) (b.blen + n)) 0 in
    Array.blit b.bc 0 bigger 0 b.blen;
    b.bc <- bigger
  end

(* Appends a full instruction (opcode and tick field included). *)
let raw b ws =
  ensure b (List.length ws);
  b.last2 <- b.last;
  b.last <- b.blen;
  List.iter
    (fun w ->
      b.bc.(b.blen) <- w;
      b.blen <- b.blen + 1)
    ws

(* Appends [op] with the pending ticks and the given operands. *)
let instr b op operands =
  let t = b.pending in
  b.pending <- 0;
  raw b (op :: t :: operands)

let pend b = b.pending <- b.pending + 1
let flush_ticks b = if b.pending > 0 then instr b Exec.op_tickn []

(* The last emitted instruction, available for fusion (-1 when the
   current position is a jump target). *)
let prev_op b = if b.last >= 0 then b.bc.(b.last) else -1

(* Removes the last instruction from the buffer and returns its words;
   the following [raw] re-starts at the same offset.  May be called
   twice in a row to take a two-instruction window. *)
let take_prev b =
  let p = b.last in
  let ws = Array.sub b.bc p (b.blen - p) in
  b.blen <- p;
  b.last <- b.last2;
  b.last2 <- -1;
  ws

(* Forward-only labels (loops are sub-blocks, so no backward jumps). *)
type label = { mutable lpos : int; mutable patches : int list }

let new_label () = { lpos = -1; patches = [] }

let jump b op l =
  (* a conditional jump straight after a comparison folds into it: the
     result is branched on without ever being pushed *)
  (if op = Exec.op_jf && b.last >= 0 && b.bc.(b.last) = Exec.op_binop then begin
     let w = take_prev b in
     let t2 = b.pending in
     b.pending <- 0;
     raw b [ Exec.op_bjf; w.(1); w.(2); w.(3); w.(4); t2; 0 ]
   end
   else if op = Exec.op_jf && b.last >= 0 && b.bc.(b.last) = Exec.op_lcb then begin
     let w = take_prev b in
     let t2 = b.pending in
     b.pending <- 0;
     raw b
       [ Exec.op_lcbjf; w.(1); w.(2); w.(3); w.(4); w.(5); w.(6); w.(7); w.(8);
         w.(9); w.(10); w.(11); t2; 0 ]
   end
   else if op = Exec.op_jf && b.last >= 0 && b.bc.(b.last) = Exec.op_llb then begin
     let w = take_prev b in
     let t2 = b.pending in
     b.pending <- 0;
     raw b
       [ Exec.op_llbjf; w.(1); w.(2); w.(3); w.(4); w.(5); w.(6); w.(7); w.(8);
         w.(9); w.(10); w.(11); w.(12); w.(13); w.(14); t2; 0 ]
   end
   else if op = Exec.op_jf && b.last >= 0 && b.bc.(b.last) = Exec.op_tfcb then begin
     let w = take_prev b in
     let t2 = b.pending in
     b.pending <- 0;
     raw b
       [ Exec.op_tfcbjf; w.(1); w.(2); w.(3); w.(4); w.(5); w.(6); w.(7); w.(8);
         w.(9); w.(10); w.(11); t2; 0 ]
   end
   else instr b op [ 0 ]);
  let at = b.blen - 1 in
  if l.lpos >= 0 then b.bc.(at) <- l.lpos else l.patches <- at :: l.patches

let bind b l =
  flush_ticks b;
  b.last <- -1;
  b.last2 <- -1;
  l.lpos <- b.blen;
  List.iter (fun p -> b.bc.(p) <- b.blen) l.patches

let finish b =
  instr b Exec.op_end [];
  Array.sub b.bc 0 b.blen

(* ------------------------------------------------------------------ *)
(* Fused emitters (the peephole pass)                                  *)
(* ------------------------------------------------------------------ *)

let emit_load cx b slot name line col =
  let nix = add_str cx name in
  (if prev_op b = Exec.op_load then begin
     let w = take_prev b in
     let t2 = b.pending in
     b.pending <- 0;
     raw b
       [ Exec.op_load2; w.(1); w.(2); w.(3); w.(4); w.(5); t2; slot; nix; line; col ]
   end
   else instr b Exec.op_load [ slot; nix; line; col ]);
  bump cx b 1

let emit_const cx b v =
  let k = add_const cx v in
  (if prev_op b = Exec.op_load then begin
     let w = take_prev b in
     let t2 = b.pending in
     b.pending <- 0;
     raw b [ Exec.op_loadc; w.(1); w.(2); w.(3); w.(4); w.(5); t2; k ]
   end
   else instr b Exec.op_const [ k ]);
  bump cx b 1

let emit_getfield cx b field line col =
  let fix = add_str cx field in
  let p = prev_op b in
  if p = Exec.op_load then begin
    let w = take_prev b in
    let t2 = b.pending in
    b.pending <- 0;
    raw b [ Exec.op_loadf; w.(1); w.(2); w.(3); w.(4); w.(5); t2; fix; line; col ]
  end
  else if p = Exec.op_this then begin
    let w = take_prev b in
    let t2 = b.pending in
    b.pending <- 0;
    raw b [ Exec.op_thisf; w.(1); t2; fix; line; col ]
  end
  else instr b Exec.op_getfield [ fix; line; col ]

let emit_binop cx b bop line col =
  let p = prev_op b in
  (if p = Exec.op_const && b.last2 >= 0 && b.bc.(b.last2) = Exec.op_thisf
   then begin
     (* three-wide rewrite: THISF;CONST;BINOP → TFCB *)
     let wc = take_prev b in
     let wt = take_prev b in
     let t4 = b.pending in
     b.pending <- 0;
     raw b
       [ Exec.op_tfcb; wt.(1); wt.(2); wt.(3); wt.(4); wt.(5); wc.(1); wc.(2);
         t4; bop; line; col ]
   end
   else if p = Exec.op_const then begin
     let w = take_prev b in
     let t2 = b.pending in
     b.pending <- 0;
     raw b [ Exec.op_constb; w.(1); w.(2); t2; bop; line; col ]
   end
   else if p = Exec.op_load then begin
     let w = take_prev b in
     let t2 = b.pending in
     b.pending <- 0;
     raw b [ Exec.op_loadb; w.(1); w.(2); w.(3); w.(4); w.(5); t2; bop; line; col ]
   end
   else if p = Exec.op_loadc then begin
     (* chained rewrite: LOAD;CONST already fused to LOADC, now absorb
        the operator too — both operands stay in OCaml locals *)
     let w = take_prev b in
     let t3 = b.pending in
     b.pending <- 0;
     raw b
       [ Exec.op_lcb; w.(1); w.(2); w.(3); w.(4); w.(5); w.(6); w.(7); t3; bop;
         line; col ]
   end
   else if p = Exec.op_load2 then begin
     let w = take_prev b in
     let t3 = b.pending in
     b.pending <- 0;
     raw b
       [ Exec.op_llb; w.(1); w.(2); w.(3); w.(4); w.(5); w.(6); w.(7); w.(8);
         w.(9); w.(10); t3; bop; line; col ]
   end
   else instr b Exec.op_binop [ bop; line; col ]);
  bump cx b (-1)

(* [vbool (truthy v)] at the end of an and/or arm.  Elided when the
   value on top is already a canonical Bool: after another TRUTHY, or
   after a comparison operator (codes 5..10 return interned Bools).
   Any pending ticks simply ride to the next instruction. *)
let emit_truthy b =
  let p = prev_op b in
  let cmp off = b.bc.(b.last + off) >= 5 in
  if
    p = Exec.op_truthy
    || (p = Exec.op_binop && cmp 2)
    || (p = Exec.op_constb && cmp 4)
    || (p = Exec.op_loadb && cmp 7)
    || (p = Exec.op_lcb && cmp 9)
    || (p = Exec.op_llb && cmp 12)
  then ()
  else instr b Exec.op_truthy []

let emit_fail cx b msg line col =
  instr b Exec.op_fail [ add_str cx msg; line; col ];
  bump cx b 1 (* expression position: keeps linear depth accounting sound *)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec emit_expr cx b (e : Ast.expr) =
  let line = e.Ast.epos.Ast.line and col = e.Ast.epos.Ast.col in
  pend b;
  match e.Ast.e with
  | Ast.Int_lit n -> emit_const cx b (Value.Int n)
  | Ast.Str_lit s -> emit_const cx b (Value.Str s)
  | Ast.Bool_lit v -> emit_const cx b (Value.Bool v)
  | Ast.Null_lit ->
    (* as a pool constant, so [x != null] and [return null] take the
       same fusion paths as literal operands *)
    emit_const cx b Value.Null
  | Ast.This ->
    instr b Exec.op_this [];
    bump cx b 1
  | Ast.Var x -> (
    match Hashtbl.find_opt cx.slots x with
    | Some i -> emit_load cx b i x line col
    | None -> emit_fail cx b (Printf.sprintf "unknown variable %s" x) line col)
  | Ast.Unary (Ast.Neg, a) ->
    emit_expr cx b a;
    instr b Exec.op_neg [ line; col ]
  | Ast.Unary (Ast.Not, a) ->
    emit_expr cx b a;
    instr b Exec.op_not []
  | Ast.Binary (op, a, a2) ->
    emit_expr cx b a;
    emit_expr cx b a2;
    emit_binop cx b (binop_code op) line col
  | Ast.And (a, a2) ->
    (* if truthy a then vbool (truthy a2) else vfalse *)
    let l_false = new_label () and l_end = new_label () in
    emit_expr cx b a;
    jump b Exec.op_jf l_false;
    bump cx b (-1);
    emit_expr cx b a2;
    emit_truthy b;
    jump b Exec.op_jmp l_end;
    bind b l_false;
    emit_const cx b (Value.Bool false);
    bump cx b (-1); (* join: both paths push exactly one value *)
    bind b l_end
  | Ast.Or (a, a2) ->
    let l_rhs = new_label () and l_end = new_label () in
    emit_expr cx b a;
    jump b Exec.op_jf l_rhs;
    bump cx b (-1);
    emit_const cx b (Value.Bool true);
    jump b Exec.op_jmp l_end;
    bind b l_rhs;
    emit_expr cx b a2;
    emit_truthy b;
    bump cx b (-1);
    bind b l_end
  | Ast.Field (r, f) ->
    emit_expr cx b r;
    emit_getfield cx b f line col
  | Ast.Index (r, i) ->
    emit_expr cx b r;
    emit_expr cx b i;
    instr b Exec.op_getidx [ line; col ];
    bump cx b (-1)
  | Ast.Call (r, m, args) -> (
    let lk = cx.lk in
    let site () =
      { Exec.cs_name = m;
        cs_cache = ref ("", -1);
        cs_resolve = (fun cls -> lk.lk_resolve cls m) }
    in
    let n = List.length args in
    match r.Ast.e with
    | Ast.This ->
      (* the receiver push is elided: CALLT reads [this] from the frame;
         the This node's tick rides with the pending counter *)
      pend b;
      List.iter (emit_expr cx b) args;
      instr b Exec.op_callt [ add_call cx (site ()); n ];
      bump cx b (1 - n)
    | _ ->
      emit_expr cx b r;
      List.iter (emit_expr cx b) args;
      instr b Exec.op_call [ add_call cx (site ()); n ];
      bump cx b (-n))
  | Ast.Super_call (m, args) -> (
    match cx.defining with
    | None -> emit_fail cx b "super call outside of a method" line col
    | Some (defining, None) ->
      emit_fail cx b
        (Printf.sprintf "class %s has no superclass" defining)
        line col
    | Some (defining, Some super) ->
      let n = List.length args in
      let idx = cx.lk.lk_resolve super m in
      if idx >= 0 then begin
        List.iter (emit_expr cx b) args;
        instr b Exec.op_super [ idx; n ];
        bump cx b (1 - n)
      end
      else begin
        (* dynamic fallback: the closure engine looks the method up
           *before* evaluating the arguments (and errors without
           evaluating them), so the lookup is its own instruction *)
        let s_sup = add_str cx super in
        let s_m = add_str cx m in
        let s_d = add_str cx defining in
        instr b Exec.op_superck [ s_sup; s_m; s_d; line; col ];
        List.iter (emit_expr cx b) args;
        instr b Exec.op_superdyn [ s_sup; s_m; s_d; line; col; n ];
        bump cx b (1 - n)
      end)
  | Ast.Fn_call (name, args) ->
    List.iter (emit_expr cx b) args;
    let nargs = List.length args in
    let target : Vm.t -> Value.t list -> Value.t =
      match cx.lk.lk_fn name with
      | Some (arity, impl) ->
        if nargs <> arity then
          fun _ _ ->
            raise
              (Exec.Error
                 ( Printf.sprintf "function %s expects %d argument(s), got %d"
                     name arity nargs,
                   line, col ))
        else impl
      | None -> (
        match Builtins.find name with
        | Some (arity, f) ->
          if nargs <> arity then
            fun _ _ ->
              raise
                (Exec.Error
                   ( Printf.sprintf "builtin %s: expected %d argument(s), got %d"
                       name arity nargs,
                     line, col ))
          else
            fun vm vargs ->
              (try f vm vargs
               with Invalid_argument msg -> raise (Exec.Error (msg, line, col)))
        | None ->
          fun _ _ ->
            raise (Exec.Error (Printf.sprintf "unknown function %s" name, line, col)))
    in
    let fix = add_fn cx { Exec.fs_name = name; fs_target = target } in
    (if
       nargs >= 2
       && prev_op b = Exec.op_thisf
       && b.last2 >= 0
       && b.bc.(b.last2) = Exec.op_thisf
     then begin
       (* the last two arguments are both bare this.f loads *)
       let wb = take_prev b in
       let wa = take_prev b in
       let t = b.pending in
       b.pending <- 0;
       raw b
         [ Exec.op_fncalltf2; wa.(1); wa.(2); wa.(3); wa.(4); wa.(5); wb.(1);
           wb.(2); wb.(3); wb.(4); wb.(5); fix; nargs; t ]
     end
     else if nargs >= 1 && prev_op b = Exec.op_thisf then begin
       (* the last argument is a bare this.f: fold its load into the call *)
       let w = take_prev b in
       let t3 = b.pending in
       b.pending <- 0;
       raw b
         [ Exec.op_fncalltf; w.(1); w.(2); w.(3); w.(4); w.(5); fix; nargs; t3 ]
     end
     else instr b Exec.op_fncall [ fix; nargs ]);
    bump cx b (1 - nargs)
  | Ast.New (cls, args) ->
    List.iter (emit_expr cx b) args;
    let n = List.length args in
    let site =
      match cx.lk.lk_class cls with
      | None ->
        { Exec.ns_cls = cls; ns_known = false; ns_template = []; ns_init = -1;
          ns_is_exc = false; ns_line = line; ns_col = col }
      | Some ci ->
        { Exec.ns_cls = cls; ns_known = true; ns_template = ci.ci_template;
          ns_init = ci.ci_init; ns_is_exc = ci.ci_is_exc; ns_line = line;
          ns_col = col }
    in
    instr b Exec.op_new [ add_new cx site; n ];
    bump cx b (1 - n)
  | Ast.Array_lit elems ->
    List.iter (emit_expr cx b) elems;
    let n = List.length elems in
    instr b Exec.op_array [ n ];
    bump cx b (1 - n)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and emit_stmt cx b (st : Ast.stmt) =
  let line = st.Ast.spos.Ast.line and col = st.Ast.spos.Ast.col in
  pend b;
  match st.Ast.s with
  | Ast.Var_decl (x, e) ->
    emit_expr cx b e;
    instr b Exec.op_store [ Hashtbl.find cx.slots x ];
    bump cx b (-1)
  | Ast.Assign (Ast.Lvar x, e) -> (
    emit_expr cx b e;
    match Hashtbl.find_opt cx.slots x with
    | Some i ->
      let p = prev_op b in
      if p = Exec.op_binop then begin
        let w = take_prev b in
        let t2 = b.pending in
        b.pending <- 0;
        raw b
          [ Exec.op_bsc; w.(1); w.(2); w.(3); w.(4); t2; i; add_str cx x; line;
            col ]
      end
      else if p = Exec.op_lcb then begin
        let w = take_prev b in
        let t4 = b.pending in
        b.pending <- 0;
        raw b
          [ Exec.op_lcbs; w.(1); w.(2); w.(3); w.(4); w.(5); w.(6); w.(7);
            w.(8); w.(9); w.(10); w.(11); t4; i; add_str cx x; line; col ]
      end
      else if p = Exec.op_llb then begin
        let w = take_prev b in
        let t4 = b.pending in
        b.pending <- 0;
        raw b
          [ Exec.op_llbs; w.(1); w.(2); w.(3); w.(4); w.(5); w.(6); w.(7);
            w.(8); w.(9); w.(10); w.(11); w.(12); w.(13); w.(14); t4; i;
            add_str cx x; line; col ]
      end
      else instr b Exec.op_storechk [ i; add_str cx x; line; col ];
      bump cx b (-1)
    | None ->
      (* the value is computed before the variable is resolved, as in
         the closure engine *)
      emit_fail cx b (Printf.sprintf "unknown variable %s" x) line col)
  | Ast.Assign (Ast.Lfield (r, f), e) -> (
    match r.Ast.e with
    | Ast.This ->
      (* receiver push elided, as for CALLT *)
      pend b;
      emit_expr cx b e;
      let fix = add_str cx f in
      let p = prev_op b in
      (if p = Exec.op_load then begin
         let w = take_prev b in
         let t2 = b.pending in
         b.pending <- 0;
         raw b
           [ Exec.op_lsetft; w.(1); w.(2); w.(3); w.(4); w.(5); t2; fix; line;
             col ]
       end
       else if p = Exec.op_constb then begin
         let w = take_prev b in
         let t3 = b.pending in
         b.pending <- 0;
         raw b
           [ Exec.op_cbsetft; w.(1); w.(2); w.(3); w.(4); w.(5); w.(6); t3;
             fix; line; col ]
       end
       else if p = Exec.op_const then begin
         let w = take_prev b in
         let t2 = b.pending in
         b.pending <- 0;
         raw b [ Exec.op_csetft; w.(1); w.(2); t2; fix; line; col ]
       end
       else instr b Exec.op_setft [ fix; line; col ]);
      bump cx b (-1)
    | _ ->
      emit_expr cx b r;
      emit_expr cx b e;
      instr b Exec.op_setfield [ add_str cx f; line; col ];
      bump cx b (-2))
  | Ast.Assign (Ast.Lindex (r, i), e) ->
    emit_expr cx b r;
    emit_expr cx b i;
    emit_expr cx b e;
    instr b Exec.op_setidx [ line; col ];
    bump cx b (-3)
  | Ast.Expr_stmt e ->
    emit_expr cx b e;
    let p = prev_op b in
    (if p = Exec.op_call || p = Exec.op_fncall || p = Exec.op_callt then begin
       (* a call in statement position never stores its result *)
       let w = take_prev b in
       let fused =
         if p = Exec.op_call then Exec.op_callp
         else if p = Exec.op_fncall then Exec.op_fncallp
         else Exec.op_calltp
       in
       let t2 = b.pending in
       b.pending <- 0;
       raw b [ fused; w.(1); w.(2); w.(3); t2 ]
     end
     else instr b Exec.op_pop []);
    bump cx b (-1)
  | Ast.If (c0, t, f) ->
    let l_else = new_label () and l_end = new_label () in
    emit_expr cx b c0;
    jump b Exec.op_jf l_else;
    bump cx b (-1);
    emit_block cx b t;
    jump b Exec.op_jmp l_end;
    bind b l_else;
    emit_block cx b f;
    bind b l_end
  | Ast.While (c0, body) ->
    let ls_cond = emit_sub cx (fun sb -> emit_expr cx sb c0) in
    let ls_body = emit_sub cx (fun sb -> emit_block cx sb body) in
    instr b Exec.op_while
      [ add_loop cx { Exec.ls_cond; ls_update = [||]; ls_body } ]
  | Ast.For (init, cond, update, body) ->
    (* the loop's own tick, then the init statement, run once before the
       FOR instruction — exactly the closure engine's order *)
    Option.iter (emit_stmt cx b) init;
    let ls_cond =
      match cond with
      | None -> [||]
      | Some c0 -> emit_sub cx (fun sb -> emit_expr cx sb c0)
    in
    let ls_update =
      match update with
      | None -> [||]
      | Some u -> emit_sub cx (fun sb -> emit_stmt cx sb u)
    in
    let ls_body = emit_sub cx (fun sb -> emit_block cx sb body) in
    instr b Exec.op_for [ add_loop cx { Exec.ls_cond; ls_update; ls_body } ]
  | Ast.Return None -> instr b Exec.op_retnull []
  | Ast.Return (Some e) ->
    emit_expr cx b e;
    let p = prev_op b in
    (if p = Exec.op_binop then begin
       let w = take_prev b in
       let t2 = b.pending in
       b.pending <- 0;
       raw b [ Exec.op_bret; w.(1); w.(2); w.(3); w.(4); t2 ]
     end
     else if p = Exec.op_load then begin
       let w = take_prev b in
       let t2 = b.pending in
       b.pending <- 0;
       raw b [ Exec.op_lret; w.(1); w.(2); w.(3); w.(4); w.(5); t2 ]
     end
     else if p = Exec.op_null then begin
       let w = take_prev b in
       let t2 = b.pending in
       b.pending <- 0;
       raw b [ Exec.op_nret; w.(1); t2 ]
     end
     else if p = Exec.op_thisf then begin
       let w = take_prev b in
       let t3 = b.pending in
       b.pending <- 0;
       raw b [ Exec.op_tfret; w.(1); w.(2); w.(3); w.(4); w.(5); t3 ]
     end
     else if p = Exec.op_lcb then begin
       let w = take_prev b in
       let t4 = b.pending in
       b.pending <- 0;
       raw b
         [ Exec.op_lcbr; w.(1); w.(2); w.(3); w.(4); w.(5); w.(6); w.(7); w.(8);
           w.(9); w.(10); w.(11); t4 ]
     end
     else if p = Exec.op_llb then begin
       let w = take_prev b in
       let t4 = b.pending in
       b.pending <- 0;
       raw b
         [ Exec.op_llbr; w.(1); w.(2); w.(3); w.(4); w.(5); w.(6); w.(7); w.(8);
           w.(9); w.(10); w.(11); w.(12); w.(13); w.(14); t4 ]
     end
     else if p = Exec.op_const then begin
       let w = take_prev b in
       let t2 = b.pending in
       b.pending <- 0;
       raw b [ Exec.op_cret; w.(1); w.(2); t2 ]
     end
     else if p = Exec.op_this then begin
       let w = take_prev b in
       let t2 = b.pending in
       b.pending <- 0;
       raw b [ Exec.op_tret; w.(1); t2 ]
     end
     else instr b Exec.op_ret []);
    bump cx b (-1)
  | Ast.Throw e ->
    emit_expr cx b e;
    instr b Exec.op_throw [ line; col ];
    bump cx b (-1)
  | Ast.Try (body, catches, fin) ->
    let ts_body = emit_sub cx (fun sb -> emit_block cx sb body) in
    let ts_catches =
      Array.of_list
        (List.map
           (fun c ->
             ( c.Ast.cc_class,
               Hashtbl.find cx.slots c.Ast.cc_var,
               emit_sub cx (fun sb -> emit_block cx sb c.Ast.cc_body) ))
           catches)
    in
    let ts_fin =
      match fin with
      | None -> [||]
      | Some f -> emit_sub cx (fun sb -> emit_block cx sb f)
    in
    instr b Exec.op_try [ add_try cx { Exec.ts_body; ts_catches; ts_fin } ]
  | Ast.Break -> instr b Exec.op_break []
  | Ast.Continue -> instr b Exec.op_cont []
  | Ast.Block body -> emit_block cx b body

and emit_block cx b body = List.iter (emit_stmt cx b) body

(* A nested sub-block (loop condition/update/body, try body, handler,
   finally): its own instruction array, executed at the frame's base
   stack pointer. *)
and emit_sub cx f =
  let sb = new_blk () in
  f sb;
  ignore (bump cx sb 0);
  finish sb

(* ------------------------------------------------------------------ *)
(* Scope resolution (same algorithm as the closure compiler's)         *)
(* ------------------------------------------------------------------ *)

(* One slot per distinct variable name in a body: parameters first,
   then every [var] declaration and every catch variable, in source
   order.  MiniLang scoping is function-level, so name identity is
   exactly slot identity. *)
let build_slots params body =
  let slots = Hashtbl.create 16 in
  let n = ref 0 in
  let add x =
    if not (Hashtbl.mem slots x) then begin
      Hashtbl.add slots x !n;
      incr n
    end
  in
  let rec walk_stmt (st : Ast.stmt) =
    match st.Ast.s with
    | Ast.Var_decl (x, _) -> add x
    | Ast.If (_, t, f) ->
      walk_block t;
      walk_block f
    | Ast.While (_, b) -> walk_block b
    | Ast.For (i, _, u, b) ->
      Option.iter walk_stmt i;
      Option.iter walk_stmt u;
      walk_block b
    | Ast.Try (b, catches, fin) ->
      walk_block b;
      List.iter
        (fun c ->
          add c.Ast.cc_var;
          walk_block c.Ast.cc_body)
        catches;
      Option.iter walk_block fin
    | Ast.Block b -> walk_block b
    | Ast.Assign _ | Ast.Expr_stmt _ | Ast.Return _ | Ast.Throw _ | Ast.Break
    | Ast.Continue -> ()
  and walk_block b = List.iter walk_stmt b in
  List.iter add params;
  walk_block body;
  (slots, !n)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let compile_body lk ~defining params body =
  let slots, n_slots = build_slots params body in
  let cx = make_cx lk slots defining in
  let b = new_blk () in
  emit_block cx b body;
  let main = finish b in
  let code =
    { Exec.c_env =
        { Exec.env_is_exc = lk.lk_is_exc; env_exn_matches = lk.lk_exn_matches };
      c_main = main;
      c_consts = Array.of_list (List.rev cx.consts_rev);
      c_strs = Array.of_list (List.rev cx.strs_rev);
      c_calls = Array.of_list (List.rev cx.calls_rev);
      c_fns = Array.of_list (List.rev cx.fns_rev);
      c_news = Array.of_list (List.rev cx.news_rev);
      c_loops = Array.of_list (List.rev cx.loops_rev);
      c_trys = Array.of_list (List.rev cx.trys_rev);
      c_nslots = n_slots;
      c_stack = n_slots + cx.max_stack + 1 }
  in
  let param_slots = Array.of_list (List.map (Hashtbl.find slots) params) in
  (code, param_slots)

let compile_method_code lk ~cls_name ~defining_super (m : Ast.meth_decl) =
  compile_body lk ~defining:(Some (cls_name, defining_super)) m.Ast.m_params
    m.Ast.m_body

let compile_method lk ~cls_name ~defining_super (m : Ast.meth_decl) : Vm.impl =
  let code, param_slots = compile_method_code lk ~cls_name ~defining_super m in
  let n_params = Array.length param_slots in
  let name = m.Ast.m_name in
  let line = m.Ast.m_pos.Ast.line and col = m.Ast.m_pos.Ast.col in
  fun vm this args ->
    let got = List.length args in
    if got <> n_params then
      raise
        (Exec.Error
           ( Printf.sprintf "method %s.%s expects %d argument(s), got %d" cls_name
               name n_params got,
             line, col ));
    Exec.run_root code vm this param_slots args

let compile_function lk (f : Ast.func_decl) : Vm.t -> Value.t list -> Value.t =
  let code, param_slots = compile_body lk ~defining:None f.Ast.f_params f.Ast.f_body in
  (* call sites check arity; a direct mismatched application fails like
     the List.iter2 the closure engine mimics (see Exec.run_root) *)
  fun vm args -> Exec.run_root code vm Value.Null param_slots args
