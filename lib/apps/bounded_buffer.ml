(* BoundedBuffer workload (Concurrent suite): a monitor-protected ring
   buffer filled by a producer thread and drained by two consumer
   threads, in the classic bounded-buffer shape — except capacity
   errors surface as exceptions rather than blocking waits, so every
   schedule terminates without condition variables.

   The seeded interleaving violation is [audit]: the main thread reads
   the head index and the element count through two unlocked helper
   calls.  The method mutates nothing, so under the cooperative
   schedule it is atomic for every injection; under a preemptive
   schedule a consumer's take can land between the entry snapshot and
   an injection inside [count], marking the same method failure
   non-atomic.

   Output is schedule-invariant: the producer phase is joined before
   the consumers start, the two consumers take a fixed quota each under
   the buffer monitor (their drain sums always add to 45), and main
   prints aggregates only after both joins. *)

let name = "BoundedBuffer"

let source =
  {|
class BoundedBuffer {
  field buf;
  field head;
  field tail;
  field n;
  field cap;
  method init(cap) throws NegativeArraySizeException, OutOfMemoryError {
    this.cap = cap;
    this.buf = newArray(cap);
    this.head = 0;
    this.tail = 0;
    this.n = 0;
    return this;
  }
  method put(v) throws IllegalStateException {
    synchronized (this) {
      if (this.n == this.cap) { throw new IllegalStateException("buffer full"); }
      this.buf[this.tail] = v;
      this.tail = (this.tail + 1) % this.cap;
      this.n = this.n + 1;
    }
    return null;
  }
  method take() throws NoSuchElementException {
    var v = null;
    synchronized (this) {
      if (this.n == 0) { throw new NoSuchElementException("buffer empty"); }
      v = this.buf[this.head];
      this.head = (this.head + 1) % this.cap;
      this.n = this.n - 1;
    }
    return v;
  }
  method count() { return this.n; }
  method headIndex() { return this.head; }
  // Seeded violation: an unlocked compound read of head and count.
  method audit() throws IllegalStateException {
    var h = this.headIndex();
    var c = this.count();
    if (c < 0) { throw new IllegalStateException("negative count"); }
    if (c > this.cap) { throw new IllegalStateException("count above capacity"); }
    if (h < 0) { throw new IllegalStateException("bad head index"); }
    return c;
  }
  method produce(items) throws IllegalStateException {
    for (var i = 0; i < items; i = i + 1) {
      this.put(i);
    }
    return items;
  }
  method drain(quota) throws NoSuchElementException {
    var s = 0;
    for (var i = 0; i < quota; i = i + 1) {
      s = s + this.take();
    }
    return s;
  }
}

function main() {
  var buf = new BoundedBuffer(16);
  var p = spawn buf.produce(10);
  check(join(p) == 10, "producer items");
  check(buf.count() == 10, "buffer filled");
  var c1 = spawn buf.drain(5);
  var c2 = spawn buf.drain(5);
  var audits = 0;
  for (var i = 0; i < 6; i = i + 1) {
    check(buf.audit() >= 0, "audit in range");
    audits = audits + 1;
  }
  var s1 = join(c1);
  var s2 = join(c2);
  check(s1 + s2 == 45, "drain sums to 0..9");
  check(buf.count() == 0, "buffer drained");
  try {
    buf.take();
  } catch (NoSuchElementException e) {
    println("drained dry: " + e.message);
  }
  println("drained=" + (s1 + s2) + " left=" + buf.count() + " audits=" + audits);
  return 0;
}
|}
