(** Lock-striped hash map loaded by two threads (Concurrent suite).

    A Table-1 analogue workload whose seeded non-atomicity — an
    unlocked compound read over the stripes — manifests only under a
    preemptive schedule combined with exception injection. *)

val name : string
val source : string
(** The full MiniLang program, including its [main] driver. *)
