(* WorkQueue workload (Concurrent suite): a fixed task list claimed and
   processed by two worker threads; each claim and each result deposit
   happens under the queue monitor, while the main thread polls an
   unlocked progress probe.

   The seeded interleaving violation is [progress]: it reads the done
   counter and the running sum through two unlocked helper calls and
   validates their relationship.  The method mutates nothing, so under
   the cooperative schedule it is atomic for every injection; under a
   preemptive schedule a worker's [record] can commit between the entry
   snapshot and an injection inside [sumSoFar], marking the same probe
   failure non-atomic.

   Output is schedule-invariant: the two workers' quotas exactly cover
   the task list (no claim ever finds it empty), squaring and summing
   commute, and main prints aggregates only after both joins. *)

let name = "WorkQueue"

let source =
  {|
class WorkQueue {
  field tasks;
  field next;
  field ntasks;
  field done;
  field sum;
  method init(n) throws NegativeArraySizeException, OutOfMemoryError {
    this.tasks = newArray(n);
    for (var i = 0; i < n; i = i + 1) {
      this.tasks[i] = i + 1;
    }
    this.next = 0;
    this.ntasks = n;
    this.done = 0;
    this.sum = 0;
    return this;
  }
  method claim() throws NoSuchElementException {
    var t = 0;
    synchronized (this) {
      if (this.next == this.ntasks) {
        throw new NoSuchElementException("no tasks left");
      }
      t = this.tasks[this.next];
      this.next = this.next + 1;
    }
    return t;
  }
  method compute(t) { return t * t; }
  method record(v) {
    synchronized (this) {
      this.sum = this.sum + v;
      this.done = this.done + 1;
    }
    return null;
  }
  method worker(quota) throws NoSuchElementException {
    var taken = 0;
    for (var i = 0; i < quota; i = i + 1) {
      var t = this.claim();
      var v = this.compute(t);
      this.record(v);
      taken = taken + 1;
    }
    return taken;
  }
  method doneCount() { return this.done; }
  method sumSoFar() { return this.sum; }
  // Seeded violation: an unlocked compound read of done and sum.  The
  // guards hold under every interleaving (done and sum only grow and
  // stay in range), so an uninjected run never trips them — the
  // non-atomicity is visible only to the injection wrapper's snapshot
  // comparison when a record lands inside the probe's window.
  method progress() throws IllegalStateException {
    var d = this.doneCount();
    var s = this.sumSoFar();
    if (d < 0 || d > this.ntasks) { throw new IllegalStateException("overcounted"); }
    if (s < 0) { throw new IllegalStateException("negative sum"); }
    return d;
  }
}

function main() {
  var q = new WorkQueue(12);
  var w1 = spawn q.worker(6);
  var w2 = spawn q.worker(6);
  var polls = 0;
  for (var i = 0; i < 6; i = i + 1) {
    check(q.progress() >= 0, "progress in range");
    polls = polls + 1;
  }
  var a = join(w1);
  var b = join(w2);
  check(a == 6, "worker 1 quota");
  check(b == 6, "worker 2 quota");
  check(q.doneCount() == 12, "all tasks processed");
  check(q.sumSoFar() == 650, "sum of squares 1..12");
  try {
    q.claim();
  } catch (NoSuchElementException e) {
    println("queue dry: " + e.message);
  }
  println("done=" + q.doneCount() + " sum=" + q.sumSoFar() + " polls=" + polls);
  return 0;
}
|}
