(** Fixed task list claimed by two worker threads under a monitor
    (Concurrent suite).

    A Table-1 analogue workload whose seeded non-atomicity — an
    unlocked compound progress probe — manifests only under a
    preemptive schedule combined with exception injection. *)

val name : string
val source : string
(** The full MiniLang program, including its [main] driver. *)
