(** The workload applications of the paper's evaluation (Table 1):
    six C++-suite programs and ten Java-suite programs, re-implemented
    in MiniLang, plus the repaired LinkedList of the §6.1 case study. *)

type suite = Cpp | Java | Conc

val suite_name : suite -> string

type t = {
  name : string;
  suite : suite;
  description : string;
  source : string;  (** full MiniLang program including its driver *)
}

val cpp_apps : t list
val java_apps : t list

val all : t list
(** The sixteen Table 1 applications, C++ suite first. *)

val concurrent_apps : t list
(** The concurrent Table-1 analogues (StripedMap, BoundedBuffer,
    WorkQueue): multi-threaded workloads whose seeded violations need
    the schedule axis on top of exception injection.  Bundled in
    {!catalog} but not part of Table 1. *)

val linked_list_fixed : t
(** The repaired LinkedList of the case study; not part of Table 1. *)

val synthetic : t
(** The synthetic ground-truth benchmark ({!Synthetic}); not part of
    Table 1. *)

val specials : t list
(** [[linked_list_fixed; synthetic]] — bundled but outside Table 1. *)

val catalog : t list
(** Every bundled application resolvable as app:NAME: {!all} plus
    {!concurrent_apps} plus {!specials}.  The single source of truth
    shared by [failatom apps] and program-spec resolution. *)

val find : string -> t option
(** Looks a name up in {!catalog}. *)
