(* The workload applications of the paper's evaluation (Table 1):
   six C++-suite programs and ten Java-suite programs, plus the
   repaired LinkedList variant used in the §6.1 case study and the
   concurrent Table-1 analogues that exercise the schedule axis. *)

type suite = Cpp | Java | Conc

let suite_name = function Cpp -> "C++" | Java -> "Java" | Conc -> "Concurrent"

type t = {
  name : string;
  suite : suite;
  description : string;
  source : string;
}

let cpp_apps : t list =
  [ { name = "adaptorChain";
      suite = Cpp;
      description = "Self*-style data-flow chain of adaptors feeding sinks";
      source = Adaptor_chain.source };
    { name = "stdQ";
      suite = Cpp;
      description = "ring-buffer deque with queue facades";
      source = Std_q.source };
    { name = "xml2Ctcp";
      suite = Cpp;
      description = "XML to C-struct records shipped over a fake TCP stream";
      source = Xml2ctcp.source };
    { name = "xml2Cviasc1";
      suite = Cpp;
      description = "XML to C through a Self* component pipeline (variant 1)";
      source = Xml2cviasc.source1 };
    { name = "xml2Cviasc2";
      suite = Cpp;
      description = "XML to C with validation and attribute indexing (variant 2)";
      source = Xml2cviasc.source2 };
    { name = "xml2xml1";
      suite = Cpp;
      description = "rule-driven XML to XML transformer with serializer";
      source = Xml2xml.source } ]

let java_apps : t list =
  [ { name = "CircularList";
      suite = Java;
      description = "doubly-linked circular list with sentinel and iterator";
      source = Circular_list.source };
    { name = "Dynarray";
      suite = Java;
      description = "growable array with a sorted subclass";
      source = Dynarray.source };
    { name = "HashedMap";
      suite = Java;
      description = "chained hash map with load-factor rehashing";
      source = Hashed_map.source };
    { name = "HashedSet";
      suite = Java;
      description = "set facade delegating to HashedMap";
      source = Hashed_set.source };
    { name = "LLMap";
      suite = Java;
      description = "association-list map with move-to-front lookup";
      source = Ll_map.source };
    { name = "LinkedBuffer";
      suite = Java;
      description = "FIFO buffer of linked fixed-size chunks";
      source = Linked_buffer.source };
    { name = "LinkedList";
      suite = Java;
      description = "singly-linked list with head/tail and a stack facade";
      source = Linked_list.source };
    { name = "RBMap";
      suite = Java;
      description = "red-black tree map over the shared RBEngine";
      source = Rb_map.source };
    { name = "RBTree";
      suite = Java;
      description = "red-black tree set over the shared RBEngine";
      source = Rb_tree.source };
    { name = "RegExp";
      suite = Java;
      description = "backtracking regular-expression compiler and matcher";
      source = Reg_exp.source } ]

let all = cpp_apps @ java_apps

(* Concurrent Table-1 analogues: multi-threaded MiniLang workloads
   whose seeded violations need the schedule axis ([--schedules]) on
   top of exception injection.  Not part of the paper's Table 1, so
   kept out of [all]. *)
let concurrent_apps : t list =
  [ { name = Striped_map.name;
      suite = Conc;
      description = "lock-striped hash map loaded by two threads";
      source = Striped_map.source };
    { name = Bounded_buffer.name;
      suite = Conc;
      description = "monitor-protected ring buffer with producer/consumers";
      source = Bounded_buffer.source };
    { name = Work_queue.name;
      suite = Conc;
      description = "fixed task list claimed by two workers under a monitor";
      source = Work_queue.source } ]

(* The repaired LinkedList of the case study; not part of Table 1. *)
let linked_list_fixed : t =
  { name = "LinkedListFixed";
    suite = Java;
    description = "LinkedList after the trivial fixes of the paper's case study";
    source = Linked_list.fixed_source }

(* The synthetic ground-truth benchmark; not part of Table 1. *)
let synthetic : t =
  { name = Synthetic.name;
    suite = Java;
    description = "synthetic ground-truth benchmark of all verdict combinations";
    source = Synthetic.source }

let specials = [ linked_list_fixed; synthetic ]

(* Every application resolvable as app:NAME — the single source of truth
   shared by [failatom apps] and program-spec resolution. *)
let catalog = all @ concurrent_apps @ specials
let find name = List.find_opt (fun a -> String.equal a.name name) catalog
