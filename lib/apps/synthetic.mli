(** Synthetic validation benchmark (paper §6, first paragraph): a small
    application containing every combination of (pure / conditional)
    failure (non-)atomic method, with its ground-truth classification.
    The test-suite checks the detector against [expectations] in both
    implementation flavors. *)

open Failatom_core

val name : string
val source : string

val expectations : (Method_id.t * Classify.verdict) list
(** Ground truth, keyed by method.

    The application record lives in {!Registry.synthetic} (so that
    [Registry.find] is the single source of truth for app:NAME
    resolution). *)
