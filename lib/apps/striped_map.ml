(* StripedMap workload (Concurrent suite): a lock-striped hash map in
   the java.util.concurrent style — one small open-addressed stripe per
   hash class, each guarded by its own monitor, loaded by two spawned
   loader threads while the main thread audits.

   The seeded interleaving violation is [snapshotTotal]: it sums the
   stripe sizes with one unlocked helper call per stripe.  The method
   mutates nothing, so under the cooperative schedule every injected
   exception unwinds it with the receiver graph unchanged — atomic.
   Under a preemptive schedule a loader can commit a put between the
   entry snapshot and an injection inside a [size] call, so the very
   same injection marks [snapshotTotal] failure non-atomic: a defect
   only interleaving exposes.

   The driver's output is schedule-invariant: loaders insert disjoint
   keys under per-stripe locks, the op counter is bumped in a call-free
   method body (method-call boundaries are the only preemption points),
   and main prints aggregates only after both joins. *)

let name = "StripedMap"

let source =
  {|
class Stripe {
  field keys;
  field vals;
  field n;
  field cap;
  method init(cap) throws NegativeArraySizeException, OutOfMemoryError {
    this.cap = cap;
    this.keys = newArray(cap);
    this.vals = newArray(cap);
    this.n = 0;
    return this;
  }
  method indexOf(k) {
    for (var i = 0; i < this.n; i = i + 1) {
      if (this.keys[i] == k) { return i; }
    }
    return 0 - 1;
  }
  // Grows before inserting, so a mid-method failure can strand the
  // doubled arrays — the classic partial-resize non-atomicity.
  method put(k, v) throws OutOfMemoryError {
    var i = this.indexOf(k);
    if (i >= 0) {
      this.vals[i] = v;
      return false;
    }
    if (this.n == this.cap) { this.grow(); }
    this.keys[this.n] = k;
    this.vals[this.n] = v;
    this.n = this.n + 1;
    return true;
  }
  method grow() throws OutOfMemoryError {
    var bigger = this.cap * 2;
    var ks = newArray(bigger);
    var vs = newArray(bigger);
    arraycopy(this.keys, 0, ks, 0, this.n);
    arraycopy(this.vals, 0, vs, 0, this.n);
    this.keys = ks;
    this.vals = vs;
    this.cap = bigger;
    return null;
  }
  method get(k) throws NoSuchElementException {
    var i = this.indexOf(k);
    if (i < 0) { throw new NoSuchElementException("no key " + k); }
    return this.vals[i];
  }
  method size() { return this.n; }
}

class StripedMap {
  field stripes;
  field nstripes;
  field ops;
  method init(n) throws NegativeArraySizeException, OutOfMemoryError {
    this.nstripes = n;
    this.stripes = newArray(n);
    for (var i = 0; i < n; i = i + 1) {
      this.stripes[i] = new Stripe(2);
    }
    this.ops = 0;
    return this;
  }
  method stripeFor(k) {
    return this.stripes[hashCode(k) % this.nstripes];
  }
  method put(k, v) throws OutOfMemoryError {
    var s = this.stripeFor(k);
    var fresh = false;
    synchronized (s) {
      fresh = s.put(k, v);
    }
    this.noteOp();
    return fresh;
  }
  method get(k) throws NoSuchElementException {
    var s = this.stripeFor(k);
    var v = null;
    synchronized (s) {
      v = s.get(k);
    }
    return v;
  }
  // Call-free body: the increment cannot be preempted, so the op count
  // is exact under every schedule.
  method noteOp() {
    this.ops = this.ops + 1;
    return null;
  }
  method opCount() { return this.ops; }
  // Seeded violation: an unlocked compound read over all stripes.
  method snapshotTotal() throws IllegalStateException {
    var total = 0;
    for (var i = 0; i < this.nstripes; i = i + 1) {
      var s = this.stripes[i];
      total = total + s.size();
    }
    if (total < 0) { throw new IllegalStateException("corrupt striped map"); }
    return total;
  }
  method loader(id, rounds) throws OutOfMemoryError {
    for (var r = 0; r < rounds; r = r + 1) {
      this.put("k" + id + "x" + r, id * 100 + r);
    }
    return rounds;
  }
}

function main() {
  var map = new StripedMap(4);
  map.put("seed", 1);
  var t1 = spawn map.loader(1, 6);
  var t2 = spawn map.loader(2, 6);
  var audits = 0;
  for (var i = 0; i < 8; i = i + 1) {
    var t = map.snapshotTotal();
    check(t >= 1, "audit sees at least the seed");
    check(t <= 13, "audit never overcounts");
    audits = audits + 1;
  }
  var a = join(t1);
  var b = join(t2);
  check(a == 6, "loader 1 rounds");
  check(b == 6, "loader 2 rounds");
  check(map.snapshotTotal() == 13, "final size");
  check(map.get("k1x3") == 103, "loader 1 value");
  check(map.get("k2x5") == 205, "loader 2 value");
  try {
    map.get("absent");
  } catch (NoSuchElementException e) {
    println("lookup miss: " + e.message);
  }
  println("total=" + map.snapshotTotal() + " ops=" + map.opCount()
          + " audits=" + audits);
  return 0;
}
|}
