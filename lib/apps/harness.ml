(* Convenience harness: run the full detection pipeline on a workload
   application and collect the per-app statistics used by Table 1 and
   Figures 2-4. *)

open Failatom_core

type outcome = {
  app : Registry.t;
  detection : Detect.result;
  classification : Classify.t;
  report : Report.app_result;
}

let flavor_of_suite = function
  | Registry.Cpp -> Detect.Source_weaving (* the paper's C++ path *)
  | Registry.Java -> Detect.Load_time_filters (* the paper's Java path *)
  | Registry.Conc -> Detect.Load_time_filters (* concurrent analogues *)

let detect_app ?(config = Config.default) ?flavor (app : Registry.t) : outcome =
  let flavor =
    match flavor with Some f -> f | None -> flavor_of_suite app.Registry.suite
  in
  let program = Failatom_minilang.Minilang.parse app.Registry.source in
  let detection = Detect.run ~config ~flavor program in
  let classification =
    Classify.classify ~exception_free:config.Config.exception_free detection
  in
  let report =
    Report.of_detection ~app_name:app.Registry.name
      ~language:(Registry.suite_name app.Registry.suite)
      detection classification
  in
  { app; detection; classification; report }

(* Same pipeline, but with the detection runs executed by the parallel
   campaign engine.  The classification is identical to [detect_app]'s;
   the campaign summary carries wall-clock and scheduling statistics. *)
let detect_app_parallel ?(config = Config.default) ?flavor ?jobs ?journal ?resume
    ?report (app : Registry.t) : outcome * Failatom_campaign.Progress.summary =
  let flavor =
    match flavor with Some f -> f | None -> flavor_of_suite app.Registry.suite
  in
  let program = Failatom_minilang.Minilang.parse app.Registry.source in
  let detection, summary =
    Failatom_campaign.Campaign.run ~config ~flavor ?jobs ?journal ?resume ?report
      program
  in
  let classification =
    Classify.classify ~exception_free:config.Config.exception_free detection
  in
  let report =
    Report.of_detection ~app_name:app.Registry.name
      ~language:(Registry.suite_name app.Registry.suite)
      detection classification
  in
  ({ app; detection; classification; report }, summary)

(* Runs an application standalone (no instrumentation); returns its
   output.  Raises if the program is malformed or fails. *)
let run_app (app : Registry.t) =
  Failatom_minilang.Minilang.run_string app.Registry.source
