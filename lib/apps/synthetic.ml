(* Synthetic validation benchmark (paper §6, first paragraph): a small
   application containing every combination of (pure / conditional)
   failure (non-)atomic method the detector must distinguish, with the
   expected classification recorded as ground truth.  The test-suite
   runs the detector on this program — in both implementation flavors —
   and checks the verdicts against [expectations]. *)

open Failatom_core

let name = "Synthetic"

let source =
  {|
class Resource {
  field tag;
  method init(tag) {
    this.tag = tag;
    return this;
  }
}

class Unit {
  field count;
  field slot;
  field log;
  method init() {
    this.count = 0;
    this.slot = null;
    this.log = "";
    return this;
  }

  // -- atomic patterns ---------------------------------------------

  // Read-only.
  method reader() { return this.count; }

  // Validate before mutate, no calls after the first write.
  method validateThenMutate(n) throws IllegalArgumentException {
    if (n < 0) { throw new IllegalArgumentException("negative " + n); }
    this.count = this.count + n;
    return this.count;
  }

  // Allocate (a call that may fail) before any mutation.
  method allocateThenCommit(tag) throws OutOfMemoryError {
    var fresh = new Resource(tag);
    this.slot = fresh;
    this.count = this.count + 1;
    return fresh;
  }

  // -- pure failure non-atomic patterns ------------------------------

  // Mutate before a call that may fail.
  method mutateThenCall(tag) throws OutOfMemoryError {
    this.count = this.count + 1;
    this.slot = new Resource(tag);
    return this.slot;
  }

  // Mutate before validating (real exception path).
  method mutateThenValidate(n) throws IllegalArgumentException {
    this.count = this.count + n;
    if (n < 0) { throw new IllegalArgumentException("negative " + n); }
    return this.count;
  }

  // Multi-step mutation through (atomic) callees: not fixable by
  // masking the callees, hence pure.
  method multiStep(n) throws IllegalArgumentException {
    for (var i = 0; i < n; i = i + 1) {
      this.validateThenMutate(1);
    }
    return this.count;
  }
}

// -- conditional failure non-atomic patterns -------------------------

class Facade {
  field unit;
  method init() {
    this.unit = new Unit();
    return this;
  }
  // Pure delegation to a pure non-atomic callee: conditional.
  method delegate(tag) throws OutOfMemoryError {
    return this.unit.mutateThenCall(tag);
  }
  // Delegation with read-only preamble: still conditional.
  method guardedDelegate(tag) throws OutOfMemoryError, IllegalStateException {
    if (this.unit == null) { throw new IllegalStateException("no unit"); }
    return this.unit.mutateThenCall(tag);
  }
  // Delegation to an atomic callee: atomic.
  method atomicDelegate(n) throws IllegalArgumentException {
    return this.unit.validateThenMutate(n);
  }
}

function main() {
  var unit = new Unit();
  check(unit.reader() == 0, "reader");
  check(unit.validateThenMutate(3) == 3, "validate");
  unit.allocateThenCommit("a");
  unit.mutateThenCall("b");
  check(unit.multiStep(4) == 9, "multi step");
  try {
    unit.validateThenMutate(-1);
  } catch (IllegalArgumentException e) {
    println("checked: " + e.message);
  }
  try {
    unit.mutateThenValidate(-1);
  } catch (IllegalArgumentException e) {
    println("leaked: " + e.message);
  }
  // Under the uncorrected program this prints 8: the failed
  // mutateThenValidate leaked its increment.  Under the masked program
  // it prints 9 — observable proof that the rollback repaired the
  // corruption (and an instance of the paper's §4.3 caveat that
  // masking changes semantics when non-atomicity was relied upon).
  println("count after leak: " + unit.count);
  var facade = new Facade();
  facade.delegate("c");
  facade.guardedDelegate("d");
  check(facade.atomicDelegate(2) == 4, "atomic delegate");
  println("final=" + unit.count);
  return 0;
}
|}

(* Ground truth, keyed by method. *)
let expectations : (Method_id.t * Classify.verdict) list =
  [ (Method_id.make "Resource" "init", Classify.Atomic);
    (Method_id.make "Unit" "init", Classify.Atomic);
    (Method_id.make "Unit" "reader", Classify.Atomic);
    (Method_id.make "Unit" "validateThenMutate", Classify.Atomic);
    (Method_id.make "Unit" "allocateThenCommit", Classify.Atomic);
    (Method_id.make "Unit" "mutateThenCall", Classify.Pure_non_atomic);
    (Method_id.make "Unit" "mutateThenValidate", Classify.Pure_non_atomic);
    (Method_id.make "Unit" "multiStep", Classify.Pure_non_atomic);
    (Method_id.make "Facade" "init", Classify.Atomic);
    (Method_id.make "Facade" "delegate", Classify.Conditional_non_atomic);
    (Method_id.make "Facade" "guardedDelegate", Classify.Conditional_non_atomic);
    (Method_id.make "Facade" "atomicDelegate", Classify.Atomic) ]

