(** Convenience harness: run the full detection pipeline on a workload
    application and collect the per-app statistics behind Table 1 and
    Figures 2–4. *)

open Failatom_core

type outcome = {
  app : Registry.t;
  detection : Detect.result;
  classification : Classify.t;
  report : Report.app_result;
}

val flavor_of_suite : Registry.suite -> Detect.flavor
(** C++ apps run the source-weaving flavor, Java apps the load-time
    filter flavor — matching the paper's two implementations. *)

val detect_app : ?config:Config.t -> ?flavor:Detect.flavor -> Registry.t -> outcome

val detect_app_parallel :
  ?config:Config.t ->
  ?flavor:Detect.flavor ->
  ?jobs:int ->
  ?journal:string ->
  ?resume:bool ->
  ?report:(Failatom_campaign.Progress.event -> unit) ->
  Registry.t ->
  outcome * Failatom_campaign.Progress.summary
(** [detect_app] with the detection runs executed by the parallel
    campaign engine ({!Failatom_campaign.Campaign.run}); the
    classification is identical, the summary adds wall-clock and
    scheduling statistics. *)

val run_app : Registry.t -> string
(** Runs an application standalone (no instrumentation) and returns its
    output.  Raises if the program is malformed or fails. *)
