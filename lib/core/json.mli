(** A minimal JSON tree, printer and parser, shared by every JSON
    artifact the system persists or ships: the daemon wire protocol
    ([failatom.rpc/1]), detection plans ([failatom.plan/1]) and
    resilience scorecards ([failatom.resilience/1]).

    Strings are byte sequences: control bytes are escaped as \u00XX,
    bytes >= 0x80 pass through raw, and every OCaml string round-trips
    byte-identically — the property the result cache's bitwise
    equality guarantee rests on.  \uXXXX escapes above 0xFF are
    rejected (the protocol never produces them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact single-line rendering (never contains a raw newline, so a
    value is always one NDJSON frame). *)

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

(** {1 Accessors} — all total, returning [None] on shape mismatch *)

val member : string -> t -> t option
val to_str : t -> string option
val to_int : t -> int option
val to_bool : t -> bool option
val to_float : t -> float option
val to_list : t -> t list option
val str_member : string -> t -> string option
val int_member : string -> t -> int option
val bool_member : string -> t -> bool option
val float_member : string -> t -> float option
val list_member : string -> t -> t list option
