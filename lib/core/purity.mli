(** Static exception-freedom analysis.

    The paper's §4.3 relies on the user to annotate methods that never
    throw and lists automating that determination as future work; this
    module is that future work.  A conservative syntactic analysis
    (closed over the call graph, with dynamic dispatch approximated by
    method name) computes the methods that provably cannot raise a
    MiniLang exception.  Enabled through
    {!Config.t.infer_exception_free}: such methods then receive no
    injection points, removing exactly the conservative false positives
    §4.3 describes.

    The analysis errs toward MAY-throw: a method is only spared from
    injection when it truly cannot raise, so detection soundness is
    preserved. *)

open Failatom_minilang

val never_throws : Ast.program -> Method_id.Set.t
(** The set of methods that can never raise.  Since the
    exception-flow analysis landed this is a thin wrapper over
    {!Exnflow.never_throws} (on a freshly compiled image): dispatch is
    resolved per defining class rather than by bare name, and covering
    catch clauses subtract what they catch, so the set is a superset
    of {!never_throws_syntactic}. *)

val never_throws_syntactic : Ast.program -> Method_id.Set.t
(** The original syntactic analysis, kept as the precision baseline
    for the comparison test: a method may throw if any same-named
    method anywhere may, and try/catch never launders a throwing
    body. *)

val safe_builtins : string list
(** Builtins that can never raise a MiniLang exception. *)
