(* Static analysis of the target program (paper §4.1, Step 1).

   The Analyzer determines, for every method, the set of exceptions an
   injection wrapper must be able to throw: the exceptions declared in
   the method's [throws] clause plus the generic runtime exceptions that
   any method may raise.  It also inventories classes and methods for
   the statistics of Table 1. *)

open Failatom_minilang

type method_info = {
  id : Method_id.t;
  params : string list;
  declared_throws : string list;
  injectable : string list; (* declared + generic runtime exceptions *)
}

type class_info = {
  cls_name : string;
  super : string option;
  fields : string list;
  methods : method_info list;
}

type t = {
  classes : class_info list;
  by_method : method_info Method_id.Map.t;
  program : Ast.program;
}

let analyze ?flow (config : Config.t) (program : Ast.program) : t =
  (* With inference on, methods that provably cannot raise get no
     injection points at all: testing an impossible exception would only
     produce the conservative false positives of paper §4.3. *)
  let never =
    if config.Config.infer_exception_free then Purity.never_throws program
    else Method_id.Set.empty
  in
  (* Under [--prune drop] an exception-flow analysis is supplied and
     generic runtime exceptions the method provably cannot raise are
     filtered from its injectable set — the per-class refinement of the
     all-or-nothing inference above.  Declared [throws] classes always
     keep their points: the user asserted those faults are possible. *)
  let filter_injectable id declared classes =
    match flow with
    | None -> classes
    | Some flow ->
      List.filter
        (fun e -> List.mem e declared || Exnflow.can_raise flow id e)
        classes
  in
  let analyze_method cls (m : Ast.meth_decl) =
    let id = Method_id.make cls m.Ast.m_name in
    { id;
      params = m.Ast.m_params;
      declared_throws = m.Ast.m_throws;
      injectable =
        (if Method_id.Set.mem id never then []
         else
           filter_injectable id m.Ast.m_throws
             (Config.injectable config ~declared:m.Ast.m_throws)) }
  in
  let classes =
    List.filter_map
      (fun decl ->
        match decl with
        | Ast.Class_decl c ->
          Some
            { cls_name = c.Ast.c_name;
              super = c.Ast.c_super;
              fields = c.Ast.c_fields;
              methods = List.map (analyze_method c.Ast.c_name) c.Ast.c_methods }
        | Ast.Func_decl _ -> None)
      program
  in
  let by_method =
    List.fold_left
      (fun acc c ->
        List.fold_left (fun acc mi -> Method_id.Map.add mi.id mi acc) acc c.methods)
      Method_id.Map.empty classes
  in
  { classes; by_method; program }

let find t id = Method_id.Map.find_opt id t.by_method

let injectable_for t id =
  match find t id with Some mi -> mi.injectable | None -> []

let class_count t = List.length t.classes
let method_count t = Method_id.Map.cardinal t.by_method

let method_ids t = List.map fst (Method_id.Map.bindings t.by_method)

(* The defining class of each user class's superclass chain, for
   class-level statistics. *)
let class_of_method (id : Method_id.t) = id.Method_id.cls
