(** Classification of methods and classes from detection results
    (paper §4.1, §4.3, Definition 3).

    A method is {e failure atomic} iff no injection ever marked it
    non-atomic.  A failure non-atomic method is {e pure} iff in some
    propagation chain it was the first method marked non-atomic (marks
    arrive callee-before-caller, so a first non-atomic mark cannot be
    blamed on a callee); the rest are {e conditional} and become atomic
    for free once their callees are masked. *)

type verdict = Atomic | Conditional_non_atomic | Pure_non_atomic

val verdict_name : verdict -> string

val verdict_wire_name : verdict -> string
(** Stable single-token spelling ("atomic" / "conditional" / "pure")
    used by serialized artifacts such as [failatom.plan/1]. *)

val verdict_of_wire_name : string -> verdict option
(** Inverse of {!verdict_wire_name}. *)

type method_report = {
  id : Method_id.t;
  verdict : verdict;
  calls : int;  (** dynamic calls in the baseline run *)
  non_atomic_marks : int;
  atomic_marks : int;
  sample_diff : string option;
      (** a field path witnessing an inconsistency, when non-atomic *)
}

type counts = { atomic : int; conditional : int; pure : int }

val total : counts -> int

type t = {
  methods : method_report Method_id.Map.t;  (** methods defined and used *)
  class_verdicts : (string * verdict) list;  (** classes defined and used *)
  discarded_runs : int;  (** runs dropped by exception-free filtering *)
}

val classify : ?exception_free:Method_id.t list -> Detect.result -> t
(** Classifies every method defined and used by the program.  Runs whose
    exception was injected at an [exception_free] method are discarded
    first (the paper's §4.3 re-classification). *)

val classify_data :
  ?exception_free:Method_id.t list ->
  runs:Marks.run_record list ->
  calls:int Method_id.Map.t ->
  unit -> t
(** Classification over raw detection data: the run records plus the
    baseline per-method call counts.  Used by {!Run_log} to classify
    offline from persisted wrapper logs, as in the paper's §5.1
    (Step 3: "log files are then processed offline"). *)

val verdict : t -> Method_id.t -> verdict option
val reports : t -> method_report list
val pure_methods : t -> Method_id.t list
val conditional_methods : t -> Method_id.t list
val non_atomic_methods : t -> Method_id.t list

val method_counts : t -> counts
(** Figures 2(a)/3(a): distribution over methods defined and used. *)

val call_counts : t -> counts
(** Figures 2(b)/3(b): distribution weighted by call counts. *)

val class_counts : t -> counts
(** Figure 4: distribution over classes (a class is pure non-atomic if
    it has a pure non-atomic method, atomic if all methods are). *)
