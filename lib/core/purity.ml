(* Static exception-freedom analysis.

   The paper's §4.3 notes that its Analyzer "does not attempt to
   determine whether it is possible for a runtime exception to occur in
   a given method" and relies on the user to annotate exception-free
   methods; removing that limitation is explicitly listed as future
   work.  This module is that future work: a conservative static
   analysis computing the set of methods that can never raise.

   A method MAY throw if its body contains any of:
   - a [throw] statement;
   - an integer division or modulo (ArithmeticException);
   - an array/string index or an index-sensitive builtin
     (IndexOutOfBoundsException and friends);
   - a field access or method call whose receiver is not literally
     [this] (NullPointerException — [this] is never null);
   - an allocation [new C(...)] (OutOfMemoryError in the paper's model,
     plus whatever the constructor does);
   - a call to a possibly-throwing function, builtin or method — method
     calls are resolved by name over every class of the program, the
     sound over-approximation of dynamic dispatch.

   The set of never-throwing methods is the greatest fixpoint: start
   from "every method without a directly-throwing construct" and remove
   methods whose calls may reach a throwing one.

   Soundness note (matching the paper's conservatism guarantee): the
   analysis errs toward MAY-throw, so injection points are only removed
   from methods that truly cannot raise — a method is never wrongly
   spared from injection testing. *)

open Failatom_minilang

(* Builtins that can never raise a MiniLang exception. *)
let safe_builtins =
  [ "print"; "println"; "str"; "hashCode"; "abs"; "min"; "max"; "instanceOf";
    "classOf"; "graphEq"; "deepCopy"; "strcmp" ]

let builtin_is_safe name = List.mem name safe_builtins

type callable =
  | Meth of string (* a method name: dispatch may reach any class's method *)
  | Func of string (* a top-level function *)

(* Syntactic effects of one method/function body. *)
type effects = {
  mutable direct_throw : bool; (* a throwing construct appears directly *)
  mutable calls : callable list;
}

let analyze_body (eff : effects) (body : Ast.block) =
  let is_this (e : Ast.expr) = match e.Ast.e with Ast.This -> true | _ -> false in
  let rec expr (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Int_lit _ | Ast.Str_lit _ | Ast.Bool_lit _ | Ast.Null_lit | Ast.This
    | Ast.Var _ ->
      ()
    | Ast.Unary (_, a) -> expr a
    | Ast.Binary ((Ast.Div | Ast.Mod), a, b) ->
      eff.direct_throw <- true;
      expr a;
      expr b
    | Ast.Binary (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
      expr a;
      expr b
    | Ast.Field (r, _) ->
      if not (is_this r) then eff.direct_throw <- true;
      expr r
    | Ast.Index (r, i) ->
      (* bounds are data-dependent: always a potential throw *)
      eff.direct_throw <- true;
      expr r;
      expr i
    | Ast.Call (r, m, args) ->
      if not (is_this r) then eff.direct_throw <- true;
      eff.calls <- Meth m :: eff.calls;
      expr r;
      List.iter expr args
    | Ast.Super_call (m, args) ->
      eff.calls <- Meth m :: eff.calls;
      List.iter expr args
    | Ast.Fn_call (f, args) ->
      if not (builtin_is_safe f) then
        if Builtins.exists f then eff.direct_throw <- true
        else eff.calls <- Func f :: eff.calls;
      List.iter expr args
    | Ast.New (_, args) ->
      (* allocation may fail; the constructor is a call *)
      eff.direct_throw <- true;
      List.iter expr args
    | Ast.Array_lit elems -> List.iter expr elems
  in
  let lvalue = function
    | Ast.Lvar _ -> ()
    | Ast.Lfield (r, _) ->
      if not (is_this r) then eff.direct_throw <- true;
      expr r
    | Ast.Lindex (r, i) ->
      eff.direct_throw <- true;
      expr r;
      expr i
  in
  let rec stmt (st : Ast.stmt) =
    match st.Ast.s with
    | Ast.Var_decl (_, e) | Ast.Expr_stmt e -> expr e
    | Ast.Assign (l, e) ->
      lvalue l;
      expr e
    | Ast.If (c, t, f) ->
      expr c;
      block t;
      block f
    | Ast.While (c, b) ->
      expr c;
      block b
    | Ast.For (init, cond, update, b) ->
      Option.iter stmt init;
      Option.iter expr cond;
      Option.iter stmt update;
      block b
    | Ast.Return e -> Option.iter expr e
    | Ast.Throw e ->
      eff.direct_throw <- true;
      expr e
    | Ast.Try (b, catches, fin) ->
      (* conservative: a handler does not prove the body's exceptions
         are contained (catch classes may not cover everything), so the
         try block's effects stand *)
      block b;
      List.iter (fun c -> block c.Ast.cc_body) catches;
      Option.iter block fin
    | Ast.Break | Ast.Continue -> ()
    | Ast.Block b -> block b
  and block b = List.iter stmt b in
  block body

(* The set of methods that can never raise a MiniLang exception,
   computed purely syntactically (dispatch approximated by method
   name).  Kept as the precision baseline: {!Exnflow.never_throws}
   must compute a superset of this on every program, which
   test_exnflow.ml checks. *)
let never_throws_syntactic (program : Ast.program) : Method_id.Set.t =
  (* collect effects per method and per function *)
  let method_effects : (Method_id.t * effects) list =
    List.concat_map
      (fun decl ->
        match decl with
        | Ast.Class_decl c ->
          List.map
            (fun (m : Ast.meth_decl) ->
              let eff = { direct_throw = false; calls = [] } in
              analyze_body eff m.Ast.m_body;
              (Method_id.make c.Ast.c_name m.Ast.m_name, eff))
            c.Ast.c_methods
        | Ast.Func_decl _ -> [])
      program
  in
  let func_effects : (string * effects) list =
    List.filter_map
      (fun decl ->
        match decl with
        | Ast.Func_decl f ->
          let eff = { direct_throw = false; calls = [] } in
          analyze_body eff f.Ast.f_body;
          Some (f.Ast.f_name, eff)
        | Ast.Class_decl _ -> None)
      program
  in
  (* may_throw maps: seeded with direct throws, closed over calls *)
  let meth_may : (string, bool ref) Hashtbl.t = Hashtbl.create 32 in
  (* keyed by method NAME: dynamic dispatch may reach any definition.
     Constructors ([init]) are always may-throw: a constructor call
     models an allocation, and allocation can fail with OutOfMemoryError
     regardless of the constructor body — the paper injects into
     constructor calls for exactly this reason. *)
  List.iter
    (fun ((id : Method_id.t), eff) ->
      let may = eff.direct_throw || String.equal id.Method_id.name "init" in
      match Hashtbl.find_opt meth_may id.Method_id.name with
      | Some cell -> cell := !cell || may
      | None -> Hashtbl.replace meth_may id.Method_id.name (ref may))
    method_effects;
  let func_may : (string, bool ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (name, eff) -> Hashtbl.replace func_may name (ref eff.direct_throw))
    func_effects;
  let callable_may = function
    | Meth m -> (
      match Hashtbl.find_opt meth_may m with
      | Some cell -> !cell
      | None -> true (* unknown method name: assume the worst *))
    | Func f -> ( match Hashtbl.find_opt func_may f with Some cell -> !cell | None -> true)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let propagate may_table name calls =
      let cell = Hashtbl.find may_table name in
      if (not !cell) && List.exists callable_may calls then begin
        cell := true;
        changed := true
      end
    in
    List.iter
      (fun ((id : Method_id.t), eff) -> propagate meth_may id.Method_id.name eff.calls)
      method_effects;
    List.iter (fun (name, eff) -> propagate func_may name eff.calls) func_effects
  done;
  List.fold_left
    (fun acc ((id : Method_id.t), _) ->
      if !(Hashtbl.find meth_may id.Method_id.name) then acc else Method_id.Set.add id acc)
    Method_id.Set.empty method_effects

(* The production never-throws set now comes from the exception-flow
   analysis (Exnflow), which refines this module in two ways: dispatch
   is resolved per defining class through the image's dispatch tables
   instead of by bare name, and a try whose catch clauses cover
   everything its body can raise no longer poisons the method.  The
   syntactic version above survives as the documented baseline. *)
let never_throws (program : Ast.program) : Method_id.Set.t =
  let img = Compile.image program in
  Exnflow.never_throws (Exnflow.analyze img program)
