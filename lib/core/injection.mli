(** Exception injection and atomicity checking (paper §4.1, Listing 1).

    One run arms a single threshold [InjectionPoint]; a global counter
    [Point] is incremented once per injectable exception type at every
    wrapped method entry, and the matching exception is thrown when the
    counter reaches the threshold.  On exceptional return, the wrapper
    compares the receiver's object graph against the entry snapshot and
    marks the method atomic or non-atomic for this injection.

    The logic is exposed in the two forms of the paper's two
    implementations: {!filter} (pre/post filters for compiled programs —
    the Java/JWG path) and {!register_hooks} (reflective builtins called
    by wrapper methods spliced in by {!Source_weaver} — the
    C++/AspectC++ path). *)

open Failatom_runtime

type snapshot =
  | Eager_snap of Object_graph.node
      (** canonical form of the entry graph (paper Listing 1) *)
  | Cow_snap of { shadow : Shadow.t; roots : Value.t list }
      (** differential snapshot: a copy-on-write shadow opened at entry;
          the entry-time form is reconstructed only on an exceptional
          return whose dirty set intersects the reachable ids *)
(** The entry state captured by a wrapped call, per
    {!Config.snapshot_mode}.  Both modes yield identical marks. *)

type state = {
  config : Config.t;
  analyzer : Analyzer.t;
  memo : Object_graph.Memo.t;
      (** incremental canonicalization cache for live-heap forms,
          revalidated against {!Heap.write_stamp}; before-state
          reconstructions through a shadow are never memoized *)
  threshold : int;  (** this run's InjectionPoint *)
  tracing : bool;
      (** record every injection-point visit (the pruning pre-pass) *)
  mutable point : int;  (** the global Point counter *)
  mutable injected : (Method_id.t * string) option;
      (** injection site and exception class, once fired *)
  mutable injected_exn_id : int;
      (** heap id of the injected exception object, 0 before injection:
          distinguishes an escaped injected exception from a natural
          one by identity rather than class *)
  mutable trace_entries : (Method_id.t * string list) list;  (** reversed *)
  mutable marks : Marks.mark list;  (** reversed *)
  snap_stacks : (int, (Method_id.t * snapshot) list) Hashtbl.t;
      (** binary flavor: per-MiniLang-thread snapshot stacks (pre/post
          pairs of different threads interleave under preemption) *)
  snapshots : (int, snapshot) Hashtbl.t;
  mutable next_token : int;
}

val make_state : ?trace:bool -> Config.t -> Analyzer.t -> threshold:int -> state
(** [trace] (default [false]) records each visited injection site and
    its injectable classes, in visit order — exact with [threshold:0],
    which never fires. *)

val marks : state -> Marks.mark list
(** Marks recorded so far, in emission (callee-before-caller) order. *)

val trace_entries : state -> (Method_id.t * string list) list
(** Wrapped-entry visits recorded by a tracing run, in visit order.
    The sum of the class-list lengths is the campaign's total point
    count. *)

val filter : state -> Vm.filter
(** The injection wrapper as a pre/post filter (binary flavor). *)

val attach : state -> Vm.t -> unit
(** Attaches {!filter} to every method of the VM. *)

val register_hooks : state -> Vm.t -> unit
(** Registers the reflective hooks ([__inject], [__snapshot], [__mark],
    [__drop]) that source-woven wrapper methods call (source flavor). *)
