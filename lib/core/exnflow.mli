(** Static exception-flow analysis over a compiled image.

    The precision upgrade of {!Purity} (the paper's §4.3 future work,
    in the style of Liang & Might's pushdown exception-flow
    analyses): per-method {e may-raise} sets closed over the call
    graph with dispatch resolved through the image's flattened
    dispatch tables, plus a per-method {e active-handler} summary —
    which catch clauses of the plain program can be live when an
    exception is raised at the method's entry, and whether each is
    {e blind} (unable to observe the caught exception's class).

    These justify the pruning modes of {!Detect}: injection points
    whose may-raise set is empty are dropped ([--prune drop]), and
    injected classes that every possibly-active handler is blind to
    are coalesced into one representative run ([--prune coalesce],
    whose marks are bitwise-identical to the unpruned campaign).

    The analysis must be run on the {e plain} program, before source
    weaving: woven wrapper handlers ([catch (Throwable) { snapshot;
    mark; rethrow }]) never branch on the exception's class and are
    covered axiomatically.

    Model boundary: [StackOverflowError] is outside the lattice (any
    call could overflow); {!can_raise} answers [true] for it
    unconditionally, and {!never_throws} ignores it — exactly the
    convention of {!Purity.never_throws}. *)

open Failatom_minilang

type t

val analyze : Compile.image -> Ast.program -> t
(** Runs both fixpoints.  [analyze img program] requires [img] to be
    the image of [program] (or of a superset that preserves its class
    layout, as the plain image does for the woven program). *)

val universe : t -> string list
(** Every exception class of the image (the top of the may-raise
    lattice), sorted. *)

val methods : t -> Method_id.t list
(** The analyzed methods, in program order. *)

val may_raise : t -> Method_id.t -> string list
(** Exception classes that can escape an invocation of the method
    (sorted).  Unknown methods return the full universe. *)

val can_raise : t -> Method_id.t -> string -> bool
(** [can_raise t m e]: may an exception of class [e] escape [m]?
    Always [true] for ["StackOverflowError"] (unmodelled). *)

val never_throws : t -> Method_id.Set.t
(** Methods whose may-raise set is empty.  A superset of
    {!Purity.never_throws} — the precision comparison is a test. *)

val handler_clause_count : t -> Method_id.t -> int
(** Size of the active-handler summary H(m): how many catch clauses
    of the plain program can be live when [m]'s entry raises.  Zero
    means any injected exception escapes to the driver untouched. *)

val blind_pair : t -> Method_id.t -> string -> string -> bool
(** [blind_pair t m e1 e2]: is the program unable to distinguish an
    injection of [e1] at [m]'s entry from one of [e2]?  Requires
    identical field layouts and, for every clause in H(m), equal
    catchability and a blind handler body.  Reflexive, symmetric and
    transitive on any fixed [m]. *)

val partition : t -> Method_id.t -> string list -> string list list
(** Partitions an injectable-class list into blindness equivalence
    groups, preserving first-occurrence order of groups and input
    order of members.  Concatenating the result yields a permutation
    of the input (with the first member of each group its
    representative). *)
