(** Configuration of the detection and masking pipeline.

    The programmatic equivalent of the paper's "web interface" (§4.3):
    which generic runtime exceptions to inject, which methods the user
    declares exception-free, which methods must not be wrapped, and the
    masking policy. *)

open Failatom_runtime

type wrap_policy =
  | Wrap_pure
      (** wrap only pure failure non-atomic methods: conditional ones
          become atomic through their callees (paper Definition 3) *)
  | Wrap_all_non_atomic  (** wrap every failure non-atomic method *)

val wrap_policy_name : wrap_policy -> string
(** ["pure"] / ["all"] — the spelling used by {!fingerprint} and the
    serialized detection plan. *)

val wrap_policy_of_name : string -> wrap_policy option

type snapshot_mode =
  | Snapshot_eager
      (** canonicalize the receiver's full object graph at every wrapped
          call entry (paper Listing 1; the oracle the equivalence tests
          compare against) *)
  | Snapshot_cow
      (** differential snapshots: open a copy-on-write {!Shadow} at
          entry and reconstruct the entry-time canonical form only on
          the rare exceptional return, after intersecting the dirty set
          with the snapshot's reachable ids — detection cost
          proportional to mutations, not graph size *)

val snapshot_mode_name : snapshot_mode -> string

type prune =
  | Prune_off  (** run every injection point — the paper's campaign *)
  | Prune_drop
      (** drop generic injections whose class the static exception-flow
          analysis ({!Exnflow}) proves the method cannot raise.  Like
          [infer_exception_free], this changes the injection-point
          numbering: a semantic mode, not a pure optimization. *)
  | Prune_coalesce
      (** handler-state coalescing: every injection point is kept, but
          injected classes that every possibly-active handler is blind
          to share one representative run, whose record is expanded to
          the whole group.  Marks and classification are
          bitwise-identical to [Prune_off]. *)

val prune_name : prune -> string
val prune_of_string : string -> prune option

type t = {
  runtime_exceptions : string list;
      (** generic runtime exceptions injectable into any method, in
          addition to each method's declared [throws] clause *)
  snapshot_args : bool;
      (** include reference arguments in snapshots/checkpoints (the
          paper's C++ flavor does; its Java flavor covers [this] only) *)
  snapshot_mode : snapshot_mode;
      (** how the detection wrapper captures the entry state (default
          [Snapshot_eager]; both modes produce identical marks) *)
  checkpoint_strategy : Checkpoint.strategy;
  wrap_policy : wrap_policy;
  exception_free : Method_id.t list;
      (** methods asserted to never throw: injections sited in them are
          discarded during re-classification (paper §4.3) *)
  infer_exception_free : bool;
      (** run the static exception-freedom analysis ({!Purity}) and skip
          injection points in methods that provably cannot raise — the
          automation of the paper's manual annotation, which its §4.3
          lists as future work (default [false], the paper's behavior) *)
  do_not_wrap : Method_id.t list;
      (** methods excluded from masking even if failure non-atomic *)
  max_runs : int;  (** safety bound on the number of injection runs *)
  prune : prune;
      (** static exception-flow pruning of the injection campaign
          (default [Prune_off], the paper's behavior; the CLI defaults
          to [coalesce], which is observationally identical) *)
  schedules : string list;
      (** schedule policy specs ({!Sched.policy_of_string}) crossed with
          the injection-point axis for concurrent programs (default
          [["coop"]]).  Sequential programs always run the ["coop"]
          schedule only, whatever this lists.  Never empty; the first
          entry is the baseline schedule. *)
}

val default : t
(** Generic exceptions [NullPointerException] and [OutOfMemoryError],
    snapshots covering reference arguments, eager snapshots and
    checkpointing, the wrap-pure policy, and no user annotations. *)

val injectable : t -> declared:string list -> string list
(** All exception classes injectable into a method with the given
    [throws] clause; declared exceptions first, as in Listing 1. *)

val fingerprint : t -> string
(** Content address of the configuration: md5 hex over a canonical,
    versioned rendering of every field that influences detection
    results.  Equal fingerprints guarantee identical run records on the
    same program — the keying contract of the server's result cache. *)
