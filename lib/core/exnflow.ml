(* Static exception-flow analysis over a compiled image.

   This is the precision upgrade of [Purity] that the paper's §4.3
   leaves as future work, in the style of the pushdown exception-flow
   analyses of Liang & Might: instead of one bit ("may this method
   throw?") keyed by method name, we compute

   - a per-callable MAY-RAISE set — which exception classes can
     escape an invocation — as a fixpoint over the call graph, with
     dynamic dispatch resolved through the image's flattened dispatch
     tables ({!Compile.dispatch_targets}) rather than by bare name;

   - a per-method ACTIVE-HANDLER summary H(M) — which catch clauses
     of the plain program can be live on the stack when an exception
     is raised at M's entry — as a second fixpoint that pushes the
     clause sets guarding each call site down the call graph;

   - a per-clause BLINDNESS verdict — whether the handler body can
     observe anything about a caught exception beyond its object
     identity and its field contents.

   Together these justify the two pruning modes of [Prune]/[Detect]:
   dropping injection points whose may-raise set is empty (the
   paper's "exception-free" annotation, now inferred precisely), and
   coalescing injected classes that every possibly-active handler is
   blind to, so one representative run stands for the whole class.

   The analysis runs on the PLAIN program (before source weaving):
   the woven wrapper handlers are `catch (Throwable) { snapshot;
   mark; rethrow }`, which are blind by construction — they never
   branch on the exception's class — so they are covered axiomatically
   and never appear in H(M).

   Model boundaries (shared with [Purity], documented in
   doc/exnflow.md): stack exhaustion ([StackOverflowError]) is outside
   the lattice — any call could overflow, so tracking it would make
   every set the universe; {!can_raise} therefore answers [true] for
   it unconditionally.  Allocation failure ([OutOfMemoryError]) is
   charged to [new] expressions, [newArray] and constructor entries,
   matching where the paper injects it. *)

open Failatom_minilang
module S = Set.Make (String)
module IS = Set.Make (Int)

let npe = "NullPointerException"
let ioob = "IndexOutOfBoundsException"
let oom = "OutOfMemoryError"
let uoe = "UnsupportedOperationException"
let arith = "ArithmeticException"
let soe = "StackOverflowError"

type callable = K_meth of Method_id.t | K_func of string

(* What a handler body can learn about the exception bound to its
   catch variable: [Blind reads] — nothing beyond object identity and
   the listed fields; [Opaque] — possibly its class. *)
type blindness = Blind of S.t | Opaque

type clause_info = { cl_class : string; cl_blind : blindness }

type t = {
  img : Compile.image;
  universe : S.t; (* every exception class of the image *)
  layouts : (string, string list) Hashtbl.t; (* class -> field template *)
  may : (callable, S.t) Hashtbl.t;
  handlers : (callable, IS.t) Hashtbl.t; (* H: clauses live at entry *)
  clauses : clause_info array;
  meths : Method_id.t list; (* analyzed methods, program order *)
}

let is_this (e : Ast.expr) = match e.Ast.e with Ast.This -> true | _ -> false

(* MiniLang exceptions a builtin call can raise ([None]: not a known
   builtin).  Kept consistent with {!Purity.safe_builtins}: every safe
   builtin maps to the empty set and every other builtin to a
   non-empty one, so the never-throws set here can only grow relative
   to the syntactic analysis — the subsumption that
   [test_exnflow.ml]'s precision test checks. *)
let builtin_raises = function
  | "len" -> Some [ "IllegalArgumentException"; npe ]
  | "newArray" -> Some [ "NegativeArraySizeException"; oom ]
  | "arraycopy" -> Some [ ioob; npe; "IllegalArgumentException" ]
  | "charAt" | "ord" | "substr" -> Some [ ioob ]
  | "chr" | "parseInt" -> Some [ "IllegalArgumentException" ]
  | "check" -> Some [ "IllegalStateException" ]
  | "print" | "println" | "str" | "hashCode" | "abs" | "min" | "max"
  | "instanceOf" | "classOf" | "graphEq" | "deepCopy" | "strcmp" ->
    Some []
  | _ -> None

(* Does [block] assign or redeclare [name] anywhere (including nested
   catch clauses that rebind it)?  Used to invalidate the catch-var
   environment: MiniLang locals are method-level slots, so any write
   breaks the binding. *)
let binds_name (block : Ast.block) name =
  let hit = ref false in
  let rec stmt (st : Ast.stmt) =
    match st.Ast.s with
    | Ast.Var_decl (x, _) -> if String.equal x name then hit := true
    | Ast.Assign (Ast.Lvar x, _) -> if String.equal x name then hit := true
    | Ast.Assign (_, _) | Ast.Expr_stmt _ | Ast.Return _ | Ast.Throw _
    | Ast.Break | Ast.Continue ->
      ()
    | Ast.If (_, a, b) ->
      walk a;
      walk b
    | Ast.While (_, b) | Ast.Block b -> walk b
    | Ast.For (i, _, u, b) ->
      Option.iter stmt i;
      Option.iter stmt u;
      walk b
    | Ast.Try (b, catches, fin) ->
      walk b;
      List.iter
        (fun (c : Ast.catch_clause) ->
          if String.equal c.Ast.cc_var name then hit := true;
          walk c.Ast.cc_body)
        catches;
      Option.iter walk fin
  and walk b = List.iter stmt b in
  walk block;
  !hit

(* Is [name] read, written or redeclared anywhere in the callable body
   OUTSIDE catch-clause bodies that bind it?  (A sibling handler of
   the same name rebinds the slot on entry, so its uses are governed
   by its own blindness check; any other occurrence observes the slot
   left behind by the handler and makes the clause unanalyzable.) *)
let uses_name_outside (body : Ast.block) name =
  let hit = ref false in
  let rec expr (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Var x -> if String.equal x name then hit := true
    | Ast.Int_lit _ | Ast.Str_lit _ | Ast.Bool_lit _ | Ast.Null_lit | Ast.This
      ->
      ()
    | Ast.Unary (_, a) -> expr a
    | Ast.Binary (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
      expr a;
      expr b
    | Ast.Field (r, _) -> expr r
    | Ast.Index (r, i) ->
      expr r;
      expr i
    | Ast.Call (r, _, args) ->
      expr r;
      List.iter expr args
    | Ast.Super_call (_, args)
    | Ast.Fn_call (_, args)
    | Ast.New (_, args)
    | Ast.Array_lit args ->
      List.iter expr args
  in
  let lvalue = function
    | Ast.Lvar x -> if String.equal x name then hit := true
    | Ast.Lfield (r, _) -> expr r
    | Ast.Lindex (r, i) ->
      expr r;
      expr i
  in
  let rec stmt (st : Ast.stmt) =
    match st.Ast.s with
    | Ast.Var_decl (x, e) ->
      if String.equal x name then hit := true;
      expr e
    | Ast.Assign (l, e) ->
      lvalue l;
      expr e
    | Ast.Expr_stmt e -> expr e
    | Ast.If (c, a, b) ->
      expr c;
      walk a;
      walk b
    | Ast.While (c, b) ->
      expr c;
      walk b
    | Ast.For (i, c, u, b) ->
      Option.iter stmt i;
      Option.iter expr c;
      Option.iter stmt u;
      walk b
    | Ast.Return e -> Option.iter expr e
    | Ast.Throw e -> expr e
    | Ast.Try (b, catches, fin) ->
      walk b;
      List.iter
        (fun (c : Ast.catch_clause) ->
          if not (String.equal c.Ast.cc_var name) then walk c.Ast.cc_body)
        catches;
      Option.iter walk fin
    | Ast.Break | Ast.Continue -> ()
    | Ast.Block b -> walk b
  and walk b = List.iter stmt b in
  walk body;
  !hit

(* Blindness of one catch clause.  The handler may, without observing
   the exception's class:
   - rethrow the bare variable (outside any [try] nested in the
     handler — an inner catch would discriminate);
   - read its fields ([v.message] is the same ["injected"] string for
     every injected class);
   - use it as an operand of an arithmetic/comparison/logical operator
     or as the argument of [print]/[println]/[str] (display of a
     reference is ["#id"], which never mentions the class).
   Anything else — storing it, passing it to other calls or builtins
   ([instanceOf], [classOf], [graphEq] all discriminate), indexing,
   shadowing — is [Opaque]. *)
let clause_blindness (callable_body : Ast.block) (cl : Ast.catch_clause) :
    clause_info =
  let v = cl.Ast.cc_var in
  if uses_name_outside callable_body v then
    { cl_class = cl.Ast.cc_class; cl_blind = Opaque }
  else begin
    let fields = ref S.empty and opaque = ref false in
    let try_depth = ref 0 in
    let rec wexpr (e : Ast.expr) =
      match e.Ast.e with
      | Ast.Var x when String.equal x v -> opaque := true
      | Ast.Int_lit _ | Ast.Str_lit _ | Ast.Bool_lit _ | Ast.Null_lit
      | Ast.This | Ast.Var _ ->
        ()
      | Ast.Field ({ e = Ast.Var x; _ }, f) when String.equal x v ->
        fields := S.add f !fields
      | Ast.Unary (_, a) -> warg a
      | Ast.Binary (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
        warg a;
        warg b
      | Ast.Fn_call (("print" | "println" | "str"), [ a ]) -> warg a
      | Ast.Field (r, _) -> wexpr r
      | Ast.Index (r, i) ->
        wexpr r;
        wexpr i
      | Ast.Call (r, _, args) ->
        wexpr r;
        List.iter wexpr args
      | Ast.Super_call (_, args)
      | Ast.Fn_call (_, args)
      | Ast.New (_, args)
      | Ast.Array_lit args ->
        List.iter wexpr args
    and warg (a : Ast.expr) =
      (* operand position: identity may flow, the class may not *)
      match a.Ast.e with
      | Ast.Var x when String.equal x v -> ()
      | _ -> wexpr a
    in
    let wlvalue = function
      | Ast.Lvar x -> if String.equal x v then opaque := true
      | Ast.Lfield (r, _) -> wexpr r
      | Ast.Lindex (r, i) ->
        wexpr r;
        wexpr i
    in
    let rec wstmt (st : Ast.stmt) =
      match st.Ast.s with
      | Ast.Throw { e = Ast.Var x; _ } when String.equal x v ->
        if !try_depth > 0 then opaque := true
      | Ast.Var_decl (x, e) ->
        if String.equal x v then opaque := true;
        wexpr e
      | Ast.Assign (l, e) ->
        wlvalue l;
        wexpr e
      | Ast.Expr_stmt e | Ast.Throw e -> wexpr e
      | Ast.If (c, a, b) ->
        wexpr c;
        wblock a;
        wblock b
      | Ast.While (c, b) ->
        wexpr c;
        wblock b
      | Ast.For (i, c, u, b) ->
        Option.iter wstmt i;
        Option.iter wexpr c;
        Option.iter wstmt u;
        wblock b
      | Ast.Return e -> Option.iter wexpr e
      | Ast.Try (b, catches, fin) ->
        incr try_depth;
        wblock b;
        decr try_depth;
        List.iter
          (fun (c : Ast.catch_clause) ->
            if String.equal c.Ast.cc_var v then opaque := true
            else wblock c.Ast.cc_body)
          catches;
        Option.iter wblock fin
      | Ast.Break | Ast.Continue -> ()
      | Ast.Block b -> wblock b
    and wblock b = List.iter wstmt b in
    wblock cl.Ast.cc_body;
    { cl_class = cl.Ast.cc_class;
      cl_blind = (if !opaque then Opaque else Blind !fields) }
  end

let analyze (img : Compile.image) (program : Ast.program) : t =
  let summaries = Compile.image_classes img in
  let layouts = Hashtbl.create 32 in
  List.iter
    (fun (cs : Compile.class_summary) ->
      Hashtbl.replace layouts cs.Compile.cs_name cs.Compile.cs_fields)
    summaries;
  let universe =
    List.fold_left
      (fun acc (cs : Compile.class_summary) ->
        if cs.Compile.cs_is_exception then S.add cs.Compile.cs_name acc
        else acc)
      S.empty summaries
  in
  let subtree_tbl = Hashtbl.create 16 in
  let subtree cls =
    match Hashtbl.find_opt subtree_tbl cls with
    | Some s -> s
    | None ->
      let s = S.filter (fun c -> Compile.image_is_subclass img c cls) universe in
      Hashtbl.replace subtree_tbl cls s;
      s
  in
  (* callable bodies, duplicates kept (a redeclared method contributes
     both bodies to its id's set — conservative) *)
  let meth_bodies : (Method_id.t * Ast.block) list =
    List.concat_map
      (function
        | Ast.Class_decl c ->
          List.map
            (fun (m : Ast.meth_decl) ->
              (Method_id.make c.Ast.c_name m.Ast.m_name, m.Ast.m_body))
            c.Ast.c_methods
        | Ast.Func_decl _ -> [])
      program
  in
  let func_bodies : (string * Ast.block) list =
    List.filter_map
      (function
        | Ast.Func_decl f -> Some (f.Ast.f_name, f.Ast.f_body)
        | Ast.Class_decl _ -> None)
      program
  in
  let meths =
    let seen = Hashtbl.create 32 in
    List.filter
      (fun (id : Method_id.t) ->
        if Hashtbl.mem seen id then false
        else begin
          Hashtbl.replace seen id ();
          true
        end)
      (List.map fst meth_bodies)
  in
  let targets_tbl = Hashtbl.create 32 in
  let targets mname =
    match Hashtbl.find_opt targets_tbl mname with
    | Some t -> t
    | None ->
      let t =
        List.map
          (fun cls -> K_meth (Method_id.make cls mname))
          (Compile.dispatch_targets img mname)
      in
      Hashtbl.replace targets_tbl mname t;
      t
  in
  let init_target cls =
    match Compile.resolve_dispatch img cls "init" with
    | Some d -> [ K_meth (Method_id.make d "init") ]
    | None -> [] (* no constructor body: only the allocation itself *)
  in
  (* ---------------- may-raise fixpoint ---------------- *)
  let may : (callable, S.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (id, _) -> Hashtbl.replace may (K_meth id) S.empty) meth_bodies;
  List.iter (fun (f, _) -> Hashtbl.replace may (K_func f) S.empty) func_bodies;
  let lookup k =
    match Hashtbl.find_opt may k with Some s -> s | None -> universe
  in
  let callables_may ks =
    List.fold_left (fun acc k -> S.union acc (lookup k)) S.empty ks
  in
  let call_may mname =
    match targets mname with [] -> universe | ks -> callables_may ks
  in
  let fn_may f =
    if Builtins.exists f then
      match builtin_raises f with
      | Some l -> S.of_list l
      | None -> universe (* builtin outside the table: assume the worst *)
    else lookup (K_func f)
  in
  (* [env] binds catch variables in scope to the classes they can hold,
     for precise rethrows. *)
  let rec expr_r env (e : Ast.expr) : S.t =
    match e.Ast.e with
    | Ast.Int_lit _ | Ast.Str_lit _ | Ast.Bool_lit _ | Ast.Null_lit | Ast.This
    | Ast.Var _ ->
      S.empty
    | Ast.Unary (_, a) -> expr_r env a
    | Ast.Binary (op, a, b) ->
      let s = S.union (expr_r env a) (expr_r env b) in
      (match op with Ast.Div | Ast.Mod -> S.add arith s | _ -> s)
    | Ast.And (a, b) | Ast.Or (a, b) ->
      S.union (expr_r env a) (expr_r env b)
    | Ast.Field (r, _) ->
      let s = expr_r env r in
      if is_this r then s else S.add npe s
    | Ast.Index (r, i) ->
      S.add npe (S.add ioob (S.union (expr_r env r) (expr_r env i)))
    | Ast.Call (r, m, args) ->
      let s =
        List.fold_left
          (fun acc a -> S.union acc (expr_r env a))
          (S.union (expr_r env r) (call_may m))
          args
      in
      if is_this r then s else S.add npe (S.add uoe s)
    | Ast.Super_call (m, args) ->
      List.fold_left (fun acc a -> S.union acc (expr_r env a)) (call_may m) args
    | Ast.Fn_call (f, args) ->
      List.fold_left (fun acc a -> S.union acc (expr_r env a)) (fn_may f) args
    | Ast.New (c, args) ->
      let init =
        match init_target c with [] -> S.empty | ks -> callables_may ks
      in
      List.fold_left
        (fun acc a -> S.union acc (expr_r env a))
        (S.add oom init) args
    | Ast.Array_lit elems ->
      List.fold_left (fun acc a -> S.union acc (expr_r env a)) S.empty elems
  in
  let lvalue_r env = function
    | Ast.Lvar _ -> S.empty
    | Ast.Lfield (r, _) ->
      let s = expr_r env r in
      if is_this r then s else S.add npe s
    | Ast.Lindex (r, i) ->
      S.add npe (S.add ioob (S.union (expr_r env r) (expr_r env i)))
  in
  let rec stmt_r env (st : Ast.stmt) : S.t =
    match st.Ast.s with
    | Ast.Var_decl (_, e) | Ast.Expr_stmt e -> expr_r env e
    | Ast.Assign (l, e) -> S.union (lvalue_r env l) (expr_r env e)
    | Ast.If (c, a, b) ->
      S.union (expr_r env c) (S.union (block_r env a) (block_r env b))
    | Ast.While (c, b) -> S.union (expr_r env c) (block_r env b)
    | Ast.For (init, cond, update, b) ->
      let s = match init with Some st -> stmt_r env st | None -> S.empty in
      let s = match cond with Some e -> S.union s (expr_r env e) | None -> s in
      let s =
        match update with Some st -> S.union s (stmt_r env st) | None -> s
      in
      S.union s (block_r env b)
    | Ast.Return e -> (
      match e with Some e -> expr_r env e | None -> S.empty)
    | Ast.Throw e -> (
      let eval = expr_r env e in
      match e.Ast.e with
      | Ast.New (c, _) -> if S.mem c universe then S.add c eval else eval
      | Ast.Var x -> (
        match List.assoc_opt x env with
        | Some bound -> S.union bound eval
        | None -> S.union universe eval)
      | _ -> S.union universe eval)
    | Ast.Try (b, catches, fin) ->
      let body = block_r env b in
      let escaping =
        List.fold_left
          (fun acc (c : Ast.catch_clause) ->
            S.diff acc (subtree c.Ast.cc_class))
          body catches
      in
      let handler_raises =
        List.fold_left
          (fun acc (c : Ast.catch_clause) ->
            let env' =
              if binds_name c.Ast.cc_body c.Ast.cc_var then env
              else
                (c.Ast.cc_var, S.inter body (subtree c.Ast.cc_class)) :: env
            in
            S.union acc (block_r env' c.Ast.cc_body))
          S.empty catches
      in
      let fin_raises =
        match fin with Some b -> block_r env b | None -> S.empty
      in
      S.union escaping (S.union handler_raises fin_raises)
    | Ast.Break | Ast.Continue -> S.empty
    | Ast.Block b -> block_r env b
  and block_r env b =
    List.fold_left (fun acc st -> S.union acc (stmt_r env st)) S.empty b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let update k raises =
      let cur = Hashtbl.find may k in
      if not (S.subset raises cur) then begin
        Hashtbl.replace may k (S.union cur raises);
        changed := true
      end
    in
    List.iter
      (fun ((id : Method_id.t), body) ->
        let r = block_r [] body in
        (* a constructor entry is an allocation site in the paper's
           fault model even when its body cannot raise *)
        let r =
          if String.equal id.Method_id.name "init" then S.add oom r else r
        in
        update (K_meth id) r)
      meth_bodies;
    List.iter (fun (f, body) -> update (K_func f) (block_r [] body)) func_bodies
  done;
  (* ---------------- clause collection + H fixpoint ---------------- *)
  let clause_infos = ref [] in
  let n_clauses = ref 0 in
  let edges = ref [] in
  let collect_callable key body =
    let local = ref [] in
    let add_edge stack callees =
      if callees <> [] then edges := (key, stack, callees) :: !edges
    in
    let rec expr_c stack (e : Ast.expr) =
      match e.Ast.e with
      | Ast.Int_lit _ | Ast.Str_lit _ | Ast.Bool_lit _ | Ast.Null_lit
      | Ast.This | Ast.Var _ ->
        ()
      | Ast.Unary (_, a) -> expr_c stack a
      | Ast.Binary (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
        expr_c stack a;
        expr_c stack b
      | Ast.Field (r, _) -> expr_c stack r
      | Ast.Index (r, i) ->
        expr_c stack r;
        expr_c stack i
      | Ast.Call (r, m, args) ->
        add_edge stack (targets m);
        expr_c stack r;
        List.iter (expr_c stack) args
      | Ast.Super_call (m, args) ->
        add_edge stack (targets m);
        List.iter (expr_c stack) args
      | Ast.Fn_call (f, args) ->
        if not (Builtins.exists f) then add_edge stack [ K_func f ];
        List.iter (expr_c stack) args
      | Ast.New (c, args) ->
        add_edge stack (init_target c);
        List.iter (expr_c stack) args
      | Ast.Array_lit elems -> List.iter (expr_c stack) elems
    in
    let lvalue_c stack = function
      | Ast.Lvar _ -> ()
      | Ast.Lfield (r, _) -> expr_c stack r
      | Ast.Lindex (r, i) ->
        expr_c stack r;
        expr_c stack i
    in
    let rec stmt_c stack (st : Ast.stmt) =
      match st.Ast.s with
      | Ast.Var_decl (_, e) | Ast.Expr_stmt e | Ast.Throw e -> expr_c stack e
      | Ast.Assign (l, e) ->
        lvalue_c stack l;
        expr_c stack e
      | Ast.If (c, a, b) ->
        expr_c stack c;
        block_c stack a;
        block_c stack b
      | Ast.While (c, b) ->
        expr_c stack c;
        block_c stack b
      | Ast.For (i, c, u, b) ->
        Option.iter (stmt_c stack) i;
        Option.iter (expr_c stack) c;
        Option.iter (stmt_c stack) u;
        block_c stack b
      | Ast.Return e -> Option.iter (expr_c stack) e
      | Ast.Try (b, catches, fin) ->
        let inner =
          List.fold_left
            (fun acc (cl : Ast.catch_clause) ->
              let cid = !n_clauses in
              incr n_clauses;
              local := (cid, cl) :: !local;
              IS.add cid acc)
            stack catches
        in
        block_c inner b;
        (* handler and finally bodies are not protected by this try *)
        List.iter
          (fun (cl : Ast.catch_clause) -> block_c stack cl.Ast.cc_body)
          catches;
        Option.iter (block_c stack) fin
      | Ast.Break | Ast.Continue -> ()
      | Ast.Block b -> block_c stack b
    and block_c stack b = List.iter (stmt_c stack) b in
    block_c IS.empty body;
    List.iter
      (fun (cid, cl) -> clause_infos := (cid, clause_blindness body cl) :: !clause_infos)
      !local
  in
  List.iter (fun (id, body) -> collect_callable (K_meth id) body) meth_bodies;
  List.iter (fun (f, body) -> collect_callable (K_func f) body) func_bodies;
  let clauses = Array.make !n_clauses { cl_class = ""; cl_blind = Opaque } in
  List.iter (fun (cid, info) -> clauses.(cid) <- info) !clause_infos;
  let handlers : (callable, IS.t) Hashtbl.t = Hashtbl.create 64 in
  let h_lookup k =
    match Hashtbl.find_opt handlers k with Some s -> s | None -> IS.empty
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (caller, stack, callees) ->
        let inflow = IS.union stack (h_lookup caller) in
        List.iter
          (fun callee ->
            let cur = h_lookup callee in
            if not (IS.subset inflow cur) then begin
              Hashtbl.replace handlers callee (IS.union cur inflow);
              changed := true
            end)
          callees)
      !edges
  done;
  { img; universe; layouts; may; handlers; clauses; meths }

(* ---------------- queries ---------------- *)

let universe t = S.elements t.universe
let methods t = t.meths

let may_raise_set t id =
  match Hashtbl.find_opt t.may (K_meth id) with
  | Some s -> s
  | None -> t.universe (* unknown method: assume the worst *)

let may_raise t id = S.elements (may_raise_set t id)

let can_raise t id cls =
  String.equal cls soe (* stack exhaustion is outside the lattice *)
  || S.mem cls (may_raise_set t id)

let never_throws t =
  List.fold_left
    (fun acc id ->
      if S.is_empty (may_raise_set t id) then Method_id.Set.add id acc else acc)
    Method_id.Set.empty t.meths

let handler_clause_count t id =
  match Hashtbl.find_opt t.handlers (K_meth id) with
  | Some s -> IS.cardinal s
  | None -> 0

let blind_pair t id e1 e2 =
  String.equal e1 e2
  || match (Hashtbl.find_opt t.layouts e1, Hashtbl.find_opt t.layouts e2) with
     | Some l1, Some l2 ->
       (* equal layouts: allocation and snapshot traffic is identical
          in the paired runs, and field reads behave the same *)
       List.equal String.equal l1 l2
       &&
       let fieldset = S.of_list l1 in
       let hs =
         match Hashtbl.find_opt t.handlers (K_meth id) with
         | Some s -> s
         | None -> IS.empty
       in
       IS.for_all
         (fun cid ->
           let cl = t.clauses.(cid) in
           let c1 = Compile.image_is_subclass t.img e1 cl.cl_class
           and c2 = Compile.image_is_subclass t.img e2 cl.cl_class in
           Bool.equal c1 c2
           && ((not c1)
              ||
              match cl.cl_blind with
              | Opaque -> false
              | Blind reads -> S.subset reads fieldset))
         hs
     | _ -> false

let partition t id classes =
  let groups = ref [] in
  List.iter
    (fun e ->
      match List.find_opt (fun (rep, _) -> blind_pair t id rep e) !groups with
      | Some (_, members) -> members := e :: !members
      | None -> groups := !groups @ [ (e, ref [ e ]) ])
    classes;
  List.map (fun (_, members) -> List.rev !members) !groups
