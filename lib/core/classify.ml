(* Classification of methods and classes from detection results
   (paper §4.1 end, §4.3 and Definition 3).

   A method is *failure atomic* iff no injection ever marked it
   non-atomic.  A failure non-atomic method is *pure* iff in some run it
   was the first method marked non-atomic during exception propagation
   (marks arrive callee-before-caller, so a first non-atomic mark cannot
   be blamed on a callee); all other failure non-atomic methods are
   *conditional* — they become atomic for free once their callees are
   masked.

   [exception_free] re-classification (§4.3, third case): runs whose
   exception was injected at a method the user declared exception-free
   are discarded before classification. *)

type verdict = Atomic | Conditional_non_atomic | Pure_non_atomic

let verdict_name = function
  | Atomic -> "atomic"
  | Conditional_non_atomic -> "conditional non-atomic"
  | Pure_non_atomic -> "pure non-atomic"

(* Stable single-token spellings for serialized artifacts (detection
   plans, scorecards); [verdict_name] stays the human-facing form. *)
let verdict_wire_name = function
  | Atomic -> "atomic"
  | Conditional_non_atomic -> "conditional"
  | Pure_non_atomic -> "pure"

let verdict_of_wire_name = function
  | "atomic" -> Some Atomic
  | "conditional" -> Some Conditional_non_atomic
  | "pure" -> Some Pure_non_atomic
  | _ -> None

type method_report = {
  id : Method_id.t;
  verdict : verdict;
  calls : int; (* dynamic calls in the baseline run *)
  non_atomic_marks : int; (* how many injections marked it non-atomic *)
  atomic_marks : int;
  sample_diff : string option; (* a field path witnessing an inconsistency *)
}

type counts = { atomic : int; conditional : int; pure : int }

let total c = c.atomic + c.conditional + c.pure

type t = {
  methods : method_report Method_id.Map.t; (* methods defined and used *)
  class_verdicts : (string * verdict) list; (* classes defined and used *)
  discarded_runs : int; (* runs dropped by exception-free filtering *)
}

(* Core classification over raw detection data: the run records and the
   baseline per-method call counts.  [classify] extracts these from a
   {!Detect.result}; {!Run_log} feeds them back in from a log file
   (the paper's offline classification of wrapper log files). *)
let classify_data ?(exception_free = []) ~(runs : Marks.run_record list)
    ~(calls : int Method_id.Map.t) () : t =
  let excluded = Method_id.Set.of_list exception_free in
  let considered, discarded =
    List.partition
      (fun (r : Marks.run_record) ->
        match r.Marks.injected with
        | Some (site, _) -> not (Method_id.Set.mem site excluded)
        | None -> true)
      runs
  in
  (* Aggregate marks per method, and detect first-non-atomic runs. *)
  let non_atomic : (Method_id.t, int) Hashtbl.t = Hashtbl.create 64 in
  let atomic : (Method_id.t, int) Hashtbl.t = Hashtbl.create 64 in
  let first_non_atomic : (Method_id.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let diffs : (Method_id.t, string) Hashtbl.t = Hashtbl.create 64 in
  let bump table id = Hashtbl.replace table id (1 + Option.value ~default:0 (Hashtbl.find_opt table id)) in
  List.iter
    (fun (r : Marks.run_record) ->
      (* "First method marked non-atomic" is evaluated per exception
         propagation chain: marks sharing an exception identity form one
         callee-to-caller chain, and one run may contain several chains
         (real exception paths in the workload plus the injection). *)
      let chains_seen : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (m : Marks.mark) ->
          if m.Marks.atomic then bump atomic m.Marks.meth
          else begin
            bump non_atomic m.Marks.meth;
            (match m.Marks.diff_path with
             | Some p -> Hashtbl.replace diffs m.Marks.meth p
             | None -> ());
            if not (Hashtbl.mem chains_seen m.Marks.exn_id) then begin
              Hashtbl.replace chains_seen m.Marks.exn_id ();
              Hashtbl.replace first_non_atomic m.Marks.meth ()
            end
          end)
        r.Marks.marks)
    considered;
  (* Per-method verdicts over methods defined and used. *)
  let methods =
    Method_id.Map.mapi
      (fun id call_count ->
        let na = Option.value ~default:0 (Hashtbl.find_opt non_atomic id) in
        let a = Option.value ~default:0 (Hashtbl.find_opt atomic id) in
        let verdict =
          if na = 0 then Atomic
          else if Hashtbl.mem first_non_atomic id then Pure_non_atomic
          else Conditional_non_atomic
        in
        { id;
          verdict;
          calls = call_count;
          non_atomic_marks = na;
          atomic_marks = a;
          sample_diff = Hashtbl.find_opt diffs id })
      calls
  in
  (* Class-level rollup (paper Figure 4): a class is atomic if all its
     used methods are atomic, pure non-atomic if it contains at least
     one pure non-atomic method, conditional otherwise. *)
  let class_table : (string, verdict) Hashtbl.t = Hashtbl.create 16 in
  Method_id.Map.iter
    (fun id report ->
      let cls = Analyzer.class_of_method id in
      let worst prev v =
        match prev, v with
        | Pure_non_atomic, _ | _, Pure_non_atomic -> Pure_non_atomic
        | Conditional_non_atomic, _ | _, Conditional_non_atomic -> Conditional_non_atomic
        | Atomic, Atomic -> Atomic
      in
      match Hashtbl.find_opt class_table cls with
      | None -> Hashtbl.replace class_table cls report.verdict
      | Some prev -> Hashtbl.replace class_table cls (worst prev report.verdict))
    methods;
  let class_verdicts =
    List.sort compare (Hashtbl.fold (fun c v acc -> (c, v) :: acc) class_table [])
  in
  { methods; class_verdicts; discarded_runs = List.length discarded }

let classify ?exception_free (result : Detect.result) : t =
  classify_data ?exception_free ~runs:result.Detect.runs
    ~calls:result.Detect.profile.Profile.calls ()

let verdict t id = Option.map (fun r -> r.verdict) (Method_id.Map.find_opt id t.methods)

let reports t = List.map snd (Method_id.Map.bindings t.methods)

let methods_with t v =
  List.filter_map (fun r -> if r.verdict = v then Some r.id else None) (reports t)

let pure_methods t = methods_with t Pure_non_atomic
let conditional_methods t = methods_with t Conditional_non_atomic

let non_atomic_methods t =
  List.filter_map
    (fun r -> if r.verdict = Atomic then None else Some r.id)
    (reports t)

let count_by f items =
  List.fold_left
    (fun acc item ->
      match f item with
      | Atomic -> { acc with atomic = acc.atomic + 1 }
      | Conditional_non_atomic -> { acc with conditional = acc.conditional + 1 }
      | Pure_non_atomic -> { acc with pure = acc.pure + 1 })
    { atomic = 0; conditional = 0; pure = 0 }
    items

(* Figure 2(a)/3(a): distribution over methods defined and used. *)
let method_counts t = count_by (fun r -> r.verdict) (reports t)

(* Figure 2(b)/3(b): distribution weighted by the number of calls. *)
let call_counts t =
  List.fold_left
    (fun acc r ->
      match r.verdict with
      | Atomic -> { acc with atomic = acc.atomic + r.calls }
      | Conditional_non_atomic -> { acc with conditional = acc.conditional + r.calls }
      | Pure_non_atomic -> { acc with pure = acc.pure + r.calls })
    { atomic = 0; conditional = 0; pure = 0 }
    (reports t)

(* Figure 4: distribution over classes defined and used. *)
let class_counts t = count_by snd t.class_verdicts
