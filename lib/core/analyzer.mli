(** Static analysis of the target program (paper §4.1, Step 1).

    Determines, for every method, the set of exceptions its injection
    wrapper may throw — the declared [throws] clause plus the configured
    generic runtime exceptions — and inventories classes and methods for
    the Table 1 statistics. *)

open Failatom_minilang

type method_info = {
  id : Method_id.t;
  params : string list;
  declared_throws : string list;
  injectable : string list;  (** declared + generic runtime exceptions *)
}

type class_info = {
  cls_name : string;
  super : string option;
  fields : string list;
  methods : method_info list;
}

type t = {
  classes : class_info list;
  by_method : method_info Method_id.Map.t;
  program : Ast.program;
}

val analyze : ?flow:Exnflow.t -> Config.t -> Ast.program -> t
(** [flow] (passed by {!Detect} under [--prune drop]) filters generic
    runtime exceptions a method provably cannot raise out of its
    injectable set; declared [throws] classes always keep their
    points.  Without it the injectable sets are exactly the paper's. *)

val find : t -> Method_id.t -> method_info option

val injectable_for : t -> Method_id.t -> string list
(** Injectable exception classes of a method; [[]] if unknown. *)

val class_count : t -> int
val method_count : t -> int
val method_ids : t -> Method_id.t list

val class_of_method : Method_id.t -> string
(** Defining class, for class-level statistics. *)
