(* Call tracing over the filter substrate.

   A diagnostic companion to the injector: the same pre/post filter
   mechanism used for injection and masking, here recording the dynamic
   call tree of a run — every method entry with its receiver class and
   rendered arguments, and every exit with its result or exception.
   Useful for understanding why a particular injection produced a
   particular mark, and a worked example of writing new tools on the
   interposition layer. *)

open Failatom_runtime

type outcome =
  | Returned of string (* rendered result *)
  | Raised of string (* exception class *)

type event = {
  depth : int;
  meth : Method_id.t;
  receiver : string; (* rendered receiver (class@graph-size) *)
  arguments : string list;
  outcome : outcome;
}

type t = {
  mutable events_rev : event list;
  mutable depth : int;
  mutable pending : (int * Method_id.t * string * string list) list; (* stack *)
  max_events : int;
}

let create ?(max_events = 100_000) () =
  { events_rev = []; depth = 0; pending = []; max_events }

let events t = List.rev t.events_rev

(* Values are rendered shallowly: references as Class#size, so a trace
   line stays one line. *)
let render vm (v : Value.t) =
  match v with
  | Value.Ref id -> (
    match Heap.class_of vm.Vm.heap id with
    | Some cls -> Printf.sprintf "%s#%d" cls (Object_graph.size vm.Vm.heap v)
    | None -> Printf.sprintf "array[%d]" (Option.value ~default:0 (Heap.array_length vm.Vm.heap id)))
  | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null -> Value.to_string v

let filter t =
  { Vm.filt_name = "trace";
    pre =
      (fun vm meth recv args ->
        let id = Method_id.make meth.Vm.meth_class meth.Vm.meth_name in
        t.pending <- (t.depth, id, render vm recv, List.map (render vm) args) :: t.pending;
        t.depth <- t.depth + 1;
        Vm.Proceed);
    post =
      (fun vm _meth _recv _args result ->
        (match t.pending with
         | [] -> () (* desynchronized by a fatal abort *)
         | (depth, id, receiver, arguments) :: rest ->
           t.pending <- rest;
           t.depth <- depth;
           if List.length t.events_rev < t.max_events then
             t.events_rev <-
               { depth;
                 meth = id;
                 receiver;
                 arguments;
                 outcome =
                   (match result with
                    | Ok v -> Returned (render vm v)
                    | Error e -> Raised e.Vm.exn_class) }
               :: t.events_rev);
        Vm.Pass);
    unwind =
      (fun _vm _meth ->
        (* keep the depth bookkeeping honest across an abort *)
        match t.pending with
        | [] -> ()
        | (depth, _, _, _) :: rest ->
          t.pending <- rest;
          t.depth <- depth) }

let attach t vm = Vm.attach_filter_everywhere vm (filter t)

let pp_event ppf (e : event) =
  let indent = String.make (2 * e.depth) ' ' in
  Fmt.pf ppf "%s%a(%s) on %s %s" indent Method_id.pp e.meth
    (String.concat ", " e.arguments)
    e.receiver
    (match e.outcome with
     | Returned v -> "-> " ^ v
     | Raised exn_class -> "!! " ^ exn_class)

let pp ppf t = List.iter (fun e -> Fmt.pf ppf "%a@." pp_event e) (events t)

(* Traces one full run of [program]; returns the trace and the output. *)
let run_traced (program : Failatom_minilang.Ast.program) =
  let vm = Failatom_minilang.Compile.program program in
  let t = create () in
  attach t vm;
  let escaped =
    try
      ignore (Failatom_minilang.Compile.run_main vm);
      None
    with Vm.Mini_raise e -> Some e.Vm.exn_class
  in
  (t, Vm.output vm, escaped)
