(** The detection phase driver (paper §4.1, Step 3 of Figure 1).

    Executes the exception injector program with the threshold armed at
    1, 2, 3, … — a fresh VM and heap per run — until a run completes
    with no injection.  That final probe run doubles as a transparency
    check (the instrumented program must reproduce the baseline output)
    and contributes the marks of the workload's {e real} exception
    paths. *)

open Failatom_runtime
open Failatom_minilang

type flavor =
  | Source_weaving  (** the paper's C++ / AspectC++ implementation *)
  | Load_time_filters  (** the paper's Java / JWG implementation *)

val flavor_name : flavor -> string

type result = {
  flavor : flavor;
  config : Config.t;
  analyzer : Analyzer.t;
  profile : Profile.t;
  runs : Marks.run_record list;
      (** one record per injection run, plus the final no-injection
          probe run ([injected = None]) *)
  injections : int;  (** number of runs in which an exception fired *)
  transparent : bool;  (** probe run matched the baseline output *)
}

exception Detection_error of string
(** A non-MiniLang failure inside a run: a genuine bug in the workload
    or in the instrumentation. *)

type compiled
(** The one-time work for a program×flavor pair: the compiled
    {!Compile.image}, woven for {!Source_weaving} (weaving happens once
    here, not once per threshold).  Immutable — every injection run
    instantiates its own VM from it, concurrently from several domains
    in a campaign. *)

val compile : ?plain:Compile.image -> flavor -> Ast.program -> compiled
(** Compiles [program] for detection under the given flavor.  [plain]
    is an already-built image of the {e unmodified} program (e.g. the
    one the profile ran on); {!Load_time_filters} reuses it instead of
    recompiling, {!Source_weaving} ignores it (it compiles the woven
    program). *)

val compiled_flavor : compiled -> flavor

val run_once :
  ?run_timeout_s:float -> ?schedule:string * Sched.policy -> compiled ->
  Config.t -> Analyzer.t ->
  prepare:(Vm.t -> unit) -> threshold:int -> Marks.run_record
(** One detection run with the given threshold armed, on a fresh VM and
    heap instantiated from the compiled image.  Runs are independent of
    each other by construction, which is what lets
    {!Failatom_campaign.Campaign} execute them in parallel.
    [schedule] (default [("coop", Sched.Coop)]) is the (spec, policy)
    pair the run executes under; non-coop records carry
    {!Marks.sched_info}.  With [run_timeout_s] the run is aborted once
    it exceeds that wall-clock budget and its record carries
    [Marks.timed_out = true] (marks observed so far are kept).
    @raise Detection_error on a non-MiniLang failure inside the run. *)

type run_extras = {
  injected_escaped : bool;
      (** the exception that escaped [main] was the injected object
          itself, by heap identity (always [false] when nothing escaped
          or nothing was injected) *)
  entries : (Method_id.t * string list) list;
      (** trace of wrapped-entry visits, empty unless [trace] was set *)
}
(** Side observations of a run that {!Marks.run_record} does not carry;
    consumed by the coalescing pruner. *)

val baseline_under :
  Compile.image -> prepare:(Vm.t -> unit) -> Sched.policy -> string
(** Output of the {e uninjected} program run under [policy] on a fresh
    VM — the per-schedule transparency baseline.  For {!Sched.Coop} this
    equals the profile run's output; preemptive policies need their own
    baseline because a schedule may legitimately reorder output. *)

val run_once_ext :
  ?run_timeout_s:float -> ?trace:bool -> ?schedule:string * Sched.policy ->
  compiled -> Config.t -> Analyzer.t ->
  prepare:(Vm.t -> unit) -> threshold:int -> Marks.run_record * run_extras
(** {!run_once} plus its {!run_extras}.  [trace] (default [false])
    records every injection-point visit; with [threshold:0] — which
    never fires — the trace is the campaign's exact point census. *)

val run :
  ?config:Config.t -> ?flavor:flavor -> ?prepare:(Vm.t -> unit) ->
  ?plain:Compile.image -> ?compiled:compiled -> ?run_timeout_s:float ->
  Ast.program -> result
(** Runs the complete detection phase.  [prepare] registers extra hooks
    on every VM created (e.g. {!Mask.register_hooks} when re-validating
    an already-masked program).  [plain] and [compiled] reuse
    already-built images of this very [program] (skipping compilation —
    the server's image cache); [run_timeout_s] bounds each run's
    wall-clock time, and a timed-out run never ends the detection loop
    even when no injection fired.

    [config.prune] selects the campaign-pruning mode.  [Prune_drop]
    filters provably-impossible generic exceptions out of the
    injectable sets (changing point numbering); [Prune_coalesce] runs
    one representative per handler-blindness group and synthesizes the
    other members' records, producing a [runs] list bitwise-identical
    to [Prune_off]'s (see doc/exnflow.md).

    For concurrent programs ({!Minilang.uses_concurrency}) every spec in
    [config.schedules] is crossed with the injection-point axis: one
    full campaign per schedule, each probe checked against that
    schedule's own uninjected baseline, records of non-coop schedules
    tagged with {!Marks.sched_info} — and pruning is forced off
    (exception-flow pruning reasons about sequential control flow).
    Sequential programs always run the single coop schedule, leaving
    their results byte-identical to the pre-scheduler pipeline. *)
