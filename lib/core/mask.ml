(* The masking phase (paper §4.2, Listing 2; Steps 4-5 of Figure 1).

   Failure non-atomic methods are wrapped in atomicity wrappers that
   checkpoint the receiver's object graph on entry and roll it back
   before re-raising if the call ends exceptionally.  Per §4.3
   (Definition 3) the default policy wraps only *pure* failure
   non-atomic methods: once these are masked, conditional ones are
   atomic by construction.

   Like detection, masking exists in both implementation flavors:
   a load-time filter for compiled programs, and a source-to-source
   transformation producing the corrected program P_C. *)

open Failatom_runtime
open Failatom_minilang

(* The methods to wrap: chosen by policy, minus the user's do-not-wrap
   list (the paper's web-interface exclusions).  Mangled methods — the
   wrappers and renamed originals of an earlier masking pass — are never
   wrapped again: re-masking an already-corrected program must be a
   no-op, not wrap the masking machinery itself. *)
let targets (config : Config.t) (classification : Classify.t) : Method_id.Set.t =
  let base =
    match config.Config.wrap_policy with
    | Config.Wrap_pure -> Classify.pure_methods classification
    | Config.Wrap_all_non_atomic -> Classify.non_atomic_methods classification
  in
  let base =
    List.filter
      (fun (id : Method_id.t) -> Source_weaver.demangle id.Method_id.name = None)
      base
  in
  Method_id.Set.diff
    (Method_id.Set.of_list base)
    (Method_id.Set.of_list config.Config.do_not_wrap)

(* ------------------------------------------------------------------ *)
(* Shared checkpoint/rollback logic                                    *)
(* ------------------------------------------------------------------ *)

let checkpoint_roots (config : Config.t) recv args =
  if config.Config.snapshot_args then recv :: List.filter Value.is_ref args
  else [ recv ]

let take_checkpoint config vm recv args =
  Checkpoint.take ~strategy:config.Config.checkpoint_strategy vm.Vm.heap
    (checkpoint_roots config recv args)

(* ------------------------------------------------------------------ *)
(* Binary flavor: atomicity filter                                     *)
(* ------------------------------------------------------------------ *)

let masking_filter config =
  (* Nested wrapped calls push and pop in LIFO order, mirroring each
     thread's call stack.  The stacks are per-thread: under a preemptive
     schedule two threads' wrapped calls interleave arbitrarily, and a
     shared stack would let one thread's [post] pop — and roll back —
     another thread's checkpoint. *)
  let stacks : (int, Checkpoint.t list) Hashtbl.t = Hashtbl.create 4 in
  let stack_of vm =
    Option.value ~default:[] (Hashtbl.find_opt stacks vm.Vm.cur_tid)
  in
  let pop vm ~rollback =
    match stack_of vm with
    | [] -> None
    | cp :: rest ->
      Hashtbl.replace stacks vm.Vm.cur_tid rest;
      if rollback then Checkpoint.rollback cp;
      Checkpoint.dispose cp;
      Some ()
  in
  { Vm.filt_name = "masking";
    pre =
      (fun vm _meth recv args ->
        Hashtbl.replace stacks vm.Vm.cur_tid
          (take_checkpoint config vm recv args :: stack_of vm);
        Vm.Proceed);
    post =
      (fun vm _meth _recv _args result ->
        let rollback = Result.is_error result in
        ignore (pop vm ~rollback : unit option);
        Vm.Pass);
    unwind =
      (fun vm _meth ->
        (* An OCaml-level abort (deadline, scheduler unwind) ends the
           call exceptionally without running [post]: roll the entry
           back and dispose it, exactly as an exceptional return would —
           leaving it would leak the checkpoint (and keep a lazy
           shadow attached to the write barrier forever). *)
        ignore (pop vm ~rollback:true : unit option)) }

(* Attaches atomicity wrappers to the target methods of a compiled
   program (load-time masking, no source access). *)
let attach_masking config ~targets vm =
  let filter = masking_filter config in
  Vm.iter_methods vm (fun _cls meth ->
      let id = Method_id.make meth.Vm.meth_class meth.Vm.meth_name in
      if Method_id.Set.mem id targets then Vm.attach_filter meth filter)

(* ------------------------------------------------------------------ *)
(* Source flavor: corrected program P_C                                *)
(* ------------------------------------------------------------------ *)

(* Rewrites the program so every target method is replaced by its
   atomicity wrapper (Listing 2).  The result is ordinary MiniLang; it
   needs {!register_hooks} on its VM before running. *)
let corrected_program ~targets program = Source_weaver.weave_masking ~targets program

(* Runtime support for the woven atomicity wrappers. *)
let register_hooks (config : Config.t) vm =
  let table : (int, Checkpoint.t) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0 in
  let hook_error name = invalid_arg (Printf.sprintf "hook %s: invalid arguments" name) in
  let find_cp name = function
    | [ Value.Int token ] -> (
      match Hashtbl.find_opt table token with
      | Some cp ->
        Hashtbl.remove table token;
        cp
      | None -> hook_error name)
    | _ -> hook_error name
  in
  Vm.register_hook vm "__checkpoint" (fun vm args ->
      match args with
      | [ recv; Value.Ref arr_id ] ->
        let extra =
          match Heap.get vm.Vm.heap arr_id with
          | Heap.Arr a -> Array.to_list a
          | Heap.Obj _ -> hook_error "__checkpoint"
        in
        let cp = take_checkpoint config vm recv extra in
        let token = !next in
        incr next;
        Hashtbl.replace table token cp;
        Value.Int token
      | _ -> hook_error "__checkpoint");
  Vm.register_hook vm "__restore" (fun _vm args ->
      let cp = find_cp "__restore" args in
      Checkpoint.rollback cp;
      Checkpoint.dispose cp;
      Value.Null);
  Vm.register_hook vm "__cpdrop" (fun _vm args ->
      Checkpoint.dispose (find_cp "__cpdrop" args);
      Value.Null)

(* Compiles the corrected program with its hooks registered. *)
let load_corrected config ~targets program =
  let vm = Compile.program (corrected_program ~targets program) in
  register_hooks config vm;
  vm

(* ------------------------------------------------------------------ *)
(* End-to-end pipeline                                                 *)
(* ------------------------------------------------------------------ *)

type outcome = {
  classification : Classify.t;
  wrapped : Method_id.Set.t;
  corrected : Ast.program; (* the corrected program P_C (source flavor) *)
}

(* Runs detection, classifies, and produces the corrected program —
   the full pipeline of Figure 1.  [prepare] is forwarded to the
   detection runs (needed when [program] is itself a corrected program
   whose woven wrappers call the checkpoint hooks). *)
let correct ?(config = Config.default) ?flavor ?prepare program =
  let detection = Detect.run ~config ?flavor ?prepare program in
  let classification =
    Classify.classify ~exception_free:config.Config.exception_free detection
  in
  let wrapped = targets config classification in
  { classification; wrapped; corrected = corrected_program ~targets:wrapped program }
