(** Persistence of detection results as wrapper log files.

    The paper's implementation writes "the results of online atomicity
    checks ... to log files", which are "processed offline to classify
    each method" (§5.1, Step 3).  This module is that workflow: save a
    {!Detect.result} as a line-oriented text log, load it back later
    (possibly in another process) and classify offline — including
    exception-free re-classification, without re-running any
    injections. *)

type t = {
  flavor : string;
  transparent : bool;
  calls : int Method_id.Map.t;  (** baseline per-method call counts *)
  runs : Marks.run_record list;
      (** loaded run records; the [output] field is not persisted and
          comes back empty *)
}

exception Bad_log of string * int
(** Parse failure: message and line number. *)

val save : Detect.result -> string
val save_file : Detect.result -> string -> unit

val save_run : ?with_output:bool -> Buffer.t -> Marks.run_record -> unit
(** One [run]…[endrun] block in the log grammar.  [with_output]
    additionally persists the run's program output (as an [output]
    record), which campaign journals need to rebuild results
    bitwise-identically on resume. *)

val parse_runs :
  ?tolerate_partial_tail:bool ->
  on_extra:(int -> string list -> unit) ->
  string -> Marks.run_record list
(** Parses every [run]…[endrun] block of [text]; any other non-blank
    line is passed (split on spaces, with its 1-based line number) to
    [on_extra], which should raise {!Bad_log} on lines it does not
    recognise.  [tolerate_partial_tail] silently drops a trailing
    unterminated block — an append-only journal whose writer was killed
    mid-record ends with one.
    @raise Bad_log on malformed input. *)

val load : string -> t
(** @raise Bad_log on malformed input. *)

val load_file : string -> t

val classify : ?exception_free:Method_id.t list -> t -> Classify.t
(** Offline classification from a loaded log. *)
