(** Dynamic profile of the target program.

    One uninstrumented run with a counting filter on every method
    yields which methods the program actually {e uses} and how often —
    the call weights behind Figures 2(b)/3(b). *)

open Failatom_runtime
open Failatom_minilang

type t = {
  calls : int Method_id.Map.t;  (** per-method dynamic call counts *)
  total_calls : int;
  output : string;  (** baseline program output *)
  exit_value : Value.t;
}

val used_methods : t -> Method_id.t list
val call_count : t -> Method_id.t -> int

val of_image : ?prepare:(Vm.t -> unit) -> Compile.image -> t
(** Instantiates [image] and runs it once with a counting filter
    attached everywhere.  The baseline run must complete without an
    escaping exception.  [prepare] is applied to the fresh VM before
    the run (used to register checkpoint hooks when profiling an
    already-masked program).  Taking an image lets the caller share one
    compilation between the profile and the detection runs. *)

val run : ?prepare:(Vm.t -> unit) -> Ast.program -> t
(** [of_image ?prepare (Compile.image program)]. *)
