(** Records produced by the detection phase.

    Every run of the exception injector yields a {!run_record}: which
    injection point was armed, where the exception was injected, and the
    sequence of atomicity marks the wrappers emitted while exceptions
    propagated from callee to caller (Listing 1's [mark] calls). *)

type mark = {
  meth : Method_id.t;
  atomic : bool;
  diff_path : string option;
      (** for non-atomic marks: first field path where the object graph
          diverged from the pre-call snapshot *)
  exn_id : int;
      (** identity of the propagating exception object: marks sharing an
          [exn_id] form one callee-to-caller propagation chain — the
          unit over which "first method marked non-atomic"
          (Definition 3) is evaluated *)
}

type sched_info = {
  sched_spec : string;  (** the schedule policy spec of this run *)
  sched_switches : int;  (** thread switches during the run *)
  sched_digest : string;
      (** FNV-1a digest of the scheduler's decision stream; equal
          digests under equal specs mean bit-identical interleavings *)
}

type run_record = {
  injection_point : int;  (** the armed threshold of this run *)
  injected : (Method_id.t * string) option;
      (** injection site and exception class; [None] for the final probe
          run in which the threshold exceeded the number of points *)
  marks : mark list;  (** callee-to-caller propagation order *)
  escaped : string option;  (** exception class escaping [main], if any *)
  output : string;  (** program output of this run *)
  calls : int;  (** dynamic method+constructor calls in this run *)
  timed_out : bool;
      (** the run was aborted by the per-run wall-clock timeout
          ([--run-timeout]); a timed-out run never establishes the
          detection frontier, even when no injection fired *)
  sched : sched_info option;
      (** [Some] only for runs under a non-coop schedule, so sequential
          records stay byte-identical to the pre-scheduler pipeline *)
}

val pp_mark : mark Fmt.t
val pp_run : run_record Fmt.t
