(** Injection-campaign pruning plans.

    Built from a threshold-0 {e trace run} (which visits every
    injection point without firing) and an {!Exnflow} analysis: the
    campaign's total point count and frontier are known up front, the
    points of each dynamic entry are partitioned into handler-blindness
    groups sharing one representative run, and the groups are ordered
    first-visit-first so time-bounded campaigns reach fresh methods
    sooner.  {!Detect} and {!Failatom_campaign.Campaign} both consume
    plans under [--prune coalesce]. *)

type group = {
  site : Method_id.t;
  members : (int * string) list;
      (** (threshold, injected class) per point of the group, in
          injectable order; the head is the representative *)
  first_visit : bool;
      (** this entry is the first dynamic visit of [site] *)
}

type plan = {
  total_points : int;  (** P: injection points the campaign reaches *)
  frontier : int;  (** P + 1, the threshold of the no-injection probe *)
  groups : group list;  (** in dynamic (threshold) order *)
  order : group list;  (** seeded execution order for campaigns *)
}

val build :
  Exnflow.t -> entries:(Method_id.t * string list) list -> plan
(** [build flow ~entries] consumes {!Injection.trace_entries} of a
    trace run.  Concatenating every group's [members] thresholds
    yields exactly [1 .. total_points]. *)

val rep : group -> int * string
(** The representative point (lowest threshold) of a group. *)

val group_count : plan -> int

val coalesced_away : plan -> int
(** Points whose run is synthesized instead of executed:
    [total_points - group_count]. *)

val synthesize :
  group ->
  rep_record:Marks.run_record ->
  injected_escaped:bool ->
  Marks.run_record list
(** Records of the group's non-representative members, rewritten from
    the representative's record: the armed threshold and injected
    class are the member's own, and the escaped class follows the
    injected class exactly when the representative's escaping
    exception {e was} the injected object (by heap identity).  Never
    call this with a timed-out representative — wall-clock aborts are
    not bisimilar. *)
