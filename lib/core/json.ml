(* A minimal JSON tree, printer and parser for the server's wire
   protocol.

   Deliberately tiny: the protocol uses flat objects with string, bool,
   number and shallow-array fields, so a full-featured JSON library
   would be dead weight (and the container bakes in no such dependency
   anyway).  The one sharp edge worth documenting: strings are treated
   as byte sequences.  Bytes below 0x20 are escaped as \u00XX on output
   and both escape forms are decoded on input, while bytes >= 0x80 pass
   through raw — so any OCaml string round-trips byte-identically,
   which is what the bitwise result-equality guarantee of the result
   cache needs.  \uXXXX escapes above 0xFF are rejected rather than
   UTF-8-encoded; the protocol never produces them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* %.17g round-trips any float; trim is not worth the bother here *)
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = { text : string; mutable pos : int }

let fail msg = raise (Parse_error msg)

let peek p = if p.pos < String.length p.text then Some p.text.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance p;
    skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> fail (Printf.sprintf "expected '%c', found '%c' at %d" c c' p.pos)
  | None -> fail (Printf.sprintf "expected '%c', found end of input" c)

let literal p word value =
  let n = String.length word in
  if p.pos + n <= String.length p.text && String.sub p.text p.pos n = word then begin
    p.pos <- p.pos + n;
    value
  end
  else fail (Printf.sprintf "bad literal at %d" p.pos)

let hex_digit = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> fail "bad hex digit in \\u escape"

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> fail "unterminated string"
    | Some '"' -> advance p
    | Some '\\' ->
      advance p;
      (match peek p with
       | Some '"' -> Buffer.add_char buf '"'; advance p
       | Some '\\' -> Buffer.add_char buf '\\'; advance p
       | Some '/' -> Buffer.add_char buf '/'; advance p
       | Some 'n' -> Buffer.add_char buf '\n'; advance p
       | Some 'r' -> Buffer.add_char buf '\r'; advance p
       | Some 't' -> Buffer.add_char buf '\t'; advance p
       | Some 'b' -> Buffer.add_char buf '\b'; advance p
       | Some 'f' -> Buffer.add_char buf '\012'; advance p
       | Some 'u' ->
         advance p;
         if p.pos + 4 > String.length p.text then fail "truncated \\u escape";
         let code =
           (hex_digit p.text.[p.pos] lsl 12)
           lor (hex_digit p.text.[p.pos + 1] lsl 8)
           lor (hex_digit p.text.[p.pos + 2] lsl 4)
           lor hex_digit p.text.[p.pos + 3]
         in
         p.pos <- p.pos + 4;
         if code > 0xFF then fail "\\u escape beyond latin-1 unsupported"
         else Buffer.add_char buf (Char.chr code)
       | _ -> fail "bad escape");
      loop ()
    | Some c ->
      advance p;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c -> is_num_char c | None -> false) do
    advance p
  done;
  let s = String.sub p.text start (p.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail (Printf.sprintf "bad number %S at %d" s start))

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string p)
  | Some 'n' -> literal p "null" Null
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      List []
    end
    else begin
      let items = ref [ parse_value p ] in
      skip_ws p;
      while peek p = Some ',' do
        advance p;
        items := parse_value p :: !items;
        skip_ws p
      done;
      expect p ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Obj []
    end
    else begin
      let field () =
        skip_ws p;
        let k = parse_string p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws p;
      while peek p = Some ',' do
        advance p;
        fields := field () :: !fields;
        skip_ws p
      done;
      expect p '}';
      Obj (List.rev !fields)
    end
  | Some c -> if c = '-' || (c >= '0' && c <= '9') then parse_number p else
      fail (Printf.sprintf "unexpected '%c' at %d" c p.pos)

let of_string text =
  let p = { text; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length text then fail "trailing garbage after JSON value";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_int = function Int n -> Some n | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let str_member key j = Option.bind (member key j) to_str
let int_member key j = Option.bind (member key j) to_int
let bool_member key j = Option.bind (member key j) to_bool
let float_member key j = Option.bind (member key j) to_float
let list_member key j = Option.bind (member key j) to_list
