(* Injection-campaign pruning plans (paper §4.1 meets exception-flow
   analysis).

   A threshold-0 trace run visits every injection point without firing
   and records, per wrapped entry, the injection site and its
   injectable classes.  From that census and an {!Exnflow} analysis
   this module builds a [plan]:

   - the campaign's total point count [P] and therefore its frontier
     [P + 1] — known up front instead of discovered by overshooting;
   - the points grouped per dynamic entry into handler-blindness
     classes: within one entry, injected classes that every
     possibly-active handler is blind to produce runs that differ only
     in the class tag of the injected exception object, so one
     representative run per group is executed and the members'
     records are synthesized from it;
   - a yield-seeded execution order: the first dynamic visit of each
     site goes first (repeat visits of the same site rarely change the
     verdict), so time-bounded campaigns reach fresh methods sooner.

   Soundness of the synthesis rests on the blindness bisimulation
   (doc/exnflow.md): the paired runs' states are identical except for
   the class tag of the injected object, which only the [injected]
   and [escaped] fields of the record can observe — exactly the two
   fields {!synthesize} rewrites. *)

type group = {
  site : Method_id.t;
  members : (int * string) list;
      (* (threshold, class) per point of this blindness group, in
         injectable order; the head is the representative *)
  first_visit : bool; (* first dynamic entry of this site in the trace *)
}

type plan = {
  total_points : int; (* P: points the campaign reaches *)
  frontier : int; (* P + 1, the threshold of the probe run *)
  groups : group list; (* in dynamic (threshold) order *)
  order : group list; (* seeded execution order for campaigns *)
}

let rep g = List.hd g.members

(* Partition one entry's (threshold, class) points into blindness
   groups, preserving first-occurrence order.  Works on indexed pairs
   rather than through {!Exnflow.partition} so duplicate class names
   keep distinct thresholds. *)
let partition_pairs flow site pairs =
  let groups = ref [] in
  List.iter
    (fun (t, e) ->
      match
        List.find_opt
          (fun ((_, rep_class), _) -> Exnflow.blind_pair flow site rep_class e)
          !groups
      with
      | Some (_, members) -> members := (t, e) :: !members
      | None -> groups := !groups @ [ ((t, e), ref [ (t, e) ]) ])
    pairs;
  List.map (fun (_, members) -> List.rev !members) !groups

let build flow ~entries : plan =
  let next = ref 0 in
  let seen = Hashtbl.create 64 in
  let groups =
    List.concat_map
      (fun (site, classes) ->
        let first_visit = not (Hashtbl.mem seen site) in
        Hashtbl.replace seen site ();
        let pairs =
          List.map
            (fun cls ->
              incr next;
              (!next, cls))
            classes
        in
        List.map
          (fun members -> { site; members; first_visit })
          (partition_pairs flow site pairs))
      entries
  in
  let first, rest = List.partition (fun g -> g.first_visit) groups in
  { total_points = !next;
    frontier = !next + 1;
    groups;
    order = first @ rest }

let group_count plan = List.length plan.groups

let coalesced_away plan = plan.total_points - group_count plan

(* Member records synthesized from the representative's: identical
   modulo the injected class tag.  [injected_escaped] tells whether
   the exception escaping [main] in the representative run was the
   injected object itself (by heap identity): if so the member's
   escaping class is its own injected class, otherwise the natural
   escaped class carries over unchanged. *)
let synthesize g ~(rep_record : Marks.run_record) ~injected_escaped :
    Marks.run_record list =
  List.map
    (fun (threshold, exn_class) ->
      { rep_record with
        Marks.injection_point = threshold;
        injected = Some (g.site, exn_class);
        escaped =
          (if injected_escaped then Some exn_class else rep_record.Marks.escaped) })
    (List.tl g.members)
