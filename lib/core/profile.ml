(* Dynamic profile of the target program.

   A plain (uninstrumented) run with a counting filter attached to every
   method yields: which methods are actually *used* by the program, and
   how often each is called.  The detection phase uses the profile to
   know where wrappers are needed; Figures 2(b)/3(b) of the paper weight
   the classification by these call counts. *)

open Failatom_runtime
open Failatom_minilang

type t = {
  calls : int Method_id.Map.t; (* per-method dynamic call counts *)
  total_calls : int;
  output : string; (* baseline program output *)
  exit_value : Value.t;
}

let used_methods t = List.map fst (Method_id.Map.bindings t.calls)
let call_count t id = Option.value ~default:0 (Method_id.Map.find_opt id t.calls)

(* Runs the program once with a counting filter on every method.  The
   baseline run must complete without an escaping exception: a workload
   that fails on its own would make injection results meaningless.
   [prepare] is applied to the fresh VM before the run; programs that
   were produced by the masking weaver use it to register their
   checkpoint hooks.  Takes a compiled image so the caller can share
   one image between the profile and the detection runs. *)
let of_image ?(prepare = fun (_ : Vm.t) -> ()) (image : Compile.image) : t =
  let vm = Compile.instantiate image in
  prepare vm;
  let counts : (Method_id.t, int) Hashtbl.t = Hashtbl.create 64 in
  let filter =
    { Vm.filt_name = "profile";
      pre =
        (fun _vm meth _recv _args ->
          let id = Method_id.make meth.Vm.meth_class meth.Vm.meth_name in
          Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id));
          Vm.Proceed);
      post = (fun _vm _meth _recv _args _result -> Vm.Pass);
      unwind = Vm.no_unwind }
  in
  Vm.attach_filter_everywhere vm filter;
  let exit_value = Compile.run_main vm in
  let calls = Hashtbl.fold Method_id.Map.add counts Method_id.Map.empty in
  { calls;
    total_calls = Method_id.Map.fold (fun _ n acc -> n + acc) calls 0;
    output = Vm.output vm;
    exit_value }

let run ?prepare (program : Ast.program) : t =
  of_image ?prepare (Compile.image program)
