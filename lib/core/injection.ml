(* Exception injection and atomicity checking (paper §4.1, Listing 1).

   One run of the exception injector program arms a single threshold
   [InjectionPoint]; a global counter [Point] is incremented once per
   injectable exception type at every (wrapped) method entry, and the
   matching exception is thrown when the counter reaches the threshold.
   When a wrapped call returns exceptionally, the wrapper compares the
   receiver's object graph against the snapshot taken on entry and marks
   the method atomic or non-atomic for this injection.

   The logic lives here once and is exposed in the two forms used by the
   paper's two implementations:
   - {!filter}: a pre/post filter attached to compiled methods
     ("binary code transformation", the Java/JWG path);
   - {!register_hooks}: reflective builtins ([__inject], [__snapshot],
     [__mark], [__drop]) called by wrapper methods that the source
     weaver spliced into the program text (the C++/AspectC++ path). *)

open Failatom_runtime
module Obs = Failatom_obs.Obs

(* Observability: snapshot volume, time spent canonicalizing object
   graphs, and how often the cow dirty-set intersection proves atomicity
   without any canonicalization at all. *)
let m_snapshots = Obs.counter "detect.snapshots_taken"
let m_cow_fast = Obs.counter "detect.cow_fast_path_hits"
let h_canon = Obs.histogram ~unit_:Obs.Ns "detect.canonicalize"
let m_memo_hits = Obs.counter "detect.canon_memo_hits"
let m_memo_misses = Obs.counter "detect.canon_memo_misses"

(* The entry state captured by a wrapped call, per the configured
   snapshot mode:

   - [Eager_snap]: the canonical form of the receiver's object graph,
     built at entry (paper Listing 1) — O(graph) per call;
   - [Cow_snap]: a copy-on-write {!Shadow} plus the snapshot roots.
     Nothing is traversed at entry; on the rare exceptional return the
     shadow's dirty set is intersected with the ids reachable from the
     roots, and only if they overlap is the entry-time canonical form
     reconstructed (current heap, saved payloads preferred for dirty
     ids) and compared — so a call's detection cost is proportional to
     what it mutated, not to the graph it could reach. *)
type snapshot =
  | Eager_snap of Object_graph.node
  | Cow_snap of { shadow : Shadow.t; roots : Value.t list }

type state = {
  config : Config.t;
  analyzer : Analyzer.t;
  memo : Object_graph.Memo.t;
      (* incremental canonicalization: live-heap forms are served from
         this cache, revalidated against the heap's write stamps (see
         [Object_graph.Memo]); before-state reconstructions through a
         shadow's saved payloads are never memoized *)
  threshold : int; (* this run's InjectionPoint *)
  tracing : bool;
      (* record every injection-point visit (the pruning pre-pass: a
         threshold-0 run never fires, so tracing is free and exact) *)
  mutable point : int; (* the global Point counter *)
  mutable injected : (Method_id.t * string) option;
  mutable injected_exn_id : int;
      (* heap id of the injected exception object (0 before injection):
         lets the driver distinguish "the injected exception escaped"
         from "a natural exception escaped" by identity, not class *)
  mutable trace_entries : (Method_id.t * string list) list; (* reversed *)
  mutable marks : Marks.mark list; (* reversed *)
  snap_stacks : (int, (Method_id.t * snapshot) list) Hashtbl.t;
      (* binary flavor: snapshot pushed by pre, popped by post; keyed by
         MiniLang thread id, because pre/post pairs of different threads
         interleave under preemption while each thread's own pairs stay
         LIFO (filters run in the calling fiber) *)
  snapshots : (int, snapshot) Hashtbl.t;
      (* source flavor: snapshots held by wrapper-local tokens *)
  mutable next_token : int;
}

let make_state ?(trace = false) config analyzer ~threshold =
  { config;
    analyzer;
    memo = Object_graph.Memo.create ();
    threshold;
    tracing = trace;
    point = 0;
    injected = None;
    injected_exn_id = 0;
    trace_entries = [];
    marks = [];
    snap_stacks = Hashtbl.create 4;
    snapshots = Hashtbl.create 32;
    next_token = 0 }

let marks state = List.rev state.marks

let trace_entries state = List.rev state.trace_entries

(* Roots of a snapshot: the receiver plus, per configuration, every
   argument passed by reference (paper: "all arguments that are passed
   in as non-constant references"). *)
let snapshot_roots state recv args =
  if state.config.Config.snapshot_args then
    recv :: List.filter Value.is_ref args
  else [ recv ]

(* Canonical form of the current heap graph, through the memo; the
   timing histogram covers hits too, so it keeps measuring what a
   snapshot costs rather than what canonicalization would cost. *)
let memo_canon state heap roots =
  let before_hits = Object_graph.Memo.hits state.memo in
  let form =
    Obs.timed h_canon (fun () ->
        Object_graph.Memo.canonical_many state.memo heap roots)
  in
  if Object_graph.Memo.hits state.memo > before_hits then
    Obs.incr m_memo_hits
  else Obs.incr m_memo_misses;
  form

let take_snapshot_of state vm roots =
  Obs.incr m_snapshots;
  match state.config.Config.snapshot_mode with
  | Config.Snapshot_eager -> Eager_snap (memo_canon state vm.Vm.heap roots)
  | Config.Snapshot_cow -> Cow_snap { shadow = Shadow.open_ vm.Vm.heap; roots }

let take_snapshot state vm recv args =
  take_snapshot_of state vm (snapshot_roots state recv args)

(* Discards a snapshot whose call returned normally (or whose mark was
   dropped): eager forms are garbage, cow shadows must detach from the
   write barrier. *)
let release_snapshot = function
  | Eager_snap _ -> ()
  | Cow_snap { shadow; _ } -> Shadow.close shadow

(* The injection points of Listing 1, lines 2-5: one potential point per
   injectable exception type.  Returns the exception to inject when the
   armed threshold is crossed. *)
let maybe_inject state vm id =
  let injectable = Analyzer.injectable_for state.analyzer id in
  if state.tracing && injectable <> [] then
    state.trace_entries <- (id, injectable) :: state.trace_entries;
  let rec try_types = function
    | [] -> None
    | exn_class :: rest ->
      state.point <- state.point + 1;
      if state.point = state.threshold then begin
        state.injected <- Some (id, exn_class);
        let exn_v = Vm.make_exn vm exn_class "injected" in
        (match exn_v.Vm.exn_obj with
         | Value.Ref heap_id -> state.injected_exn_id <- heap_id
         | _ -> ());
        Some exn_v
      end
      else try_types rest
  in
  try_types injectable

let exn_identity (exn_v : Vm.exn_value) =
  match exn_v.Vm.exn_obj with Value.Ref id -> id | _ -> 0

let record_mark state id ~atomic ~diff_path ~exn_id =
  state.marks <- { Marks.meth = id; atomic; diff_path; exn_id } :: state.marks

(* Snapshots wrap their roots in a synthetic array (receiver at slot 0,
   reference arguments after it); rewrite the raw diff path so reports
   speak in terms of [this] and [argN]. *)
let tidy_diff_path path =
  let prefix p = String.length path >= String.length p && String.sub path 0 (String.length p) = p in
  if prefix "this[" then
    match String.index_opt path ']' with
    | Some close ->
      let idx = String.sub path 5 (close - 5) in
      let rest = String.sub path (close + 1) (String.length path - close - 1) in
      (match int_of_string_opt idx with
       | Some 0 -> "this" ^ rest
       | Some n -> Printf.sprintf "arg%d%s" (n - 1) rest
       | None -> path)
    | None -> path
  else path

let mark_verdict state id ~before ~after ~exn_id =
  if Object_graph.equal before after then
    record_mark state id ~atomic:true ~diff_path:None ~exn_id
  else
    record_mark state id ~atomic:false ~exn_id
      ~diff_path:(Option.map tidy_diff_path (Object_graph.diff before after))

(* Compares the entry snapshot with the current graph and records the
   verdict for this injection (Listing 1, lines 10-14).  Consumes the
   snapshot (cow shadows are closed). *)
let check_and_mark state vm id snapshot roots ~exn_id =
  match snapshot with
  | Eager_snap before ->
    let after = memo_canon state vm.Vm.heap roots in
    mark_verdict state id ~before ~after ~exn_id
  | Cow_snap { shadow; roots } ->
    let read = Shadow.read_before shadow in
    (* Step 1: dirty-set/reachability intersection.  If nothing the
       snapshot covers was touched, the graphs are identical by
       construction — atomic, with zero canonicalization. *)
    let untouched =
      Shadow.dirty_count shadow = 0
      || not (Object_graph.reaches_dirty read ~dirty:(Shadow.is_dirty shadow) roots)
    in
    (if untouched then begin
       Obs.incr m_cow_fast;
       record_mark state id ~atomic:true ~diff_path:None ~exn_id
     end
     else begin
       (* Step 2: reconstruct the entry-time canonical form from the
          current heap, preferring saved payloads for dirty ids, and
          compare it with the exit-time form.  Neither traversal
          allocates on the program heap, so the comparison itself never
          feeds the write barrier of enclosing shadows. *)
       let before =
         Obs.timed h_canon (fun () -> Object_graph.canonical_many_via read roots)
       in
       let after = memo_canon state (Shadow.heap shadow) roots in
       mark_verdict state id ~before ~after ~exn_id
     end);
    Shadow.close shadow

(* ------------------------------------------------------------------ *)
(* Binary flavor: a pre/post filter                                    *)
(* ------------------------------------------------------------------ *)

let snap_stack_of state tid =
  match Hashtbl.find_opt state.snap_stacks tid with Some l -> l | None -> []

let filter state =
  { Vm.filt_name = "injection";
    pre =
      (fun vm meth recv args ->
        let id = Method_id.make meth.Vm.meth_class meth.Vm.meth_name in
        match maybe_inject state vm id with
        | Some exn_v -> Vm.Pre_raise exn_v
        | None ->
          let tid = vm.Vm.cur_tid in
          Hashtbl.replace state.snap_stacks tid
            ((id, take_snapshot state vm recv args) :: snap_stack_of state tid);
          Vm.Proceed);
    post =
      (fun vm _meth recv args result ->
        let tid = vm.Vm.cur_tid in
        match snap_stack_of state tid with
        | [] ->
          (* Desynchronized only if a fatal (non-MiniLang) error aborted
             the run; nothing sensible to record. *)
          Vm.Pass
        | (id, snapshot) :: rest ->
          Hashtbl.replace state.snap_stacks tid rest;
          (match result with
           | Ok _ -> release_snapshot snapshot
           | Error exn_v ->
             check_and_mark state vm id snapshot
               (snapshot_roots state recv args)
               ~exn_id:(exn_identity exn_v));
          Vm.Pass);
    unwind =
      (fun vm _meth ->
        (* OCaml-level abort (deadline, step limit): no verdict for the
           call in flight, but its snapshot must not stay attached to
           the write barrier. *)
        let tid = vm.Vm.cur_tid in
        match snap_stack_of state tid with
        | [] -> ()
        | (_, snapshot) :: rest ->
          Hashtbl.replace state.snap_stacks tid rest;
          release_snapshot snapshot) }

let attach state vm = Vm.attach_filter_everywhere vm (filter state)

(* ------------------------------------------------------------------ *)
(* Source flavor: reflective hooks called by woven wrapper methods     *)
(* ------------------------------------------------------------------ *)

let hook_error name = invalid_arg (Printf.sprintf "hook %s: invalid arguments" name)

let id_of_args name args =
  match args with
  | Value.Str cls :: Value.Str meth :: rest -> (Method_id.make cls meth, rest)
  | _ -> hook_error name

let roots_of state vm recv args_array =
  let args =
    match args_array with
    | Value.Ref id -> (
      match Heap.get vm.Vm.heap id with
      | Heap.Arr a -> Array.to_list a
      | Heap.Obj _ -> hook_error "__snapshot")
    | _ -> hook_error "__snapshot"
  in
  snapshot_roots state recv args

let register_hooks state vm =
  Vm.register_hook vm "__inject" (fun vm args ->
      let id, rest = id_of_args "__inject" args in
      if rest <> [] then hook_error "__inject";
      (match maybe_inject state vm id with
       | Some exn_v -> raise (Vm.Mini_raise exn_v)
       | None -> ());
      Value.Null);
  Vm.register_hook vm "__snapshot" (fun vm args ->
      match args with
      | [ recv; args_array ] ->
        let snapshot = take_snapshot_of state vm (roots_of state vm recv args_array) in
        let token = state.next_token in
        state.next_token <- token + 1;
        Hashtbl.replace state.snapshots token snapshot;
        Value.Int token
      | _ -> hook_error "__snapshot");
  Vm.register_hook vm "__mark" (fun vm args ->
      match args with
      | [ Value.Str cls; Value.Str meth; Value.Int token; recv; args_array; exn_obj ] ->
        let id = Method_id.make cls meth in
        let exn_id = match exn_obj with Value.Ref i -> i | _ -> 0 in
        (match Hashtbl.find_opt state.snapshots token with
         | None -> hook_error "__mark"
         | Some snapshot ->
           Hashtbl.remove state.snapshots token;
           check_and_mark state vm id snapshot
             (roots_of state vm recv args_array)
             ~exn_id);
        Value.Null
      | _ -> hook_error "__mark");
  Vm.register_hook vm "__drop" (fun _vm args ->
      match args with
      | [ Value.Int token ] ->
        (match Hashtbl.find_opt state.snapshots token with
         | Some snapshot ->
           release_snapshot snapshot;
           Hashtbl.remove state.snapshots token
         | None -> ());
        Value.Null
      | _ -> hook_error "__drop")
