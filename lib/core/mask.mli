(** The masking phase (paper §4.2, Listing 2; Steps 4–5 of Figure 1).

    Failure non-atomic methods are wrapped in atomicity wrappers that
    checkpoint the receiver's object graph on entry and roll it back
    before re-raising on exceptional exit.  Per Definition 3 the default
    policy wraps only pure failure non-atomic methods.  Both of the
    paper's implementation flavors are provided: a load-time filter for
    compiled programs and a source-to-source rewrite producing the
    corrected program P_C. *)

open Failatom_runtime
open Failatom_minilang

val targets : Config.t -> Classify.t -> Method_id.Set.t
(** The methods to wrap: chosen by the configured policy, minus the
    user's do-not-wrap list. *)

val checkpoint_roots : Config.t -> Value.t -> Value.t list -> Value.t list
(** The roots a wrapped call protects: the receiver, plus the reference
    arguments when [snapshot_args] is set.  Shared with the production
    armed wrappers so both rollback engines cover the same graph. *)

val masking_filter : Config.t -> Vm.filter
(** A fresh atomicity filter (Listing 2 as a pre/post filter).  One
    filter instance keeps its own checkpoint stack; share a single
    instance across the methods of one VM. *)

val attach_masking : Config.t -> targets:Method_id.Set.t -> Vm.t -> unit
(** Load-time masking: attaches an atomicity filter to every target
    method of a compiled program (no source access). *)

val corrected_program : targets:Method_id.Set.t -> Ast.program -> Ast.program
(** Source-flavor masking: the corrected program P_C.  Its VM needs
    {!register_hooks} before running. *)

val register_hooks : Config.t -> Vm.t -> unit
(** Registers [__checkpoint] / [__restore] / [__cpdrop], the runtime
    support of woven atomicity wrappers. *)

val load_corrected : Config.t -> targets:Method_id.Set.t -> Ast.program -> Vm.t
(** Compiles the corrected program with its hooks registered. *)

type outcome = {
  classification : Classify.t;
  wrapped : Method_id.Set.t;
  corrected : Ast.program;  (** the corrected program P_C *)
}

val correct :
  ?config:Config.t -> ?flavor:Detect.flavor -> ?prepare:(Vm.t -> unit) ->
  Ast.program -> outcome
(** The full pipeline of Figure 1: detect, classify, select targets,
    and produce the corrected program.  [prepare] is forwarded to the
    detection runs (pass {!register_hooks} when the input is itself a
    corrected program). *)
