(* Records produced by the detection phase.

   Every injection run yields a {!run_record}: which injection point was
   armed, where the exception was actually injected, and the sequence of
   atomicity marks emitted by the wrappers while the exception
   propagated from callee to caller (Listing 1's [mark] calls, in
   order).  The classifier consumes these records. *)

type mark = {
  meth : Method_id.t;
  atomic : bool;
  diff_path : string option;
      (* for non-atomic marks: first field path where the object graph
         diverged from the pre-call snapshot *)
  exn_id : int;
      (* identity of the propagating exception object: marks with the
         same [exn_id] belong to one callee-to-caller propagation
         chain, which is the unit over which "first method marked
         non-atomic" (Definition 3) is evaluated *)
}

type sched_info = {
  sched_spec : string; (* the policy spec this run executed under *)
  sched_switches : int; (* thread switches during the run *)
  sched_digest : string;
      (* FNV-1a digest of the scheduler's decision stream; equal digests
         with equal specs mean bit-identical interleavings *)
}

type run_record = {
  injection_point : int; (* the armed threshold of this run *)
  injected : (Method_id.t * string) option;
      (* injection site and exception class; [None] for the final probe
         run in which the threshold exceeded the number of points *)
  marks : mark list; (* callee-to-caller propagation order *)
  escaped : string option; (* exception class escaping [main], if any *)
  output : string; (* program output of this run *)
  calls : int; (* dynamic method+constructor calls in this run *)
  timed_out : bool;
      (* the run was aborted by the per-run wall-clock timeout; its marks
         are the (valid) observations made before the abort, but a
         timed-out run never establishes the detection frontier even
         when no injection fired *)
  sched : sched_info option;
      (* [Some] only for runs under a non-coop schedule; [None] keeps
         sequential records (and their log rendering) byte-identical to
         the pre-scheduler pipeline *)
}

let pp_mark ppf { meth; atomic; diff_path; _ } =
  Fmt.pf ppf "%a:%s%a" Method_id.pp meth
    (if atomic then "atomic" else "NON-ATOMIC")
    Fmt.(option (fun ppf p -> pf ppf "@@%s" p))
    diff_path

let pp_run ppf r =
  let timed ppf r = if r.timed_out then Fmt.pf ppf " (timed out)" in
  match r.injected with
  | None -> Fmt.pf ppf "run[%d]: no injection%a" r.injection_point timed r
  | Some (site, exn_class) ->
    Fmt.pf ppf "run[%d]: %s @@ %a -> [%a]%a%a" r.injection_point exn_class
      Method_id.pp site
      Fmt.(list ~sep:comma pp_mark)
      r.marks
      Fmt.(option (fun ppf e -> pf ppf " escaped:%s" e))
      r.escaped timed r
