(* The detection phase driver (paper §4.1, Step 3 of Figure 1).

   Executes the exception injector program repeatedly, arming injection
   point 1, 2, 3, ... in successive runs; each run gets a fresh VM and
   heap, so runs are independent (the paper restarts the injector
   process).  The loop terminates at the first run in which the armed
   threshold exceeds the number of injection points actually reached —
   at that point every reachable injection point has been exercised
   once.  That final probe run doubles as a transparency check: with no
   injection firing, the instrumented program must produce the baseline
   output. *)

open Failatom_runtime
open Failatom_minilang
module Obs = Failatom_obs.Obs

type flavor =
  | Source_weaving (* the paper's C++ / AspectC++ implementation *)
  | Load_time_filters (* the paper's Java / JWG implementation *)

let flavor_name = function
  | Source_weaving -> "source-weaving"
  | Load_time_filters -> "load-time-filters"

type result = {
  flavor : flavor;
  config : Config.t;
  analyzer : Analyzer.t;
  profile : Profile.t;
  runs : Marks.run_record list;
      (* one record per injection run, plus the final no-injection probe
         run (injected = None).  The probe run matters: its marks record
         the atomicity of the *real* exception paths the workload
         exercises without any injected fault. *)
  injections : int; (* number of runs in which an exception fired *)
  transparent : bool; (* final no-injection run matched baseline output *)
}

(* A non-MiniLang failure inside an injection run: a genuine bug either
   in the workload or in the instrumentation. *)
exception Detection_error of string

(* The per-program×flavor one-time work: the program image, woven for
   source weaving (weaving happens once here, not once per threshold).
   Immutable; shared by every injection run, including across campaign
   domains. *)
type compiled = {
  cflavor : flavor;
  cimage : Compile.image;
}

let compile ?plain flavor (program : Ast.program) : compiled =
  let cimage =
    match flavor with
    | Load_time_filters -> (
      (* load-time interposition runs the unmodified program, so the
         plain image (already built for the profile) is shareable *)
      match plain with
      | Some img -> img
      | None -> Compile.image program)
    | Source_weaving -> Compile.image (Source_weaver.weave_injection program)
  in
  { cflavor = flavor; cimage }

let compiled_flavor c = c.cflavor

(* Builds the instrumented VM for one run and returns it together with
   the armed injection state.  [prepare] registers any extra hooks the
   program needs (e.g. checkpoint hooks of an already-masked program
   being re-validated). *)
let instrumented_vm compiled config analyzer ~prepare ~threshold =
  let state = Injection.make_state config analyzer ~threshold in
  let vm = Compile.instantiate compiled.cimage in
  prepare vm;
  (match compiled.cflavor with
   | Load_time_filters -> Injection.attach state vm
   | Source_weaving -> Injection.register_hooks state vm);
  (vm, state)

(* One injection run fired an exception (i.e. was not the probe run). *)
let m_injections_fired = Obs.counter "detect.injections_fired"

let m_runs_timed_out = Obs.counter "detect.runs_timed_out"

let run_once ?run_timeout_s compiled config analyzer ~prepare ~threshold :
    Marks.run_record =
  Obs.span "detect.run_once"
    ~attrs:
      [ ("flavor", flavor_name compiled.cflavor);
        ("snapshot_mode", Config.snapshot_mode_name config.Config.snapshot_mode) ]
    (fun () ->
      let vm, state = instrumented_vm compiled config analyzer ~prepare ~threshold in
      (match run_timeout_s with
       | Some timeout_s -> Vm.arm_deadline vm ~timeout_s
       | None -> ());
      let escaped, timed_out =
        try
          ignore (Compile.run_main vm);
          (None, false)
        with
        | Vm.Mini_raise e -> (Some e.Vm.exn_class, false)
        | Vm.Deadline_exceeded ->
          (* The armed timeout fired: record the observations made so
             far instead of wedging the worker.  The abort unwinds as an
             OCaml exception, so no wrapper mistakes it for an
             exceptional MiniLang return. *)
          Obs.incr m_runs_timed_out;
          (None, true)
        | Compile.Runtime_error (msg, pos) ->
          raise
            (Detection_error
               (Fmt.str "run %d aborted: %s at %a" threshold msg Ast.pp_pos pos))
        | Vm.Step_limit_exceeded ->
          raise (Detection_error (Fmt.str "run %d exceeded the step limit" threshold))
      in
      if Option.is_some state.Injection.injected then Obs.incr m_injections_fired;
      { Marks.injection_point = threshold;
        injected = state.Injection.injected;
        marks = Injection.marks state;
        escaped;
        output = Vm.output vm;
        calls = vm.Vm.calls;
        timed_out })

(* Runs the complete detection phase on [program].  [plain] and
   [compiled] short-circuit the per-detection compilation when the
   caller already holds the program's images (the server's
   content-addressed image cache); they must have been built from this
   very [program]. *)
let run ?(config = Config.default) ?(flavor = Source_weaving)
    ?(prepare = fun (_ : Vm.t) -> ()) ?plain ?compiled ?run_timeout_s
    (program : Ast.program) : result =
  Obs.span "detect.run" ~attrs:[ ("flavor", flavor_name flavor) ] @@ fun () ->
  let analyzer = Analyzer.analyze config program in
  let plain = match plain with Some p -> p | None -> Compile.image program in
  let profile = Profile.of_image ~prepare plain in
  let compiled =
    match compiled with Some c -> c | None -> compile ~plain flavor program
  in
  let rec loop threshold acc =
    if threshold > config.Config.max_runs then
      raise
        (Detection_error
           (Printf.sprintf "exceeded max_runs = %d injection runs" config.Config.max_runs))
    else
      let record = run_once ?run_timeout_s compiled config analyzer ~prepare ~threshold in
      match record.Marks.injected with
      | Some _ -> loop (threshold + 1) (record :: acc)
      | None when record.Marks.timed_out ->
        (* Timed out before any injection fired: the threshold was not
           proven past the last injection point, so this is not the
           probe run — keep going. *)
        loop (threshold + 1) (record :: acc)
      | None ->
        (* The no-injection probe run: instrumentation must be
           transparent w.r.t. the baseline, and its marks capture the
           workload's real exception paths. *)
        let transparent = String.equal record.Marks.output profile.Profile.output in
        (List.rev (record :: acc), transparent)
  in
  let runs, transparent = loop 1 [] in
  { flavor;
    config;
    analyzer;
    profile;
    runs;
    injections = List.length runs - 1;
    transparent }
