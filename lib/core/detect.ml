(* The detection phase driver (paper §4.1, Step 3 of Figure 1).

   Executes the exception injector program repeatedly, arming injection
   point 1, 2, 3, ... in successive runs; each run gets a fresh VM and
   heap, so runs are independent (the paper restarts the injector
   process).  The loop terminates at the first run in which the armed
   threshold exceeds the number of injection points actually reached —
   at that point every reachable injection point has been exercised
   once.  That final probe run doubles as a transparency check: with no
   injection firing, the instrumented program must produce the baseline
   output. *)

open Failatom_runtime
open Failatom_minilang
module Obs = Failatom_obs.Obs

type flavor =
  | Source_weaving (* the paper's C++ / AspectC++ implementation *)
  | Load_time_filters (* the paper's Java / JWG implementation *)

let flavor_name = function
  | Source_weaving -> "source-weaving"
  | Load_time_filters -> "load-time-filters"

type result = {
  flavor : flavor;
  config : Config.t;
  analyzer : Analyzer.t;
  profile : Profile.t;
  runs : Marks.run_record list;
      (* one record per injection run, plus the final no-injection probe
         run (injected = None).  The probe run matters: its marks record
         the atomicity of the *real* exception paths the workload
         exercises without any injected fault. *)
  injections : int; (* number of runs in which an exception fired *)
  transparent : bool; (* final no-injection run matched baseline output *)
}

(* A non-MiniLang failure inside an injection run: a genuine bug either
   in the workload or in the instrumentation. *)
exception Detection_error of string

(* The per-program×flavor one-time work: the program image, woven for
   source weaving (weaving happens once here, not once per threshold).
   Immutable; shared by every injection run, including across campaign
   domains. *)
type compiled = {
  cflavor : flavor;
  cimage : Compile.image;
}

let compile ?plain flavor (program : Ast.program) : compiled =
  let cimage =
    match flavor with
    | Load_time_filters -> (
      (* load-time interposition runs the unmodified program, so the
         plain image (already built for the profile) is shareable *)
      match plain with
      | Some img -> img
      | None -> Compile.image program)
    | Source_weaving -> Compile.image (Source_weaver.weave_injection program)
  in
  { cflavor = flavor; cimage }

let compiled_flavor c = c.cflavor

(* Builds the instrumented VM for one run and returns it together with
   the armed injection state.  [prepare] registers any extra hooks the
   program needs (e.g. checkpoint hooks of an already-masked program
   being re-validated). *)
let instrumented_vm ?(trace = false) compiled config analyzer ~prepare ~threshold =
  let state = Injection.make_state ~trace config analyzer ~threshold in
  let vm = Compile.instantiate compiled.cimage in
  prepare vm;
  (match compiled.cflavor with
   | Load_time_filters -> Injection.attach state vm
   | Source_weaving -> Injection.register_hooks state vm);
  (vm, state)

(* One injection run fired an exception (i.e. was not the probe run). *)
let m_injections_fired = Obs.counter "detect.injections_fired"

let m_runs_timed_out = Obs.counter "detect.runs_timed_out"

(* Pruning observability: how many injection points the campaign had,
   and how many of them were never run because the static analysis
   removed them (drop) or folded them into a representative
   (coalesce). *)
let m_points_total = Obs.counter "detect.points_total"
let m_points_dropped = Obs.counter "detect.points_dropped"
let m_points_coalesced = Obs.counter "detect.points_coalesced"

type run_extras = {
  injected_escaped : bool;
  entries : (Method_id.t * string list) list;
}

(* The default schedule: sequential detection always runs under [Coop],
   whose records carry no sched info — byte-identical to the
   pre-scheduler pipeline. *)
let coop_schedule = ("coop", Sched.Coop)

let run_once_ext ?run_timeout_s ?(trace = false) ?(schedule = coop_schedule)
    compiled config analyzer ~prepare ~threshold : Marks.run_record * run_extras =
  let spec, policy = schedule in
  Obs.span "detect.run_once"
    ~attrs:
      [ ("flavor", flavor_name compiled.cflavor);
        ("snapshot_mode", Config.snapshot_mode_name config.Config.snapshot_mode) ]
    (fun () ->
      let vm, state =
        instrumented_vm ~trace compiled config analyzer ~prepare ~threshold
      in
      (match run_timeout_s with
       | Some timeout_s -> Vm.arm_deadline vm ~timeout_s
       | None -> ());
      let escaped, injected_escaped, timed_out =
        try
          ignore (Compile.run_main ~policy vm);
          (None, false, false)
        with
        | Vm.Mini_raise e ->
          (* Identity, not class, decides whether the escaping
             exception is the injected one: a natural exception of the
             injected class must not be re-tagged by coalescing. *)
          let same =
            state.Injection.injected_exn_id <> 0
            && (match e.Vm.exn_obj with
               | Value.Ref i -> i = state.Injection.injected_exn_id
               | _ -> false)
          in
          (Some e.Vm.exn_class, same, false)
        | Vm.Deadline_exceeded ->
          (* The armed timeout fired: record the observations made so
             far instead of wedging the worker.  The abort unwinds as an
             OCaml exception, so no wrapper mistakes it for an
             exceptional MiniLang return. *)
          Obs.incr m_runs_timed_out;
          (None, false, true)
        | Compile.Runtime_error (msg, pos) ->
          raise
            (Detection_error
               (Fmt.str "run %d aborted: %s at %a" threshold msg Ast.pp_pos pos))
        | Vm.Step_limit_exceeded ->
          raise (Detection_error (Fmt.str "run %d exceeded the step limit" threshold))
      in
      if Option.is_some state.Injection.injected then Obs.incr m_injections_fired;
      let sched =
        match policy with
        | Sched.Coop -> None
        | Sched.Slice _ | Sched.Pct _ ->
          Some
            { Marks.sched_spec = spec;
              sched_switches = vm.Vm.sched_switches;
              sched_digest = vm.Vm.sched_digest }
      in
      ( { Marks.injection_point = threshold;
          injected = state.Injection.injected;
          marks = Injection.marks state;
          escaped;
          output = Vm.output vm;
          calls = vm.Vm.calls;
          timed_out;
          sched },
        { injected_escaped; entries = Injection.trace_entries state } ))

let run_once ?run_timeout_s ?schedule compiled config analyzer ~prepare ~threshold :
    Marks.run_record =
  fst (run_once_ext ?run_timeout_s ?schedule compiled config analyzer ~prepare ~threshold)

(* Runs the complete detection phase on [program].  [plain] and
   [compiled] short-circuit the per-detection compilation when the
   caller already holds the program's images (the server's
   content-addressed image cache); they must have been built from this
   very [program]. *)
let max_runs_error config =
  Detection_error
    (Printf.sprintf "exceeded max_runs = %d injection runs" config.Config.max_runs)

(* The exact (unpruned) detection loop: threshold 1, 2, 3, ... until the
   first run in which no injection fires.  [baseline_output] is the
   uninjected, uninstrumented output under the same schedule — the
   transparency oracle for this schedule's probe run. *)
let unpruned_loop ?run_timeout_s ?schedule compiled config analyzer ~prepare
    ~baseline_output =
  let rec loop threshold acc =
    if threshold > config.Config.max_runs then raise (max_runs_error config)
    else
      let record =
        run_once ?run_timeout_s ?schedule compiled config analyzer ~prepare ~threshold
      in
      match record.Marks.injected with
      | Some _ -> loop (threshold + 1) (record :: acc)
      | None when record.Marks.timed_out ->
        (* Timed out before any injection fired: the threshold was not
           proven past the last injection point, so this is not the
           probe run — keep going. *)
        loop (threshold + 1) (record :: acc)
      | None ->
        (* The no-injection probe run: instrumentation must be
           transparent w.r.t. the baseline, and its marks capture the
           workload's real exception paths. *)
        let transparent = String.equal record.Marks.output baseline_output in
        (List.rev (record :: acc), transparent)
  in
  loop 1 []

(* The coalescing detection loop ([--prune coalesce]): a threshold-0
   trace run takes the campaign census (it never fires, so it is a
   faithful stand-in for the probe run), the points are partitioned
   into handler-blindness groups, one representative per group is
   executed, and the members' records are synthesized from it.  The
   resulting run list is bitwise-identical to the unpruned loop's. *)
let coalesced_loop ?run_timeout_s compiled config analyzer flow ~prepare ~profile =
  let trace_rec, extras =
    run_once_ext ?run_timeout_s ~trace:true compiled config analyzer ~prepare
      ~threshold:0
  in
  if trace_rec.Marks.timed_out then
    (* The census is incomplete; fall back to the exact loop rather
       than prune against a truncated point list. *)
    unpruned_loop ?run_timeout_s compiled config analyzer ~prepare
      ~baseline_output:profile.Profile.output
  else begin
    let plan = Prune.build flow ~entries:extras.entries in
    (* The unpruned loop would abort at the probe run's threshold. *)
    if plan.Prune.frontier > config.Config.max_runs then
      raise (max_runs_error config);
    Obs.add m_points_total plan.Prune.total_points;
    Obs.add m_points_coalesced (Prune.coalesced_away plan);
    (* Threshold 0 and threshold P+1 never fire, and a never-firing
       run's behaviour does not depend on the armed threshold: the
       trace run *is* the probe run, modulo its recorded threshold. *)
    let probe = { trace_rec with Marks.injection_point = plan.Prune.frontier } in
    let records =
      List.concat_map
        (fun g ->
          let rep_t, _ = Prune.rep g in
          let rep_record, ex =
            run_once_ext ?run_timeout_s compiled config analyzer ~prepare
              ~threshold:rep_t
          in
          if rep_record.Marks.timed_out then
            (* A wall-clock abort is not bisimilar across class tags:
               run the members for real instead of synthesizing. *)
            rep_record
            :: List.map
                 (fun (t, _) ->
                   run_once ?run_timeout_s compiled config analyzer ~prepare
                     ~threshold:t)
                 (List.tl g.Prune.members)
          else
            rep_record
            :: Prune.synthesize g ~rep_record
                 ~injected_escaped:ex.injected_escaped)
        plan.Prune.groups
    in
    let records =
      List.sort
        (fun a b -> compare a.Marks.injection_point b.Marks.injection_point)
        records
    in
    let transparent = String.equal trace_rec.Marks.output profile.Profile.output in
    (records @ [ probe ], transparent)
  end

(* Schedule exploration observability: one tick per (schedule, program)
   detection loop. *)
let m_schedules = Obs.counter "sched.schedules_explored"

(* Uninjected, uninstrumented output of the plain image under a
   schedule — the per-schedule transparency oracle.  (The profile's
   output is exactly this for [Coop].) *)
let baseline_under plain ~prepare policy =
  let vm = Compile.instantiate plain in
  prepare vm;
  ignore (Compile.run_main ~policy vm);
  Vm.output vm

(* Runs the complete detection phase (see .mli). *)
let run ?(config = Config.default) ?(flavor = Source_weaving)
    ?(prepare = fun (_ : Vm.t) -> ()) ?plain ?compiled ?run_timeout_s
    (program : Ast.program) : result =
  Obs.span "detect.run" ~attrs:[ ("flavor", flavor_name flavor) ] @@ fun () ->
  let concurrent = Minilang.uses_concurrency program in
  (* Static exception-flow pruning reasons about sequential control
     flow; with threads present the interleaving can reorder handler
     activity, so pruning is forced off and every point runs. *)
  let config =
    if concurrent && config.Config.prune <> Config.Prune_off then
      { config with Config.prune = Config.Prune_off }
    else config
  in
  (* The schedule axis: concurrent programs cross every configured
     schedule with the injection-point axis; sequential programs always
     run the single coop schedule (their behaviour cannot depend on a
     scheduler that never has two runnable threads). *)
  let schedules =
    if not concurrent then [ "coop" ]
    else match config.Config.schedules with [] -> [ "coop" ] | l -> l
  in
  let policies =
    List.map
      (fun spec ->
        match Sched.policy_of_string spec with
        | Some p -> (spec, p)
        | None -> raise (Detection_error ("unknown schedule spec: " ^ spec)))
      schedules
  in
  let plain = match plain with Some p -> p | None -> Compile.image program in
  (* The exception-flow analysis always runs over the *plain* program,
     even for source weaving: the woven wrapper clauses are
     catch-everything/rethrow and never discriminate on the class, so
     the plain program's handler structure is the one that matters. *)
  let flow =
    match config.Config.prune with
    | Config.Prune_off -> None
    | Config.Prune_drop | Config.Prune_coalesce ->
      Some (Exnflow.analyze plain program)
  in
  let analyzer =
    match config.Config.prune with
    | Config.Prune_drop -> Analyzer.analyze ?flow config program
    | Config.Prune_off | Config.Prune_coalesce ->
      (* Coalescing keeps every point (numbering must match the
         unpruned campaign exactly); only drop filters the sets. *)
      Analyzer.analyze config program
  in
  (match config.Config.prune with
   | Config.Prune_drop ->
     (* Static census: points removed per method relative to the
        unfiltered analysis. *)
     let unfiltered = Analyzer.analyze config program in
     let dropped =
       List.fold_left
         (fun acc id ->
           acc
           + List.length (Analyzer.injectable_for unfiltered id)
           - List.length (Analyzer.injectable_for analyzer id))
         0 (Analyzer.method_ids unfiltered)
     in
     Obs.add m_points_dropped dropped
   | Config.Prune_off | Config.Prune_coalesce -> ());
  let profile = Profile.of_image ~prepare plain in
  let compiled =
    match compiled with Some c -> c | None -> compile ~plain flavor program
  in
  let runs, transparent =
    match (config.Config.prune, flow) with
    | Config.Prune_coalesce, Some flow ->
      coalesced_loop ?run_timeout_s compiled config analyzer flow ~prepare ~profile
    | _ ->
      (* One full injection campaign per schedule; records of non-coop
         schedules carry their spec and decision digest, and each
         schedule's probe run checks transparency against that
         schedule's own uninjected baseline. *)
      List.fold_left
        (fun (acc, transp) (spec, policy) ->
          Obs.span "detect.schedule" ~attrs:[ ("schedule", spec) ] @@ fun () ->
          Obs.incr m_schedules;
          let baseline_output =
            match policy with
            | Sched.Coop -> profile.Profile.output
            | Sched.Slice _ | Sched.Pct _ -> baseline_under plain ~prepare policy
          in
          let runs, t =
            unpruned_loop ?run_timeout_s ~schedule:(spec, policy) compiled config
              analyzer ~prepare ~baseline_output
          in
          (acc @ runs, transp && t))
        ([], true) policies
  in
  let probes = match config.Config.prune with Config.Prune_coalesce -> 1 | _ -> List.length policies in
  (match config.Config.prune with
   | Config.Prune_off | Config.Prune_drop ->
     (* Every reached point got its own run; the probes are the odd
        ones out.  Coalesce reports the plan's count instead. *)
     Obs.add m_points_total (List.length runs - probes)
   | Config.Prune_coalesce -> ());
  { flavor;
    config;
    analyzer;
    profile;
    runs;
    injections = List.length runs - probes;
    transparent }
