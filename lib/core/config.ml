(* Configuration of the detection and masking pipeline.

   This is the programmatic equivalent of the paper's "web interface":
   which generic runtime exceptions to inject, which methods the user
   declares exception-free, which methods must not be wrapped, and the
   masking policy. *)

open Failatom_runtime

type wrap_policy =
  | Wrap_pure (* wrap only pure failure non-atomic methods (§4.3) *)
  | Wrap_all_non_atomic (* wrap every failure non-atomic method *)

let wrap_policy_name = function
  | Wrap_pure -> "pure"
  | Wrap_all_non_atomic -> "all"

let wrap_policy_of_name = function
  | "pure" -> Some Wrap_pure
  | "all" -> Some Wrap_all_non_atomic
  | _ -> None

type snapshot_mode =
  | Snapshot_eager
      (* canonicalize the receiver's full object graph at every wrapped
         call entry (paper Listing 1; the oracle the tests compare
         against) *)
  | Snapshot_cow
      (* differential snapshots: open a copy-on-write shadow at entry
         and reconstruct the entry-time canonical form only on the rare
         exceptional return — detection cost proportional to mutations,
         not graph size (paper §6.2 applied to detection) *)

let snapshot_mode_name = function
  | Snapshot_eager -> "eager"
  | Snapshot_cow -> "cow"

type prune =
  | Prune_off (* run every injection point, the paper's campaign *)
  | Prune_drop
      (* drop generic injections whose class the static exception-flow
         analysis proves the method cannot raise (changes the point
         numbering: a semantic mode, like infer_exception_free) *)
  | Prune_coalesce
      (* keep every point but run one representative per handler-blind
         class group and synthesize the members' records — marks are
         bitwise-identical to Prune_off *)

let prune_name = function
  | Prune_off -> "off"
  | Prune_drop -> "drop"
  | Prune_coalesce -> "coalesce"

let prune_of_string = function
  | "off" -> Some Prune_off
  | "drop" -> Some Prune_drop
  | "coalesce" -> Some Prune_coalesce
  | _ -> None

type t = {
  runtime_exceptions : string list;
      (* generic runtime exceptions injectable into any method, in
         addition to each method's declared [throws] clause *)
  snapshot_args : bool;
      (* include object-valued arguments in snapshots/checkpoints (the
         paper's C++ flavor does; its Java flavor covers [this] only) *)
  snapshot_mode : snapshot_mode;
      (* how the detection wrapper captures the entry state *)
  checkpoint_strategy : Checkpoint.strategy;
  wrap_policy : wrap_policy;
  exception_free : Method_id.t list;
      (* methods the user asserts never throw: injections whose site is
         such a method are discarded during re-classification *)
  infer_exception_free : bool;
      (* run the static exception-freedom analysis (Purity) and skip
         injection points in methods that provably cannot raise — the
         automation of the paper's manual annotation, listed there as
         future work *)
  do_not_wrap : Method_id.t list;
      (* methods excluded from masking even if failure non-atomic *)
  max_runs : int; (* safety bound on the number of injection runs *)
  prune : prune;
      (* static exception-flow pruning of the injection campaign
         (Exnflow): off = paper behavior; drop = skip unraisable
         classes; coalesce = drop + one run per handler-blind group *)
  schedules : string list;
      (* schedule policy specs (Sched.policy_of_string) crossed with the
         injection-point axis for concurrent programs; sequential
         programs always run the ["coop"] schedule only.  Never empty:
         the first entry is the baseline schedule. *)
}

let default =
  { runtime_exceptions = [ "NullPointerException"; "OutOfMemoryError" ];
    snapshot_args = true;
    snapshot_mode = Snapshot_eager;
    checkpoint_strategy = Checkpoint.Eager;
    wrap_policy = Wrap_pure;
    exception_free = [];
    infer_exception_free = false;
    do_not_wrap = [];
    max_runs = 200_000;
    prune = Prune_off;
    schedules = [ "coop" ] }

(* All exception classes injectable into a method declaring [throws].
   Declared exceptions come first, mirroring the injection-point order
   of the paper's Listing 1. *)
let injectable config ~declared =
  declared @ List.filter (fun e -> not (List.mem e declared)) config.runtime_exceptions

(* Content address of a configuration: md5 hex over a canonical
   rendering of every field that influences detection results.  Two
   configs with equal fingerprints produce identical run records on the
   same program — the contract the server's result cache relies on.
   The leading version tag must change whenever a field is added or its
   rendering changes, invalidating stale cache entries. *)
let fingerprint (c : t) =
  let strategy =
    match c.checkpoint_strategy with
    | Checkpoint.Eager -> "eager"
    | Checkpoint.Lazy -> "lazy"
  in
  let policy = wrap_policy_name c.wrap_policy in
  let methods ms =
    String.concat "," (List.sort compare (List.map Method_id.to_string ms))
  in
  let canonical =
    String.concat "|"
      [ "cfg3";
        String.concat "," c.runtime_exceptions;
        string_of_bool c.snapshot_args;
        snapshot_mode_name c.snapshot_mode;
        strategy;
        policy;
        methods c.exception_free;
        string_of_bool c.infer_exception_free;
        methods c.do_not_wrap;
        string_of_int c.max_runs;
        prune_name c.prune;
        String.concat "," c.schedules ]
  in
  Digest.to_hex (Digest.string canonical)
