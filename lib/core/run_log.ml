(* Persistence of detection results as wrapper log files.

   The paper's C++ implementation writes "the results of online
   atomicity checks ... to log files" which "are then processed offline
   to classify each method" (§5.1, Step 3).  This module is that log
   format: a line-oriented text file carrying the baseline call profile
   and every run record, sufficient to re-run classification (including
   exception-free re-classification) without the program.

   Grammar (one record per line; method ids are Class.method and contain
   no spaces):

     faillog 1
     flavor <name>
     transparent <bool>
     calls <method> <count>          (* repeated *)
     run <injection_point>
     sched <spec> <switches> <digest> (* optional; non-coop schedules *)
     inject <method> <exception>     (* absent for the probe run *)
     escaped <exception>             (* optional *)
     ncalls <count>
     timedout                        (* optional; --run-timeout abort *)
     mark <method> atomic|nonatomic <exn-id> [<diff-path>]
     output <escaped-string>         (* optional; campaign journals *)
     endrun

   The [sched] record is emitted only for runs under a non-coop schedule
   policy — logs of sequential detection stay byte-identical to the
   pre-scheduler format.  <spec> is the Sched policy spec
   (e.g. slice:7); <digest> the hex decision-stream digest.

   The [output] record carries the run's program output as a single
   space-free token (OCaml string-literal escapes, with spaces encoded
   as \032).  Plain run logs omit it; campaign journals need it so that
   a resumed campaign can rebuild a result bitwise-identical to an
   uninterrupted one (including the probe run's transparency check).
*)

type t = {
  flavor : string;
  transparent : bool;
  calls : int Method_id.Map.t;
  runs : Marks.run_record list;
}

exception Bad_log of string * int (* message, line number *)

let method_of_string s =
  match String.index_opt s '.' with
  | Some i ->
    Method_id.make (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1))
  | None -> invalid_arg ("not a method id: " ^ s)

(* ------------------------------------------------------------------ *)
(* Saving                                                              *)
(* ------------------------------------------------------------------ *)

(* Program output as a single space-free token: OCaml string-literal
   escapes via [String.escaped], plus spaces as the decimal escape \032
   (which [Scanf.unescaped] decodes). *)
let encode_output s =
  String.concat "\\032" (String.split_on_char ' ' (String.escaped s))

let decode_output s = Scanf.unescaped s

let save_run ?(with_output = false) buf (r : Marks.run_record) =
  Buffer.add_string buf (Printf.sprintf "run %d\n" r.Marks.injection_point);
  (match r.Marks.sched with
   | Some s ->
     Buffer.add_string buf
       (Printf.sprintf "sched %s %d %s\n" s.Marks.sched_spec s.Marks.sched_switches
          s.Marks.sched_digest)
   | None -> ());
  (match r.Marks.injected with
   | Some (site, exn_class) ->
     Buffer.add_string buf
       (Printf.sprintf "inject %s %s\n" (Method_id.to_string site) exn_class)
   | None -> ());
  (match r.Marks.escaped with
   | Some exn_class -> Buffer.add_string buf (Printf.sprintf "escaped %s\n" exn_class)
   | None -> ());
  Buffer.add_string buf (Printf.sprintf "ncalls %d\n" r.Marks.calls);
  if r.Marks.timed_out then Buffer.add_string buf "timedout\n";
  List.iter
    (fun (m : Marks.mark) ->
      Buffer.add_string buf
        (Printf.sprintf "mark %s %s %d%s\n"
           (Method_id.to_string m.Marks.meth)
           (if m.Marks.atomic then "atomic" else "nonatomic")
           m.Marks.exn_id
           (match m.Marks.diff_path with Some p -> " " ^ p | None -> "")))
    r.Marks.marks;
  if with_output then
    Buffer.add_string buf (Printf.sprintf "output %s\n" (encode_output r.Marks.output));
  Buffer.add_string buf "endrun\n"

let save_runs buf (runs : Marks.run_record list) = List.iter (save_run buf) runs

let save (result : Detect.result) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "faillog 1\n";
  Buffer.add_string buf
    (Printf.sprintf "flavor %s\n" (Detect.flavor_name result.Detect.flavor));
  Buffer.add_string buf (Printf.sprintf "transparent %b\n" result.Detect.transparent);
  Method_id.Map.iter
    (fun id count ->
      Buffer.add_string buf
        (Printf.sprintf "calls %s %d\n" (Method_id.to_string id) count))
    result.Detect.profile.Profile.calls;
  save_runs buf result.Detect.runs;
  Buffer.contents buf

let save_file result path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save result))

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

type partial_run = {
  mutable point : int;
  mutable injected : (Method_id.t * string) option;
  mutable escaped : string option;
  mutable ncalls : int;
  mutable marks_rev : Marks.mark list;
  mutable out : string;
  mutable timed : bool;
  mutable sched : Marks.sched_info option;
}

(* Generic parser over the run-record grammar.  Lines that are not part
   of a [run]…[endrun] block are handed to [on_extra] (which raises
   {!Bad_log} on lines it does not recognise) — {!load} uses it for the
   faillog header, {!Failatom_campaign.Journal} for its own header.
   With [tolerate_partial_tail] a trailing unterminated run is silently
   dropped instead of raising: an append-only journal whose writer was
   killed mid-record ends with exactly such a block. *)
let parse_runs ?(tolerate_partial_tail = false) ~on_extra (text : string) :
    Marks.run_record list =
  let lines = String.split_on_char '\n' text in
  let runs_rev = ref [] in
  let current : partial_run option ref = ref None in
  let bad lineno msg = raise (Bad_log (msg, lineno)) in
  let finish_run lineno =
    match !current with
    | None -> bad lineno "endrun without run"
    | Some pr ->
      runs_rev :=
        { Marks.injection_point = pr.point;
          injected = pr.injected;
          marks = List.rev pr.marks_rev;
          escaped = pr.escaped;
          output = pr.out;
          calls = pr.ncalls;
          timed_out = pr.timed;
          sched = pr.sched }
        :: !runs_rev;
      current := None
  in
  let in_run lineno f =
    match !current with None -> bad lineno "record outside of a run" | Some pr -> f pr
  in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      match String.split_on_char ' ' (String.trim line) with
      | [ "" ] -> ()
      | [ "run"; point ] -> (
        (match !current with
         | Some _ -> bad lineno "nested run"
         | None -> ());
        match int_of_string_opt point with
        | Some p ->
          current :=
            Some
              { point = p;
                injected = None;
                escaped = None;
                ncalls = 0;
                marks_rev = [];
                out = "";
                timed = false;
                sched = None }
        | None -> bad lineno "bad injection point")
      | [ "sched"; spec; switches; digest ] ->
        in_run lineno (fun pr ->
            match int_of_string_opt switches with
            | Some n ->
              pr.sched <-
                Some
                  { Marks.sched_spec = spec;
                    sched_switches = n;
                    sched_digest = digest }
            | None -> bad lineno "bad sched switches")
      | [ "inject"; meth; exn_class ] ->
        in_run lineno (fun pr -> pr.injected <- Some (method_of_string meth, exn_class))
      | [ "escaped"; exn_class ] -> in_run lineno (fun pr -> pr.escaped <- Some exn_class)
      | [ "ncalls"; n ] ->
        in_run lineno (fun pr ->
            match int_of_string_opt n with
            | Some n -> pr.ncalls <- n
            | None -> bad lineno "bad ncalls")
      | "mark" :: meth :: verdict :: exn_id :: rest ->
        in_run lineno (fun pr ->
            let atomic =
              match verdict with
              | "atomic" -> true
              | "nonatomic" -> false
              | _ -> bad lineno "bad mark verdict"
            in
            let exn_id =
              match int_of_string_opt exn_id with
              | Some n -> n
              | None -> bad lineno "bad exception id"
            in
            let diff_path =
              match rest with [] -> None | parts -> Some (String.concat " " parts)
            in
            pr.marks_rev <-
              { Marks.meth = method_of_string meth; atomic; diff_path; exn_id }
              :: pr.marks_rev)
      | [ "timedout" ] -> in_run lineno (fun pr -> pr.timed <- true)
      | [ "output" ] -> in_run lineno (fun pr -> pr.out <- "")
      | [ "output"; enc ] ->
        in_run lineno (fun pr ->
            match decode_output enc with
            | s -> pr.out <- s
            | exception Scanf.Scan_failure _ -> bad lineno "bad output encoding")
      | [ "endrun" ] -> finish_run lineno
      | parts -> on_extra lineno parts)
    lines;
  (match !current with
   | Some _ when not tolerate_partial_tail ->
     raise (Bad_log ("unterminated run", List.length lines))
   | Some _ | None -> ());
  List.rev !runs_rev

let load (text : string) : t =
  let flavor = ref "unknown" in
  let transparent = ref false in
  let calls = ref Method_id.Map.empty in
  let bad lineno msg = raise (Bad_log (msg, lineno)) in
  let on_extra lineno = function
    | [ "faillog"; "1" ] -> ()
    | [ "faillog"; v ] -> bad lineno ("unsupported log version " ^ v)
    | [ "flavor"; name ] -> flavor := name
    | [ "transparent"; b ] -> (
      match bool_of_string_opt b with
      | Some b -> transparent := b
      | None -> bad lineno "bad boolean")
    | [ "calls"; meth; count ] -> (
      match int_of_string_opt count with
      | Some n -> calls := Method_id.Map.add (method_of_string meth) n !calls
      | None -> bad lineno "bad call count")
    | parts -> bad lineno ("unrecognized record: " ^ String.concat " " parts)
  in
  let runs = parse_runs ~on_extra text in
  { flavor = !flavor; transparent = !transparent; calls = !calls; runs }

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> load (really_input_string ic (in_channel_length ic)))

(* Offline classification from a loaded log. *)
let classify ?exception_free (log : t) : Classify.t =
  Classify.classify_data ?exception_free ~runs:log.runs ~calls:log.calls ()
