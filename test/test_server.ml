(* Tests of the failatom daemon (lib/server/): protocol round trips,
   result fidelity against the in-process detector, the
   content-addressed cache, concurrency, admission failures, and the
   timeout/cancel paths.  Each test (or test group) starts its own
   in-process server on a fresh socket. *)

open Failatom_core
open Failatom_apps
module Server = Failatom_server.Server
module Client = Failatom_server.Client
module Protocol = Failatom_server.Protocol
module Json = Failatom_core.Json

let parse = Failatom_minilang.Minilang.parse

(* Unix sockets live in sun_path (~104 bytes), so build short names
   under the system temp dir rather than a nested dune sandbox path. *)
let fresh_socket =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fa_test_%d_%d.sock" (Unix.getpid ()) !counter)

let with_server ?(config = fun c -> c) f =
  let socket_path = fresh_socket () in
  let server = Server.start (config (Server.default_config ~socket_path)) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Server.wait server;
      if Sys.file_exists socket_path then Sys.remove socket_path)
    (fun () -> f socket_path)

let with_client socket_path f = Client.with_conn ~socket_path f

let completed = function
  | Client.Completed (result, cached) -> (result, cached)
  | Client.Job_failed msg -> Alcotest.failf "job failed: %s" msg
  | Client.Job_cancelled -> Alcotest.fail "job unexpectedly cancelled"
  | Client.Job_timed_out -> Alcotest.fail "job unexpectedly timed out"

(* ------------------------------------------------------------------ *)
(* (a) round trip: server result == in-process Detect.run              *)
(* ------------------------------------------------------------------ *)

(* The matrix runs every registry app in both flavors with statically
   inferred exception-free methods (fewer injection points), exactly as
   a client would request it; the run-log text must be bitwise equal to
   the sequential in-process detector's. *)
let check_round_trip socket_path (app : Registry.t) flavor =
  let request =
    { (Protocol.default_request Protocol.Detect (Protocol.App app.Registry.name)) with
      Protocol.flavor = Some flavor;
      infer = true }
  in
  let result, _cached =
    with_client socket_path (fun conn -> completed (Client.submit_wait conn request))
  in
  let config = { Config.default with Config.infer_exception_free = true } in
  let expected = Detect.run ~config ~flavor (parse app.Registry.source) in
  Alcotest.(check string)
    "identical run log" (Run_log.save expected) result.Protocol.r_log;
  Alcotest.(check int) "same injections" expected.Detect.injections
    result.Protocol.r_injections;
  Alcotest.(check bool) "same transparency" expected.Detect.transparent
    result.Protocol.r_transparent;
  let classification = Classify.classify expected in
  Alcotest.(check (list (pair string string)))
    "same non-atomic methods"
    (List.map
       (fun id ->
         ( Method_id.to_string id,
           Classify.verdict_name (Option.get (Classify.verdict classification id)) ))
       (Classify.non_atomic_methods classification))
    result.Protocol.r_non_atomic

let test_round_trip_matrix () =
  with_server (fun socket_path ->
      List.iter
        (fun (app : Registry.t) ->
          List.iter
            (check_round_trip socket_path app)
            [ Detect.Source_weaving; Detect.Load_time_filters ])
        Registry.catalog)

(* Campaign mode on the server must agree with detect mode (the runs
   are deterministic, so parallelism must not change the log). *)
let test_campaign_mode_matches_detect () =
  with_server
    ~config:(fun c -> { c with Server.jobs_per_job = 4 })
    (fun socket_path ->
      let request mode =
        { (Protocol.default_request mode (Protocol.App "LinkedList")) with
          Protocol.jobs = Some 4 }
      in
      with_client socket_path (fun conn ->
          let d, _ = completed (Client.submit_wait conn (request Protocol.Detect)) in
          let c, _ = completed (Client.submit_wait conn (request Protocol.Campaign)) in
          Alcotest.(check string) "same log" d.Protocol.r_log c.Protocol.r_log;
          match c.Protocol.r_summary with
          | Some s ->
            Alcotest.(check bool) "campaign ran parallel" true
              (s.Protocol.workers > 1)
          | None -> Alcotest.fail "campaign result carries no summary"))

(* Mask mode: wrap targets and corrected program on top of the same
   detection, equal to the in-process Mask.correct. *)
let test_mask_mode () =
  with_server (fun socket_path ->
      let app = Option.get (Registry.find "LinkedList") in
      let request =
        Protocol.default_request Protocol.Mask (Protocol.App app.Registry.name)
      in
      let result, _ =
        with_client socket_path (fun conn -> completed (Client.submit_wait conn request))
      in
      let flavor = Harness.flavor_of_suite app.Registry.suite in
      let outcome = Mask.correct ~flavor (parse app.Registry.source) in
      Alcotest.(check (list string))
        "same wrap targets"
        (List.map Method_id.to_string
           (Method_id.Set.elements outcome.Mask.wrapped))
        result.Protocol.r_wrapped;
      Alcotest.(check string)
        "same corrected program"
        (Failatom_minilang.Pretty.program_to_string outcome.Mask.corrected)
        (Option.value ~default:"" result.Protocol.r_corrected))

(* An inline program must behave exactly like the same source on disk. *)
let test_inline_program () =
  with_server (fun socket_path ->
      let app = Option.get (Registry.find "Dynarray") in
      let by_name =
        Protocol.default_request Protocol.Detect (Protocol.App app.Registry.name)
      in
      let inline =
        { (Protocol.default_request Protocol.Detect
             (Protocol.Inline app.Registry.source)) with
          Protocol.flavor = Some (Harness.flavor_of_suite app.Registry.suite) }
      in
      with_client socket_path (fun conn ->
          let a, _ = completed (Client.submit_wait conn by_name) in
          let b, _ = completed (Client.submit_wait conn inline) in
          Alcotest.(check string) "same log" a.Protocol.r_log b.Protocol.r_log))

(* ------------------------------------------------------------------ *)
(* (b) cache: resubmission is answered without re-running              *)
(* ------------------------------------------------------------------ *)

let test_cache_hit () =
  with_server (fun socket_path ->
      let request =
        Protocol.default_request Protocol.Detect (Protocol.App "CircularList")
      in
      with_client socket_path (fun conn ->
          let first, cached1 = completed (Client.submit_wait conn request) in
          Alcotest.(check bool) "first run not cached" false cached1;
          let id2, cached2 = Client.submit conn request in
          Alcotest.(check bool) "resubmission served from cache" true cached2;
          (* the cached job is already terminal: status shows the result *)
          let s = Client.status conn id2 in
          Alcotest.(check string) "cached job is done" "done" s.Client.state;
          let second = Option.get s.Client.result in
          Alcotest.(check string)
            "bitwise identical log" first.Protocol.r_log second.Protocol.r_log;
          (* watch on a finished job still yields the terminal event *)
          let third, cached3 = completed (Client.watch conn id2) in
          Alcotest.(check bool) "watch reports cached" true cached3;
          Alcotest.(check string)
            "watch returns the same result" first.Protocol.r_log third.Protocol.r_log))

(* Different configurations must NOT share a cache entry. *)
let test_cache_keyed_by_config () =
  with_server (fun socket_path ->
      let base = Protocol.default_request Protocol.Detect (Protocol.App "LLMap") in
      with_client socket_path (fun conn ->
          let _, c1 = completed (Client.submit_wait conn base) in
          Alcotest.(check bool) "cold" false c1;
          let _, c1' = Client.submit conn base in
          Alcotest.(check bool) "warm" true c1';
          let infer = { base with Protocol.infer = true } in
          let id, c2 = Client.submit conn infer in
          Alcotest.(check bool) "different config misses the cache" false c2;
          ignore (completed (Client.watch conn id))))

(* ------------------------------------------------------------------ *)
(* (c) concurrency: parallel clients all get correct answers           *)
(* ------------------------------------------------------------------ *)

let test_concurrent_clients () =
  with_server
    ~config:(fun c -> { c with Server.workers = 4 })
    (fun socket_path ->
      let apps = [ "LinkedList"; "Dynarray"; "LLMap"; "CircularList" ] in
      let expected =
        List.map
          (fun name ->
            let app = Option.get (Registry.find name) in
            let flavor = Harness.flavor_of_suite app.Registry.suite in
            (name, Run_log.save (Detect.run ~flavor (parse app.Registry.source))))
          apps
      in
      let results = Array.make 8 None in
      let threads =
        List.init 8 (fun i ->
            Thread.create
              (fun () ->
                let name = List.nth apps (i mod List.length apps) in
                let request =
                  Protocol.default_request Protocol.Detect (Protocol.App name)
                in
                let result, _ =
                  with_client socket_path (fun conn ->
                      completed (Client.submit_wait conn request))
                in
                results.(i) <- Some (name, result.Protocol.r_log))
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i slot ->
          match slot with
          | None -> Alcotest.failf "client %d got no result" i
          | Some (name, log) ->
            Alcotest.(check string)
              (Printf.sprintf "client %d (%s) correct" i name)
              (List.assoc name expected) log)
        results)

(* ------------------------------------------------------------------ *)
(* (d) admission and protocol failures                                 *)
(* ------------------------------------------------------------------ *)

let raw_request socket_path line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  let greeting = input_line ic in
  output_string oc line;
  output_char oc '\n';
  flush oc;
  let reply = input_line ic in
  close_out_noerr oc;
  close_in_noerr ic;
  (greeting, reply)

let check_error_reply name reply =
  let j = Json.of_string reply in
  Alcotest.(check (option bool)) (name ^ ": ok=false") (Some false)
    (Json.bool_member "ok" j);
  Alcotest.(check bool)
    (name ^ ": carries an error message")
    true
    (Json.str_member "error" j <> None)

let test_malformed_requests () =
  with_server (fun socket_path ->
      let greeting, reply = raw_request socket_path "this is not json" in
      Alcotest.(check bool) "greeting names the protocol" true
        (Json.str_member "rpc" (Json.of_string greeting) = Some Protocol.version);
      check_error_reply "garbage line" reply;
      check_error_reply "unknown command"
        (snd (raw_request socket_path {|{"cmd":"frobnicate"}|}));
      check_error_reply "submit without rpc version"
        (snd (raw_request socket_path {|{"cmd":"submit","mode":"detect"}|}));
      check_error_reply "status of unknown job"
        (snd (raw_request socket_path {|{"cmd":"status","job":"j999"}|}));
      (* server-side validation of the program itself *)
      with_client socket_path (fun conn ->
          let unknown_app =
            Protocol.default_request Protocol.Detect (Protocol.App "noSuchApp")
          in
          (try
             ignore (Client.submit conn unknown_app);
             Alcotest.fail "unknown app was accepted"
           with Client.Error _ -> ());
          let bad_source =
            Protocol.default_request Protocol.Detect
              (Protocol.Inline "class { oops")
          in
          try
            ignore (Client.submit conn bad_source);
            Alcotest.fail "unparsable program was accepted"
          with Client.Error _ -> ()))

(* A rejected submission must not poison the connection. *)
let test_connection_survives_errors () =
  with_server (fun socket_path ->
      with_client socket_path (fun conn ->
          (try
             ignore
               (Client.submit conn
                  (Protocol.default_request Protocol.Detect (Protocol.App "nope")))
           with Client.Error _ -> ());
          let result, _ =
            completed
              (Client.submit_wait conn
                 (Protocol.default_request Protocol.Detect
                    (Protocol.App "Dynarray")))
          in
          Alcotest.(check bool) "subsequent submit works" true
            (result.Protocol.r_injections > 0)))

(* ------------------------------------------------------------------ *)
(* (e) timeouts and cancellation                                       *)
(* ------------------------------------------------------------------ *)

(* Each call of Worker.spin costs ~160k VM steps, and main makes 40 of
   them: every detection run takes a few milliseconds, the whole job a
   second or two — long enough to cancel or time out reliably, short
   enough not to stall the suite if the test loses the race. *)
let slow_source =
  {|
class Worker {
  field acc;
  method init() { this.acc = 0; }
  method spin(n) throws IllegalStateException {
    var i = 0;
    while (i < n) { i = i + 1; this.acc = this.acc + 1; }
    return this.acc;
  }
}
function main() {
  var w = new Worker();
  for (var r = 0; r < 40; r = r + 1) {
    try { w.spin(4000); } catch (IllegalStateException e) { println("x"); }
  }
  println("done " + w.acc);
}
|}

let test_job_timeout () =
  with_server
    ~config:(fun c -> { c with Server.job_timeout_s = Some 0.05 })
    (fun socket_path ->
      with_client socket_path (fun conn ->
          match
            Client.submit_wait conn
              (Protocol.default_request Protocol.Detect (Protocol.Inline slow_source))
          with
          | Client.Job_timed_out -> ()
          | Client.Completed _ -> Alcotest.fail "job beat a 50ms deadline"
          | Client.Job_failed msg -> Alcotest.failf "job failed instead: %s" msg
          | Client.Job_cancelled -> Alcotest.fail "job cancelled instead"))

let test_cancel_running_job () =
  with_server (fun socket_path ->
      with_client socket_path (fun conn ->
          let id, _ =
            Client.submit conn
              (Protocol.default_request Protocol.Detect (Protocol.Inline slow_source))
          in
          Client.cancel conn id;
          (match Client.watch conn id with
           | Client.Job_cancelled -> ()
           | Client.Completed _ ->
             Alcotest.fail "job completed before the cancel landed"
           | Client.Job_failed msg -> Alcotest.failf "job failed instead: %s" msg
           | Client.Job_timed_out -> Alcotest.fail "job timed out instead");
          let s = Client.status conn id in
          Alcotest.(check string) "status agrees" "cancelled" s.Client.state))

(* Per-run timeouts surface in the result's log as timed-out records
   (the detection still completes: a timed-out run never ends the
   loop).  [slow_catch_source]'s handler takes ~2M VM steps, so with a
   5ms budget every injected run times out while baseline and probe
   stay fast. *)
let slow_catch_source =
  {|
class Box {
  field v;
  method init() { this.v = 0; }
  method poke() throws IllegalStateException {
    this.v = this.v + 1;
    return this.v;
  }
}
function main() {
  var b = new Box();
  for (var i = 0; i < 5; i = i + 1) {
    try {
      b.poke();
    } catch (IllegalStateException e) {
      var j = 0;
      while (j < 2000000) { j = j + 1; }
      println("recovered");
    }
  }
  println(b.v);
}
|}

let test_run_timeout_in_result () =
  with_server (fun socket_path ->
      let request =
        { (Protocol.default_request Protocol.Detect
             (Protocol.Inline slow_catch_source)) with
          Protocol.run_timeout_s = Some 0.005 }
      in
      let result, _ =
        with_client socket_path (fun conn -> completed (Client.submit_wait conn request))
      in
      let log = Run_log.load result.Protocol.r_log in
      let timed_out =
        List.filter (fun (r : Marks.run_record) -> r.Marks.timed_out) log.Run_log.runs
      in
      Alcotest.(check bool) "some runs timed out" true (timed_out <> []);
      (* the probe run (no injection) terminated normally *)
      let probe = List.nth log.Run_log.runs (List.length log.Run_log.runs - 1) in
      Alcotest.(check bool) "probe not timed out" false probe.Marks.timed_out)

(* ------------------------------------------------------------------ *)
(* (f) drain: shutdown cancels queued jobs, finishes running ones      *)
(* ------------------------------------------------------------------ *)

let test_shutdown_drains () =
  let socket_path = fresh_socket () in
  let server =
    Server.start
      { (Server.default_config ~socket_path) with Server.workers = 1 }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Server.wait server;
      if Sys.file_exists socket_path then Sys.remove socket_path)
    (fun () ->
      with_client socket_path (fun conn ->
          (* one job occupies the single worker, a second waits queued *)
          let running, _ =
            Client.submit conn
              (Protocol.default_request Protocol.Detect (Protocol.Inline slow_source))
          in
          let queued, _ =
            Client.submit conn
              (Protocol.default_request Protocol.Detect (Protocol.App "RegExp"))
          in
          Client.shutdown conn;
          (* queued job is cancelled by the drain ... *)
          (match Client.watch conn queued with
           | Client.Job_cancelled -> ()
           | Client.Completed _ ->
             (* possible if it slipped onto the worker first; accept *)
             ()
           | Client.Job_failed msg -> Alcotest.failf "queued job failed: %s" msg
           | Client.Job_timed_out -> Alcotest.fail "queued job timed out");
          (* ... and new submissions are refused while draining *)
          (try
             ignore
               (Client.submit conn
                  (Protocol.default_request Protocol.Detect
                     (Protocol.App "Dynarray")));
             Alcotest.fail "submit accepted during drain"
           with Client.Error _ -> ());
          ignore running))

(* ------------------------------------------------------------------ *)
(* (g) stats: the daemon exposes a parseable metrics snapshot          *)
(* ------------------------------------------------------------------ *)

let test_stats_snapshot () =
  with_server (fun socket_path ->
      with_client socket_path (fun conn ->
          let _ =
            completed
              (Client.submit_wait conn
                 (Protocol.default_request Protocol.Detect (Protocol.App "Dynarray")))
          in
          let snap = Failatom_obs.Obs.parse_json (Client.stats conn) in
          let counter name =
            List.assoc_opt name snap.Failatom_obs.Obs.s_counters
          in
          Alcotest.(check bool) "jobs_accepted counted" true
            (match counter "server.jobs_accepted" with
             | Some n -> n >= 1
             | None -> false);
          Alcotest.(check bool) "jobs_completed counted" true
            (match counter "server.jobs_completed" with
             | Some n -> n >= 1
             | None -> false)))

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "round trip matrix (all apps, both flavors)" `Slow
      test_round_trip_matrix;
    Alcotest.test_case "campaign mode matches detect mode" `Slow
      test_campaign_mode_matches_detect;
    Alcotest.test_case "mask mode returns wrap targets and P_C" `Quick
      test_mask_mode;
    Alcotest.test_case "inline program == registry app" `Quick test_inline_program;
    Alcotest.test_case "resubmission is a cache hit" `Quick test_cache_hit;
    Alcotest.test_case "cache is keyed by configuration" `Quick
      test_cache_keyed_by_config;
    Alcotest.test_case "concurrent clients" `Slow test_concurrent_clients;
    Alcotest.test_case "malformed requests are rejected" `Quick
      test_malformed_requests;
    Alcotest.test_case "connection survives a rejected submit" `Quick
      test_connection_survives_errors;
    Alcotest.test_case "job timeout" `Quick test_job_timeout;
    Alcotest.test_case "cancel a running job" `Quick test_cancel_running_job;
    Alcotest.test_case "per-run timeout recorded in result" `Quick
      test_run_timeout_in_result;
    Alcotest.test_case "shutdown drains gracefully" `Quick test_shutdown_drains;
    Alcotest.test_case "stats snapshot is parseable" `Quick test_stats_snapshot ]
