(* The pipeline's core guarantees, property-tested over randomly
   generated programs.

   A generator produces small class-based programs whose methods are
   arbitrary sequences of the primitives that matter to failure
   atomicity — field mutations, calls to earlier methods, allocations,
   and guard calls — together with a driver that exercises every
   method.  Over these programs we check the reproduction's two central
   properties:

   1. closure: after masking, re-detection finds no failure non-atomic
      method with an original name (the paper's §4.2 claim),
   2. flavor equivalence: the source-weaving and load-time-filter
      implementations assign identical verdicts (paper §5),
   3. snapshot equivalence: eager and copy-on-write snapshot modes
      assign bitwise-identical marks (the cow fast path is an
      optimization, never a semantic change),
   4. masking idempotence: masking an already-masked program changes no
      verdicts, and
   5. image determinism: repeated instantiations of one compiled image
      produce identical outputs.

   Baseline determinism: generated validations can never fire on the
   real path (the [boom] try/catch handles its exception locally and
   deterministically), so every generated program runs clean
   uninstrumented. *)

open Failatom_core

type action =
  | Mutate of int (* this.f<i> = this.f<i> + 1 *)
  | Call of int (* this.m<j>() for j < current index *)
  | Alloc (* var t<n> = new Obj(...) *)
  | Guard (* this.guard() — validating leaf, never fires in baseline *)
  | CatchCall of int
      (* try { this.m<j>(); } catch (RuntimeException e) — swallows
         injected runtime exceptions but not injected errors *)
  | CatchBoom
      (* try { this.boom(); } catch — a real exceptional return on the
         baseline path, handled locally so the baseline stays clean *)

let gen_method_body ~index =
  let open QCheck2.Gen in
  let action =
    oneof
      ([ map (fun i -> Mutate i) (int_range 0 2);
         return Alloc;
         return Guard;
         return CatchBoom ]
      @ (if index > 0 then
           [ map (fun j -> Call j) (int_range 0 (index - 1));
             map (fun j -> CatchCall j) (int_range 0 (index - 1)) ]
         else []))
  in
  list_size (1 -- 5) action

let gen_program_spec =
  QCheck2.Gen.(
    int_range 1 5 >>= fun n ->
    let rec build i acc =
      if i = n then return (List.rev acc)
      else gen_method_body ~index:i >>= fun body -> build (i + 1) (body :: acc)
    in
    build 0 [])

let render_spec (spec : action list list) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    {|
class Obj {
  field tag;
  method init(tag) { this.tag = tag; return this; }
}
class W {
  field f0;
  field f1;
  field f2;
  method init() { this.f0 = 0; this.f1 = 0; this.f2 = 0; return this; }
  method guard() throws IllegalStateException {
    if (this.f0 < 0 - 1000000) { throw new IllegalStateException("impossible"); }
    return null;
  }
  method boom() throws IllegalStateException {
    throw new IllegalStateException("boom");
  }
|};
  List.iteri
    (fun i body ->
      Buffer.add_string buf (Printf.sprintf "  method m%d() {\n" i);
      List.iteri
        (fun k action ->
          Buffer.add_string buf
            (match action with
             | Mutate f -> Printf.sprintf "    this.f%d = this.f%d + 1;\n" f f
             | Call j -> Printf.sprintf "    this.m%d();\n" j
             | Alloc -> Printf.sprintf "    var t%d = new Obj(%d);\n" k k
             | Guard -> "    this.guard();\n"
             | CatchCall j ->
               Printf.sprintf
                 "    try { this.m%d(); } catch (RuntimeException e%d) { this.f0 \
                  = this.f0 + 1; }\n"
                 j k
             | CatchBoom ->
               Printf.sprintf
                 "    try { this.boom(); } catch (IllegalStateException e%d) { \
                  this.f1 = this.f1 + 1; }\n"
                 k))
        body;
      Buffer.add_string buf "    return null;\n  }\n")
    spec;
  Buffer.add_string buf "}\nfunction main() {\n  var w = new W();\n";
  List.iteri (fun i _ -> Buffer.add_string buf (Printf.sprintf "  w.m%d();\n" i)) spec;
  Buffer.add_string buf "  println(w.f0 + \"/\" + w.f1 + \"/\" + w.f2);\n  return 0;\n}\n";
  Buffer.contents buf

let print_spec spec = render_spec spec

let verdict_map classification =
  List.map
    (fun (r : Classify.method_report) ->
      (Method_id.to_string r.Classify.id, Classify.verdict_name r.Classify.verdict))
    (Classify.reports classification)

(* Nightly CI sets QCHECK_LONG=1 (and a rotating QCHECK_SEED), which
   multiplies every property's count by this factor. *)
let long_factor = 10

let prop_masking_closes =
  QCheck2.Test.make ~name:"masking closes on random programs" ~count:25
    ~long_factor ~print:print_spec gen_program_spec
    (fun spec ->
      let program = Failatom_minilang.Minilang.parse (render_spec spec) in
      let config = Config.default in
      let outcome = Mask.correct ~config program in
      let d2 =
        Detect.run ~config ~prepare:(Mask.register_hooks config) outcome.Mask.corrected
      in
      let residual =
        List.filter
          (fun (id : Method_id.t) -> Source_weaver.demangle id.Method_id.name = None)
          (Classify.non_atomic_methods (Classify.classify d2))
      in
      if residual = [] then true
      else
        QCheck2.Test.fail_reportf "residual non-atomic: %s"
          (String.concat ", " (List.map Method_id.to_string residual)))

let prop_flavor_equivalence =
  QCheck2.Test.make ~name:"flavors agree on random programs" ~count:25
    ~long_factor ~print:print_spec gen_program_spec
    (fun spec ->
      let program = Failatom_minilang.Minilang.parse (render_spec spec) in
      let via flavor = verdict_map (Classify.classify (Detect.run ~flavor program)) in
      let s = via Detect.Source_weaving and b = via Detect.Load_time_filters in
      if s = b then true
      else
        QCheck2.Test.fail_reportf "source=%s@.binary=%s"
          (String.concat ";" (List.map (fun (m, v) -> m ^ "=" ^ v) s))
          (String.concat ";" (List.map (fun (m, v) -> m ^ "=" ^ v) b)))

(* Every run of the instrumented program (probe run) reproduces the
   baseline output: instrumentation transparency on random shapes. *)
let prop_transparent =
  QCheck2.Test.make ~name:"instrumentation transparent on random programs" ~count:25
    ~long_factor ~print:print_spec gen_program_spec
    (fun spec ->
      let program = Failatom_minilang.Minilang.parse (render_spec spec) in
      (Detect.run program).Detect.transparent)

(* Copy-on-write and eager snapshots are the same detector: every run
   record — injection point, marks, escape, output — must be bitwise
   identical, not merely equivalent verdicts. *)
let prop_snapshot_equivalence =
  QCheck2.Test.make ~name:"cow and eager snapshots mark identically" ~count:25
    ~long_factor ~print:print_spec gen_program_spec
    (fun spec ->
      let program = Failatom_minilang.Minilang.parse (render_spec spec) in
      let via mode =
        Detect.run ~config:{ Config.default with Config.snapshot_mode = mode } program
      in
      let eager = via Config.Snapshot_eager and cow = via Config.Snapshot_cow in
      if eager.Detect.runs = cow.Detect.runs then true
      else QCheck2.Test.fail_reportf "cow marks differ from eager")

(* Masking is a fixed point: the corrected program P_C has no pure
   non-atomic method left under its original name, so correcting it
   again must wrap nothing and leave every verdict unchanged. *)
let prop_masking_idempotent =
  QCheck2.Test.make ~name:"masking is idempotent on random programs" ~count:15
    ~long_factor ~print:print_spec gen_program_spec
    (fun spec ->
      let program = Failatom_minilang.Minilang.parse (render_spec spec) in
      let config = Config.default in
      let prepare = Mask.register_hooks config in
      let once = Mask.correct ~config program in
      let twice = Mask.correct ~config ~prepare once.Mask.corrected in
      if not (Method_id.Set.is_empty twice.Mask.wrapped) then
        QCheck2.Test.fail_reportf "re-masking wrapped: %s"
          (String.concat ", "
             (List.map Method_id.to_string
                (Method_id.Set.elements twice.Mask.wrapped)))
      else
        let verdicts outcome =
          verdict_map
            (Classify.classify
               (Detect.run ~config ~prepare outcome.Mask.corrected))
        in
        if verdicts once = verdicts twice then true
        else QCheck2.Test.fail_reportf "verdicts changed under re-masking")

(* One compiled image, many instantiations: repeated runs must produce
   identical outputs (the contract behind failatom run --times N). *)
let prop_image_determinism =
  QCheck2.Test.make ~name:"image instantiations are deterministic" ~count:25
    ~long_factor ~print:print_spec gen_program_spec
    (fun spec ->
      let program = Failatom_minilang.Minilang.parse (render_spec spec) in
      let module C = Failatom_minilang.Compile in
      let run_image image =
        let vm = C.instantiate image in
        ignore (C.run_main vm);
        Failatom_minilang.Minilang.output vm
      in
      let image = C.image program in
      let first = run_image image in
      List.for_all (fun o -> String.equal o first)
        [ run_image image; run_image image; run_image (C.image program) ])

let suite =
  [ QCheck_alcotest.to_alcotest prop_masking_closes;
    QCheck_alcotest.to_alcotest prop_flavor_equivalence;
    QCheck_alcotest.to_alcotest prop_transparent;
    QCheck_alcotest.to_alcotest prop_snapshot_equivalence;
    QCheck_alcotest.to_alcotest prop_masking_idempotent;
    QCheck_alcotest.to_alcotest prop_image_determinism ]
