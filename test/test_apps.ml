(* Workload application tests: every registered application must run
   standalone, pass its own assertions, survive instrumentation
   transparently, and produce the expected set of failure non-atomic
   methods (a regression guard on the detector AND on the workloads).

   The heavier end-to-end sweep over all 16 applications lives in the
   bench harness; here each app is detected once, in the flavor the
   paper used for its suite. *)

open Failatom_core
open Failatom_apps

(* Expected non-atomic methods per application: (pure, conditional). *)
let expected : (string * (string list * string list)) list =
  [ ( "adaptorChain",
      ( [ "BatchAdaptor.consume"; "BatchAdaptor.flush"; "FilterAdaptor.consume";
          "RoundRobinAdaptor.consume"; "StampAdaptor.consume";
          "ThrottleAdaptor.consume" ],
        (* KeyRouterAdaptor feeds sinks whose consume is atomic, so it
           classifies atomic in this wiring *)
        [ "CountingAdaptor.consume"; "MapAdaptor.consume"; "ScComponent.emit" ] ) );
    ( "stdQ",
      ( [ "PriorityQueue.popMin"; "PriorityQueue.push"; "PriorityQueue.siftDown";
          "PriorityQueue.siftUp"; "RingDeque.pushBack"; "RingDeque.pushFront" ],
        [ "BoundedQueue.enqueue"; "StdQueue.enqueueFront" ] ) );
    ( "CircularList",
      ( [ "CircularIter.advance"; "CircularList.addFront"; "CircularList.init";
          "CircularList.rotate" ],
        [] ) );
    ( "Dynarray",
      ( [ "Dynarray.add"; "Dynarray.insertAt"; "Dynarray.removeRange" ],
        [ "SortedDynarray.insertSorted" ] ) );
    ( "HashedMap",
      ( [ "HashedMap.put"; "HashedMap.putAll"; "HashedMap.rehash" ], [] ) );
    ( "HashedSet",
      ( [ "HashedMap.put"; "HashedMap.rehash"; "HashedSet.includeAll" ],
        [ "HashedSet.include" ] ) );
    ( "LLMap", ( [ "LLMap.get"; "LLMap.merge"; "LLMap.remove" ], [] ) );
    ( "LinkedBuffer",
      ( [ "LinkedBuffer.append"; "LinkedBuffer.appendAll"; "LinkedBuffer.drain";
          "LinkedBuffer.init"; "LinkedBuffer.take" ],
        [] ) );
    ( "LinkedList",
      ( [ "LinkedList.addAllFirst"; "LinkedList.addFirst"; "LinkedList.insertAt";
          "LinkedList.removeAt" ],
        [ "ListStack.push" ] ) );
    ( "RBMap",
      ( [ "RBEngine.collectKeys"; "RBEngine.deleteNode"; "RBEngine.fixupAfterDelete";
          "RBEngine.fixupAfterInsert"; "RBEngine.insertNode"; "RBMap.deleteKey";
          "RBMap.removeKey" ],
        [ "RBMap.put" ] ) );
    ( "RBTree",
      ( [ "RBEngine.collectKeys"; "RBEngine.deleteNode"; "RBEngine.fixupAfterDelete";
          "RBEngine.fixupAfterInsert"; "RBEngine.insertNode"; "RBTree.insertAll" ],
        [ "RBTree.insert"; "RBTree.removeElem" ] ) ) ]

let all_apps_present () =
  Alcotest.(check int) "16 applications registered" 16 (List.length Registry.all);
  Alcotest.(check int) "6 C++ apps" 6
    (List.length (List.filter (fun a -> a.Registry.suite = Registry.Cpp) Registry.all));
  List.iter
    (fun (name, _) ->
      if Registry.find name = None then Alcotest.failf "app %s missing" name)
    expected

let run_standalone (app : Registry.t) () =
  let output = Harness.run_app app in
  Alcotest.(check bool) (app.Registry.name ^ " produced output") true
    (String.length output > 0)

let detect_and_check (name, (pure, conditional)) () =
  let app = Option.get (Registry.find name) in
  let o = Harness.detect_app app in
  Alcotest.(check bool) "transparent" true o.Harness.detection.Detect.transparent;
  Alcotest.(check bool) "injections happened" true
    (o.Harness.detection.Detect.injections > 0);
  let names v =
    List.map Method_id.to_string
      (match v with
       | `Pure -> Classify.pure_methods o.Harness.classification
       | `Cond -> Classify.conditional_methods o.Harness.classification)
  in
  Alcotest.(check (list string)) (name ^ " pure set") pure (names `Pure);
  Alcotest.(check (list string)) (name ^ " conditional set") conditional (names `Cond)

(* §6.1 case study: the trivial fixes reduce the pure non-atomic set of
   LinkedList to the single method that has no local fix. *)
let test_case_study_reduction () =
  let buggy = Harness.detect_app (Option.get (Registry.find "LinkedList")) in
  let fixed = Harness.detect_app Registry.linked_list_fixed in
  let pure o = Classify.pure_methods o.Harness.classification in
  Alcotest.(check int) "buggy pure count" 4 (List.length (pure buggy));
  Alcotest.(check (list string)) "fixed pure set" [ "LinkedList.addAllFirst" ]
    (List.map Method_id.to_string (pure fixed));
  (* call-weighted share also collapses, as in the paper (7.8% -> <0.2%
     in their numbers; here the trend, not the absolute value) *)
  let pure_share o =
    let c = Classify.call_counts o.Harness.classification in
    float_of_int c.Classify.pure /. float_of_int (Classify.total c)
  in
  Alcotest.(check bool) "call share shrinks" true (pure_share fixed < pure_share buggy)

(* Both flavors agree on a full workload application. *)
let test_flavor_agreement_on_app () =
  let app = Option.get (Registry.find "Dynarray") in
  let source = Harness.detect_app ~flavor:Detect.Source_weaving app in
  let binary = Harness.detect_app ~flavor:Detect.Load_time_filters app in
  let sig_of o =
    List.map
      (fun (r : Classify.method_report) ->
        (Method_id.to_string r.Classify.id, Classify.verdict_name r.Classify.verdict))
      (Classify.reports o.Harness.classification)
  in
  Alcotest.(check (list (pair string string))) "flavors agree" (sig_of source)
    (sig_of binary)

let suite =
  Alcotest.test_case "registry complete" `Quick all_apps_present
  :: List.map
       (fun app ->
         Alcotest.test_case ("standalone " ^ app.Registry.name) `Quick
           (run_standalone app))
       Registry.catalog
  @ List.map
      (fun ((name, _) as entry) ->
        Alcotest.test_case ("detect " ^ name) `Slow (detect_and_check entry))
      expected
  @ [ Alcotest.test_case "case study reduction" `Slow test_case_study_reduction;
      Alcotest.test_case "flavor agreement on app" `Slow test_flavor_agreement_on_app ]
