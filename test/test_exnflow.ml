(* The static exception-flow analysis (lib/core/exnflow.ml) and the
   campaign pruning built on it (lib/core/prune.ml, Detect's coalesce
   and drop modes).

   The load-bearing property is soundness of coalescing: under
   [--prune coalesce] the detection result — every run record, mark for
   mark, byte for byte — must equal the unpruned campaign's, on every
   bundled application, under both flavors and both execution engines.
   The differential matrix below checks exactly that.

   Drop mode's premise (a point whose exception the method provably
   cannot raise never fires naturally) is property-tested over random
   programs: an observer filter watches every exceptional method return
   of an exhaustive unpruned campaign and asserts the escaping class is
   in the method's may-raise set (injected exceptions excluded by their
   marker message).

   The may-raise unit tests pin the lattice itself: raise sites,
   try/catch subtraction, catch-var rethrow bounds, call-graph closure
   through dispatch, and the constructor OOM convention. *)

open Failatom_core
open Failatom_minilang
module Registry = Failatom_apps.Registry

let parse = Minilang.parse

let flow_of program =
  let img = Compile.image program in
  Exnflow.analyze img program

let mid cls name = Method_id.make cls name

let check_set what expected actual =
  Alcotest.(check (list string)) what (List.sort compare expected) actual

(* ------------------------------------------------------------------ *)
(* May-raise lattice units                                             *)
(* ------------------------------------------------------------------ *)

let test_may_raise_sites () =
  let program =
    parse
      {|
class C {
  method init() { return this; }
  method divide(a, b) { return a / b; }
  method index(a, i) { return a[i]; }
  method swallow(a, b) {
    try { return a / b; } catch (ArithmeticException e) { return 0; }
    return 0;
  }
  method rethrow(a, b) {
    try { return a / b; } catch (ArithmeticException e) { throw e; }
    return 0;
  }
  method chain(a, b) { return this.divide(a, b); }
  method fresh() { return new C(); }
}
function main() { var c = new C(); c.divide(6, 3); return 0; }
|}
  in
  let f = flow_of program in
  check_set "divide" [ "ArithmeticException" ] (Exnflow.may_raise f (mid "C" "divide"));
  check_set "index"
    [ "IndexOutOfBoundsException"; "NullPointerException" ]
    (Exnflow.may_raise f (mid "C" "index"));
  check_set "swallow handles its exception" [] (Exnflow.may_raise f (mid "C" "swallow"));
  check_set "rethrow keeps the caught class" [ "ArithmeticException" ]
    (Exnflow.may_raise f (mid "C" "rethrow"));
  check_set "call-graph closure" [ "ArithmeticException" ]
    (Exnflow.may_raise f (mid "C" "chain"));
  (* constructors charge the allocation *)
  check_set "init carries OOM" [ "OutOfMemoryError" ]
    (Exnflow.may_raise f (mid "C" "init"));
  check_set "new charges OOM plus init effects" [ "OutOfMemoryError" ]
    (Exnflow.may_raise f (mid "C" "fresh"));
  Alcotest.(check bool)
    "SOE stays unmodelled" true
    (Exnflow.can_raise f (mid "C" "swallow") "StackOverflowError")

let test_dispatch_conservative () =
  let program =
    parse
      {|
class Base {
  method init() { return this; }
  method work() { return 1; }
  method drive(o) { return o.work(); }
}
class Risky {
  method init() { return this; }
  method work() { throw new IllegalStateException("no"); }
}
function main() { var b = new Base(); b.drive(b); return 0; }
|}
  in
  let f = flow_of program in
  (* drive's receiver is untyped: both work implementations are
     dispatch targets, so Risky's throw poisons Base.drive *)
  Alcotest.(check bool)
    "dispatch union reaches the caller" true
    (Exnflow.can_raise f (mid "Base" "drive") "IllegalStateException");
  check_set "the pure target stays clean" [] (Exnflow.may_raise f (mid "Base" "work"))

(* Exnflow's never-throw set must contain everything the syntactic
   baseline proves — the precision comparison promised in purity.mli. *)
let test_subsumes_syntactic_purity () =
  List.iter
    (fun (app : Registry.t) ->
      let program = parse app.Registry.source in
      let syntactic = Purity.never_throws_syntactic program in
      let precise = Exnflow.never_throws (flow_of program) in
      Method_id.Set.iter
        (fun id ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s stays never-throwing" app.Registry.name
               (Method_id.to_string id))
            true
            (Method_id.Set.mem id precise))
        syntactic)
    Registry.catalog

(* ------------------------------------------------------------------ *)
(* Blindness partition                                                 *)
(* ------------------------------------------------------------------ *)

let test_partition () =
  let program =
    parse
      {|
class C {
  method init() { return this; }
  method open() { return 1; }
  method caller() {
    try { this.open(); } catch (NullPointerException e) { return 0 - 1; }
    return 0;
  }
}
function main() { var c = new C(); c.caller(); return 0; }
|}
  in
  let f = flow_of program in
  (* caller's clause discriminates NPE from the rest of the universe, so
     NPE cannot share a group with an uncatchable class at open's
     entry; two generic runtime exceptions caught alike (neither is an
     NPE) can. *)
  Alcotest.(check bool)
    "caught vs uncaught split" false
    (Exnflow.blind_pair f (mid "C" "open") "NullPointerException"
       "IllegalStateException");
  let groups =
    Exnflow.partition f (mid "C" "open")
      [ "NullPointerException"; "IllegalStateException"; "UnsupportedOperationException" ]
  in
  Alcotest.(check bool)
    "NPE isolated, the alike-caught pair grouped" true
    (List.mem [ "NullPointerException" ] groups
    && List.mem [ "IllegalStateException"; "UnsupportedOperationException" ] groups);
  (* concatenation is a permutation of the input *)
  Alcotest.(check int) "no class lost" 3 (List.length (List.concat groups))

(* ------------------------------------------------------------------ *)
(* The soundness gate: coalesce ≡ off, everywhere                      *)
(* ------------------------------------------------------------------ *)

let with_engine engine f =
  let saved = !Compile.default_engine in
  Compile.default_engine := engine;
  Fun.protect ~finally:(fun () -> Compile.default_engine := saved) f

let detect ~flavor ~prune program =
  Detect.run ~config:{ Config.default with Config.prune } ~flavor program

let test_differential_matrix () =
  List.iter
    (fun (app : Registry.t) ->
      let program = parse app.Registry.source in
      List.iter
        (fun engine ->
          with_engine engine @@ fun () ->
          List.iter
            (fun flavor ->
              let off = detect ~flavor ~prune:Config.Prune_off program in
              let co = detect ~flavor ~prune:Config.Prune_coalesce program in
              let label what =
                Printf.sprintf "%s/%s/%s: %s" app.Registry.name
                  (Detect.flavor_name flavor)
                  (match engine with
                   | Compile.Closures -> "closures"
                   | Compile.Bytecode -> "bytecode")
                  what
              in
              Alcotest.(check bool)
                (label "runs bitwise-identical") true
                (off.Detect.runs = co.Detect.runs);
              Alcotest.(check int)
                (label "injections")
                off.Detect.injections co.Detect.injections;
              Alcotest.(check bool)
                (label "transparent")
                off.Detect.transparent co.Detect.transparent)
            [ Detect.Source_weaving; Detect.Load_time_filters ])
        [ Compile.Closures; Compile.Bytecode ])
    Registry.catalog

(* Coalescing must actually coalesce: the plan built from a trace run
   keeps every threshold exactly once and removes a meaningful share of
   runs on a real app. *)
let test_plan_census () =
  let app = Option.get (Registry.find "RBTree") in
  let program = parse app.Registry.source in
  let flow = flow_of program in
  let config = Config.default in
  let analyzer = Analyzer.analyze config program in
  let compiled = Detect.compile Detect.Source_weaving program in
  let _, extras =
    Detect.run_once_ext ~trace:true compiled config analyzer
      ~prepare:(fun _ -> ())
      ~threshold:0
  in
  let plan = Prune.build flow ~entries:extras.Detect.entries in
  let thresholds =
    List.concat_map (fun g -> List.map fst g.Prune.members) plan.Prune.groups
  in
  Alcotest.(check (list int))
    "thresholds are exactly 1..P"
    (List.init plan.Prune.total_points (fun i -> i + 1))
    (List.sort compare thresholds);
  Alcotest.(check int) "frontier" (plan.Prune.total_points + 1) plan.Prune.frontier;
  let eliminated =
    float_of_int (Prune.coalesced_away plan)
    /. float_of_int (plan.Prune.total_points + 1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "RBTree eliminates >= 30%% of runs (got %.1f%%)"
       (100. *. eliminated))
    true (eliminated >= 0.30);
  (* seeded order: every first-visit group precedes every repeat *)
  let rec first_block = function
    | [] -> true
    | g :: rest ->
      if g.Prune.first_visit then first_block rest
      else List.for_all (fun g -> not g.Prune.first_visit) rest
  in
  Alcotest.(check bool) "first visits lead the order" true
    (first_block plan.Prune.order)

(* Drop is a semantic mode (it renumbers points), but it only removes
   injections: any method non-atomic under drop must already be
   non-atomic under off. *)
let test_drop_subset () =
  let app = Option.get (Registry.find "LinkedList") in
  let program = parse app.Registry.source in
  let off = detect ~flavor:Detect.Source_weaving ~prune:Config.Prune_off program in
  let drop = detect ~flavor:Detect.Source_weaving ~prune:Config.Prune_drop program in
  Alcotest.(check bool)
    "drop removes runs" true
    (drop.Detect.injections < off.Detect.injections);
  Alcotest.(check bool) "still transparent" true drop.Detect.transparent;
  let non_atomic d =
    List.map Method_id.to_string
      (Classify.non_atomic_methods (Classify.classify d))
  in
  let off_set = non_atomic off in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "%s non-atomic under off too" m)
        true (List.mem m off_set))
    (non_atomic drop)

(* ------------------------------------------------------------------ *)
(* Drop-soundness property: dropped points never fire naturally        *)
(* ------------------------------------------------------------------ *)

let long_factor = 10

(* Every exceptional method return of an exhaustive unpruned campaign,
   observed through a JWG-style filter: the escaping class must be in
   the method's static may-raise set, unless the exception is one the
   injector manufactured (marker message "injected").  This is exactly
   the premise of [--prune drop] — a point whose class the analysis
   rules out can never fire on its own. *)
let prop_drop_soundness =
  QCheck2.Test.make ~name:"may-raise covers every natural escape" ~count:25
    ~long_factor ~print:Test_random_pipeline.print_spec
    Test_random_pipeline.gen_program_spec (fun spec ->
      let program = parse (Test_random_pipeline.render_spec spec) in
      let flow = flow_of program in
      let observed = ref [] in
      let observer =
        { Failatom_runtime.Vm.filt_name = "exnflow-observer";
          pre = (fun _ _ _ _ -> Failatom_runtime.Vm.Proceed);
          post =
            (fun _ m _ _ outcome ->
              (match outcome with
               | Error e
                 when not (String.equal e.Failatom_runtime.Vm.message "injected")
                 ->
                 observed :=
                   ( Method_id.make m.Failatom_runtime.Vm.meth_class
                       m.Failatom_runtime.Vm.meth_name,
                     e.Failatom_runtime.Vm.exn_class )
                   :: !observed
               | _ -> ());
              Failatom_runtime.Vm.Pass);
          unwind = Failatom_runtime.Vm.no_unwind }
      in
      let _ =
        Detect.run
          ~config:{ Config.default with Config.prune = Config.Prune_off }
          ~flavor:Detect.Load_time_filters
          ~prepare:(fun vm ->
            Failatom_runtime.Vm.attach_filter_everywhere vm observer)
          program
      in
      match
        List.find_opt (fun (m, e) -> not (Exnflow.can_raise flow m e)) !observed
      with
      | None -> true
      | Some (m, e) ->
        QCheck2.Test.fail_reportf "%s escaped %s but may-raise excludes it" e
          (Method_id.to_string m))

let suite =
  [ Alcotest.test_case "may-raise: raise sites and closure" `Quick
      test_may_raise_sites;
    Alcotest.test_case "may-raise: dispatch is conservative" `Quick
      test_dispatch_conservative;
    Alcotest.test_case "never-throws subsumes syntactic purity" `Quick
      test_subsumes_syntactic_purity;
    Alcotest.test_case "blindness partition" `Quick test_partition;
    Alcotest.test_case "coalesce == off on every app/flavor/engine" `Slow
      test_differential_matrix;
    Alcotest.test_case "plan census and seeded order" `Quick test_plan_census;
    Alcotest.test_case "drop: fewer runs, verdicts a subset" `Quick
      test_drop_subset;
    QCheck_alcotest.to_alcotest prop_drop_soundness ]
