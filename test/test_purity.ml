(* Tests for the static exception-freedom analysis and its integration
   with the analyzer and detector. *)

open Failatom_core

let parse = Failatom_minilang.Minilang.parse

let src =
  {|
class Pure {
  field n;
  // never throws: reads/writes this, safe builtins only
  method peek() { return this.n; }
  method poke(v) { this.n = v; return null; }
  method describe() { return "n=" + str(this.n); }
  // calls only never-throwing methods
  method relay(v) { this.poke(v); return this.peek(); }
  // throws directly
  method explode() throws IllegalStateException {
    throw new IllegalStateException("boom");
  }
  // division can raise ArithmeticException
  method ratio(a, b) { return a / b; }
  // indexing can raise
  method pick(arr) { return arr[0]; }
  // field access on a non-this receiver can NPE
  method spy(other) { return other.n; }
  // allocation may fail
  method mkobj() throws OutOfMemoryError { return new Pure(); }
  // calls a thrower
  method trigger() throws IllegalStateException { return this.explode(); }
  // try/catch does not launder a throwing body
  method guarded() {
    try { this.explode(); } catch (IllegalStateException e) { }
    return null;
  }
}
function main() {
  var p = new Pure();
  p.poke(3);
  check(p.relay(4) == 4, "relay");
  check(p.describe() == "n=4", "describe");
  check(p.ratio(8, 2) == 4, "ratio");
  check(p.pick([7]) == 7, "pick");
  var q = new Pure();
  q.poke(1);
  check(p.spy(q) == 1, "spy");
  p.mkobj();
  try { p.trigger(); } catch (IllegalStateException e) { }
  p.guarded();
  println("done");
  return 0;
}
|}

let never = lazy (Purity.never_throws (parse src))

let check_never name expected () =
  let got = Method_id.Set.mem (Method_id.make "Pure" name) (Lazy.force never) in
  Alcotest.(check bool) name expected got

let test_set_contents () =
  let names =
    List.map
      (fun (id : Method_id.t) -> id.Method_id.name)
      (Method_id.Set.elements (Lazy.force never))
  in
  Alcotest.(check (list string)) "exactly the pure methods"
    [ "describe"; "peek"; "poke"; "relay" ]
    (List.sort compare names)

(* The syntactic baseline dispatches by name: if ANY class defines a
   throwing [peek], no [peek] is considered exception-free.  The
   production analysis (Exnflow) keeps [Pure.peek] clean — its body
   cannot raise and injections into [Impostor.peek] have their own
   point — but a caller dispatching [peek] by name is still poisoned
   in both. *)
let test_dynamic_dispatch_conservatism () =
  let src2 =
    src
    ^ {|
class Impostor {
  field n;
  method peek() throws IllegalStateException {
    throw new IllegalStateException("impostor");
  }
}
|}
  in
  let program = parse src2 in
  let syntactic = Purity.never_throws_syntactic program in
  Alcotest.(check bool) "peek poisoned by impostor (syntactic)" false
    (Method_id.Set.mem (Method_id.make "Pure" "peek") syntactic);
  Alcotest.(check bool) "relay poisoned transitively (syntactic)" false
    (Method_id.Set.mem (Method_id.make "Pure" "relay") syntactic);
  Alcotest.(check bool) "poke still clean (syntactic)" true
    (Method_id.Set.mem (Method_id.make "Pure" "poke") syntactic);
  let precise = Purity.never_throws program in
  Alcotest.(check bool) "Pure.peek stays clean under exnflow" true
    (Method_id.Set.mem (Method_id.make "Pure" "peek") precise);
  Alcotest.(check bool) "Impostor.peek dirty under exnflow" false
    (Method_id.Set.mem (Method_id.make "Impostor" "peek") precise);
  (* relay dispatches [peek] by name: the impostor's definition is a
     possible target, so transitive poisoning survives the upgrade *)
  Alcotest.(check bool) "relay poisoned transitively (exnflow)" false
    (Method_id.Set.mem (Method_id.make "Pure" "relay") precise)

(* Inference removes injection points from provably-safe methods — and
   with them, the conservative false positives of paper §4.3: [relay]
   mutates via [poke] and is only ever exposed by injections into the
   provably exception-free [peek]/[poke], so inference re-classifies it
   as atomic. *)
let test_fewer_injections_with_inference () =
  let program = parse src in
  let base = Detect.run program in
  let config = { Config.default with Config.infer_exception_free = true } in
  let inferred = Detect.run ~config program in
  Alcotest.(check bool) "fewer injections" true
    (inferred.Detect.injections < base.Detect.injections);
  Alcotest.(check bool) "still transparent" true inferred.Detect.transparent;
  let relay = Method_id.make "Pure" "relay" in
  Alcotest.(check bool) "relay is a false positive without inference" true
    (Classify.verdict (Classify.classify base) relay = Some Classify.Pure_non_atomic);
  Alcotest.(check bool) "relay re-classified atomic with inference" true
    (Classify.verdict (Classify.classify inferred) relay = Some Classify.Atomic)

let test_injectable_empty_for_inferred () =
  let config = { Config.default with Config.infer_exception_free = true } in
  let analyzer = Analyzer.analyze config (parse src) in
  Alcotest.(check (list string)) "no injection points for peek" []
    (Analyzer.injectable_for analyzer (Method_id.make "Pure" "peek"));
  Alcotest.(check bool) "explode keeps its points" true
    (Analyzer.injectable_for analyzer (Method_id.make "Pure" "explode") <> [])

(* On the workload apps the inference shrinks the experiment while the
   non-atomic sets stay identical. *)
let test_inference_on_app () =
  let app = Option.get (Failatom_apps.Registry.find "LinkedList") in
  let program = parse app.Failatom_apps.Registry.source in
  let base = Detect.run program in
  let config = { Config.default with Config.infer_exception_free = true } in
  let inferred = Detect.run ~config program in
  Alcotest.(check bool) "fewer injections on LinkedList" true
    (inferred.Detect.injections < base.Detect.injections);
  let non_atomic d = Classify.non_atomic_methods (Classify.classify d) in
  Alcotest.(check (list string)) "same non-atomic set"
    (List.map Method_id.to_string (non_atomic base))
    (List.map Method_id.to_string (non_atomic inferred))

let suite =
  [ Alcotest.test_case "reader is exception-free" `Quick (check_never "peek" true);
    Alcotest.test_case "writer is exception-free" `Quick (check_never "poke" true);
    Alcotest.test_case "transitive cleanliness" `Quick (check_never "relay" true);
    Alcotest.test_case "throw poisons" `Quick (check_never "explode" false);
    Alcotest.test_case "division poisons" `Quick (check_never "ratio" false);
    Alcotest.test_case "indexing poisons" `Quick (check_never "pick" false);
    Alcotest.test_case "foreign receiver poisons" `Quick (check_never "spy" false);
    Alcotest.test_case "allocation poisons" `Quick (check_never "mkobj" false);
    Alcotest.test_case "transitive poisoning" `Quick (check_never "trigger" false);
    Alcotest.test_case "catch does not launder" `Quick (check_never "guarded" false);
    Alcotest.test_case "set contents" `Quick test_set_contents;
    Alcotest.test_case "dispatch conservatism" `Quick test_dynamic_dispatch_conservatism;
    Alcotest.test_case "fewer injections" `Quick test_fewer_injections_with_inference;
    Alcotest.test_case "injectable emptied" `Quick test_injectable_empty_for_inferred;
    Alcotest.test_case "inference on LinkedList" `Slow test_inference_on_app ]
