(* Tests of the sharded detection cluster (lib/cluster/): placement and
   work-stealing decisions, the persistent content-addressed store
   (round trip, crash hygiene, LRU byte-bound eviction), client connect
   backoff, the router against in-process shard servers (digest
   affinity, byte-identical results vs a single server, dead-shard
   failover), warm-store restarts, and — when the failatom binary is
   available via FAILATOM_EXE — the supervisor's respawn/redispatch and
   drain ordering with real shard processes. *)

open Failatom_apps
module Server = Failatom_server.Server
module Client = Failatom_server.Client
module Protocol = Failatom_server.Protocol
module Store = Failatom_cluster.Store
module Shard_map = Failatom_cluster.Shard_map
module Steal = Failatom_cluster.Steal
module Persist = Failatom_cluster.Persist
module Router = Failatom_cluster.Router
module Supervisor = Failatom_cluster.Supervisor

(* Unix sockets live in sun_path (~104 bytes), so build short names
   under the system temp dir rather than a nested dune sandbox path. *)
let fresh_name =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fa_clu_%d_%d%s" (Unix.getpid ()) !counter suffix)

let rm_rf dir =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun n -> go (Filename.concat p n)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then go dir

let detect_request app =
  { (Protocol.default_request Protocol.Detect (Protocol.App app.Registry.name)) with
    Protocol.infer = true }

let completed = function
  | Client.Completed (result, cached) -> (result, cached)
  | Client.Job_failed msg -> Alcotest.failf "job failed: %s" msg
  | Client.Job_cancelled -> Alcotest.fail "job unexpectedly cancelled"
  | Client.Job_timed_out -> Alcotest.fail "job unexpectedly timed out"

(* ------------------------------------------------------------------ *)
(* Placement: shard map and steal decisions                            *)
(* ------------------------------------------------------------------ *)

let test_shard_map () =
  (* stable *)
  let d = String.make 32 'a' in
  Alcotest.(check int)
    "same digest, same shard"
    (Shard_map.shard_of_digest ~shards:4 d)
    (Shard_map.shard_of_digest ~shards:4 d);
  (* in range, and every shard is somebody's home *)
  let hit = Array.make 4 false in
  for i = 0 to 199 do
    let digest = Digest.to_hex (Digest.string (string_of_int i)) in
    let s = Shard_map.shard_of_digest ~shards:4 digest in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
    hit.(s) <- true
  done;
  Alcotest.(check bool) "uniform enough" true (Array.for_all Fun.id hit);
  (* the real key population: every bundled app's digest.  This is the
     small, correlated key set that the old [leading-hex mod shards]
     placement skewed (one shard owned nothing in the cluster bench);
     rendezvous hashing must give every shard at least one home app. *)
  let app_hits = Array.make 4 0 in
  List.iter
    (fun (app : Registry.t) ->
      match Shard_map.digest_of_spec (Protocol.App app.Registry.name) with
      | None -> Alcotest.failf "no digest for bundled app %s" app.Registry.name
      | Some digest ->
        let s = Shard_map.shard_of_digest ~shards:4 digest in
        app_hits.(s) <- app_hits.(s) + 1)
    Registry.catalog;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d owns at least one app" i)
        true (n > 0))
    app_hits;
  (* job ids *)
  Alcotest.(check string) "global id" "s2-j7" (Shard_map.global_job_id ~shard:2 "j7");
  Alcotest.(check (option (pair int string)))
    "parse inverse"
    (Some (2, "j7"))
    (Shard_map.parse_job_id "s2-j7");
  Alcotest.(check (option (pair int string)))
    "non-cluster id" None (Shard_map.parse_job_id "j7");
  (* the client-side digest matches what the server caches under *)
  let app = List.hd Registry.catalog in
  (match Shard_map.digest_of_spec (Protocol.App app.Registry.name) with
   | None -> Alcotest.fail "no digest for a bundled app"
   | Some digest ->
     let program = Failatom_minilang.Minilang.parse app.Registry.source in
     Alcotest.(check string)
       "digest is the program digest"
       (Failatom_minilang.Minilang.program_digest program)
       digest);
  Alcotest.(check (option string))
    "unknown app has no digest" None
    (Shard_map.digest_of_spec (Protocol.App "no-such-app"))

let test_map_file () =
  let base = fresh_name ".sock" in
  let map =
    { Shard_map.m_router = base;
      m_shards =
        [ { Shard_map.e_socket = base ^ ".shard0"; e_pid = 41 };
          { Shard_map.e_socket = base ^ ".shard1"; e_pid = 42 } ] }
  in
  Shard_map.write_map ~base map;
  (match Shard_map.read_map ~base with
   | None -> Alcotest.fail "map did not read back"
   | Some m ->
     Alcotest.(check string) "router" base m.Shard_map.m_router;
     Alcotest.(check (list (pair string int)))
       "shards"
       [ (base ^ ".shard0", 41); (base ^ ".shard1", 42) ]
       (List.map
          (fun e -> (e.Shard_map.e_socket, e.Shard_map.e_pid))
          m.Shard_map.m_shards));
  Shard_map.remove_map ~base;
  Alcotest.(check bool)
    "map removed" true
    (Shard_map.read_map ~base = None)

let test_steal_decisions () =
  let check name expected decision =
    Alcotest.(check (pair int bool))
      name expected
      (decision.Steal.target, decision.Steal.stolen)
  in
  let alive = [| true; true; true |] in
  check "idle home stays home" (1, false)
    (Steal.place ~home:1 ~load:[| 0; 0; 0 |] ~alive ~threshold:4);
  check "small imbalance stays home" (1, false)
    (Steal.place ~home:1 ~load:[| 0; 3; 0 |] ~alive ~threshold:4);
  check "big imbalance steals to idlest" (2, true)
    (Steal.place ~home:1 ~load:[| 2; 6; 1 |] ~alive ~threshold:4);
  check "dead home fails over to least-loaded live shard" (2, true)
    (Steal.place ~home:0 ~load:[| 0; 5; 1 |]
       ~alive:[| false; true; true |] ~threshold:4);
  check "all dead still yields a target" (0, false)
    (Steal.place ~home:0 ~load:[| 1; 1 |] ~alive:[| false; false |] ~threshold:4)

(* ------------------------------------------------------------------ *)
(* The persistent store                                                *)
(* ------------------------------------------------------------------ *)

let test_store_round_trip () =
  let dir = fresh_name ".store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Store.open_ ~dir ~max_bytes:(1024 * 1024) in
  Alcotest.(check (option string))
    "miss before store" None
    (Store.find store ~ns:"results" ~key:"k1");
  Store.store store ~ns:"results" ~key:"k1" "payload-one";
  Store.store store ~ns:"images" ~key:"k1" "payload-two";
  Alcotest.(check (option string))
    "hit" (Some "payload-one")
    (Store.find store ~ns:"results" ~key:"k1");
  Alcotest.(check (option string))
    "namespaces are disjoint" (Some "payload-two")
    (Store.find store ~ns:"images" ~key:"k1");
  (* a second open (a restart) sees the same data *)
  let store' = Store.open_ ~dir ~max_bytes:(1024 * 1024) in
  Alcotest.(check (option string))
    "survives reopen" (Some "payload-one")
    (Store.find store' ~ns:"results" ~key:"k1");
  (* hostile keys neither crash nor escape the directory *)
  List.iter
    (fun key ->
      Store.store store ~ns:"results" ~key "x";
      Alcotest.(check (option string))
        "hostile key rejected" None
        (Store.find store ~ns:"results" ~key))
    [ "../escape"; "a/b"; ""; "."; ".." ];
  (* tmp droppings from a crashed writer are swept at open *)
  let dropping = Filename.concat (Filename.concat dir "results") "k9.tmp.1.0" in
  let oc = open_out_bin dropping in
  output_string oc "junk";
  close_out oc;
  ignore (Store.open_ ~dir ~max_bytes:(1024 * 1024));
  Alcotest.(check bool) "tmp swept" false (Sys.file_exists dropping)

let test_store_lru_eviction () =
  let dir = fresh_name ".store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Store.open_ ~dir ~max_bytes:(10 * 1024) in
  let blob = String.make (4 * 1024) 'x' in
  List.iter
    (fun key ->
      Store.store store ~ns:"results" ~key blob;
      (* distinct mtimes order the LRU deterministically *)
      Thread.delay 0.05)
    [ "a"; "b"; "c"; "d" ];
  Alcotest.(check (option string))
    "oldest evicted" None
    (Store.find store ~ns:"results" ~key:"a");
  Alcotest.(check (option string))
    "second oldest evicted" None
    (Store.find store ~ns:"results" ~key:"b");
  Alcotest.(check bool)
    "recent entries survive" true
    (Store.find store ~ns:"results" ~key:"c" <> None
    && Store.find store ~ns:"results" ~key:"d" <> None);
  let count, bytes = Store.stats store in
  Alcotest.(check int) "two entries left" 2 count;
  Alcotest.(check bool) "under budget" true (bytes <= 10 * 1024);
  (* a find touches the entry: [c] is now more recent than [d] *)
  ignore (Store.find store ~ns:"results" ~key:"c");
  Thread.delay 0.05;
  Store.store store ~ns:"results" ~key:"e" blob;
  Alcotest.(check bool)
    "LRU victim is the untouched entry" true
    (Store.find store ~ns:"results" ~key:"d" = None
    && Store.find store ~ns:"results" ~key:"c" <> None)

(* ------------------------------------------------------------------ *)
(* Client connect backoff                                              *)
(* ------------------------------------------------------------------ *)

let test_client_backoff () =
  let socket_path = fresh_name ".sock" in
  (* no retries: a missing socket fails immediately *)
  (match Client.with_conn ~socket_path (fun _ -> ()) with
   | () -> Alcotest.fail "connected to nothing"
   | exception (Client.Error _ | Unix.Unix_error _) -> ());
  (* with retries: a server that appears late is waited for *)
  let starter =
    Thread.create
      (fun () ->
        Thread.delay 0.3;
        let server = Server.start (Server.default_config ~socket_path) in
        Server.wait server)
      ()
  in
  Client.with_conn ~retries:10 ~socket_path Client.shutdown;
  Thread.join starter;
  if Sys.file_exists socket_path then Sys.remove socket_path

(* ------------------------------------------------------------------ *)
(* Router over in-process shard servers                                *)
(* ------------------------------------------------------------------ *)

(* Starts [shards] in-process servers on shard sockets plus a router on
   the base socket — the full cluster data plane without child
   processes (the supervisor tests below cover real processes). *)
let with_router ?(shards = 2) ?(dead = []) f =
  let base = fresh_name ".sock" in
  let servers =
    List.init shards (fun i ->
        if List.mem i dead then None
        else
          Some
            (Server.start
               (Server.default_config
                  ~socket_path:(Shard_map.shard_socket ~base i))))
  in
  let router =
    Router.start
      (Router.default_config ~socket_path:base
         ~shard_sockets:(Array.init shards (Shard_map.shard_socket ~base)))
  in
  Fun.protect
    ~finally:(fun () ->
      Router.shutdown router;
      Router.wait router;
      List.iter
        (Option.iter (fun s ->
             Server.shutdown s;
             Server.wait s))
        servers;
      List.iteri
        (fun i _ ->
          let p = Shard_map.shard_socket ~base i in
          if Sys.file_exists p then Sys.remove p)
        servers)
    (fun () -> f base)

let test_router_affinity () =
  with_router (fun base ->
      let app = List.hd Registry.catalog in
      let submit () =
        Client.with_conn ~socket_path:base (fun conn ->
            let id, cached = Client.submit conn (detect_request app) in
            (match completed (Client.watch conn id) with
             | _ -> ());
            (id, cached))
      in
      let id1, cached1 = submit () in
      let id2, cached2 = submit () in
      Alcotest.(check bool) "first run computes" false cached1;
      Alcotest.(check bool) "resubmission is a cache hit" true cached2;
      let shard_of id =
        match Shard_map.parse_job_id id with
        | Some (s, _) -> s
        | None -> Alcotest.failf "job id %S is not shard-qualified" id
      in
      Alcotest.(check int)
        "same program lands on the same shard (affinity)" (shard_of id1)
        (shard_of id2);
      (* and it is the digest-selected home shard *)
      match Shard_map.digest_of_spec (Protocol.App app.Registry.name) with
      | None -> Alcotest.fail "app digest"
      | Some digest ->
        Alcotest.(check int)
          "affinity shard is the digest home"
          (Shard_map.shard_of_digest ~shards:2 digest)
          (shard_of id1))

(* Every bundled app, detect mode, routed through a 2-shard cluster:
   the result must be byte-identical (run log included) to what one
   standalone server computes. *)
let test_router_matches_single_server () =
  let single_socket = fresh_name ".sock" in
  let single = Server.start (Server.default_config ~socket_path:single_socket) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown single;
      Server.wait single)
    (fun () ->
      with_router (fun base ->
          List.iter
            (fun (app : Registry.t) ->
              let req = detect_request app in
              let via_cluster, _ =
                Client.with_conn ~socket_path:base (fun conn ->
                    completed (Client.submit_wait conn req))
              in
              let via_single, _ =
                Client.with_conn ~socket_path:single_socket (fun conn ->
                    completed (Client.submit_wait conn req))
              in
              Alcotest.(check string)
                (app.Registry.name ^ ": identical run log")
                via_single.Protocol.r_log via_cluster.Protocol.r_log;
              Alcotest.(check (list (pair string string)))
                (app.Registry.name ^ ": identical verdicts")
                via_single.Protocol.r_non_atomic via_cluster.Protocol.r_non_atomic;
              Alcotest.(check int)
                (app.Registry.name ^ ": identical injections")
                via_single.Protocol.r_injections via_cluster.Protocol.r_injections)
            Registry.catalog))

(* A job whose digest-selected home shard is dead must fail over to a
   live shard and still complete. *)
let test_router_dead_shard_failover () =
  let app = List.hd Registry.catalog in
  let home =
    match Shard_map.digest_of_spec (Protocol.App app.Registry.name) with
    | Some digest -> Shard_map.shard_of_digest ~shards:2 digest
    | None -> Alcotest.fail "app digest"
  in
  with_router ~dead:[ home ] (fun base ->
      let result, _ =
        Client.with_conn ~socket_path:base (fun conn ->
            completed (Client.submit_wait conn (detect_request app)))
      in
      Alcotest.(check bool)
        "job completed on the surviving shard" true
        (String.length result.Protocol.r_log > 0))

(* ------------------------------------------------------------------ *)
(* Warm store across restarts                                          *)
(* ------------------------------------------------------------------ *)

let test_warm_store_restart () =
  let dir = fresh_name ".store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let app = List.hd Registry.catalog in
  let req = detect_request app in
  let run_once () =
    let socket_path = fresh_name ".sock" in
    let store = Store.open_ ~dir ~max_bytes:(64 * 1024 * 1024) in
    let cache = Persist.cache store in
    ignore (Persist.prewarm store cache);
    let server =
      Server.start ~cache (Server.default_config ~socket_path)
    in
    Fun.protect
      ~finally:(fun () ->
        Server.shutdown server;
        Server.wait server)
      (fun () ->
        Client.with_conn ~socket_path (fun conn ->
            let id, cached = Client.submit conn req in
            let result, _ = completed (Client.watch conn id) in
            (result, cached)))
  in
  let first, cached1 = run_once () in
  (* a brand-new server process-equivalent: fresh cache, same store *)
  let second, cached2 = run_once () in
  Alcotest.(check bool) "first run computes" false cached1;
  Alcotest.(check bool)
    "restarted server answers from the store without re-running" true cached2;
  Alcotest.(check string)
    "byte-identical run log across restart" first.Protocol.r_log
    second.Protocol.r_log;
  Alcotest.(check (list (pair string string)))
    "identical verdicts across restart" first.Protocol.r_non_atomic
    second.Protocol.r_non_atomic

(* ------------------------------------------------------------------ *)
(* Supervisor with real shard processes (needs the failatom binary)    *)
(* ------------------------------------------------------------------ *)

let failatom_exe () =
  match Sys.getenv_opt "FAILATOM_EXE" with
  | Some exe when Sys.file_exists exe -> Some exe
  | _ -> None

let with_supervisor ?(shards = 2) ~exe f =
  let events = ref [] in
  let events_mutex = Mutex.create () in
  let record e =
    Mutex.lock events_mutex;
    events := e :: !events;
    Mutex.unlock events_mutex
  in
  let base = fresh_name ".sock" in
  let config =
    { (Supervisor.default_config ~base_socket:base ~exe) with
      Supervisor.on_event = record }
  in
  let sup = Supervisor.start config in
  let finish () =
    Supervisor.stop sup;
    Supervisor.wait sup
  in
  Fun.protect ~finally:finish (fun () -> f base sup);
  ignore shards;
  List.rev !events

let test_supervisor_kill_respawn_redispatch () =
  match failatom_exe () with
  | None -> ()  (* binary not wired in; covered by the CI smoke job *)
  | Some exe ->
    let app =
      List.find (fun a -> a.Registry.name = "xml2Cviasc2") Registry.catalog
    in
    let req =
      { (Protocol.default_request Protocol.Campaign
           (Protocol.App app.Registry.name)) with
        Protocol.infer = true }
    in
    let events =
      with_supervisor ~exe (fun base sup ->
          let result, _ =
            Client.with_conn ~retries:10 ~socket_path:base (fun conn ->
                let id, _cached = Client.submit conn req in
                (* kill the job's home shard while it runs *)
                (match Shard_map.parse_job_id id with
                 | Some (shard, _) ->
                   Unix.kill (Supervisor.shard_pids sup).(shard) Sys.sigkill
                 | None -> Alcotest.failf "unqualified cluster job id %S" id);
                completed (Client.watch conn id))
          in
          Alcotest.(check bool)
            "job survived its shard" true
            (String.length result.Protocol.r_log > 0);
          (* the supervisor must notice and respawn within its poll loop *)
          let deadline = Unix.gettimeofday () +. 15.0 in
          let rec wait_respawn () =
            let alive =
              Array.for_all
                (fun pid ->
                  pid > 0
                  && match Unix.kill pid 0 with
                     | () -> true
                     | exception Unix.Unix_error _ -> false)
                (Supervisor.shard_pids sup)
            in
            if alive then ()
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail "shard was not respawned"
            else begin
              Thread.delay 0.1;
              wait_respawn ()
            end
          in
          wait_respawn ())
    in
    Alcotest.(check bool)
      "a respawn was reported" true
      (List.exists
         (function Supervisor.Shard_respawned _ -> true | _ -> false)
         events)

let test_supervisor_drain_ordering () =
  match failatom_exe () with
  | None -> ()
  | Some exe ->
    let events = with_supervisor ~exe (fun _base _sup -> Thread.delay 0.2) in
    let index p =
      let rec go i = function
        | [] -> None
        | e :: _ when p e -> Some i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 events
    in
    let get name = function
      | Some i -> i
      | None -> Alcotest.failf "event %s never happened" name
    in
    let started i =
      get "shard started"
        (index (function Supervisor.Shard_started (j, _) -> j = i | _ -> false))
    in
    let router_started =
      get "router started" (index (( = ) Supervisor.Router_started))
    in
    let draining = get "draining" (index (( = ) Supervisor.Draining)) in
    let router_drained =
      get "router drained" (index (( = ) Supervisor.Router_drained))
    in
    let terminated i =
      get "shard terminated"
        (index (function Supervisor.Shard_terminated j -> j = i | _ -> false))
    in
    (* startup: every shard serves before the router opens *)
    Alcotest.(check bool)
      "shards start before the router" true
      (started 0 < router_started && started 1 < router_started);
    (* drain: router first, shards after *)
    Alcotest.(check bool) "drain begins" true (draining < router_drained);
    Alcotest.(check bool)
      "router drains before any shard is terminated" true
      (router_drained < terminated 0 && router_drained < terminated 1)

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "shard map: digests, homes, job ids" `Quick test_shard_map;
    Alcotest.test_case "map file round trip" `Quick test_map_file;
    Alcotest.test_case "steal decisions" `Quick test_steal_decisions;
    Alcotest.test_case "store round trip and crash hygiene" `Quick
      test_store_round_trip;
    Alcotest.test_case "store LRU byte-bound eviction" `Quick
      test_store_lru_eviction;
    Alcotest.test_case "client connect backoff" `Quick test_client_backoff;
    Alcotest.test_case "router: digest affinity and cache hits" `Quick
      test_router_affinity;
    Alcotest.test_case "router: byte-identical to a single server (all apps)"
      `Slow test_router_matches_single_server;
    Alcotest.test_case "router: dead home shard fails over" `Quick
      test_router_dead_shard_failover;
    Alcotest.test_case "warm store restart answers without re-running" `Quick
      test_warm_store_restart;
    Alcotest.test_case "supervisor: kill -9 mid-job, respawn + redispatch"
      `Slow test_supervisor_kill_respawn_redispatch;
    Alcotest.test_case "supervisor: drain ordering" `Slow
      test_supervisor_drain_ordering ]
