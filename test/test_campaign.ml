(* Tests of the parallel, resumable detection-campaign engine
   (lib/campaign/): determinism against the sequential detector,
   journal resume, and speculative over-run discard. *)

open Failatom_core
open Failatom_apps
module Campaign = Failatom_campaign.Campaign
module Scheduler = Failatom_campaign.Scheduler
module Journal = Failatom_campaign.Journal
module Progress = Failatom_campaign.Progress

let parse = Failatom_minilang.Minilang.parse

(* ------------------------------------------------------------------ *)
(* (a) determinism: campaign == sequential on every app, both flavors  *)
(* ------------------------------------------------------------------ *)

(* Determinism is independent of the configuration, so the full
   app x flavor matrix runs with a slimmed-down injection set (one
   runtime exception, provably exception-free methods skipped) to keep
   the suite fast on small machines; the default-config path is still
   exercised by the resume and probe tests below. *)
let matrix_config =
  { Config.default with
    Config.runtime_exceptions = [ "NullPointerException" ];
    infer_exception_free = true }

let check_matches_sequential (app : Registry.t) flavor () =
  let program = parse app.Registry.source in
  let seq = Detect.run ~config:matrix_config ~flavor program in
  let par, summary = Campaign.run ~config:matrix_config ~flavor ~jobs:4 program in
  Alcotest.(check int)
    "same run count" (List.length seq.Detect.runs) (List.length par.Detect.runs);
  Alcotest.(check bool) "identical run records" true (seq.Detect.runs = par.Detect.runs);
  Alcotest.(check int) "same injections" seq.Detect.injections par.Detect.injections;
  Alcotest.(check bool) "same transparency" seq.Detect.transparent par.Detect.transparent;
  let cs = Classify.classify seq and cp = Classify.classify par in
  Alcotest.(check bool)
    "identical classification" true
    (Classify.reports cs = Classify.reports cp
    && cs.Classify.class_verdicts = cp.Classify.class_verdicts);
  Alcotest.(check int) "nothing reused" 0 summary.Progress.reused

let determinism_cases =
  List.concat_map
    (fun (app : Registry.t) ->
      List.map
        (fun flavor ->
          Alcotest.test_case
            (Printf.sprintf "determinism %s (%s)" app.Registry.name
               (Detect.flavor_name flavor))
            `Slow
            (check_matches_sequential app flavor))
        [ Detect.Source_weaving; Detect.Load_time_filters ])
    Registry.catalog

(* The probe run must stay last and unique under parallel execution. *)
let test_probe_last () =
  let app = Option.get (Registry.find "LinkedList") in
  let result, _ = Campaign.run ~jobs:8 (parse app.Registry.source) in
  let n = List.length result.Detect.runs in
  List.iteri
    (fun i (r : Marks.run_record) ->
      Alcotest.(check bool)
        (Printf.sprintf "run %d injection status" (i + 1))
        (i = n - 1)
        (r.Marks.injected = None))
    result.Detect.runs

(* ------------------------------------------------------------------ *)
(* (b) resume: journaled thresholds are not re-executed                *)
(* ------------------------------------------------------------------ *)

let with_temp_journal f =
  let path = Filename.temp_file "failatom_test" ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

(* Truncates a journal to its header plus the first [keep] complete run
   blocks, plus a torn trailing block as a kill mid-append would leave. *)
let truncate_journal path ~keep =
  let lines = String.split_on_char '\n' (read_file path) in
  let buf = Buffer.create 4096 in
  let kept = ref 0 in
  List.iter
    (fun line ->
      if !kept < keep then begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        if String.equal line "endrun" then incr kept
      end)
    lines;
  Buffer.add_string buf "run 99999\nncalls 7\n";
  write_file path (Buffer.contents buf)

let journal_thresholds path =
  match Journal.load ~path () with
  | None -> []
  | Some (_, runs) -> List.map (fun (r : Marks.run_record) -> r.Marks.injection_point) runs

let test_resume () =
  let app = Option.get (Registry.find "LinkedList") in
  let program = parse app.Registry.source in
  let uninterrupted, _ = Campaign.run ~jobs:2 program in
  with_temp_journal (fun journal ->
      let _, _ = Campaign.run ~jobs:2 ~journal program in
      let keep = 40 in
      truncate_journal journal ~keep;
      let resumed, summary = Campaign.run ~jobs:2 ~journal ~resume:true program in
      Alcotest.(check bool)
        "resumed result identical to uninterrupted" true
        (uninterrupted.Detect.runs = resumed.Detect.runs);
      Alcotest.(check bool)
        "same transparency" uninterrupted.Detect.transparent resumed.Detect.transparent;
      Alcotest.(check int) "adopted the journaled prefix" keep summary.Progress.reused;
      (* No journaled threshold was re-executed: each appears once. *)
      let thresholds = List.sort compare (journal_thresholds journal) in
      let rec no_dup = function
        | a :: (b :: _ as rest) -> a <> b && no_dup rest
        | [ _ ] | [] -> true
      in
      Alcotest.(check bool) "no threshold executed twice" true (no_dup thresholds);
      (* Resuming a complete journal executes nothing at all. *)
      let again, s2 = Campaign.run ~jobs:2 ~journal ~resume:true program in
      Alcotest.(check int) "complete journal: nothing executed" 0 s2.Progress.executed;
      Alcotest.(check int)
        "complete journal: everything reused"
        (List.length uninterrupted.Detect.runs)
        s2.Progress.reused;
      Alcotest.(check bool)
        "complete journal: identical result" true
        (uninterrupted.Detect.runs = again.Detect.runs))

let test_journal_guards () =
  let program = parse Synthetic.source in
  with_temp_journal (fun journal ->
      let _ = Campaign.run ~jobs:1 ~journal program in
      Alcotest.check_raises "flavor mismatch rejected"
        (Campaign.Campaign_error
           (Printf.sprintf
              "journal %s was recorded with flavor source-weaving, not \
               load-time-filters"
              journal))
        (fun () ->
          ignore
            (Campaign.run ~flavor:Detect.Load_time_filters ~jobs:1 ~journal
               ~resume:true program));
      let other = parse (Option.get (Registry.find "LLMap")).Registry.source in
      Alcotest.check_raises "program mismatch rejected"
        (Campaign.Campaign_error
           (Printf.sprintf "journal %s was recorded for a different program" journal))
        (fun () -> ignore (Campaign.run ~jobs:1 ~journal ~resume:true other)));
  Alcotest.check_raises "resume requires a journal"
    (Campaign.Campaign_error "cannot resume without a journal path")
    (fun () -> ignore (Campaign.run ~jobs:1 ~resume:true program))

(* Outputs with spaces, newlines and escapes survive the journal. *)
let test_journal_output_roundtrip () =
  let mark =
    { Marks.meth = Method_id.make "C" "m"; atomic = false; diff_path = Some "a.b c"; exn_id = 3 }
  in
  let runs =
    [ { Marks.injection_point = 1;
        injected = Some (Method_id.make "C" "m", "NullPointerException");
        marks = [ mark ];
        escaped = None;
        output = "line one\nwith spaces  and\ttabs\n\"quotes\" \\backslash\n";
        calls = 12;
        timed_out = false;
        sched = None };
      { Marks.injection_point = 2;
        injected = None;
        marks = [];
        escaped = Some "IOException";
        output = "";
        calls = 9;
        timed_out = false;
        sched = None } ]
  in
  with_temp_journal (fun journal ->
      let w = Journal.create ~path:journal { Journal.flavor = "source-weaving"; program_digest = "abc" } in
      List.iter (Journal.append w) runs;
      Journal.close w;
      match Journal.load ~path:journal () with
      | None -> Alcotest.fail "journal missing"
      | Some (header, loaded) ->
        Alcotest.(check string) "flavor" "source-weaving" header.Journal.flavor;
        Alcotest.(check string) "digest" "abc" header.Journal.program_digest;
        Alcotest.(check bool) "runs round-trip" true (loaded = runs))

(* ------------------------------------------------------------------ *)
(* (c) speculation: over-run past the frontier is discarded            *)
(* ------------------------------------------------------------------ *)

let mk_run ?injected ?(timed_out = false) point =
  { Marks.injection_point = point;
    injected;
    marks = [];
    escaped = None;
    output = "";
    calls = 1;
    timed_out;
    sched = None }

let fired = (Method_id.make "C" "m", "NullPointerException")

let claim_exn s =
  match Scheduler.claim s with
  | Scheduler.Claimed t -> t
  | Scheduler.Claimed_group _ -> Alcotest.fail "unexpected Claimed_group"
  | Scheduler.Wait -> Alcotest.fail "unexpected Wait"
  | Scheduler.Done -> Alcotest.fail "unexpected Done"
  | Scheduler.Exhausted -> Alcotest.fail "unexpected Exhausted"

let test_speculative_discard () =
  let s = Scheduler.create ~max_runs:100 ~jobs:3 () in
  let claimed = List.init 6 (fun _ -> claim_exn s) in
  Alcotest.(check (list int)) "thresholds in order" [ 1; 2; 3; 4; 5; 6 ] claimed;
  (* threshold 3 turns out to be the frontier *)
  Alcotest.(check bool) "frontier run kept" true (Scheduler.record s (mk_run 3) = `Kept);
  Alcotest.(check (option int)) "frontier detected" (Some 3) (Scheduler.frontier s);
  Alcotest.(check bool)
    "speculative run 4 discarded" true
    (Scheduler.record s (mk_run ~injected:fired 4) = `Speculative);
  Alcotest.(check bool)
    "speculative run 5 discarded" true
    (Scheduler.record s (mk_run ~injected:fired 5) = `Speculative);
  Alcotest.(check bool) "needed run kept" true (Scheduler.record s (mk_run ~injected:fired 1) = `Kept);
  Alcotest.(check bool) "not finished while 2 missing" false (Scheduler.finished s);
  Alcotest.(check bool) "needed run kept" true (Scheduler.record s (mk_run ~injected:fired 2) = `Kept);
  Alcotest.(check bool) "finished once 1..frontier recorded" true (Scheduler.finished s);
  (match Scheduler.claim s with
   | Scheduler.Done -> ()
   | _ -> Alcotest.fail "claim past a complete campaign must be Done");
  let points =
    List.map (fun (r : Marks.run_record) -> r.Marks.injection_point) (Scheduler.runs s)
  in
  Alcotest.(check (list int)) "merged runs stop at the frontier" [ 1; 2; 3 ] points;
  let stats = Scheduler.stats s in
  Alcotest.(check int) "discarded speculative runs" 2 stats.Scheduler.discarded;
  Alcotest.(check int) "executed" 5 stats.Scheduler.executed

let test_speculation_horizon () =
  let s = Scheduler.create ~max_runs:100 ~jobs:1 () in
  (* initial horizon: max (2*jobs) 4 = 4 *)
  let first = List.init 4 (fun _ -> claim_exn s) in
  Alcotest.(check (list int)) "first batch" [ 1; 2; 3; 4 ] first;
  (match Scheduler.claim s with
   | Scheduler.Wait -> ()
   | _ -> Alcotest.fail "claims beyond the horizon must wait");
  List.iter (fun t -> ignore (Scheduler.record s (mk_run ~injected:fired t))) [ 1; 2; 3; 4 ];
  (* the completed batch doubles the horizon *)
  Alcotest.(check int) "next batch opens at 5" 5 (claim_exn s)

let test_resume_skips_journaled () =
  let journaled = [ mk_run ~injected:fired 1; mk_run ~injected:fired 3 ] in
  let s = Scheduler.create ~journaled ~max_runs:100 ~jobs:2 () in
  Alcotest.(check int) "first gap claimed" 2 (claim_exn s);
  Alcotest.(check int) "journaled threshold 3 skipped" 4 (claim_exn s)

let test_exhaustion () =
  let s = Scheduler.create ~max_runs:3 ~jobs:2 () in
  let _ = List.init 3 (fun _ -> claim_exn s) in
  (match Scheduler.claim s with
   | Scheduler.Wait -> ()
   | _ -> Alcotest.fail "must wait while runs are in flight");
  List.iter (fun t -> ignore (Scheduler.record s (mk_run ~injected:fired t))) [ 1; 2; 3 ];
  match Scheduler.claim s with
  | Scheduler.Exhausted -> ()
  | _ -> Alcotest.fail "max_runs without a frontier must exhaust"

(* ------------------------------------------------------------------ *)
(* (d) per-run timeouts and cooperative cancellation                   *)
(* ------------------------------------------------------------------ *)

(* The catch handler spins ~2M VM steps, so with a 5ms budget every
   injected run is cut off and recorded as timed out, while the
   baseline run and the final probe (which never enter the handler)
   complete normally — the timed-out no-injection case must NOT
   terminate the detection loop early. *)
let slow_catch_source =
  {|
class Box {
  field v;
  method init() { this.v = 0; }
  method poke() throws IllegalStateException {
    this.v = this.v + 1;
    return this.v;
  }
}
function main() {
  var b = new Box();
  for (var i = 0; i < 5; i = i + 1) {
    try {
      b.poke();
    } catch (IllegalStateException e) {
      var j = 0;
      while (j < 2000000) { j = j + 1; }
      println("recovered");
    }
  }
  println(b.v);
}
|}

let test_run_timeout () =
  let program = parse slow_catch_source in
  let result, _ = Campaign.run ~run_timeout_s:0.005 ~jobs:2 program in
  let timed_out =
    List.filter (fun (r : Marks.run_record) -> r.Marks.timed_out) result.Detect.runs
  in
  Alcotest.(check bool) "some runs timed out" true (timed_out <> []);
  (* every timed-out run had fired its injection (the handler is the
     slow part), and the probe run terminated cleanly *)
  let probe = List.nth result.Detect.runs (List.length result.Detect.runs - 1) in
  Alcotest.(check bool) "probe run completed" false probe.Marks.timed_out;
  Alcotest.(check bool) "probe run is the no-injection run" true
    (probe.Marks.injected = None);
  (* the sequential detector agrees run for run *)
  let seq = Detect.run ~run_timeout_s:0.005 program in
  Alcotest.(check int) "same run count as sequential"
    (List.length seq.Detect.runs)
    (List.length result.Detect.runs)

(* A timed-out run must not poison the run-log round trip. *)
let test_timed_out_run_log_roundtrip () =
  let program = parse slow_catch_source in
  let result = Detect.run ~run_timeout_s:0.005 program in
  let reloaded = Failatom_core.Run_log.load (Failatom_core.Run_log.save result) in
  Alcotest.(check bool) "timed-out flags survive the log" true
    (List.map (fun (r : Marks.run_record) -> r.Marks.timed_out) result.Detect.runs
    = List.map
        (fun (r : Marks.run_record) -> r.Marks.timed_out)
        reloaded.Failatom_core.Run_log.runs)

let test_cancel () =
  let program = parse Synthetic.source in
  Alcotest.check_raises "immediate cancel raises" Campaign.Cancelled (fun () ->
      ignore (Campaign.run ~cancel:(fun () -> true) ~jobs:2 program));
  (* cancelling after N runs stops promptly and keeps the journal *)
  with_temp_journal (fun journal ->
      let enough = Atomic.make false in
      (try
         ignore
           (Campaign.run
              ~cancel:(fun () -> Atomic.get enough)
              ~report:(fun ev ->
                match ev with
                | Progress.Tick { completed; _ } when completed >= 3 ->
                  Atomic.set enough true
                | _ -> ())
              ~jobs:2 ~journal program)
       with Campaign.Cancelled -> ());
      match Journal.load ~path:journal () with
      | None -> Alcotest.fail "cancelled campaign left no journal"
      | Some (_, runs) ->
        Alcotest.(check bool) "journaled runs survive the cancel" true (runs <> []))

(* A torn final journal line (kill mid-append) is tolerated with a
   warning, not an error. *)
let test_journal_torn_tail_warning () =
  let program = parse Synthetic.source in
  with_temp_journal (fun journal ->
      let _ = Campaign.run ~jobs:1 ~journal program in
      (* chop the last line mid-record, no trailing newline *)
      let text = read_file journal in
      write_file journal (String.sub text 0 (String.length text - 9));
      let warned = ref [] in
      (match Journal.load ~warn:(fun msg -> warned := msg :: !warned) ~path:journal () with
       | None -> Alcotest.fail "torn journal must still load"
       | Some (_, runs) -> Alcotest.(check bool) "prefix recovered" true (runs <> []));
      Alcotest.(check bool) "warning emitted" true (!warned <> []);
      (* resuming such a journal surfaces the warning as a progress event *)
      let events = ref [] in
      let _ =
        Campaign.run ~jobs:1 ~journal ~resume:true
          ~report:(fun ev -> events := ev :: !events)
          program
      in
      Alcotest.(check bool) "Progress.Warning reported" true
        (List.exists (function Progress.Warning _ -> true | _ -> false) !events))

let suite =
  [ Alcotest.test_case "probe run last (8 workers)" `Quick test_probe_last;
    Alcotest.test_case "per-run timeout" `Quick test_run_timeout;
    Alcotest.test_case "timed-out runs survive the run log" `Quick
      test_timed_out_run_log_roundtrip;
    Alcotest.test_case "cooperative cancellation" `Quick test_cancel;
    Alcotest.test_case "torn journal tail tolerated with warning" `Quick
      test_journal_torn_tail_warning;
    Alcotest.test_case "resume from journal" `Quick test_resume;
    Alcotest.test_case "journal guards" `Quick test_journal_guards;
    Alcotest.test_case "journal output round-trip" `Quick test_journal_output_roundtrip;
    Alcotest.test_case "speculative over-run discarded" `Quick test_speculative_discard;
    Alcotest.test_case "speculation horizon doubles" `Quick test_speculation_horizon;
    Alcotest.test_case "resume skips journaled thresholds" `Quick test_resume_skips_journaled;
    Alcotest.test_case "exhaustion at max_runs" `Quick test_exhaustion ]
  @ determinism_cases
