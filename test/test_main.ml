(* Test entry point: one Alcotest run covering every module. *)

let () =
  Alcotest.run "failatom"
    [ ("heap", Test_heap.suite);
      ("object-graph", Test_object_graph.suite);
      ("checkpoint-gc", Test_checkpoint.suite);
      ("vm", Test_vm.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("interp", Test_interp.suite);
      ("sched", Test_sched.suite);
      ("compile-image", Test_compile_image.suite);
      ("bytecode", Test_bytecode.suite);
      ("static-check", Test_static_check.suite);
      ("conformance", Test_conformance.suite);
      ("weaver", Test_weaver.suite);
      ("injection", Test_injection.suite);
      ("detect", Test_detect.suite);
      ("concurrent-detect", Test_concurrent_detect.suite);
      ("classify", Test_classify.suite);
      ("mask", Test_mask.suite);
      ("prod", Test_prod.suite);
      ("composition", Test_composition.suite);
      ("random-pipeline", Test_random_pipeline.suite);
      ("purity", Test_purity.suite);
      ("exnflow", Test_exnflow.suite);
      ("run-log", Test_run_log.suite);
      ("trace", Test_trace.suite);
      ("invariants", Test_invariants.suite);
      ("coverage", Test_coverage.suite);
      ("report", Test_report.suite);
      ("apps", Test_apps.suite);
      ("app-behavior", Test_app_behavior.suite);
      ("snapshot", Test_snapshot.suite);
      ("campaign", Test_campaign.suite);
      ("obs", Test_obs.suite);
      ("server", Test_server.suite);
      ("cluster", Test_cluster.suite) ]
