(* Report rendering tests: Table 1 and the figure-style charts must
   contain the right rows and percentages. *)

open Failatom_core
open Failatom_apps

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let outcome = lazy (Harness.detect_app Registry.synthetic)

let app_result () = (Lazy.force outcome).Harness.report

let test_table1 () =
  let row = app_result () in
  let rendered = Fmt.str "%a" Report.pp_table1 [ row ] in
  Alcotest.(check bool) "header present" true (contains ~needle:"#Injections" rendered);
  Alcotest.(check bool) "app row present" true (contains ~needle:"Synthetic" rendered);
  Alcotest.(check bool) "injection count present" true
    (contains ~needle:(string_of_int row.Report.injections) rendered)

let test_counts () =
  let row = app_result () in
  (* synthetic ground truth: 12 methods = 8 atomic, 2 conditional, 3 pure
     ... minus never-called ones; counts must match the expectation table *)
  let counts = Classify.method_counts row.Report.classification in
  let of_verdict v =
    List.length (List.filter (fun (_, v') -> v' = v) Synthetic.expectations)
  in
  Alcotest.(check int) "atomic" (of_verdict Classify.Atomic) counts.Classify.atomic;
  Alcotest.(check int) "conditional"
    (of_verdict Classify.Conditional_non_atomic)
    counts.Classify.conditional;
  Alcotest.(check int) "pure" (of_verdict Classify.Pure_non_atomic) counts.Classify.pure

let test_figures_render () =
  let rows = [ app_result () ] in
  let methods = Fmt.str "%a" (fun ppf -> Report.pp_figure_methods ppf ~title:"t1") rows in
  let calls = Fmt.str "%a" (fun ppf -> Report.pp_figure_calls ppf ~title:"t2") rows in
  let classes = Fmt.str "%a" (fun ppf -> Report.pp_figure_classes ppf ~title:"t3") rows in
  List.iter
    (fun (name, rendered) ->
      Alcotest.(check bool) (name ^ " shows the app") true
        (contains ~needle:"Synthetic" rendered);
      Alcotest.(check bool) (name ^ " shows percentages") true
        (contains ~needle:"%" rendered))
    [ ("methods", methods); ("calls", calls); ("classes", classes) ]

let test_details () =
  let row = app_result () in
  let rendered = Fmt.str "%a" Report.pp_details row.Report.classification in
  Alcotest.(check bool) "mentions pure method" true
    (contains ~needle:"Unit.mutateThenCall" rendered);
  Alcotest.(check bool) "mentions verdict" true
    (contains ~needle:"pure non-atomic" rendered);
  Alcotest.(check bool) "mentions diff path" true (contains ~needle:"diff@" rendered)

let test_bar_bounds () =
  Alcotest.(check string) "empty bar" "" (Report.bar 10 0.0);
  Alcotest.(check string) "full bar" "##########" (Report.bar 10 100.0);
  Alcotest.(check string) "clamped" "##########" (Report.bar 10 250.0);
  Alcotest.(check int) "half bar" 5 (String.length (Report.bar 10 50.0))

let test_pct () =
  Alcotest.(check (float 0.001)) "pct" 25.0 (Report.pct 1 4);
  Alcotest.(check (float 0.001)) "pct zero total" 0.0 (Report.pct 3 0)

let test_csv () =
  let row = app_result () in
  let csv = Report.classification_to_csv row.Report.classification in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  Alcotest.(check int) "header + one row per method"
    (1 + List.length (Classify.reports row.Report.classification))
    (List.length lines);
  Alcotest.(check bool) "header first" true
    (String.length (List.hd lines) > 0 && String.sub (List.hd lines) 0 5 = "class");
  Alcotest.(check bool) "contains a pure row" true
    (contains ~needle:"Unit,mutateThenCall,pure" csv);
  let t1 = Report.table1_to_csv [ row ] in
  Alcotest.(check bool) "table1 csv row" true (contains ~needle:"Synthetic,Java" t1)

let suite =
  [ Alcotest.test_case "table 1" `Quick test_table1;
    Alcotest.test_case "method counts" `Quick test_counts;
    Alcotest.test_case "figures render" `Quick test_figures_render;
    Alcotest.test_case "details" `Quick test_details;
    Alcotest.test_case "bar bounds" `Quick test_bar_bounds;
    Alcotest.test_case "pct" `Quick test_pct;
    Alcotest.test_case "csv export" `Quick test_csv ]
