(* Tests of the deterministic MiniLang scheduler (lib/runtime/sched.ml):
   policy-spec round trips, bit-for-bit determinism and replay of the
   seeded decision stream, FIFO monitor handoff, join semantics on
   crashed threads, and deadlock detection. *)

open Failatom_runtime
open Failatom_apps
module Minilang = Failatom_minilang.Minilang

let run_under spec source =
  let policy = Option.get (Sched.policy_of_string spec) in
  let vm = Minilang.load_string source in
  ignore (Minilang.run ~policy vm);
  vm

(* ------------------------------------------------------------------ *)
(* policy specs                                                        *)
(* ------------------------------------------------------------------ *)

let test_policy_round_trip () =
  List.iter
    (fun (spec, policy) ->
      Alcotest.(check string) ("to_string " ^ spec) spec (Sched.policy_to_string policy);
      match Sched.policy_of_string spec with
      | Some p -> Alcotest.(check bool) ("of_string " ^ spec) true (p = policy)
      | None -> Alcotest.failf "spec %s did not parse" spec)
    [ ("coop", Sched.Coop);
      ("slice:7", Sched.Slice 7);
      ("slice:0", Sched.Slice 0);
      ("pct:3:42", Sched.Pct (3, 42)) ];
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        ("rejects " ^ spec) true
        (Sched.policy_of_string spec = None))
    [ ""; "slices:1"; "slice:x"; "pct:1"; "pct:-1:2"; "pct:a:b"; "coop:1" ]

(* ------------------------------------------------------------------ *)
(* determinism and replay                                              *)
(* ------------------------------------------------------------------ *)

(* Same spec, same program: identical output, decision digest and
   scheduling counters — twice over, on fresh VMs. *)
let test_determinism () =
  let app = Option.get (Registry.find "WorkQueue") in
  List.iter
    (fun spec ->
      let a = run_under spec app.Registry.source in
      let b = run_under spec app.Registry.source in
      Alcotest.(check string) (spec ^ ": same output") (Vm.output a) (Vm.output b);
      Alcotest.(check string)
        (spec ^ ": same decision digest")
        a.Vm.sched_digest b.Vm.sched_digest;
      Alcotest.(check int) (spec ^ ": same switches") a.Vm.sched_switches b.Vm.sched_switches;
      Alcotest.(check int)
        (spec ^ ": same preemptions")
        a.Vm.sched_preemptions b.Vm.sched_preemptions;
      Alcotest.(check int)
        (spec ^ ": same contention")
        a.Vm.sched_contention b.Vm.sched_contention;
      Alcotest.(check int)
        (spec ^ ": digest is 16 hex digits")
        16
        (String.length a.Vm.sched_digest))
    [ "slice:1"; "slice:7"; "pct:2:5" ]

(* A recorded spec replays bit-for-bit: parsing [policy_to_string] back
   and re-running reproduces output and digest exactly — the journal
   replay guarantee. *)
let test_replay_from_spec () =
  let app = Option.get (Registry.find "StripedMap") in
  let policy = Sched.Slice 3 in
  let vm = Minilang.load_string app.Registry.source in
  ignore (Minilang.run ~policy vm);
  let spec = Sched.policy_to_string policy in
  let replayed = run_under spec app.Registry.source in
  Alcotest.(check string) "replayed output identical" (Vm.output vm) (Vm.output replayed);
  Alcotest.(check string)
    "replayed decision digest identical"
    vm.Vm.sched_digest replayed.Vm.sched_digest

(* Coop is the no-scheduler baseline: no preemptions, no decisions,
   empty digest — and different preemptive seeds really do produce
   different decision streams on a contended program. *)
let test_coop_is_quiet () =
  let app = Option.get (Registry.find "BoundedBuffer") in
  let vm = run_under "coop" app.Registry.source in
  Alcotest.(check string) "coop digest empty" "" vm.Vm.sched_digest;
  Alcotest.(check int) "coop never preempts" 0 vm.Vm.sched_preemptions;
  Alcotest.(check int) "coop never contends" 0 vm.Vm.sched_contention;
  let d1 = (run_under "slice:1" app.Registry.source).Vm.sched_digest in
  let d2 = (run_under "slice:2" app.Registry.source).Vm.sched_digest in
  Alcotest.(check bool) "seeds diverge" false (String.equal d1 d2)

(* ------------------------------------------------------------------ *)
(* monitors: FIFO handoff                                              *)
(* ------------------------------------------------------------------ *)

(* Main holds the log's monitor while three spawned threads block on it
   (main blocks on an unrelated join inside the synchronized block, so
   all three run far enough to queue up in spawn order).  On release
   the lock must hand off in FIFO arrival order: "123", never "321". *)
let fifo_source =
  {|
class Log {
  field out;
  method init() { this.out = ""; return this; }
  method note(id) {
    synchronized (this) { this.out = this.out + str(id); }
    return null;
  }
  method runner(id) { this.note(id); return id; }
  method ping() { return 1; }
  method text() { return this.out; }
}
function main() {
  var l = new Log();
  var t1 = 0;
  var t2 = 0;
  var t3 = 0;
  synchronized (l) {
    t1 = spawn l.runner(1);
    t2 = spawn l.runner(2);
    t3 = spawn l.runner(3);
    var h = spawn l.ping();
    check(join(h) == 1, "ping");
  }
  join(t1);
  join(t2);
  join(t3);
  println(l.text());
  return 0;
}
|}

let test_fifo_handoff () =
  (* under coop the three threads reach the monitor in spawn order, so
     FIFO handoff pins the exact acquisition order *)
  let vm = run_under "coop" fifo_source in
  Alcotest.(check string) "coop: FIFO handoff in arrival order" "123\n" (Vm.output vm);
  (* preemptive policies reorder the arrivals, but handoff stays FIFO
     in arrival order — every waiter gets the lock exactly once, in a
     deterministic order for a given seed *)
  List.iter
    (fun spec ->
      let a = Vm.output (run_under spec fifo_source) in
      let b = Vm.output (run_under spec fifo_source) in
      Alcotest.(check string) (spec ^ ": deterministic handoff order") a b;
      let sorted =
        String.to_seq (String.trim a) |> List.of_seq |> List.sort compare
      in
      Alcotest.(check bool)
        (spec ^ ": each waiter acquired exactly once") true
        (sorted = [ '1'; '2'; '3' ]))
    [ "slice:1"; "slice:9"; "pct:2:3" ]

(* ------------------------------------------------------------------ *)
(* join semantics                                                      *)
(* ------------------------------------------------------------------ *)

(* A crash in a spawned thread is re-raised into the joiner as the
   original MiniLang exception, catchable in-language. *)
let join_crash_source =
  {|
class Worker {
  method boom() throws IllegalStateException {
    throw new IllegalStateException("worker gave up");
  }
}
function main() {
  var w = new Worker();
  var t = spawn w.boom();
  try {
    join(t);
    println("no crash");
  } catch (IllegalStateException e) {
    println("caught: " + e.message);
  }
  return 0;
}
|}

let test_join_crashed () =
  let vm = run_under "coop" join_crash_source in
  Alcotest.(check string) "crash delivered to joiner" "caught: worker gave up\n"
    (Vm.output vm)

(* An unjoined crash still escapes the run after main returns — an
   injected exception that kills a spawned thread is never lost. *)
let unjoined_crash_source =
  {|
class Worker {
  method boom() throws IllegalStateException {
    throw new IllegalStateException("nobody joined me");
  }
}
function main() {
  var w = new Worker();
  spawn w.boom();
  println("main done");
  return 0;
}
|}

let test_unjoined_crash_escapes () =
  match Minilang.run_string unjoined_crash_source with
  | _ -> Alcotest.fail "unjoined crash must escape the run"
  | exception Vm.Mini_raise e ->
    Alcotest.(check string) "class" "IllegalStateException" e.Vm.exn_class;
    Alcotest.(check string) "message" "nobody joined me" e.Vm.message

let bad_join_source =
  {|
function main() {
  try {
    join(42);
  } catch (IllegalArgumentException e) {
    println("caught: " + e.message);
  }
  return 0;
}
|}

let test_join_unknown () =
  let vm = run_under "coop" bad_join_source in
  Alcotest.(check string) "unknown tid rejected" "caught: join: unknown thread 42\n"
    (Vm.output vm)

(* ------------------------------------------------------------------ *)
(* deadlock detection                                                  *)
(* ------------------------------------------------------------------ *)

(* Main blocks on join while holding the monitor the joined thread
   needs: every live thread is blocked, and the scheduler kills the run
   with IllegalStateException("deadlock"). *)
let deadlock_source =
  {|
class Box {
  method locked() {
    synchronized (this) { }
    return 1;
  }
}
function main() {
  var b = new Box();
  synchronized (b) {
    var t = spawn b.locked();
    join(t);
  }
  return 0;
}
|}

let test_deadlock () =
  match Minilang.run_string deadlock_source with
  | _ -> Alcotest.fail "deadlocked run must not complete"
  | exception Vm.Mini_raise e ->
    Alcotest.(check string) "class" "IllegalStateException" e.Vm.exn_class;
    Alcotest.(check string) "message" "deadlock" e.Vm.message

let suite =
  [ Alcotest.test_case "policy spec round-trip" `Quick test_policy_round_trip;
    Alcotest.test_case "same spec, same run (output+digest)" `Quick test_determinism;
    Alcotest.test_case "recorded spec replays bit-for-bit" `Quick test_replay_from_spec;
    Alcotest.test_case "coop: no decisions, empty digest" `Quick test_coop_is_quiet;
    Alcotest.test_case "monitor handoff is FIFO" `Quick test_fifo_handoff;
    Alcotest.test_case "join re-raises a crash" `Quick test_join_crashed;
    Alcotest.test_case "unjoined crash escapes the run" `Quick test_unjoined_crash_escapes;
    Alcotest.test_case "join of unknown tid" `Quick test_join_unknown;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock ]
