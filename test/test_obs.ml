(* The observability layer: metric semantics, the enable gate, the
   failatom.metrics/1 JSON schema (golden-checked byte for byte), the
   failatom stats table rendering, and counter/journal consistency on a
   real campaign.

   Golden files live in test/golden/ and are declared as test deps in
   test/dune.  To regenerate after an intentional schema or layout
   change:

     cd test && GOLDEN_UPDATE=1 ../_build/default/test/test_main.exe test obs *)

module Obs = Failatom_obs.Obs
open Failatom_core

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let golden_check name actual =
  let path = Filename.concat "golden" name in
  let actual = actual ^ "\n" in
  if Sys.getenv_opt "GOLDEN_UPDATE" <> None then begin
    let oc = open_out_bin path in
    output_string oc actual;
    close_out oc
  end
  else Alcotest.(check string) (name ^ " matches golden") (read_file path) actual

(* ---------------- metric semantics ---------------- *)

let test_disabled_is_noop () =
  Obs.set_enabled false;
  let c = Obs.counter "test.gate.counter" in
  let g = Obs.gauge "test.gate.gauge" in
  let h = Obs.histogram "test.gate.hist" in
  Obs.incr c;
  Obs.add c 41;
  Obs.set_gauge g 7;
  Obs.observe h 123;
  Alcotest.(check int) "counter untouched" 0 (Obs.counter_value c);
  Alcotest.(check int) "gauge untouched" 0 (Obs.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Obs.histogram_count h)

let test_enabled_records () =
  Obs.with_enabled true (fun () ->
      Obs.reset ();
      let c = Obs.counter "test.rec.counter" in
      let g = Obs.gauge "test.rec.gauge" in
      let h = Obs.histogram "test.rec.hist" in
      Obs.incr c;
      Obs.add c 41;
      Obs.set_gauge g 7;
      Obs.gauge_to_max g 3;
      Obs.gauge_to_max g 9;
      List.iter (Obs.observe h) [ 1; 2; 3; 4 ];
      Alcotest.(check int) "counter" 42 (Obs.counter_value c);
      Alcotest.(check int) "gauge high-water" 9 (Obs.gauge_value g);
      Alcotest.(check int) "histogram count" 4 (Obs.histogram_count h);
      let hs = List.assoc "test.rec.hist" (Obs.snapshot ()).Obs.s_histograms in
      Alcotest.(check int) "histogram sum" 10 hs.Obs.hs_sum;
      Alcotest.(check int) "histogram min" 1 hs.Obs.hs_min;
      Alcotest.(check int) "histogram max" 4 hs.Obs.hs_max;
      Obs.reset ();
      Alcotest.(check int) "reset zeroes counter" 0 (Obs.counter_value c);
      Alcotest.(check int) "reset zeroes histogram" 0 (Obs.histogram_count h))

let test_span_timing () =
  Obs.with_enabled true (fun () ->
      Obs.reset ();
      let v = Obs.span "test.span" (fun () -> 13) in
      Alcotest.(check int) "span returns value" 13 v;
      (try Obs.span "test.span" (fun () -> failwith "boom") |> ignore
       with Failure _ -> ());
      Alcotest.(check int) "span records even on raise" 2
        (Obs.histogram_count (Obs.histogram "test.span")))

(* ---------------- interchange: golden schema + roundtrip ----------- *)

(* A hand-built snapshot with stable values: golden tests must not
   depend on real timings. *)
let fixture : Obs.snap =
  { Obs.s_counters =
      [ ("campaign.seed_order_hits", 57);
        ("detect.injections_fired", 922);
        ("detect.points_coalesced", 411);
        ("detect.points_dropped", 0);
        ("detect.points_total", 923);
        ("heap.allocations", 189004);
        ("sched.lock_contention", 18);
        ("sched.preemptions", 3121);
        ("sched.schedules_explored", 4);
        ("sched.switches", 3344);
        ("vm.steps", 6066895) ];
    s_gauges = [ ("campaign.workers", 4) ];
    s_histograms =
      [ ( "campaign.queue_depth",
          { Obs.hs_unit = "items";
            hs_count = 924;
            hs_sum = 3353;
            hs_min = 1;
            hs_max = 4;
            hs_p50 = 4;
            hs_p99 = 4;
            hs_attrs = [] } );
        ( "detect.run_once",
          { Obs.hs_unit = "ns";
            hs_count = 924;
            hs_sum = 4786000000;
            hs_min = 310000;
            hs_max = 83800000;
            hs_p50 = 786432;
            hs_p99 = 50331648;
            hs_attrs = [ ("flavor", "source-weaving"); ("snapshot_mode", "eager") ] } );
        ( "detect.schedule",
          { Obs.hs_unit = "ns";
            hs_count = 4;
            hs_sum = 5200000000;
            hs_min = 1100000000;
            hs_max = 1500000000;
            hs_p50 = 1342177280;
            hs_p99 = 1476395008;
            hs_attrs = [ ("schedule", "slice:1") ] } ) ]
  }

let test_json_golden () = golden_check "metrics.json" (Obs.to_json fixture)

let test_json_roundtrip () =
  let parsed = Obs.parse_json (Obs.to_json fixture) in
  Alcotest.(check bool) "parse_json inverts to_json" true (parsed = fixture)

let test_parse_errors () =
  let rejects name s =
    Alcotest.check_raises name (Obs.Parse_error "") (fun () ->
        try ignore (Obs.parse_json s)
        with Obs.Parse_error _ -> raise (Obs.Parse_error ""))
  in
  rejects "garbage" "not json";
  rejects "wrong schema" {|{"schema": "failatom.metrics/999"}|};
  rejects "truncated" {|{"schema": "failatom.metrics/1", "counters": {|}

let test_stats_golden () =
  let snap = Obs.parse_json (read_file (Filename.concat "golden" "metrics.json")) in
  golden_check "stats.txt" (String.trim (Format.asprintf "%a" Obs.pp_table snap))

(* ---------------- counters vs the campaign journal ----------------- *)

(* The acceptance check behind campaign --metrics-out: after a campaign,
   detect.injections_fired equals the injected runs recorded in the
   journal, and campaign.runs_executed equals the journal's run count
   (the journal records every executed run, speculative ones included). *)
let test_campaign_consistency () =
  let app = Option.get (Failatom_apps.Registry.find "Synthetic") in
  let program = Failatom_minilang.Minilang.parse app.Failatom_apps.Registry.source in
  let journal = Filename.temp_file "failatom_obs_journal" ".jnl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove journal)
    (fun () ->
      Obs.with_enabled true (fun () ->
          Obs.reset ();
          let detection, _summary =
            Failatom_campaign.Campaign.run ~jobs:2 ~journal program
          in
          let _, runs = Option.get (Failatom_campaign.Journal.load ~path:journal ()) in
          let injected =
            List.length
              (List.filter
                 (fun (r : Marks.run_record) -> Option.is_some r.Marks.injected)
                 runs)
          in
          Alcotest.(check int) "injections_fired == injected journal runs" injected
            (Obs.counter_value (Obs.counter "detect.injections_fired"));
          Alcotest.(check int) "runs_executed == journal runs" (List.length runs)
            (Obs.counter_value (Obs.counter "campaign.runs_executed"));
          Alcotest.(check bool) "campaign detection transparent" true
            detection.Detect.transparent));
  Obs.reset ()

(* A swept concurrent detection populates the schedule metrics: one
   detect.schedule span per explored spec, and the scheduler counters
   harvested from the per-run VM totals. *)
let test_schedule_metrics () =
  let app = Option.get (Failatom_apps.Registry.find "WorkQueue") in
  let program = Failatom_minilang.Minilang.parse app.Failatom_apps.Registry.source in
  let sweep = [ "coop"; "slice:1"; "slice:2"; "slice:3" ] in
  Obs.with_enabled true (fun () ->
      Obs.reset ();
      let d =
        Detect.run ~config:{ Config.default with Config.schedules = sweep } program
      in
      Alcotest.(check bool) "detection transparent" true d.Detect.transparent;
      Alcotest.(check int) "schedules_explored" (List.length sweep)
        (Obs.counter_value (Obs.counter "sched.schedules_explored"));
      Alcotest.(check int) "one detect.schedule span per spec" (List.length sweep)
        (Obs.histogram_count (Obs.histogram "detect.schedule"));
      Alcotest.(check bool) "preemptions harvested" true
        (Obs.counter_value (Obs.counter "sched.preemptions") > 0);
      Alcotest.(check bool) "switches harvested" true
        (Obs.counter_value (Obs.counter "sched.switches") > 0));
  Obs.reset ()

(* Marks must not depend on whether metrics are enabled. *)
let test_marks_unchanged_by_metrics () =
  let app = Option.get (Failatom_apps.Registry.find "Synthetic") in
  let program = Failatom_minilang.Minilang.parse app.Failatom_apps.Registry.source in
  let off = Detect.run program in
  let on = Obs.with_enabled true (fun () -> Detect.run program) in
  Alcotest.(check bool) "identical run records" true
    (off.Detect.runs = on.Detect.runs);
  Obs.reset ()

let suite =
  [ Alcotest.test_case "disabled recording is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "enabled recording and reset" `Quick test_enabled_records;
    Alcotest.test_case "span timing" `Quick test_span_timing;
    Alcotest.test_case "metrics.json golden" `Quick test_json_golden;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "stats table golden" `Quick test_stats_golden;
    Alcotest.test_case "campaign counters match journal" `Quick
      test_campaign_consistency;
    Alcotest.test_case "schedule metrics populated by a sweep" `Quick
      test_schedule_metrics;
    Alcotest.test_case "marks unchanged by metrics" `Quick
      test_marks_unchanged_by_metrics ]
