(* Unit and property tests for object graphs: canonical forms,
   equality, diff, clone, and graph size (paper Definitions 1-2). *)

open Failatom_runtime

let check = Alcotest.check
let bool_c = Alcotest.bool

(* Builds the canonical form of [v] in [heap]. *)
let canon heap v = Object_graph.canonical heap v

let graph_equal heap a b = Object_graph.equal (canon heap a) (canon heap b)

(* A small fixture: two objects sharing a child, plus an array. *)
let fixture () =
  let heap = Heap.create () in
  let shared = Heap.alloc_object heap ~cls:"Leaf" [ ("v", Value.Int 7) ] in
  let left =
    Heap.alloc_object heap ~cls:"Node"
      [ ("tag", Value.Str "left"); ("child", Value.Ref shared) ]
  in
  let right =
    Heap.alloc_object heap ~cls:"Node"
      [ ("tag", Value.Str "right"); ("child", Value.Ref shared) ]
  in
  let root =
    Heap.alloc_object heap ~cls:"Root"
      [ ("l", Value.Ref left); ("r", Value.Ref right); ("n", Value.Null) ]
  in
  (heap, root, shared)

let test_primitive_equality () =
  let heap = Heap.create () in
  check bool_c "ints equal" true (graph_equal heap (Value.Int 3) (Value.Int 3));
  check bool_c "ints differ" false (graph_equal heap (Value.Int 3) (Value.Int 4));
  check bool_c "str equal" true (graph_equal heap (Value.Str "a") (Value.Str "a"));
  check bool_c "null equal" true (graph_equal heap Value.Null Value.Null);
  check bool_c "bool vs int" false (graph_equal heap (Value.Bool true) (Value.Int 1))

let test_structural_equality_ignores_identity () =
  let heap = Heap.create () in
  let a = Heap.alloc_object heap ~cls:"P" [ ("x", Value.Int 1) ] in
  let b = Heap.alloc_object heap ~cls:"P" [ ("x", Value.Int 1) ] in
  check bool_c "same structure, different identity" true
    (graph_equal heap (Value.Ref a) (Value.Ref b))

let test_field_order_irrelevant () =
  let heap = Heap.create () in
  let a = Heap.alloc_object heap ~cls:"P" [ ("x", Value.Int 1); ("y", Value.Int 2) ] in
  let b = Heap.alloc_object heap ~cls:"P" [ ("y", Value.Int 2); ("x", Value.Int 1) ] in
  check bool_c "fields sorted in canonical form" true
    (graph_equal heap (Value.Ref a) (Value.Ref b))

let test_class_name_matters () =
  let heap = Heap.create () in
  let a = Heap.alloc_object heap ~cls:"P" [ ("x", Value.Int 1) ] in
  let b = Heap.alloc_object heap ~cls:"Q" [ ("x", Value.Int 1) ] in
  check bool_c "class distinguishes" false (graph_equal heap (Value.Ref a) (Value.Ref b))

let test_sharing_is_observable () =
  let heap = Heap.create () in
  let shared = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 1) ] in
  let with_sharing =
    Heap.alloc_object heap ~cls:"R" [ ("a", Value.Ref shared); ("b", Value.Ref shared) ]
  in
  let l1 = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 1) ] in
  let l2 = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 1) ] in
  let without_sharing =
    Heap.alloc_object heap ~cls:"R" [ ("a", Value.Ref l1); ("b", Value.Ref l2) ]
  in
  check bool_c "shared child vs equal copies" false
    (graph_equal heap (Value.Ref with_sharing) (Value.Ref without_sharing))

let test_cycles () =
  let heap = Heap.create () in
  let a = Heap.alloc_object heap ~cls:"C" [ ("next", Value.Null) ] in
  let b = Heap.alloc_object heap ~cls:"C" [ ("next", Value.Ref a) ] in
  Heap.set_field heap a "next" (Value.Ref b);
  (* a <-> b two-cycle; canonicalization must terminate and be stable. *)
  let c1 = canon heap (Value.Ref a) in
  let c2 = canon heap (Value.Ref a) in
  check bool_c "cycle canonical stable" true (Object_graph.equal c1 c2);
  (* self-loop vs two-cycle differ *)
  let s = Heap.alloc_object heap ~cls:"C" [ ("next", Value.Null) ] in
  Heap.set_field heap s "next" (Value.Ref s);
  check bool_c "self-loop differs from 2-cycle" false
    (graph_equal heap (Value.Ref a) (Value.Ref s))

let test_mutation_changes_canonical () =
  let heap, root, shared = fixture () in
  let before = canon heap (Value.Ref root) in
  Heap.set_field heap shared "v" (Value.Int 8);
  let after = canon heap (Value.Ref root) in
  check bool_c "deep mutation visible at root" false (Object_graph.equal before after)

let test_diff_path () =
  let heap, root, shared = fixture () in
  let before = canon heap (Value.Ref root) in
  Heap.set_field heap shared "v" (Value.Int 9);
  let after = canon heap (Value.Ref root) in
  match Object_graph.diff before after with
  | Some path -> check Alcotest.string "diff path" "this.l.child.v" path
  | None -> Alcotest.fail "expected a diff"

let test_diff_none_on_equal () =
  let heap, root, _ = fixture () in
  let c = canon heap (Value.Ref root) in
  check bool_c "no diff on equal graphs" true (Object_graph.diff c c = None)

let test_clone_preserves_structure () =
  let heap, root, _ = fixture () in
  let copy = Object_graph.clone heap (Value.Ref root) in
  check bool_c "clone equals original" true (graph_equal heap (Value.Ref root) copy)

let test_clone_is_detached () =
  let heap, root, shared = fixture () in
  let copy = Object_graph.clone heap (Value.Ref root) in
  Heap.set_field heap shared "v" (Value.Int 99);
  check bool_c "original changed, copy did not" false
    (graph_equal heap (Value.Ref root) copy)

let test_clone_preserves_sharing () =
  let heap = Heap.create () in
  let shared = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 1) ] in
  let root =
    Heap.alloc_object heap ~cls:"R" [ ("a", Value.Ref shared); ("b", Value.Ref shared) ]
  in
  match Object_graph.clone heap (Value.Ref root) with
  | Value.Ref copy_id ->
    let a = Heap.get_field heap copy_id "a" and b = Heap.get_field heap copy_id "b" in
    check bool_c "copy children shared" true (a = b && a <> Some (Value.Ref shared))
  | _ -> Alcotest.fail "clone of a ref is a ref"

let test_clone_cyclic () =
  let heap = Heap.create () in
  let a = Heap.alloc_object heap ~cls:"C" [ ("next", Value.Null) ] in
  Heap.set_field heap a "next" (Value.Ref a);
  let copy = Object_graph.clone heap (Value.Ref a) in
  check bool_c "cyclic clone equal" true (graph_equal heap (Value.Ref a) copy);
  match copy with
  | Value.Ref id ->
    check bool_c "cycle closed onto copy" true
      (Heap.get_field heap id "next" = Some (Value.Ref id))
  | _ -> Alcotest.fail "ref expected"

let test_size () =
  let heap, root, _ = fixture () in
  (* root + left + right + shared leaf = 4 heap objects *)
  check Alcotest.int "graph size" 4 (Object_graph.size heap (Value.Ref root));
  check Alcotest.int "primitive size" 0 (Object_graph.size heap (Value.Int 1))

let test_array_diff_paths () =
  let heap = Heap.create () in
  let short_a = Heap.alloc_array heap [| Value.Int 1; Value.Int 2 |] in
  let long_a = Heap.alloc_array heap [| Value.Int 1; Value.Int 2; Value.Int 3 |] in
  (match
     Object_graph.diff
       (canon heap (Value.Ref short_a))
       (canon heap (Value.Ref long_a))
   with
  | Some path -> check Alcotest.string "length diff path" "this.length" path
  | None -> Alcotest.fail "expected a length diff");
  let other = Heap.alloc_array heap [| Value.Int 1; Value.Int 9 |] in
  match
    Object_graph.diff (canon heap (Value.Ref short_a)) (canon heap (Value.Ref other))
  with
  | Some path -> check Alcotest.string "element diff path" "this[1]" path
  | None -> Alcotest.fail "expected an element diff"

(* Snapshots must not perturb the program heap: the metrics the pipeline
   reports (allocations, live objects) and the allocation stream that
   exception identities ride on would otherwise differ between an
   instrumented and a plain run. *)
let test_canonical_many_does_not_allocate () =
  let heap, root, shared = fixture () in
  let allocs = Heap.allocations heap and live = Heap.live_count heap in
  let c = Object_graph.canonical_many heap [ Value.Ref root; Value.Ref shared ] in
  ignore (Object_graph.hash c);
  check Alcotest.int "allocations unchanged" allocs (Heap.allocations heap);
  check Alcotest.int "live objects unchanged" live (Heap.live_count heap)

let test_canonical_many_shares_table () =
  let heap = Heap.create () in
  let shared = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 1) ] in
  let a = Heap.alloc_object heap ~cls:"A" [ ("c", Value.Ref shared) ] in
  let b = Heap.alloc_object heap ~cls:"B" [ ("c", Value.Ref shared) ] in
  let fresh = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 1) ] in
  let c = Heap.alloc_object heap ~cls:"B" [ ("c", Value.Ref fresh) ] in
  let multi1 = Object_graph.canonical_many heap [ Value.Ref a; Value.Ref b ] in
  let multi2 = Object_graph.canonical_many heap [ Value.Ref a; Value.Ref c ] in
  check bool_c "cross-root sharing observable" false (Object_graph.equal multi1 multi2)

(* ---------------- properties ---------------- *)

(* Random heap graphs: build [n] objects with random int fields and
   random references among already-created objects (guaranteeing
   termination of construction, while cycles can still appear through
   later patching). *)
let build_random_graph heap rand_state n =
  let ids = Array.init n (fun i ->
      Heap.alloc_object heap ~cls:(if i mod 2 = 0 then "A" else "B")
        [ ("v", Value.Int (Random.State.int rand_state 5)) ])
  in
  Array.iteri
    (fun i id ->
      let target = ids.(Random.State.int rand_state n) in
      if Random.State.bool rand_state then
        Heap.set_field heap id "v" (Value.Ref target)
      else ignore i)
    ids;
  ids.(0)

let prop_clone_equal =
  QCheck2.Test.make ~name:"clone preserves canonical form" ~count:100
    QCheck2.Gen.(pair (int_range 1 12) int)
    (fun (n, seed) ->
      let heap = Heap.create () in
      let rs = Random.State.make [| seed |] in
      let root = build_random_graph heap rs n in
      let copy = Object_graph.clone heap (Value.Ref root) in
      Object_graph.equal (canon heap (Value.Ref root)) (canon heap copy))

let prop_canonical_deterministic =
  QCheck2.Test.make ~name:"canonicalization is deterministic" ~count:100
    QCheck2.Gen.(pair (int_range 1 12) int)
    (fun (n, seed) ->
      let heap = Heap.create () in
      let rs = Random.State.make [| seed |] in
      let root = build_random_graph heap rs n in
      Object_graph.equal (canon heap (Value.Ref root)) (canon heap (Value.Ref root)))

let prop_mutation_detected =
  QCheck2.Test.make ~name:"reachable mutation changes canonical form" ~count:100
    QCheck2.Gen.(pair (int_range 1 12) int)
    (fun (n, seed) ->
      let heap = Heap.create () in
      let rs = Random.State.make [| seed |] in
      let root = build_random_graph heap rs n in
      let before = canon heap (Value.Ref root) in
      (* mutate the root itself: always reachable *)
      Heap.set_field heap root "v" (Value.Str "mutated");
      not (Object_graph.equal before (canon heap (Value.Ref root))))

let suite =
  [ Alcotest.test_case "primitive equality" `Quick test_primitive_equality;
    Alcotest.test_case "identity irrelevant" `Quick test_structural_equality_ignores_identity;
    Alcotest.test_case "field order irrelevant" `Quick test_field_order_irrelevant;
    Alcotest.test_case "class name matters" `Quick test_class_name_matters;
    Alcotest.test_case "sharing observable" `Quick test_sharing_is_observable;
    Alcotest.test_case "cycles" `Quick test_cycles;
    Alcotest.test_case "mutation changes form" `Quick test_mutation_changes_canonical;
    Alcotest.test_case "diff path" `Quick test_diff_path;
    Alcotest.test_case "diff none on equal" `Quick test_diff_none_on_equal;
    Alcotest.test_case "clone equals" `Quick test_clone_preserves_structure;
    Alcotest.test_case "clone detached" `Quick test_clone_is_detached;
    Alcotest.test_case "clone keeps sharing" `Quick test_clone_preserves_sharing;
    Alcotest.test_case "clone cyclic" `Quick test_clone_cyclic;
    Alcotest.test_case "graph size" `Quick test_size;
    Alcotest.test_case "array diff paths" `Quick test_array_diff_paths;
    Alcotest.test_case "canonical_many allocation-free" `Quick
      test_canonical_many_does_not_allocate;
    Alcotest.test_case "multi-root sharing" `Quick test_canonical_many_shares_table;
    QCheck_alcotest.to_alcotest prop_clone_equal;
    QCheck_alcotest.to_alcotest prop_canonical_deterministic;
    QCheck_alcotest.to_alcotest prop_mutation_detected ]
