(* Tests of the differential (copy-on-write) snapshot engine: the
   Shadow dirty-set layer, the reachability fast path, and end-to-end
   equivalence of --snapshot-mode cow with the eager oracle. *)

open Failatom_runtime
open Failatom_core
open Failatom_apps

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let parse = Failatom_minilang.Minilang.parse

(* ------------------------------------------------------------------ *)
(* (a) Shadow unit tests: dirty sets, before-state reads, free         *)
(* ------------------------------------------------------------------ *)

let test_shadow_records_first_write () =
  let heap = Heap.create () in
  let id = Heap.alloc_object heap ~cls:"P" [ ("x", Value.Int 1) ] in
  Shadow.with_shadow heap (fun sh ->
      check int_c "clean at open" 0 (Shadow.dirty_count sh);
      Heap.set_field heap id "x" (Value.Int 2);
      Heap.set_field heap id "x" (Value.Int 3);
      check int_c "one dirty object" 1 (Shadow.dirty_count sh);
      check bool_c "dirty" true (Shadow.is_dirty sh id);
      (* the saved payload is the pre-FIRST-write one *)
      match Shadow.read_before sh id with
      | Heap.Obj { fields; _ } -> check bool_c "entry value" true (Hashtbl.find fields "x" = Value.Int 1)
      | Heap.Arr _ -> Alcotest.fail "object expected");
  check bool_c "current value survives close" true
    (Heap.get_field heap id "x" = Some (Value.Int 3))

let test_shadow_read_before_clean () =
  let heap = Heap.create () in
  let id = Heap.alloc_object heap ~cls:"P" [ ("x", Value.Int 1) ] in
  Shadow.with_shadow heap (fun sh ->
      check bool_c "clean read falls through to the heap" true
        (Shadow.read_before sh id == Heap.get heap id);
      check bool_c "no saved payload" true (Shadow.saved_payload sh id = None))

let test_shadow_sees_free () =
  let heap = Heap.create () in
  let id = Heap.alloc_object heap ~cls:"P" [ ("x", Value.Int 7) ] in
  Shadow.with_shadow heap (fun sh ->
      Heap.free heap id;
      check bool_c "freed object is dirty" true (Shadow.is_dirty sh id);
      check bool_c "gone from the heap" false (Heap.mem heap id);
      (* read_before stays total for objects that existed at open time *)
      match Shadow.read_before sh id with
      | Heap.Obj { fields; _ } -> check bool_c "payload preserved" true (Hashtbl.find fields "x" = Value.Int 7)
      | Heap.Arr _ -> Alcotest.fail "object expected")

let test_nested_shadows_independent () =
  let heap = Heap.create () in
  let id = Heap.alloc_object heap ~cls:"P" [ ("x", Value.Int 0) ] in
  Shadow.with_shadow heap (fun outer ->
      Heap.set_field heap id "x" (Value.Int 1);
      Shadow.with_shadow heap (fun inner ->
          check int_c "inner opens clean" 0 (Shadow.dirty_count inner);
          Heap.set_field heap id "x" (Value.Int 2);
          (* each shadow keeps its own before-state *)
          (match Shadow.read_before inner id with
          | Heap.Obj { fields; _ } ->
            check bool_c "inner before" true (Hashtbl.find fields "x" = Value.Int 1)
          | Heap.Arr _ -> Alcotest.fail "object expected");
          match Shadow.read_before outer id with
          | Heap.Obj { fields; _ } ->
            check bool_c "outer before" true (Hashtbl.find fields "x" = Value.Int 0)
          | Heap.Arr _ -> Alcotest.fail "object expected"))

(* ------------------------------------------------------------------ *)
(* (b) Reachability fast path and before-form reconstruction           *)
(* ------------------------------------------------------------------ *)

(* root -> child, plus a bystander object not reachable from root. *)
let fixture heap =
  let child = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 7) ] in
  let root =
    Heap.alloc_object heap ~cls:"R" [ ("c", Value.Ref child); ("n", Value.Null) ]
  in
  let bystander = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 0) ] in
  (root, child, bystander)

let reaches sh roots =
  Object_graph.reaches_dirty (Shadow.read_before sh) ~dirty:(Shadow.is_dirty sh) roots

let before_form sh roots = Object_graph.canonical_many_via (Shadow.read_before sh) roots

let test_unreachable_mutation_is_fast_path_atomic () =
  let heap = Heap.create () in
  let root, _, bystander = fixture heap in
  let roots = [ Value.Ref root ] in
  let entry = Object_graph.canonical_many heap roots in
  Shadow.with_shadow heap (fun sh ->
      Heap.set_field heap bystander "v" (Value.Int 99);
      check int_c "bystander write recorded" 1 (Shadow.dirty_count sh);
      check bool_c "dirty set does not reach the snapshot" false (reaches sh roots);
      (* the slow path would agree: the reconstructed before-form is the
         entry form, and so is the current one *)
      check bool_c "before == entry" true
        (Object_graph.equal entry (before_form sh roots));
      check bool_c "after == entry" true
        (Object_graph.equal entry (Object_graph.canonical_many heap roots)))

let test_new_object_linked_in_is_detected () =
  let heap = Heap.create () in
  let root, _, _ = fixture heap in
  let roots = [ Value.Ref root ] in
  let entry = Object_graph.canonical_many heap roots in
  Shadow.with_shadow heap (fun sh ->
      (* allocate during the call, then link it under the root: the link
         dirties the root, which is what makes the new object matter *)
      let fresh = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 5) ] in
      check int_c "allocation alone is not a mutation" 0 (Shadow.dirty_count sh);
      Heap.set_field heap root "n" (Value.Ref fresh);
      check bool_c "dirty set reaches the snapshot" true (reaches sh roots);
      let before = before_form sh roots in
      let after = Object_graph.canonical_many heap roots in
      check bool_c "before == entry (new object invisible)" true
        (Object_graph.equal entry before);
      check bool_c "after differs" false (Object_graph.equal before after);
      check bool_c "diff names the mutated field" true
        (Object_graph.diff before after = Some "this[0].n"))

let test_aliased_mutation_consistent () =
  let heap = Heap.create () in
  let shared = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 1) ] in
  let a = Heap.alloc_object heap ~cls:"A" [ ("c", Value.Ref shared) ] in
  let b = Heap.alloc_object heap ~cls:"B" [ ("c", Value.Ref shared) ] in
  let roots = [ Value.Ref a; Value.Ref b ] in
  let entry = Object_graph.canonical_many heap roots in
  Shadow.with_shadow heap (fun sh ->
      (* one write, seen through both aliases *)
      Heap.set_field heap shared "v" (Value.Int 2);
      check int_c "one dirty object" 1 (Shadow.dirty_count sh);
      check bool_c "reaches through either root" true (reaches sh roots);
      let before = before_form sh roots in
      check bool_c "reconstruction preserves sharing" true
        (Object_graph.equal entry before))

let test_rollback_restores_before_equality () =
  let heap = Heap.create () in
  let root, child, _ = fixture heap in
  let roots = [ Value.Ref root ] in
  let entry = Object_graph.canonical_many heap roots in
  Shadow.with_shadow heap (fun sh ->
      (* a nested masked call: lazy checkpoint, mutation, rollback *)
      Checkpoint.with_checkpoint ~strategy:Checkpoint.Lazy heap roots (fun cp ->
          Heap.set_field heap child "v" (Value.Int 42);
          Checkpoint.rollback cp);
      (* the rollback touched the object, so it is dirty — but its saved
         payload equals the restored one, and the verdict comes out
         atomic through the comparison, not the fast path *)
      check bool_c "rollback leaves the object dirty" true (Shadow.is_dirty sh child);
      check bool_c "dirty set reaches the snapshot" true (reaches sh roots);
      let before = before_form sh roots in
      let after = Object_graph.canonical_many heap roots in
      check bool_c "before == entry" true (Object_graph.equal entry before);
      check bool_c "before == after (rolled back)" true (Object_graph.equal before after))

(* ------------------------------------------------------------------ *)
(* (c) End-to-end: cow detection identical to the eager oracle         *)
(* ------------------------------------------------------------------ *)

(* As in test_campaign: equivalence is independent of the configuration,
   so the full app x flavor matrix runs with a slimmed-down injection
   set to keep the suite fast. *)
let matrix_config mode =
  { Config.default with
    Config.runtime_exceptions = [ "NullPointerException" ];
    infer_exception_free = true;
    snapshot_mode = mode }

let check_same_detection name eager cow =
  Alcotest.(check int)
    (name ^ ": same run count")
    (List.length eager.Detect.runs)
    (List.length cow.Detect.runs);
  Alcotest.(check bool)
    (name ^ ": identical run records (marks, exn ids, outputs)")
    true
    (eager.Detect.runs = cow.Detect.runs);
  Alcotest.(check int) (name ^ ": same injections") eager.Detect.injections
    cow.Detect.injections;
  Alcotest.(check bool) (name ^ ": same transparency") eager.Detect.transparent
    cow.Detect.transparent;
  let ce = Classify.classify eager and cc = Classify.classify cow in
  Alcotest.(check bool)
    (name ^ ": identical classification")
    true
    (Classify.reports ce = Classify.reports cc
    && ce.Classify.class_verdicts = cc.Classify.class_verdicts)

let check_cow_matches_eager (app : Registry.t) flavor () =
  let program = parse app.Registry.source in
  let eager = Detect.run ~config:(matrix_config Config.Snapshot_eager) ~flavor program in
  let cow = Detect.run ~config:(matrix_config Config.Snapshot_cow) ~flavor program in
  check_same_detection app.Registry.name eager cow

let equivalence_cases =
  List.concat_map
    (fun (app : Registry.t) ->
      List.map
        (fun flavor ->
          Alcotest.test_case
            (Printf.sprintf "cow == eager %s (%s)" app.Registry.name
               (Detect.flavor_name flavor))
            `Slow
            (check_cow_matches_eager app flavor))
        [ Detect.Source_weaving; Detect.Load_time_filters ])
    Registry.catalog

(* Re-validating an already-masked program layers cow detection
   snapshots over the wrappers' lazy checkpoints: shadows and
   checkpoint shadows nest on the same heap. *)
let test_cow_on_masked_program () =
  let app = Option.get (Registry.find "LinkedList") in
  let program = parse app.Registry.source in
  let run mode =
    let config = matrix_config mode in
    let outcome = Mask.correct ~config ~flavor:Detect.Source_weaving program in
    ( Detect.run ~config ~flavor:Detect.Source_weaving
        ~prepare:(Mask.register_hooks config)
        outcome.Mask.corrected,
      outcome )
  in
  let eager, oe = run Config.Snapshot_eager in
  let cow, oc = run Config.Snapshot_cow in
  Alcotest.(check bool)
    "same wrapped set" true
    (Method_id.Set.equal oe.Mask.wrapped oc.Mask.wrapped);
  check_same_detection "masked LinkedList" eager cow

let suite =
  [ Alcotest.test_case "shadow records first write" `Quick test_shadow_records_first_write;
    Alcotest.test_case "shadow clean read" `Quick test_shadow_read_before_clean;
    Alcotest.test_case "shadow sees free" `Quick test_shadow_sees_free;
    Alcotest.test_case "nested shadows independent" `Quick test_nested_shadows_independent;
    Alcotest.test_case "unreachable mutation fast path" `Quick
      test_unreachable_mutation_is_fast_path_atomic;
    Alcotest.test_case "new object linked in" `Quick test_new_object_linked_in_is_detected;
    Alcotest.test_case "aliased mutation" `Quick test_aliased_mutation_consistent;
    Alcotest.test_case "rollback under shadow" `Quick test_rollback_restores_before_equality;
    Alcotest.test_case "cow on masked program" `Slow test_cow_on_masked_program ]
  @ equivalence_cases
